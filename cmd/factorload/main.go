// Command factorload is the load-generation harness: it replays a mixed
// read/write/ranked workload against a factordb database — either an
// in-process engine it opens itself or a running factordbd over HTTP —
// while scraping the target's introspection endpoints, and writes a
// BENCH_<name>.json trajectory: throughput, latency quantiles, the
// early-stop and cache-hit rates, and the final convergence diagnostics
// (split-R̂ / ESS) of every view the workload kept live.
//
// Usage:
//
//	factorload -name smoke -duration 5s -workers 4            # in-process
//	factorload -name prod -url http://localhost:8080 -duration 30s
//	factorload -check BENCH_smoke.json                        # validate a report
//
// The workload mix is: every ranked-every-th request is the ranked query
// (ORDER BY P DESC LIMIT 10), every write-every-th request is a DML
// UPDATE (0 disables writes), and the rest are the plain selection
// query. The -check mode parses and validates a previously written
// report, so CI can fail on a missing or malformed trajectory without
// external tooling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factordb"
	"factordb/internal/metrics"
	"factordb/internal/sqlparse"
)

func main() {
	var (
		name    = flag.String("name", "load", "benchmark name (output defaults to BENCH_<name>.json)")
		out     = flag.String("out", "", "output path (default BENCH_<name>.json)")
		check   = flag.String("check", "", "validate an existing BENCH report and exit")
		parseBm = flag.Bool("parse", false,
			"benchmark the SQL front end only (no engine, no load) and write a kind \"factorparse\" report")
		url     = flag.String("url", "", "target factordbd base URL (empty = open an in-process engine)")
		dur     = flag.Duration("duration", 10*time.Second, "load duration")
		workers = flag.Int("workers", 4, "concurrent client workers")
		samples = flag.Int("samples", 32, "per-query sample budget")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		rankedN = flag.Int("ranked-every", 4, "issue the ranked query every n-th request (0 disables)")
		writeN  = flag.Int("write-every", 0, "issue a DML write every n-th request (0 disables)")
		track   = flag.Bool("track", true,
			"keep one uncached background query subscribed all run so its view's R-hat/ESS land in the report")

		// In-process target build options (ignored with -url).
		tokens  = flag.Int("tokens", 2000, "in-process corpus size in tokens")
		seed    = flag.Int64("seed", 5, "in-process corpus / training / chain seed")
		chains  = flag.Int("chains", 2, "in-process MCMC chains")
		steps   = flag.Int("steps", 300, "in-process walk-steps per sample (thinning k)")
		trainSt = flag.Int("train-steps", 20000, "in-process SampleRank training steps")
		dataDir = flag.String("data-dir", "",
			"in-process durable data directory (empty = in-memory; passed through to the engine)")

		// Slow-query log validation (CI's structured-logging check).
		slowLog = flag.String("check-slow-log", "",
			"validate a JSON slow-query log file (factordbd stderr under -log-format json) and exit")
		tracesURL = flag.String("traces-url", "",
			"debug listener base URL; with -check-slow-log, cross-reference logged trace IDs against /debug/traces")

		// Crash-recovery scenario options.
		recovery = flag.Bool("recovery", false,
			"run the kill/restart recovery scenario instead of the load: write, recover from -data-dir, compare marginals")
		recWrites = flag.Int("recovery-writes", 8, "writes committed before the kill in -recovery")
		tolerance = flag.Float64("tolerance", 0.25,
			"max mean |Δp| between pre-kill and post-restart marginals in -recovery")
	)
	flag.Parse()

	if *recovery {
		if err := runRecovery(recoveryConfig{
			dataDir: *dataDir, tokens: *tokens, seed: *seed, chains: *chains,
			steps: *steps, trainSt: *trainSt, writes: *recWrites,
			samples: *samples, tolerance: *tolerance,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *slowLog != "" {
		if err := checkSlowLog(*slowLog, strings.TrimRight(*tracesURL, "/")); err != nil {
			fatal(err)
		}
		fmt.Printf("factorload: %s is a valid slow-query log\n", *slowLog)
		return
	}

	if *check != "" {
		if err := checkReport(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("factorload: %s is a valid BENCH report\n", *check)
		return
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *name + ".json"
	}

	if *parseBm {
		rep := parseBench(*name)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		for _, s := range rep.Statements {
			fmt.Fprintf(os.Stderr, "factorload: %-6s parse %.0fns, compile cold %.0fns / hit %.0fns (%.0fx) → %s\n",
				s.Name, s.ParseNs, s.CompileColdNs, s.CompileHitNs, s.HitSpeedup, path)
		}
		return
	}

	var tgt target
	var err error
	if *url != "" {
		tgt = &httpTarget{base: strings.TrimRight(*url, "/"), client: &http.Client{Timeout: *timeout}}
	} else {
		fmt.Fprintf(os.Stderr, "factorload: building in-process NER engine (%d tokens)...\n", *tokens)
		tgt, err = newInprocTarget(*tokens, *seed, *chains, *steps, *trainSt, *dataDir)
		if err != nil {
			fatal(err)
		}
	}
	defer tgt.close()

	rep, err := run(tgt, runConfig{
		name:        *name,
		duration:    *dur,
		workers:     *workers,
		samples:     *samples,
		timeout:     *timeout,
		rankedEvery: *rankedN,
		writeEvery:  *writeN,
		track:       *track,
	})
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "factorload: %d requests (%d errors) in %.1fs → %.1f q/s, p50 %.1fms p99 %.1fms, %.0f KB/query → %s\n",
		rep.Requests, rep.Errors, rep.DurationS, rep.ThroughputQPS,
		rep.Latency.P50*1000, rep.Latency.P99*1000, rep.Memory.AllocBytesPerQuery/1024, path)
}

// The workload statements: the paper's evaluation queries plus an
// evidence UPDATE cycling over token ids.
const (
	readSQL   = factordb.Query1
	rankedSQL = factordb.Query4Ranked
)

func writeSQL(i int64) string {
	return fmt.Sprintf("UPDATE TOKEN SET STRING = 'load-%d' WHERE TOK_ID = %d", i%7, i%50)
}

// stmtParse is the front-end cost of one workload statement: parse time,
// a cold compile (parse + plan + canonicalize, plan cache missing) and a
// warm compile (plan-cache hit, which is a map lookup on the raw SQL).
type stmtParse struct {
	Name          string  `json:"name"`
	SQL           string  `json:"sql"`
	ParseNs       float64 `json:"parse_ns"`
	CompileColdNs float64 `json:"compile_cold_ns"`
	CompileHitNs  float64 `json:"compile_hit_ns"`
	HitSpeedup    float64 `json:"hit_speedup"`
}

// parseReport is the BENCH_parse.json schema (kind "factorparse"),
// written by -parse: front-end-only figures that need no engine build,
// so CI can track compile-path regressions in milliseconds.
type parseReport struct {
	Name       string      `json:"name"`
	Kind       string      `json:"kind"` // always "factorparse"
	Statements []stmtParse `json:"statements"`
}

// benchNs times f: one warm-up call, then repeated calls for at least
// 20ms, returning mean wall time per call in nanoseconds.
func benchNs(f func()) float64 {
	f()
	const minDur = 20 * time.Millisecond
	n := 0
	start := time.Now()
	for time.Since(start) < minDur {
		f()
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// measureStatement produces one stmtParse row. DML statements go through
// the mutation compiler, everything else through the query planner; the
// hot figure always comes from a pre-warmed plan cache.
func measureStatement(name, sql string) stmtParse {
	s := stmtParse{Name: name, SQL: sql}
	s.ParseNs = benchNs(func() {
		if _, err := sqlparse.ParseStatement(sql); err != nil {
			fatal(err)
		}
	})
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		fatal(err)
	}
	warm := sqlparse.NewPlanCache(sqlparse.DefaultPlanCacheSize)
	if stmt.Select == nil {
		s.CompileColdNs = benchNs(func() {
			if _, err := sqlparse.CompileExec(sql); err != nil {
				fatal(err)
			}
		})
		s.CompileHitNs = benchNs(func() {
			if _, _, err := warm.CompileMutation(sql); err != nil {
				fatal(err)
			}
		})
	} else {
		s.CompileColdNs = benchNs(func() {
			if _, _, err := sqlparse.Compile(sql); err != nil {
				fatal(err)
			}
		})
		s.CompileHitNs = benchNs(func() {
			if _, _, err := warm.CompileQuery(sql); err != nil {
				fatal(err)
			}
		})
	}
	if s.CompileHitNs > 0 {
		s.HitSpeedup = s.CompileColdNs / s.CompileHitNs
	}
	return s
}

// workloadStatements is the statement set both -parse and the load
// report measure: the two read queries plus one representative write.
func workloadStatements() []stmtParse {
	return []stmtParse{
		measureStatement("read", readSQL),
		measureStatement("ranked", rankedSQL),
		measureStatement("write", writeSQL(1)),
	}
}

func parseBench(name string) *parseReport {
	return &parseReport{Name: name, Kind: "factorparse", Statements: workloadStatements()}
}

// qstats is what one request contributes to the trajectory.
type qstats struct {
	earlyStop bool
	cached    bool
	partial   bool
}

// target abstracts the in-process engine and a remote factordbd.
type target interface {
	query(ctx context.Context, sql string, samples int, noCache bool) (qstats, error)
	exec(ctx context.Context, sql string) error
	status(ctx context.Context) (factordb.Status, error)
	describe() string
	close()
}

type runConfig struct {
	name        string
	duration    time.Duration
	workers     int
	samples     int
	timeout     time.Duration
	rankedEvery int
	writeEvery  int
	track       bool
}

// report is the BENCH_<name>.json schema. CI validates it with -check.
type report struct {
	Name          string       `json:"name"`
	Kind          string       `json:"kind"` // always "factorload"
	Target        string       `json:"target"`
	Config        configJSON   `json:"config"`
	DurationS     float64      `json:"duration_s"`
	Requests      int64        `json:"requests"`
	Errors        int64        `json:"errors"`
	Writes        int64        `json:"writes"`
	ThroughputQPS float64      `json:"throughput_qps"`
	Latency       latencyJSON  `json:"latency_seconds"`
	EarlyStopRate float64      `json:"early_stop_rate"`
	CacheHitRate  float64      `json:"cache_hit_rate"`
	PartialRate   float64      `json:"partial_rate"`
	Memory        memJSON      `json:"memory"`
	Parse         []stmtParse  `json:"parse,omitempty"`
	Views         []viewReport `json:"views"`
}

// memJSON is the run's heap profile, from runtime.MemStats deltas taken
// around the load (after a settling GC). For an in-process target this is
// the engine plus the harness; with -url it measures only the HTTP client
// side, so cross-target comparisons are only valid within one mode. The
// per-query figures are the allocation-regression signal: a streaming
// executor that silently starts materializing shows up here first.
type memJSON struct {
	AllocBytesPerQuery float64 `json:"alloc_bytes_per_query"`
	AllocsPerQuery     float64 `json:"allocs_per_query"`
	TotalAllocBytes    uint64  `json:"total_alloc_bytes"`
	Mallocs            uint64  `json:"mallocs"`
	HeapAllocBytes     uint64  `json:"heap_alloc_bytes"` // live heap at end of run
	HeapSysBytes       uint64  `json:"heap_sys_bytes"`   // heap reserved from the OS
	NumGC              uint32  `json:"num_gc"`           // collections during the run
}

type configJSON struct {
	Workers     int `json:"workers"`
	Samples     int `json:"samples"`
	RankedEvery int `json:"ranked_every"`
	WriteEvery  int `json:"write_every"`
}

type latencyJSON struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// viewReport is the last convergence diagnostic observed for one view
// while the workload kept it live (views are evicted when their last
// subscriber completes, so the trajectory scrapes /statusz during the
// run and keeps the freshest reading per fingerprint).
type viewReport struct {
	Fingerprint string   `json:"fingerprint"`
	RHat        *float64 `json:"rhat"`
	ESS         *float64 `json:"ess"`
	MinSamples  int64    `json:"min_samples"`
}

func run(tgt target, cfg runConfig) (*report, error) {
	reg := metrics.NewRegistry()
	lat := reg.NewHistogram("latency_seconds", "per-request latency",
		metrics.ExponentialBuckets(0.0005, 2, 18))

	var requests, errors, writes, earlyStops, cacheHits, partials atomic.Int64
	deadline := time.Now().Add(cfg.duration)
	rootCtx, cancel := context.WithDeadline(context.Background(), deadline.Add(cfg.timeout))
	defer cancel()

	// Scrape the target's introspection while the load runs: views are
	// refcounted and evicted at completion, so their diagnostics are only
	// visible mid-flight.
	views := make(map[string]viewReport)
	var viewMu sync.Mutex
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-rootCtx.Done():
				return
			case <-tick.C:
				if time.Now().After(deadline) {
					return
				}
				st, err := tgt.status(rootCtx)
				if err != nil {
					continue
				}
				viewMu.Lock()
				for _, v := range st.Views {
					prev, seen := views[v.Fingerprint]
					// Keep the freshest reading that actually carries a
					// diagnostic; fall back to presence-only rows.
					if v.RHat != nil || !seen || prev.RHat == nil {
						views[v.Fingerprint] = viewReport{
							Fingerprint: v.Fingerprint,
							RHat:        v.RHat,
							ESS:         v.ESS,
							MinSamples:  v.MinSamples,
						}
					}
				}
				viewMu.Unlock()
			}
		}
	}()

	// The tracked view: one background query with a huge uncached budget
	// keeps a shared view subscribed for the whole run, so its per-epoch
	// observation series accumulates and the scraper reads a real split-R̂
	// — short-lived worker queries complete (and evict their views) too
	// fast to diagnose.
	var trackWG sync.WaitGroup
	if cfg.track {
		trackWG.Add(1)
		go func() {
			defer trackWG.Done()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithDeadline(rootCtx, deadline)
				_, _ = tgt.query(ctx, readSQL, 1<<20, true)
				cancel()
			}
		}()
	}

	// Settle the heap before measuring so build-time garbage (corpus
	// construction, training) does not pollute the per-query figures.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(w); time.Now().Before(deadline); i++ {
				n := requests.Add(1)
				ctx, cancel := context.WithTimeout(rootCtx, cfg.timeout)
				t0 := time.Now()
				switch {
				case cfg.writeEvery > 0 && n%int64(cfg.writeEvery) == 0:
					if err := tgt.exec(ctx, writeSQL(n)); err != nil {
						errors.Add(1)
					} else {
						writes.Add(1)
					}
				default:
					sql := readSQL
					if cfg.rankedEvery > 0 && n%int64(cfg.rankedEvery) == 0 {
						sql = rankedSQL
					}
					st, err := tgt.query(ctx, sql, cfg.samples, false)
					if err != nil {
						errors.Add(1)
					} else {
						if st.earlyStop {
							earlyStops.Add(1)
						}
						if st.cached {
							cacheHits.Add(1)
						}
						if st.partial {
							partials.Add(1)
						}
					}
				}
				lat.Observe(time.Since(t0).Seconds())
				cancel()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	trackWG.Wait()
	cancel()
	<-scrapeDone

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	n := requests.Load()
	if n == 0 {
		return nil, fmt.Errorf("factorload: no requests issued (duration too short?)")
	}
	reads := n - writes.Load() - errors.Load()
	rate := func(k int64) float64 {
		if reads <= 0 {
			return 0
		}
		return float64(k) / float64(reads)
	}
	rep := &report{
		Name:   cfg.name,
		Kind:   "factorload",
		Target: tgt.describe(),
		Config: configJSON{
			Workers: cfg.workers, Samples: cfg.samples,
			RankedEvery: cfg.rankedEvery, WriteEvery: cfg.writeEvery,
		},
		DurationS:     elapsed.Seconds(),
		Requests:      n,
		Errors:        errors.Load(),
		Writes:        writes.Load(),
		ThroughputQPS: float64(n) / elapsed.Seconds(),
		Latency: latencyJSON{
			P50:  lat.Quantile(0.50),
			P95:  lat.Quantile(0.95),
			P99:  lat.Quantile(0.99),
			Mean: lat.Mean(),
			Max:  lat.Max(),
		},
		EarlyStopRate: rate(earlyStops.Load()),
		CacheHitRate:  rate(cacheHits.Load()),
		PartialRate:   rate(partials.Load()),
		Memory: memJSON{
			AllocBytesPerQuery: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
			AllocsPerQuery:     float64(m1.Mallocs-m0.Mallocs) / float64(n),
			TotalAllocBytes:    m1.TotalAlloc - m0.TotalAlloc,
			Mallocs:            m1.Mallocs - m0.Mallocs,
			HeapAllocBytes:     m1.HeapAlloc,
			HeapSysBytes:       m1.HeapSys,
			NumGC:              m1.NumGC - m0.NumGC,
		},
		Parse: workloadStatements(),
		Views: make([]viewReport, 0, len(views)),
	}
	viewMu.Lock()
	for _, v := range views {
		rep.Views = append(rep.Views, v)
	}
	viewMu.Unlock()
	return rep, nil
}

// checkReport validates a BENCH file: present, parsable, and internally
// consistent. This is what CI runs so a broken trajectory fails the build.
func checkReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("%s: invalid BENCH JSON: %v", path, err)
	}
	if probe.Kind == "factorparse" {
		return checkParseReport(path, data)
	}
	var rep report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: invalid BENCH JSON: %v", path, err)
	}
	switch {
	case rep.Name == "":
		return fmt.Errorf("%s: missing name", path)
	case rep.Kind != "factorload":
		return fmt.Errorf("%s: kind %q is not \"factorload\"", path, rep.Kind)
	case rep.Requests <= 0:
		return fmt.Errorf("%s: no requests recorded", path)
	case rep.ThroughputQPS <= 0:
		return fmt.Errorf("%s: non-positive throughput", path)
	case rep.DurationS <= 0:
		return fmt.Errorf("%s: non-positive duration", path)
	case rep.Latency.P50 > rep.Latency.P95 || rep.Latency.P95 > rep.Latency.P99:
		return fmt.Errorf("%s: latency quantiles not monotone: p50=%v p95=%v p99=%v",
			path, rep.Latency.P50, rep.Latency.P95, rep.Latency.P99)
	case rep.Latency.Max < rep.Latency.P99:
		return fmt.Errorf("%s: max latency below p99", path)
	case rep.Errors > rep.Requests/2:
		return fmt.Errorf("%s: more than half the requests failed (%d/%d)",
			path, rep.Errors, rep.Requests)
	case rep.Memory.HeapSysBytes == 0:
		return fmt.Errorf("%s: missing memory section (report from an old factorload?)", path)
	case rep.Memory.AllocBytesPerQuery < 0 || rep.Memory.TotalAllocBytes < rep.Memory.Mallocs:
		return fmt.Errorf("%s: implausible memory stats: %.0f B/query, %d bytes over %d mallocs",
			path, rep.Memory.AllocBytesPerQuery, rep.Memory.TotalAllocBytes, rep.Memory.Mallocs)
	}
	return nil
}

// checkParseReport validates a kind "factorparse" report written by
// -parse. The speedup floor is deliberately loose (the Go benchmark gate
// enforces the real 10x bound under controlled conditions) — here it only
// has to catch a plan cache that stopped hitting entirely.
func checkParseReport(path string, data []byte) error {
	var rep parseReport
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: invalid BENCH JSON: %v", path, err)
	}
	if rep.Name == "" {
		return fmt.Errorf("%s: missing name", path)
	}
	if len(rep.Statements) == 0 {
		return fmt.Errorf("%s: no statements measured", path)
	}
	for _, s := range rep.Statements {
		switch {
		case s.Name == "" || s.SQL == "":
			return fmt.Errorf("%s: statement missing name or sql", path)
		case s.ParseNs <= 0 || s.CompileColdNs <= 0 || s.CompileHitNs <= 0:
			return fmt.Errorf("%s: %s: non-positive timing", path, s.Name)
		case s.HitSpeedup < 2:
			return fmt.Errorf("%s: %s: plan-cache hit only %.1fx faster than a cold compile (want >= 2x)",
				path, s.Name, s.HitSpeedup)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "factorload:", err)
	os.Exit(1)
}
