package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// slowRecord is the slow-query log record shape factordbd emits through
// its JSON slog handler — the subset -check-slow-log validates.
type slowRecord struct {
	Msg         string           `json:"msg"`
	Level       string           `json:"level"`
	TraceID     string           `json:"trace_id"`
	Kind        string           `json:"kind"`
	SQL         string           `json:"sql"`
	Outcome     string           `json:"outcome"`
	WallNS      int64            `json:"wall_ns"`
	ThresholdNS int64            `json:"threshold_ns"`
	SpanNS      map[string]int64 `json:"span_ns"`
}

// checkSlowLog validates a JSON slow-query log (factordbd's stderr under
// -log-format json -slow-query) and, when tracesURL points at the
// daemon's debug listener, cross-references the logged trace IDs against
// GET /debug/traces — proving the two surfaces really share one ID space.
// Non-slow_query lines (audit records, lifecycle messages) are skipped;
// a line that is not JSON at all fails, since a half-structured log
// stream defeats machine consumption.
func checkSlowLog(path, tracesURL string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var slow []slowRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec slowRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("%s:%d: not a JSON log line: %v", path, line, err)
		}
		if rec.Msg != "slow_query" {
			continue
		}
		if err := validateSlowRecord(rec); err != nil {
			return fmt.Errorf("%s:%d: %v", path, line, err)
		}
		slow = append(slow, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(slow) == 0 {
		return fmt.Errorf("%s: no slow_query records (was the daemon run with -slow-query?)", path)
	}
	fmt.Fprintf(os.Stderr, "factorload: %d slow_query records validated in %s\n", len(slow), path)
	if tracesURL == "" {
		return nil
	}
	return crossReferenceTraces(slow, tracesURL)
}

func validateSlowRecord(rec slowRecord) error {
	switch {
	case len(rec.TraceID) != 32 || !isHex(rec.TraceID):
		return fmt.Errorf("slow_query trace_id %q is not a 32-hex W3C trace id", rec.TraceID)
	case rec.SQL == "":
		return fmt.Errorf("slow_query record missing sql")
	case rec.Kind != "query" && rec.Kind != "exec":
		return fmt.Errorf("slow_query kind %q is neither query nor exec", rec.Kind)
	case rec.ThresholdNS <= 0:
		return fmt.Errorf("slow_query threshold_ns %d not positive", rec.ThresholdNS)
	case rec.WallNS < rec.ThresholdNS:
		return fmt.Errorf("slow_query wall_ns %d below threshold_ns %d", rec.WallNS, rec.ThresholdNS)
	case len(rec.SpanNS) == 0:
		return fmt.Errorf("slow_query record has no span_ns breakdown")
	}
	var sum int64
	for name, ns := range rec.SpanNS {
		if ns < 0 {
			return fmt.Errorf("slow_query span %q has negative duration %d", name, ns)
		}
		sum += ns
	}
	if sum > rec.WallNS {
		return fmt.Errorf("slow_query spans sum to %dns, exceeding wall_ns %d (spans must tile the wall time)",
			sum, rec.WallNS)
	}
	return nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// crossReferenceTraces fetches the daemon's recent-trace ring and
// requires the newest slow-query records to resolve there by trace ID.
// The ring holds 64 traces, so only the tail of a long run can still be
// present; the newest records must be, because slow queries are ringed
// unconditionally and nothing traces after the load stops.
func crossReferenceTraces(slow []slowRecord, base string) error {
	var traces []struct {
		TraceID string `json:"trace_id"`
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/debug/traces")
	if err != nil {
		return fmt.Errorf("fetching /debug/traces: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/traces: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return fmt.Errorf("/debug/traces: %v", err)
	}
	ring := make(map[string]bool, len(traces))
	for _, t := range traces {
		ring[t.TraceID] = true
	}
	tail := slow
	if len(tail) > 10 {
		tail = tail[len(tail)-10:]
	}
	matched := 0
	for _, rec := range tail {
		if ring[rec.TraceID] {
			matched++
		}
	}
	if matched == 0 {
		return fmt.Errorf("none of the %d newest slow_query trace IDs resolve on /debug/traces (%d ring entries)",
			len(tail), len(ring))
	}
	fmt.Fprintf(os.Stderr, "factorload: %d/%d newest slow_query trace IDs resolve on /debug/traces\n",
		matched, len(tail))
	return nil
}
