package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"factordb"
)

// inprocTarget drives a served-mode engine opened in this process — the
// zero-setup way to record a trajectory (CI's smoke configuration).
type inprocTarget struct {
	db *factordb.DB
}

func newInprocTarget(tokens int, seed int64, chains, steps, trainSteps int, dataDir string) (*inprocTarget, error) {
	opts := []factordb.Option{
		factordb.WithMode(factordb.ModeServed),
		factordb.WithChains(chains),
		factordb.WithSteps(steps),
		factordb.WithSeed(seed + 42),
	}
	if dataDir != "" {
		opts = append(opts, factordb.WithDataDir(dataDir))
	}
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: tokens, Seed: seed, TrainSteps: trainSteps}),
		opts...,
	)
	if err != nil {
		return nil, err
	}
	return &inprocTarget{db: db}, nil
}

func (t *inprocTarget) query(ctx context.Context, sql string, samples int, noCache bool) (qstats, error) {
	opts := []factordb.QueryOption{factordb.Samples(samples), factordb.AllowPartial()}
	if noCache {
		opts = append(opts, factordb.NoCache())
	}
	rows, err := t.db.Query(ctx, sql, opts...)
	if err != nil {
		return qstats{}, err
	}
	defer rows.Close()
	return qstats{
		earlyStop: rows.EarlyStopped(),
		cached:    rows.Cached(),
		partial:   rows.Partial(),
	}, nil
}

func (t *inprocTarget) exec(ctx context.Context, sql string) error {
	_, err := t.db.Exec(ctx, sql)
	return err
}

func (t *inprocTarget) status(context.Context) (factordb.Status, error) {
	return t.db.Status(), nil
}

func (t *inprocTarget) describe() string { return "inproc" }
func (t *inprocTarget) close()           { _ = t.db.Close() }

// httpTarget drives a running factordbd over its HTTP API.
type httpTarget struct {
	base   string
	client *http.Client
}

// queryWire mirrors the daemon's POST /query request and the response
// fields the trajectory needs.
type queryWire struct {
	SQL     string `json:"sql"`
	Samples int    `json:"samples,omitempty"`
	NoCache bool   `json:"no_cache,omitempty"`
}

type queryRespWire struct {
	EarlyStop bool `json:"early_stop"`
	Cached    bool `json:"cached"`
	Partial   bool `json:"partial"`
}

type execWire struct {
	SQL string `json:"sql"`
}

func (t *httpTarget) post(ctx context.Context, path string, body, dst any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, msg)
	}
	if dst == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

func (t *httpTarget) query(ctx context.Context, sql string, samples int, noCache bool) (qstats, error) {
	var resp queryRespWire
	if err := t.post(ctx, "/query", queryWire{SQL: sql, Samples: samples, NoCache: noCache}, &resp); err != nil {
		return qstats{}, err
	}
	return qstats{earlyStop: resp.EarlyStop, cached: resp.Cached, partial: resp.Partial}, nil
}

func (t *httpTarget) exec(ctx context.Context, sql string) error {
	return t.post(ctx, "/exec", execWire{SQL: sql}, nil)
}

func (t *httpTarget) status(ctx context.Context) (factordb.Status, error) {
	var st factordb.Status
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/statusz", nil)
	if err != nil {
		return st, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/statusz: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (t *httpTarget) describe() string { return t.base }
func (t *httpTarget) close()           {}
