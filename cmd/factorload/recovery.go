package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"factordb"
)

// recoveryConfig parameterizes the kill/restart scenario.
type recoveryConfig struct {
	dataDir   string // empty = private temp dir, removed afterwards
	tokens    int
	seed      int64
	chains    int
	steps     int
	trainSt   int
	writes    int
	samples   int
	tolerance float64
}

// runRecovery is the crash-recovery acceptance scenario: open a durable
// engine, commit a write burst, estimate the workload query's marginals,
// tear the engine down, recover from the same data directory, and
// require (a) the write epoch survived exactly and (b) the re-estimated
// marginals match the pre-kill ones within tolerance. The writes use
// fsync=always so every committed record would survive a real SIGKILL —
// the same property CI's kill test exercises against factordbd.
//
// Marginals are MCMC estimates, so the comparison is statistical, not
// exact: both runs re-equilibrate from the same recovered evidence and
// must agree on the answer distribution within the CI tolerance.
func runRecovery(cfg recoveryConfig) error {
	dir := cfg.dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "factorload-recovery-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	open := func() (*factordb.DB, error) {
		return factordb.Open(
			factordb.NER(factordb.NERConfig{Tokens: cfg.tokens, Seed: cfg.seed, TrainSteps: cfg.trainSt}),
			factordb.WithMode(factordb.ModeServed),
			factordb.WithChains(cfg.chains),
			factordb.WithSteps(cfg.steps),
			factordb.WithSeed(cfg.seed+42),
			factordb.WithDataDir(dir),
			factordb.WithFsync(factordb.FsyncAlways),
		)
	}
	ctx := context.Background()

	fmt.Fprintf(os.Stderr, "factorload: recovery scenario in %s (%d tokens, %d writes)\n",
		dir, cfg.tokens, cfg.writes)
	db, err := open()
	if err != nil {
		return err
	}
	for i := 1; i <= cfg.writes; i++ {
		if _, err := db.Exec(ctx, writeSQL(int64(i))); err != nil {
			db.Close()
			return fmt.Errorf("write %d: %w", i, err)
		}
	}
	preEpoch := db.WriteEpoch()
	pre, err := queryMarginals(ctx, db, readSQL, cfg.samples)
	if err != nil {
		db.Close()
		return fmt.Errorf("pre-kill marginals: %w", err)
	}
	// The "kill": drop the engine. With fsync=always every committed
	// record is already on stable storage, so a SIGKILL here would leave
	// the same bytes; Close only stops the chains faster.
	db.Close()

	start := time.Now()
	re, err := open()
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	defer re.Close()
	d := re.Durability()
	if d == nil {
		return fmt.Errorf("recovered engine reports no durability state")
	}
	fmt.Fprintf(os.Stderr, "factorload: recovered epoch %d (%d records replayed) in %v\n",
		d.RecoveredEpoch, d.ReplayedRecords, time.Since(start).Round(time.Millisecond))
	if got := re.WriteEpoch(); got != preEpoch {
		return fmt.Errorf("write epoch %d after recovery, want %d", got, preEpoch)
	}
	// The startup trace on /statusz must tell the same recovery story: a
	// wal_replay span whose replayed-record count matches the durability
	// block exactly.
	st := re.Status()
	if st.StartupTrace == nil {
		return fmt.Errorf("recovered engine reports no startup trace on /statusz")
	}
	var replayed string
	for _, sp := range st.StartupTrace.Spans {
		if sp.Name == "wal_replay" {
			replayed = sp.Attrs["replayed_records"]
		}
	}
	if replayed != fmt.Sprint(d.ReplayedRecords) {
		return fmt.Errorf("startup trace wal_replay reports replayed_records=%q, durability block says %d",
			replayed, d.ReplayedRecords)
	}
	fmt.Fprintf(os.Stderr, "factorload: startup trace ok: %d spans, wal_replay replayed_records=%s\n",
		len(st.StartupTrace.Spans), replayed)
	post, err := queryMarginals(ctx, re, readSQL, cfg.samples)
	if err != nil {
		return fmt.Errorf("post-restart marginals: %w", err)
	}

	maxDelta, meanDelta, n := compareMarginals(pre, post)
	fmt.Fprintf(os.Stderr, "factorload: %d answer tuples compared, mean |Δp| %.4f, max |Δp| %.4f (tolerance %.2f)\n",
		n, meanDelta, maxDelta, cfg.tolerance)
	if n == 0 {
		return fmt.Errorf("no answer tuples to compare")
	}
	if meanDelta > cfg.tolerance {
		return fmt.Errorf("post-restart marginals drifted: mean |Δp| %.4f > tolerance %.2f", meanDelta, cfg.tolerance)
	}
	fmt.Println("factorload: recovery scenario passed")
	return nil
}

// queryMarginals estimates the query's per-tuple marginals, keyed by the
// rendered tuple values.
func queryMarginals(ctx context.Context, db *factordb.DB, sql string, samples int) (map[string]float64, error) {
	cctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	rows, err := db.Query(cctx, sql, factordb.Samples(samples), factordb.NoCache())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := make(map[string]float64)
	for rows.Next() {
		vals, err := rows.Row()
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprint(v)
		}
		out[strings.Join(parts, "\x1f")] = rows.Prob()
	}
	return out, rows.Err()
}

// compareMarginals scores two estimates over the union of their answer
// tuples; a tuple absent from one side counts as probability zero there.
func compareMarginals(a, b map[string]float64) (maxDelta, meanDelta float64, n int) {
	keys := make(map[string]struct{}, len(a)+len(b))
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var sum float64
	for _, k := range ordered {
		d := math.Abs(a[k] - b[k])
		sum += d
		if d > maxDelta {
			maxDelta = d
		}
	}
	n = len(ordered)
	if n > 0 {
		meanDelta = sum / float64(n)
	}
	return maxDelta, meanDelta, n
}
