// Command experiments regenerates every figure of the paper's evaluation
// (Section 5) and prints the series as text tables. Scales default to
// laptop-size; -scale full pushes toward the paper's settings (slower).
//
// Usage:
//
//	experiments -exp fig4a
//	experiments -exp all -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"factordb/internal/exp"
	"factordb/internal/metrics"
)

type scaleCfg struct {
	fig4aSizes   []int
	fig4aSamples int
	figN         int // database size for fig4b/5/6/7/8
	thin         int
	samples      int
	chains       int
}

var scales = map[string]scaleCfg{
	"small": {
		fig4aSizes: []int{10_000, 30_000, 100_000}, fig4aSamples: 300,
		figN: 50_000, thin: 2000, samples: 200, chains: 8,
	},
	"medium": {
		fig4aSizes: []int{10_000, 30_000, 100_000, 300_000, 1_000_000}, fig4aSamples: 400,
		figN: 200_000, thin: 5000, samples: 300, chains: 8,
	},
	"full": {
		fig4aSizes: []int{10_000, 100_000, 1_000_000, 10_000_000}, fig4aSamples: 400,
		figN: 1_000_000, thin: 10000, samples: 500, chains: 8,
	},
}

func main() {
	var (
		which = flag.String("exp", "all", "fig4a|fig4b|fig5|fig6|fig7|fig8|ablation-k|ablation-targeted|all")
		scale = flag.String("scale", "small", "small|medium|full")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cfg, ok := scales[*scale]
	if !ok {
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	run := func(name string, fn func(scaleCfg, int64) error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("==== %s (scale=%s) ====\n", name, *scale)
		start := time.Now()
		if err := fn(cfg, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Second))
	}
	run("fig4a", runFig4a)
	run("fig4b", runFig4b)
	run("fig5", runFig5)
	run("fig6", runFig6)
	run("fig7", runFig7)
	run("fig8", runFig8)
	run("ablation-k", runAblationK)
	run("ablation-targeted", runAblationTargeted)
}

func runFig4a(cfg scaleCfg, seed int64) error {
	rows, err := exp.Fig4a(exp.Fig4aParams{
		Sizes: cfg.fig4aSizes, Seed: seed, Thin: cfg.thin,
		MaxSamples: cfg.fig4aSamples, TruthSamples: 600, TruthThin: cfg.thin,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-14s %-14s %-14s %-14s %s\n",
		"tuples", "naive t1/2", "mater t1/2", "naive/sample", "mater/sample", "speedup")
	for _, r := range rows {
		speed := "n/a"
		if r.MaterPerSamp > 0 {
			speed = fmt.Sprintf("%.1fx", float64(r.NaivePerSamp)/float64(r.MaterPerSamp))
		}
		fmt.Printf("%-12d %-14s %-14s %-14s %-14s %s\n",
			r.Tuples,
			exp.FormatDuration(r.NaiveTime, r.NaiveHalved),
			exp.FormatDuration(r.MaterTime, r.MaterHalved),
			r.NaivePerSamp.Round(time.Microsecond),
			r.MaterPerSamp.Round(time.Microsecond),
			speed)
	}
	return nil
}

func printTrace(name string, tr *metrics.Trace, buckets int) {
	n := tr.Normalized()
	fmt.Printf("-- %s: normalized loss over time --\n", name)
	step := len(n.Points) / buckets
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(n.Points); i += step {
		p := n.Points[i]
		bar := strings.Repeat("#", int(p.Loss*50))
		fmt.Printf("%10s %6.3f %s\n", p.Elapsed.Round(time.Millisecond), p.Loss, bar)
	}
	final := n.Points[len(n.Points)-1]
	fmt.Printf("%10s %6.3f (final)\n", final.Elapsed.Round(time.Millisecond), final.Loss)
}

func runFig4b(cfg scaleCfg, seed int64) error {
	naive, mater, err := exp.Fig4b(cfg.figN, cfg.samples, cfg.thin, seed)
	if err != nil {
		return err
	}
	printTrace("naive sampler", naive, 20)
	printTrace("materialized sampler", mater, 20)
	nh, nok := naive.TimeToHalve()
	mh, mok := mater.TimeToHalve()
	fmt.Printf("time to halve: naive %s, materialized %s\n",
		exp.FormatDuration(nh, nok), exp.FormatDuration(mh, mok))
	return nil
}

func runFig5(cfg scaleCfg, seed int64) error {
	// The paper runs 100 samples per chain (Section 5.4).
	rows, err := exp.Fig5(cfg.figN, cfg.chains, 100, cfg.thin, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %-14s %s\n", "chains", "sq error", "ideal 1/n", "ratio vs 1 chain")
	for _, r := range rows {
		ratio := 0.0
		if rows[0].SqErr > 0 {
			ratio = rows[0].SqErr / r.SqErr
		}
		fmt.Printf("%-8d %-14.5f %-14.5f %.2fx\n", r.Chains, r.SqErr, r.IdealErr, ratio)
	}
	return nil
}

func runFig6(cfg scaleCfg, seed int64) error {
	q2, q3, err := exp.Fig6(cfg.figN, cfg.samples, cfg.thin, seed)
	if err != nil {
		return err
	}
	printTrace("Query 2 (COUNT of B-PER)", q2, 15)
	printTrace("Query 3 (docs with #PER = #ORG)", q3, 15)
	return nil
}

func runFig7(cfg scaleCfg, seed int64) error {
	rows, err := exp.Fig7(cfg.figN, cfg.samples*2, cfg.thin, seed)
	if err != nil {
		return err
	}
	fmt.Println("-- person mention count distribution (Query 2 answer) --")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.P*200))
		fmt.Printf("%8d %6.3f %s\n", r.Count, r.P, bar)
	}
	return nil
}

func runFig8(cfg scaleCfg, seed int64) error {
	rows, err := exp.Fig8(cfg.figN, cfg.samples, cfg.thin, seed)
	if err != nil {
		return err
	}
	fmt.Println("-- persons co-occurring with Boston/B-ORG (Query 4) --")
	if len(rows) == 0 {
		fmt.Println("(empty answer at this scale/seed)")
	}
	for i, tp := range rows {
		if i >= 25 {
			fmt.Printf("... (%d more)\n", len(rows)-i)
			break
		}
		bar := strings.Repeat("#", int(tp.P*50))
		fmt.Printf("%-20s %6.3f %s\n", tp.Tuple.String(), tp.P, bar)
	}
	return nil
}

func runAblationK(cfg scaleCfg, seed int64) error {
	ks := []int{200, 1000, 5000, 20000}
	rows, err := exp.AblationK(cfg.figN/5, ks, 2_000_000, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %s\n", "k", "loss AUC", "final loss")
	for _, r := range rows {
		fmt.Printf("%-10d %-14.4f %.5f\n", r.K, r.AUC, r.Final)
	}
	return nil
}

func runAblationTargeted(cfg scaleCfg, seed int64) error {
	rows, err := exp.AblationTargeted(cfg.figN, cfg.samples, cfg.thin, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-12s %-14s %s\n", "proposer", "docs", "loss AUC", "final loss")
	for _, r := range rows {
		name := "uniform"
		docs := fmt.Sprintf("%d/%d", r.TotalDocs, r.TotalDocs)
		if r.Targeted {
			name = "targeted"
			docs = fmt.Sprintf("%d/%d", r.TargetDocs, r.TotalDocs)
		}
		fmt.Printf("%-10s %-12s %-14.4f %.5f\n", name, docs, r.AUC, r.Final)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
