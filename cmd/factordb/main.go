// Command factordb is a small CLI over the probabilistic database: it
// opens the synthetic NER workload through the public factordb facade,
// evaluates a SQL query with the naive or materialized MCMC evaluator,
// and prints tuple marginals with confidence intervals.
//
// Usage:
//
//	factordb -tokens 50000 -query "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" -samples 200
//	factordb -paper-query 3 -mode naive
//	factordb -paper-query 4 -limit 10   # ranked: ORDER BY P DESC LIMIT 10
//	factordb -exec "UPDATE TOKEN SET STRING='Boston' WHERE TOK_ID=4" -paper-query 4
//
// -exec applies a DML statement (INSERT, UPDATE or DELETE) before the
// query runs: an evidence correction whose effect the following query
// shows without rebuilding or retraining anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"factordb"
)

func main() {
	var (
		tokens  = flag.Int("tokens", 20000, "number of tokens in the synthetic corpus")
		seed    = flag.Int64("seed", 1, "random seed")
		query   = flag.String("query", "", "SQL query to evaluate (overrides -paper-query)")
		paperQ  = flag.Int("paper-query", 1, "evaluate the paper's Query 1..4")
		mode    = flag.String("mode", "materialized", "evaluator: naive or materialized")
		samples = flag.Int("samples", 200, "number of query samples to collect")
		thin    = flag.Int("thin", 2000, "MH walk-steps between samples (paper: 10000)")
		top     = flag.Int("top", 20, "print at most this many answer tuples")
		limit   = flag.Int("limit", 0, "rank in SQL: append ORDER BY P DESC LIMIT n to the query (0 = off)")
		noSkip  = flag.Bool("no-skip", false, "disable skip-chain factors (plain linear chain)")
		exec    = flag.String("exec", "", "DML statement (INSERT/UPDATE/DELETE) to apply before the query")
	)
	flag.Parse()

	sql := *query
	if sql == "" {
		switch *paperQ {
		case 1:
			sql = factordb.Query1
		case 2:
			sql = factordb.Query2
		case 3:
			sql = factordb.Query3
		case 4:
			sql = factordb.Query4
		default:
			fatal(fmt.Errorf("unknown paper query %d (want 1..4)", *paperQ))
		}
	}
	if *limit > 0 {
		up := strings.ToUpper(sql)
		if strings.Contains(up, "ORDER BY") || strings.Contains(up, "LIMIT") {
			fatal(fmt.Errorf("-limit cannot be combined with a query that already has ORDER BY or LIMIT"))
		}
		sql += fmt.Sprintf("\n ORDER BY P DESC LIMIT %d", *limit)
	}
	m, err := factordb.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("building NER system (%d tokens, seed %d)...\n", *tokens, *seed)
	start := time.Now()
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: *tokens, Seed: *seed, LinearChain: *noSkip}),
		factordb.WithMode(m),
		factordb.WithSteps(*thin),
		factordb.WithSeed(*seed+42),
	)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	fmt.Printf("%s (built in %v)\n", db.Describe(), time.Since(start).Round(time.Millisecond))

	if *exec != "" {
		res, err := db.Exec(context.Background(), *exec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exec: %s\n  %d row(s) affected, data epoch %d, %v\n",
			*exec, res.RowsAffected, res.Epoch, res.Elapsed.Round(time.Millisecond))
	}

	// EXPLAIN prints the diagnostic lines and exits: there is no sampling
	// run and no probability column worth showing.
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "EXPLAIN") {
		rows, err := db.Query(context.Background(), sql)
		if err != nil {
			fatal(err)
		}
		defer rows.Close()
		for rows.Next() {
			var line string
			if err := rows.Scan(&line); err != nil {
				fatal(err)
			}
			fmt.Println(line)
		}
		return
	}

	fmt.Printf("query: %s\nmode: %s, %d samples x %d steps\n", sql, m, *samples, *thin)
	rows, err := db.Query(context.Background(), sql, factordb.Samples(*samples))
	if err != nil {
		fatal(err)
	}
	defer rows.Close()
	fmt.Printf("sampling done in %v (%d samples)\n\n", rows.Elapsed().Round(time.Millisecond), rows.Samples())

	fmt.Printf("answer tuples: %d\n", rows.Len())
	fmt.Printf("%-40s %-7s %s\n", "TUPLE", "P", "95% CI")
	n := 0
	for rows.Next() {
		if n >= *top {
			fmt.Printf("... (%d more)\n", rows.Len()-n)
			break
		}
		vals, err := rows.Row()
		if err != nil {
			fatal(err)
		}
		lo, hi := rows.CI()
		fmt.Printf("%-40s %.4f  [%.3f, %.3f]\n", tupleString(vals), rows.Prob(), lo, hi)
		n++
	}
	if err := rows.Err(); err != nil {
		fatal(err)
	}
}

func tupleString(vals []any) string {
	s := "("
	for i, v := range vals {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "factordb:", err)
	os.Exit(1)
}
