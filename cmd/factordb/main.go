// Command factordb is a small CLI over the probabilistic database: it
// builds a synthetic NER world of the requested size, trains the
// skip-chain model with SampleRank, and evaluates a SQL query with either
// the naive or the materialized MCMC evaluator, printing tuple marginals.
//
// Usage:
//
//	factordb -tokens 50000 -query "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" -samples 200
//	factordb -paper-query 3 -mode naive
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"factordb/internal/core"
	"factordb/internal/exp"
)

func main() {
	var (
		tokens  = flag.Int("tokens", 20000, "number of tokens in the synthetic corpus")
		seed    = flag.Int64("seed", 1, "random seed")
		query   = flag.String("query", "", "SQL query to evaluate (overrides -paper-query)")
		paperQ  = flag.Int("paper-query", 1, "evaluate the paper's Query 1..4")
		mode    = flag.String("mode", "materialized", "evaluator: naive or materialized")
		samples = flag.Int("samples", 200, "number of query samples to collect")
		thin    = flag.Int("thin", 2000, "MH walk-steps between samples (paper: 10000)")
		top     = flag.Int("top", 20, "print at most this many answer tuples")
		noSkip  = flag.Bool("no-skip", false, "disable skip-chain factors (plain linear chain)")
	)
	flag.Parse()

	sql := *query
	if sql == "" {
		switch *paperQ {
		case 1:
			sql = exp.Query1
		case 2:
			sql = exp.Query2
		case 3:
			sql = exp.Query3
		case 4:
			sql = exp.Query4
		default:
			fatal(fmt.Errorf("unknown paper query %d (want 1..4)", *paperQ))
		}
	}
	var m core.Mode
	switch *mode {
	case "naive":
		m = core.Naive
	case "materialized":
		m = core.Materialized
	default:
		fatal(fmt.Errorf("unknown mode %q (want naive or materialized)", *mode))
	}

	fmt.Printf("building NER system (%d tokens, seed %d)...\n", *tokens, *seed)
	start := time.Now()
	sys, err := exp.BuildNER(exp.Config{NumTokens: *tokens, Seed: *seed, UseSkip: !*noSkip})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (built in %v)\n", sys.Describe(), time.Since(start).Round(time.Millisecond))

	ch, err := sys.NewChain(m, sql, *thin, *seed+42)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query: %s\nmode: %s, %d samples x %d steps\n", sql, m, *samples, *thin)
	start = time.Now()
	if err := ch.Evaluator.Run(*samples, nil); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("sampling done in %v (%s)\n\n", elapsed.Round(time.Millisecond), ch.Evaluator.Sampler())

	results := ch.Evaluator.Results()
	fmt.Printf("answer tuples: %d\n", len(results))
	fmt.Printf("%-40s %s\n", "TUPLE", "P")
	for i, tp := range results {
		if i >= *top {
			fmt.Printf("... (%d more)\n", len(results)-i)
			break
		}
		fmt.Printf("%-40s %.4f\n", tp.Tuple.String(), tp.P)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "factordb:", err)
	os.Exit(1)
}
