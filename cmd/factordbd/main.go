// Command factordbd is the factordb daemon: it opens the probabilistic
// NER database once at startup through the public facade in served mode,
// then answers concurrent SQL queries over HTTP while a pool of parallel
// MCMC chains keeps walking the possible-world space. All in-flight
// queries share the chains' walk-steps through incrementally maintained
// views, so concurrent load adds view maintenance cost only.
//
// Usage:
//
//	factordbd -addr :8080 -tokens 50000 -chains 4 -steps 1000
//	factordbd -data-dir /var/lib/factordb -fsync interval
//
// With -data-dir set, every committed write is appended to a durable
// write-ahead log and the evidence world is checkpointed in the
// background; restarting with the same directory recovers the world and
// the write epoch a crash interrupted (see the README's Durability
// section).
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", "samples": 128}
//	POST /exec     {"sql": "UPDATE TOKEN SET STRING='Boston' WHERE TOK_ID=4711"}
//	GET  /healthz  liveness, chain-pool status, data epoch
//	GET  /metrics  Prometheus text exposition
//	GET  /statusz  introspection: live views, sampler health, cache
//
// With -debug-addr set, a second listener serves the operator-only
// endpoints (GET /debug/pprof/..., GET /debug/traces); without it they
// are not reachable at all.
//
// /exec applies a DML mutation (INSERT, UPDATE or DELETE) to every
// chain's world and invalidates all cached pre-write answers; the
// chains keep sampling and marginals re-equilibrate without a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"factordb"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		tokens  = flag.Int("tokens", 20000, "number of tokens in the synthetic corpus")
		seed    = flag.Int64("seed", 1, "random seed for corpus, training and chains")
		chains  = flag.Int("chains", 0, "parallel MCMC chains (0 = GOMAXPROCS, capped at 8)")
		steps   = flag.Int("steps", 1000, "MH walk-steps between samples (thinning interval k)")
		burn    = flag.Int("burn", 0, "walk-steps to discard per chain before serving")
		samples = flag.Int("samples", 128, "default per-query sample budget")
		maxConc = flag.Int("max-concurrent", 16, "queries evaluated concurrently before queuing")
		maxQ    = flag.Int("max-queued", 64, "queries queued before shedding with 503")
		cacheN  = flag.Int("cache-size", 128, "result cache entries (negative disables)")
		cacheT  = flag.Duration("cache-ttl", time.Minute, "result cache freshness bound")
		planN   = flag.Int("plan-cache", 0, "raw-SQL plan cache entries (0 = default 256)")
		noSkip  = flag.Bool("no-skip", false, "disable skip-chain factors (plain linear chain)")
		dbgAddr = flag.String("debug-addr", "",
			"listen address for the debug endpoints (pprof, /debug/traces); empty disables them")
		traceN = flag.Int("trace-every", 0,
			"trace every n-th query into the debug ring (0 = client opt-in only)")
		dataDir = flag.String("data-dir", "",
			"directory for the durable snapshot+WAL store; empty runs in-memory only")
		fsync = flag.String("fsync", "interval",
			"WAL sync policy with -data-dir: always, interval or never")
		ckOps = flag.Int64("checkpoint-ops", 0,
			"ops between background checkpoints (0 = default 4096, negative disables)")
		ckBytes = flag.Int64("checkpoint-bytes", 0,
			"WAL bytes between background checkpoints (0 = default 4MiB, negative disables)")
	)
	flag.Parse()

	fsyncPolicy, err := factordb.ParseFsyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}

	log.Printf("building NER system (%d tokens, seed %d)...", *tokens, *seed)
	start := time.Now()
	opts := []factordb.Option{
		factordb.WithMode(factordb.ModeServed),
		factordb.WithChains(*chains),
		factordb.WithSteps(*steps),
		factordb.WithBurnIn(*burn),
		factordb.WithSeed(*seed + 42),
		factordb.WithSamples(*samples),
		factordb.WithQueryLimits(*maxConc, *maxQ),
		factordb.WithCache(*cacheN, *cacheT),
		factordb.WithPlanCache(*planN),
		factordb.WithTraceSampling(*traceN),
	}
	if *dataDir != "" {
		opts = append(opts,
			factordb.WithDataDir(*dataDir),
			factordb.WithFsync(fsyncPolicy),
			factordb.WithCheckpointEvery(*ckOps, *ckBytes),
		)
	}
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: *tokens, Seed: *seed, LinearChain: *noSkip}),
		opts...,
	)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	log.Printf("%s (built in %v)", db.Describe(), time.Since(start).Round(time.Millisecond))
	log.Printf("engine up: %d chains, k=%d", db.Chains(), *steps)
	if d := db.Durability(); d != nil {
		log.Printf("durable: dir=%s fsync=%s recovered_epoch=%d replayed=%d torn_tail=%v",
			d.Dir, d.Fsync, d.RecoveredEpoch, d.ReplayedRecords, d.TornTail)
	}

	srv := &http.Server{Addr: *addr, Handler: db.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	// The debug endpoints (pprof profiles, recent query traces) are only
	// served when explicitly asked for, on their own listener — they can
	// leak query text and timing, so they never ride on the public mux.
	if *dbgAddr != "" {
		dbgSrv := &http.Server{Addr: *dbgAddr, Handler: db.DebugHandler()}
		go func() {
			log.Printf("debug endpoints on %s", *dbgAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
		defer dbgSrv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "factordbd:", err)
	os.Exit(1)
}
