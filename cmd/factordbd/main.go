// Command factordbd is the factordb daemon: it opens the probabilistic
// NER database once at startup through the public facade in served mode,
// then answers concurrent SQL queries over HTTP while a pool of parallel
// MCMC chains keeps walking the possible-world space. All in-flight
// queries share the chains' walk-steps through incrementally maintained
// views, so concurrent load adds view maintenance cost only.
//
// Usage:
//
//	factordbd -addr :8080 -tokens 50000 -chains 4 -steps 1000
//	factordbd -data-dir /var/lib/factordb -fsync interval
//	factordbd -log-format json -slow-query 250ms
//
// With -data-dir set, every committed write is appended to a durable
// write-ahead log and the evidence world is checkpointed in the
// background; restarting with the same directory recovers the world and
// the write epoch a crash interrupted (see the README's Durability
// section).
//
// All operational output is structured logging (log/slog) on stderr:
// -log-format selects text or json, -log-level the floor, and
// -slow-query arms the slow-query log — any query or write at or over
// the threshold emits a "slow_query" record with its span breakdown and
// trace ID, cross-referenceable against GET /debug/traces.
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", "samples": 128}
//	POST /exec     {"sql": "UPDATE TOKEN SET STRING='Boston' WHERE TOK_ID=4711"}
//	GET  /healthz  liveness, chain-pool status, data epoch
//	GET  /metrics  Prometheus text exposition
//	GET  /statusz  introspection: live views, sampler health, cache, startup trace
//
// With -debug-addr set, a second listener serves the operator-only
// endpoints (GET /debug/pprof/..., GET /debug/traces); without it they
// are not reachable at all.
//
// /exec applies a DML mutation (INSERT, UPDATE or DELETE) to every
// chain's world and invalidates all cached pre-write answers; the
// chains keep sampling and marginals re-equilibrate without a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"factordb"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		tokens  = flag.Int("tokens", 20000, "number of tokens in the synthetic corpus")
		seed    = flag.Int64("seed", 1, "random seed for corpus, training and chains")
		chains  = flag.Int("chains", 0, "parallel MCMC chains (0 = GOMAXPROCS, capped at 8)")
		steps   = flag.Int("steps", 1000, "MH walk-steps between samples (thinning interval k)")
		burn    = flag.Int("burn", 0, "walk-steps to discard per chain before serving")
		samples = flag.Int("samples", 128, "default per-query sample budget")
		maxConc = flag.Int("max-concurrent", 16, "queries evaluated concurrently before queuing")
		maxQ    = flag.Int("max-queued", 64, "queries queued before shedding with 503")
		cacheN  = flag.Int("cache-size", 128, "result cache entries (negative disables)")
		cacheT  = flag.Duration("cache-ttl", time.Minute, "result cache freshness bound")
		planN   = flag.Int("plan-cache", 0, "raw-SQL plan cache entries (0 = default 256)")
		noSkip  = flag.Bool("no-skip", false, "disable skip-chain factors (plain linear chain)")
		dbgAddr = flag.String("debug-addr", "",
			"listen address for the debug endpoints (pprof, /debug/traces); empty disables them")
		traceN = flag.Int("trace-every", 0,
			"trace every n-th query into the debug ring (0 = client opt-in only)")
		dataDir = flag.String("data-dir", "",
			"directory for the durable snapshot+WAL store; empty runs in-memory only")
		fsync = flag.String("fsync", "interval",
			"WAL sync policy with -data-dir: always, interval or never")
		ckOps = flag.Int64("checkpoint-ops", 0,
			"ops between background checkpoints (0 = default 4096, negative disables)")
		ckBytes = flag.Int64("checkpoint-bytes", 0,
			"WAL bytes between background checkpoints (0 = default 4MiB, negative disables)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level floor: debug, info, warn or error")
		slowQuery = flag.Duration("slow-query", 0,
			"slow-query log threshold; queries and writes at or over it emit a slow_query record (0 disables)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "factordbd:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(err error) {
		logger.Error("fatal", "error", err)
		os.Exit(1)
	}

	fsyncPolicy, err := factordb.ParseFsyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}

	logger.Info("building NER system", "tokens", *tokens, "seed", *seed)
	start := time.Now()
	opts := []factordb.Option{
		factordb.WithMode(factordb.ModeServed),
		factordb.WithChains(*chains),
		factordb.WithSteps(*steps),
		factordb.WithBurnIn(*burn),
		factordb.WithSeed(*seed + 42),
		factordb.WithSamples(*samples),
		factordb.WithQueryLimits(*maxConc, *maxQ),
		factordb.WithCache(*cacheN, *cacheT),
		factordb.WithPlanCache(*planN),
		factordb.WithTraceSampling(*traceN),
		factordb.WithLogger(logger),
		factordb.WithSlowQueryLog(*slowQuery),
	}
	if *dataDir != "" {
		opts = append(opts,
			factordb.WithDataDir(*dataDir),
			factordb.WithFsync(fsyncPolicy),
			factordb.WithCheckpointEvery(*ckOps, *ckBytes),
		)
	}
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: *tokens, Seed: *seed, LinearChain: *noSkip}),
		opts...,
	)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	logger.Info("database open",
		"describe", db.Describe(),
		"build_ms", time.Since(start).Milliseconds(),
		"chains", db.Chains(),
		"steps", *steps)
	if d := db.Durability(); d != nil {
		logger.Info("durable store recovered",
			"dir", d.Dir,
			"fsync", d.Fsync,
			"recovered_epoch", d.RecoveredEpoch,
			"replayed_records", d.ReplayedRecords,
			"torn_tail", d.TornTail)
	}

	srv := &http.Server{Addr: *addr, Handler: db.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	// The debug endpoints (pprof profiles, recent query traces) are only
	// served when explicitly asked for, on their own listener — they can
	// leak query text and timing, so they never ride on the public mux.
	if *dbgAddr != "" {
		dbgSrv := &http.Server{Addr: *dbgAddr, Handler: db.DebugHandler()}
		go func() {
			logger.Info("debug endpoints up", "addr", *dbgAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "error", err)
			}
		}()
		defer dbgSrv.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// newLogger builds the process logger from the -log-format / -log-level
// flags. Everything goes to stderr, leaving stdout for data.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
