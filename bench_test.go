package factordb

// One benchmark per paper table/figure (see DESIGN.md's experiment
// index). Each Fig4* / Fig6* benchmark measures the steady-state cost of
// collecting one query sample (k MH walk-steps + query evaluation) for
// the relevant query, evaluator and database size: the quantity whose
// growth with N separates the naive from the materialized evaluator in
// Figures 4(a) and 4(b). Ablation benchmarks cover the design choices
// called out in DESIGN.md. Full figure regeneration (loss curves, time-
// to-half-error sweeps) lives in cmd/experiments.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"factordb/internal/core"
	"factordb/internal/coref"
	"factordb/internal/exp"
	"factordb/internal/ie"
	"factordb/internal/mcmc"
)

const benchThin = 1000 // MH steps per sample during benchmarks

var (
	sysCache   = map[string]*exp.NERSystem{}
	sysCacheMu sync.Mutex
)

func benchSystem(b *testing.B, tokens int, useSkip bool) *exp.NERSystem {
	b.Helper()
	if testing.Short() {
		b.Skip("corpus building and training are expensive; skipped in -short mode")
	}
	key := fmt.Sprintf("%d-%v", tokens, useSkip)
	sysCacheMu.Lock()
	defer sysCacheMu.Unlock()
	if s, ok := sysCache[key]; ok {
		return s
	}
	s, err := exp.BuildNER(exp.Config{NumTokens: tokens, Seed: 1, UseSkip: useSkip, TrainSteps: 200000})
	if err != nil {
		b.Fatal(err)
	}
	sysCache[key] = s
	return s
}

func benchSamples(b *testing.B, tokens int, mode core.Mode, sql string) {
	b.Helper()
	sys := benchSystem(b, tokens, true)
	ch, err := sys.NewChain(mode, sql, benchThin, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Evaluator.CollectSample(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 4(a)/4(b): Query 1, naive vs materialized across sizes ----

func BenchmarkFig4aQuery1Naive10k(b *testing.B) { benchSamples(b, 10_000, core.Naive, exp.Query1) }
func BenchmarkFig4aQuery1Mater10k(b *testing.B) {
	benchSamples(b, 10_000, core.Materialized, exp.Query1)
}
func BenchmarkFig4aQuery1Naive100k(b *testing.B) { benchSamples(b, 100_000, core.Naive, exp.Query1) }
func BenchmarkFig4aQuery1Mater100k(b *testing.B) {
	benchSamples(b, 100_000, core.Materialized, exp.Query1)
}

// Figure 4(b) uses the 1M-tuple database in the paper; 300k here keeps
// the default bench run affordable while preserving the gap.
func BenchmarkFig4bQuery1Naive300k(b *testing.B) { benchSamples(b, 300_000, core.Naive, exp.Query1) }
func BenchmarkFig4bQuery1Mater300k(b *testing.B) {
	benchSamples(b, 300_000, core.Materialized, exp.Query1)
}

// ---- Figure 5: parallel chains ----

func BenchmarkFig5ParallelChains(b *testing.B) {
	sys := benchSystem(b, 30_000, true)
	for _, chains := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.RunParallel(chains, 10, func(c int) (*core.Evaluator, error) {
					ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, int64(100+c))
					if err != nil {
						return nil, err
					}
					return ch.Evaluator, nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 6 / Figure 7: aggregate queries ----

func BenchmarkFig6Query2Naive100k(b *testing.B) { benchSamples(b, 100_000, core.Naive, exp.Query2) }
func BenchmarkFig6Query2Mater100k(b *testing.B) {
	benchSamples(b, 100_000, core.Materialized, exp.Query2)
}
func BenchmarkFig6Query3Naive100k(b *testing.B) { benchSamples(b, 100_000, core.Naive, exp.Query3) }
func BenchmarkFig6Query3Mater100k(b *testing.B) {
	benchSamples(b, 100_000, core.Materialized, exp.Query3)
}

// ---- Figure 8: self-join Query 4 ----

func BenchmarkFig8Query4Naive30k(b *testing.B) { benchSamples(b, 30_000, core.Naive, exp.Query4) }
func BenchmarkFig8Query4Mater30k(b *testing.B) {
	benchSamples(b, 30_000, core.Materialized, exp.Query4)
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkMHStep measures the raw Metropolis-Hastings walk-step cost,
// which the paper argues is constant in the database size (Section 5.3).
func BenchmarkMHStep(b *testing.B) {
	for _, tokens := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("tokens=%d", tokens), func(b *testing.B) {
			sys := benchSystem(b, tokens, true)
			ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, 3)
			if err != nil {
				b.Fatal(err)
			}
			s := ch.Evaluator.Sampler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkScoreDelta compares local delta scoring against full-document
// rescoring: the factor-cancellation optimization of Appendix 9.2.
func BenchmarkScoreDelta(b *testing.B) {
	if testing.Short() {
		b.Skip("corpus building is expensive; skipped in -short mode")
	}
	corpus, err := ie.Generate(ie.DefaultGenConfig(20_000, 5))
	if err != nil {
		b.Fatal(err)
	}
	vocab := ie.BuildVocab(corpus)
	model := ie.NewModel(vocab, true)
	tg := ie.NewTagger(model, corpus, ie.LO)
	ld := tg.Docs[0]
	rng := rand.New(rand.NewSource(7))
	b.Run("local-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pos := rng.Intn(len(ld.Labels))
			model.ScoreDelta(ld, pos, ie.Label(rng.Intn(ie.NumLabels)))
		}
	})
	b.Run("full-rescore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pos := rng.Intn(len(ld.Labels))
			old := ld.Labels[pos]
			before := model.DocScore(ld)
			ld.Labels[pos] = ie.Label(rng.Intn(ie.NumLabels))
			_ = model.DocScore(ld) - before
			ld.Labels[pos] = old
		}
	})
}

// BenchmarkSkipAblation compares MH step cost with and without skip
// factors (density ablation).
func BenchmarkSkipAblation(b *testing.B) {
	for _, useSkip := range []bool{false, true} {
		b.Run(fmt.Sprintf("skip=%v", useSkip), func(b *testing.B) {
			sys := benchSystem(b, 30_000, useSkip)
			ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, 3)
			if err != nil {
				b.Fatal(err)
			}
			s := ch.Evaluator.Sampler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkThinningAblation sweeps k, the steps-per-sample interval: cost
// per sample grows with k while sample dependence shrinks (Section 4.1).
func BenchmarkThinningAblation(b *testing.B) {
	sys := benchSystem(b, 30_000, true)
	for _, k := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ch, err := sys.NewChain(core.Materialized, exp.Query1, k, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ch.Evaluator.CollectSample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerativeVsMCMC reproduces the Section 2 comparison against
// MCDB-style generative sampling on the linear-chain model (the only
// model family with a tractable iid sampler): one iid sample regenerates
// every document by forward-filtering backward-sampling and runs the
// full query, while one MCMC sample advances the world k steps and
// updates the materialized view. Both produce one valid query sample;
// the cost gap is the paper's argument for hypothesizing modifications
// instead of generating worlds.
func BenchmarkGenerativeVsMCMC(b *testing.B) {
	sys := benchSystem(b, 30_000, false) // linear chain: iid sampler exists
	b.Run("generative-iid", func(b *testing.B) {
		ch, err := sys.NewChain(core.Naive, exp.Query1, benchThin, 7)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ch.Tagger.SampleCorpus(rng); err != nil {
				b.Fatal(err)
			}
			if err := ch.Evaluator.CollectSample(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mcmc-materialized", func(b *testing.B) {
		ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ch.Evaluator.CollectSample(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGibbsVsMH compares kernel step costs: a Gibbs step evaluates
// all nine labels' local scores; an MH step evaluates two.
func BenchmarkGibbsVsMH(b *testing.B) {
	sys := benchSystem(b, 30_000, true)
	ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mh", func(b *testing.B) {
		s := ch.Evaluator.Sampler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("gibbs", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch.Tagger.GibbsStep(rng)
		}
	})
}

// BenchmarkCorefSampling measures entity-resolution move proposals
// (Figure 1's second modeled problem).
func BenchmarkCorefSampling(b *testing.B) {
	mentions, err := coref.Generate(coref.GenConfig{NumEntities: 40, MentionsPerEntity: 5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	state := coref.NewSingletonState(mentions)
	sampler := mcmc.NewSampler(coref.NewMoveProposer(state, coref.DefaultModel()), 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.Step()
	}
}

// BenchmarkFacadeOverhead measures what the public API costs over direct
// core.Evaluator wiring: each iteration evaluates one full query (fresh
// chain world, bind, burn-free sampling run) on the same plan, corpus,
// thinning interval and seed — once through DB.Query and once by hand.
// The difference is the facade's own overhead: SQL re-compilation, the
// options plumbing, and Rows materialization with Wilson intervals.
func BenchmarkFacadeOverhead(b *testing.B) {
	const (
		benchSeed    = 7
		queriesPerOp = 4 // samples per query evaluation
	)
	sys := benchSystem(b, 20_000, true) // skips under -short, like the corpus benchmarks
	db, err := Open(NER(NERConfig{Tokens: 20_000, Seed: 1, TrainSteps: 200_000}),
		WithSteps(benchThin), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	b.Run("facade", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(ctx, Query1, Samples(queriesPerOp))
			if err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch, err := sys.NewChain(core.Materialized, exp.Query1, benchThin, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			if err := ch.Evaluator.Run(queriesPerOp, nil); err != nil {
				b.Fatal(err)
			}
			ch.Evaluator.Estimator().ResultsCI(1.96)
		}
	})
}

// BenchmarkTopK compares first-class SQL ranking (ORDER BY P DESC
// LIMIT k) against the fetch-all-and-sort pattern it replaces, on the
// served engine over the bimodal coref workload (same-entity pairs near
// p=1, cross-entity pairs near 0). Both paths get the same sample
// budget; the SQL path may stop early once the confidence intervals
// separate the top k from the rest, so it wins on samples walked —
// the dominant cost — not merely on skipped client-side sorting. The
// samples/op metric makes the saving visible directly.
func BenchmarkTopK(b *testing.B) {
	const (
		budget = 512
		k      = 8
	)
	db, err := Open(Coref(CorefConfig{Entities: 4, MentionsPerEntity: 3, Seed: 17}),
		WithMode(ModeServed), WithChains(1), WithSteps(200), WithSeed(19),
		WithCache(-1, 0)) // cache off: measure evaluation, not lookups
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	b.Run("sql-limit", func(b *testing.B) {
		rankedSQL := fmt.Sprintf("%s ORDER BY P DESC LIMIT %d", PairQuery, k)
		var samples int64
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(ctx, rankedSQL, Samples(budget))
			if err != nil {
				b.Fatal(err)
			}
			samples += rows.Samples()
			rows.Close()
		}
		b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
	})
	b.Run("fetch-all-sort", func(b *testing.B) {
		var samples int64
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(ctx, PairQuery, Samples(budget))
			if err != nil {
				b.Fatal(err)
			}
			samples += rows.Samples()
			type pairP struct {
				a, b int64
				p    float64
			}
			var all []pairP
			for rows.Next() {
				var m1, m2 int64
				if err := rows.Scan(&m1, &m2); err != nil {
					b.Fatal(err)
				}
				all = append(all, pairP{m1, m2, rows.Prob()})
			}
			sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
			if len(all) > k {
				all = all[:k]
			}
			rows.Close()
		}
		b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
	})
}
