package factordb

import (
	"context"
	"fmt"
	"math"
	"time"

	"factordb/internal/core"
	"factordb/internal/ra"
	"factordb/internal/serve"
	"factordb/internal/sqlparse"
)

// queryOptions tunes one query evaluation; zero values inherit the DB
// defaults set at Open.
type queryOptions struct {
	samples      int
	confidence   float64
	noCache      bool
	allowPartial bool
	trace        bool
	traceID      string
}

// QueryOption configures one DB.Query call.
type QueryOption func(*queryOptions)

// Samples overrides the sample budget for this query. More samples
// tighten the confidence intervals at the cost of latency.
func Samples(n int) QueryOption { return func(o *queryOptions) { o.samples = n } }

// Confidence overrides the two-sided confidence-interval mass in (0,1)
// for this query.
func Confidence(c float64) QueryOption { return func(o *queryOptions) { o.confidence = c } }

// NoCache bypasses the served-mode result cache for this query. The
// cache is keyed by the canonical plan's fingerprint plus the query
// options, not the SQL text: spelling variants of one query share an
// entry, while different budgets or confidence levels do not.
func NoCache() QueryOption { return func(o *queryOptions) { o.noCache = true } }

// AllowPartial opts into anytime semantics: if the context expires (or
// the DB closes) after at least one sample was collected, Query returns
// the truncated estimate with Rows.Partial set instead of an error. MCMC
// estimates are anytime — a truncated answer with wide intervals can beat
// a timeout. Without this option, interrupted queries return the context
// error (or ErrClosed), matching database/sql expectations.
func AllowPartial() QueryOption { return func(o *queryOptions) { o.allowPartial = true } }

// Trace records a span breakdown of this query's evaluation — where the
// time went, step by step — readable afterwards through Rows.Trace (and
// kept in the recent-traces ring behind GET /debug/traces). Tracing is
// off by default and the disabled path is one branch per span site, so
// leaving it off costs nothing measurable.
func Trace() QueryOption { return func(o *queryOptions) { o.trace = true } }

// TraceID propagates a caller-assigned correlation ID — the trace-id
// field of a W3C traceparent — into whatever observability this query
// produces: its trace (if recorded) and any slow-query record. It does
// not by itself enable tracing; combine with Trace for that. The HTTP
// transport sets it from the request's traceparent header.
func TraceID(id string) QueryOption { return func(o *queryOptions) { o.traceID = id } }

// Query evaluates one SQL SELECT over the possible-world distribution and
// returns a streaming iterator over the answer tuples, each carrying its
// estimated marginal probability and confidence interval, sorted by
// descending probability. The evaluation strategy is the one the DB was
// opened with: naive and materialized evaluate on a private chain in the
// calling goroutine; served registers the query on the shared chain pool.
func (db *DB) Query(ctx context.Context, sql string, opts ...QueryOption) (*Rows, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qo := queryOptions{samples: db.opts.samples, confidence: db.opts.confidence}
	for _, f := range opts {
		f(&qo)
	}
	if qo.samples <= 0 {
		qo.samples = db.opts.samples
	}
	if qo.confidence <= 0 || qo.confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v outside (0,1)", ErrBadQuery, qo.confidence)
	}
	// EXPLAIN is answered by the facade itself: it compiles (and caches)
	// the target statement but never samples.
	if sqlparse.IsExplain(sql) {
		return db.explain(ctx, sql)
	}
	// Served mode hands the SQL straight to the engine, which compiles
	// through the shared plan cache and returns the output column names
	// with the result — the facade compiles nothing. The planner emits
	// canonical plans (ra.Canonicalize), and the engine keys both its
	// result cache and its per-chain shared views by plan fingerprint
	// rather than SQL text — so however a query reaches the engine (this
	// facade, the database/sql driver, or HTTP) and however it is
	// spelled, equal queries share cache entries and materialized views.
	if db.eng != nil {
		return db.queryServed(ctx, sql, qo)
	}
	lt := db.newLocalQueryTrace(sql, qo)
	lt.span("compile")
	comp, hit, err := db.plans.CompileQuery(sql)
	if err != nil {
		db.countFailed()
		db.finishLocalTrace(lt, "error")
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if hit {
		db.planHits.Inc()
		lt.attr("plan_cache", "hit")
	} else {
		lt.attr("plan_cache", "miss")
	}
	lt.setPlan(comp.Fingerprint)
	// Copy the cached column slice: Rows hands it to callers, who may
	// append presentation columns.
	cols := append([]string(nil), comp.Cols...)
	return db.queryLocal(ctx, sql, comp.Plan, comp.Spec, cols, qo, lt)
}

// queryServed delegates to the serving engine and maps its errors and
// partial-result semantics onto the facade contract. Ranked clauses
// (ORDER BY / LIMIT / the P pseudo-column) are applied by the engine at
// snapshot-merge time, so Rows preserves the server-side order as-is.
func (db *DB) queryServed(ctx context.Context, sql string, qo queryOptions) (*Rows, error) {
	res, err := db.eng.Query(ctx, sql, serve.QueryOptions{
		Samples:    qo.samples,
		Confidence: qo.confidence,
		NoCache:    qo.noCache,
		Trace:      qo.trace,
		TraceID:    qo.traceID,
	})
	if err != nil {
		return nil, mapServeErr(err)
	}
	cols := append([]string(nil), res.Columns...)
	if res.Partial && !qo.allowPartial {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Partial without a dead context means the engine closed under us.
		return nil, ErrClosed
	}
	return &Rows{
		cols:       cols,
		cis:        res.TupleCIs(),
		i:          -1,
		samples:    res.Samples,
		chains:     res.Chains,
		epoch:      res.Epoch,
		confidence: res.Confidence,
		partial:    res.Partial,
		earlyStop:  res.EarlyStop,
		cached:     res.Cached,
		elapsed:    res.Elapsed,
		trace:      traceFromServe(res.Trace),
	}, nil
}

// queryLocal evaluates the query on a private chain in the calling
// goroutine — Algorithm 3 (naive) or Algorithm 1 (materialized) — and
// applies the query's result-level ranking (ORDER BY / LIMIT / the P
// pseudo-column) to the finished estimate.
func (db *DB) queryLocal(ctx context.Context, sql string, plan ra.Plan, spec ra.ResultSpec, cols []string, qo queryOptions, lt *localTrace) (*Rows, error) {
	start := time.Now()
	// The read lock excludes a concurrent Exec mid-mutation: the private
	// chain world is cloned from the prototype either wholly before or
	// wholly after any write.
	lt.span("clone_world")
	db.writeMu.RLock()
	log, proposer, err := db.sys.NewChainWorld(0)
	db.writeMu.RUnlock()
	if err != nil {
		db.finishLocalTrace(lt, "error")
		return nil, err
	}
	mode := core.Naive
	if db.opts.mode == ModeMaterialized {
		mode = core.Materialized
	}
	ev, err := core.NewEvaluator(mode, log, proposer, plan, db.opts.steps, db.opts.seed)
	if err != nil {
		db.countFailed()
		db.finishLocalTrace(lt, "error")
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	lt.span("sample")
	if db.opts.burnIn > 0 {
		ev.Burn(db.opts.burnIn)
	}
	partial := false
	for i := 0; i < qo.samples; i++ {
		// The context is honored between samples: one sample is k
		// walk-steps plus one (incremental) evaluation, the natural
		// cancellation granularity of the algorithm.
		if ctx.Err() != nil || db.isClosed() {
			partial = true
			break
		}
		if err := ev.CollectSample(); err != nil {
			db.finishLocalTrace(lt, "error")
			return nil, err
		}
	}
	est := ev.Estimator()
	lt.attr("samples", fmt.Sprintf("%d", est.Samples()))
	if partial {
		if est.Samples() == 0 || !qo.allowPartial {
			db.finishLocalTrace(lt, "error")
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, ErrClosed
		}
	}
	db.queries.Inc()
	lt.span("rank")
	cis := core.SortTupleCIs(est.ResultsCI(normalQuantile(qo.confidence)), spec)
	elapsed := time.Since(start)
	db.latency.Observe(elapsed.Seconds())
	outcome := "ok"
	if partial {
		outcome = "partial"
	}
	qt := db.finishLocalTrace(lt, outcome)
	return &Rows{
		cols:       cols,
		cis:        cis,
		i:          -1,
		samples:    est.Samples(),
		chains:     1,
		epoch:      log.Epoch(),
		confidence: qo.confidence,
		partial:    partial,
		elapsed:    elapsed,
		trace:      qt,
	}, nil
}

func (db *DB) countFailed() {
	if db.eng != nil {
		db.eng.NoteBadQuery()
		return
	}
	db.failed.Inc()
}

// normalQuantile converts a two-sided confidence mass into the normal
// quantile z used by the Wilson interval (0.95 → 1.96).
func normalQuantile(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}
