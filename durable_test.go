package factordb

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Durability tests retrain their system on every Open, so they use a
// corpus an order of magnitude smaller than the shared facade fixture.
const (
	durTokens = 400
	durTrain  = 500
	durSeed   = 11
)

func durableOpts(dir string, extra ...Option) []Option {
	return append([]Option{
		WithDataDir(dir),
		WithFsync(FsyncNever), // tests exercise clean closes, not OS crashes
		WithSteps(50),
	}, extra...)
}

func durableNER() Model {
	return NER(NERConfig{Tokens: durTokens, Seed: durSeed, TrainSteps: durTrain})
}

// worldBytes snapshots the DB's prototype world for byte-identity checks.
func worldBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	ds, ok := db.sys.(durableSystem)
	if !ok {
		t.Fatal("system is not durable")
	}
	var buf bytes.Buffer
	if err := ds.WorldDB().Dump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func execN(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		sql := fmt.Sprintf("UPDATE TOKEN SET STRING = 'durable-%d' WHERE TOK_ID = %d", i, i)
		res, err := db.Exec(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected == 0 {
			t.Fatalf("write %d matched no rows", i)
		}
	}
}

// TestDurableReopenRestoresWorld is the facade-level acceptance test:
// open with a data dir, write N ops, close, reopen — the write epoch
// survives and the prototype world is byte-identical to the one at close.
func TestDurableReopenRestoresWorld(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	execN(t, db, 3)
	if got := db.WriteEpoch(); got != 3 {
		t.Fatalf("write epoch %d after 3 writes, want 3", got)
	}
	want := worldBytes(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.WriteEpoch(); got != 3 {
		t.Fatalf("recovered write epoch %d, want 3", got)
	}
	if !bytes.Equal(worldBytes(t, re), want) {
		t.Fatal("recovered prototype world differs from the world at close")
	}
	d := re.Durability()
	if d == nil {
		t.Fatal("Durability() = nil with a data dir")
	}
	if d.RecoveredEpoch != 3 || d.ReplayedRecords != 3 || d.TornTail {
		t.Fatalf("durability %+v, want recovered epoch 3 from 3 clean records", d)
	}
	// Writes keep working after recovery and extend the same epoch line.
	execN(t, re, 1)
	if got := re.WriteEpoch(); got != 4 {
		t.Fatalf("post-recovery write epoch %d, want 4", got)
	}
}

// TestDurableReopenServed runs the same contract through the serving
// engine: the WAL sees the fan-out batches and the recovered epoch seeds
// the engine's data epoch.
func TestDurableReopenServed(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir, WithMode(ModeServed), WithChains(2))
	db, err := Open(durableNER(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	execN(t, db, 2)
	if got := db.WriteEpoch(); got != 2 {
		t.Fatalf("served write epoch %d, want 2", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(durableNER(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.WriteEpoch(); got != 2 {
		t.Fatalf("recovered served write epoch %d, want 2", got)
	}
	// The next write continues the epoch sequence the log recorded.
	execN(t, re, 1)
	if got := re.WriteEpoch(); got != 3 {
		t.Fatalf("post-recovery served epoch %d, want 3", got)
	}
}

// TestDurableCheckpointTailOnly: an explicit checkpoint truncates the
// replayed prefix, so the next recovery replays only post-checkpoint
// records.
func TestDurableCheckpointTailOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	execN(t, db, 3)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	execN(t, db, 2)
	want := worldBytes(t, db)
	db.Close()

	re, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	d := re.Durability()
	if d.RecoveredEpoch != 5 || d.ReplayedRecords != 2 || d.LastCheckpointEpoch != 3 {
		t.Fatalf("durability %+v, want epoch 5 = checkpoint 3 + 2 replayed tail records", d)
	}
	if !bytes.Equal(worldBytes(t, re), want) {
		t.Fatal("world after checkpoint + tail replay differs")
	}
}

// TestDurabilityEndpointFields pins the durability block's JSON schema
// on /healthz and /statusz.
func TestDurabilityEndpointFields(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	execN(t, db, 1)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	for _, path := range []string{"/healthz", "/statusz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var raw map[string]json.RawMessage
		err = json.NewDecoder(resp.Body).Decode(&raw)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		durRaw, ok := raw["durability"]
		if !ok {
			t.Fatalf("%s has no durability block (have %v)", path, raw)
		}
		var dur map[string]json.RawMessage
		if err := json.Unmarshal(durRaw, &dur); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{
			"dir", "fsync", "wal_bytes", "wal_records",
			"last_checkpoint_epoch", "checkpoints",
			"recovered_epoch", "replayed_records",
		} {
			if _, ok := dur[key]; !ok {
				t.Errorf("%s durability is missing %q (have %v)", path, key, dur)
			}
		}
		var fsync string
		if err := json.Unmarshal(dur["fsync"], &fsync); err != nil {
			t.Fatal(err)
		}
		if fsync != "never" {
			t.Errorf("%s fsync = %q, want %q", path, fsync, "never")
		}
	}

	// Without a data dir the block is absent, not empty.
	plain, err := Open(Coref(CorefConfig{}), WithSteps(50))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Durability() != nil {
		t.Error("Durability() non-nil without a data dir")
	}
}

// TestCorefDataDirRefused: a workload with no durable prototype world
// must refuse durability loudly at Open, not lose writes silently.
func TestCorefDataDirRefused(t *testing.T) {
	_, err := Open(Coref(CorefConfig{}), WithDataDir(t.TempDir()))
	if !errors.Is(err, ErrRecovery) {
		t.Fatalf("coref with data dir: %v, want ErrRecovery", err)
	}
}
