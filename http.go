package factordb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// queryRequest is the POST /query body. Args are positional values for
// the statement's ? placeholders (strings and JSON numbers; integral
// numbers bind as integers, fractional ones as floats).
type queryRequest struct {
	SQL        string  `json:"sql"`
	Args       []any   `json:"args,omitempty"`
	Samples    int     `json:"samples,omitempty"`
	TimeoutMS  int     `json:"timeout_ms,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	NoCache    bool    `json:"no_cache,omitempty"`
	Trace      bool    `json:"trace,omitempty"`
}

// tupleJSON is one answer tuple on the wire.
type tupleJSON struct {
	Values []string `json:"values"`
	P      float64  `json:"p"`
	Lo     float64  `json:"ci_lo"`
	Hi     float64  `json:"ci_hi"`
}

// queryResponse is the POST /query answer.
type queryResponse struct {
	SQL        string      `json:"sql"`
	Columns    []string    `json:"columns,omitempty"`
	Tuples     []tupleJSON `json:"tuples"`
	Samples    int64       `json:"samples"`
	Chains     int         `json:"chains"`
	Epoch      int64       `json:"epoch"`
	Confidence float64     `json:"confidence"`
	Partial    bool        `json:"partial"`
	EarlyStop  bool        `json:"early_stop,omitempty"`
	Cached     bool        `json:"cached"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Trace      *QueryTrace `json:"trace,omitempty"`
}

// execRequest is the POST /exec body. Args bind ? placeholders, as in
// queryRequest.
type execRequest struct {
	SQL       string `json:"sql"`
	Args      []any  `json:"args,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Trace     bool   `json:"trace,omitempty"`
}

// execResponse is the POST /exec answer.
type execResponse struct {
	SQL          string      `json:"sql"`
	RowsAffected int64       `json:"rows_affected"`
	Epoch        int64       `json:"epoch"`
	Chains       int         `json:"chains"`
	ElapsedMS    float64     `json:"elapsed_ms"`
	Trace        *QueryTrace `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type healthResponse struct {
	Status     string  `json:"status"`
	Mode       string  `json:"mode"`
	Chains     int     `json:"chains"`
	Epoch      int64   `json:"epoch"`
	WriteEpoch int64   `json:"write_epoch"`
	UptimeS    float64 `json:"uptime_s"`
	// Chain-health summary (served mode; zero in the local modes): the
	// pool-wide MH acceptance rate and the live shared-view count.
	AcceptanceRate float64 `json:"acceptance_rate"`
	SharedViews    int64   `json:"shared_views"`
	// Durability reports the snapshot+WAL store; null without a data dir.
	Durability *DurabilityStatus `json:"durability,omitempty"`
}

// MaxQueryTimeout caps the per-request timeout a client may ask for.
const MaxQueryTimeout = 5 * time.Minute

// DefaultQueryTimeout applies when the request does not set one.
const DefaultQueryTimeout = 30 * time.Second

// MaxQueryBodyBytes bounds the POST /query request body. Query requests
// are a few hundred bytes of SQL and options; anything near the cap is
// either abuse or a client bug, and must not buffer unbounded memory.
const MaxQueryBodyBytes = 1 << 20

// Handler returns the database's HTTP API, the transport cmd/factordbd
// serves. It works under every mode; ModeServed is the one built for
// concurrent load.
//
//	POST /query    {"sql": "...", "samples": 128, "timeout_ms": 5000}
//	POST /exec     {"sql": "UPDATE ...", "timeout_ms": 5000}
//	GET  /healthz  liveness and chain-pool status
//	GET  /metrics  Prometheus text exposition
//	GET  /statusz  introspection: live views, sampler health, cache
//
// DML travels only over POST /exec: the method-qualified patterns make
// the mux answer 405 for a GET of either mutation or query endpoint.
// Debug endpoints (pprof, recent traces) are deliberately NOT here —
// they live on DebugHandler, which deployments bind to a separate,
// non-public listener.
func (db *DB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", db.handleQuery)
	mux.HandleFunc("POST /exec", db.handleExec)
	mux.HandleFunc("GET /healthz", db.handleHealthz)
	mux.HandleFunc("GET /metrics", db.handleMetrics)
	mux.HandleFunc("GET /statusz", db.handleStatusz)
	return mux
}

// DebugHandler returns the operator-only endpoints — Go pprof profiles
// and the recent query traces:
//
//	GET /debug/pprof/...   net/http/pprof profiles
//	GET /debug/traces      recent query traces, newest first (JSON)
//
// It is a separate handler, not part of Handler: profiles and traces can
// leak query text and timing, so cmd/factordbd only serves them when the
// -debug-addr flag opts in, typically on localhost.
func (db *DB) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", db.handleTraces)
	return mux
}

// decodeBody applies the shared request hardening: bounded body size,
// unknown fields rejected (a misspelled option silently ignored is worse
// than an error), trailing garbage rejected. Every failure is a client
// error; decodeBody writes the 400 itself and reports whether to proceed.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, MaxQueryBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	// Placeholder args decode into interface{} slots; UseNumber keeps
	// them as json.Number so integers survive undamaged (a float64
	// round-trip would corrupt large int64 keys).
	dec.UseNumber()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "trailing data after JSON body"})
		return false
	}
	return true
}

// bindableArgs converts decoded JSON placeholder arguments into the
// types the binder accepts: json.Number becomes int64 when integral,
// float64 otherwise; strings pass through. Anything else (bool, null,
// nested values) is left as-is for the binder to reject with a
// positioned error.
func bindableArgs(args []any) []any {
	if len(args) == 0 {
		return nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		if n, ok := a.(json.Number); ok {
			if v, err := n.Int64(); err == nil {
				out[i] = v
				continue
			}
			if v, err := n.Float64(); err == nil {
				out[i] = v
				continue
			}
		}
		out[i] = a
	}
	return out
}

// parseTraceparent extracts the 32-hex trace-id field of a W3C
// traceparent header ("00-<trace-id>-<parent-id>-<flags>"). Malformed
// headers — wrong field count, wrong width, non-hex, all-zero — return
// "" and the request proceeds untraced rather than failing.
func parseTraceparent(h string) string {
	parts := strings.Split(h, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return ""
	}
	id := strings.ToLower(parts[1])
	zero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return ""
	}
	return id
}

// traceContext resolves the request's W3C trace ID — the client's
// traceparent when present and well-formed, a fresh one otherwise — and
// echoes it back on the response so the caller can stitch the server's
// trace (and any slow-query or audit record, which carry the same ID)
// into its distributed trace.
func (db *DB) traceContext(w http.ResponseWriter, r *http.Request) string {
	tid := parseTraceparent(r.Header.Get("traceparent"))
	if tid == "" {
		tid = db.genTraceID(db.traceID.Add(1))
	}
	w.Header().Set("traceparent", fmt.Sprintf("00-%s-%016x-01", tid, uint64(db.traceID.Add(1))))
	return tid
}

// requestTimeout clamps the client's timeout request onto [default, max].
func requestTimeout(ms int) time.Duration {
	timeout := DefaultQueryTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > MaxQueryTimeout {
			timeout = MaxQueryTimeout
		}
	}
	return timeout
}

func (db *DB) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\" field"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), requestTimeout(req.TimeoutMS))
	defer cancel()
	opts := []ExecOption{ExecTraceID(db.traceContext(w, r))}
	if req.Trace {
		opts = append(opts, ExecTrace())
	}
	res, err := db.execArgs(ctx, req.SQL, bindableArgs(req.Args), opts...)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, execResponse{
		SQL:          req.SQL,
		RowsAffected: res.RowsAffected,
		Epoch:        res.Epoch,
		Chains:       res.Chains,
		ElapsedMS:    float64(res.Elapsed.Microseconds()) / 1000,
		Trace:        res.Trace,
	})
}

func (db *DB) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Every malformed-request path answers 400: oversized bodies
	// (surfaced by MaxBytesReader through Decode), invalid JSON, unknown
	// fields, trailing garbage (all via decodeBody), and a missing SQL
	// statement.
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\" field"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), requestTimeout(req.TimeoutMS))
	defer cancel()

	// HTTP clients get anytime semantics: a timeout that lands after the
	// first sample returns the truncated estimate flagged partial.
	opts := []QueryOption{AllowPartial(), TraceID(db.traceContext(w, r))}
	if req.Samples > 0 {
		opts = append(opts, Samples(req.Samples))
	}
	if req.Confidence != 0 {
		opts = append(opts, Confidence(req.Confidence))
	}
	if req.NoCache {
		opts = append(opts, NoCache())
	}
	if req.Trace {
		opts = append(opts, Trace())
	}
	rows, err := db.queryArgs(ctx, req.SQL, bindableArgs(req.Args), opts...)
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	defer rows.Close()
	resp := queryResponse{
		SQL:        req.SQL,
		Columns:    rows.Columns(),
		Tuples:     make([]tupleJSON, 0, rows.Len()),
		Samples:    rows.Samples(),
		Chains:     rows.Chains(),
		Epoch:      rows.epoch,
		Confidence: rows.Confidence(),
		Partial:    rows.Partial(),
		EarlyStop:  rows.EarlyStopped(),
		Cached:     rows.Cached(),
		ElapsedMS:  float64(rows.Elapsed().Microseconds()) / 1000,
		Trace:      rows.Trace(),
	}
	for rows.Next() {
		tp := rows.cis[rows.i]
		vals := make([]string, len(tp.Tuple))
		for i, v := range tp.Tuple {
			vals[i] = v.String()
		}
		resp.Tuples = append(resp.Tuples, tupleJSON{Values: vals, P: tp.P, Lo: tp.Lo, Hi: tp.Hi})
	}
	writeJSON(w, http.StatusOK, resp)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrReadOnly):
		return http.StatusNotImplemented
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (db *DB) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if db.isClosed() {
		status = "closed"
		code = http.StatusServiceUnavailable
	}
	var epoch int64
	if db.eng != nil {
		epoch = db.eng.Epoch()
	}
	var acceptance float64
	var views int64
	if db.eng != nil {
		acceptance = db.eng.AcceptanceRate()
		views = db.eng.SharedViews()
	}
	writeJSON(w, code, healthResponse{
		Status:         status,
		Mode:           db.opts.mode.String(),
		Chains:         db.Chains(),
		Epoch:          epoch,
		WriteEpoch:     db.WriteEpoch(),
		UptimeS:        time.Since(db.start).Seconds(),
		AcceptanceRate: acceptance,
		SharedViews:    views,
		Durability:     db.Durability(),
	})
}

func (db *DB) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, db.Status())
}

func (db *DB) handleTraces(w http.ResponseWriter, _ *http.Request) {
	traces := db.RecentTraces()
	if traces == nil {
		traces = []*QueryTrace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

func (db *DB) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	db.Metrics().WriteText(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
