package factordb

import (
	"errors"
	"fmt"

	"factordb/internal/metrics"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/store"
	"factordb/internal/world"
)

// ErrRecovery marks durable-storage failures surfaced through the public
// API: a data directory that cannot be opened or recovered at Open, a
// workload with no durable prototype world opened with WithDataDir, and
// a WAL append that fails mid-Exec (the write is vetoed). Match it with
// errors.Is; the wrapped message carries the store-level detail.
var ErrRecovery = errors.New("factordb: durable storage")

// FsyncPolicy selects when WAL appends reach stable storage. See the
// WithFsync option.
type FsyncPolicy uint8

const (
	// FsyncInterval (the default) syncs on a background ticker — a crash
	// loses at most ~100ms of committed writes; writes never wait on disk.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs every append before the write commits.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache.
	FsyncNever
)

func (p FsyncPolicy) String() string { return p.storePolicy().String() }

func (p FsyncPolicy) storePolicy() store.FsyncPolicy {
	switch p {
	case FsyncAlways:
		return store.FsyncAlways
	case FsyncNever:
		return store.FsyncNever
	}
	return store.FsyncInterval
}

// ParseFsyncPolicy converts the flag spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("factordb: unknown fsync policy %q (want always, interval or never)", s)
}

// WithDataDir enables durability: the prototype world is checkpointed to
// dir and every committed write is appended to a write-ahead log there,
// so reopening the same directory recovers the evidence — and the write
// epoch — a crash or restart interrupted. The directory is created if
// missing. Only workloads with a durable prototype world support this
// (NER does; coref materializes worlds per chain and does not).
func WithDataDir(dir string) Option { return func(o *options) { o.dataDir = dir } }

// WithFsync sets the WAL sync policy (default FsyncInterval). Ignored
// without WithDataDir.
func WithFsync(p FsyncPolicy) Option { return func(o *options) { o.fsync = p } }

// WithCheckpointEvery tunes background checkpointing: a snapshot is
// written (and the covered log prefix dropped) once ops mutations or
// bytes of log have accumulated since the last one. Zero keeps the
// defaults (4096 ops, 4 MiB); negative disables that trigger. Ignored
// without WithDataDir.
func WithCheckpointEvery(ops, bytes int64) Option {
	return func(o *options) { o.checkpointOps, o.checkpointBytes = ops, bytes }
}

// durableSystem is the system capability durability requires: access to
// the prototype world for seeding and the ability to swap in a recovered
// copy before any chain is cloned.
type durableSystem interface {
	WorldDB() *relstore.DB
	RestoreWorld(db *relstore.DB)
}

// worldOpsExecer is the split write capability behind the durable local
// write path: resolve first, log the resolved batch, then apply.
type worldOpsExecer interface {
	ResolveExec(mut ra.Mutation) ([]world.Op, error)
	ApplyExecOps(ops []world.Op) (int64, error)
}

// openDurability opens (or initializes) the data directory and installs
// the recovered world into the system. Returns nil when durability is
// not requested. On return the system's prototype world reflects every
// record the log could prove, and the caller must resume the epoch
// sequence at rec.Epoch.
func openDurability(o options, sys system, name string) (store.Storage, error) {
	if o.dataDir == "" {
		return nil, nil
	}
	ds, ok := sys.(durableSystem)
	if !ok {
		return nil, fmt.Errorf("%w: the %s workload has no durable prototype world", ErrRecovery, name)
	}
	st, err := store.Open(store.Options{
		Dir:             o.dataDir,
		Fsync:           o.fsync.storePolicy(),
		CheckpointOps:   o.checkpointOps,
		CheckpointBytes: o.checkpointBytes,
		Logger:          o.logger,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRecovery, err)
	}
	rec := st.Recovery()
	if rec.Fresh {
		// First open of this directory: the freshly built world is the
		// base snapshot every later recovery starts from.
		if err := st.Seed(ds.WorldDB(), 0); err != nil {
			st.Close()
			return nil, fmt.Errorf("%w: seeding %s: %v", ErrRecovery, o.dataDir, err)
		}
		return st, nil
	}
	w := st.WorldClone()
	if w == nil {
		st.Close()
		return nil, fmt.Errorf("%w: %s recovered no world", ErrRecovery, o.dataDir)
	}
	ds.RestoreWorld(w)
	return st, nil
}

// recoveryTrace renders what Open found on disk as a QueryTrace — the
// startup trace surfaced on GET /statusz. Spans are synthesized from the
// store's recovery phase timings (snapshot load, WAL replay, torn-tail
// truncation), contiguous by construction, with the replay counters as
// span attributes so a crash-recovery check can assert what was replayed.
func (db *DB) recoveryTrace(rec store.Recovery) *QueryTrace {
	id := db.traceID.Add(1)
	qt := &QueryTrace{
		ID:      id,
		SQL:     "(startup recovery)",
		TraceID: db.genTraceID(id),
		Kind:    "recovery",
		Begin:   db.start,
		Outcome: "ok",
	}
	if rec.Fresh {
		qt.Outcome = "fresh"
	}
	off := int64(0)
	span := func(name string, dur int64, attrs map[string]string) {
		if dur < 0 {
			dur = 0
		}
		qt.Spans = append(qt.Spans, TraceSpan{Name: name, StartNS: off, DurNS: dur, Attrs: attrs})
		off += dur
	}
	span("snapshot_load", rec.SnapshotLoadNS, map[string]string{
		"snapshot_epoch": fmt.Sprintf("%d", rec.SnapshotEpoch),
	})
	span("wal_replay", rec.ReplayNS, map[string]string{
		"replayed_records": fmt.Sprintf("%d", rec.ReplayedRecords),
		"replayed_ops":     fmt.Sprintf("%d", rec.ReplayedOps),
		"epoch":            fmt.Sprintf("%d", rec.Epoch),
	})
	if rec.TornTail {
		span("torn_tail_truncate", rec.TruncateNS, map[string]string{"torn_tail": "true"})
	}
	qt.WallNS = off
	return qt
}

// registerStoreMetrics attaches the store's wal/checkpoint metrics to
// the DB's registry (engine-owned in served mode).
func registerStoreMetrics(st store.Storage, reg *metrics.Registry) {
	if d, ok := st.(*store.DiskStore); ok && reg != nil {
		d.RegisterMetrics(reg)
	}
}

// DurabilityStatus reports the durable store behind a DB — the
// durability block of GET /statusz and GET /healthz. Nil when the DB was
// opened without WithDataDir.
type DurabilityStatus struct {
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WALBytes / WALRecords measure the log tail that a restart would
	// replay on top of the last checkpoint.
	WALBytes   int64 `json:"wal_bytes"`
	WALRecords int64 `json:"wal_records"`
	// LastCheckpointEpoch is the write epoch the newest snapshot covers;
	// Checkpoints counts snapshots written since open.
	LastCheckpointEpoch int64 `json:"last_checkpoint_epoch"`
	Checkpoints         int64 `json:"checkpoints"`
	// RecoveredEpoch and ReplayedRecords describe what Open found:
	// the write epoch restored from disk and the log records replayed to
	// reach it. TornTail reports that the log ended in a torn or corrupt
	// record, which recovery discarded.
	RecoveredEpoch  int64 `json:"recovered_epoch"`
	ReplayedRecords int64 `json:"replayed_records"`
	TornTail        bool  `json:"torn_tail,omitempty"`
	// LastError is the most recent background sync/checkpoint failure.
	LastError string `json:"last_error,omitempty"`
}

// Durability reports the durable store's state, or nil when the DB was
// opened without WithDataDir.
func (db *DB) Durability() *DurabilityStatus {
	if db.store == nil {
		return nil
	}
	st := db.store.Stats()
	rec := db.store.Recovery()
	return &DurabilityStatus{
		Dir:                 st.Dir,
		Fsync:               st.Fsync,
		WALBytes:            st.WALBytes,
		WALRecords:          st.WALRecords,
		LastCheckpointEpoch: st.SnapshotEpoch,
		Checkpoints:         st.Checkpoints,
		RecoveredEpoch:      rec.Epoch,
		ReplayedRecords:     rec.ReplayedRecords,
		TornTail:            rec.TornTail,
		LastError:           st.LastError,
	}
}

// Checkpoint forces a snapshot of the durable world and truncates the
// replayed log prefix, independent of the background thresholds. It is
// a no-op error-free call on a DB opened without WithDataDir.
func (db *DB) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	if err := db.store.Checkpoint(); err != nil {
		return fmt.Errorf("%w: checkpoint: %v", ErrRecovery, err)
	}
	return nil
}
