package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Per-query tracing: a traced query records a contiguous sequence of
// spans — admission wait, compile, cache probe, per-pass view
// registration / sampling wait / snapshot merge, ranking — whose
// durations tile the query's wall time exactly (each span begins the
// instant the previous one ends). Tracing is opt-in per query; a nil
// *qtrace is the disabled state, and every recording method is a nil
// check away from free, so the untraced hot path pays one predictable
// branch per would-be span (BenchmarkTraceOverhead pins this).
//
// Span names and attribute keys are a stable contract (see doc.go):
// dashboards and the factorload report parse them.

// TraceSpan is one step of a traced query. Start is the offset from the
// query's Begin; spans are contiguous and in order, so the durations sum
// to QueryTrace.WallNS.
type TraceSpan struct {
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// QueryTrace is the span breakdown of one served query or write. It is
// immutable once returned (the engine hands the same pointer to the
// result and the debug ring).
type QueryTrace struct {
	ID int64 `json:"id"`
	// TraceID is the W3C-style correlation ID (32 lowercase hex chars):
	// either propagated from the client's traceparent header or assigned
	// by the engine when the trace was engine-initiated.
	TraceID string `json:"trace_id,omitempty"`
	// Kind distinguishes read traces ("query") from write traces ("exec")
	// and the one-shot startup trace ("recovery").
	Kind    string      `json:"kind,omitempty"`
	SQL     string      `json:"sql"`
	Plan    string      `json:"plan_fingerprint,omitempty"`
	Begin   time.Time   `json:"begin"`
	WallNS  int64       `json:"wall_ns"`
	Outcome string      `json:"outcome"` // ok | cached | early_stop | partial | error
	Spans   []TraceSpan `json:"spans"`
}

// qtrace builds a QueryTrace. All methods are safe on a nil receiver —
// the disabled state — and must only be called from the query goroutine.
type qtrace struct {
	qt    QueryTrace
	begin time.Time
	open  bool
	start time.Time // start of the open span
	// publish marks traces the caller asked for (or the sampler picked):
	// those land in the result and the debug ring. A trace recorded only
	// because the slow-query log needs a breakdown stays private unless
	// the query turns out slow.
	publish bool
}

// newTrace starts a trace clocked from begin.
func newTrace(id int64, sql string, begin time.Time) *qtrace {
	return &qtrace{
		qt:    QueryTrace{ID: id, SQL: sql, Begin: begin},
		begin: begin,
		start: begin,
	}
}

// span closes the open span (if any) and opens a new one at the same
// instant, keeping the timeline gap-free.
func (t *qtrace) span(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.closeSpan(now)
	t.qt.Spans = append(t.qt.Spans, TraceSpan{Name: name, StartNS: now.Sub(t.begin).Nanoseconds()})
	t.open = true
	t.start = now
}

func (t *qtrace) closeSpan(now time.Time) {
	if !t.open {
		return
	}
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	s.DurNS = now.Sub(t.start).Nanoseconds()
	t.open = false
}

// attr annotates the open (or, after finish, the last) span.
func (t *qtrace) attr(key, val string) {
	if t == nil || len(t.qt.Spans) == 0 {
		return
	}
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[key] = val
}

// splitTail closes the open span and carves its final tailNS into a new
// span named name, keeping the timeline contiguous. This is how fsync
// gets its own span: the WAL sink reports how much of the append it
// spent in fsync, and that tail is re-labeled after the fact. The new
// span is left open with its start backdated by tailNS, so the next
// span (or finish) closes it at its own instant and no gap opens.
func (t *qtrace) splitTail(name string, tailNS int64) {
	if t == nil || !t.open {
		return
	}
	now := time.Now()
	t.closeSpan(now)
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	if tailNS < 0 {
		tailNS = 0
	}
	if tailNS > s.DurNS {
		tailNS = s.DurNS
	}
	s.DurNS -= tailNS
	t.qt.Spans = append(t.qt.Spans, TraceSpan{
		Name:    name,
		StartNS: s.StartNS + s.DurNS,
	})
	t.open = true
	t.start = now.Add(-time.Duration(tailNS))
}

// setPlan records the canonical plan fingerprint.
func (t *qtrace) setPlan(fp string) {
	if t == nil {
		return
	}
	t.qt.Plan = fp
}

// finish closes the trace with an outcome and returns the immutable
// QueryTrace (nil on the disabled state).
func (t *qtrace) finish(outcome string) *QueryTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.closeSpan(now)
	t.qt.WallNS = now.Sub(t.begin).Nanoseconds()
	t.qt.Outcome = outcome
	return &t.qt
}

// traceRing is a fixed-size ring of recent query traces behind
// GET /debug/traces. Writes are O(1) under a mutex; Snapshot returns
// newest-first copies of the pointers (traces are immutable).
type traceRing struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next int
	n    int
}

func newTraceRing(size int) *traceRing {
	if size < 1 {
		size = 1
	}
	return &traceRing{buf: make([]*QueryTrace, size)}
}

func (r *traceRing) add(t *QueryTrace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the buffered traces, newest first.
func (r *traceRing) snapshot() []*QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// traceSampler decides engine-initiated tracing: when every > 0, every
// every-th query is traced even without the client asking, so the debug
// ring always has material under steady load.
type traceSampler struct {
	every int64
	n     atomic.Int64
}

func (s *traceSampler) hit() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}
