package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when both the evaluation slots and the wait
// queue are full. Callers (the HTTP layer) translate it to 503 so load
// sheds at the edge instead of building an unbounded backlog of views on
// every chain.
var ErrOverloaded = errors.New("serve: too many concurrent queries")

// admission is a counting semaphore with a bounded wait queue.
type admission struct {
	slots    chan struct{} // capacity = max concurrent
	waiting  atomic.Int64
	maxQueue int64
	running  atomic.Int64
}

func newAdmission(maxConcurrent, maxQueued int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueued),
	}
}

// acquire takes an evaluation slot, waiting in the bounded queue if all
// slots are busy. It fails fast with ErrOverloaded when the queue is
// full, and honors ctx while waiting.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return ErrOverloaded
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by a successful acquire.
func (a *admission) release() {
	a.running.Add(-1)
	<-a.slots
}

// inFlight reports queries currently holding a slot.
func (a *admission) inFlight() int64 { return a.running.Load() }
