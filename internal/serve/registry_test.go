package serve

import (
	"context"
	"testing"
	"time"

	"factordb/internal/exp"
)

// TestCacheKeysOnFingerprint is the regression test for result-cache
// keying: the cache used to key on the raw SQL string, so whitespace,
// keyword-case, alias, and flipped-comparison variants of one query never
// hit. Keying on the canonical plan's fingerprint makes them one entry.
func TestCacheKeysOnFingerprint(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 41})
	ctx := context.Background()

	base := `SELECT STRING FROM TOKEN WHERE LABEL='B-PER' AND TOK_ID >= 0`
	variants := []string{
		"select   string \n FROM token WHERE label = 'B-PER'  and tok_id>=0", // whitespace + case
		`SELECT STRING FROM TOKEN WHERE TOK_ID >= 0 AND LABEL = 'B-PER'`,     // conjunct order
		`SELECT T.STRING FROM TOKEN T WHERE T.LABEL='B-PER' AND T.TOK_ID>=0`, // redundant qualification
	}
	aliased := []string{
		`SELECT T.STRING FROM TOKEN T WHERE T.LABEL='B-PER'`, // alias spelling...
		`SELECT U.STRING FROM TOKEN U WHERE U.LABEL='B-PER'`, // ...must not matter
	}

	first, err := eng.Query(ctx, base, QueryOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first evaluation reported cached")
	}
	for _, sql := range variants {
		res, err := eng.Query(ctx, sql, QueryOptions{Samples: 8})
		if err != nil {
			t.Fatalf("variant %q: %v", sql, err)
		}
		if !res.Cached {
			t.Errorf("textual variant %q missed the cache", sql)
		}
		if res.SQL != sql {
			t.Errorf("cache hit reports SQL %q, want the variant as issued %q", res.SQL, sql)
		}
		if len(res.Tuples) != len(first.Tuples) {
			t.Errorf("variant %q answered %d tuples, original %d", sql, len(res.Tuples), len(first.Tuples))
		}
	}

	a1, err := eng.Query(ctx, aliased[0], QueryOptions{Samples: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cached {
		t.Fatal("first aliased evaluation reported cached (budget differs from base)")
	}
	a2, err := eng.Query(ctx, aliased[1], QueryOptions{Samples: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Cached {
		t.Error("alias-renamed variant missed the cache")
	}

	// The ranked sibling shares the plan fingerprint but not the result
	// spec: it must NOT be served from the unranked entry.
	ranked, err := eng.Query(ctx, base+` ORDER BY P DESC LIMIT 2`, QueryOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ranked.Cached {
		t.Error("ranked query was served from the unranked cache entry")
	}
	if len(ranked.Tuples) > 2 {
		t.Errorf("ranked answer has %d tuples, want <= 2", len(ranked.Tuples))
	}
}

// TestSharedViewAcrossOptions pins the tentpole property end-to-end: two
// queries with equal plans but different sample budgets and confidence
// levels share one physical view per chain — budget and confidence apply
// at estimator-merge time, never to view identity — and the walk loop
// maintains that view once per batch regardless of subscriber count.
func TestSharedViewAcrossOptions(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 43, StepsPerSample: 100})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A long-running query holds the view open...
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 1 << 30, NoCache: true})
		done <- outcome{res, err}
	}()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("view registration on both chains", func() bool { return eng.sharedViews() == 2 })

	// ...while a sibling with a different budget AND confidence attaches.
	res, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 6, Confidence: 0.9, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 6 {
		t.Errorf("sibling collected %d samples, want >= 6", res.Samples)
	}
	if res.Confidence != 0.9 {
		t.Errorf("sibling confidence = %v, want its own 0.9", res.Confidence)
	}
	if hits := eng.m.viewHits.Value(); hits < 2 {
		t.Errorf("view hits = %d, want >= 2 (one per chain): options leaked into view identity", hits)
	}
	if v := eng.sharedViews(); v != 2 {
		t.Errorf("shared views = %d during overlap, want 2 (one physical view per chain)", v)
	}

	// The long query still owns the view; cancelling it releases it.
	cancel()
	o := <-done
	if o.err == nil && !o.res.Partial {
		t.Error("cancelled long query returned a complete result")
	}
	waitFor("view eviction after last unsubscribe", func() bool { return eng.sharedViews() == 0 })
}

// TestSharedViewMaintenanceAmortized checks the walk-loop invariant
// directly: with N queries subscribed to one plan on one chain, the chain
// maintains one physical view, every registration after the first is a
// hit, and the samples counter advances per subscriber (every query
// receives every sample) while the view work stays 1x. A long-running
// holder keeps the view alive so the N short queries deterministically
// attach to it even on a single-CPU scheduler.
func TestSharedViewMaintenanceAmortized(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 47, StepsPerSample: 100,
		MaxConcurrentQueries: 32, MaxQueuedQueries: 32})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		eng.Query(ctx, exp.Query4, QueryOptions{Samples: 1 << 30, NoCache: true}) //nolint:errcheck
	}()
	deadline := time.Now().Add(30 * time.Second)
	for eng.sharedViews() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("holder query never registered its view")
		}
		time.Sleep(2 * time.Millisecond)
	}

	const n = 8
	type outcome struct {
		res *Result
		err error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := eng.Query(ctx, exp.Query4, QueryOptions{Samples: 30, NoCache: true})
			results <- outcome{res, err}
		}()
	}
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Samples < 30 {
			t.Errorf("query %d: %d samples, want >= 30", i, o.res.Samples)
		}
	}
	// All n queries attached to the holder's physical view.
	if hits := eng.m.viewHits.Value(); hits < n {
		t.Errorf("view hits = %d for %d identical queries over a held view, want >= %d", hits, n, n)
	}
	if v := eng.sharedViews(); v != 1 {
		t.Errorf("shared views = %d with the holder still subscribed, want 1", v)
	}
	cancel()
	<-holderDone
}
