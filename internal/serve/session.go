package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"factordb/internal/core"
	"factordb/internal/ra"
	"factordb/internal/sqlparse"
	"factordb/internal/world"
)

// ErrBadQuery wraps SQL compile and bind failures so transports can map
// them to client errors (HTTP 400) rather than server faults.
var ErrBadQuery = errors.New("serve: bad query")

// QueryOptions tunes one query evaluation.
type QueryOptions struct {
	// Samples is the total sample budget across all chains (0 = engine
	// default). More samples tighten the confidence intervals at the cost
	// of latency: the walk advances k steps per sample per chain.
	Samples int
	// Confidence is the two-sided interval mass in (0,1); 0 means 0.95.
	Confidence float64
	// NoCache bypasses the result cache for this query.
	NoCache bool
	// Trace records a span breakdown of this query's execution, returned
	// in Result.Trace and kept in the engine's debug ring. Off by
	// default; the untraced path pays a nil check per span only.
	Trace bool
	// TraceID propagates a caller-assigned correlation ID (the trace-id
	// field of a W3C traceparent) into the recorded trace. Empty means
	// the engine assigns one when a trace is recorded.
	TraceID string
}

// TupleResult is one answer tuple with its marginal and interval.
type TupleResult struct {
	Values []string `json:"values"`
	P      float64  `json:"p"`
	Lo     float64  `json:"ci_lo"`
	Hi     float64  `json:"ci_hi"`
}

// Result is a completed (or deadline-truncated) query answer.
type Result struct {
	SQL        string        `json:"sql"`
	Columns    []string      `json:"columns,omitempty"`
	Tuples     []TupleResult `json:"tuples"`
	Samples    int64         `json:"samples"`
	Chains     int           `json:"chains"`
	Epoch      int64         `json:"epoch"` // latest chain epoch merged in
	Confidence float64       `json:"confidence"`
	Partial    bool          `json:"partial"` // deadline hit before the budget
	Cached     bool          `json:"cached"`
	Elapsed    time.Duration `json:"elapsed_ns"`

	// EarlyStop reports that a ranked query (ORDER BY P DESC LIMIT k)
	// finished before its sample budget because the confidence intervals
	// already separated the top k from the rest — refining the remaining
	// tuples could no longer change the answer.
	EarlyStop bool `json:"early_stop,omitempty"`

	// Trace is the span breakdown of this evaluation, present only when
	// the query opted in (QueryOptions.Trace) or the engine's trace
	// sampler picked it. Immutable; cache hits carry the original
	// evaluation's trace.
	Trace *QueryTrace `json:"trace,omitempty"`

	// cis carries the typed answer tuples (relstore values rather than
	// rendered strings) for in-process consumers — the factordb facade
	// and its database/sql driver — which must not lose column types to
	// JSON formatting.
	cis []core.TupleCI
}

// clone returns a defensive copy of the result: the Tuples and cis
// slices (and the Values slice of every tuple) are fresh, so callers may
// sort or mutate them freely. The relstore values inside cis are shared;
// they are immutable by convention throughout the engine.
func (r *Result) clone() *Result {
	cp := *r
	cp.Tuples = make([]TupleResult, len(r.Tuples))
	for i, t := range r.Tuples {
		t.Values = append([]string(nil), t.Values...)
		cp.Tuples[i] = t
	}
	cp.cis = append([]core.TupleCI(nil), r.cis...)
	return &cp
}

// TupleCIs returns the typed answer tuples with confidence intervals, in
// the same order as Tuples.
func (r *Result) TupleCIs() []core.TupleCI { return r.cis }

// registration tracks one chain's share of a query. A completed chain
// stores its final estimator snapshot in final before closing done; the
// cell is the fallback for chains interrupted by cancellation or
// shutdown.
type registration struct {
	c     *chain
	id    viewID
	cell  *world.Cell[*core.Estimator]
	done  chan struct{}
	final atomic.Pointer[finalSnap]
}

// snapshot returns the chain's contribution to the merged answer: the
// completion snapshot when the chain finished this query's budget, else
// whatever the shared view last published.
func (r *registration) snapshot() (world.Snapshot[*core.Estimator], bool) {
	if f := r.final.Load(); f != nil {
		return world.Snapshot[*core.Estimator]{Epoch: f.epoch, State: f.est}, true
	}
	return r.cell.Load()
}

// Query compiles sql, registers a materialized view for it on every chain
// in the pool, and blocks until the sample budget is met or ctx expires.
// Because the views of all in-flight queries share each chain's walk, the
// marginal cost of a concurrent query is its view maintenance only — the
// k walk-steps per sample are already paid for.
//
// If ctx expires after at least one sample was collected, the partial
// estimate is returned with Partial set: MCMC estimates are anytime, and
// a truncated answer with wide intervals beats an error.
//
// Ranked queries (ORDER BY P DESC LIMIT k) may finish before the budget
// with EarlyStop set: once the per-chain ranked snapshots, merged at read
// time, separate the k-th tuple's confidence interval from the (k+1)-th's,
// tuples outside the top k can no longer enter it and further refinement
// is wasted walk.
//
// The returned Result is owned by the caller: cache hits and fresh
// evaluations alike carry defensive copies of the tuple slices, so
// callers may sort or mutate them without corrupting the cache.
func (e *Engine) Query(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts, err := e.fillOpts(opts)
	if err != nil {
		return nil, err
	}

	// Tracing is opt-in (per query, or the engine's sampler): the
	// disabled state is a nil *qtrace whose every method returns on a
	// nil check, so untraced queries pay one branch per would-be span.
	// An enabled slow-query log records a private trace for every query
	// so the breakdown exists if this one crosses the threshold.
	tr := e.newQueryTrace(sql, opts)

	// Compile through the plan cache, keyed on the exact SQL byte string:
	// a repeated spelling skips lexing, parsing and canonicalization and
	// jumps straight to the fingerprint. The result cache below still
	// keys on the canonical plan's fingerprint rather than the SQL text,
	// so whitespace, keyword case, alias spelling, and predicate-order
	// variants of one query remain one result entry either way.
	tr.span("compile")
	comp, cached, err := e.cfg.Plans.CompileQuery(sql)
	if err != nil {
		e.m.failed.Inc()
		e.finishTrace(tr, "error")
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if cached {
		e.m.planHits.Inc()
		tr.attr("plan_cache", "hit")
	} else {
		tr.attr("plan_cache", "miss")
	}
	return e.queryCompiled(ctx, sql, comp, opts, tr)
}

// QueryPlan evaluates an already compiled plan — the prepared-statement
// path, where the facade binds placeholder arguments into a retained AST
// and re-plans without ever touching SQL text again. Semantics match
// Query exactly: same admission, caching, tracing and merge behavior.
func (e *Engine) QueryPlan(ctx context.Context, sql string, plan ra.Plan, spec ra.ResultSpec, opts QueryOptions) (*Result, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts, err := e.fillOpts(opts)
	if err != nil {
		return nil, err
	}
	tr := e.newQueryTrace(sql, opts)
	tr.span("compile")
	tr.attr("plan_cache", "prebound")
	comp := &sqlparse.Compiled{
		Plan:        plan,
		Spec:        spec,
		Cols:        ra.OutputColumns(plan),
		Fingerprint: ra.CanonicalFingerprint(plan),
	}
	return e.queryCompiled(ctx, sql, comp, opts, tr)
}

// fillOpts applies engine defaults and validates the per-query options.
func (e *Engine) fillOpts(opts QueryOptions) (QueryOptions, error) {
	if opts.Samples <= 0 {
		opts.Samples = e.cfg.DefaultSamples
	}
	if opts.Confidence == 0 {
		opts.Confidence = 0.95
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		e.m.failed.Inc()
		return opts, fmt.Errorf("%w: confidence %v outside (0,1)", ErrBadQuery, opts.Confidence)
	}
	return opts, nil
}

// queryCompiled is the shared evaluation core behind Query and
// QueryPlan: result-cache probe, admission, write-consistent collection
// over the chain pool, merge, rank, and cache fill.
func (e *Engine) queryCompiled(ctx context.Context, sql string, comp *sqlparse.Compiled, opts QueryOptions, tr *qtrace) (*Result, error) {
	plan, spec, fp := comp.Plan, comp.Spec, comp.Fingerprint
	tr.setPlan(fp)
	// The key adds the result-level spec (ORDER BY P / LIMIT shape the
	// cached presentation) and the per-query options that scale the
	// estimate; plan identity itself is options-free. The data epoch
	// prefix is the write path's invalidation: every committed mutation
	// bumps it, making all entries keyed under earlier epochs
	// unreachable — a cached pre-write answer can never be served after
	// the write, however the query was spelled.
	cacheKey := func(epoch int64) string {
		return fmt.Sprintf("w%d|%s|%s|n=%d|c=%v",
			epoch, fp, specKey(spec), opts.Samples, opts.Confidence)
	}
	if !opts.NoCache {
		tr.span("cache_probe")
		if res, ok := e.cache.get(cacheKey(e.dataEpoch.Load()), time.Now()); ok {
			e.m.hits.Inc()
			res.Cached = true
			res.SQL = sql // a fingerprint hit may come from a textual variant
			tr.attr("result", "hit")
			res.Trace = e.finishTrace(tr, "cached")
			return res, nil
		}
		tr.attr("result", "miss")
	}

	tr.span("admission_wait")
	if err := e.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.m.rejected.Inc()
		}
		e.finishTrace(tr, "error")
		return nil, err
	}
	defer e.admit.release()

	start := time.Now()
	z := math.Sqrt2 * math.Erfinv(opts.Confidence)

	// Collect until one pass is write-consistent. Chains absorb a write
	// independently, so a query in flight across one can end up with
	// some chains completed pre-write and others post-write; merging
	// those would blend two answer distributions, so such a pass is
	// discarded and re-collected (the reset views hand every retry a
	// fresh full budget). Consistency is judged by the write generations
	// stamped into the chains' completion snapshots: equal generations
	// mean every chain answered from the same world content, however
	// many writes committed meanwhile — so steady write traffic does not
	// starve readers; only the narrow mid-fan-out interleaving retries.
	// Early-stopped passes merge live cells instead of completion
	// snapshots and carry no generations, so they fall back to the
	// coarser data-epoch check. The retry budget is bounded so a
	// deadline-free reader cannot loop forever: a query torn that many
	// consecutive times is shed as overloaded (an honest, retryable
	// signal) rather than answered with a blend.
	var col collection
	var epoch0 int64
	for attempt := 0; ; attempt++ {
		epoch0 = e.dataEpoch.Load()
		var err error
		col, err = e.collectOnce(ctx, plan, spec, opts, z, tr)
		if err != nil {
			e.finishTrace(tr, "error")
			return nil, err
		}
		if col.partial || col.closed {
			break
		}
		consistent := !col.blended
		if col.earlyStop && e.dataEpoch.Load() != epoch0 {
			consistent = false
		}
		if consistent {
			break
		}
		if attempt >= maxCollectRetries {
			e.m.rejected.Inc()
			e.finishTrace(tr, "error")
			return nil, fmt.Errorf("%w: query torn by concurrent writes %d times",
				ErrOverloaded, attempt+1)
		}
	}
	merged, partial, closed, earlyStop := col.merged, col.partial, col.closed, col.earlyStop

	if merged.Samples() == 0 {
		e.finishTrace(tr, "error")
		if closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// All chains hit their targets yet nothing was published — cannot
		// happen (a completed view publishes every sample), so any zero
		// here is a real bug, not a timeout.
		return nil, fmt.Errorf("serve: no samples collected for %q", sql)
	}

	tr.span("rank")
	cis := core.SortTupleCIs(merged.ResultsCI(z), spec)
	tuples := make([]TupleResult, len(cis))
	for i, ci := range cis {
		vals := make([]string, len(ci.Tuple))
		for j, v := range ci.Tuple {
			vals[j] = v.String()
		}
		tuples[i] = TupleResult{Values: vals, P: ci.P, Lo: ci.Lo, Hi: ci.Hi}
	}
	res := &Result{
		SQL:        sql,
		Columns:    comp.Cols,
		Tuples:     tuples,
		Samples:    merged.Samples(),
		Chains:     len(e.chains),
		Epoch:      col.epoch,
		Confidence: opts.Confidence,
		Partial:    partial,
		EarlyStop:  earlyStop,
		Elapsed:    time.Since(start),
		cis:        cis,
	}
	e.m.queries.Inc()
	e.m.latency.Observe(res.Elapsed.Seconds())
	outcome := "ok"
	switch {
	case earlyStop:
		outcome = "early_stop"
	case partial:
		outcome = "partial"
	}
	res.Trace = e.finishTrace(tr, outcome)
	// Cache only answers whose data epoch is still current: a consistent
	// pass collected across a commit is a correct answer to return, but
	// its epoch attribution is ambiguous, and the entry would either be
	// born unreachable or risk pinning a pre-write answer under the
	// post-write key.
	if !opts.NoCache && !partial && e.dataEpoch.Load() == epoch0 {
		e.cache.put(cacheKey(epoch0), res, time.Now())
	}
	return res, nil
}

// maxCollectRetries bounds how many torn collection passes a query
// discards before degrading to a best-effort (partial) answer.
const maxCollectRetries = 4

// collection is the outcome of one register-wait-merge pass over the
// chain pool.
type collection struct {
	merged    *core.Estimator
	epoch     int64 // latest chain epoch merged in
	partial   bool
	closed    bool
	earlyStop bool
	// blended reports that the chains completed this pass on different
	// sides of a write (unequal write generations): the merge mixes two
	// answer distributions and must be discarded.
	blended bool
}

// collectOnce registers the plan on every chain, waits for the sample
// budget (or cancellation, shutdown, or ranked early stop), and merges
// the per-chain snapshots. Each call is self-contained: its views are
// detached before it returns.
func (e *Engine) collectOnce(ctx context.Context, plan ra.Plan, spec ra.ResultSpec,
	opts QueryOptions, z float64, tr *qtrace) (collection, error) {
	perChain := int64((opts.Samples + len(e.chains) - 1) / len(e.chains))
	regs := make([]*registration, 0, len(e.chains))
	defer func() {
		// Detach any view that has not completed on its own; completed
		// views were already removed by the chain.
		for _, r := range regs {
			select {
			case <-r.done:
			default:
				r.c.unregister(r.id)
			}
		}
	}()
	tr.span("register")
	reused := 0
	for _, c := range e.chains {
		reg := &registration{
			c:    c,
			id:   viewID(e.nextID.Add(1)),
			done: make(chan struct{}),
		}
		cell, hit, err := c.registerView(ctx, registerReq{
			id:     reg.id,
			plan:   plan,
			target: perChain,
			done:   reg.done,
			final:  &reg.final,
		})
		reg.cell = cell
		if err != nil {
			e.m.failed.Inc()
			if errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()) {
				return collection{}, err
			}
			return collection{}, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		if hit {
			reused++
		}
		regs = append(regs, reg)
	}
	// view_reuse tells registry hits (shared view already live) from
	// fresh mounts, per chain.
	tr.attr("view_reuse", fmt.Sprintf("%d/%d", reused, len(e.chains)))

	// Ranked queries watch the merged snapshots while waiting: when the
	// top k separates, the remaining budget is handed back to the pool.
	var tick <-chan time.Time
	if spec.TopKByProb() {
		ticker := time.NewTicker(topKCheckInterval)
		defer ticker.Stop()
		tick = ticker.C
	}

	tr.span("sample_wait")
	col := collection{}
	lastEpochs := int64(-1)
wait:
	for _, r := range regs {
		// Drain completions first: if the view already hit its target, a
		// simultaneously-closing chain or expiring context must not win
		// the select below and mark a complete answer partial.
		select {
		case <-r.done:
			continue
		default:
		}
	regWait:
		for {
			select {
			case <-r.done:
				break regWait
			case <-r.c.done:
				// Engine closed underneath us: the chain goroutine has
				// exited and will never complete this view. Return
				// whatever was published rather than blocking until ctx
				// expires.
				col.partial = true
				col.closed = true
				break wait
			case <-ctx.Done():
				col.partial = true
				break wait
			case <-tick:
				// Merging and re-ranking every snapshot is linear in the
				// answer set; only pay for it when some chain has
				// published a new epoch since the last check.
				if ep := epochSum(regs); ep != lastEpochs {
					lastEpochs = ep
					if topKSeparated(regs, spec.Limit, z) {
						col.earlyStop = true
						e.m.topkStops.Inc()
						break wait
					}
				}
			}
		}
	}

	tr.span("snapshot_merge")
	col.merged = core.NewEstimator()
	gen := int64(-1)
	for _, r := range regs {
		if f := r.final.Load(); f != nil {
			if gen >= 0 && f.gen != gen {
				col.blended = true
			}
			gen = f.gen
		}
		if snap, ok := r.snapshot(); ok {
			col.merged.Merge(snap.State)
			if snap.Epoch > col.epoch {
				col.epoch = snap.Epoch
			}
		}
	}
	tr.attr("samples", fmt.Sprintf("%d", col.merged.Samples()))
	if col.earlyStop {
		tr.attr("early_stop", "true")
	}
	return col, nil
}

// topKCheckInterval is how often a waiting ranked query re-merges the
// chains' snapshots to test for top-k separation.
const topKCheckInterval = 5 * time.Millisecond

// minTopKStopSamples is the floor of merged samples before an early stop
// is considered; below it the intervals are too wide to trust anyway and
// the check would only burn cycles.
const minTopKStopSamples = 16

// epochSum is a cheap change detector for the early-stop check: per-
// chain epochs are monotone, and the merged estimate can only change
// when some chain publishes a snapshot for a new epoch.
func epochSum(regs []*registration) int64 {
	var sum int64
	for _, r := range regs {
		if snap, ok := r.snapshot(); ok {
			sum += snap.Epoch
		}
	}
	return sum
}

// topKSeparated merges the chains' latest published snapshots and
// reports whether the ranked answer is already decided: more than k
// tuples observed, and the Wilson interval of the k-th ranked tuple
// lies entirely above the (k+1)-th's — no tuple outside the top k can
// overtake one inside it, so further refinement cannot change the
// answer's membership.
func topKSeparated(regs []*registration, k int64, z float64) bool {
	merged := core.NewEstimator()
	for _, r := range regs {
		if snap, ok := r.snapshot(); ok {
			merged.Merge(snap.State)
		}
	}
	if merged.Samples() < minTopKStopSamples {
		return false
	}
	cis := merged.ResultsCI(z)
	if int64(len(cis)) <= k {
		// The answer currently fits the limit, but more walking may
		// still surface new tuples; keep sampling.
		return false
	}
	return cis[k-1].Lo > cis[k].Hi
}

// registerView sends a registration to the chain goroutine and waits for
// the bind result — the shared view's snapshot cell — honoring ctx and
// engine shutdown.
func (c *chain) registerView(ctx context.Context, req registerReq) (*world.Cell[*core.Estimator], bool, error) {
	req.reply = make(chan registerReply, 1)
	select {
	case c.ctl <- req:
	case <-c.done:
		return nil, false, ErrClosed
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	select {
	case rep := <-req.reply:
		return rep.cell, rep.hit, rep.err
	case <-c.done:
		return nil, false, ErrClosed
	}
}

// specKey renders a ResultSpec as a stable cache-key component.
func specKey(spec ra.ResultSpec) string {
	var sb strings.Builder
	sb.WriteString("o=")
	for _, o := range spec.Order {
		if o.ByProb {
			sb.WriteString("P")
		} else {
			fmt.Fprintf(&sb, "%d", o.Index)
		}
		if o.Desc {
			sb.WriteByte('-')
		} else {
			sb.WriteByte('+')
		}
	}
	fmt.Fprintf(&sb, ";l=%d", spec.Limit)
	return sb.String()
}

// unregister detaches a view, waiting until the chain has dropped it so
// the caller knows no further snapshots will be published.
func (c *chain) unregister(id viewID) {
	req := unregisterReq{id: id, reply: make(chan struct{})}
	select {
	case c.ctl <- req:
	case <-c.done:
		return
	}
	select {
	case <-req.reply:
	case <-c.done:
	}
}
