package serve

import (
	"context"
	"fmt"
	"testing"

	"factordb/internal/exp"
)

// BenchmarkEngineChainScaling measures wall time to answer one query with
// a fixed total sample budget as the chain pool grows. Chains walk truly
// in parallel, so with GOMAXPROCS >= 4 the 4-chain engine should finish
// the budget at least ~2x faster than the single chain (the acceptance
// bar; in practice closer to linear until memory bandwidth binds).
func BenchmarkEngineChainScaling(b *testing.B) {
	if testing.Short() {
		b.Skip("corpus building is expensive; skipped in -short mode")
	}
	sys, err := exp.BuildNER(exp.Config{NumTokens: 30_000, Seed: 1, UseSkip: true, TrainSteps: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	const budget = 256
	for _, chains := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			eng, err := New(sys, Config{Chains: chains, StepsPerSample: 1000, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(context.Background(), exp.Query1,
					QueryOptions{Samples: budget, NoCache: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Samples)/res.Elapsed.Seconds(), "samples/s")
			}
		})
	}
}

// BenchmarkEngineConcurrentQueries measures aggregate throughput with 8
// in-flight queries sharing the chains' walks — the multi-query
// amortization the serving engine exists for.
func BenchmarkEngineConcurrentQueries(b *testing.B) {
	if testing.Short() {
		b.Skip("corpus building is expensive; skipped in -short mode")
	}
	sys, err := exp.BuildNER(exp.Config{NumTokens: 30_000, Seed: 1, UseSkip: true, TrainSteps: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(sys, Config{Chains: 4, StepsPerSample: 1000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	queries := []string{exp.Query1, exp.Query2, exp.Query3, exp.Query4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := make(chan error, 8)
		for q := 0; q < 8; q++ {
			go func(q int) {
				_, err := eng.Query(context.Background(), queries[q%len(queries)],
					QueryOptions{Samples: 64, NoCache: true})
				errs <- err
			}(q)
		}
		for q := 0; q < 8; q++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
}
