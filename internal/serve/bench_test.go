package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"factordb/internal/exp"
	"factordb/internal/sqlparse"
	"factordb/internal/store"
)

// BenchmarkSharedViews measures the registry payoff: wall time for N
// concurrent identical queries (the ten-dashboards workload) against one
// chain. A standing subscription pins the physical view — the dashboard
// scenario, and a deterministic rendezvous even on a single-CPU
// scheduler — so all N timed queries attach to it: per-batch view
// maintenance is independent of N and total time stays ~flat. Without
// the registry each query owned a private view and the per-epoch cost
// grew linearly in N. Runs in -short mode by design: the CI bench smoke
// job must exercise it.
func BenchmarkSharedViews(b *testing.B) {
	sys := testSystem(b)
	const budget = 128
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			eng, err := New(sys, Config{Chains: 1, StepsPerSample: 100, Seed: 13,
				MaxConcurrentQueries: 2 * n, MaxQueuedQueries: 2 * n})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			plan, _, err := sqlparse.Compile(exp.Query4)
			if err != nil {
				b.Fatal(err)
			}
			holdID := viewID(eng.nextID.Add(1))
			if _, _, err := eng.chains[0].registerView(ctx, registerReq{
				id: holdID, plan: plan, target: 1 << 62, done: make(chan struct{}),
			}); err != nil {
				b.Fatal(err)
			}
			defer eng.chains[0].unregister(holdID)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for q := 0; q < n; q++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := eng.Query(ctx, exp.Query4,
							QueryOptions{Samples: budget, NoCache: true}); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			if hits := eng.m.viewHits.Value(); int(hits) < n*b.N {
				b.Logf("warning: only %d view hits for %d queries x %d iters — sharing did not engage",
					hits, n, b.N)
			}
		})
	}
}

// BenchmarkEngineChainScaling measures wall time to answer one query with
// a fixed total sample budget as the chain pool grows. Chains walk truly
// in parallel, so with GOMAXPROCS >= 4 the 4-chain engine should finish
// the budget at least ~2x faster than the single chain (the acceptance
// bar; in practice closer to linear until memory bandwidth binds).
func BenchmarkEngineChainScaling(b *testing.B) {
	if testing.Short() {
		b.Skip("corpus building is expensive; skipped in -short mode")
	}
	sys, err := exp.BuildNER(exp.Config{NumTokens: 30_000, Seed: 1, UseSkip: true, TrainSteps: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	const budget = 256
	for _, chains := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			eng, err := New(sys, Config{Chains: chains, StepsPerSample: 1000, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(context.Background(), exp.Query1,
					QueryOptions{Samples: budget, NoCache: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Samples)/res.Elapsed.Seconds(), "samples/s")
			}
		})
	}
}

// BenchmarkWriteReequilibrate measures the write path's end-to-end cost:
// one committed DML mutation (fan-out to every chain, post-write burn-in,
// view delta fold, estimator reset) followed by a query that must reflect
// the post-write marginals. The asserted answer is the reproduction of
// the paper's update claim: the world is mutated in place and the chains
// keep sampling — queries converge to the post-write distribution with no
// engine restart and no lineage recomputation. Runs in -short mode by
// design: the CI bench smoke job must exercise the write workload.
//
// The nowal/wal-interval pair bounds durability's write-path overhead:
// with fsync=interval the append never waits on the disk, so the wal
// variant must track the baseline closely (the acceptance bar is <=10%).
func BenchmarkWriteReequilibrate(b *testing.B) {
	for _, wal := range []bool{false, true} {
		name := "nowal"
		if wal {
			name = "wal-interval"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := exp.BuildCoref(exp.CorefConfig{NumEntities: 6, MentionsPerEntity: 4, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{Chains: 2, StepsPerSample: 200, Seed: 17}
			if wal {
				// Log-only store (coref has no durable prototype world):
				// exactly the per-write append + background-sync cost.
				st, err := store.Open(store.Options{Dir: b.TempDir(), Fsync: store.FsyncInterval})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				cfg.WAL = st
			}
			eng, err := New(sys, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				want := fmt.Sprintf("V%d", i%2)
				if _, err := eng.Exec(ctx, fmt.Sprintf(
					`UPDATE MENTION SET STRING = '%s' WHERE MENTION_ID = 0`, want)); err != nil {
					b.Fatal(err)
				}
				res, err := eng.Query(ctx, `SELECT STRING FROM MENTION WHERE MENTION_ID = 0`,
					QueryOptions{Samples: 8, NoCache: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tuples) != 1 || res.Tuples[0].Values[0] != want || res.Tuples[0].P != 1 {
					b.Fatalf("iteration %d: post-write answer %+v, want %q at marginal 1", i, res.Tuples, want)
				}
			}
		})
	}
}

// BenchmarkEngineConcurrentQueries measures aggregate throughput with 8
// in-flight queries sharing the chains' walks — the multi-query
// amortization the serving engine exists for.
func BenchmarkEngineConcurrentQueries(b *testing.B) {
	if testing.Short() {
		b.Skip("corpus building is expensive; skipped in -short mode")
	}
	sys, err := exp.BuildNER(exp.Config{NumTokens: 30_000, Seed: 1, UseSkip: true, TrainSteps: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(sys, Config{Chains: 4, StepsPerSample: 1000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	queries := []string{exp.Query1, exp.Query2, exp.Query3, exp.Query4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := make(chan error, 8)
		for q := 0; q < 8; q++ {
			go func(q int) {
				_, err := eng.Query(context.Background(), queries[q%len(queries)],
					QueryOptions{Samples: 64, NoCache: true})
				errs <- err
			}(q)
		}
		for q := 0; q < 8; q++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}
}
