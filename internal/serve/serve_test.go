package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"factordb/internal/core"
	"factordb/internal/exp"
)

// testSystem builds one small trained NER system shared by every test in
// the package (construction dominates test time).
var (
	sysOnce sync.Once
	sysVal  *exp.NERSystem
	sysErr  error
)

func testSystem(t testing.TB) *exp.NERSystem {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = exp.BuildNER(exp.Config{NumTokens: 3000, Seed: 5, UseSkip: true, TrainSteps: 20000})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

const testThin = 300

func testEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.StepsPerSample == 0 {
		cfg.StepsPerSample = testThin
	}
	eng, err := New(testSystem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestEngineMatchesSingleQueryEvaluator is the core consistency property:
// a single-chain engine with a given seed walks the exact same chain as a
// stand-alone materialized evaluator with that seed, so the served
// marginals must be bitwise identical to core.Evaluator's.
func TestEngineMatchesSingleQueryEvaluator(t *testing.T) {
	sys := testSystem(t)
	const seed, samples = 31, 40

	eng := testEngine(t, Config{Chains: 1, Seed: seed})
	res, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != samples {
		t.Fatalf("engine collected %d samples, want %d", res.Samples, samples)
	}

	ch, err := sys.NewChain(core.Materialized, exp.Query1, testThin, ChainSeed(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Evaluator.Run(samples, nil); err != nil {
		t.Fatal(err)
	}
	want := ch.Evaluator.Results()
	if len(res.Tuples) != len(want) {
		t.Fatalf("engine answered %d tuples, evaluator %d", len(res.Tuples), len(want))
	}
	for i, tp := range want {
		got := res.Tuples[i]
		if got.P != tp.P || got.Values[0] != tp.Tuple[0].AsString() {
			t.Errorf("tuple %d: engine (%v, %v) vs evaluator (%v, %v)",
				i, got.Values[0], got.P, tp.Tuple[0].AsString(), tp.P)
		}
	}
}

// TestEngineServesConcurrentQueries is the integration test of the
// acceptance criteria: 8 concurrent queries mixing the paper's Queries
// 1–4 against one shared trained world.
func TestEngineServesConcurrentQueries(t *testing.T) {
	eng := testEngine(t, Config{Chains: 3, Seed: 7})
	queries := []string{
		exp.Query1, exp.Query2, exp.Query3, exp.Query4,
		exp.Query1, exp.Query2, exp.Query3, exp.Query4,
	}
	type outcome struct {
		res *Result
		err error
	}
	out := make([]outcome, len(queries))
	var wg sync.WaitGroup
	for i, sql := range queries {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := eng.Query(ctx, sql, QueryOptions{Samples: 60, NoCache: true})
			out[i] = outcome{res, err}
		}(i, sql)
	}
	wg.Wait()

	for i, o := range out {
		if o.err != nil {
			t.Fatalf("query %d (%q): %v", i, queries[i], o.err)
		}
		if o.res.Samples < 60 {
			t.Errorf("query %d: %d samples, want >= 60", i, o.res.Samples)
		}
		if o.res.Chains != 3 {
			t.Errorf("query %d: served by %d chains", i, o.res.Chains)
		}
		if o.res.Partial {
			t.Errorf("query %d: unexpectedly partial", i)
		}
		for _, tp := range o.res.Tuples {
			if tp.P < 0 || tp.P > 1 || tp.Lo > tp.P || tp.Hi < tp.P {
				t.Errorf("query %d: malformed tuple %+v", i, tp)
			}
		}
	}
	// Query 2 (global count) answers a distribution over counts: exactly
	// one count per sample, so the marginals sum to 1.
	var mass float64
	for _, tp := range out[1].res.Tuples {
		mass += tp.P
	}
	if mass < 0.999 || mass > 1.001 {
		t.Errorf("Query 2 histogram mass = %v, want 1", mass)
	}
	// Query 1 must produce a non-degenerate answer on the trained world.
	if len(out[0].res.Tuples) == 0 {
		t.Error("Query 1 returned no tuples")
	}

	// The whole point of the shared-world engine: 8 queries × 60 samples
	// landed while the chains walked far fewer than 8 × 60 × k steps,
	// because in-flight queries share each chain's walk.
	samples := eng.m.samples.Value()
	if samples < 8*60 {
		t.Errorf("samples counter = %d, want >= 480", samples)
	}
	steps := eng.m.steps.Value()
	if naive := int64(8*60) * testThin; steps >= naive {
		t.Errorf("walked %d steps for 8 queries — no amortization (naive cost %d)", steps, naive)
	}
}

func TestQueryCache(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 11})
	ctx := context.Background()
	r1, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first evaluation reported cached")
	}
	r2, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second evaluation missed the cache")
	}
	if r2.Samples != r1.Samples || len(r2.Tuples) != len(r1.Tuples) {
		t.Error("cached result differs from original")
	}
	// A different sample budget is a different cache key.
	r3, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 12})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("different budget should not hit the cache")
	}
}

func TestQueryErrors(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 13})
	ctx := context.Background()
	if _, err := eng.Query(ctx, "SELECT FROM", QueryOptions{}); err == nil || !strings.Contains(err.Error(), "bad query") {
		t.Errorf("parse error not surfaced as bad query: %v", err)
	}
	if _, err := eng.Query(ctx, "SELECT X FROM NO_SUCH_TABLE", QueryOptions{Samples: 4}); err == nil || !strings.Contains(err.Error(), "bad query") {
		t.Errorf("bind error not surfaced as bad query: %v", err)
	}
	if _, err := eng.Query(ctx, exp.Query1, QueryOptions{Confidence: 2}); err == nil {
		t.Error("confidence outside (0,1) accepted")
	}
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.Query(expired, exp.Query1, QueryOptions{Samples: 4, NoCache: true}); err == nil {
		t.Error("expired context accepted")
	}
}

func TestPartialResultOnTimeout(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 17})
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	// A budget far beyond what 400ms allows: the session must come back
	// with whatever the chains produced, flagged partial.
	res, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 1_000_000, NoCache: true})
	if err != nil {
		// Acceptable only if not even one sample landed in time.
		t.Skipf("no samples within the timeout on this machine: %v", err)
	}
	if !res.Partial {
		t.Error("truncated query not flagged partial")
	}
	if res.Samples <= 0 || res.Samples >= 1_000_000 {
		t.Errorf("partial sample count %d", res.Samples)
	}
}

func TestEngineClose(t *testing.T) {
	eng, err := New(testSystem(t), Config{Chains: 2, Seed: 19, StepsPerSample: testThin})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Query(context.Background(), exp.Query1, QueryOptions{}); err != ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
}

// TestCloseDuringInflightQuery races Close against a Query that could
// never finish its budget: the session must be woken by the chain
// shutdown and return promptly — either ErrClosed (nothing sampled yet)
// or a partial result — instead of blocking until its context expires.
func TestCloseDuringInflightQuery(t *testing.T) {
	eng, err := New(testSystem(t), Config{Chains: 2, Seed: 29, StepsPerSample: testThin})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := eng.Query(context.Background(), exp.Query1,
			QueryOptions{Samples: 1 << 30, NoCache: true})
		done <- outcome{res, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the query register its views
	eng.Close()
	select {
	case o := <-done:
		switch {
		case o.err == nil:
			if !o.res.Partial {
				t.Error("query truncated by Close not flagged partial")
			}
		case o.err != ErrClosed:
			t.Errorf("query racing Close = %v, want ErrClosed or partial result", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Query did not return after Close — session is deadlocked")
	}
	// And again fully closed: the fast-fail path.
	if _, err := eng.Query(context.Background(), exp.Query1, QueryOptions{}); err != ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if a.inFlight() != 1 {
		t.Fatalf("inFlight = %d", a.inFlight())
	}
	// Slot busy: one waiter fits in the queue, the next is shed.
	waiterIn := make(chan error, 1)
	go func() {
		err := a.acquire(ctx)
		waiterIn <- err
	}()
	// Wait until the waiter is queued before probing the overflow path.
	for i := 0; a.waiting.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(ctx); err != ErrOverloaded {
		t.Errorf("queue overflow = %v, want ErrOverloaded", err)
	}
	a.release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release()

	// Waiting honors context cancellation.
	if err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := a.acquire(short); err != context.DeadlineExceeded {
		t.Errorf("cancelled wait = %v, want deadline exceeded", err)
	}
	a.release()
}

func TestResultCache(t *testing.T) {
	now := time.Unix(0, 0)
	c := newResultCache(2, time.Minute, nil)
	r := &Result{SQL: "a"}
	c.put("a", r, now)
	// get returns a defensive copy, never the stored pointer.
	if got, ok := c.get("a", now); !ok || got == r || got.SQL != "a" {
		t.Fatalf("immediate get = %+v, %v; want an independent copy", r, ok)
	}
	// TTL expiry.
	if _, ok := c.get("a", now.Add(2*time.Minute)); ok {
		t.Error("expired entry served")
	}
	// LRU eviction at capacity 2: touching "a" makes "b" the victim.
	c.put("a", r, now)
	c.put("b", &Result{SQL: "b"}, now)
	c.get("a", now)
	c.put("c", &Result{SQL: "c"}, now)
	if _, ok := c.get("b", now); ok {
		t.Error("LRU victim survived")
	}
	if _, ok := c.get("a", now); !ok {
		t.Error("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Errorf("cache len = %d", c.len())
	}
	// Disabled cache.
	d := newResultCache(-1, time.Minute, nil)
	d.put("x", r, now)
	if _, ok := d.get("x", now); ok {
		t.Error("disabled cache served an entry")
	}
}

// The HTTP endpoints formerly tested here moved behind the public facade;
// see TestHandlerEndpoints in the repository root package.
