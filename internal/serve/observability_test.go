package serve

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"factordb/internal/exp"
	"factordb/internal/metrics"
	"factordb/internal/sqlparse"
)

// TestQueryTraceSpans pins the trace contract: opt-in tracing returns a
// span timeline that is contiguous (each span starts where the previous
// ended) and tiles the query's wall time, with the canonical plan
// fingerprint attached.
func TestQueryTraceSpans(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 41})
	res, err := eng.Query(context.Background(), exp.Query1,
		QueryOptions{Samples: 8, NoCache: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("traced query returned no trace")
	}
	if tr.Outcome != "ok" {
		t.Fatalf("outcome = %q, want ok", tr.Outcome)
	}
	if !strings.HasPrefix(tr.Plan, "qfp1:") && !strings.HasPrefix(tr.Plan, "bfp1:") {
		t.Fatalf("trace carries no plan fingerprint: %q", tr.Plan)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	wantNames := map[string]bool{}
	var sum int64
	for i, s := range tr.Spans {
		wantNames[s.Name] = true
		if s.DurNS < 0 {
			t.Fatalf("span %q has negative duration %d", s.Name, s.DurNS)
		}
		if i > 0 {
			prev := tr.Spans[i-1]
			if s.StartNS != prev.StartNS+prev.DurNS {
				t.Fatalf("span %q starts at %d, previous ended at %d — timeline has a gap",
					s.Name, s.StartNS, prev.StartNS+prev.DurNS)
			}
		}
		sum += s.DurNS
	}
	// NoCache queries skip the cache_probe span (that path is pinned by
	// TestTraceCachedOutcome).
	for _, name := range []string{"compile", "admission_wait", "register", "sample_wait", "snapshot_merge", "rank"} {
		if !wantNames[name] {
			t.Errorf("trace is missing the %q span (have %v)", name, tr.Spans)
		}
	}
	// Contiguous spans from the first span's start to finish: the span
	// durations plus the (nanoseconds-scale) lead-in before the first
	// span must equal the wall time exactly.
	if got := sum + tr.Spans[0].StartNS; got != tr.WallNS {
		t.Fatalf("span durations sum to %dns (+%dns lead-in), wall time is %dns",
			sum, tr.Spans[0].StartNS, tr.WallNS)
	}

	// The trace landed in the debug ring, newest first.
	traces := eng.Traces()
	if len(traces) == 0 || traces[0].ID != tr.ID {
		t.Fatalf("debug ring does not lead with the traced query: %+v", traces)
	}
}

// TestTraceCachedOutcome pins that a cache hit on a traced query yields a
// short trace with outcome "cached".
func TestTraceCachedOutcome(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 43})
	if _, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: 4}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("second identical query missed the cache")
	}
	if res.Trace == nil || res.Trace.Outcome != "cached" {
		t.Fatalf("cached trace = %+v, want outcome cached", res.Trace)
	}
}

// TestTraceSamplerPicksQueries pins engine-initiated tracing: with
// TraceEvery=1 every query is traced without the client asking.
func TestTraceSamplerPicksQueries(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 47, TraceEvery: 1})
	res, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("TraceEvery=1 query carries no trace")
	}
	if len(eng.Traces()) == 0 {
		t.Fatal("debug ring is empty after a sampled trace")
	}
}

// TestUntracedQueryHasNoTrace pins the default: no opt-in, no sampler,
// no trace anywhere.
func TestUntracedQueryHasNoTrace(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 53})
	res, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced query carries a trace: %+v", res.Trace)
	}
	if n := len(eng.Traces()); n != 0 {
		t.Fatalf("debug ring holds %d traces with tracing off", n)
	}
}

// BenchmarkTraceOverhead pins the cost of the disabled tracing path: the
// nil-receiver span sites the query hot path pays when no one asked for
// a trace. This must stay within noise of free.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *qtrace
		for i := 0; i < b.N; i++ {
			tr.span("compile")
			tr.attr("k", "v")
			tr.setPlan("fp")
			if tr.finish("ok") != nil {
				b.Fatal("nil trace finished non-nil")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := newTrace(int64(i), "SELECT 1", time.Now())
			tr.span("compile")
			tr.attr("k", "v")
			tr.setPlan("fp")
			if tr.finish("ok") == nil {
				b.Fatal("live trace finished nil")
			}
		}
	})
}

// --- sampler health diagnostics ---

func TestSplitRHatConverged(t *testing.T) {
	// Two chains drawing from the same alternating pattern: stationary
	// and identical, so R̂ must be very close to 1.
	a := make([]float64, 64)
	b := make([]float64, 64)
	for i := range a {
		a[i] = float64(i % 4)
		b[i] = float64((i + 2) % 4)
	}
	r := splitRHat([][]float64{a, b})
	if math.IsNaN(r) || r > 1.1 {
		t.Fatalf("converged chains: R-hat = %v, want ~1", r)
	}
}

func TestSplitRHatDiverged(t *testing.T) {
	// Two chains stuck in different modes: between-chain variance dwarfs
	// within-chain variance, so R̂ must be well above 1.
	a := make([]float64, 64)
	b := make([]float64, 64)
	for i := range a {
		a[i] = 1 + 0.01*float64(i%2)
		b[i] = 100 + 0.01*float64(i%2)
	}
	if r := splitRHat([][]float64{a, b}); r < 1.5 {
		t.Fatalf("diverged chains: R-hat = %v, want >> 1", r)
	}
}

func TestSplitRHatEdgeCases(t *testing.T) {
	if r := splitRHat(nil); !math.IsNaN(r) {
		t.Fatalf("no chains: R-hat = %v, want NaN", r)
	}
	if r := splitRHat([][]float64{{1, 2}, {1, 2}}); !math.IsNaN(r) {
		t.Fatalf("too few observations: R-hat = %v, want NaN", r)
	}
	con := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	if r := splitRHat([][]float64{con, con}); r != 1 {
		t.Fatalf("constant equal chains: R-hat = %v, want 1", r)
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	// Constant chains carry no autocorrelation signal: ESS reports the
	// raw draw count.
	con := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	if e := effectiveSampleSize([][]float64{con, con}); e != 16 {
		t.Fatalf("constant chains: ESS = %v, want 16", e)
	}
	// A strongly autocorrelated (slowly ramping) chain must be worth far
	// fewer independent samples than its draw count.
	n := 128
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 0.5
	}
	e := effectiveSampleSize([][]float64{a, b})
	if math.IsNaN(e) || e > float64(n) {
		t.Fatalf("ramping chains: ESS = %v, want < %d and finite", e, n)
	}
	if e > float64(n)/4 {
		t.Fatalf("ramping chains: ESS = %v, want heavy autocorrelation discount", e)
	}
}

func TestSampleSeriesRing(t *testing.T) {
	s := newSampleSeries()
	for i := 0; i < seriesCap+10; i++ {
		s.push(float64(i))
	}
	got := s.snapshot()
	if len(got) != seriesCap {
		t.Fatalf("ring holds %d, want %d", len(got), seriesCap)
	}
	if got[0] != 10 || got[len(got)-1] != float64(seriesCap+9) {
		t.Fatalf("ring window [%v..%v], want [10..%d]", got[0], got[len(got)-1], seriesCap+9)
	}
	s.reset()
	if n := len(s.snapshot()); n != 0 {
		t.Fatalf("reset ring holds %d observations", n)
	}
}

func TestRateTracker(t *testing.T) {
	start := time.Now()
	rt := newRateTracker(start)
	if r := rt.rate(100, start.Add(time.Second)); math.Abs(r-100) > 1e-9 {
		t.Fatalf("first scrape rate = %v, want 100", r)
	}
	if r := rt.rate(400, start.Add(3*time.Second)); math.Abs(r-150) > 1e-9 {
		t.Fatalf("second scrape rate = %v, want 150", r)
	}
}

// TestEngineStatusAndHealthGauges holds one view live and checks that it
// is visible with its refcount in Engine.Status and that the per-chain
// and per-view gauges render on the metrics page.
func TestEngineStatusAndHealthGauges(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 59})
	plan, _, err := sqlparse.Compile(exp.Query1)
	if err != nil {
		t.Fatal(err)
	}
	holdID := viewID(eng.nextID.Add(1))
	if _, _, err := eng.chains[0].registerView(context.Background(), registerReq{
		id: holdID, plan: plan, target: 1 << 62, done: make(chan struct{}),
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.chains[0].unregister(holdID)

	// Wait for the chain to produce a few epochs so the gauges have data.
	deadline := time.Now().Add(10 * time.Second)
	for eng.chains[0].stepsN.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chain never walked")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := eng.Status()
	if st.Chains != 2 || len(st.Pool) != 2 {
		t.Fatalf("status pool = %d/%d chains, want 2", st.Chains, len(st.Pool))
	}
	if st.Pool[0].Steps <= 0 {
		t.Fatalf("chain 0 reports %d steps", st.Pool[0].Steps)
	}
	if len(st.Views) != 1 {
		t.Fatalf("status lists %d views, want 1 (held)", len(st.Views))
	}
	v := st.Views[0]
	if v.Fingerprint == "" || v.Subscribers != 1 || v.Chains != 1 {
		t.Fatalf("held view stat = %+v, want fingerprint, 1 subscriber on 1 chain", v)
	}

	var sb strings.Builder
	eng.Metrics().WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		`factordb_chain_steps_total{chain="0"}`,
		`factordb_chain_acceptance_rate{chain="1"}`,
		`factordb_chain_steps_per_second{chain="0"}`,
		"factordb_view_rhat{view=",
		"factordb_view_ess{view=",
		"factordb_cache_entries",
		"factordb_cache_evictions_total",
		"factordb_query_seconds_bucket{le=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page is missing %q", want)
		}
	}
}

// TestCacheEvictionMetrics pins the eviction counter: LRU overflow and
// TTL expiry both count, and the entries gauge tracks occupancy.
func TestCacheEvictionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.NewCounter("evictions", "test")
	c := newResultCache(2, time.Minute, ctr)
	now := time.Now()
	c.put("a", &Result{SQL: "a"}, now)
	c.put("b", &Result{SQL: "b"}, now)
	c.put("c", &Result{SQL: "c"}, now) // evicts a (LRU overflow)
	if got := ctr.Value(); got != 1 {
		t.Fatalf("after overflow: %d evictions, want 1", got)
	}
	if n := c.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// TTL expiry on get counts too.
	if _, ok := c.get("b", now.Add(2*time.Minute)); ok {
		t.Fatal("expired entry served")
	}
	if got := ctr.Value(); got != 2 {
		t.Fatalf("after TTL expiry: %d evictions, want 2", got)
	}
	if n := c.len(); n != 1 {
		t.Fatalf("cache holds %d entries after expiry, want 1", n)
	}
}
