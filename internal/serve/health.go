package serve

import (
	"math"
	"sync"
	"time"
)

// Sampler health diagnostics. The paper's answer-quality story is "the
// chains mixed long enough": these are the classical MCMC diagnostics
// that make that claim observable. Each physical view keeps a bounded
// series of per-sample scalar observations (the sampled answer's
// cardinality — one number per walk batch, per chain); the engine groups
// the series of equal views across chains and computes cross-chain
// split-R̂ (Gelman-Rubin, halved chains) and the effective sample size,
// exposed as labeled gauges on /metrics and in /statusz and BENCH
// reports. R̂ near 1 means the chains agree with their own halves and
// with each other; ESS reports how many independent samples the
// autocorrelated walk is actually worth.

// seriesCap bounds each view's observation ring: enough history for a
// stable diagnostic, small enough that a thousand live views cost ~2 MB.
const seriesCap = 256

// sampleSeries is a bounded ring of float64 observations, written by the
// chain goroutine once per walk batch and snapshotted by scrapers.
type sampleSeries struct {
	mu   sync.Mutex
	buf  []float64
	next int
	n    int // live entries (<= len(buf))
}

func newSampleSeries() *sampleSeries {
	return &sampleSeries{buf: make([]float64, seriesCap)}
}

func (s *sampleSeries) push(v float64) {
	s.mu.Lock()
	s.buf[s.next] = v
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// reset drops the history (a write resets estimators; pre-write samples
// must not blend into post-write diagnostics either).
func (s *sampleSeries) reset() {
	s.mu.Lock()
	s.next, s.n = 0, 0
	s.mu.Unlock()
}

// snapshot returns the observations oldest-first.
func (s *sampleSeries) snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.next-s.n+i+len(s.buf))%len(s.buf)])
	}
	return out
}

// splitSequences halves each chain's series (Gelman's split trick: a
// chain that drifts disagrees with its own halves, so R̂ catches
// non-stationarity even with one chain). Sequences are truncated to a
// common even length; fewer than 4 common observations yield nil.
func splitSequences(chains [][]float64) [][]float64 {
	n := math.MaxInt
	for _, c := range chains {
		if len(c) < n {
			n = len(c)
		}
	}
	if len(chains) == 0 || n < 4 {
		return nil
	}
	n -= n % 2
	out := make([][]float64, 0, 2*len(chains))
	for _, c := range chains {
		c = c[len(c)-n:] // keep the freshest window
		out = append(out, c[:n/2], c[n/2:])
	}
	return out
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// splitRHat computes the Gelman-Rubin potential scale reduction factor
// over split chains. 1.0 means converged; values well above ~1.05 mean
// the chains have not mixed into the same distribution yet. Returns NaN
// when there is not enough data, and 1.0 when every sequence is constant
// and equal (a converged degenerate statistic, common for small answer
// sets whose cardinality has settled).
func splitRHat(chains [][]float64) float64 {
	seqs := splitSequences(chains)
	if len(seqs) < 2 {
		return math.NaN()
	}
	n := float64(len(seqs[0]))
	means := make([]float64, len(seqs))
	var w float64
	for i, s := range seqs {
		m, v := meanVar(s)
		means[i] = m
		w += v
	}
	w /= float64(len(seqs))
	_, b := meanVar(means) // b/n in BDA notation; multiply back below
	b *= n
	if w == 0 {
		if b == 0 {
			return 1
		}
		return math.Inf(1)
	}
	varPlus := (n-1)/n*w + b/n
	return math.Sqrt(varPlus / w)
}

// effectiveSampleSize estimates ESS over split chains via the variogram
// autocorrelation estimator with Geyer's initial-positive-sequence
// truncation (BDA3 §11.5 / Stan's ess_bulk shape). Bounded to the total
// draw count. NaN when there is not enough data; for constant sequences
// the walk carries no information about the statistic and ESS reports
// the raw draw count.
func effectiveSampleSize(chains [][]float64) float64 {
	seqs := splitSequences(chains)
	if len(seqs) < 2 {
		return math.NaN()
	}
	m := float64(len(seqs))
	n := len(seqs[0])
	total := m * float64(n)

	means := make([]float64, len(seqs))
	var w float64
	for i, s := range seqs {
		mu, v := meanVar(s)
		means[i] = mu
		w += v
	}
	w /= m
	_, b := meanVar(means)
	b *= float64(n)
	varPlus := (float64(n-1)/float64(n))*w + b/float64(n)
	if varPlus == 0 {
		return total // constant everywhere: no autocorrelation to discount
	}

	// rho_t = 1 - (W - mean_j acov_t,j) / varPlus, summed while pairs of
	// consecutive autocorrelations stay positive.
	var sumRho float64
	for t := 1; t < n; t += 2 {
		r1 := avgAutocov(seqs, t)
		rho1 := 1 - (w-r1)/varPlus
		rho2 := -1.0
		if t+1 < n {
			r2 := avgAutocov(seqs, t+1)
			rho2 = 1 - (w-r2)/varPlus
		}
		if rho1+rho2 <= 0 {
			break
		}
		sumRho += rho1
		if rho2 > 0 {
			sumRho += rho2
		}
	}
	ess := total / (1 + 2*sumRho)
	if ess > total {
		ess = total
	}
	return ess
}

// avgAutocov is the mean lag-t autocovariance across sequences.
func avgAutocov(seqs [][]float64, t int) float64 {
	var sum float64
	for _, s := range seqs {
		mu, _ := meanVar(s)
		var acc float64
		for i := t; i < len(s); i++ {
			acc += (s[i] - mu) * (s[i-t] - mu)
		}
		sum += acc / float64(len(s)-t)
	}
	return sum / float64(len(seqs))
}

// rateTracker turns a monotone counter into a steps-per-second gauge by
// differencing against the previous scrape (first scrape rates since
// start). Scrapes are serialized by the registry render, but guard with
// a mutex anyway — /statusz and /metrics can race.
type rateTracker struct {
	mu       sync.Mutex
	lastV    int64
	lastT    time.Time
	started  time.Time
	haveLast bool
}

func newRateTracker(start time.Time) *rateTracker {
	return &rateTracker{started: start}
}

// rate reports the per-second rate of v since the previous call.
func (r *rateTracker) rate(v int64, now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	prevV, prevT := r.lastV, r.lastT
	if !r.haveLast {
		prevV, prevT = 0, r.started
	}
	r.lastV, r.lastT, r.haveLast = v, now, true
	dt := now.Sub(prevT).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(v-prevV) / dt
}
