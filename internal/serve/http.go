package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL        string  `json:"sql"`
	Samples    int     `json:"samples,omitempty"`
	TimeoutMS  int     `json:"timeout_ms,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	NoCache    bool    `json:"no_cache,omitempty"`
}

// queryResponse wraps Result with transport-level fields.
type queryResponse struct {
	*Result
	ElapsedMS float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type healthResponse struct {
	Status  string  `json:"status"`
	Chains  int     `json:"chains"`
	Epoch   int64   `json:"epoch"`
	UptimeS float64 `json:"uptime_s"`
}

// MaxQueryTimeout caps the per-request timeout a client may ask for.
const MaxQueryTimeout = 5 * time.Minute

// DefaultQueryTimeout applies when the request does not set one.
const DefaultQueryTimeout = 30 * time.Second

// Handler returns the engine's HTTP API:
//
//	POST /query    {"sql": "...", "samples": 128, "timeout_ms": 5000}
//	GET  /healthz  liveness and chain-pool status
//	GET  /metrics  Prometheus text exposition
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", e.handleQuery)
	mux.HandleFunc("GET /healthz", e.handleHealthz)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	return mux
}

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\" field"})
		return
	}
	timeout := DefaultQueryTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > MaxQueryTimeout {
			timeout = MaxQueryTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, err := e.Query(ctx, req.SQL, QueryOptions{
		Samples:    req.Samples,
		Confidence: req.Confidence,
		NoCache:    req.NoCache,
	})
	if err != nil {
		writeJSON(w, statusFor(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{Result: res, ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if e.isClosed() {
		status = "closed"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthResponse{
		Status:  status,
		Chains:  e.Chains(),
		Epoch:   e.Epoch(),
		UptimeS: e.Uptime().Seconds(),
	})
}

func (e *Engine) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	e.Metrics().WriteText(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
