package serve

import (
	"math"
	"strconv"
	"time"
)

// EngineStatus is the engine's introspection snapshot behind GET /statusz:
// what the pool is doing right now — live views with refcounts, per-chain
// sampler health, cache occupancy — in one consistent-enough read.
// Consistency caveat: the fields are gathered lock-free from per-chain
// mirrors, so a snapshot taken during a write may show chains one
// generation apart; that skew is itself the signal the WriteGens field
// exists to expose.
type EngineStatus struct {
	Chains    int           `json:"chains"`
	Epoch     int64         `json:"epoch"`
	DataEpoch int64         `json:"write_epoch"`
	UptimeS   float64       `json:"uptime_s"`
	InFlight  int64         `json:"queries_inflight"`
	Cache     CacheStatus   `json:"cache"`
	Pool      []ChainStatus `json:"pool"`
	Views     []ViewHealth  `json:"views"`
}

// CacheStatus reports result-cache occupancy.
type CacheStatus struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// ChainStatus is one chain's sampler health: cumulative walk volume, the
// acceptance rate over it, and how many DML mutations the chain has
// absorbed (its write generation).
type ChainStatus struct {
	ID             int     `json:"id"`
	Epoch          int64   `json:"epoch"`
	Steps          int64   `json:"steps"`
	Accepted       int64   `json:"accepted"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	WriteGen       int64   `json:"write_gen"`
	Views          int64   `json:"views"`
}

// ViewHealth is one live shared view aggregated across the pool: the
// total subscriber refcount, the per-chain sample counts' minimum (the
// least-served chain bounds merged answers), and the cross-chain
// convergence diagnostics. RHat and ESS are NaN-encoded as null in JSON
// via the MarshalJSON of jsonFloat.
type ViewHealth struct {
	Fingerprint string    `json:"fingerprint"`
	Subscribers int       `json:"subscribers"`
	Chains      int       `json:"chains"`
	MinSamples  int64     `json:"min_samples"`
	RHat        jsonFloat `json:"rhat"`
	ESS         jsonFloat `json:"ess"`
}

// jsonFloat marshals NaN and ±Inf as null (encoding/json rejects them).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// Status assembles the introspection snapshot. Safe to call concurrently
// with queries and writes; see EngineStatus for the consistency contract.
func (e *Engine) Status() EngineStatus {
	st := EngineStatus{
		Chains:    len(e.chains),
		Epoch:     e.Epoch(),
		DataEpoch: e.dataEpoch.Load(),
		UptimeS:   time.Since(e.start).Seconds(),
		InFlight:  e.admit.inFlight(),
		Cache:     CacheStatus{Entries: e.cache.len(), Capacity: e.cache.cap},
	}
	for _, c := range e.chains {
		steps, acc := c.stepsN.Load(), c.acceptedN.Load()
		var rate float64
		if steps > 0 {
			rate = float64(acc) / float64(steps)
		}
		st.Pool = append(st.Pool, ChainStatus{
			ID:             c.id,
			Epoch:          c.curEpoch.Load(),
			Steps:          steps,
			Accepted:       acc,
			AcceptanceRate: rate,
			WriteGen:       c.writeGen.Load(),
			Views:          c.reg.sharedViews(),
		})
	}
	st.Views = e.viewHealth()
	return st
}

// viewHealth aggregates each live fingerprint's per-chain stats and
// observation series into one ViewHealth row.
func (e *Engine) viewHealth() []ViewHealth {
	type agg struct {
		subs   int
		chains int
		minS   int64
		series [][]float64
	}
	grouped := make(map[string]*agg)
	for _, c := range e.chains {
		for _, vs := range c.reg.viewStats() {
			a := grouped[vs.Fingerprint]
			if a == nil {
				a = &agg{minS: math.MaxInt64}
				grouped[vs.Fingerprint] = a
			}
			a.subs += vs.Subscribers
			a.chains++
			if vs.Samples < a.minS {
				a.minS = vs.Samples
			}
			if s := c.reg.viewSeries(vs.Fingerprint); s != nil {
				a.series = append(a.series, s.snapshot())
			}
		}
	}
	out := make([]ViewHealth, 0, len(grouped))
	for fp, a := range grouped {
		out = append(out, ViewHealth{
			Fingerprint: fp,
			Subscribers: a.subs,
			Chains:      a.chains,
			MinSamples:  a.minS,
			RHat:        jsonFloat(splitRHat(a.series)),
			ESS:         jsonFloat(effectiveSampleSize(a.series)),
		})
	}
	sortViewHealth(out)
	return out
}

func sortViewHealth(vs []ViewHealth) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Fingerprint < vs[j-1].Fingerprint; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
