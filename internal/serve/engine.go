// Package serve is the concurrent query-serving subsystem: a long-lived
// engine that owns one trained probabilistic database per process and
// answers SQL queries over it while a pool of parallel MCMC chains keeps
// walking the possible-world space.
//
// The design generalizes the paper's materialization trick (Section 4.2)
// from one query to many: each chain owns a private clone of the world;
// every in-flight query subscribes to an incrementally maintained view on
// every chain; and one batch of k walk-steps then yields one sample for
// all of them at once, so the walk cost is amortized across the whole
// concurrent workload. Views themselves are shared too: each chain's
// registry keys physical views by the bound plan's structural fingerprint,
// so queries with equal plans — whatever their SQL spelling or per-query
// options — subscribe to one refcounted view that is maintained exactly
// once per batch, and overlapping plans share the delta operators of
// their common subtrees through the chain's ivm.Graph. Chains publish
// epoch-stamped estimator snapshots (world.Cell) after each batch, which
// is how query sessions read consistent marginals without ever blocking
// the walk. Merging the per-chain estimators is the paper's Section 5.4
// parallelization: samples from different chains are far more independent
// than consecutive samples within one.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"factordb/internal/mcmc"
	"factordb/internal/metrics"
	"factordb/internal/sqlparse"
	"factordb/internal/world"
)

// Source provides independent world copies for the chain pool. The chain
// index lets sources shard or pre-partition if they want; clones must be
// fully independent (no shared mutable state).
type Source interface {
	NewChainWorld(chain int) (*world.ChangeLog, mcmc.Proposer, error)
}

// WALSink receives every committed op batch before it is fanned out to
// the chains — the write-ahead contract. Append must not return until
// the record is durable to the sink's configured policy; an error vetoes
// the write. The canonical implementation is store.DiskStore.
type WALSink interface {
	Append(epoch int64, ops []world.Op) error
}

// Config parameterizes an Engine. Zero values take the documented
// defaults.
type Config struct {
	// Chains is the number of parallel MCMC chains (default: GOMAXPROCS,
	// capped at 8).
	Chains int
	// StepsPerSample is k, the MH walk-steps between consecutive samples
	// of every registered view (default 1000).
	StepsPerSample int
	// BurnIn is the number of walk-steps each chain discards before
	// serving (default 0; the world keeps mixing across queries anyway).
	BurnIn int
	// WriteBurnIn is the number of walk-steps each chain takes after
	// applying a DML mutation before its snapshots are trusted again, so
	// the chain re-equilibrates around the mutated world (default:
	// StepsPerSample; negative disables). This is the paper's update
	// story made operational: mutate the single world, keep sampling —
	// no lineage recomputation.
	WriteBurnIn int
	// Seed derives each chain's sampler seed via ChainSeed.
	Seed int64

	// DefaultSamples is the per-query total sample budget when the request
	// does not specify one (default 128).
	DefaultSamples int
	// MaxConcurrentQueries bounds queries being evaluated at once
	// (default 16); MaxQueuedQueries bounds those waiting for a slot
	// (default 64). Beyond both, Query fails fast with ErrOverloaded.
	MaxConcurrentQueries int
	MaxQueuedQueries     int

	// CacheSize is the result-cache capacity in entries (default 128;
	// negative disables caching). CacheTTL bounds entry staleness
	// (default 1 minute): marginal estimates do not invalidate like
	// deterministic query results — more walking only refines them — so
	// a short TTL trades freshness for the repeated-dashboard-query case.
	CacheSize int
	CacheTTL  time.Duration

	// TraceRing is the capacity of the recent-traces ring buffer behind
	// GET /debug/traces (default 64).
	TraceRing int
	// TraceEvery, when positive, traces every n-th query even without
	// the client asking, so the debug ring has material under steady
	// load. Zero (the default) disables engine-initiated tracing; client
	// opt-in (QueryOptions.Trace) always works.
	TraceEvery int

	// Plans is the raw-SQL→compiled-plan cache shared by Query and Exec
	// (and, when the engine sits behind the factordb facade, by the
	// facade's own compile sites). Keys are exact SQL byte strings;
	// entries are plan-only and never need data invalidation. Nil gets a
	// fresh cache of sqlparse.DefaultPlanCacheSize entries.
	Plans *sqlparse.PlanCache

	// Logger receives the engine's structured log records: write-audit
	// entries and slow-query reports. Nil disables engine logging.
	Logger *slog.Logger
	// SlowQuery, when positive, is the latency threshold of the slow-query
	// log: any query at or over it emits a structured record through
	// Logger carrying its span breakdown, plan fingerprint and trace ID
	// (the engine records a private trace for every query while the
	// threshold is set, so the breakdown is on hand when one turns out
	// slow). Zero disables the slow-query log.
	SlowQuery time.Duration

	// WAL, when non-nil, durably logs every committed op batch before it
	// is applied to any chain. An Append error fails the write.
	WAL WALSink
	// InitialDataEpoch seeds the data-epoch counter, so an engine built
	// over a recovered world resumes the epoch sequence its WAL records
	// — record epochs stay strictly increasing across restarts.
	InitialDataEpoch int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Chains <= 0 {
		cfg.Chains = runtime.GOMAXPROCS(0)
		if cfg.Chains > 8 {
			cfg.Chains = 8
		}
	}
	if cfg.StepsPerSample <= 0 {
		cfg.StepsPerSample = 1000
	}
	if cfg.WriteBurnIn == 0 {
		cfg.WriteBurnIn = cfg.StepsPerSample
	}
	if cfg.WriteBurnIn < 0 {
		cfg.WriteBurnIn = 0
	}
	if cfg.DefaultSamples <= 0 {
		cfg.DefaultSamples = 128
	}
	if cfg.MaxConcurrentQueries <= 0 {
		cfg.MaxConcurrentQueries = 16
	}
	if cfg.MaxQueuedQueries <= 0 {
		cfg.MaxQueuedQueries = 64
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.CacheTTL <= 0 {
		cfg.CacheTTL = time.Minute
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 64
	}
	if cfg.Plans == nil {
		cfg.Plans = sqlparse.NewPlanCache(0)
	}
	return cfg
}

// ChainSeed derives the sampler seed of chain i from the engine seed.
// Exported so tests can reproduce a chain's walk exactly with a
// stand-alone evaluator.
func ChainSeed(base int64, chain int) int64 {
	return base + int64(chain)*104729 // spread seeds; 104729 is prime
}

// ErrClosed is returned by Query after Close.
var ErrClosed = errors.New("serve: engine is closed")

// engineMetrics bundles the counters shared by the chains and sessions.
type engineMetrics struct {
	reg       *metrics.Registry
	steps     *metrics.Counter
	accepted  *metrics.Counter
	samples   *metrics.Counter
	queries   *metrics.Counter
	rejected  *metrics.Counter
	failed    *metrics.Counter
	hits      *metrics.Counter
	planHits  *metrics.Counter
	viewHits  *metrics.Counter
	topkStops *metrics.Counter
	writes    *metrics.Counter
	evictions *metrics.Counter
	latency   *metrics.Histogram

	// execLatency is the write-path twin of latency, labeled by outcome
	// (ok | noop | rejected | canceled | error) so dashboards can separate
	// committed-write latency from vetoed attempts.
	execLatency *metrics.HistogramVec

	chainSteps    *metrics.CounterVec
	chainAccepted *metrics.CounterVec
}

// Engine owns the trained world and serves concurrent queries over it.
type Engine struct {
	cfg    Config
	chains []*chain
	admit  *admission
	cache  *resultCache
	m      *engineMetrics
	traces *traceRing
	tracer *traceSampler

	start  time.Time
	nextID atomic.Int64
	// traceSeed is the per-engine half of generated trace IDs; combined
	// with the trace serial it yields 32-hex-char W3C-shaped IDs unique
	// within and (for practical purposes) across restarts.
	traceSeed uint64

	// writeMu serializes Exec calls: one logical mutation lands on every
	// chain before the next begins, so the clones see identical op
	// streams in identical order.
	writeMu sync.Mutex
	// dataEpoch counts committed writes. It is folded into every
	// result-cache key, so each write makes all earlier entries
	// unreachable — no stale answer survives a mutation.
	dataEpoch atomic.Int64

	mu     sync.Mutex
	closed bool
}

// New builds the chain pool from src and starts the chains. The engine
// must be Closed to release the chain goroutines.
func New(src Source, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	m := newEngineMetrics()
	e := &Engine{
		cfg:    cfg,
		admit:  newAdmission(cfg.MaxConcurrentQueries, cfg.MaxQueuedQueries),
		cache:  newResultCache(cfg.CacheSize, cfg.CacheTTL, m.evictions),
		m:      m,
		traces: newTraceRing(cfg.TraceRing),
		tracer: &traceSampler{every: int64(cfg.TraceEvery)},
		start:  time.Now(),
	}
	e.traceSeed = uint64(e.start.UnixNano()) | 1 // W3C forbids all-zero IDs
	e.dataEpoch.Store(cfg.InitialDataEpoch)
	// Each chain goroutine starts as soon as its world is cloned, so the
	// error path below can always stopChains: every chain in e.chains has
	// a running goroutine that will close its done channel.
	for i := 0; i < cfg.Chains; i++ {
		log, proposer, err := src.NewChainWorld(i)
		if err != nil {
			e.stopChains()
			return nil, fmt.Errorf("serve: building chain %d: %w", i, err)
		}
		c := newChain(i, cfg.StepsPerSample, log, proposer, ChainSeed(cfg.Seed, i), m)
		e.chains = append(e.chains, c)
		go c.run(cfg.BurnIn)
	}
	e.registerDerivedMetrics()
	return e, nil
}

func newEngineMetrics() *engineMetrics {
	reg := metrics.NewRegistry()
	return &engineMetrics{
		reg:      reg,
		steps:    reg.NewCounter("factordb_walk_steps_total", "Metropolis-Hastings walk-steps across all chains"),
		accepted: reg.NewCounter("factordb_proposals_accepted_total", "accepted MH proposals across all chains"),
		samples:  reg.NewCounter("factordb_query_samples_total", "view samples collected across all chains and queries"),
		queries:  reg.NewCounter("factordb_queries_total", "queries admitted and evaluated"),
		rejected: reg.NewCounter("factordb_queries_rejected_total", "queries rejected by admission control"),
		failed:   reg.NewCounter("factordb_queries_failed_total", "queries that failed to compile or bind"),
		hits:     reg.NewCounter("factordb_cache_hits_total", "queries answered from the result cache"),
		planHits: reg.NewCounter("factordb_plan_cache_hits_total",
			"statements whose compiled plan was served from the raw-SQL plan cache"),
		viewHits: reg.NewCounter("factordb_view_cache_hits_total",
			"view registrations that reused an existing shared view (per chain)"),
		topkStops: reg.NewCounter("factordb_topk_early_stops_total",
			"ranked queries finished early because the top-k separated"),
		writes: reg.NewCounter("factordb_writes_total", "DML mutations applied across all chains"),
		evictions: reg.NewCounter("factordb_cache_evictions_total",
			"result-cache entries evicted (LRU overflow or TTL expiry)"),
		latency: reg.NewHistogram("factordb_query_seconds", "per-query latency in seconds", nil),
		execLatency: reg.NewHistogramVec("factordb_exec_seconds",
			"per-write latency in seconds, labeled by outcome", nil, "outcome"),
		chainSteps: reg.NewCounterVec("factordb_chain_steps_total",
			"Metropolis-Hastings walk-steps per chain", "chain"),
		chainAccepted: reg.NewCounterVec("factordb_chain_accepted_total",
			"accepted MH proposals per chain", "chain"),
	}
}

// registerDerivedMetrics adds scrape-time gauges over engine state.
func (e *Engine) registerDerivedMetrics() {
	e.m.reg.NewGaugeFunc("factordb_chains", "parallel MCMC chains in the pool",
		func() float64 { return float64(len(e.chains)) })
	e.m.reg.NewGaugeFunc("factordb_acceptance_rate", "fraction of MH proposals accepted",
		func() float64 {
			steps := e.m.steps.Value()
			if steps == 0 {
				return 0
			}
			return float64(e.m.accepted.Value()) / float64(steps)
		})
	e.m.reg.NewGaugeFunc("factordb_samples_per_second", "view samples per second since engine start",
		func() float64 {
			elapsed := time.Since(e.start).Seconds()
			if elapsed <= 0 {
				return 0
			}
			return float64(e.m.samples.Value()) / elapsed
		})
	e.m.reg.NewGaugeFunc("factordb_queries_inflight", "queries currently admitted",
		func() float64 { return float64(e.admit.inFlight()) })
	e.m.reg.NewGaugeFunc("factordb_shared_views",
		"physical materialized views currently maintained across all chains",
		func() float64 { return float64(e.sharedViews()) })
	e.m.reg.NewGaugeFunc("factordb_write_epoch",
		"data epoch: committed DML mutations since engine start",
		func() float64 { return float64(e.dataEpoch.Load()) })
	e.m.reg.NewGaugeFunc("factordb_cache_entries", "result-cache entries currently held",
		func() float64 { return float64(e.cache.len()) })
	e.m.reg.NewMultiGaugeFunc("factordb_chain_acceptance_rate",
		"fraction of MH proposals accepted, per chain", []string{"chain"},
		func() []metrics.LabeledValue {
			out := make([]metrics.LabeledValue, 0, len(e.chains))
			for _, c := range e.chains {
				steps := c.stepsN.Load()
				var rate float64
				if steps > 0 {
					rate = float64(c.acceptedN.Load()) / float64(steps)
				}
				out = append(out, metrics.LabeledValue{
					Labels: []string{fmt.Sprintf("%d", c.id)}, Value: rate,
				})
			}
			return out
		})
	e.m.reg.NewMultiGaugeFunc("factordb_chain_steps_per_second",
		"MH walk-steps per second since the previous scrape, per chain", []string{"chain"},
		func() []metrics.LabeledValue {
			now := time.Now()
			out := make([]metrics.LabeledValue, 0, len(e.chains))
			for _, c := range e.chains {
				out = append(out, metrics.LabeledValue{
					Labels: []string{fmt.Sprintf("%d", c.id)},
					Value:  c.stepRate.rate(c.stepsN.Load(), now),
				})
			}
			return out
		})
	e.m.reg.NewMultiGaugeFunc("factordb_view_rhat",
		"cross-chain split-R-hat of each live view's sampled answer cardinality "+
			"(near 1 = converged; NaN = insufficient data)", []string{"view"},
		func() []metrics.LabeledValue {
			return e.viewDiagnostics(splitRHat)
		})
	e.m.reg.NewMultiGaugeFunc("factordb_view_ess",
		"cross-chain effective sample size of each live view's sampled answer cardinality",
		[]string{"view"},
		func() []metrics.LabeledValue {
			return e.viewDiagnostics(effectiveSampleSize)
		})
}

// viewDiagnostics groups each live view's observation series across the
// chain pool and reduces them with diag (split-R̂ or ESS). A view only
// live on a subset of chains is diagnosed over that subset.
func (e *Engine) viewDiagnostics(diag func([][]float64) float64) []metrics.LabeledValue {
	grouped := make(map[string][][]float64)
	for _, c := range e.chains {
		for _, fp := range c.reg.liveFingerprints() {
			if s := c.reg.viewSeries(fp); s != nil {
				grouped[fp] = append(grouped[fp], s.snapshot())
			}
		}
	}
	out := make([]metrics.LabeledValue, 0, len(grouped))
	for fp, series := range grouped {
		out = append(out, metrics.LabeledValue{Labels: []string{fp}, Value: diag(series)})
	}
	return out
}

// sharedViews sums the live physical-view count over the chain pool.
// With queries in flight this is chains × distinct-plans, independent of
// how many queries subscribe to each plan.
func (e *Engine) sharedViews() int64 {
	var n int64
	for _, c := range e.chains {
		n += c.reg.sharedViews()
	}
	return n
}

// Metrics exposes the engine's metric registry (the /metrics endpoint).
func (e *Engine) Metrics() *metrics.Registry { return e.m.reg }

// Traces returns the most recent query traces, newest first — the
// engine-initiated samples (Config.TraceEvery) plus every client
// opt-in trace, bounded by Config.TraceRing.
func (e *Engine) Traces() []*QueryTrace { return e.traces.snapshot() }

// genTraceID mints a W3C-shaped trace ID (32 lowercase hex chars) for a
// trace the client did not supply one for.
func (e *Engine) genTraceID(id int64) string {
	return fmt.Sprintf("%016x%016x", e.traceSeed, uint64(id))
}

// NoteBadQuery feeds the failed-query counter for queries rejected
// before reaching the engine — the facade compiles SQL up front, so its
// compile failures are recorded here rather than lost.
func (e *Engine) NoteBadQuery() { e.m.failed.Inc() }

// Chains returns the pool size.
func (e *Engine) Chains() int { return len(e.chains) }

// AcceptanceRate reports the pool-wide fraction of MH proposals accepted
// since the engine started (the /healthz chain-health summary).
func (e *Engine) AcceptanceRate() float64 {
	steps := e.m.steps.Value()
	if steps == 0 {
		return 0
	}
	return float64(e.m.accepted.Value()) / float64(steps)
}

// SharedViews reports the live physical-view count across the pool.
func (e *Engine) SharedViews() int64 { return e.sharedViews() }

// LiveViewChains reports on how many chains of the pool a materialized
// view with the given bound-plan fingerprint is currently live, plus the
// pool size — the EXPLAIN view-sharing decision: a query arriving now
// with that fingerprint would subscribe to those existing views instead
// of mounting fresh ones.
func (e *Engine) LiveViewChains(fp string) (live, total int) {
	for _, c := range e.chains {
		for _, f := range c.reg.liveFingerprints() {
			if f == fp {
				live++
				break
			}
		}
	}
	return live, len(e.chains)
}

// Epoch returns the highest epoch any chain has completed — a liveness
// signal for health checks. Individual chains may lag while parked idle.
func (e *Engine) Epoch() int64 {
	var max int64
	for _, c := range e.chains {
		if ep := c.curEpoch.Load(); ep > max {
			max = ep
		}
	}
	return max
}

// Uptime reports time since the engine started.
func (e *Engine) Uptime() time.Duration { return time.Since(e.start) }

// Close stops all chains and waits for them to park. Close is idempotent
// and safe to call concurrently with in-flight Query: sessions waiting on
// chain completion are woken by the chains' shutdown and return either
// the partial estimate collected so far or ErrClosed if nothing landed.
// Query calls issued after Close fail fast with ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.stopChains()
}

func (e *Engine) stopChains() {
	for _, c := range e.chains {
		close(c.stop)
	}
	for _, c := range e.chains {
		<-c.done
	}
}

func (e *Engine) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
