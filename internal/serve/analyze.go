package serve

import (
	"context"
	"errors"
	"fmt"

	"factordb/internal/ra"
)

// Analyze is EXPLAIN ANALYZE's served backend: it runs one instrumented
// evaluation of plan on every chain in the pool and merges the
// per-operator counters. Each chain executes the pipeline against its
// own world at an epoch boundary, so the aggregated actual-row counts
// are a cross-chain sample of the plan's runtime behavior — per-chain
// variance in the possible worlds averages out exactly the way the
// engine's marginal estimates do.
func (e *Engine) Analyze(ctx context.Context, plan ra.Plan) (*ra.StreamStats, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	replies := make([]analyzeReply, len(e.chains))
	done := make(chan struct{}, len(e.chains))
	for i, c := range e.chains {
		go func(i int, c *chain) {
			replies[i] = c.analyze(ctx, plan)
			done <- struct{}{}
		}(i, c)
	}
	for range e.chains {
		<-done
	}
	var total *ra.StreamStats
	for i := range replies {
		if err := replies[i].err; err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()) {
				return nil, err
			}
			e.m.failed.Inc()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		if total == nil {
			total = replies[i].stats
		} else if err := total.Merge(replies[i].stats); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// analyze delivers an analyzeReq to the chain goroutine, honoring ctx
// and engine shutdown.
func (c *chain) analyze(ctx context.Context, plan ra.Plan) analyzeReply {
	req := analyzeReq{plan: plan, reply: make(chan analyzeReply, 1)}
	select {
	case c.ctl <- req:
	case <-c.done:
		return analyzeReply{err: ErrClosed}
	case <-ctx.Done():
		return analyzeReply{err: ctx.Err()}
	}
	select {
	case rep := <-req.reply:
		return rep
	case <-c.done:
		return analyzeReply{err: ErrClosed}
	}
}
