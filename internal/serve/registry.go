package serve

import (
	"sync/atomic"

	"factordb/internal/core"
	"factordb/internal/ivm"
	"factordb/internal/ra"
	"factordb/internal/world"
)

// finalSnap is the answer a chain hands a completed subscriber: the
// view's estimator at the moment the sample target was met, the chain
// epoch it corresponds to, and the chain's write generation — how many
// DML mutations this chain had absorbed when the estimate completed.
// Sessions compare generations across chains to detect (and re-collect)
// answers that would otherwise blend pre- and post-write worlds.
type finalSnap struct {
	est   *core.Estimator
	epoch int64
	gen   int64
}

// subscriber is one query's stake in a physical view on one chain: how
// many fresh samples it still wants (target, counted from the view's
// sample count at attach time) and the channel the chain closes when the
// target is met. Just before closing done, the chain stores the view's
// final snapshot: the session must read its completed answer from
// there, because a write landing after completion resets the view's
// estimator and republishes the shared cell empty.
type subscriber struct {
	target int64
	start  int64 // physical view's sample count when this subscriber attached
	done   chan struct{}
	final  *atomic.Pointer[finalSnap]
}

// physicalView is one materialized view maintained exactly once per
// epoch, however many queries subscribe to it. Its estimator accumulates
// one sample per epoch since the view was created; subscribers meter
// their budgets against it via start offsets, and all of them read the
// same published snapshot cell. Query options that do not change the
// answer distribution — sample budget, confidence level — never reach
// this type: they are applied at estimator-merge time in the session.
type physicalView struct {
	fp   string
	view *ivm.View
	est  *core.Estimator
	cell *world.Cell[*core.Estimator]
	subs map[viewID]*subscriber
}

// viewRegistry is the per-chain shared-view table: it keys physical
// views by the structural fingerprint of their bound plan, so any number
// of concurrent queries with equal plans — whatever their SQL spelling
// or per-query options — cost one view maintenance per walk batch. Plans
// that are not equal but overlap still share state below the registry:
// views are mounted on the chain's ivm.Graph, which reuses delta
// operators per common subtree.
//
// The registry is owned by the chain goroutine; only sharedViews is safe
// to read from outside (it backs the factordb_shared_views gauge).
type viewRegistry struct {
	graph *ivm.Graph
	byFP  map[string]*physicalView
	bySub map[viewID]*physicalView
	size  atomic.Int64
}

func newViewRegistry() *viewRegistry {
	return &viewRegistry{
		graph: ivm.NewGraph(),
		byFP:  make(map[string]*physicalView),
		bySub: make(map[viewID]*physicalView),
	}
}

// acquire attaches a subscriber to the physical view for bound's
// fingerprint, building and mounting the view if this is its first
// subscriber. It reports whether an existing view was reused.
func (r *viewRegistry) acquire(id viewID, bound *ra.Bound, target int64, done chan struct{},
	final *atomic.Pointer[finalSnap]) (pv *physicalView, hit bool, err error) {
	fp := bound.Fingerprint()
	pv = r.byFP[fp]
	if pv == nil {
		view, err := r.graph.Mount(bound)
		if err != nil {
			return nil, false, err
		}
		pv = &physicalView{
			fp:   fp,
			view: view,
			est:  core.NewEstimator(),
			cell: &world.Cell[*core.Estimator]{},
			subs: make(map[viewID]*subscriber),
		}
		r.byFP[fp] = pv
		r.size.Store(int64(len(r.byFP)))
	} else {
		hit = true
	}
	pv.subs[id] = &subscriber{target: target, start: pv.est.Samples(), done: done, final: final}
	r.bySub[id] = pv
	return pv, hit, nil
}

// dropSub detaches one subscriber (budget met, cancellation, or timeout).
// A view whose last subscriber leaves is evicted and unmounted, releasing
// any operator state not shared with other live views. Unknown ids are
// no-ops, so completion and cancellation may race benignly.
func (r *viewRegistry) dropSub(id viewID) {
	pv := r.bySub[id]
	if pv == nil {
		return
	}
	delete(r.bySub, id)
	delete(pv.subs, id)
	if len(pv.subs) == 0 {
		delete(r.byFP, pv.fp)
		r.graph.Unmount(pv.view)
		r.size.Store(int64(len(r.byFP)))
	}
}

// empty reports whether no physical views are live (the chain may park).
func (r *viewRegistry) empty() bool { return len(r.byFP) == 0 }

// sharedViews reports the live physical-view count; safe from any
// goroutine.
func (r *viewRegistry) sharedViews() int64 { return r.size.Load() }
