package serve

import (
	"sync"
	"sync/atomic"

	"factordb/internal/core"
	"factordb/internal/ivm"
	"factordb/internal/ra"
	"factordb/internal/world"
)

// finalSnap is the answer a chain hands a completed subscriber: the
// view's estimator at the moment the sample target was met, the chain
// epoch it corresponds to, and the chain's write generation — how many
// DML mutations this chain had absorbed when the estimate completed.
// Sessions compare generations across chains to detect (and re-collect)
// answers that would otherwise blend pre- and post-write worlds.
type finalSnap struct {
	est   *core.Estimator
	epoch int64
	gen   int64
}

// subscriber is one query's stake in a physical view on one chain: how
// many fresh samples it still wants (target, counted from the view's
// sample count at attach time) and the channel the chain closes when the
// target is met. Just before closing done, the chain stores the view's
// final snapshot: the session must read its completed answer from
// there, because a write landing after completion resets the view's
// estimator and republishes the shared cell empty.
type subscriber struct {
	target int64
	start  int64 // physical view's sample count when this subscriber attached
	done   chan struct{}
	final  *atomic.Pointer[finalSnap]
}

// physicalView is one materialized view maintained exactly once per
// epoch, however many queries subscribe to it. Its estimator accumulates
// one sample per epoch since the view was created; subscribers meter
// their budgets against it via start offsets, and all of them read the
// same published snapshot cell. Query options that do not change the
// answer distribution — sample budget, confidence level — never reach
// this type: they are applied at estimator-merge time in the session.
type physicalView struct {
	fp   string
	view *ivm.View
	est  *core.Estimator
	cell *world.Cell[*core.Estimator]
	subs map[viewID]*subscriber
	stat *viewStat
}

// viewStat is the externally readable shadow of a physical view: the
// health scraper and /statusz read it without entering the chain
// goroutine. The chain updates subs/samples under the registry's stats
// lock; the observation series carries its own lock.
type viewStat struct {
	fp      string
	subs    int
	samples int64
	series  *sampleSeries
}

// ViewStat is one live view's status on one chain, as reported by
// Engine.Status.
type ViewStat struct {
	Fingerprint string `json:"fingerprint"`
	Subscribers int    `json:"subscribers"`
	Samples     int64  `json:"samples"`
}

// viewRegistry is the per-chain shared-view table: it keys physical
// views by the structural fingerprint of their bound plan, so any number
// of concurrent queries with equal plans — whatever their SQL spelling
// or per-query options — cost one view maintenance per walk batch. Plans
// that are not equal but overlap still share state below the registry:
// views are mounted on the chain's ivm.Graph, which reuses delta
// operators per common subtree.
//
// The registry is owned by the chain goroutine; only sharedViews is safe
// to read from outside (it backs the factordb_shared_views gauge).
type viewRegistry struct {
	graph *ivm.Graph
	byFP  map[string]*physicalView
	bySub map[viewID]*physicalView
	size  atomic.Int64

	// statsMu guards the stats mirror (and the subs/samples fields of
	// every viewStat); the chain goroutine writes, scrapers read.
	statsMu sync.Mutex
	stats   map[string]*viewStat
}

func newViewRegistry() *viewRegistry {
	return &viewRegistry{
		graph: ivm.NewGraph(),
		byFP:  make(map[string]*physicalView),
		bySub: make(map[viewID]*physicalView),
		stats: make(map[string]*viewStat),
	}
}

// acquire attaches a subscriber to the physical view for bound's
// fingerprint, building and mounting the view if this is its first
// subscriber. It reports whether an existing view was reused.
func (r *viewRegistry) acquire(id viewID, bound *ra.Bound, target int64, done chan struct{},
	final *atomic.Pointer[finalSnap]) (pv *physicalView, hit bool, err error) {
	fp := bound.Fingerprint()
	pv = r.byFP[fp]
	if pv == nil {
		view, err := r.graph.Mount(bound)
		if err != nil {
			return nil, false, err
		}
		pv = &physicalView{
			fp:   fp,
			view: view,
			est:  core.NewEstimator(),
			cell: &world.Cell[*core.Estimator]{},
			subs: make(map[viewID]*subscriber),
			stat: &viewStat{fp: fp, series: newSampleSeries()},
		}
		r.byFP[fp] = pv
		r.size.Store(int64(len(r.byFP)))
		r.statsMu.Lock()
		r.stats[fp] = pv.stat
		r.statsMu.Unlock()
	} else {
		hit = true
	}
	pv.subs[id] = &subscriber{target: target, start: pv.est.Samples(), done: done, final: final}
	r.bySub[id] = pv
	r.statsMu.Lock()
	pv.stat.subs = len(pv.subs)
	r.statsMu.Unlock()
	return pv, hit, nil
}

// dropSub detaches one subscriber (budget met, cancellation, or timeout).
// A view whose last subscriber leaves is evicted and unmounted, releasing
// any operator state not shared with other live views. Unknown ids are
// no-ops, so completion and cancellation may race benignly.
func (r *viewRegistry) dropSub(id viewID) {
	pv := r.bySub[id]
	if pv == nil {
		return
	}
	delete(r.bySub, id)
	delete(pv.subs, id)
	r.statsMu.Lock()
	pv.stat.subs = len(pv.subs)
	if len(pv.subs) == 0 {
		delete(r.stats, pv.fp)
	}
	r.statsMu.Unlock()
	if len(pv.subs) == 0 {
		delete(r.byFP, pv.fp)
		r.graph.Unmount(pv.view)
		r.size.Store(int64(len(r.byFP)))
	}
}

// noteSample records one walk batch's observation for a view: the chain
// goroutine calls it per epoch with the sampled answer's cardinality.
func (r *viewRegistry) noteSample(pv *physicalView, cardinality float64) {
	r.statsMu.Lock()
	pv.stat.samples = pv.est.Samples()
	r.statsMu.Unlock()
	pv.stat.series.push(cardinality)
}

// viewStats snapshots the live views' status; safe from any goroutine.
func (r *viewRegistry) viewStats() []ViewStat {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	out := make([]ViewStat, 0, len(r.stats))
	for _, s := range r.stats {
		out = append(out, ViewStat{Fingerprint: s.fp, Subscribers: s.subs, Samples: s.samples})
	}
	return out
}

// viewSeries returns the observation series for one view fingerprint
// (nil when the view is not live on this chain).
func (r *viewRegistry) viewSeries(fp string) *sampleSeries {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	if s, ok := r.stats[fp]; ok {
		return s.series
	}
	return nil
}

// liveFingerprints lists the fingerprints of this chain's live views.
func (r *viewRegistry) liveFingerprints() []string {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	out := make([]string, 0, len(r.stats))
	for fp := range r.stats {
		out = append(out, fp)
	}
	return out
}

// empty reports whether no physical views are live (the chain may park).
func (r *viewRegistry) empty() bool { return len(r.byFP) == 0 }

// sharedViews reports the live physical-view count; safe from any
// goroutine.
func (r *viewRegistry) sharedViews() int64 { return r.size.Load() }
