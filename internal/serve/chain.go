package serve

import (
	"fmt"
	"sync/atomic"

	"factordb/internal/core"
	"factordb/internal/ivm"
	"factordb/internal/mcmc"
	"factordb/internal/ra"
	"factordb/internal/world"
)

// viewID identifies one registered query view within the engine.
type viewID int64

// chainView is one query's materialized view on one chain, owned entirely
// by the chain goroutine. Readers never touch it: they consume the
// epoch-stamped estimator snapshots published through cell.
type chainView struct {
	id     viewID
	view   *ivm.View
	est    *core.Estimator
	target int64 // samples to collect before the view completes
	cell   *world.Cell[*core.Estimator]
	done   chan struct{} // closed by the chain when target is reached
}

// registerReq asks a chain to bind a plan against its world and start
// sampling it. The reply carries the bind error, if any.
type registerReq struct {
	id     viewID
	plan   ra.Plan
	target int64
	cell   *world.Cell[*core.Estimator]
	done   chan struct{}
	reply  chan error
}

// unregisterReq detaches a view (query cancelled or timed out). The reply
// is closed once the view is gone so the caller can reuse the world.
type unregisterReq struct {
	id    viewID
	reply chan struct{}
}

// chain is one member of the engine's pool: a private copy of the world
// walked by its own Metropolis-Hastings sampler. All views registered on
// the chain share the walk — one batch of k steps produces one sample for
// every in-flight query, which is the paper's materialization trick
// amortized across concurrent queries.
type chain struct {
	id      int
	steps   int // k, walk-steps per epoch
	log     *world.ChangeLog
	sampler *mcmc.Sampler

	ctl   chan any // registerReq | unregisterReq
	stop  chan struct{}
	done  chan struct{}
	views map[viewID]*chainView

	// curEpoch mirrors log.Epoch() for readers outside the chain
	// goroutine (health checks); the log itself is goroutine-private.
	curEpoch atomic.Int64

	m *engineMetrics
}

func newChain(id, steps int, log *world.ChangeLog, p mcmc.Proposer, seed int64, m *engineMetrics) *chain {
	return &chain{
		id:      id,
		steps:   steps,
		log:     log,
		sampler: mcmc.NewSampler(p, seed),
		ctl:     make(chan any),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		views:   make(map[viewID]*chainView),
		m:       m,
	}
}

// run is the chain goroutine: burn in, then alternate between handling
// control messages at epoch boundaries and walking. With no views
// registered the chain parks on the control channel instead of burning
// CPU; the world keeps its state, so mixing accumulates across queries.
func (c *chain) run(burnIn int) {
	defer close(c.done)
	if burnIn > 0 {
		c.walk(burnIn)
		c.log.Drain()
		c.curEpoch.Store(c.log.Epoch())
	}
	for {
		if len(c.views) == 0 {
			select {
			case <-c.stop:
				return
			case msg := <-c.ctl:
				c.handle(msg)
			}
			continue
		}
		select {
		case <-c.stop:
			return
		case msg := <-c.ctl:
			c.handle(msg)
			continue
		default:
		}
		c.epoch()
	}
}

// epoch advances the walk by k steps, folds the resulting Δ⁻/Δ⁺ delta
// into every registered view, and publishes fresh estimator snapshots.
func (c *chain) epoch() {
	c.walk(c.steps)
	d := c.log.Drain()
	epoch := c.log.Epoch()
	c.curEpoch.Store(epoch)
	for id, v := range c.views {
		v.view.Apply(d)
		v.est.AddSample(v.view.Result())
		c.m.samples.Inc()
		v.cell.Publish(epoch, v.est.Clone())
		if v.est.Samples() >= v.target {
			close(v.done)
			delete(c.views, id)
		}
	}
}

// walk runs n MH steps and feeds the global step/acceptance counters.
func (c *chain) walk(n int) {
	s0, a0 := c.sampler.Steps(), c.sampler.Accepted()
	c.sampler.Run(n)
	c.m.steps.Add(c.sampler.Steps() - s0)
	c.m.accepted.Add(c.sampler.Accepted() - a0)
}

func (c *chain) handle(msg any) {
	switch req := msg.(type) {
	case registerReq:
		req.reply <- c.register(req)
	case unregisterReq:
		delete(c.views, req.id)
		close(req.reply)
	default:
		panic(fmt.Sprintf("serve: unknown chain control message %T", msg))
	}
}

// register binds the plan against this chain's world. Control messages
// are only handled at epoch boundaries, right after a Drain, so the store
// holds no pending deltas and the freshly initialized view is consistent
// with the world from its first sample on.
func (c *chain) register(req registerReq) error {
	bound, err := ra.Bind(c.log.DB(), req.plan)
	if err != nil {
		return err
	}
	view, err := ivm.NewView(bound)
	if err != nil {
		return err
	}
	c.views[req.id] = &chainView{
		id:     req.id,
		view:   view,
		est:    core.NewEstimator(),
		target: req.target,
		cell:   req.cell,
		done:   req.done,
	}
	return nil
}
