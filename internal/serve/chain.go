package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"factordb/internal/core"
	"factordb/internal/mcmc"
	"factordb/internal/metrics"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// viewID identifies one query's subscription to a view within the engine.
type viewID int64

// registerReq asks a chain to bind a plan against its world and subscribe
// the query to the matching shared view (creating it on first use). The
// reply carries the view's snapshot cell, or the bind error. final
// receives the completed subscriber's estimator snapshot just before
// done closes (see subscriber).
type registerReq struct {
	id     viewID
	plan   ra.Plan
	target int64
	done   chan struct{}
	final  *atomic.Pointer[finalSnap]
	reply  chan registerReply
}

type registerReply struct {
	cell *world.Cell[*core.Estimator]
	hit  bool // an existing shared view was reused
	err  error
}

// unregisterReq detaches a subscriber (query cancelled or timed out). The
// reply is closed once the subscription is gone so the caller knows no
// further completion signal will fire.
type unregisterReq struct {
	id    viewID
	reply chan struct{}
}

// resolveReq asks a chain to resolve a DML statement against its world
// into concrete row-level ops — without applying them. The write
// coordinator resolves once (on chain 0) and fans the identical op list
// out to every chain, so the clones never diverge.
type resolveReq struct {
	mut   ra.Mutation
	reply chan resolveReply
}

type resolveReply struct {
	ops []world.Op
	err error
}

// chainPhase marks one chain's completion of a write phase; traced
// writes collect these from every chain to span the fan-out's burn-in,
// delta-fold and republish stages on the coordinator's timeline.
type chainPhase uint8

const (
	phaseOpsApplied chainPhase = iota
	phaseBurnedIn
	phaseDeltaFolded
	phaseRepublished
	numWritePhases
)

// applyReq asks a chain to apply a resolved op list, burn in, and reset
// every live view's estimator so post-write snapshots carry post-write
// samples only. phases, when non-nil, receives one chainPhase per
// completed stage; the channel must be buffered for every chain's full
// phase set so the chain never blocks on a coordinator that stopped
// listening.
type applyReq struct {
	ops    []world.Op
	burnIn int
	phases chan<- chainPhase
	reply  chan error
}

// analyzeReq asks a chain to run one instrumented evaluation of a plan
// against its current world — the per-chain half of EXPLAIN ANALYZE.
type analyzeReq struct {
	plan  ra.Plan
	reply chan analyzeReply
}

type analyzeReply struct {
	stats *ra.StreamStats
	err   error
}

// chain is one member of the engine's pool: a private copy of the world
// walked by its own Metropolis-Hastings sampler. All views registered on
// the chain share the walk — one batch of k steps produces one sample for
// every in-flight query — and the view registry goes further: queries
// whose plans share a fingerprint share one physical view, so the
// view-maintenance cost of a batch is paid per distinct plan, not per
// query.
type chain struct {
	id      int
	steps   int // k, walk-steps per epoch
	log     *world.ChangeLog
	sampler *mcmc.Sampler

	ctl  chan any // registerReq | unregisterReq
	stop chan struct{}
	done chan struct{}
	reg  *viewRegistry

	// curEpoch mirrors log.Epoch() for readers outside the chain
	// goroutine (health checks); the log itself is goroutine-private.
	curEpoch atomic.Int64

	// writeGen counts the DML mutations this chain has absorbed. Written
	// only by the chain goroutine; completed subscribers carry it out in
	// their final snapshots so sessions can detect cross-chain blends,
	// and /statusz reads it atomically.
	writeGen atomic.Int64

	// stepsN/acceptedN mirror the sampler's counters for readers outside
	// the chain goroutine (per-chain health gauges; the sampler itself is
	// goroutine-private). stepRate turns stepsN into steps/sec between
	// scrapes.
	stepsN    atomic.Int64
	acceptedN atomic.Int64
	stepRate  *rateTracker

	// stepsC/acceptedC are this chain's children of the labeled
	// factordb_chain_* counter families — resolved once so the walk hot
	// loop pays one atomic add, same as the global counters.
	stepsC    *metrics.Counter
	acceptedC *metrics.Counter

	m *engineMetrics
}

func newChain(id, steps int, log *world.ChangeLog, p mcmc.Proposer, seed int64, m *engineMetrics) *chain {
	lbl := fmt.Sprintf("%d", id)
	return &chain{
		id:        id,
		steps:     steps,
		log:       log,
		sampler:   mcmc.NewSampler(p, seed),
		ctl:       make(chan any),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		reg:       newViewRegistry(),
		stepRate:  newRateTracker(time.Now()),
		stepsC:    m.chainSteps.With(lbl),
		acceptedC: m.chainAccepted.With(lbl),
		m:         m,
	}
}

// run is the chain goroutine: burn in, then alternate between handling
// control messages at epoch boundaries and walking. With no views
// registered the chain parks on the control channel instead of burning
// CPU; the world keeps its state, so mixing accumulates across queries.
func (c *chain) run(burnIn int) {
	defer close(c.done)
	if burnIn > 0 {
		c.walk(burnIn)
		c.log.Drain()
		c.curEpoch.Store(c.log.Epoch())
	}
	for {
		if c.reg.empty() {
			select {
			case <-c.stop:
				return
			case msg := <-c.ctl:
				c.handle(msg)
			}
			continue
		}
		select {
		case <-c.stop:
			return
		case msg := <-c.ctl:
			c.handle(msg)
			continue
		default:
		}
		c.epoch()
	}
}

// epoch advances the walk by k steps, folds the resulting Δ⁻/Δ⁺ delta
// into every physical view exactly once — regardless of how many queries
// subscribe to each — and publishes one fresh estimator snapshot per
// view, shared by all its subscribers. Subscribers whose sample budgets
// are met complete here; a view's last completion evicts it.
func (c *chain) epoch() {
	c.walk(c.steps)
	d := c.log.Drain()
	epoch := c.log.Epoch()
	c.curEpoch.Store(epoch)
	c.reg.graph.NextRound()
	for _, pv := range c.reg.byFP {
		pv.view.Apply(d)
		// One health observation per batch: the sampled answer's
		// cardinality, which AddSample reports as it counts — a
		// per-sample scalar the cross-chain R̂/ESS diagnostics can be
		// computed over without a second pass over the answer.
		card := pv.est.AddSample(pv.view.Result())
		c.reg.noteSample(pv, float64(card))
		// Every subscriber receives this sample; the walk and the view
		// maintenance were paid once.
		c.m.samples.Add(int64(len(pv.subs)))
		pv.cell.Publish(epoch, pv.est.Clone())
		for id, sub := range pv.subs {
			if pv.est.Samples()-sub.start >= sub.target {
				// Hand the completed subscriber its own snapshot before
				// waking it: the shared cell may be reset by a later
				// write before the session gets around to merging.
				if sub.final != nil {
					sub.final.Store(&finalSnap{est: pv.est.Clone(), epoch: epoch, gen: c.writeGen.Load()})
				}
				close(sub.done)
				c.reg.dropSub(id)
			}
		}
	}
}

// walk runs n MH steps and feeds the global and per-chain
// step/acceptance counters.
func (c *chain) walk(n int) {
	s0, a0 := c.sampler.Steps(), c.sampler.Accepted()
	c.sampler.Run(n)
	ds, da := c.sampler.Steps()-s0, c.sampler.Accepted()-a0
	c.m.steps.Add(ds)
	c.m.accepted.Add(da)
	c.stepsC.Add(ds)
	c.acceptedC.Add(da)
	c.stepsN.Add(ds)
	c.acceptedN.Add(da)
}

func (c *chain) handle(msg any) {
	switch req := msg.(type) {
	case registerReq:
		cell, hit, err := c.register(req)
		req.reply <- registerReply{cell: cell, hit: hit, err: err}
	case unregisterReq:
		c.reg.dropSub(req.id)
		close(req.reply)
	case resolveReq:
		ops, err := world.ResolveMutation(c.log.DB(), req.mut)
		req.reply <- resolveReply{ops: ops, err: err}
	case applyReq:
		req.reply <- c.applyWrite(req.ops, req.burnIn, req.phases)
	case analyzeReq:
		st, err := c.analyzePlan(req.plan)
		req.reply <- analyzeReply{stats: st, err: err}
	default:
		panic(fmt.Sprintf("serve: unknown chain control message %T", msg))
	}
}

// applyWrite is the per-chain half of a write: replay the resolved ops
// through the change log (feeding Δ⁻/Δ⁺ exactly like sampler moves),
// walk burnIn steps so the chain re-equilibrates around the mutated
// world, fold the combined delta into every live view once, and reset
// every view's estimator — pre-write samples estimate marginals of a
// distribution that no longer exists, so post-write snapshots must carry
// post-write samples only. Subscriber budgets restart with the
// estimators: a query in flight across a write completes with its full
// budget of post-write samples.
//
// Control messages are handled at epoch boundaries, so the store holds no
// pending sampler delta when the write lands: the write closes its own
// epoch and every view is consistent with the mutated world from the
// published snapshot on.
func (c *chain) applyWrite(ops []world.Op, burnIn int, phases chan<- chainPhase) error {
	mark := func(p chainPhase) {
		if phases != nil {
			phases <- p
		}
	}
	if _, err := c.log.ApplyOps(ops); err != nil {
		return err
	}
	c.writeGen.Add(1)
	mark(phaseOpsApplied)
	if burnIn > 0 {
		c.walk(burnIn)
	}
	mark(phaseBurnedIn)
	d := c.log.Drain()
	epoch := c.log.Epoch()
	c.curEpoch.Store(epoch)
	c.reg.graph.NextRound()
	for _, pv := range c.reg.byFP {
		pv.view.Apply(d)
		pv.est = core.NewEstimator()
		for _, sub := range pv.subs {
			sub.start = 0
		}
		// Pre-write observations describe a distribution that no longer
		// exists; the convergence diagnostics restart with the estimator.
		pv.stat.series.reset()
	}
	mark(phaseDeltaFolded)
	for _, pv := range c.reg.byFP {
		// Publish the empty estimator: the cell must not keep serving the
		// pre-write snapshot to readers that merge before the next batch.
		pv.cell.Publish(epoch, pv.est.Clone())
	}
	mark(phaseRepublished)
	return nil
}

// analyzePlan binds plan against the chain's world and runs the
// instrumented streaming pipeline once, returning per-operator counters.
// Like every control message it runs at an epoch boundary, so the world
// it observes is exactly the one the chain's views are consistent with.
func (c *chain) analyzePlan(plan ra.Plan) (*ra.StreamStats, error) {
	bound, err := ra.Bind(c.log.DB(), plan)
	if err != nil {
		return nil, err
	}
	it, _, st, err := ra.AnalyzeStream(bound)
	if err != nil {
		return nil, err
	}
	it(func(relstore.Tuple, int64) bool { return true })
	return st, nil
}

// register binds the plan against this chain's world and subscribes the
// query through the view registry. Control messages are only handled at
// epoch boundaries, right after a Drain, so the store holds no pending
// deltas and a freshly mounted view is consistent with the world from its
// first sample on; an existing view is reused as-is (its estimator state
// is a valid prefix of the same chain's walk).
func (c *chain) register(req registerReq) (*world.Cell[*core.Estimator], bool, error) {
	bound, err := ra.Bind(c.log.DB(), req.plan)
	if err != nil {
		return nil, false, err
	}
	pv, hit, err := c.reg.acquire(req.id, bound, req.target, req.done, req.final)
	if err != nil {
		return nil, false, err
	}
	if hit {
		c.m.viewHits.Inc()
	}
	return pv.cell, hit, nil
}
