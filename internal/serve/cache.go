package serve

import (
	"container/list"
	"sync"
	"time"

	"factordb/internal/metrics"
)

// resultCache is an LRU cache of completed query results with a TTL.
// Marginal estimates never become wrong the way stale deterministic
// results do — further walking only refines them — so the TTL is a
// freshness bound for repeated identical queries (dashboards, retries),
// not a correctness mechanism.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ttl       time.Duration
	ll        *list.List               // front = most recently used
	items     map[string]*list.Element // key -> element holding *cacheEntry
	evictions *metrics.Counter         // optional; LRU overflow + TTL expiry
}

type cacheEntry struct {
	key string
	res *Result
	at  time.Time
}

// newResultCache returns a cache with the given capacity; capacity < 1
// yields a disabled cache (all gets miss, puts are dropped).
func newResultCache(capacity int, ttl time.Duration, evictions *metrics.Counter) *resultCache {
	return &resultCache{
		cap:       capacity,
		ttl:       ttl,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		evictions: evictions,
	}
}

// evicted counts one removed entry (nil counter = untracked, e.g. tests).
func (c *resultCache) evicted() {
	if c.evictions != nil {
		c.evictions.Inc()
	}
}

// get returns a defensive copy of the cached result: callers routinely
// sort or otherwise mutate answer slices (the ranked-query path reorders
// them), and a shallow alias here would corrupt the entry for every
// later hit.
func (c *resultCache) get(key string, now time.Time) (*Result, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if now.Sub(ent.at) > c.ttl {
		c.ll.Remove(el)
		delete(c.items, key)
		c.evicted()
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.res.clone(), true
}

// put stores a private copy of res, for the same aliasing reason get
// copies on the way out: the caller keeps its result and may mutate it.
func (c *resultCache) put(key string, res *Result, now time.Time) {
	if c.cap < 1 {
		return
	}
	res = res.clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		el.Value.(*cacheEntry).at = now
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, at: now})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evicted()
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
