package serve

import (
	"context"
	"log/slog"
	"time"
)

// Structured logging: the engine emits its operational records — the
// slow-query log and the write audit — through Config.Logger (log/slog).
// Record shapes are part of the observability contract (see doc.go):
// the factorload report and the CI log-validation job parse them.

// newQueryTrace decides tracing for one query. Client opt-in and sampler
// hits produce published traces (attached to the result and ringed); an
// enabled slow-query log additionally records a private trace for every
// query, so the span breakdown exists if this one crosses the threshold.
func (e *Engine) newQueryTrace(sql string, opts QueryOptions) *qtrace {
	publish := opts.Trace || e.tracer.hit()
	if !publish && e.cfg.SlowQuery <= 0 {
		return nil
	}
	tr := newTrace(e.nextID.Add(1), sql, time.Now())
	tr.publish = publish
	tr.qt.Kind = "query"
	tr.qt.TraceID = opts.TraceID
	if tr.qt.TraceID == "" {
		tr.qt.TraceID = e.genTraceID(tr.qt.ID)
	}
	return tr
}

// finishTrace closes tr with outcome, emits the slow-query record when
// the query crossed the threshold, rings the trace if it is published or
// slow (slow queries must be findable in /debug/traces so log records
// cross-reference), and returns the trace to attach to the result — nil
// for private traces, preserving the result contract that Trace is only
// present when the query opted in or the sampler picked it.
func (e *Engine) finishTrace(tr *qtrace, outcome string) *QueryTrace {
	if tr == nil {
		return nil
	}
	qt := tr.finish(outcome)
	slow := e.cfg.SlowQuery > 0 && time.Duration(qt.WallNS) >= e.cfg.SlowQuery
	if slow {
		e.logSlowQuery(qt)
	}
	if tr.publish || slow {
		e.traces.add(qt)
	}
	if !tr.publish {
		return nil
	}
	return qt
}

// logSlowQuery emits one slow-query record: trace ID (the cross-
// reference key into /debug/traces), plan fingerprint, outcome, wall
// time, and the span breakdown with durations summed per span name
// (retried collection passes repeat register/sample_wait/snapshot_merge).
func (e *Engine) logSlowQuery(qt *QueryTrace) {
	lg := e.cfg.Logger
	if lg == nil {
		return
	}
	byName := make(map[string]int64, len(qt.Spans))
	order := make([]string, 0, len(qt.Spans))
	for _, s := range qt.Spans {
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] += s.DurNS
	}
	spans := make([]slog.Attr, 0, len(order))
	for _, n := range order {
		spans = append(spans, slog.Int64(n, byName[n]))
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow_query",
		slog.String("trace_id", qt.TraceID),
		slog.String("kind", qt.Kind),
		slog.String("sql", qt.SQL),
		slog.String("fingerprint", qt.Plan),
		slog.String("outcome", qt.Outcome),
		slog.Int64("wall_ns", qt.WallNS),
		slog.Int64("threshold_ns", e.cfg.SlowQuery.Nanoseconds()),
		slog.Attr{Key: "span_ns", Value: slog.GroupValue(spans...)},
	)
}

// auditWrite emits one write-audit record per Exec attempt: the epoch the
// write committed at (or the epoch it left unchanged), rows affected,
// outcome, and the trace ID when the write was traced. Committed writes
// log at Info, failures at Warn.
func (e *Engine) auditWrite(ctx context.Context, sql string, res *ExecResult, outcome string, tr *qtrace) {
	lg := e.cfg.Logger
	if lg == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("outcome", outcome),
		slog.String("sql", sql),
	}
	if tr != nil && tr.qt.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", tr.qt.TraceID))
	}
	if res != nil {
		attrs = append(attrs,
			slog.Int64("epoch", res.Epoch),
			slog.Int64("rows_affected", res.RowsAffected),
			slog.Duration("elapsed", res.Elapsed))
	} else {
		attrs = append(attrs, slog.Int64("epoch", e.dataEpoch.Load()))
	}
	lvl := slog.LevelInfo
	if outcome == "error" {
		lvl = slog.LevelWarn
	}
	lg.LogAttrs(ctx, lvl, "write.audit", attrs...)
}
