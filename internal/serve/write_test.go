package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"factordb/internal/exp"
	"factordb/internal/world"
)

// corefEngine builds an engine over a small entity-resolution workload —
// cheap to stock (no training), so write tests get private engines whose
// worlds they may mutate freely.
func corefEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	sys, err := exp.BuildCoref(exp.CorefConfig{NumEntities: 4, MentionsPerEntity: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StepsPerSample == 0 {
		cfg.StepsPerSample = 100
	}
	eng, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// mentionString fetches the current STRING evidence of one mention
// through the query path; want -1 tuples skips the arity check.
func queryTuples(t *testing.T, eng *Engine, sql string) []TupleResult {
	t.Helper()
	res, err := eng.Query(context.Background(), sql, QueryOptions{Samples: 4, NoCache: true})
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res.Tuples
}

// TestExecMutatesEveryChainWorld drives the three DML verbs end-to-end
// through a multi-chain engine: evidence queries (marginal 1 tuples) must
// reflect each committed write on every chain, with no engine restart.
func TestExecMutatesEveryChainWorld(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 2, Seed: 3})
	ctx := context.Background()

	pre := queryTuples(t, eng, `SELECT STRING FROM MENTION WHERE MENTION_ID = 0`)
	if len(pre) != 1 || pre[0].P != 1 {
		t.Fatalf("pre-write evidence answer = %+v", pre)
	}

	// UPDATE: the evidence correction must land on both chains.
	res, err := eng.Exec(ctx, `UPDATE MENTION SET STRING = 'CORRECTED' WHERE MENTION_ID = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || res.Epoch != 1 || res.Chains != 2 {
		t.Fatalf("exec result = %+v", res)
	}
	post := queryTuples(t, eng, `SELECT STRING FROM MENTION WHERE MENTION_ID = 0`)
	if len(post) != 1 || post[0].Values[0] != "CORRECTED" || post[0].P != 1 {
		t.Fatalf("post-update answer = %+v", post)
	}

	// DELETE: the tuple disappears from the answer; the proposer keeps
	// walking (its in-memory variable just stops mirroring).
	if _, err := eng.Exec(ctx, `DELETE FROM MENTION WHERE MENTION_ID = 0`); err != nil {
		t.Fatal(err)
	}
	if got := queryTuples(t, eng, `SELECT STRING FROM MENTION WHERE MENTION_ID = 0`); len(got) != 0 {
		t.Fatalf("post-delete answer = %+v, want empty", got)
	}

	// INSERT: new evidence is queryable immediately.
	if _, err := eng.Exec(ctx, `INSERT INTO MENTION (MENTION_ID, STRING, CLUSTER) VALUES (99, 'NEW', 42)`); err != nil {
		t.Fatal(err)
	}
	got := queryTuples(t, eng, `SELECT STRING FROM MENTION WHERE MENTION_ID = 99`)
	if len(got) != 1 || got[0].Values[0] != "NEW" {
		t.Fatalf("post-insert answer = %+v", got)
	}
	if eng.DataEpoch() != 3 {
		t.Errorf("data epoch = %d after 3 writes", eng.DataEpoch())
	}

	// Sampling still works after all three mutations: the hidden-field
	// query exercises the proposer against the mutated world.
	res2, err := eng.Query(ctx, exp.PairQuery, QueryOptions{Samples: 8, NoCache: true})
	if err != nil {
		t.Fatalf("pair query after writes: %v", err)
	}
	if res2.Samples < 8 {
		t.Errorf("pair query collected %d samples", res2.Samples)
	}
}

// TestWriteInvalidatesResultCache is the epoch-in-key regression test: a
// result cached before a write must never be served after it — including
// through whitespace/case variants that share the canonical plan's
// fingerprint — while fingerprint sharing itself keeps working within
// one data epoch.
func TestWriteInvalidatesResultCache(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 1, Seed: 5})
	ctx := context.Background()
	const (
		sqlA = `SELECT STRING FROM MENTION WHERE MENTION_ID = 1`
		sqlB = "select   STRING\nfrom MENTION\nwhere MENTION_ID=1" // same plan, different spelling
		sqlC = `SELECT STRING FROM MENTION M WHERE M.MENTION_ID = 1`
	)
	q := func(sql string) *Result {
		t.Helper()
		res, err := eng.Query(ctx, sql, QueryOptions{Samples: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	r1 := q(sqlA)
	if r1.Cached {
		t.Fatal("first query hit an empty cache")
	}
	if r2 := q(sqlB); !r2.Cached {
		t.Error("pre-write spelling variant missed the shared cache entry")
	}

	if _, err := eng.Exec(ctx, `UPDATE MENTION SET STRING = 'POSTWRITE' WHERE MENTION_ID = 1`); err != nil {
		t.Fatal(err)
	}

	// Every spelling of the query must now miss the stale entry and see
	// the post-write value.
	r3 := q(sqlB)
	if r3.Cached {
		t.Fatal("stale pre-write cache entry served after the write")
	}
	if len(r3.Tuples) != 1 || r3.Tuples[0].Values[0] != "POSTWRITE" {
		t.Fatalf("post-write answer = %+v", r3.Tuples)
	}
	// Fingerprint sharing still works within the new epoch.
	r4 := q(sqlC)
	if !r4.Cached {
		t.Error("post-write spelling variant missed the fresh shared entry")
	}
	if len(r4.Tuples) != 1 || r4.Tuples[0].Values[0] != "POSTWRITE" {
		t.Fatalf("post-write cached answer = %+v", r4.Tuples)
	}
}

// TestInFlightQueryCompletesAcrossWrite pins the re-equilibration
// contract for queries already running when a write lands: their
// estimators restart, so the answer they eventually return reflects the
// post-write world only — never a blend.
func TestInFlightQueryCompletesAcrossWrite(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 2, Seed: 7})
	ctx := context.Background()

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := eng.Query(ctx, `SELECT STRING FROM MENTION WHERE MENTION_ID = 2`,
			QueryOptions{Samples: 64, NoCache: true})
		done <- out{res, err}
	}()
	// Land the write while the query is (very likely) in flight; the
	// assertion below holds either way — what is forbidden is a blended
	// answer.
	time.Sleep(2 * time.Millisecond)
	if _, err := eng.Exec(ctx, `UPDATE MENTION SET STRING = 'SHIFTED' WHERE MENTION_ID = 2`); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	// STRING is evidence, so within any single world the answer is one
	// tuple with certainty. A complete query must therefore return
	// exactly one tuple at marginal 1 — the pre-write value if the query
	// finished before the commit, the post-write value otherwise. Two
	// tuples, or one below certainty, is a blend of the two worlds: the
	// exact outcome the collect-retry loop forbids.
	if !o.res.Partial {
		if len(o.res.Tuples) != 1 || o.res.Tuples[0].P != 1 {
			t.Errorf("blended in-flight answer across the write: %+v", o.res.Tuples)
		}
	}
	// A fresh query sees the write with certainty.
	got := queryTuples(t, eng, `SELECT STRING FROM MENTION WHERE MENTION_ID = 2`)
	if len(got) != 1 || got[0].Values[0] != "SHIFTED" || got[0].P != 1 {
		t.Fatalf("post-write answer = %+v", got)
	}
}

// TestWriteRespectsAdmission: writes pass the same admission control as
// queries — with the slot held and the queue full, an extra Exec is shed
// with ErrOverloaded instead of piling up.
func TestWriteRespectsAdmission(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 1, Seed: 9, MaxConcurrentQueries: 1, MaxQueuedQueries: 1})
	ctx := context.Background()

	if err := eng.admit.acquire(ctx); err != nil { // occupy the only slot
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := eng.Exec(ctx, `UPDATE MENTION SET STRING = 'Q' WHERE MENTION_ID = 3`)
		queued <- err
	}()
	// Wait for the goroutine to take the single queue spot.
	for i := 0; eng.admit.waiting.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("queued Exec never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := eng.Exec(ctx, `DELETE FROM MENTION WHERE MENTION_ID = 3`); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded Exec = %v, want ErrOverloaded", err)
	}
	eng.admit.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Exec = %v", err)
	}
}

// TestExecBadStatements covers the client-error paths of the write
// coordinator: parse errors, resolve errors and read/write API misuse
// all surface as ErrBadQuery without touching any chain's world.
func TestExecBadStatements(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 1, Seed: 13})
	ctx := context.Background()
	cases := []struct {
		name, sql, detail string
	}{
		{"parse error", `UPDATE MENTION SET`, "expected identifier"},
		{"select via exec", `SELECT STRING FROM MENTION`, "use Query"},
		{"unknown relation", `DELETE FROM NOPE`, `unknown relation "NOPE"`},
		{"unknown column", `UPDATE MENTION SET NOPE = 1`, `no column "NOPE"`},
		{"type mismatch", `UPDATE MENTION SET STRING = 7`, "takes STRING"},
	}
	for _, c := range cases {
		_, err := eng.Exec(ctx, c.sql)
		if !errors.Is(err, ErrBadQuery) {
			t.Errorf("%s: error %v, want ErrBadQuery", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.detail) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.detail)
		}
	}
	if eng.DataEpoch() != 0 {
		t.Errorf("bad statements bumped the data epoch to %d", eng.DataEpoch())
	}
	// A mutation matching no rows succeeds but commits nothing: the data
	// epoch must not move, so the result cache survives intact.
	res, err := eng.Exec(ctx, `DELETE FROM MENTION WHERE MENTION_ID = 999`)
	if err != nil || res.RowsAffected != 0 || eng.DataEpoch() != 0 {
		t.Errorf("no-match DELETE: err=%v rows=%d epoch=%d, want a zero-row no-op at epoch 0",
			err, res.RowsAffected, eng.DataEpoch())
	}
}

// fsyncStubWAL is a WALSink reporting a fixed fsync share of its last
// Append — enough to make a traced write produce the wal_append and
// fsync spans without a real disk. The brief sleep guarantees the
// wal_append span is wider than the fsync share it must contain.
type fsyncStubWAL struct {
	appends int
}

func (w *fsyncStubWAL) Append(epoch int64, ops []world.Op) error {
	w.appends++
	time.Sleep(200 * time.Microsecond)
	return nil
}

func (w *fsyncStubWAL) LastFsyncNS() int64 { return 50_000 }

// TestExecTraceSpans pins the write-trace contract: a traced Exec
// returns a contiguous span timeline covering the whole write — compile
// through cache_invalidate, with the fsync share carved out of
// wal_append — that tiles the wall time exactly and lands in the debug
// ring. Untraced writes stay dark, and a no-match write traces as a
// noop that never reaches the fan-out.
func TestExecTraceSpans(t *testing.T) {
	wal := &fsyncStubWAL{}
	eng := corefEngine(t, Config{Chains: 2, Seed: 31, WAL: wal})
	ctx := context.Background()
	wantID := strings.Repeat("ab", 16)
	res, err := eng.ExecTraced(ctx,
		`UPDATE MENTION SET STRING = 'TRACED' WHERE MENTION_ID = 1`,
		ExecOptions{Trace: true, TraceID: wantID})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("traced exec returned no trace")
	}
	if tr.Kind != "exec" || tr.Outcome != "ok" {
		t.Fatalf("trace kind=%q outcome=%q, want exec/ok", tr.Kind, tr.Outcome)
	}
	if tr.TraceID != wantID {
		t.Fatalf("trace id %q, want the propagated %q", tr.TraceID, wantID)
	}
	want := []string{"compile", "admission_wait", "resolve", "wal_append", "fsync",
		"fanout", "burn_in", "delta_fold", "republish", "cache_invalidate"}
	if len(tr.Spans) != len(want) {
		t.Fatalf("trace has %d spans (%+v), want %v", len(tr.Spans), tr.Spans, want)
	}
	var sum int64
	for i, s := range tr.Spans {
		if s.Name != want[i] {
			t.Errorf("span %d = %q, want %q", i, s.Name, want[i])
		}
		if s.DurNS < 0 {
			t.Errorf("span %q has negative duration %d", s.Name, s.DurNS)
		}
		if i > 0 {
			prev := tr.Spans[i-1]
			if s.StartNS != prev.StartNS+prev.DurNS {
				t.Fatalf("span %q starts at %d, previous ended at %d — the write timeline has a gap",
					s.Name, s.StartNS, prev.StartNS+prev.DurNS)
			}
		}
		sum += s.DurNS
	}
	if got := sum + tr.Spans[0].StartNS; got != tr.WallNS {
		t.Fatalf("spans tile %dns of %dns wall time", got, tr.WallNS)
	}
	// splitTail carved at least the reported fsync share out of wal_append
	// (the span also absorbs the instants until the fan-out opens).
	if fs := tr.Spans[4]; fs.DurNS < wal.LastFsyncNS() {
		t.Errorf("fsync span %dns, want at least the reported %dns", fs.DurNS, wal.LastFsyncNS())
	}
	if wal.appends != 1 {
		t.Fatalf("WAL saw %d appends, want 1", wal.appends)
	}
	if traces := eng.Traces(); len(traces) == 0 || traces[0].ID != tr.ID {
		t.Fatal("debug ring does not lead with the traced write")
	}

	// Untraced write: no trace on the result, nothing new in the ring.
	res2, err := eng.Exec(ctx, `UPDATE MENTION SET STRING = 'DARK' WHERE MENTION_ID = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatalf("untraced exec carries a trace: %+v", res2.Trace)
	}
	if n := len(eng.Traces()); n != 1 {
		t.Fatalf("debug ring holds %d traces after an untraced write, want 1", n)
	}

	// No-match mutation: outcome noop, the WAL untouched, no fan-out spans.
	res3, err := eng.ExecTraced(ctx, `DELETE FROM MENTION WHERE MENTION_ID = 999`,
		ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trace == nil || res3.Trace.Outcome != "noop" {
		t.Fatalf("no-match trace = %+v, want outcome noop", res3.Trace)
	}
	if last := res3.Trace.Spans[len(res3.Trace.Spans)-1]; last.Name != "resolve" {
		t.Errorf("noop trace ends with span %q, want resolve (no fan-out happened)", last.Name)
	}
	if wal.appends != 2 { // the two matching writes above, nothing from the no-op
		t.Errorf("no-match mutation reached the WAL (%d appends, want 2)", wal.appends)
	}
}

// TestExecQueryCloseRace interleaves writers, readers and shutdown; run
// under -race it is the engine's write-path memory-safety check. Every
// call must return either a clean result or a shutdown/overload error —
// never a panic, deadlock or torn state.
func TestExecQueryCloseRace(t *testing.T) {
	eng := corefEngine(t, Config{Chains: 2, Seed: 21, StepsPerSample: 50})
	ctx := context.Background()

	var wg sync.WaitGroup
	fail := func(kind string, err error) {
		if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrOverloaded) {
			return
		}
		t.Errorf("%s returned %v", kind, err)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				_, err := eng.Exec(ctx, fmt.Sprintf(
					`UPDATE MENTION SET STRING = 'W%d_%d' WHERE MENTION_ID = %d`, w, i, w))
				fail("Exec", err)
			}
		}(w)
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := eng.Query(ctx, exp.PairQuery, QueryOptions{Samples: 4, NoCache: true})
				fail("Query", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		eng.Close()
	}()
	wg.Wait()

	if _, err := eng.Exec(ctx, `DELETE FROM MENTION`); !errors.Is(err, ErrClosed) {
		t.Errorf("Exec after Close = %v, want ErrClosed", err)
	}
}
