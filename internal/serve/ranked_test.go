package serve

import (
	"context"
	"fmt"
	"testing"

	"factordb/internal/core"
	"factordb/internal/exp"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// TestCacheHitMutationIsolation is the regression test for the result-
// cache aliasing bug: a cache hit used to be a shallow copy sharing the
// Tuples and cis slices with the cached entry, so any caller mutating
// its result (the ranked-query path sorts in place) corrupted the entry
// for every later hit.
func TestCacheHitMutationIsolation(t *testing.T) {
	eng := testEngine(t, Config{Chains: 1, Seed: 3})
	ctx := context.Background()

	first, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	if len(first.Tuples) < 2 {
		t.Fatalf("degenerate corpus: %d answer tuples", len(first.Tuples))
	}
	wantVal := first.Tuples[0].Values[0]
	wantP := first.Tuples[0].P
	wantLen := len(first.Tuples)

	// Mutate the caller's copy every way a client plausibly would:
	// reorder, clobber values, truncate.
	first.Tuples[0], first.Tuples[1] = first.Tuples[1], first.Tuples[0]
	first.Tuples[0].Values[0] = "CORRUPTED"
	first.Tuples[0].P = -42
	first.cis[0] = core.TupleCI{}
	first.Tuples = first.Tuples[:1]

	second, err := eng.Query(ctx, exp.Query1, QueryOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second query missed the cache")
	}
	if len(second.Tuples) != wantLen {
		t.Fatalf("cached answer shrank: %d tuples, want %d", len(second.Tuples), wantLen)
	}
	if second.Tuples[0].Values[0] != wantVal || second.Tuples[0].P != wantP {
		t.Errorf("cache corrupted by the caller's mutation: got (%q, %v), want (%q, %v)",
			second.Tuples[0].Values[0], second.Tuples[0].P, wantVal, wantP)
	}
	if len(second.TupleCIs()) != wantLen || second.TupleCIs()[0].Tuple == nil {
		t.Error("cached typed tuples corrupted")
	}
}

// TestServedRankedQuery runs ORDER BY P DESC LIMIT k through the engine:
// the answer must come back truncated and ranked, whatever the sampled
// marginals turn out to be.
func TestServedRankedQuery(t *testing.T) {
	eng := testEngine(t, Config{Chains: 2, Seed: 11})
	const k = 3
	res, err := eng.Query(context.Background(),
		exp.Query1+` ORDER BY P DESC LIMIT 3`, QueryOptions{Samples: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) > k {
		t.Fatalf("LIMIT %d returned %d tuples", k, len(res.Tuples))
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i].P > res.Tuples[i-1].P {
			t.Errorf("rank order violated at %d: %v after %v", i, res.Tuples[i].P, res.Tuples[i-1].P)
		}
	}
	// Query 1 always carries a block of near-certain tuples; a top-k
	// that starts anywhere below them means the ranking was inverted or
	// truncated from the wrong end.
	if len(res.Tuples) > 0 && res.Tuples[0].P < 0.5 {
		t.Errorf("top-ranked tuple has p=%v; ranking picked the wrong end", res.Tuples[0].P)
	}
	if res.Partial {
		t.Error("complete ranked query flagged partial")
	}
	// Its full sibling must contain every ranked tuple with the limit as
	// a prefix-of-ranking relationship left to the facade equivalence
	// tests (the pool keeps walking between queries, so marginals here
	// are not bitwise comparable).
	full, err := eng.Query(context.Background(), exp.Query1, QueryOptions{Samples: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) < len(res.Tuples) {
		t.Errorf("full answer (%d) smaller than its top-%d", len(full.Tuples), k)
	}
}

// TestTopKSeparated exercises the early-stop criterion directly: a clear
// probability gap across the k-boundary separates; ties and thin samples
// do not.
func TestTopKSeparated(t *testing.T) {
	schema := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("T", "S"), Type: relstore.TString}}}
	sample := func(names ...string) *ra.Bag {
		b := ra.NewBag(schema)
		for _, n := range names {
			b.Add(relstore.Tuple{relstore.String(n)}, 1)
		}
		return b
	}
	mkregs := func(est *core.Estimator) []*registration {
		cell := &world.Cell[*core.Estimator]{}
		cell.Publish(1, est)
		return []*registration{{cell: cell}}
	}
	const z = 1.96

	// A always present, B once in 40: the gap separates at k=1.
	est := core.NewEstimator()
	for i := 0; i < 40; i++ {
		if i == 0 {
			est.AddSample(sample("A", "B"))
		} else {
			est.AddSample(sample("A"))
		}
	}
	if !topKSeparated(mkregs(est), 1, z) {
		t.Error("clear gap did not separate")
	}

	// Both tuples always present: a dead tie can never separate.
	tie := core.NewEstimator()
	for i := 0; i < 40; i++ {
		tie.AddSample(sample("A", "B"))
	}
	if topKSeparated(mkregs(tie), 1, z) {
		t.Error("dead tie separated")
	}

	// Fewer tuples than k: new tuples may still surface, keep sampling.
	if topKSeparated(mkregs(est), 5, z) {
		t.Error("undersized answer separated")
	}

	// Below the sample floor nothing separates, however wide the gap.
	thin := core.NewEstimator()
	for i := 0; i < int(minTopKStopSamples)-1; i++ {
		if i == 0 {
			thin.AddSample(sample("A", "B"))
		} else {
			thin.AddSample(sample("A"))
		}
	}
	if topKSeparated(mkregs(thin), 1, z) {
		t.Error("separated below the sample floor")
	}
}

// TestRankedEarlyStop pins the budget payoff end-to-end on the workload
// ranked queries are made for: the coref pair marginals are bimodal
// (same-entity pairs near 1, cross-entity pairs near 0), so placing the
// LIMIT at the gap lets the engine separate the top k and return long
// before an enormous budget — the "stop refining tuples that cannot
// enter the top k" behavior.
func TestRankedEarlyStop(t *testing.T) {
	sys, err := exp.BuildCoref(exp.CorefConfig{NumEntities: 4, MentionsPerEntity: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sys, Config{Chains: 1, Seed: 19, StepsPerSample: 200})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ctx := context.Background()

	// Probe the marginal landscape to find the gap: k is the size of the
	// near-certain block, and the next tuple must sit clearly below it.
	probe, err := eng.Query(ctx, exp.PairQuery, QueryOptions{Samples: 64, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	k, gap := 0, 0.0
	for i := 1; i < len(probe.Tuples); i++ {
		if g := probe.Tuples[i-1].P - probe.Tuples[i].P; g > gap {
			k, gap = i, g
		}
	}
	if k == 0 || gap < 0.25 {
		t.Skipf("no clean marginal gap at this seed (best gap %.3f at k=%d of %d); early stop untestable here",
			gap, k, len(probe.Tuples))
	}

	const budget = 4000
	res, err := eng.Query(ctx,
		exp.PairQuery+fmt.Sprintf(" ORDER BY P DESC LIMIT %d", k),
		QueryOptions{Samples: budget, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStop {
		t.Fatalf("ranked query ran its full %d-sample budget across a clean gap (collected %d)",
			budget, res.Samples)
	}
	if res.Samples >= budget {
		t.Errorf("early stop claimed but the full budget was spent (%d samples)", res.Samples)
	}
	if res.Partial {
		t.Error("early-stopped query flagged partial")
	}
	if len(res.Tuples) != k {
		t.Errorf("top-%d returned %d tuples", k, len(res.Tuples))
	}
	t.Logf("early stop after %d/%d samples for k=%d", res.Samples, budget, k)
}
