package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"factordb/internal/ra"
	"factordb/internal/world"
)

// ExecResult reports one committed DML mutation.
type ExecResult struct {
	SQL          string        `json:"sql"`
	RowsAffected int64         `json:"rows_affected"`
	Epoch        int64         `json:"epoch"`  // data epoch after the commit
	Chains       int           `json:"chains"` // worlds the mutation was applied to
	Elapsed      time.Duration `json:"elapsed_ns"`

	// Trace is the span breakdown of this write, present only when the
	// caller opted in (ExecOptions.Trace) or the engine's trace sampler
	// picked it. Spans follow the write-span contract in doc.go.
	Trace *QueryTrace `json:"trace,omitempty"`
}

// ExecOptions tunes one mutation execution.
type ExecOptions struct {
	// Trace records a span breakdown of the write — compile, admission,
	// resolve, WAL append/fsync, chain fan-out phases — returned in
	// ExecResult.Trace and kept in the engine's debug ring.
	Trace bool
	// TraceID propagates a caller-assigned correlation ID (the trace-id
	// field of a W3C traceparent) into the trace and the write-audit log.
	// Empty means the engine assigns one when a trace is recorded.
	TraceID string
}

// FsyncReporter is optionally implemented by WAL sinks that can say how
// much of their last Append was spent in fsync; traced writes use it to
// carve the fsync span out of wal_append. The report is only meaningful
// immediately after an Append on the same goroutine, which the engine's
// write lock guarantees.
type FsyncReporter interface {
	LastFsyncNS() int64
}

// Exec compiles one DML statement (INSERT, UPDATE or DELETE), applies it
// to every chain's world, and blocks until all chains have absorbed it.
// This is the paper's data-update model made operational: the database is
// one possible world plus a factor graph, so a write mutates the world
// in place and the chains keep sampling — marginals re-equilibrate with
// no lineage recomputation and no engine restart.
//
// The mutation is resolved once, on chain 0, into concrete row-level ops
// (predicates evaluated, row identities fixed), then the identical op
// list is fanned out to every chain — chain worlds share row identities
// by construction, so they never diverge on evidence. Each chain applies
// the ops at an epoch boundary, walks WriteBurnIn steps to
// re-equilibrate, folds the combined delta into its live views once, and
// resets their estimators: queries in flight across the write complete
// with post-write samples only, and queries issued after Exec returns
// never observe pre-write state. Committing bumps the data epoch, which
// is part of every result-cache key, so all cached pre-write answers
// become unreachable.
//
// Writes pass the same admission control as queries and are serialized
// with each other. ctx is honored up to the point of no return: once the
// fan-out starts, Exec completes (or the engine closes) regardless of
// cancellation, because a half-applied write would fork the chains'
// worlds.
func (e *Engine) Exec(ctx context.Context, sql string) (*ExecResult, error) {
	return e.ExecTraced(ctx, sql, ExecOptions{})
}

// ExecTraced is Exec with per-write options (tracing, trace-ID
// propagation).
func (e *Engine) ExecTraced(ctx context.Context, sql string, opts ExecOptions) (*ExecResult, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	begin := time.Now()
	tr := e.newExecTrace(sql, opts)
	tr.span("compile")
	mut, cached, err := e.cfg.Plans.CompileMutation(sql)
	if err != nil {
		e.m.failed.Inc()
		e.finishExec(ctx, sql, nil, "error", tr, begin)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if cached {
		e.m.planHits.Inc()
		tr.attr("plan_cache", "hit")
	} else {
		tr.attr("plan_cache", "miss")
	}
	return e.execMutation(ctx, sql, mut, tr, begin)
}

// ExecMutation applies an already compiled mutation — the prepared-
// statement path. Semantics match Exec exactly.
func (e *Engine) ExecMutation(ctx context.Context, sql string, mut ra.Mutation) (*ExecResult, error) {
	return e.ExecMutationTraced(ctx, sql, mut, ExecOptions{})
}

// ExecMutationTraced is ExecMutation with per-write options.
func (e *Engine) ExecMutationTraced(ctx context.Context, sql string, mut ra.Mutation, opts ExecOptions) (*ExecResult, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	begin := time.Now()
	tr := e.newExecTrace(sql, opts)
	tr.span("compile")
	tr.attr("plan_cache", "prebound")
	return e.execMutation(ctx, sql, mut, tr, begin)
}

// newExecTrace decides tracing for one write: caller opt-in and sampler
// hits produce published traces; an armed slow-query log additionally
// records a private trace for every write, so the span breakdown exists
// if this one crosses the threshold (writes share the query threshold).
func (e *Engine) newExecTrace(sql string, opts ExecOptions) *qtrace {
	publish := opts.Trace || e.tracer.hit()
	if !publish && e.cfg.SlowQuery <= 0 {
		return nil
	}
	tr := newTrace(e.nextID.Add(1), sql, time.Now())
	tr.publish = publish
	tr.qt.Kind = "exec"
	tr.qt.TraceID = opts.TraceID
	if tr.qt.TraceID == "" {
		tr.qt.TraceID = e.genTraceID(tr.qt.ID)
	}
	return tr
}

// finishExec settles one exec attempt's observability: closes the trace,
// emits the slow-query record when the write crossed the threshold,
// rings published or slow traces, attaches published ones to the result,
// observes the outcome-labeled latency histogram, and emits the
// write-audit record.
func (e *Engine) finishExec(ctx context.Context, sql string, res *ExecResult, outcome string, tr *qtrace, begin time.Time) {
	if tr != nil {
		qt := tr.finish(outcome)
		slow := e.cfg.SlowQuery > 0 && time.Duration(qt.WallNS) >= e.cfg.SlowQuery
		if slow {
			e.logSlowQuery(qt)
		}
		if tr.publish || slow {
			e.traces.add(qt)
		}
		if res != nil && tr.publish {
			res.Trace = qt
		}
	}
	e.m.execLatency.With(outcome).Observe(time.Since(begin).Seconds())
	e.auditWrite(ctx, sql, res, outcome, tr)
}

// execMutation is the shared write core behind Exec and ExecMutation:
// admission, single-point resolution, WAL append, chain fan-out, epoch
// bump. A traced write spans each stage contiguously —
// compile / admission_wait / resolve / wal_append / fsync / fanout /
// burn_in / delta_fold / republish / cache_invalidate — with the fan-out
// phases clocked by the slowest chain (each phase span closes when every
// chain has reported that phase done).
func (e *Engine) execMutation(ctx context.Context, sql string, mut ra.Mutation, tr *qtrace, begin time.Time) (res *ExecResult, err error) {
	outcome := "error"
	defer func() { e.finishExec(ctx, sql, res, outcome, tr, begin) }()

	if err := ctx.Err(); err != nil {
		outcome = "canceled"
		return nil, err
	}
	tr.span("admission_wait")
	if err := e.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.m.rejected.Inc()
			outcome = "rejected"
		} else {
			outcome = "canceled"
		}
		return nil, err
	}
	defer e.admit.release()

	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()

	tr.span("resolve")
	ops, err := e.chains[0].resolveMutation(ctx, mut)
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()) {
			outcome = "canceled"
			return nil, err
		}
		e.m.failed.Inc()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}

	// A mutation matching no rows leaves every world untouched: commit
	// nothing, and in particular do not bump the data epoch — that would
	// orphan every cached answer for no reason.
	if len(ops) == 0 {
		outcome = "noop"
		res = &ExecResult{
			SQL:     sql,
			Epoch:   e.dataEpoch.Load(),
			Chains:  len(e.chains),
			Elapsed: time.Since(start),
		}
		return res, nil
	}

	// Write-ahead: the batch goes to the durable log before any chain
	// sees it. An Append error vetoes the write with every world still
	// untouched. The converse failure — Append succeeded but the fan-out
	// below aborted on shutdown — leaves a record that recovery will
	// replay, which is the standard WAL commit rule: durable means
	// committed.
	epoch := e.dataEpoch.Load() + 1
	if e.cfg.WAL != nil {
		tr.span("wal_append")
		if err := e.cfg.WAL.Append(epoch, ops); err != nil {
			return nil, fmt.Errorf("serve: wal append: %w", err)
		}
		var fsyncNS int64
		if fr, ok := e.cfg.WAL.(FsyncReporter); ok {
			fsyncNS = fr.LastFsyncNS()
		}
		tr.splitTail("fsync", fsyncNS)
	}

	// Point of no return: every chain must apply the same ops. Fan out in
	// parallel and wait for all of them; only engine shutdown aborts. A
	// traced write additionally collects per-chain phase marks, advancing
	// the span as the whole pool completes each stage.
	tr.span("fanout")
	var phases chan chainPhase
	if tr != nil {
		phases = make(chan chainPhase, len(e.chains)*int(numWritePhases))
	}
	errs := make(chan error, len(e.chains))
	for _, c := range e.chains {
		go func(c *chain) { errs <- c.applyOps(e.cfg.WriteBurnIn, ops, phases) }(c)
	}
	var failed error
	counts := [numWritePhases]int{}
	cur := phaseOpsApplied
	// The span to open once every chain finishes the current phase; the
	// last phase is closed by the reply collection itself.
	next := [numWritePhases]string{"burn_in", "delta_fold", "republish", ""}
	advance := func(p chainPhase) {
		counts[p]++
		for cur < numWritePhases && counts[cur] == len(e.chains) {
			if next[cur] != "" {
				tr.span(next[cur])
			}
			cur++
		}
	}
	for done := 0; done < len(e.chains); {
		if phases == nil {
			if err := <-errs; err != nil && failed == nil {
				failed = err
			}
			done++
			continue
		}
		select {
		case err := <-errs:
			done++
			if err != nil && failed == nil {
				failed = err
			}
		case p := <-phases:
			advance(p)
		}
	}
	// A chain buffers all its phase marks before replying, so any marks
	// the select raced past are already in the channel: drain them so the
	// phase spans open even when every reply won the select.
	for phases != nil {
		select {
		case p := <-phases:
			advance(p)
		default:
			phases = nil
		}
	}
	if failed != nil {
		return nil, failed
	}

	tr.span("cache_invalidate")
	e.dataEpoch.Store(epoch) // == Add(1): writeMu serializes committers
	e.m.writes.Inc()
	outcome = "ok"
	res = &ExecResult{
		SQL:          sql,
		RowsAffected: int64(len(ops)),
		Epoch:        epoch,
		Chains:       len(e.chains),
		Elapsed:      time.Since(start),
	}
	return res, nil
}

// DataEpoch returns the number of committed writes — the data-epoch
// component of every result-cache key.
func (e *Engine) DataEpoch() int64 { return e.dataEpoch.Load() }

// resolveMutation asks the chain goroutine to resolve mut against its
// world, honoring ctx and engine shutdown.
func (c *chain) resolveMutation(ctx context.Context, mut ra.Mutation) ([]world.Op, error) {
	req := resolveReq{mut: mut, reply: make(chan resolveReply, 1)}
	select {
	case c.ctl <- req:
	case <-c.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case rep := <-req.reply:
		return rep.ops, rep.err
	case <-c.done:
		return nil, ErrClosed
	}
}

// applyOps delivers a resolved op list to the chain goroutine and waits
// for it to be absorbed. Deliberately not cancellable by context: a
// write that reached some chains must reach all of them.
func (c *chain) applyOps(burnIn int, ops []world.Op, phases chan<- chainPhase) error {
	req := applyReq{ops: ops, burnIn: burnIn, phases: phases, reply: make(chan error, 1)}
	select {
	case c.ctl <- req:
	case <-c.done:
		return ErrClosed
	}
	select {
	case err := <-req.reply:
		return err
	case <-c.done:
		return ErrClosed
	}
}
