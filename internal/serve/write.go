package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"factordb/internal/ra"
	"factordb/internal/world"
)

// ExecResult reports one committed DML mutation.
type ExecResult struct {
	SQL          string        `json:"sql"`
	RowsAffected int64         `json:"rows_affected"`
	Epoch        int64         `json:"epoch"`  // data epoch after the commit
	Chains       int           `json:"chains"` // worlds the mutation was applied to
	Elapsed      time.Duration `json:"elapsed_ns"`
}

// Exec compiles one DML statement (INSERT, UPDATE or DELETE), applies it
// to every chain's world, and blocks until all chains have absorbed it.
// This is the paper's data-update model made operational: the database is
// one possible world plus a factor graph, so a write mutates the world
// in place and the chains keep sampling — marginals re-equilibrate with
// no lineage recomputation and no engine restart.
//
// The mutation is resolved once, on chain 0, into concrete row-level ops
// (predicates evaluated, row identities fixed), then the identical op
// list is fanned out to every chain — chain worlds share row identities
// by construction, so they never diverge on evidence. Each chain applies
// the ops at an epoch boundary, walks WriteBurnIn steps to
// re-equilibrate, folds the combined delta into its live views once, and
// resets their estimators: queries in flight across the write complete
// with post-write samples only, and queries issued after Exec returns
// never observe pre-write state. Committing bumps the data epoch, which
// is part of every result-cache key, so all cached pre-write answers
// become unreachable.
//
// Writes pass the same admission control as queries and are serialized
// with each other. ctx is honored up to the point of no return: once the
// fan-out starts, Exec completes (or the engine closes) regardless of
// cancellation, because a half-applied write would fork the chains'
// worlds.
func (e *Engine) Exec(ctx context.Context, sql string) (*ExecResult, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	mut, cached, err := e.cfg.Plans.CompileMutation(sql)
	if err != nil {
		e.m.failed.Inc()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if cached {
		e.m.planHits.Inc()
	}
	return e.ExecMutation(ctx, sql, mut)
}

// ExecMutation applies an already compiled mutation — the prepared-
// statement path. Semantics match Exec exactly.
func (e *Engine) ExecMutation(ctx context.Context, sql string, mut ra.Mutation) (*ExecResult, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.m.rejected.Inc()
		}
		return nil, err
	}
	defer e.admit.release()

	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	start := time.Now()

	ops, err := e.chains[0].resolveMutation(ctx, mut)
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, ctx.Err()) {
			return nil, err
		}
		e.m.failed.Inc()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}

	// A mutation matching no rows leaves every world untouched: commit
	// nothing, and in particular do not bump the data epoch — that would
	// orphan every cached answer for no reason.
	if len(ops) == 0 {
		return &ExecResult{
			SQL:     sql,
			Epoch:   e.dataEpoch.Load(),
			Chains:  len(e.chains),
			Elapsed: time.Since(start),
		}, nil
	}

	// Write-ahead: the batch goes to the durable log before any chain
	// sees it. An Append error vetoes the write with every world still
	// untouched. The converse failure — Append succeeded but the fan-out
	// below aborted on shutdown — leaves a record that recovery will
	// replay, which is the standard WAL commit rule: durable means
	// committed.
	epoch := e.dataEpoch.Load() + 1
	if e.cfg.WAL != nil {
		if err := e.cfg.WAL.Append(epoch, ops); err != nil {
			return nil, fmt.Errorf("serve: wal append: %w", err)
		}
	}

	// Point of no return: every chain must apply the same ops. Fan out in
	// parallel and wait for all of them; only engine shutdown aborts.
	errs := make(chan error, len(e.chains))
	for _, c := range e.chains {
		go func(c *chain) { errs <- c.applyOps(e.cfg.WriteBurnIn, ops) }(c)
	}
	var failed error
	for range e.chains {
		if err := <-errs; err != nil && failed == nil {
			failed = err
		}
	}
	if failed != nil {
		return nil, failed
	}

	e.dataEpoch.Store(epoch) // == Add(1): writeMu serializes committers
	e.m.writes.Inc()
	return &ExecResult{
		SQL:          sql,
		RowsAffected: int64(len(ops)),
		Epoch:        epoch,
		Chains:       len(e.chains),
		Elapsed:      time.Since(start),
	}, nil
}

// DataEpoch returns the number of committed writes — the data-epoch
// component of every result-cache key.
func (e *Engine) DataEpoch() int64 { return e.dataEpoch.Load() }

// resolveMutation asks the chain goroutine to resolve mut against its
// world, honoring ctx and engine shutdown.
func (c *chain) resolveMutation(ctx context.Context, mut ra.Mutation) ([]world.Op, error) {
	req := resolveReq{mut: mut, reply: make(chan resolveReply, 1)}
	select {
	case c.ctl <- req:
	case <-c.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case rep := <-req.reply:
		return rep.ops, rep.err
	case <-c.done:
		return nil, ErrClosed
	}
}

// applyOps delivers a resolved op list to the chain goroutine and waits
// for it to be absorbed. Deliberately not cancellable by context: a
// write that reached some chains must reach all of them.
func (c *chain) applyOps(burnIn int, ops []world.Op) error {
	req := applyReq{ops: ops, burnIn: burnIn, reply: make(chan error, 1)}
	select {
	case c.ctl <- req:
	case <-c.done:
		return ErrClosed
	}
	select {
	case err := <-req.reply:
		return err
	case <-c.done:
		return ErrClosed
	}
}
