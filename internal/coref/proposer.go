package coref

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// MentionRelation is the name of the mention relation:
// MENTION(MENTION_ID, STRING, CLUSTER) where CLUSTER is the hidden field.
const MentionRelation = "MENTION"

// ClusterCol is the column index of the hidden CLUSTER attribute.
const ClusterCol = 2

// MentionSchema returns the MENTION relation schema.
func MentionSchema() *relstore.Schema {
	return relstore.MustSchema(MentionRelation,
		relstore.Column{Name: "MENTION_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "CLUSTER", Type: relstore.TInt},
	)
}

// LoadMentions materializes mentions into a fresh MENTION relation with
// singleton clusters, returning the RowID of each mention in order.
func LoadMentions(db *relstore.DB, mentions []Mention) ([]relstore.RowID, error) {
	rel, err := db.Create(MentionSchema())
	if err != nil {
		return nil, err
	}
	rows := make([]relstore.RowID, len(mentions))
	for i, m := range mentions {
		id, err := rel.Insert(relstore.Tuple{
			relstore.Int(int64(m.ID)),
			relstore.String(m.Str),
			relstore.Int(int64(i)), // singleton cluster = own index
		})
		if err != nil {
			return nil, fmt.Errorf("coref: loading mentions: %w", err)
		}
		rows[i] = id
	}
	return rows, nil
}

// MoveProposer is the constraint-preserving proposal distribution over
// clusterings: pick a mention uniformly, then move it to a uniformly
// chosen other cluster or to a fresh singleton. Moves are the degenerate
// split-merge of Section 3.4 — moving out of a cluster splits it, moving
// into one merges — and because the representation is a partition,
// transitivity always holds without deterministic factors. The number of
// available targets differs between a state and its reverse, so the exact
// Hastings correction is computed.
type MoveProposer struct {
	State *State
	Model PairScorer

	log  *world.ChangeLog
	rows []relstore.RowID
}

// NewMoveProposer builds a proposer over the state.
func NewMoveProposer(s *State, m PairScorer) *MoveProposer {
	return &MoveProposer{State: s, Model: m}
}

// BindDB connects the proposer to a database change log so accepted moves
// update the MENTION relation's CLUSTER field.
func (p *MoveProposer) BindDB(log *world.ChangeLog, rows []relstore.RowID) error {
	if len(rows) != len(p.State.Mentions) {
		return fmt.Errorf("coref: row map covers %d mentions, state has %d", len(rows), len(p.State.Mentions))
	}
	p.log = log
	p.rows = rows
	return nil
}

// options returns the number of move targets available to mention m in
// the current state: every other cluster, plus a fresh singleton unless m
// already is one.
func (p *MoveProposer) options(m int) int {
	k := p.State.NumClusters()
	if p.State.IsSingleton(m) {
		return k - 1
	}
	return k
}

// Propose implements mcmc.Proposer.
func (p *MoveProposer) Propose(rng *rand.Rand) mcmc.Proposal {
	s := p.State
	m := rng.Intn(len(s.Mentions))
	optsFwd := p.options(m)
	if optsFwd == 0 {
		// Single cluster containing a single mention: nowhere to go.
		return mcmc.Proposal{}
	}
	// Choose the target uniformly among other clusters (+ fresh unless
	// singleton).
	from := s.Cluster(m)
	others := make([]int, 0, s.NumClusters())
	for _, c := range s.ClusterIDs() {
		if c != from {
			others = append(others, c)
		}
	}
	target := -1 // fresh singleton
	pick := rng.Intn(optsFwd)
	if pick < len(others) {
		target = others[pick]
	}

	// Backward options: in the new state m is a singleton iff it moved to
	// a fresh cluster; cluster count changes when the source empties or a
	// fresh cluster appears.
	kAfter := s.NumClusters()
	if s.IsSingleton(m) {
		kAfter-- // source disappears
	}
	if target < 0 {
		kAfter++ // fresh cluster appears
	}
	optsBack := kAfter
	if target < 0 {
		optsBack = kAfter - 1 // m will be a singleton
	}

	delta := MoveDelta(p.Model, s, m, target)
	logQ := 0.0
	if optsBack > 0 {
		logQ = math.Log(float64(optsFwd)) - math.Log(float64(optsBack))
	}
	return mcmc.Proposal{
		LogScoreDelta: delta,
		LogQRatio:     logQ,
		Accept: func() {
			dest := s.Move(m, target)
			if p.log != nil {
				ref := world.FieldRef{Rel: MentionRelation, Row: p.rows[m], Col: ClusterCol}
				if err := p.log.SetField(ref, relstore.Int(int64(dest))); err != nil {
					// A mention deleted by DML stops mirroring; the
					// in-memory clustering keeps being sampled.
					if !errors.Is(err, relstore.ErrNotFound) {
						panic(fmt.Sprintf("coref: write-through failed: %v", err))
					}
				}
			}
		},
	}
}

// GenConfig parameterizes the synthetic mention generator.
type GenConfig struct {
	NumEntities       int
	MentionsPerEntity int
	Seed              int64
}

// Generate produces synthetic mentions: each entity has a canonical
// "First Last" name and its mentions are surface variants (full name,
// initialized first name, single tokens), echoing the "John Smith" /
// "J. Smith" / "J. Simms" example of Figure 1.
func Generate(cfg GenConfig) ([]Mention, error) {
	if cfg.NumEntities <= 0 || cfg.MentionsPerEntity <= 0 {
		return nil, fmt.Errorf("coref: entities and mentions per entity must be positive")
	}
	firsts := []string{"John", "Jane", "George", "Maria", "David", "Susan", "Pedro", "Laura"}
	lasts := []string{"Smith", "Jones", "Miklau", "Wick", "Chen", "Ortiz", "Garcia", "McCallum"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Expand the surname inventory so distinct entities rarely collide on
	// bare surnames (entities sharing a surname are genuinely ambiguous
	// for a string-similarity model).
	syllables := []string{"son", "berg", "ford", "well", "ton", "ley", "mann", "dale"}
	for len(lasts) < 4*cfg.NumEntities {
		s := lasts[rng.Intn(8)] + syllables[rng.Intn(len(syllables))]
		lasts = append(lasts, s)
	}
	var out []Mention
	id := 0
	used := make(map[string]bool)
	for e := 0; e < cfg.NumEntities; e++ {
		first := firsts[rng.Intn(len(firsts))]
		last := lasts[rng.Intn(len(lasts))]
		for used[last] {
			last = lasts[rng.Intn(len(lasts))]
		}
		used[last] = true
		for k := 0; k < cfg.MentionsPerEntity; k++ {
			var s string
			switch rng.Intn(4) {
			case 0:
				s = first + " " + last
			case 1:
				s = first[:1] + ". " + last
			case 2:
				s = last
			default:
				s = first + " " + last
			}
			out = append(out, Mention{ID: id, Str: s, Gold: e})
			id++
		}
	}
	return out, nil
}
