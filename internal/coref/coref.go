// Package coref implements the entity-resolution substrate of Figure 1
// (bottom row): mentions of named entities are clustered into real-world
// entities, with a factor graph scoring within-cluster cohesion. The
// clustering representation keeps transitivity implicit — any clustering
// is a valid world — so the sampler never needs the cubic number of
// deterministic transitivity factors (Section 3.4).
package coref

import (
	"fmt"
	"sort"
	"strings"
)

// Mention is one observed mention string; Gold is the identifier of the
// true underlying entity (used for evaluation and SampleRank training).
type Mention struct {
	ID   int
	Str  string
	Gold int
}

// State is a clustering of mentions: the hidden part of the possible
// world. Cluster identifiers are arbitrary but stable between moves.
type State struct {
	Mentions []Mention

	cluster []int
	members map[int]map[int]struct{}
	nextID  int
}

// NewSingletonState puts every mention in its own cluster.
func NewSingletonState(mentions []Mention) *State {
	s := &State{
		Mentions: mentions,
		cluster:  make([]int, len(mentions)),
		members:  make(map[int]map[int]struct{}, len(mentions)),
	}
	for i := range mentions {
		s.cluster[i] = i
		s.members[i] = map[int]struct{}{i: {}}
	}
	s.nextID = len(mentions)
	return s
}

// Cluster returns the cluster id of mention m.
func (s *State) Cluster(m int) int { return s.cluster[m] }

// NumClusters returns the number of non-empty clusters.
func (s *State) NumClusters() int { return len(s.members) }

// Members returns the mention indexes in cluster c, sorted.
func (s *State) Members(c int) []int {
	set := s.members[c]
	out := make([]int, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// ClusterIDs returns all non-empty cluster ids, sorted.
func (s *State) ClusterIDs() []int {
	out := make([]int, 0, len(s.members))
	for c := range s.members {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// IsSingleton reports whether mention m is alone in its cluster.
func (s *State) IsSingleton(m int) bool { return len(s.members[s.cluster[m]]) == 1 }

// Move transfers mention m into cluster target; target < 0 allocates a
// fresh cluster. It returns the destination cluster id. Emptied clusters
// disappear. Moving a mention to its own cluster is a no-op.
func (s *State) Move(m, target int) int {
	from := s.cluster[m]
	if target == from {
		return from
	}
	if target >= 0 {
		if _, ok := s.members[target]; !ok {
			panic(fmt.Sprintf("coref: move to unknown cluster %d", target))
		}
	} else {
		target = s.nextID
		s.nextID++
		s.members[target] = make(map[int]struct{})
	}
	delete(s.members[from], m)
	if len(s.members[from]) == 0 {
		delete(s.members, from)
	}
	s.members[target][m] = struct{}{}
	s.cluster[m] = target
	return target
}

// PairwiseF1 scores the clustering against gold entities with pairwise
// precision/recall/F1.
func (s *State) PairwiseF1() (precision, recall, f1 float64) {
	var tp, fp, fn float64
	n := len(s.Mentions)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := s.cluster[i] == s.cluster[j]
			gold := s.Mentions[i].Gold == s.Mentions[j].Gold
			switch {
			case same && gold:
				tp++
			case same && !gold:
				fp++
			case !same && gold:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// Similarity returns a string affinity in [0,1] combining exact match,
// token overlap with initial expansion ("J. Smith" ~ "John Smith"), and
// normalized edit distance.
func Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ta, tb := strings.Fields(a), strings.Fields(b)
	tokSim := tokenOverlap(ta, tb)
	ed := 1 - normalizedLevenshtein(a, b)
	if tokSim > ed {
		return tokSim
	}
	return ed
}

// tokenOverlap is the fraction of tokens of the shorter name matched in
// the longer one, where an initial like "J." matches any token starting
// with 'J'.
func tokenOverlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	matched := 0
	used := make([]bool, len(b))
	for _, ta := range a {
		for j, tb := range b {
			if used[j] {
				continue
			}
			if tokensMatch(ta, tb) {
				used[j] = true
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(b))
}

func tokensMatch(a, b string) bool {
	if a == b {
		return true
	}
	ia, ib := isInitial(a), isInitial(b)
	if ia && len(b) > 0 && a[0] == b[0] {
		return true
	}
	if ib && len(a) > 0 && b[0] == a[0] {
		return true
	}
	return false
}

func isInitial(t string) bool {
	return len(t) == 2 && t[1] == '.' || len(t) == 1
}

// normalizedLevenshtein is edit distance divided by the longer length.
func normalizedLevenshtein(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	max := la
	if lb > max {
		max = lb
	}
	return float64(prev[lb]) / float64(max)
}

// PairScorer is the factor family of the entity-resolution model: the
// log-space score contributed by one same-cluster mention pair. Model is
// the hand-weighted form; TrainableModel learns the scores with
// SampleRank.
type PairScorer interface {
	PairScore(a, b *Mention) float64
}

// ScoreState computes the full log score of a clustering under ps: the
// sum over same-cluster pairs. Tests and diagnostics only; inference
// computes deltas.
func ScoreState(ps PairScorer, s *State) float64 {
	var total float64
	for _, c := range s.ClusterIDs() {
		ms := s.Members(c)
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				total += ps.PairScore(&s.Mentions[ms[i]], &s.Mentions[ms[j]])
			}
		}
	}
	return total
}

// MoveDelta returns log π(w') − log π(w) for moving mention m to cluster
// target (target < 0 meaning a fresh cluster) under ps, touching only
// factors incident to m.
func MoveDelta(ps PairScorer, s *State, m, target int) float64 {
	from := s.cluster[m]
	if target == from {
		return 0
	}
	var delta float64
	if target >= 0 {
		for x := range s.members[target] {
			delta += ps.PairScore(&s.Mentions[m], &s.Mentions[x])
		}
	}
	for x := range s.members[from] {
		if x != m {
			delta -= ps.PairScore(&s.Mentions[m], &s.Mentions[x])
		}
	}
	return delta
}

// Model scores clusterings with pairwise within-cluster factors: each
// same-cluster mention pair contributes W·(Similarity − Threshold), so
// cohesive clusters score positively and incoherent merges are penalized
// (the "mentions in clusters should be cohesive" dependency of Pane D).
type Model struct {
	// W scales the pairwise affinity factors.
	W float64
	// Threshold is the similarity above which a pair prefers to share a
	// cluster.
	Threshold float64
}

// DefaultModel returns the configuration used in examples and benchmarks.
func DefaultModel() *Model { return &Model{W: 4, Threshold: 0.5} }

// PairScore is the log-space factor value for mentions a and b sharing a
// cluster.
func (mo *Model) PairScore(a, b *Mention) float64 {
	return mo.W * (Similarity(a.Str, b.Str) - mo.Threshold)
}

// Score computes the full log score of a state (sum over same-cluster
// pairs). Used by tests; inference only ever computes deltas.
func (mo *Model) Score(s *State) float64 { return ScoreState(mo, s) }

// MoveDelta returns log π(w') − log π(w) for moving mention m to cluster
// target (target < 0 meaning a fresh cluster), touching only factors
// incident to m: pairs gained in the target cluster minus pairs lost in
// the source cluster.
func (mo *Model) MoveDelta(s *State, m, target int) float64 {
	return MoveDelta(mo, s, m, target)
}
