package coref

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

func TestSimilarity(t *testing.T) {
	if Similarity("John Smith", "John Smith") != 1 {
		t.Error("identical strings must have similarity 1")
	}
	if s := Similarity("John Smith", "J. Smith"); s < 0.9 {
		t.Errorf("initial expansion similarity = %v, want high", s)
	}
	if s := Similarity("John Smith", "Xqz Kvw"); s > 0.4 {
		t.Errorf("dissimilar similarity = %v, want low", s)
	}
	if s := Similarity("Smith", "Smyth"); s < 0.5 {
		t.Errorf("typo similarity = %v, want moderate", s)
	}
	if Similarity("", "") != 1 {
		t.Error("empty strings are identical")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 0},
		{"abc", "abd", 1.0 / 3},
		{"", "abc", 1},
		{"kitten", "sitting", 3.0 / 7},
	}
	for _, c := range cases {
		if got := normalizedLevenshtein(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("lev(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStateMoves(t *testing.T) {
	ms := []Mention{{ID: 0, Str: "a"}, {ID: 1, Str: "b"}, {ID: 2, Str: "c"}}
	s := NewSingletonState(ms)
	if s.NumClusters() != 3 {
		t.Fatalf("NumClusters = %d", s.NumClusters())
	}
	// Merge 1 into 0's cluster.
	dest := s.Move(1, s.Cluster(0))
	if s.Cluster(1) != dest || s.NumClusters() != 2 {
		t.Fatalf("after merge: cluster(1)=%d clusters=%d", s.Cluster(1), s.NumClusters())
	}
	if got := s.Members(dest); len(got) != 2 {
		t.Fatalf("members = %v", got)
	}
	// Split 1 back out to a fresh cluster.
	fresh := s.Move(1, -1)
	if fresh == dest || !s.IsSingleton(1) || s.NumClusters() != 3 {
		t.Fatalf("after split: fresh=%d dest=%d clusters=%d", fresh, dest, s.NumClusters())
	}
	// No-op move.
	if s.Move(1, fresh) != fresh {
		t.Error("no-op move should return current cluster")
	}
}

func TestMoveDeltaMatchesFullScore(t *testing.T) {
	mentions, err := Generate(GenConfig{NumEntities: 4, MentionsPerEntity: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSingletonState(mentions)
	mo := DefaultModel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		m := rng.Intn(len(mentions))
		var target int
		if rng.Float64() < 0.3 || s.NumClusters() == 1 {
			target = -1
		} else {
			ids := s.ClusterIDs()
			target = ids[rng.Intn(len(ids))]
			if target == s.Cluster(m) {
				target = -1
			}
		}
		before := mo.Score(s)
		delta := mo.MoveDelta(s, m, target)
		s.Move(m, target)
		after := mo.Score(s)
		if math.Abs(delta-(after-before)) > 1e-9 {
			t.Fatalf("trial %d: delta=%v, rescore=%v", trial, delta, after-before)
		}
	}
}

func TestSamplingRecoversEntities(t *testing.T) {
	mentions, err := Generate(GenConfig{NumEntities: 5, MentionsPerEntity: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSingletonState(mentions)
	_, _, f1Before := s.PairwiseF1()
	p := NewMoveProposer(s, DefaultModel())
	sampler := mcmc.NewSampler(p, 13)
	sampler.Run(30000)
	_, _, f1After := s.PairwiseF1()
	if f1After <= f1Before {
		t.Errorf("F1 did not improve: before %v, after %v", f1Before, f1After)
	}
	if f1After < 0.5 {
		t.Errorf("F1 after sampling = %v, want >= 0.5", f1After)
	}
}

func TestPairwiseF1Extremes(t *testing.T) {
	mentions := []Mention{{Gold: 0}, {Gold: 0}, {Gold: 1}}
	s := NewSingletonState(mentions)
	// Singletons: no predicted pairs, recall 0.
	p, r, f1 := s.PairwiseF1()
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("singleton F1 = %v/%v/%v", p, r, f1)
	}
	// Perfect clustering.
	s.Move(1, s.Cluster(0))
	p, r, f1 = s.PairwiseF1()
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect F1 = %v/%v/%v", p, r, f1)
	}
	// Everything merged: precision suffers.
	s.Move(2, s.Cluster(0))
	p, r, _ = s.PairwiseF1()
	if r != 1 || p >= 1 {
		t.Errorf("merged all: p=%v r=%v", p, r)
	}
}

func TestWriteThroughToDB(t *testing.T) {
	mentions, _ := Generate(GenConfig{NumEntities: 3, MentionsPerEntity: 3, Seed: 21})
	db := relstore.NewDB()
	rows, err := LoadMentions(db, mentions)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSingletonState(mentions)
	p := NewMoveProposer(s, DefaultModel())
	log := world.NewChangeLog(db)
	if err := p.BindDB(log, rows); err != nil {
		t.Fatal(err)
	}
	sampler := mcmc.NewSampler(p, 23)
	sampler.Run(2000)
	// The CLUSTER column must mirror the in-memory state.
	rel, _ := db.Relation(MentionRelation)
	for i, rid := range rows {
		tu, _ := rel.Get(rid)
		if int(tu[ClusterCol].AsInt()) != s.Cluster(i) {
			t.Fatalf("mention %d: store cluster %d, memory %d", i, tu[ClusterCol].AsInt(), s.Cluster(i))
		}
	}
}

func TestBindDBValidation(t *testing.T) {
	mentions, _ := Generate(GenConfig{NumEntities: 2, MentionsPerEntity: 2, Seed: 1})
	p := NewMoveProposer(NewSingletonState(mentions), DefaultModel())
	if err := p.BindDB(world.NewChangeLog(relstore.NewDB()), nil); err == nil {
		t.Error("mismatched rows: want error")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{}); err == nil {
		t.Error("zero config: want error")
	}
	ms, err := Generate(GenConfig{NumEntities: 3, MentionsPerEntity: 5, Seed: 2})
	if err != nil || len(ms) != 15 {
		t.Fatalf("Generate: %v, %d mentions", err, len(ms))
	}
	// Gold ids must partition the mentions into 3 entities.
	golds := map[int]int{}
	for _, m := range ms {
		golds[m.Gold]++
	}
	if len(golds) != 3 {
		t.Errorf("gold entities = %d", len(golds))
	}
}

func TestSingleMentionProposalIsNoOp(t *testing.T) {
	s := NewSingletonState([]Mention{{ID: 0, Str: "solo"}})
	p := NewMoveProposer(s, DefaultModel())
	sampler := mcmc.NewSampler(p, 3)
	sampler.Run(100)
	if s.NumClusters() != 1 {
		t.Error("single mention world must stay a single cluster")
	}
}

// TestMoveProposerStationaryDistribution checks the Hastings correction:
// with three mentions and a flat model (W=0), every one of the 5
// partitions of a 3-set must be visited with equal probability.
func TestMoveProposerStationaryDistribution(t *testing.T) {
	mentions := []Mention{{ID: 0, Str: "a"}, {ID: 1, Str: "b"}, {ID: 2, Str: "c"}}
	s := NewSingletonState(mentions)
	p := NewMoveProposer(s, &Model{W: 0, Threshold: 0.5})
	sampler := mcmc.NewSampler(p, 31)
	counts := map[string]int{}
	total := 200000
	for i := 0; i < total; i++ {
		sampler.Step()
		counts[canonicalPartition(s)]++
	}
	if len(counts) != 5 {
		t.Fatalf("visited %d partitions, want 5 (Bell number of 3)", len(counts))
	}
	for part, c := range counts {
		frac := float64(c) / float64(total)
		if math.Abs(frac-0.2) > 0.02 {
			t.Errorf("partition %s frequency = %.3f, want 0.2 (Hastings correction broken)", part, frac)
		}
	}
}

// canonicalPartition renders the clustering as a canonical string.
func canonicalPartition(s *State) string {
	firstSeen := map[int]byte{}
	next := byte('a')
	out := make([]byte, len(s.Mentions))
	for i := range s.Mentions {
		c := s.Cluster(i)
		b, ok := firstSeen[c]
		if !ok {
			b = next
			next++
			firstSeen[c] = b
		}
		out[i] = b
	}
	return string(out)
}
