package coref

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/mcmc"
)

func TestTrainableFeatureDeltaConsistent(t *testing.T) {
	mentions, _ := Generate(GenConfig{NumEntities: 4, MentionsPerEntity: 3, Seed: 3})
	tm := NewTrainableModel(8)
	rng := rand.New(rand.NewSource(5))
	for b := 0; b < tm.Buckets; b++ {
		tm.W.Set(tm.BucketKey(b), rng.NormFloat64())
	}
	s := NewSingletonState(mentions)
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(len(mentions))
		target := -1
		if rng.Float64() < 0.7 {
			ids := s.ClusterIDs()
			target = ids[rng.Intn(len(ids))]
			if target == s.Cluster(m) {
				target = -1
			}
		}
		fd := tm.featureDelta(s, m, target)
		if got, want := tm.W.Dot(fd), MoveDelta(tm, s, m, target); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: W·Δφ = %v, MoveDelta = %v", trial, got, want)
		}
		s.Move(m, target)
	}
}

func TestObjectiveDelta(t *testing.T) {
	mentions := []Mention{{ID: 0, Gold: 0}, {ID: 1, Gold: 0}, {ID: 2, Gold: 1}}
	s := NewSingletonState(mentions)
	// Merging gold-coreferent mentions scores +1.
	if got := objectiveDelta(s, 1, s.Cluster(0)); got != 1 {
		t.Errorf("gold merge delta = %v, want 1", got)
	}
	// Merging gold-distinct mentions scores −1.
	if got := objectiveDelta(s, 2, s.Cluster(0)); got != -1 {
		t.Errorf("bad merge delta = %v, want -1", got)
	}
	// Splitting a gold pair scores −1.
	s.Move(1, s.Cluster(0))
	if got := objectiveDelta(s, 1, -1); got != -1 {
		t.Errorf("gold split delta = %v, want -1", got)
	}
	// No-op.
	if got := objectiveDelta(s, 1, s.Cluster(1)); got != 0 {
		t.Errorf("no-op delta = %v, want 0", got)
	}
}

func TestTrainingLearnsSimilarityOrdering(t *testing.T) {
	mentions, err := Generate(GenConfig{NumEntities: 12, MentionsPerEntity: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Train(mentions, 8, 40000, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	// High-similarity buckets must be scored above low-similarity ones.
	lo := tm.W.Get(tm.BucketKey(0))
	hi := tm.W.Get(tm.BucketKey(tm.Buckets - 1))
	if hi <= lo {
		t.Errorf("top bucket weight %v should exceed bottom bucket %v", hi, lo)
	}
}

func TestTrainedModelBeatsUntrainedF1(t *testing.T) {
	train, _ := Generate(GenConfig{NumEntities: 12, MentionsPerEntity: 5, Seed: 21})
	test, _ := Generate(GenConfig{NumEntities: 8, MentionsPerEntity: 4, Seed: 22})
	tm, err := Train(train, 8, 40000, 1.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	decode := func(ps PairScorer) float64 {
		s := NewSingletonState(test)
		sampler := mcmc.NewSampler(NewMoveProposer(s, ps), 25)
		sampler.Run(30000)
		_, _, f1 := s.PairwiseF1()
		return f1
	}
	trained := decode(tm)
	untrained := decode(NewTrainableModel(8)) // all-zero weights
	if trained <= untrained {
		t.Errorf("trained F1 %v should beat untrained %v", trained, untrained)
	}
	if trained < 0.5 {
		t.Errorf("trained F1 = %v, want >= 0.5", trained)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 8, 10, 1, 1); err == nil {
		t.Error("no mentions: want error")
	}
	tm := NewTrainableModel(0)
	if tm.Buckets != 2 {
		t.Errorf("bucket floor = %d, want 2", tm.Buckets)
	}
}
