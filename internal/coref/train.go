package coref

import (
	"fmt"
	"math/rand"

	"factordb/internal/learn"
)

// TrainableModel learns the pairwise factor family with SampleRank
// instead of hand-set weights: the similarity range [0,1] is bucketed and
// each bucket carries a learned weight, so training discovers which
// similarity levels indicate coreference (the paper's "automatic learning
// over the database — avoiding the need to tune weights by hand",
// Section 3).
type TrainableModel struct {
	W       *learn.Weights
	Buckets int
}

const tplCorefBucket uint64 = 9

// NewTrainableModel creates an untrained model with the given similarity
// resolution.
func NewTrainableModel(buckets int) *TrainableModel {
	if buckets < 2 {
		buckets = 2
	}
	return &TrainableModel{W: learn.NewWeights(), Buckets: buckets}
}

// BucketKey is the feature key of one similarity bucket.
func (tm *TrainableModel) BucketKey(bucket int) uint64 {
	return tplCorefBucket<<56 | uint64(bucket)
}

func (tm *TrainableModel) bucketOf(a, b *Mention) int {
	sim := Similarity(a.Str, b.Str)
	bucket := int(sim * float64(tm.Buckets))
	if bucket >= tm.Buckets {
		bucket = tm.Buckets - 1
	}
	return bucket
}

// PairScore implements PairScorer with the learned bucket weights.
func (tm *TrainableModel) PairScore(a, b *Mention) float64 {
	return tm.W.Get(tm.BucketKey(tm.bucketOf(a, b)))
}

// featureDelta returns φ(w')−φ(w) for moving mention m to target: one
// bucket indicator per same-cluster pair gained or lost.
func (tm *TrainableModel) featureDelta(s *State, m, target int) learn.FeatureVector {
	fv := make(learn.FeatureVector)
	from := s.cluster[m]
	if target == from {
		return fv
	}
	if target >= 0 {
		for x := range s.members[target] {
			fv.Add(tm.BucketKey(tm.bucketOf(&s.Mentions[m], &s.Mentions[x])), 1)
		}
	}
	for x := range s.members[from] {
		if x != m {
			fv.Add(tm.BucketKey(tm.bucketOf(&s.Mentions[m], &s.Mentions[x])), -1)
		}
	}
	return fv
}

// objectiveDelta scores a move against gold entities: +1 for every
// gold-coreferent pair gained or gold-distinct pair dropped, −1 for the
// opposite — the pairwise-accuracy objective.
func objectiveDelta(s *State, m, target int) float64 {
	from := s.cluster[m]
	if target == from {
		return 0
	}
	gold := s.Mentions[m].Gold
	var obj float64
	pair := func(x int, sign float64) {
		if s.Mentions[x].Gold == gold {
			obj += sign
		} else {
			obj -= sign
		}
	}
	if target >= 0 {
		for x := range s.members[target] {
			pair(x, 1)
		}
	}
	for x := range s.members[from] {
		if x != m {
			pair(x, -1)
		}
	}
	return obj
}

// RankMoveProposer adapts the move proposal for SampleRank training.
type RankMoveProposer struct {
	State *State
	Model *TrainableModel
}

// ProposeRank implements learn.Proposer.
func (p *RankMoveProposer) ProposeRank(rng *rand.Rand) learn.Proposal {
	s := p.State
	m := rng.Intn(len(s.Mentions))
	k := s.NumClusters()
	opts := k
	if s.IsSingleton(m) {
		opts = k - 1
	}
	if opts <= 0 {
		return learn.Proposal{FeatureDelta: learn.FeatureVector{}}
	}
	from := s.Cluster(m)
	others := make([]int, 0, k)
	for _, c := range s.ClusterIDs() {
		if c != from {
			others = append(others, c)
		}
	}
	target := -1
	if pick := rng.Intn(opts); pick < len(others) {
		target = others[pick]
	}
	return learn.Proposal{
		FeatureDelta:   p.Model.featureDelta(s, m, target),
		ObjectiveDelta: objectiveDelta(s, m, target),
		Accept:         func() { s.Move(m, target) },
	}
}

// Train runs SampleRank over mentions with gold entities, returning the
// trained model. The walk follows the evolving model, as in the paper's
// training setup.
func Train(mentions []Mention, buckets, steps int, rate float64, seed int64) (*TrainableModel, error) {
	if len(mentions) == 0 {
		return nil, fmt.Errorf("coref: Train requires mentions")
	}
	tm := NewTrainableModel(buckets)
	state := NewSingletonState(mentions)
	sr := learn.NewSampleRank(tm.W, &RankMoveProposer{State: state, Model: tm}, rate, seed)
	sr.Train(steps)
	return tm, nil
}
