package coref

import (
	"testing"
	"testing/quick"
)

func TestSimilarityPropertiesQuick(t *testing.T) {
	// Symmetric, bounded to [0,1], and 1 exactly for identical strings.
	sym := func(a, b string) bool { return Similarity(a, b) == Similarity(b, a) }
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	bounded := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("bounds: %v", err)
	}
	reflexive := func(a string) bool { return Similarity(a, a) == 1 }
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
}

func TestLevenshteinPropertiesQuick(t *testing.T) {
	sym := func(a, b string) bool {
		return normalizedLevenshtein(a, b) == normalizedLevenshtein(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return normalizedLevenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	bounded := func(a, b string) bool {
		d := normalizedLevenshtein(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("bounds: %v", err)
	}
}

// TestStateInvariantsQuick drives random move sequences and checks the
// partition invariants: every mention in exactly one cluster, membership
// maps consistent with the cluster array, no empty clusters.
func TestStateInvariantsQuick(t *testing.T) {
	f := func(moves []uint16) bool {
		mentions, _ := Generate(GenConfig{NumEntities: 3, MentionsPerEntity: 3, Seed: 1})
		s := NewSingletonState(mentions)
		for _, mv := range moves {
			m := int(mv>>8) % len(mentions)
			ids := s.ClusterIDs()
			target := -1
			if pick := int(mv&0xff) % (len(ids) + 1); pick < len(ids) {
				target = ids[pick]
			}
			s.Move(m, target)
		}
		// Invariants.
		total := 0
		for _, c := range s.ClusterIDs() {
			ms := s.Members(c)
			if len(ms) == 0 {
				return false // empty cluster survived
			}
			total += len(ms)
			for _, m := range ms {
				if s.Cluster(m) != c {
					return false // membership map inconsistent
				}
			}
		}
		return total == len(mentions)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
