package ivm

import (
	"sort"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// olEntry is one distinct child row tracked by the order/limit operator,
// with its net multiplicity.
type olEntry struct {
	key   string
	tuple relstore.Tuple
	n     int64
}

// orderLimitOp incrementally maintains the per-world top-k of its child:
// a bounded ordered output backed by the full multiset of child rows, so
// deletions during view maintenance are exact — when a row leaves the
// top k, its successor is already at hand instead of requiring a re-scan
// (the same keep-everything strategy the MIN/MAX aggregates use in
// groupagg.go, here kept sorted so reading the top k is a prefix walk).
//
// State is the entry multiset (map by tuple key) plus a sorted slice of
// the entries with positive count; the previously emitted top-k bag is
// retained so apply can emit the signed difference −old +new. Entry
// tuples are cloned from unowned child streams, so emissions (which
// reference entry or emitted-bag tuples) are always owned.
type orderLimitOp struct {
	b       *ra.Bound
	child   op
	entries map[string]*olEntry
	sorted  []*olEntry // entries with n > 0, ascending in sort order
	emitted *ra.Bag    // last emitted top-k output
	kbuf    []byte
}

func newOrderLimitOp(b *ra.Bound, child op) *orderLimitOp {
	return &orderLimitOp{b: b, child: child}
}

func (o *orderLimitOp) owned() bool { return true }

// less orders entries by the sort keys with the injective tuple key as
// final tie-break, matching the streaming evaluator exactly.
func (o *orderLimitOp) less(a, b *olEntry) bool {
	if c := ra.CompareTuples(a.tuple, b.tuple, o.b.SortIdx, o.b.SortDesc); c != 0 {
		return c < 0
	}
	return a.key < b.key
}

func (o *orderLimitOp) init(emit emitFn) error {
	o.entries = make(map[string]*olEntry)
	o.sorted = o.sorted[:0]
	clone := !o.child.owned()
	err := o.child.init(func(t relstore.Tuple, n int64) {
		o.upsert(t, n, clone)
	})
	if err != nil {
		return err
	}
	o.emitted = o.topK()
	o.emitted.Each(func(_ string, r *ra.BagRow) bool {
		emit(r.Tuple, r.N)
		return true
	})
	return nil
}

func (o *orderLimitOp) apply(d BaseDelta, emit emitFn) {
	clone := !o.child.owned()
	o.child.apply(d, func(t relstore.Tuple, n int64) {
		o.upsert(t, n, clone)
	})
	newOut := o.topK()
	newOut.Each(func(k string, r *ra.BagRow) bool {
		if d := r.N - o.emitted.Count(k); d != 0 {
			emit(r.Tuple, d)
		}
		return true
	})
	o.emitted.Each(func(k string, r *ra.BagRow) bool {
		if newOut.Count(k) == 0 {
			emit(r.Tuple, -r.N)
		}
		return true
	})
	o.emitted = newOut
}

// upsert folds a signed multiplicity change for one distinct row into the
// multiset, keeping the ordered buffer in step. Entries whose net count
// drops to or below zero leave the buffer (a transiently negative count
// is retained in the map so a later matching insertion restores it).
func (o *orderLimitOp) upsert(t relstore.Tuple, dn int64, clone bool) {
	if dn == 0 {
		return
	}
	o.kbuf = t.AppendKey(o.kbuf[:0])
	e, ok := o.entries[string(o.kbuf)]
	if !ok {
		if clone {
			t = t.Clone()
		}
		e = &olEntry{key: string(o.kbuf), tuple: t, n: dn}
		o.entries[e.key] = e
		if e.n > 0 {
			o.insert(e)
		}
		return
	}
	wasLive := e.n > 0
	e.n += dn
	switch {
	case e.n == 0:
		delete(o.entries, e.key)
		if wasLive {
			o.remove(e)
		}
	case wasLive && e.n < 0:
		o.remove(e)
	case !wasLive && e.n > 0:
		o.insert(e)
	}
}

// insert places e into the ordered buffer at its sort position.
func (o *orderLimitOp) insert(e *olEntry) {
	i := sort.Search(len(o.sorted), func(i int) bool { return !o.less(o.sorted[i], e) })
	o.sorted = append(o.sorted, nil)
	copy(o.sorted[i+1:], o.sorted[i:])
	o.sorted[i] = e
}

// remove deletes e from the ordered buffer. The comparator is a strict
// total order (tie-broken by the injective key), so the search lands on
// e's exact position.
func (o *orderLimitOp) remove(e *olEntry) {
	i := sort.Search(len(o.sorted), func(i int) bool { return !o.less(o.sorted[i], e) })
	for i < len(o.sorted) && o.sorted[i] != e {
		i++ // equal-comparing entries cannot exist, but stay safe
	}
	if i < len(o.sorted) {
		o.sorted = append(o.sorted[:i], o.sorted[i+1:]...)
	}
}

// topK materializes the current bounded output: a prefix walk of the
// ordered buffer accumulating multiplicities until the limit, with the
// boundary row clipped — identical to the full evaluator over the same
// input.
func (o *orderLimitOp) topK() *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	remaining := o.b.Limit
	for _, e := range o.sorted {
		if remaining <= 0 {
			break
		}
		n := e.n
		if n > remaining {
			n = remaining
		}
		out.AddKeyed(e.key, e.tuple, n)
		remaining -= n
	}
	return out
}
