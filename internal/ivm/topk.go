package ivm

import (
	"sort"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// olEntry is one distinct child row tracked by the order/limit operator,
// with its net multiplicity.
type olEntry struct {
	key   string
	tuple relstore.Tuple
	n     int64
}

// orderLimitOp incrementally maintains the per-world top-k of its child:
// a bounded ordered output backed by the full multiset of child rows, so
// deletions during view maintenance are exact — when a row leaves the
// top k, its successor is already at hand instead of requiring a re-scan
// (the same keep-everything strategy the MIN/MAX aggregates use in
// groupagg.go, here kept sorted so reading the top k is a prefix walk).
//
// State is the entry multiset (map by tuple key) plus a sorted slice of
// the entries with positive count; the previously emitted top-k bag is
// retained so apply can emit the signed difference −old +new.
type orderLimitOp struct {
	b       *ra.Bound
	child   op
	entries map[string]*olEntry
	sorted  []*olEntry // entries with n > 0, ascending in sort order
	emitted *ra.Bag    // last emitted top-k output
}

func newOrderLimitOp(b *ra.Bound, child op) *orderLimitOp {
	return &orderLimitOp{b: b, child: child}
}

// less orders entries by the sort keys with the injective tuple key as
// final tie-break, matching evalOrderLimit exactly.
func (o *orderLimitOp) less(a, b *olEntry) bool {
	if c := ra.CompareTuples(a.tuple, b.tuple, o.b.SortIdx, o.b.SortDesc); c != 0 {
		return c < 0
	}
	return a.key < b.key
}

func (o *orderLimitOp) init() (*ra.Bag, error) {
	in, err := o.child.init()
	if err != nil {
		return nil, err
	}
	o.entries = make(map[string]*olEntry, in.Len())
	o.sorted = o.sorted[:0]
	in.Each(func(k string, r *ra.BagRow) bool {
		e := &olEntry{key: k, tuple: r.Tuple, n: r.N}
		o.entries[k] = e
		if e.n > 0 {
			o.sorted = append(o.sorted, e)
		}
		return true
	})
	sort.Slice(o.sorted, func(i, j int) bool { return o.less(o.sorted[i], o.sorted[j]) })
	o.emitted = o.topK()
	return o.emitted.Clone(), nil
}

func (o *orderLimitOp) apply(d BaseDelta) *ra.Bag {
	din := o.child.apply(d)
	din.Each(func(k string, r *ra.BagRow) bool {
		o.upsert(k, r.Tuple, r.N)
		return true
	})
	newOut := o.topK()
	diff := ra.NewBag(o.b.Schema)
	diff.AddBag(newOut, 1)
	diff.AddBag(o.emitted, -1)
	o.emitted = newOut
	return diff
}

// upsert folds a signed multiplicity change for one distinct row into the
// multiset, keeping the ordered buffer in step. Entries whose net count
// drops to or below zero leave the buffer (a transiently negative count
// is retained in the map so a later matching insertion restores it).
func (o *orderLimitOp) upsert(key string, t relstore.Tuple, dn int64) {
	e, ok := o.entries[key]
	if !ok {
		e = &olEntry{key: key, tuple: t, n: dn}
		o.entries[key] = e
		if e.n > 0 {
			o.insert(e)
		}
		return
	}
	wasLive := e.n > 0
	e.n += dn
	switch {
	case e.n == 0:
		delete(o.entries, key)
		if wasLive {
			o.remove(e)
		}
	case wasLive && e.n < 0:
		o.remove(e)
	case !wasLive && e.n > 0:
		o.insert(e)
	}
}

// insert places e into the ordered buffer at its sort position.
func (o *orderLimitOp) insert(e *olEntry) {
	i := sort.Search(len(o.sorted), func(i int) bool { return !o.less(o.sorted[i], e) })
	o.sorted = append(o.sorted, nil)
	copy(o.sorted[i+1:], o.sorted[i:])
	o.sorted[i] = e
}

// remove deletes e from the ordered buffer. The comparator is a strict
// total order (tie-broken by the injective key), so the search lands on
// e's exact position.
func (o *orderLimitOp) remove(e *olEntry) {
	i := sort.Search(len(o.sorted), func(i int) bool { return !o.less(o.sorted[i], e) })
	for i < len(o.sorted) && o.sorted[i] != e {
		i++ // equal-comparing entries cannot exist, but stay safe
	}
	if i < len(o.sorted) {
		o.sorted = append(o.sorted[:i], o.sorted[i+1:]...)
	}
}

// topK materializes the current bounded output: a prefix walk of the
// ordered buffer accumulating multiplicities until the limit, with the
// boundary row clipped — identical to evalOrderLimit over the same input.
func (o *orderLimitOp) topK() *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	remaining := o.b.Limit
	for _, e := range o.sorted {
		if remaining <= 0 {
			break
		}
		n := e.n
		if n > remaining {
			n = remaining
		}
		out.AddKeyed(e.key, e.tuple, n)
		remaining -= n
	}
	return out
}
