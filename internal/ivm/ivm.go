// Package ivm implements incremental materialized-view maintenance over
// bound relational-algebra plans, the core systems contribution of the
// paper (Section 4.2): instead of re-running a query Q over every sampled
// world, the view is initialized once with a full evaluation and then
// updated from the small signed deltas Δ⁻/Δ⁺ produced by each batch of
// MCMC steps, following Blakeley et al.'s view-maintenance rewrites
//
//	Q(w') = Q(w) − Q'(w, Δ⁻) ∪ Q'(w, Δ⁺)
//
// generalized here to signed multiset (bag) deltas:
//
//	δ(σ_p R)      = σ_p(δR)
//	δ(π_A R)      = π_A(δR)              (signed counts add)
//	δ(R ⋈ S)      = δR⋈S + R⋈δS + δR⋈δS  (counts multiply)
//	δ(γ_{G,agg}R) = per-group state update, emitting −old +new rows
//
// All operators run in time proportional to the delta (plus index probes),
// never to the base relations.
//
// Deltas flow between operators as push streams: an operator hands each
// changed (tuple, signed count) pair to its parent's emit callback the
// moment it is produced, so a maintenance round allocates no intermediate
// bags between operators — the same item may even arrive split across
// several emissions and consumers fold signed counts. Mirroring the
// streaming evaluator (package ra), each operator declares via owned
// whether its emissions are stable or scratch; retaining consumers clone
// only unowned tuples, and only when first storing them.
package ivm

import (
	"fmt"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// BaseDelta maps base-relation names to signed bags of changed rows: a
// tuple with count −n was removed n times (the paper's Δ⁻) and +n added
// (Δ⁺). The tuples use the base relation's column layout.
type BaseDelta map[string]*ra.Bag

// NewBaseDelta returns an empty delta set.
func NewBaseDelta() BaseDelta { return make(BaseDelta) }

// Add records a signed change of n copies of row in the named relation.
func (d BaseDelta) Add(rel string, row relstore.Tuple, n int64) {
	bag, ok := d[rel]
	if !ok {
		bag = ra.NewBag(nil)
		d[rel] = bag
	}
	bag.Add(row, n)
}

// Empty reports whether the delta contains no net changes.
func (d BaseDelta) Empty() bool {
	for _, bag := range d {
		if bag.Len() > 0 {
			return false
		}
	}
	return true
}

// emitFn receives one streamed (tuple, signed count) pair. The same
// logical tuple may arrive split across several calls; receivers fold.
// Unless the producing operator reports owned()==true the tuple is only
// valid for the duration of the call.
type emitFn func(t relstore.Tuple, n int64)

// op is one stateful delta operator.
type op interface {
	// init fully evaluates the subtree, setting up internal state, and
	// streams the current output through emit.
	init(emit emitFn) error
	// apply pushes a base delta through the subtree, streaming the signed
	// output delta through emit.
	apply(d BaseDelta, emit emitFn)
	// owned reports whether emitted tuples are stable beyond the emit
	// call; operators that reuse an output buffer report false and
	// retaining consumers clone.
	owned() bool
}

// View is a materialized query answer kept consistent with the base
// relations under a stream of deltas.
type View struct {
	root   op
	schema *ra.RowSchema
	result *ra.Bag
	kbuf   []byte
}

// NewView compiles a bound plan into a delta-operator tree and initializes
// it with one full evaluation (the only full query of the view's lifetime,
// matching Algorithm 1's initialization step).
func NewView(b *ra.Bound) (*View, error) {
	root, err := compile(b)
	if err != nil {
		return nil, err
	}
	return newViewFrom(root, b.Schema)
}

// newViewFrom materializes the initial answer from the operator tree's
// init stream.
func newViewFrom(root op, schema *ra.RowSchema) (*View, error) {
	v := &View{root: root, schema: schema, result: ra.NewBag(schema)}
	clone := !root.owned()
	err := root.init(func(t relstore.Tuple, n int64) {
		v.kbuf = t.AppendKey(v.kbuf[:0])
		v.result.AddKeyedBytes(v.kbuf, t, n, clone)
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Result returns the current materialized answer. The caller must treat it
// as read-only; it remains valid (and current) across Apply calls.
func (v *View) Result() *ra.Bag { return v.result }

// Apply folds a base delta into the view and returns the signed change to
// the query answer. The root's emissions stream directly into both the
// maintained result and the returned delta; no intermediate bag exists
// per operator.
func (v *View) Apply(d BaseDelta) *ra.Bag {
	out := ra.NewBag(v.schema)
	clone := !v.root.owned()
	v.root.apply(d, func(t relstore.Tuple, n int64) {
		v.kbuf = t.AppendKey(v.kbuf[:0])
		out.AddKeyedBytes(v.kbuf, t, n, clone)
		v.result.AddKeyedBytes(v.kbuf, t, n, clone)
	})
	return out
}

// childCompiler turns a bound subtree into its delta operator. Private
// views compile children with plain recursion; a Graph routes children
// through its fingerprint-keyed node table so equal subtrees share one
// stateful operator (see graph.go).
type childCompiler func(*ra.Bound) (op, error)

func compile(b *ra.Bound) (op, error) { return compileNode(b, compile) }

// compileNode builds the operator for one node, obtaining child operators
// through cc.
func compileNode(b *ra.Bound, cc childCompiler) (op, error) {
	switch b.Kind {
	case ra.KScan:
		return &scanOp{b: b}, nil
	case ra.KSelect:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &selectOp{b: b, child: child}, nil
	case ra.KProject:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &projectOp{b: b, child: child}, nil
	case ra.KJoin:
		left, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := cc(b.Children[1])
		if err != nil {
			return nil, err
		}
		return &joinOp{b: b, left: left, right: right}, nil
	case ra.KGroupAgg:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return newGroupAggOp(b, child), nil
	case ra.KUnion, ra.KDiff:
		left, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := cc(b.Children[1])
		if err != nil {
			return nil, err
		}
		if b.Kind == ra.KUnion {
			return &unionOp{b: b, left: left, right: right}, nil
		}
		return &diffOp{b: b, left: left, right: right}, nil
	case ra.KDistinct:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &distinctOp{b: b, child: child}, nil
	case ra.KOrderLimit:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return newOrderLimitOp(b, child), nil
	}
	return nil, fmt.Errorf("ivm: cannot compile bound kind %d", b.Kind)
}

// ---- scan ----

// scanOp forwards base deltas for its table. It keeps no state: consumers
// that need current contents (joins) maintain their own. Relation rows and
// delta-bag rows are both stable, so scans own their emissions.
type scanOp struct {
	b *ra.Bound
}

func (o *scanOp) owned() bool { return true }

func (o *scanOp) init(emit emitFn) error {
	o.b.Rel.Scan(func(_ relstore.RowID, t relstore.Tuple) bool {
		emit(t, 1)
		return true
	})
	return nil
}

func (o *scanOp) apply(d BaseDelta, emit emitFn) {
	if base, ok := d[o.b.Table]; ok {
		base.Each(func(_ string, r *ra.BagRow) bool {
			emit(r.Tuple, r.N)
			return true
		})
	}
}

// ---- select ----

type selectOp struct {
	b     *ra.Bound
	child op
}

func (o *selectOp) owned() bool { return o.child.owned() }

func (o *selectOp) init(emit emitFn) error {
	return o.child.init(o.filter(emit))
}

func (o *selectOp) apply(d BaseDelta, emit emitFn) {
	o.child.apply(d, o.filter(emit))
}

func (o *selectOp) filter(emit emitFn) emitFn {
	return func(t relstore.Tuple, n int64) {
		if o.b.Pred.Eval(t).AsBool() {
			emit(t, n)
		}
	}
}

// ---- project ----

// projectOp rewrites rows through one reused scratch buffer, so its
// emissions are never owned.
type projectOp struct {
	b     *ra.Bound
	child op
	buf   relstore.Tuple
}

func (o *projectOp) owned() bool { return false }

func (o *projectOp) init(emit emitFn) error {
	return o.child.init(o.project(emit))
}

func (o *projectOp) apply(d BaseDelta, emit emitFn) {
	o.child.apply(d, o.project(emit))
}

func (o *projectOp) project(emit emitFn) emitFn {
	if o.buf == nil {
		o.buf = make(relstore.Tuple, len(o.b.ProjIdx))
	}
	return func(t relstore.Tuple, n int64) {
		for i, j := range o.b.ProjIdx {
			o.buf[i] = t[j]
		}
		emit(o.buf, n)
	}
}
