// Package ivm implements incremental materialized-view maintenance over
// bound relational-algebra plans, the core systems contribution of the
// paper (Section 4.2): instead of re-running a query Q over every sampled
// world, the view is initialized once with a full evaluation and then
// updated from the small signed deltas Δ⁻/Δ⁺ produced by each batch of
// MCMC steps, following Blakeley et al.'s view-maintenance rewrites
//
//	Q(w') = Q(w) − Q'(w, Δ⁻) ∪ Q'(w, Δ⁺)
//
// generalized here to signed multiset (bag) deltas:
//
//	δ(σ_p R)      = σ_p(δR)
//	δ(π_A R)      = π_A(δR)              (signed counts add)
//	δ(R ⋈ S)      = δR⋈S + R⋈δS + δR⋈δS  (counts multiply)
//	δ(γ_{G,agg}R) = per-group state update, emitting −old +new rows
//
// All operators run in time proportional to the delta (plus index probes),
// never to the base relations.
package ivm

import (
	"fmt"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// BaseDelta maps base-relation names to signed bags of changed rows: a
// tuple with count −n was removed n times (the paper's Δ⁻) and +n added
// (Δ⁺). The tuples use the base relation's column layout.
type BaseDelta map[string]*ra.Bag

// NewBaseDelta returns an empty delta set.
func NewBaseDelta() BaseDelta { return make(BaseDelta) }

// Add records a signed change of n copies of row in the named relation.
func (d BaseDelta) Add(rel string, row relstore.Tuple, n int64) {
	bag, ok := d[rel]
	if !ok {
		bag = ra.NewBag(nil)
		d[rel] = bag
	}
	bag.Add(row, n)
}

// Empty reports whether the delta contains no net changes.
func (d BaseDelta) Empty() bool {
	for _, bag := range d {
		if bag.Len() > 0 {
			return false
		}
	}
	return true
}

// View is a materialized query answer kept consistent with the base
// relations under a stream of deltas.
type View struct {
	root   op
	result *ra.Bag
}

// op is one stateful delta operator.
type op interface {
	// init fully evaluates the subtree, setting up internal state, and
	// returns the current output bag. The returned bag is owned by the
	// caller.
	init() (*ra.Bag, error)
	// apply pushes a base delta through the subtree and returns the
	// signed output delta. The returned bag is owned by the caller.
	apply(d BaseDelta) *ra.Bag
}

// NewView compiles a bound plan into a delta-operator tree and initializes
// it with one full evaluation (the only full query of the view's lifetime,
// matching Algorithm 1's initialization step).
func NewView(b *ra.Bound) (*View, error) {
	root, err := compile(b)
	if err != nil {
		return nil, err
	}
	out, err := root.init()
	if err != nil {
		return nil, err
	}
	return &View{root: root, result: out}, nil
}

// Result returns the current materialized answer. The caller must treat it
// as read-only; it remains valid (and current) across Apply calls.
func (v *View) Result() *ra.Bag { return v.result }

// Apply folds a base delta into the view and returns the signed change to
// the query answer.
func (v *View) Apply(d BaseDelta) *ra.Bag {
	out := v.root.apply(d)
	v.result.AddBag(out, 1)
	return out
}

// childCompiler turns a bound subtree into its delta operator. Private
// views compile children with plain recursion; a Graph routes children
// through its fingerprint-keyed node table so equal subtrees share one
// stateful operator (see graph.go).
type childCompiler func(*ra.Bound) (op, error)

func compile(b *ra.Bound) (op, error) { return compileNode(b, compile) }

// compileNode builds the operator for one node, obtaining child operators
// through cc.
func compileNode(b *ra.Bound, cc childCompiler) (op, error) {
	switch b.Kind {
	case ra.KScan:
		return &scanOp{b: b}, nil
	case ra.KSelect:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &selectOp{b: b, child: child}, nil
	case ra.KProject:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &projectOp{b: b, child: child}, nil
	case ra.KJoin:
		left, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := cc(b.Children[1])
		if err != nil {
			return nil, err
		}
		return &joinOp{b: b, left: left, right: right}, nil
	case ra.KGroupAgg:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return newGroupAggOp(b, child), nil
	case ra.KUnion, ra.KDiff:
		left, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := cc(b.Children[1])
		if err != nil {
			return nil, err
		}
		if b.Kind == ra.KUnion {
			return &unionOp{b: b, left: left, right: right}, nil
		}
		return &diffOp{b: b, left: left, right: right}, nil
	case ra.KDistinct:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return &distinctOp{b: b, child: child}, nil
	case ra.KOrderLimit:
		child, err := cc(b.Children[0])
		if err != nil {
			return nil, err
		}
		return newOrderLimitOp(b, child), nil
	}
	return nil, fmt.Errorf("ivm: cannot compile bound kind %d", b.Kind)
}

// ---- scan ----

// scanOp forwards base deltas for its table. It keeps no state: consumers
// that need current contents (joins) maintain their own.
type scanOp struct {
	b *ra.Bound
}

func (o *scanOp) init() (*ra.Bag, error) {
	out := ra.NewBag(o.b.Schema)
	o.b.Rel.Scan(func(_ relstore.RowID, t relstore.Tuple) bool {
		out.Add(t, 1)
		return true
	})
	return out, nil
}

func (o *scanOp) apply(d BaseDelta) *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	if base, ok := d[o.b.Table]; ok {
		out.AddBag(base, 1)
	}
	return out
}

// ---- select ----

type selectOp struct {
	b     *ra.Bound
	child op
}

func (o *selectOp) init() (*ra.Bag, error) {
	in, err := o.child.init()
	if err != nil {
		return nil, err
	}
	return o.filter(in), nil
}

func (o *selectOp) apply(d BaseDelta) *ra.Bag {
	return o.filter(o.child.apply(d))
}

func (o *selectOp) filter(in *ra.Bag) *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	in.Each(func(k string, r *ra.BagRow) bool {
		if o.b.Pred.Eval(r.Tuple).AsBool() {
			out.AddKeyed(k, r.Tuple, r.N)
		}
		return true
	})
	return out
}

// ---- project ----

type projectOp struct {
	b     *ra.Bound
	child op
}

func (o *projectOp) init() (*ra.Bag, error) {
	in, err := o.child.init()
	if err != nil {
		return nil, err
	}
	return o.project(in), nil
}

func (o *projectOp) apply(d BaseDelta) *ra.Bag {
	return o.project(o.child.apply(d))
}

func (o *projectOp) project(in *ra.Bag) *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	in.Each(func(_ string, r *ra.BagRow) bool {
		out.Add(ra.ProjectTuple(r.Tuple, o.b.ProjIdx), r.N)
		return true
	})
	return out
}
