package ivm

import (
	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// aggState is the incrementally maintained state of one aggregate within
// one group. MIN/MAX keep a multiset of argument values so deletions can
// be unwound exactly.
type aggState struct {
	n    int64   // COUNT / COUNT_IF
	sumI int64   // SUM (int)
	sumF float64 // SUM (float) / AVG numerator
	cnt  int64   // AVG denominator and MIN/MAX population
	vals map[string]*valCount
}

type valCount struct {
	v relstore.Value
	n int64
}

// groupState is the maintained state of one output group.
type groupState struct {
	key     relstore.Tuple
	total   int64 // net multiplicity of input rows in the group
	aggs    []aggState
	lastRow relstore.Tuple // currently emitted output row, nil if none
}

// groupAggOp maintains per-group aggregate state and emits −old/+new
// output rows for groups touched by a delta. Emitted rows are freshly
// built (or previously emitted) tuples, never scratch, so the operator
// owns its output.
type groupAggOp struct {
	b       *ra.Bound
	child   op
	groups  map[string]*groupState
	global  bool
	touched map[string]*groupState // reused across apply calls
	kbuf    []byte
}

func newGroupAggOp(b *ra.Bound, child op) *groupAggOp {
	return &groupAggOp{b: b, child: child, global: len(b.GroupIdx) == 0}
}

func (o *groupAggOp) owned() bool { return true }

func (o *groupAggOp) init(emit emitFn) error {
	o.groups = make(map[string]*groupState)
	o.touched = make(map[string]*groupState)
	err := o.child.init(func(t relstore.Tuple, n int64) {
		o.fold(o.group(t), t, n)
	})
	if err != nil {
		return err
	}
	if o.global {
		o.group(nil) // ensure the global group exists even over empty input
	}
	for _, g := range o.groups {
		if row := o.computeRow(g); row != nil {
			g.lastRow = row
			emit(row, 1)
		}
	}
	return nil
}

func (o *groupAggOp) apply(d BaseDelta, emit emitFn) {
	o.child.apply(d, func(t relstore.Tuple, n int64) {
		o.kbuf = ra.AppendKeyOf(o.kbuf[:0], t, o.b.GroupIdx)
		g, ok := o.groups[string(o.kbuf)]
		if !ok {
			g = o.newGroup(t)
			o.groups[string(o.kbuf)] = g
		}
		o.touched[string(o.kbuf)] = g
		o.fold(g, t, n)
	})
	for gk, g := range o.touched {
		delete(o.touched, gk) // drain the reused set as it is processed
		oldRow := g.lastRow
		var newRow relstore.Tuple
		if g.total > 0 || o.global {
			newRow = o.computeRow(g)
		}
		if oldRow != nil {
			emit(oldRow, -1)
		}
		if newRow != nil {
			emit(newRow, 1)
		}
		g.lastRow = newRow
		if g.total == 0 && !o.global {
			delete(o.groups, gk)
		}
	}
}

func (o *groupAggOp) group(input relstore.Tuple) *groupState {
	o.kbuf = o.kbuf[:0]
	if input != nil {
		o.kbuf = ra.AppendKeyOf(o.kbuf, input, o.b.GroupIdx)
	}
	g, ok := o.groups[string(o.kbuf)]
	if !ok {
		g = o.newGroup(input)
		o.groups[string(o.kbuf)] = g
	}
	return g
}

func (o *groupAggOp) newGroup(input relstore.Tuple) *groupState {
	g := &groupState{aggs: make([]aggState, len(o.b.Aggs))}
	if input != nil {
		g.key = ra.ProjectTuple(input, o.b.GroupIdx)
	} else {
		g.key = relstore.Tuple{}
	}
	return g
}

// fold merges n copies of input row t into the group's aggregate states.
// Values are copied into the state (relstore.Value is a value type), so
// folding from an unowned stream is safe without cloning t.
func (o *groupAggOp) fold(g *groupState, t relstore.Tuple, n int64) {
	g.total += n
	for i := range o.b.Aggs {
		a := &o.b.Aggs[i]
		s := &g.aggs[i]
		switch a.Fn {
		case ra.FnCount:
			s.n += n
		case ra.FnCountIf:
			if a.Pred.Eval(t).AsBool() {
				s.n += n
			}
		case ra.FnSum:
			if a.Out == relstore.TInt {
				s.sumI += n * t[a.ArgIdx].AsInt()
			} else {
				s.sumF += float64(n) * t[a.ArgIdx].AsFloat()
			}
		case ra.FnAvg:
			s.sumF += float64(n) * t[a.ArgIdx].AsFloat()
			s.cnt += n
		case ra.FnMin, ra.FnMax:
			v := t[a.ArgIdx]
			s.cnt += n
			if s.vals == nil {
				s.vals = make(map[string]*valCount)
			}
			o.kbuf = v.AppendKey(o.kbuf[:0])
			if vc, ok := s.vals[string(o.kbuf)]; ok {
				vc.n += n
				if vc.n == 0 {
					delete(s.vals, string(o.kbuf))
				}
			} else {
				s.vals[string(o.kbuf)] = &valCount{v: v, n: n}
			}
		}
	}
}

// computeRow materializes the group's current output row, or nil when any
// aggregate is undefined (AVG/MIN/MAX over an empty population), matching
// the full evaluator's suppression rule.
func (o *groupAggOp) computeRow(g *groupState) relstore.Tuple {
	row := make(relstore.Tuple, 0, len(g.key)+len(o.b.Aggs))
	row = append(row, g.key...)
	for i := range o.b.Aggs {
		a := &o.b.Aggs[i]
		s := &g.aggs[i]
		switch a.Fn {
		case ra.FnCount, ra.FnCountIf:
			row = append(row, relstore.Int(s.n))
		case ra.FnSum:
			if a.Out == relstore.TInt {
				row = append(row, relstore.Int(s.sumI))
			} else {
				row = append(row, relstore.Float(s.sumF))
			}
		case ra.FnAvg:
			if s.cnt == 0 {
				return nil
			}
			row = append(row, relstore.Float(s.sumF/float64(s.cnt)))
		case ra.FnMin, ra.FnMax:
			if len(s.vals) == 0 {
				return nil
			}
			var best relstore.Value
			first := true
			for _, vc := range s.vals {
				if first {
					best = vc.v
					first = false
					continue
				}
				if a.Fn == ra.FnMin && vc.v.Less(best) {
					best = vc.v
				}
				if a.Fn == ra.FnMax && best.Less(vc.v) {
					best = vc.v
				}
			}
			row = append(row, best)
		}
	}
	return row
}
