package ivm

import (
	"math"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// Graph owns a set of shared delta operators keyed by bound-subtree
// fingerprint (ra.Bound.Fingerprint) — the composable alternative to
// NewView's private operator trees. Views whose plans share a prefix —
// the same scan, the same pushed-down selection, the same join — share
// one stateful operator and its maintenance work, so a delta round costs
// each distinct physical subtree exactly once, however many views sit on
// top of it. The graph is single-goroutine by design, like the views it
// builds: one chain owns one graph.
//
// Protocol: call NextRound exactly once per base delta, then Apply the
// same delta through every mounted view. The round counter is what lets
// an operator shared by several views tell "second consumer of this
// round's delta" (serve the memoized output) apart from "next delta"
// (recompute); stateful operators fold each delta into their state
// exactly once either way.
type Graph struct {
	round uint64
	nodes map[string]*graphNode
	hits  int64 // subtree reuses since construction
}

// NewGraph returns an empty shared-operator graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*graphNode)}
}

// graphNode wraps one shared operator with per-round output memoization
// and a reference count (direct parents plus views rooted here). The memo
// is a reusable row slice: the first consumer of a round records the
// inner operator's emissions (cloning unowned tuples once) while
// forwarding them; later consumers replay the recording. Recorded tuples
// are therefore always stable and the node reports its emissions owned.
type graphNode struct {
	g     *Graph
	fp    string
	inner op
	kids  []*graphNode
	refs  int
	round uint64
	memo  []ra.BagRow
}

func (n *graphNode) owned() bool { return true }

func (n *graphNode) init(emit emitFn) error {
	if n.inner.owned() {
		return n.inner.init(emit)
	}
	return n.inner.init(func(t relstore.Tuple, c int64) {
		emit(t.Clone(), c)
	})
}

// apply computes the node's output delta once per round, recording it,
// and replays the recording to every further consumer. Consumers treat
// streamed tuples as read-only throughout this package, so sharing them
// is safe.
func (n *graphNode) apply(d BaseDelta, emit emitFn) {
	if n.round == n.g.round {
		for i := range n.memo {
			emit(n.memo[i].Tuple, n.memo[i].N)
		}
		return
	}
	n.memo = n.memo[:0]
	clone := !n.inner.owned()
	n.inner.apply(d, func(t relstore.Tuple, c int64) {
		if clone {
			t = t.Clone()
		}
		n.memo = append(n.memo, ra.BagRow{Tuple: t, N: c})
		emit(t, c)
	})
	n.round = n.g.round
}

// NextRound starts a new delta round. Every mounted view must see the
// same base delta within one round.
func (g *Graph) NextRound() { g.round++ }

// Nodes reports the number of live shared operators.
func (g *Graph) Nodes() int { return len(g.nodes) }

// SubtreeHits reports how many Mount calls reused an existing operator
// subtree instead of building one.
func (g *Graph) SubtreeHits() int64 { return g.hits }

// Mount compiles b into a view whose operators are shared with every
// other view mounted on this graph wherever subtree fingerprints match,
// and initializes it with a full evaluation. Mounting re-initializes any
// reused operators along the new view's path; their state is a
// deterministic function of the current base relations, so concurrent
// views observe no change. Mount must be called between rounds (never
// between NextRound and the round's Apply calls).
func (g *Graph) Mount(b *ra.Bound) (*View, error) {
	root, err := g.mountNode(b)
	if err != nil {
		return nil, err
	}
	v, err := newViewFrom(root, b.Schema)
	if err != nil {
		g.release(root)
		return nil, err
	}
	return v, nil
}

// Unmount releases a mounted view's hold on its operators; operators no
// longer referenced by any view are evicted along with their state. The
// view must have been returned by this graph's Mount and must not be
// Applied afterwards. Views built by NewView are not graph-managed and
// are ignored.
func (g *Graph) Unmount(v *View) {
	if n, ok := v.root.(*graphNode); ok && n.g == g {
		g.release(n)
	}
}

func (g *Graph) release(n *graphNode) {
	n.refs--
	if n.refs > 0 {
		return
	}
	delete(g.nodes, n.fp)
	for _, k := range n.kids {
		g.release(k)
	}
}

func (g *Graph) mountNode(b *ra.Bound) (*graphNode, error) {
	fp := b.Fingerprint()
	if n, ok := g.nodes[fp]; ok {
		n.refs++
		g.hits++
		return n, nil
	}
	// round starts poisoned so a freshly (re)mounted node never mistakes
	// the current round for one it already served.
	n := &graphNode{g: g, fp: fp, refs: 1, round: math.MaxUint64}
	inner, err := compileNode(b, func(c *ra.Bound) (op, error) {
		k, kerr := g.mountNode(c)
		if kerr != nil {
			return nil, kerr
		}
		n.kids = append(n.kids, k)
		return k, nil
	})
	if err != nil {
		for _, k := range n.kids {
			g.release(k)
		}
		return nil, err
	}
	n.inner = inner
	g.nodes[fp] = n
	return n, nil
}
