package ivm

import (
	"factordb/internal/ra"
)

// sideState is the maintained contents of one join input, hashed on the
// join-key columns so delta probes run in O(|matching rows|).
type sideState struct {
	keyIdx  []int
	buckets map[string]map[string]*ra.BagRow // join key -> tuple key -> row
}

func newSideState(keyIdx []int) *sideState {
	return &sideState{keyIdx: keyIdx, buckets: make(map[string]map[string]*ra.BagRow)}
}

func (s *sideState) add(tupleKey string, r *ra.BagRow, n int64) {
	jk := ra.KeyOf(r.Tuple, s.keyIdx)
	bucket := s.buckets[jk]
	if bucket == nil {
		bucket = make(map[string]*ra.BagRow)
		s.buckets[jk] = bucket
	}
	if cur, ok := bucket[tupleKey]; ok {
		cur.N += n
		if cur.N == 0 {
			delete(bucket, tupleKey)
			if len(bucket) == 0 {
				delete(s.buckets, jk)
			}
		}
		return
	}
	bucket[tupleKey] = &ra.BagRow{Tuple: r.Tuple, N: n}
}

func (s *sideState) loadFrom(bag *ra.Bag) {
	bag.Each(func(k string, r *ra.BagRow) bool {
		s.add(k, r, r.N)
		return true
	})
}

// joinOp maintains hash tables for both inputs and computes
// δ(L⋈R) = δL⋈R_old + L_old⋈δR + δL⋈δR, applying the residual filter and
// multiplying multiplicities.
type joinOp struct {
	b           *ra.Bound
	left, right op
	ls, rs      *sideState
}

func (o *joinOp) init() (*ra.Bag, error) {
	lbag, err := o.left.init()
	if err != nil {
		return nil, err
	}
	rbag, err := o.right.init()
	if err != nil {
		return nil, err
	}
	o.ls = newSideState(o.b.LeftKey)
	o.rs = newSideState(o.b.RightKey)
	o.ls.loadFrom(lbag)
	o.rs.loadFrom(rbag)

	out := ra.NewBag(o.b.Schema)
	lbag.Each(func(_ string, l *ra.BagRow) bool {
		jk := ra.KeyOf(l.Tuple, o.b.LeftKey)
		for _, r := range o.rs.buckets[jk] {
			o.emit(out, l, r)
		}
		return true
	})
	return out, nil
}

func (o *joinOp) emit(out *ra.Bag, l, r *ra.BagRow) {
	row := ra.ConcatTuples(l.Tuple, r.Tuple)
	if o.b.Filter != nil && !o.b.Filter.Eval(row).AsBool() {
		return
	}
	out.Add(row, l.N*r.N)
}

func (o *joinOp) apply(d BaseDelta) *ra.Bag {
	dl := o.left.apply(d)
	dr := o.right.apply(d)
	out := ra.NewBag(o.b.Schema)

	// δL ⋈ R_old.
	dl.Each(func(_ string, l *ra.BagRow) bool {
		jk := ra.KeyOf(l.Tuple, o.b.LeftKey)
		for _, r := range o.rs.buckets[jk] {
			o.emit(out, l, r)
		}
		return true
	})
	// L_old ⋈ δR.
	dr.Each(func(_ string, r *ra.BagRow) bool {
		jk := ra.KeyOf(r.Tuple, o.b.RightKey)
		for _, l := range o.ls.buckets[jk] {
			o.emit(out, l, r)
		}
		return true
	})
	// δL ⋈ δR.
	dl.Each(func(_ string, l *ra.BagRow) bool {
		jk := ra.KeyOf(l.Tuple, o.b.LeftKey)
		dr.Each(func(_ string, r *ra.BagRow) bool {
			if ra.KeyOf(r.Tuple, o.b.RightKey) == jk {
				o.emit(out, l, r)
			}
			return true
		})
		return true
	})

	// Fold the deltas into the maintained side states.
	dl.Each(func(k string, r *ra.BagRow) bool {
		o.ls.add(k, r, r.N)
		return true
	})
	dr.Each(func(k string, r *ra.BagRow) bool {
		o.rs.add(k, r, r.N)
		return true
	})
	return out
}
