package ivm

import (
	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// sideState is the maintained contents of one join input, hashed on the
// join-key columns so delta probes run in O(|matching rows|). Keys are
// built in reused scratch buffers and converted to strings only when a
// bucket or row is first created.
type sideState struct {
	keyIdx     []int
	buckets    map[string]map[string]*ra.BagRow // join key -> tuple key -> row
	jbuf, tbuf []byte
}

func newSideState(keyIdx []int) *sideState {
	return &sideState{keyIdx: keyIdx, buckets: make(map[string]map[string]*ra.BagRow)}
}

// add folds a signed multiplicity change of t into the side. The tuple is
// cloned on first insert when clone is set (producer reuses its buffer).
func (s *sideState) add(t relstore.Tuple, n int64, clone bool) {
	s.jbuf = ra.AppendKeyOf(s.jbuf[:0], t, s.keyIdx)
	s.tbuf = t.AppendKey(s.tbuf[:0])
	bucket := s.buckets[string(s.jbuf)]
	if bucket == nil {
		bucket = make(map[string]*ra.BagRow)
		s.buckets[string(s.jbuf)] = bucket
	}
	if cur, ok := bucket[string(s.tbuf)]; ok {
		cur.N += n
		if cur.N == 0 {
			delete(bucket, string(s.tbuf))
			if len(bucket) == 0 {
				delete(s.buckets, string(s.jbuf))
			}
		}
		return
	}
	if clone {
		t = t.Clone()
	}
	bucket[string(s.tbuf)] = &ra.BagRow{Tuple: t, N: n}
}

// joinOp maintains hash tables for both inputs and computes
// δ(L⋈R) = δL⋈R_old + L_old⋈δR + δL⋈δR, applying the residual filter and
// multiplying multiplicities. The delta identity is realized without
// buffering either input delta: the left phase probes the right state
// before folding each item into the left state (δL⋈R_old), then the right
// phase probes the already-updated left state (δR⋈L_new = L_old⋈δR +
// δL⋈δR).
type joinOp struct {
	b           *ra.Bound
	left, right op
	ls, rs      *sideState
	probeBuf    []byte
	scratch     relstore.Tuple
}

func (o *joinOp) owned() bool { return false }

// emitJoined streams the concatenation of l and every matching row of
// side through the residual filter into emit, using one reused output row.
func (o *joinOp) emitJoined(side *sideState, probeIdx []int, t relstore.Tuple, n int64, leftSide bool, emit emitFn) {
	o.probeBuf = ra.AppendKeyOf(o.probeBuf[:0], t, probeIdx)
	bucket := side.buckets[string(o.probeBuf)]
	if bucket == nil {
		return
	}
	for _, m := range bucket {
		if leftSide {
			o.scratch = append(append(o.scratch[:0], t...), m.Tuple...)
		} else {
			o.scratch = append(append(o.scratch[:0], m.Tuple...), t...)
		}
		if o.b.Filter != nil && !o.b.Filter.Eval(o.scratch).AsBool() {
			continue
		}
		emit(o.scratch, n*m.N)
	}
}

func (o *joinOp) init(emit emitFn) error {
	o.ls = newSideState(o.b.LeftKey)
	o.rs = newSideState(o.b.RightKey)
	o.scratch = make(relstore.Tuple, 0, o.b.Schema.Arity())
	cloneL, cloneR := !o.left.owned(), !o.right.owned()
	if err := o.left.init(func(t relstore.Tuple, n int64) {
		o.ls.add(t, n, cloneL)
	}); err != nil {
		return err
	}
	// The right side streams through the fully loaded left state, emitting
	// the initial join while building its own state.
	return o.right.init(func(t relstore.Tuple, n int64) {
		o.emitJoined(o.ls, o.b.RightKey, t, n, false, emit)
		o.rs.add(t, n, cloneR)
	})
}

func (o *joinOp) apply(d BaseDelta, emit emitFn) {
	cloneL, cloneR := !o.left.owned(), !o.right.owned()
	// δL ⋈ R_old, folding δL into the left state as it streams.
	o.left.apply(d, func(t relstore.Tuple, n int64) {
		o.emitJoined(o.rs, o.b.LeftKey, t, n, true, emit)
		o.ls.add(t, n, cloneL)
	})
	// δR ⋈ L_new = L_old⋈δR + δL⋈δR.
	o.right.apply(d, func(t relstore.Tuple, n int64) {
		o.emitJoined(o.ls, o.b.RightKey, t, n, false, emit)
		o.rs.add(t, n, cloneR)
	})
}
