package ivm

import (
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

func perProject(alias string) ra.Plan {
	return ra.NewProject(
		ra.NewSelect(ra.NewScan("TOKEN", alias),
			ra.Eq(ra.Col(ra.C(alias, "LABEL")), ra.Const(relstore.String("B-PER")))),
		ra.C(alias, "STRING"),
	)
}

func orgProject(alias string) ra.Plan {
	return ra.NewProject(
		ra.NewSelect(ra.NewScan("TOKEN", alias),
			ra.Eq(ra.Col(ra.C(alias, "LABEL")), ra.Const(relstore.String("B-ORG")))),
		ra.C(alias, "STRING"),
	)
}

func TestViewUnion(t *testing.T) {
	checkAgainstFullEval(t, ra.NewUnion(perProject("A"), orgProject("B")), 31, 48, 25, 4)
}

func TestViewDiffMonus(t *testing.T) {
	checkAgainstFullEval(t, ra.NewDiff(perProject("A"), orgProject("B")), 33, 48, 30, 4)
}

func TestViewDiffSelfCancelling(t *testing.T) {
	// L − L stays empty under arbitrary updates: a sharp test of the
	// monus delta rule reading both absolute multiplicities.
	checkAgainstFullEval(t, ra.NewDiff(perProject("A"), perProject("B")), 35, 32, 30, 3)
}

func TestViewDistinct(t *testing.T) {
	checkAgainstFullEval(t, ra.NewDistinct(perProject("A")), 37, 48, 30, 4)
}

func TestViewDistinctOverUnion(t *testing.T) {
	// Composition: DISTINCT over a union of overlapping inputs.
	p := ra.NewDistinct(ra.NewUnion(perProject("A"), perProject("B")))
	checkAgainstFullEval(t, p, 39, 32, 25, 3)
}
