package ivm

import (
	"math/rand"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

var labels = []string{"O", "B-PER", "I-PER", "B-ORG", "I-ORG", "B-LOC"}
var words = []string{"Clinton", "IBM", "Boston", "saw", "the", "Smith", "Corp"}

// buildTokenDB creates a TOKEN relation with n random rows.
func buildTokenDB(n int, seed int64) (*relstore.DB, *relstore.Relation, []relstore.RowID) {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	ids := make([]relstore.RowID, n)
	for i := 0; i < n; i++ {
		id, err := tok.Insert(relstore.Tuple{
			relstore.Int(int64(i)),
			relstore.Int(int64(i / 8)),
			relstore.String(words[rng.Intn(len(words))]),
			relstore.String(labels[rng.Intn(len(labels))]),
		})
		if err != nil {
			panic(err)
		}
		ids[i] = id
	}
	return db, tok, ids
}

// flipLabel randomly flips one row's LABEL and records the change in d.
func flipLabel(rng *rand.Rand, tok *relstore.Relation, ids []relstore.RowID, d BaseDelta) {
	id := ids[rng.Intn(len(ids))]
	newLabel := labels[rng.Intn(len(labels))]
	old, err := tok.UpdateCol(id, 3, relstore.String(newLabel))
	if err != nil {
		panic(err)
	}
	cur, _ := tok.Get(id)
	if old.Equal(cur) {
		return // no-op flip: no delta
	}
	d.Add("TOKEN", old, -1)
	d.Add("TOKEN", cur.Clone(), 1)
}

// checkAgainstFullEval drives a view with random flip batches and verifies
// that its maintained result matches a from-scratch evaluation after every
// batch. This is the oracle property that makes Algorithm 1 trustworthy.
func checkAgainstFullEval(t *testing.T, plan ra.Plan, seed int64, rows, batches, flipsPerBatch int) {
	t.Helper()
	db, tok, ids := buildTokenDB(rows, seed)
	bound, err := ra.Bind(db, plan)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	full, err := ra.Eval(bound)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !view.Result().Equal(full) {
		t.Fatalf("initial view differs from full evaluation")
	}
	rng := rand.New(rand.NewSource(seed + 1))
	for b := 0; b < batches; b++ {
		d := NewBaseDelta()
		for f := 0; f < flipsPerBatch; f++ {
			flipLabel(rng, tok, ids, d)
		}
		view.Apply(d)
		full, err = ra.Eval(bound)
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if !view.Result().Equal(full) {
			t.Fatalf("batch %d: view diverged from full evaluation\nview: %v\nfull: %v",
				b, dump(view.Result()), dump(full))
		}
	}
}

func dump(b *ra.Bag) []string {
	var out []string
	for _, r := range b.Rows() {
		out = append(out, r.Tuple.String()+"#"+relstore.Int(r.N).String())
	}
	return out
}

func perSelect() ra.Plan {
	return ra.NewSelect(ra.NewScan("TOKEN", "T"),
		ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER"))))
}

func TestViewSelect(t *testing.T) {
	checkAgainstFullEval(t, perSelect(), 1, 64, 20, 5)
}

func TestViewSelectProject(t *testing.T) {
	// Query 1 of the paper.
	p := ra.NewProject(perSelect(), ra.C("T", "STRING"))
	checkAgainstFullEval(t, p, 2, 64, 20, 5)
}

func TestViewGlobalCount(t *testing.T) {
	// Query 2 of the paper.
	p := ra.NewGroupAgg(perSelect(), nil, ra.Agg{Fn: ra.FnCount, As: "CNT"})
	checkAgainstFullEval(t, p, 3, 64, 25, 3)
}

func TestViewGroupedCountIf(t *testing.T) {
	// The lowering of Query 3: per-doc conditional counts plus equality.
	counts := ra.NewGroupAgg(
		ra.NewScan("TOKEN", "T"),
		[]ra.ColRef{ra.C("T", "DOC_ID")},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER"))), As: "NPER"},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-ORG"))), As: "NORG"},
	)
	p := ra.NewProject(
		ra.NewSelect(counts, ra.Eq(ra.Col(ra.C("", "NPER")), ra.Col(ra.C("", "NORG")))),
		ra.C("T", "DOC_ID"),
	)
	checkAgainstFullEval(t, p, 4, 64, 25, 4)
}

func TestViewSelfJoin(t *testing.T) {
	// Query 4 of the paper: self-join through DOC_ID.
	boston := ra.NewSelect(ra.NewScan("TOKEN", "T1"), ra.And(
		ra.Eq(ra.Col(ra.C("T1", "STRING")), ra.Const(relstore.String("Boston"))),
		ra.Eq(ra.Col(ra.C("T1", "LABEL")), ra.Const(relstore.String("B-ORG"))),
	))
	persons := ra.NewSelect(ra.NewScan("TOKEN", "T2"),
		ra.Eq(ra.Col(ra.C("T2", "LABEL")), ra.Const(relstore.String("B-PER"))))
	p := ra.NewProject(
		ra.NewJoin(boston, persons,
			[]ra.EquiCond{{Left: ra.C("T1", "DOC_ID"), Right: ra.C("T2", "DOC_ID")}}, nil),
		ra.C("T2", "STRING"),
	)
	checkAgainstFullEval(t, p, 5, 48, 25, 4)
}

func TestViewJoinResidualFilter(t *testing.T) {
	p := ra.NewJoin(
		ra.NewScan("TOKEN", "T1"), ra.NewScan("TOKEN", "T2"),
		[]ra.EquiCond{{Left: ra.C("T1", "DOC_ID"), Right: ra.C("T2", "DOC_ID")}},
		ra.And(
			ra.Eq(ra.Col(ra.C("T1", "LABEL")), ra.Const(relstore.String("B-PER"))),
			ra.Cmp(ra.OpLt, ra.Col(ra.C("T1", "TOK_ID")), ra.Col(ra.C("T2", "TOK_ID"))),
		),
	)
	checkAgainstFullEval(t, p, 6, 32, 15, 3)
}

func TestViewCrossProduct(t *testing.T) {
	per := ra.NewProject(perSelect(), ra.C("T", "STRING"))
	org := ra.NewProject(
		ra.NewSelect(ra.NewScan("TOKEN", "U"),
			ra.Eq(ra.Col(ra.C("U", "LABEL")), ra.Const(relstore.String("B-ORG")))),
		ra.C("U", "STRING"))
	p := ra.NewCross(per, org)
	checkAgainstFullEval(t, p, 7, 24, 15, 3)
}

func TestViewMinMaxSumAvg(t *testing.T) {
	p := ra.NewGroupAgg(
		perSelect(),
		[]ra.ColRef{ra.C("T", "DOC_ID")},
		ra.Agg{Fn: ra.FnMin, Arg: ra.C("T", "TOK_ID"), As: "LO"},
		ra.Agg{Fn: ra.FnMax, Arg: ra.C("T", "TOK_ID"), As: "HI"},
		ra.Agg{Fn: ra.FnSum, Arg: ra.C("T", "TOK_ID"), As: "S"},
		ra.Agg{Fn: ra.FnAvg, Arg: ra.C("T", "TOK_ID"), As: "A"},
	)
	checkAgainstFullEval(t, p, 8, 64, 30, 4)
}

func TestViewGlobalMinOverEmptyable(t *testing.T) {
	// A global MIN whose population can empty out entirely: the output row
	// must vanish and reappear in step with the data.
	p := ra.NewGroupAgg(perSelect(), nil, ra.Agg{Fn: ra.FnMin, Arg: ra.C("T", "TOK_ID"), As: "LO"})
	checkAgainstFullEval(t, p, 9, 12, 40, 2)
}

func TestApplyReturnsNetOutputDelta(t *testing.T) {
	db, tok, ids := buildTokenDB(16, 42)
	bound, err := ra.Bind(db, perSelect())
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatal(err)
	}
	before := view.Result().Clone()
	d := NewBaseDelta()
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 6; i++ {
		flipLabel(rng, tok, ids, d)
	}
	dout := view.Apply(d)
	reconstructed := before.Clone()
	reconstructed.AddBag(dout, 1)
	if !reconstructed.Equal(view.Result()) {
		t.Error("output delta does not reconstruct the new result")
	}
}

func TestEmptyDeltaIsNoOp(t *testing.T) {
	db, _, _ := buildTokenDB(16, 99)
	bound, _ := ra.Bind(db, perSelect())
	view, _ := NewView(bound)
	before := view.Result().Clone()
	dout := view.Apply(NewBaseDelta())
	if dout.Len() != 0 {
		t.Errorf("empty delta produced %d output changes", dout.Len())
	}
	if !before.Equal(view.Result()) {
		t.Error("empty delta mutated result")
	}
	if !NewBaseDelta().Empty() {
		t.Error("NewBaseDelta should be Empty")
	}
	d := NewBaseDelta()
	d.Add("TOKEN", relstore.Tuple{relstore.Int(1)}, 1)
	if d.Empty() {
		t.Error("non-empty delta reported Empty")
	}
}

func TestCancellingDeltaProducesNoChange(t *testing.T) {
	db, tok, ids := buildTokenDB(16, 7)
	bound, _ := ra.Bind(db, perSelect())
	view, _ := NewView(bound)
	// Flip a row away and back within one batch: net delta must cancel.
	d := NewBaseDelta()
	id := ids[0]
	old, _ := tok.Get(id)
	oldLabel := old[3]
	tok.UpdateCol(id, 3, relstore.String("B-PER"))
	mid, _ := tok.Get(id)
	d.Add("TOKEN", old.Clone(), -1)
	d.Add("TOKEN", mid.Clone(), 1)
	tok.UpdateCol(id, 3, oldLabel)
	cur, _ := tok.Get(id)
	d.Add("TOKEN", mid.Clone(), -1)
	d.Add("TOKEN", cur.Clone(), 1)
	if !d.Empty() {
		t.Fatal("cancelling updates should yield an empty net delta")
	}
	dout := view.Apply(d)
	if dout.Len() != 0 {
		t.Errorf("cancelling delta produced output changes: %v", dump(dout))
	}
}

// deleteRow removes one random surviving row from the base relation and
// records the pure deletion (no matching insertion) in d.
func deleteRow(rng *rand.Rand, tok *relstore.Relation, ids []relstore.RowID, d BaseDelta) []relstore.RowID {
	i := rng.Intn(len(ids))
	old, err := tok.Delete(ids[i])
	if err != nil {
		panic(err)
	}
	d.Add("TOKEN", old, -1)
	return append(ids[:i], ids[i+1:]...)
}

// selfJoinPlan is Query 4's shape: persons joined to Boston orgs by doc.
func selfJoinPlan() ra.Plan {
	boston := ra.NewSelect(ra.NewScan("TOKEN", "T1"), ra.And(
		ra.Eq(ra.Col(ra.C("T1", "STRING")), ra.Const(relstore.String("Boston"))),
		ra.Eq(ra.Col(ra.C("T1", "LABEL")), ra.Const(relstore.String("B-ORG"))),
	))
	persons := ra.NewSelect(ra.NewScan("TOKEN", "T2"),
		ra.Eq(ra.Col(ra.C("T2", "LABEL")), ra.Const(relstore.String("B-PER"))))
	return ra.NewProject(
		ra.NewJoin(boston, persons,
			[]ra.EquiCond{{Left: ra.C("T1", "DOC_ID"), Right: ra.C("T2", "DOC_ID")}}, nil),
		ra.C("T2", "STRING"),
	)
}

// TestViewJoinUnderDeletions drives a join view with batches of pure
// tuple deletions — rows leaving the base relation outright, not label
// flips — until the relation empties, checking the maintained result
// against a from-scratch evaluation after every batch. Deletions shrink
// both join sides and must cancel previously matched pairs exactly.
func TestViewJoinUnderDeletions(t *testing.T) {
	db, tok, ids := buildTokenDB(64, 21)
	bound, err := ra.Bind(db, selfJoinPlan())
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for len(ids) > 0 {
		d := NewBaseDelta()
		for f := 0; f < 5 && len(ids) > 0; f++ {
			ids = deleteRow(rng, tok, ids, d)
		}
		view.Apply(d)
		full, err := ra.Eval(bound)
		if err != nil {
			t.Fatal(err)
		}
		if !view.Result().Equal(full) {
			t.Fatalf("after %d deletions view diverged\nview: %v\nfull: %v",
				64-len(ids), dump(view.Result()), dump(full))
		}
	}
	if view.Result().Len() != 0 {
		t.Errorf("empty relation left a non-empty join view: %v", dump(view.Result()))
	}
}

// TestViewJoinMixedDeletesAndFlips interleaves deletions with label flips
// in the same delta batches, the regime an online store would produce.
func TestViewJoinMixedDeletesAndFlips(t *testing.T) {
	db, tok, ids := buildTokenDB(64, 23)
	bound, err := ra.Bind(db, selfJoinPlan())
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	for b := 0; b < 15; b++ {
		d := NewBaseDelta()
		for f := 0; f < 3; f++ {
			flipLabel(rng, tok, ids, d)
		}
		if len(ids) > 8 {
			ids = deleteRow(rng, tok, ids, d)
		}
		view.Apply(d)
		full, err := ra.Eval(bound)
		if err != nil {
			t.Fatal(err)
		}
		if !view.Result().Equal(full) {
			t.Fatalf("batch %d: view diverged\nview: %v\nfull: %v",
				b, dump(view.Result()), dump(full))
		}
	}
}

// TestViewGroupAggUnderDeletions checks grouped-aggregate maintenance
// when group populations shrink to empty via pure deletions (groups must
// vanish, MIN/MAX must re-derive from survivors).
func TestViewGroupAggUnderDeletions(t *testing.T) {
	db, tok, ids := buildTokenDB(48, 25)
	p := ra.NewGroupAgg(
		ra.NewScan("TOKEN", "T"),
		[]ra.ColRef{ra.C("T", "DOC_ID")},
		ra.Agg{Fn: ra.FnCount, As: "N"},
		ra.Agg{Fn: ra.FnMin, Arg: ra.C("T", "TOK_ID"), As: "LO"},
		ra.Agg{Fn: ra.FnMax, Arg: ra.C("T", "TOK_ID"), As: "HI"},
	)
	bound, err := ra.Bind(db, p)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	for len(ids) > 0 {
		d := NewBaseDelta()
		for f := 0; f < 4 && len(ids) > 0; f++ {
			ids = deleteRow(rng, tok, ids, d)
		}
		view.Apply(d)
		full, err := ra.Eval(bound)
		if err != nil {
			t.Fatal(err)
		}
		if !view.Result().Equal(full) {
			t.Fatalf("with %d rows left view diverged\nview: %v\nfull: %v",
				len(ids), dump(view.Result()), dump(full))
		}
	}
	if view.Result().Len() != 0 {
		t.Errorf("empty relation left non-empty aggregate view: %v", dump(view.Result()))
	}
}

// TestViewLongRandomStream is a heavier randomized soak across all plan
// shapes at once.
func TestViewLongRandomStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	plans := []ra.Plan{
		perSelect(),
		ra.NewProject(perSelect(), ra.C("T", "STRING")),
		ra.NewGroupAgg(perSelect(), nil, ra.Agg{Fn: ra.FnCount, As: "CNT"}),
	}
	for i, p := range plans {
		checkAgainstFullEval(t, p, int64(100+i), 128, 60, 7)
	}
}
