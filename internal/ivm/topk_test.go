package ivm

import (
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// TestViewOrderLimit checks the incrementally maintained per-world top-k
// against full re-evaluation under random label flips — the oracle that
// covers entry, exit, and re-entry of tuples as the bounded buffer
// churns.
func TestViewOrderLimit(t *testing.T) {
	p := ra.NewOrderLimit(
		ra.NewProject(perSelect(), ra.C("T", "STRING")),
		[]ra.SortKey{{Col: ra.C("T", "STRING")}}, 3)
	checkAgainstFullEval(t, p, 11, 64, 25, 5)
}

// TestViewOrderLimitDescMultiKey adds a descending primary key, a
// secondary key, and a limit that clips inside multiplicities.
func TestViewOrderLimitDescMultiKey(t *testing.T) {
	p := ra.NewOrderLimit(
		ra.NewProject(ra.NewScan("TOKEN", "T"), ra.C("T", "LABEL"), ra.C("T", "STRING")),
		[]ra.SortKey{{Col: ra.C("T", "LABEL"), Desc: true}, {Col: ra.C("T", "STRING")}}, 7)
	checkAgainstFullEval(t, p, 12, 48, 20, 4)
}

// TestViewOrderLimitOverGroupAgg maintains a ranked aggregate — the
// "top 2 documents by token count" shape — where deltas arrive as
// −old/+new group rows rather than base tuples.
func TestViewOrderLimitOverGroupAgg(t *testing.T) {
	counts := ra.NewGroupAgg(
		ra.NewScan("TOKEN", "T"),
		[]ra.ColRef{ra.C("T", "DOC_ID")},
		ra.Agg{Fn: ra.FnCountIf,
			Pred: ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER"))), As: "NPER"},
	)
	p := ra.NewOrderLimit(counts,
		[]ra.SortKey{{Col: ra.C("", "NPER"), Desc: true}, {Col: ra.C("T", "DOC_ID")}}, 2)
	checkAgainstFullEval(t, p, 13, 64, 25, 4)
}

// TestOrderLimitEntryExit drives the operator with hand-built deltas and
// asserts the exact entry/exit behavior of the bounded buffer: deleting
// a top-k row promotes its successor, and re-inserting demotes it again.
func TestOrderLimitEntryExit(t *testing.T) {
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
	))
	for i, s := range []string{"ada", "bob", "cyd", "dee"} {
		if _, err := tok.Insert(relstore.Tuple{relstore.Int(int64(i)), relstore.String(s)}); err != nil {
			t.Fatal(err)
		}
	}
	plan := ra.NewOrderLimit(
		ra.NewProject(ra.NewScan("TOKEN", "T"), ra.C("T", "STRING")),
		[]ra.SortKey{{Col: ra.C("T", "STRING")}}, 2)
	bound, err := ra.Bind(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	view, err := NewView(bound)
	if err != nil {
		t.Fatal(err)
	}
	has := func(want ...string) {
		t.Helper()
		res := view.Result()
		if int(res.Size()) != len(want) {
			t.Fatalf("size = %d, want %d (%v)", res.Size(), len(want), want)
		}
		for _, s := range want {
			if res.Count(relstore.Tuple{relstore.String(s)}.Key()) < 1 {
				t.Fatalf("missing %q in view result", s)
			}
		}
	}
	has("ada", "bob")

	// The deltas below never touch the stored relation: scan state is
	// only read at init, and the operator tree maintains itself purely
	// from the signed base deltas.
	del := func(s string, n int64) BaseDelta {
		d := NewBaseDelta()
		d.Add("TOKEN", relstore.Tuple{relstore.Int(99), relstore.String(s)}, n)
		return d
	}

	// "ada" leaves: "cyd" enters the top 2. The emitted delta must be
	// exactly −ada +cyd.
	diff := view.Apply(del("ada", -1))
	has("bob", "cyd")
	if diff.Count(relstore.Tuple{relstore.String("ada")}.Key()) != -1 ||
		diff.Count(relstore.Tuple{relstore.String("cyd")}.Key()) != 1 || diff.Len() != 2 {
		t.Fatalf("exit delta = %v", diff.Rows())
	}

	// "ada" returns: "cyd" falls back out.
	diff = view.Apply(del("ada", 1))
	has("ada", "bob")
	if diff.Count(relstore.Tuple{relstore.String("cyd")}.Key()) != -1 ||
		diff.Count(relstore.Tuple{relstore.String("ada")}.Key()) != 1 || diff.Len() != 2 {
		t.Fatalf("re-entry delta = %v", diff.Rows())
	}

	// A no-op delta far below the boundary emits nothing.
	diff = view.Apply(del("zzz", 1))
	has("ada", "bob")
	if diff.Len() != 0 {
		t.Fatalf("below-boundary delta = %v, want empty", diff.Rows())
	}

	// Duplicate copies count toward the limit: a second "ada" evicts
	// "bob" entirely.
	diff = view.Apply(del("ada", 1))
	res := view.Result()
	if res.Count(relstore.Tuple{relstore.String("ada")}.Key()) != 2 || res.Size() != 2 {
		t.Fatalf("multiset clip = %v", res.Rows())
	}
	if diff.Count(relstore.Tuple{relstore.String("bob")}.Key()) != -1 {
		t.Fatalf("duplicate-entry delta = %v", diff.Rows())
	}
}
