package ivm

import (
	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// unionOp is stateless: δ(L ∪ R) = δL + δR under bag-union semantics, so
// both input streams pass straight through.
type unionOp struct {
	b           *ra.Bound
	left, right op
}

func (o *unionOp) owned() bool { return o.left.owned() && o.right.owned() }

func (o *unionOp) init(emit emitFn) error {
	if err := o.left.init(emit); err != nil {
		return err
	}
	return o.right.init(emit)
}

func (o *unionOp) apply(d BaseDelta, emit emitFn) {
	o.left.apply(d, emit)
	o.right.apply(d, emit)
}

// diffOp maintains both input bags because monus (max(0, l−r)) is not
// linear: the output change at a key depends on the absolute input
// multiplicities, not just their deltas. Each streamed input item is
// applied to the maintained state immediately and the resulting output
// change emitted; summed per key the per-item emissions telescope to the
// exact batch difference, so no input buffering is needed even when one
// key's changes arrive split across many emissions.
type diffOp struct {
	b           *ra.Bound
	left, right op
	ls, rs      *ra.Bag
	kbuf        []byte
}

func (o *diffOp) owned() bool { return o.left.owned() && o.right.owned() }

func monus(l, r int64) int64 {
	if l > r {
		return l - r
	}
	return 0
}

// change folds one signed input item into the maintained side states and
// emits the induced output change.
func (o *diffOp) change(t relstore.Tuple, dl, dr int64, clone bool, emit emitFn) {
	o.kbuf = t.AppendKey(o.kbuf[:0])
	l, r := o.ls.CountBytes(o.kbuf), o.rs.CountBytes(o.kbuf)
	oldN := monus(l, r)
	newN := monus(l+dl, r+dr)
	if dl != 0 {
		o.ls.AddKeyedBytes(o.kbuf, t, dl, clone)
	}
	if dr != 0 {
		o.rs.AddKeyedBytes(o.kbuf, t, dr, clone)
	}
	if diff := newN - oldN; diff != 0 {
		emit(t, diff)
	}
}

func (o *diffOp) init(emit emitFn) error {
	o.ls, o.rs = ra.NewBag(o.b.Schema), ra.NewBag(o.b.Schema)
	cloneL, cloneR := !o.left.owned(), !o.right.owned()
	// Initialization is delta application against empty state: left items
	// raise the output, right items emit corrections where they overlap.
	if err := o.left.init(func(t relstore.Tuple, n int64) {
		o.change(t, n, 0, cloneL, emit)
	}); err != nil {
		return err
	}
	return o.right.init(func(t relstore.Tuple, n int64) {
		o.change(t, 0, n, cloneR, emit)
	})
}

func (o *diffOp) apply(d BaseDelta, emit emitFn) {
	cloneL, cloneR := !o.left.owned(), !o.right.owned()
	o.left.apply(d, func(t relstore.Tuple, n int64) {
		o.change(t, n, 0, cloneL, emit)
	})
	o.right.apply(d, func(t relstore.Tuple, n int64) {
		o.change(t, 0, n, cloneR, emit)
	})
}

// distinctOp maintains its input bag; the output toggles between 0 and 1
// as a key's input multiplicity crosses zero. Toggles are computed per
// streamed item, so opposite-signed split emissions cancel exactly.
type distinctOp struct {
	b     *ra.Bound
	child op
	state *ra.Bag
	kbuf  []byte
}

func (o *distinctOp) owned() bool { return o.child.owned() }

func (o *distinctOp) toggle(t relstore.Tuple, n int64, clone bool, emit emitFn) {
	if n == 0 {
		return
	}
	o.kbuf = t.AppendKey(o.kbuf[:0])
	c := o.state.CountBytes(o.kbuf)
	before, after := c > 0, c+n > 0
	o.state.AddKeyedBytes(o.kbuf, t, n, clone)
	switch {
	case !before && after:
		emit(t, 1)
	case before && !after:
		emit(t, -1)
	}
}

func (o *distinctOp) init(emit emitFn) error {
	o.state = ra.NewBag(o.b.Schema)
	clone := !o.child.owned()
	return o.child.init(func(t relstore.Tuple, n int64) {
		o.toggle(t, n, clone, emit)
	})
}

func (o *distinctOp) apply(d BaseDelta, emit emitFn) {
	clone := !o.child.owned()
	o.child.apply(d, func(t relstore.Tuple, n int64) {
		o.toggle(t, n, clone, emit)
	})
}
