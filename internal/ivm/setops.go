package ivm

import (
	"factordb/internal/ra"
)

// unionOp is stateless: δ(L ∪ R) = δL + δR under bag-union semantics.
type unionOp struct {
	b           *ra.Bound
	left, right op
}

func (o *unionOp) init() (*ra.Bag, error) {
	l, err := o.left.init()
	if err != nil {
		return nil, err
	}
	r, err := o.right.init()
	if err != nil {
		return nil, err
	}
	out := ra.NewBag(o.b.Schema)
	out.AddBag(l, 1)
	out.AddBag(r, 1)
	return out, nil
}

func (o *unionOp) apply(d BaseDelta) *ra.Bag {
	out := ra.NewBag(o.b.Schema)
	out.AddBag(o.left.apply(d), 1)
	out.AddBag(o.right.apply(d), 1)
	return out
}

// diffOp maintains both input bags because monus (max(0, l−r)) is not
// linear: the output change at a key depends on the absolute input
// multiplicities, not just their deltas.
type diffOp struct {
	b           *ra.Bound
	left, right op
	ls, rs      *ra.Bag
}

func (o *diffOp) init() (*ra.Bag, error) {
	l, err := o.left.init()
	if err != nil {
		return nil, err
	}
	r, err := o.right.init()
	if err != nil {
		return nil, err
	}
	o.ls, o.rs = l, r
	out := ra.NewBag(o.b.Schema)
	l.Each(func(k string, row *ra.BagRow) bool {
		if n := row.N - r.Count(k); n > 0 {
			out.AddKeyed(k, row.Tuple, n)
		}
		return true
	})
	return out, nil
}

func monus(l, r int64) int64 {
	if l > r {
		return l - r
	}
	return 0
}

func (o *diffOp) apply(d BaseDelta) *ra.Bag {
	dl := o.left.apply(d)
	dr := o.right.apply(d)
	out := ra.NewBag(o.b.Schema)
	// Affected keys: anything in either delta.
	emit := func(k string, row *ra.BagRow, dln, drn int64) {
		oldN := monus(o.ls.Count(k), o.rs.Count(k))
		newN := monus(o.ls.Count(k)+dln, o.rs.Count(k)+drn)
		if diff := newN - oldN; diff != 0 {
			out.AddKeyed(k, row.Tuple, diff)
		}
	}
	seen := make(map[string]struct{})
	dl.Each(func(k string, row *ra.BagRow) bool {
		seen[k] = struct{}{}
		emit(k, row, row.N, dr.Count(k))
		return true
	})
	dr.Each(func(k string, row *ra.BagRow) bool {
		if _, done := seen[k]; !done {
			emit(k, row, 0, row.N)
		}
		return true
	})
	o.ls.AddBag(dl, 1)
	o.rs.AddBag(dr, 1)
	return out
}

// distinctOp maintains its input bag; the output toggles between 0 and 1
// as a key's input multiplicity crosses zero.
type distinctOp struct {
	b     *ra.Bound
	child op
	state *ra.Bag
}

func (o *distinctOp) init() (*ra.Bag, error) {
	in, err := o.child.init()
	if err != nil {
		return nil, err
	}
	o.state = in
	out := ra.NewBag(o.b.Schema)
	in.Each(func(k string, row *ra.BagRow) bool {
		if row.N > 0 {
			out.AddKeyed(k, row.Tuple, 1)
		}
		return true
	})
	return out, nil
}

func (o *distinctOp) apply(d BaseDelta) *ra.Bag {
	din := o.child.apply(d)
	out := ra.NewBag(o.b.Schema)
	din.Each(func(k string, row *ra.BagRow) bool {
		before := o.state.Count(k) > 0
		after := o.state.Count(k)+row.N > 0
		switch {
		case !before && after:
			out.AddKeyed(k, row.Tuple, 1)
		case before && !after:
			out.AddKeyed(k, row.Tuple, -1)
		}
		return true
	})
	o.state.AddBag(din, 1)
	return out
}
