package ivm

import (
	"math/rand"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// graphPlans builds a family of plans sharing a selection prefix over
// TOKEN: a projection, a distinct projection, and a grouped count all on
// top of the same Select(Scan) subtree, plus one unrelated plan.
func graphPlans() (shared []ra.Plan, unrelated ra.Plan) {
	persons := func() ra.Plan {
		return ra.NewSelect(ra.NewScan("TOKEN", "T"),
			ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER"))))
	}
	shared = []ra.Plan{
		ra.NewProject(persons(), ra.C("T", "STRING")),
		ra.NewDistinct(ra.NewProject(persons(), ra.C("T", "DOC_ID"))),
		ra.NewGroupAgg(persons(), []ra.ColRef{ra.C("T", "DOC_ID")},
			ra.Agg{Fn: ra.FnCount, As: "N"}),
	}
	unrelated = ra.NewProject(
		ra.NewSelect(ra.NewScan("TOKEN", "T"),
			ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-ORG")))),
		ra.C("T", "STRING"))
	return shared, unrelated
}

// TestGraphSharesSubtreesAndStaysExact is the core oracle property of the
// shared graph: several views mounted over a common prefix must track a
// from-scratch evaluation through random delta batches, while physically
// sharing the prefix operators.
func TestGraphSharesSubtreesAndStaysExact(t *testing.T) {
	db, tok, ids := buildTokenDB(200, 42)
	g := NewGraph()
	plans, _ := graphPlans()

	var views []*View
	var bounds []*ra.Bound
	for _, p := range plans {
		b, err := ra.Bind(db, ra.Canonicalize(p))
		if err != nil {
			t.Fatal(err)
		}
		v, err := g.Mount(b)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
		bounds = append(bounds, b)
	}

	// Private node counts: 3 + 4 + 3 = 10 operators; the shared graph
	// needs only 2 (scan, select) + 1 + 2 + 2 = 7.
	if g.Nodes() >= 10 {
		t.Errorf("graph holds %d nodes — no sharing happened", g.Nodes())
	}
	// A hit lands on the highest shared node only (recursion stops there):
	// one per later view reusing the Select(Scan) prefix.
	if g.SubtreeHits() < 2 {
		t.Errorf("subtree hits = %d, want >= 2 (prefix reused by two later views)", g.SubtreeHits())
	}

	rng := rand.New(rand.NewSource(43))
	for batch := 0; batch < 30; batch++ {
		d := NewBaseDelta()
		for f := 0; f < 5; f++ {
			flipLabel(rng, tok, ids, d)
		}
		g.NextRound()
		for i, v := range views {
			v.Apply(d)
			full, err := ra.Eval(bounds[i])
			if err != nil {
				t.Fatal(err)
			}
			if !v.Result().Equal(full) {
				t.Fatalf("batch %d view %d diverged from full evaluation", batch, i)
			}
		}
	}
}

// TestGraphExactViewSharing mounts the same plan twice: the root operator
// is shared (refcounted), both views stay exact, and unmounting one keeps
// the other alive.
func TestGraphExactViewSharing(t *testing.T) {
	db, tok, ids := buildTokenDB(120, 7)
	g := NewGraph()
	plans, _ := graphPlans()
	b1, err := ra.Bind(db, ra.Canonicalize(plans[0]))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ra.Bind(db, ra.Canonicalize(plans[0]))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := g.Mount(b1)
	if err != nil {
		t.Fatal(err)
	}
	nodesAfterFirst := g.Nodes()
	v2, err := g.Mount(b2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != nodesAfterFirst {
		t.Errorf("mounting an identical plan grew the graph: %d -> %d", nodesAfterFirst, g.Nodes())
	}

	rng := rand.New(rand.NewSource(8))
	step := func() {
		d := NewBaseDelta()
		for f := 0; f < 4; f++ {
			flipLabel(rng, tok, ids, d)
		}
		g.NextRound()
		v1.Apply(d)
		if v2 != nil {
			v2.Apply(d)
		}
	}
	for i := 0; i < 10; i++ {
		step()
	}
	if !v1.Result().Equal(v2.Result()) {
		t.Fatal("twin views over one shared root diverged")
	}

	g.Unmount(v2)
	v2 = nil
	if g.Nodes() != nodesAfterFirst {
		t.Errorf("unmounting one of two twins evicted shared nodes: %d nodes", g.Nodes())
	}
	for i := 0; i < 10; i++ {
		step()
	}
	full, err := ra.Eval(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Result().Equal(full) {
		t.Fatal("surviving twin diverged after its sibling unmounted")
	}

	g.Unmount(v1)
	if g.Nodes() != 0 {
		t.Errorf("graph not empty after final unmount: %d nodes", g.Nodes())
	}
}

// TestGraphMidStreamMount mounts a second view after the world has
// drifted: the reused prefix re-initializes from the current base, and
// both the newcomer and the veteran stay exact afterwards.
func TestGraphMidStreamMount(t *testing.T) {
	db, tok, ids := buildTokenDB(150, 11)
	g := NewGraph()
	plans, unrelated := graphPlans()
	b1, err := ra.Bind(db, ra.Canonicalize(plans[0]))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := g.Mount(b1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(12))
	apply := func(views ...*View) {
		d := NewBaseDelta()
		for f := 0; f < 5; f++ {
			flipLabel(rng, tok, ids, d)
		}
		g.NextRound()
		for _, v := range views {
			v.Apply(d)
		}
	}
	for i := 0; i < 15; i++ {
		apply(v1)
	}

	// Late arrivals: one sharing the prefix, one unrelated.
	b2, err := ra.Bind(db, ra.Canonicalize(plans[2]))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g.Mount(b2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := ra.Bind(db, ra.Canonicalize(unrelated))
	if err != nil {
		t.Fatal(err)
	}
	v3, err := g.Mount(b3)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 15; i++ {
		apply(v1, v2, v3)
		for j, pair := range []struct {
			v *View
			b *ra.Bound
		}{{v1, b1}, {v2, b2}, {v3, b3}} {
			full, err := ra.Eval(pair.b)
			if err != nil {
				t.Fatal(err)
			}
			if !pair.v.Result().Equal(full) {
				t.Fatalf("view %d diverged after mid-stream mount", j)
			}
		}
	}
}
