package world

import (
	"sync"
	"testing"

	"factordb/internal/relstore"
)

func TestEpochAdvancesPerDrain(t *testing.T) {
	log, id := setup(t)
	if log.Epoch() != 0 {
		t.Fatalf("fresh log epoch = %d, want 0", log.Epoch())
	}
	log.Drain()
	if log.Epoch() != 1 {
		t.Fatalf("epoch after one drain = %d, want 1", log.Epoch())
	}
	ref := FieldRef{Rel: "TOKEN", Row: id, Col: 2}
	if err := log.SetField(ref, relstore.String("B-ORG")); err != nil {
		t.Fatal(err)
	}
	// Writes accumulate within an epoch; only Drain closes it.
	if log.Epoch() != 1 {
		t.Fatalf("epoch moved on SetField: %d", log.Epoch())
	}
	log.Drain()
	if log.Epoch() != 2 {
		t.Fatalf("epoch after two drains = %d, want 2", log.Epoch())
	}
}

func TestCellEmptyThenPublish(t *testing.T) {
	var c Cell[int]
	if _, ok := c.Load(); ok {
		t.Fatal("empty cell reported a snapshot")
	}
	c.Publish(3, 42)
	s, ok := c.Load()
	if !ok || s.Epoch != 3 || s.State != 42 {
		t.Fatalf("Load = %+v, %v", s, ok)
	}
	c.Publish(4, 43)
	s, _ = c.Load()
	if s.Epoch != 4 || s.State != 43 {
		t.Fatalf("latest snapshot not returned: %+v", s)
	}
}

// TestCellConcurrentReaders hammers one writer against many readers and
// checks every observed snapshot is internally consistent (state always
// equals its epoch here) and epochs never go backwards per reader.
func TestCellConcurrentReaders(t *testing.T) {
	var c Cell[int64]
	const epochs = 5000
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for i := 0; i < epochs; i++ {
				s, ok := c.Load()
				if !ok {
					continue
				}
				if s.State != s.Epoch {
					t.Errorf("torn snapshot: epoch %d state %d", s.Epoch, s.State)
					return
				}
				if s.Epoch < last {
					t.Errorf("epoch went backwards: %d after %d", s.Epoch, last)
					return
				}
				last = s.Epoch
			}
		}()
	}
	for e := int64(0); e < epochs; e++ {
		c.Publish(e, e)
	}
	wg.Wait()
}
