// Package world bridges the MCMC sampler and the relational store: the
// database always holds a single possible world (Section 3 of the paper),
// and as inference mutates hidden fields the change log records the
// removed and added tuples — the paper's auxiliary Δ⁻ ("deleted") and Δ⁺
// ("added") tables — which the materialized-view query evaluator consumes.
package world

import (
	"fmt"

	"factordb/internal/ivm"
	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// FieldRef identifies one uncertain field of the database: a (relation,
// row, column) coordinate whose value is a hidden random variable.
type FieldRef struct {
	Rel string
	Row relstore.RowID
	Col int
}

// ChangeLog applies field updates to the store and accumulates the net
// signed tuple delta since the last Drain.
type ChangeLog struct {
	db    *relstore.DB
	delta ivm.BaseDelta

	updates int64 // total field updates applied through the log
	epoch   int64 // number of Drains so far
}

// NewChangeLog wraps a database.
func NewChangeLog(db *relstore.DB) *ChangeLog {
	return &ChangeLog{db: db, delta: ivm.NewBaseDelta()}
}

// DB returns the underlying store.
func (l *ChangeLog) DB() *relstore.DB { return l.db }

// SetField writes v into the referenced field, recording the old tuple in
// Δ⁻ and the new tuple in Δ⁺. Writing the current value is a no-op.
func (l *ChangeLog) SetField(ref FieldRef, v relstore.Value) error {
	rel, err := l.db.Relation(ref.Rel)
	if err != nil {
		return err
	}
	cur, ok := rel.Get(ref.Row)
	if !ok {
		return fmt.Errorf("world: relation %q row %d: %w", ref.Rel, ref.Row, relstore.ErrNotFound)
	}
	if ref.Col < 0 || ref.Col >= len(cur) {
		return fmt.Errorf("world: column %d out of range in %q", ref.Col, ref.Rel)
	}
	if cur[ref.Col].Equal(v) {
		return nil
	}
	old, err := rel.UpdateCol(ref.Row, ref.Col, v)
	if err != nil {
		return err
	}
	now, _ := rel.Get(ref.Row)
	// Both tuples go into the delta as-is: the relation replaces rows on
	// update (never mutates them in place), so old and now stay stable for
	// the life of the delta without defensive copies.
	l.delta.Add(ref.Rel, old, -1)
	l.delta.Add(ref.Rel, now, 1)
	l.updates++
	return nil
}

// GetField reads the referenced field.
func (l *ChangeLog) GetField(ref FieldRef) (relstore.Value, error) {
	rel, err := l.db.Relation(ref.Rel)
	if err != nil {
		return relstore.Value{}, err
	}
	t, ok := rel.Get(ref.Row)
	if !ok {
		return relstore.Value{}, fmt.Errorf("world: relation %q row %d: %w", ref.Rel, ref.Row, relstore.ErrNotFound)
	}
	if ref.Col < 0 || ref.Col >= len(t) {
		return relstore.Value{}, fmt.Errorf("world: column %d out of range in %q", ref.Col, ref.Rel)
	}
	return t[ref.Col], nil
}

// Pending reports whether any net changes have accumulated.
func (l *ChangeLog) Pending() bool { return !l.delta.Empty() }

// Updates returns the total number of effective field updates applied.
func (l *ChangeLog) Updates() int64 { return l.updates }

// Drain returns the accumulated signed delta and resets the log, closing
// the current epoch. This is the "cleaning and refreshing of the tables
// between deterministic query executions" step of Section 4.2.
func (l *ChangeLog) Drain() ivm.BaseDelta {
	d := l.delta
	l.delta = ivm.NewBaseDelta()
	l.epoch++
	return d
}

// Epoch returns the number of completed epochs: every Drain closes one.
// Between two Drains the world passes through many intermediate states;
// an epoch boundary is the only place where the store, the delta tables
// and any maintained views are simultaneously consistent, which is what
// makes it the unit of snapshot publication (see Cell).
func (l *ChangeLog) Epoch() int64 { return l.epoch }

// DeltaTables renders the pending delta for one relation as the paper's
// two auxiliary tables: deleted (Δ⁻) holds tuples with negative net
// counts, added (Δ⁺) those with positive counts. Intended for display and
// debugging; Apply consumers use the signed form directly.
func (l *ChangeLog) DeltaTables(rel string) (deleted, added []relstore.Tuple) {
	bag, ok := l.delta[rel]
	if !ok {
		return nil, nil
	}
	bag.Each(func(_ string, r *ra.BagRow) bool {
		n := r.N
		for ; n < 0; n++ {
			deleted = append(deleted, r.Tuple)
		}
		for ; n > 0; n-- {
			added = append(added, r.Tuple)
		}
		return true
	})
	return deleted, added
}
