package world

import (
	"fmt"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// OpKind enumerates the concrete mutation steps a resolved DML statement
// decomposes into.
type OpKind uint8

// Op kinds.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one concrete, world-independent mutation step: row identities and
// values fully resolved, ready to replay on any clone of the world it was
// resolved against. This is the unit the serving engine fans out — the
// predicate of an UPDATE or DELETE is evaluated once (ResolveMutation)
// and every chain applies the identical op list, so the chains' worlds
// never diverge on evidence even though their hidden fields differ.
type Op struct {
	Kind OpKind
	Rel  string
	Row  relstore.RowID   // OpUpdate, OpDelete
	Cols []int            // OpUpdate: column positions being assigned
	Vals []relstore.Value // OpUpdate: parallel to Cols; OpInsert: the full tuple in schema order
}

// ResolveMutation evaluates a typed DML statement against one concrete
// world, returning the row-level ops it decomposes into. Nothing is
// applied: resolution validates everything that can fail (schema
// conformance, column names, predicate types) so that a later ApplyOps on
// any clone sharing this world's row identities cannot.
//
// UPDATE and DELETE predicates are evaluated against the world as passed;
// if a predicate reads a hidden (sampled) column the matched row set
// reflects that world's current sample. Predicates over evidence columns
// — the intended write workload — are world-independent, since evidence
// is identical across all clones.
func ResolveMutation(db *relstore.DB, mut ra.Mutation) ([]Op, error) {
	rel, err := db.Relation(mut.Table())
	if err != nil {
		return nil, err
	}
	switch m := mut.(type) {
	case *ra.Insert:
		return resolveInsert(rel, m)
	case *ra.Update:
		return resolveUpdate(rel, m)
	case *ra.Delete:
		return resolveDelete(rel, m)
	}
	return nil, fmt.Errorf("world: unknown mutation type %T", mut)
}

func resolveInsert(rel *relstore.Relation, m *ra.Insert) ([]Op, error) {
	sch := rel.Schema()
	// Map statement column order onto schema positions. The store has no
	// column defaults, so an explicit column list must cover the schema.
	perm := make([]int, len(sch.Cols)) // schema position -> row position
	if len(m.Columns) == 0 {
		for i := range perm {
			perm[i] = i
		}
	} else {
		if len(m.Columns) != len(sch.Cols) {
			return nil, fmt.Errorf("world: INSERT INTO %s names %d columns, schema has %d (no defaults)",
				sch.Name, len(m.Columns), len(sch.Cols))
		}
		seen := make(map[string]bool, len(m.Columns))
		for pos, name := range m.Columns {
			ci := sch.ColIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("world: INSERT INTO %s: no column %q", sch.Name, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("world: INSERT INTO %s: duplicate column %q", sch.Name, name)
			}
			seen[name] = true
			perm[ci] = pos
		}
	}
	ops := make([]Op, 0, len(m.Rows))
	for r, row := range m.Rows {
		if len(row) != len(sch.Cols) {
			return nil, fmt.Errorf("world: INSERT INTO %s: row %d has %d values, want %d",
				sch.Name, r+1, len(row), len(sch.Cols))
		}
		t := make(relstore.Tuple, len(sch.Cols))
		for ci := range sch.Cols {
			t[ci] = row[perm[ci]]
		}
		if err := sch.Validate(t); err != nil {
			return nil, fmt.Errorf("world: INSERT INTO %s: row %d: %w", sch.Name, r+1, err)
		}
		ops = append(ops, Op{Kind: OpInsert, Rel: sch.Name, Vals: t})
	}
	return ops, nil
}

func resolveUpdate(rel *relstore.Relation, m *ra.Update) ([]Op, error) {
	sch := rel.Schema()
	cols := make([]int, len(m.Set))
	vals := make([]relstore.Value, len(m.Set))
	seen := make(map[string]bool, len(m.Set))
	for i, s := range m.Set {
		ci := sch.ColIndex(s.Col)
		if ci < 0 {
			return nil, fmt.Errorf("world: UPDATE %s: no column %q", sch.Name, s.Col)
		}
		if seen[s.Col] {
			return nil, fmt.Errorf("world: UPDATE %s: column %q assigned twice", sch.Name, s.Col)
		}
		seen[s.Col] = true
		want, got := sch.Cols[ci].Type, s.Val.Kind()
		if got != want && !(want == relstore.TFloat && got == relstore.TInt) {
			return nil, fmt.Errorf("world: UPDATE %s: column %q takes %v, got %v", sch.Name, s.Col, want, got)
		}
		cols[i] = ci
		vals[i] = s.Val
	}
	var ops []Op
	err := matchRows(rel, m.Alias, m.Where, func(id relstore.RowID) {
		ops = append(ops, Op{Kind: OpUpdate, Rel: sch.Name, Row: id, Cols: cols, Vals: vals})
	})
	return ops, err
}

func resolveDelete(rel *relstore.Relation, m *ra.Delete) ([]Op, error) {
	var ops []Op
	err := matchRows(rel, m.Alias, m.Where, func(id relstore.RowID) {
		ops = append(ops, Op{Kind: OpDelete, Rel: rel.Schema().Name, Row: id})
	})
	return ops, err
}

// matchRows calls fn for every row satisfying where (nil = all rows), in
// ascending RowID order so resolved op lists are deterministic.
func matchRows(rel *relstore.Relation, alias string, where ra.Expr, fn func(relstore.RowID)) error {
	sch := rel.Schema()
	if alias == "" {
		alias = sch.Name
	}
	var pred ra.BExpr
	if where != nil {
		rs := &ra.RowSchema{Cols: make([]ra.OutCol, len(sch.Cols))}
		for i, c := range sch.Cols {
			rs.Cols[i] = ra.OutCol{Ref: ra.C(alias, c.Name), Type: c.Type}
		}
		var err error
		pred, err = ra.BindPredicate(rs, where)
		if err != nil {
			return err
		}
	}
	rel.ScanSorted(func(id relstore.RowID, t relstore.Tuple) bool {
		if pred == nil || pred.Eval(t).AsBool() {
			fn(id)
		}
		return true
	})
	return nil
}

// ApplyOps replays a resolved op list through the change log, recording
// every removed tuple in Δ⁻ and every added tuple in Δ⁺ exactly as the
// sampler's field flips do — downstream view maintenance cannot tell a
// user write from an MCMC move. It returns the number of rows affected.
//
// Resolution already validated everything data-dependent, so an error
// here means the target world has diverged from the one the ops were
// resolved against — a caller bug, reported rather than papered over.
// Ops are applied in order; on error the prefix stays applied.
func (l *ChangeLog) ApplyOps(ops []Op) (int64, error) {
	var n int64
	for i, op := range ops {
		var err error
		switch op.Kind {
		case OpInsert:
			_, err = l.Insert(op.Rel, op.Vals)
		case OpUpdate:
			err = l.UpdateFields(FieldRef{Rel: op.Rel, Row: op.Row}, op.Cols, op.Vals)
		case OpDelete:
			err = l.DeleteRow(op.Rel, op.Row)
		default:
			err = fmt.Errorf("world: unknown op kind %v", op.Kind)
		}
		if err != nil {
			return n, fmt.Errorf("world: applying op %d/%d (%v on %s): %w", i+1, len(ops), op.Kind, op.Rel, err)
		}
		n++
	}
	return n, nil
}

// Insert appends a tuple to the named relation, recording it in Δ⁺. The
// assigned RowID is deterministic in the relation's insertion history, so
// clones receiving identical op streams assign identical ids.
func (l *ChangeLog) Insert(rel string, t relstore.Tuple) (relstore.RowID, error) {
	r, err := l.db.Relation(rel)
	if err != nil {
		return 0, err
	}
	id, err := r.Insert(t)
	if err != nil {
		return 0, err
	}
	now, _ := r.Get(id)
	l.delta.Add(rel, now.Clone(), 1)
	l.updates++
	return id, nil
}

// UpdateFields assigns several columns of one row at once, recording the
// old tuple in Δ⁻ and the new one in Δ⁺ (a no-op when nothing changes).
// ref.Col is ignored; cols carries the column positions.
func (l *ChangeLog) UpdateFields(ref FieldRef, cols []int, vals []relstore.Value) error {
	r, err := l.db.Relation(ref.Rel)
	if err != nil {
		return err
	}
	cur, ok := r.Get(ref.Row)
	if !ok {
		return fmt.Errorf("world: relation %q row %d: %w", ref.Rel, ref.Row, relstore.ErrNotFound)
	}
	next := cur.Clone()
	changed := false
	for i, ci := range cols {
		if ci < 0 || ci >= len(next) {
			return fmt.Errorf("world: column %d out of range in %q", ci, ref.Rel)
		}
		if !next[ci].Equal(vals[i]) {
			next[ci] = vals[i]
			changed = true
		}
	}
	if !changed {
		return nil
	}
	old, err := r.Update(ref.Row, next)
	if err != nil {
		return err
	}
	now, _ := r.Get(ref.Row)
	l.delta.Add(ref.Rel, old, -1)
	l.delta.Add(ref.Rel, now.Clone(), 1)
	l.updates++
	return nil
}

// DeleteRow removes one row, recording its last value in Δ⁻.
func (l *ChangeLog) DeleteRow(rel string, id relstore.RowID) error {
	r, err := l.db.Relation(rel)
	if err != nil {
		return err
	}
	old, err := r.Delete(id)
	if err != nil {
		return err
	}
	l.delta.Add(rel, old, -1)
	l.updates++
	return nil
}
