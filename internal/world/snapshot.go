package world

import "sync/atomic"

// Snapshot pairs an epoch number with a state value published at that
// epoch's boundary. The state must be treated as immutable by both sides
// once published.
type Snapshot[T any] struct {
	Epoch int64
	State T
}

// Cell is a single-writer, many-reader publication point for epoch-stamped
// snapshots. The walking goroutine that owns a world publishes a fresh
// immutable snapshot after each Drain; concurrent readers always observe a
// complete state from one epoch boundary — never a torn intermediate —
// while the chain keeps walking. Publication is a single atomic pointer
// store, so the walk never blocks on readers.
type Cell[T any] struct {
	p atomic.Pointer[Snapshot[T]]
}

// Publish installs a new snapshot. Only one goroutine may publish; the
// state must not be mutated afterwards.
func (c *Cell[T]) Publish(epoch int64, state T) {
	c.p.Store(&Snapshot[T]{Epoch: epoch, State: state})
}

// Load returns the most recently published snapshot, or ok=false if
// nothing has been published yet.
func (c *Cell[T]) Load() (s Snapshot[T], ok bool) {
	sp := c.p.Load()
	if sp == nil {
		return s, false
	}
	return *sp, true
}
