package world

import (
	"errors"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

func mutTestDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	rel := db.MustCreate(relstore.MustSchema("CITY",
		relstore.Column{Name: "ID", Type: relstore.TInt},
		relstore.Column{Name: "NAME", Type: relstore.TString},
		relstore.Column{Name: "POP", Type: relstore.TInt},
	))
	for i, r := range []struct {
		name string
		pop  int64
	}{{"Boston", 7}, {"Cambridge", 1}, {"Worcester", 2}} {
		if _, err := rel.Insert(relstore.Tuple{
			relstore.Int(int64(i)), relstore.String(r.name), relstore.Int(r.pop),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestResolveAndApplyUpdate(t *testing.T) {
	db := mutTestDB(t)
	mut := &ra.Update{
		TableName: "CITY",
		Set:       []ra.SetClause{{Col: "NAME", Val: relstore.String("Cantabrigia")}},
		Where:     ra.Eq(ra.Col(ra.C("", "NAME")), ra.Const(relstore.String("Cambridge"))),
	}
	ops, err := ResolveMutation(db, mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Kind != OpUpdate {
		t.Fatalf("ops = %+v, want one update", ops)
	}
	log := NewChangeLog(db)
	n, err := log.ApplyOps(ops)
	if err != nil || n != 1 {
		t.Fatalf("ApplyOps = (%d, %v), want (1, nil)", n, err)
	}
	// The delta records -old +new, exactly like a sampler flip.
	deleted, added := log.DeltaTables("CITY")
	if len(deleted) != 1 || len(added) != 1 {
		t.Fatalf("delta: %d deleted, %d added, want 1/1", len(deleted), len(added))
	}
	if deleted[0][1].AsString() != "Cambridge" || added[0][1].AsString() != "Cantabrigia" {
		t.Errorf("delta tuples: -%v +%v", deleted[0], added[0])
	}
	rel, _ := db.Relation("CITY")
	got, _ := rel.Get(1)
	if got[1].AsString() != "Cantabrigia" {
		t.Errorf("row 1 = %v", got)
	}
}

func TestResolveInsertDeleteAndDeterminism(t *testing.T) {
	db := mutTestDB(t)
	clone := db.Clone()

	ins := &ra.Insert{
		TableName: "CITY",
		Columns:   []string{"NAME", "POP", "ID"}, // any order, full coverage
		Rows:      [][]relstore.Value{{relstore.String("Springfield"), relstore.Int(3), relstore.Int(9)}},
	}
	del := &ra.Delete{
		TableName: "CITY",
		Alias:     "C",
		Where:     ra.Cmp(ra.OpLt, ra.Col(ra.C("C", "POP")), ra.Const(relstore.Int(3))),
	}

	apply := func(w *relstore.DB) *ChangeLog {
		log := NewChangeLog(w)
		for _, m := range []ra.Mutation{ins, del} {
			ops, err := ResolveMutation(w, m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := log.ApplyOps(ops); err != nil {
				t.Fatal(err)
			}
		}
		return log
	}
	apply(db)
	apply(clone)

	// Identical op streams must leave clones with identical worlds,
	// including the RowIDs of inserted tuples (what makes fan-out safe).
	check := func(w *relstore.DB) relstore.RowID {
		rel, _ := w.Relation("CITY")
		if rel.Len() != 2 {
			t.Fatalf("relation has %d rows, want 2 (Boston + Springfield)", rel.Len())
		}
		ids, err := rel.Lookup("NAME", relstore.String("Springfield"))
		if err != nil || len(ids) != 1 {
			t.Fatalf("Lookup Springfield = (%v, %v)", ids, err)
		}
		return ids[0]
	}
	if a, b := check(db), check(clone); a != b {
		t.Errorf("inserted RowID diverged across clones: %d vs %d", a, b)
	}
}

func TestResolveValidation(t *testing.T) {
	db := mutTestDB(t)
	cases := []struct {
		name string
		mut  ra.Mutation
	}{
		{"unknown relation", &ra.Delete{TableName: "NOPE"}},
		{"unknown set column", &ra.Update{TableName: "CITY", Set: []ra.SetClause{{Col: "NOPE", Val: relstore.Int(1)}}}},
		{"set type mismatch", &ra.Update{TableName: "CITY", Set: []ra.SetClause{{Col: "POP", Val: relstore.String("x")}}}},
		{"duplicate assignment", &ra.Update{TableName: "CITY", Set: []ra.SetClause{
			{Col: "POP", Val: relstore.Int(1)}, {Col: "POP", Val: relstore.Int(2)}}}},
		{"insert arity", &ra.Insert{TableName: "CITY", Rows: [][]relstore.Value{{relstore.Int(1)}}}},
		{"insert type", &ra.Insert{TableName: "CITY", Rows: [][]relstore.Value{
			{relstore.String("x"), relstore.String("y"), relstore.Int(1)}}}},
		{"insert partial columns", &ra.Insert{TableName: "CITY", Columns: []string{"NAME"},
			Rows: [][]relstore.Value{{relstore.String("x")}}}},
		{"predicate unknown column", &ra.Delete{TableName: "CITY",
			Where: ra.Eq(ra.Col(ra.C("", "NOPE")), ra.Const(relstore.Int(1)))}},
		{"predicate foreign alias", &ra.Delete{TableName: "CITY", Alias: "C",
			Where: ra.Eq(ra.Col(ra.C("D", "POP")), ra.Const(relstore.Int(1)))}},
	}
	for _, c := range cases {
		if _, err := ResolveMutation(db, c.mut); err == nil {
			t.Errorf("%s: resolved without error", c.name)
		}
	}
}

func TestUpdateFieldsNoopAndMissingRow(t *testing.T) {
	db := mutTestDB(t)
	log := NewChangeLog(db)

	// Assigning the current value records nothing.
	err := log.UpdateFields(FieldRef{Rel: "CITY", Row: 0}, []int{1}, []relstore.Value{relstore.String("Boston")})
	if err != nil {
		t.Fatal(err)
	}
	if log.Pending() || log.Updates() != 0 {
		t.Error("no-op update recorded a delta")
	}

	if err := log.DeleteRow("CITY", 0); err != nil {
		t.Fatal(err)
	}
	err = log.UpdateFields(FieldRef{Rel: "CITY", Row: 0}, []int{1}, []relstore.Value{relstore.String("X")})
	if !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("update of deleted row = %v, want ErrNotFound", err)
	}
	if err := log.DeleteRow("CITY", 0); !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
	// SetField on the deleted row surfaces the same sentinel — the MCMC
	// write-through path relies on it to skip vanished rows.
	err = log.SetField(FieldRef{Rel: "CITY", Row: 0, Col: 1}, relstore.String("Y"))
	if !errors.Is(err, relstore.ErrNotFound) {
		t.Errorf("SetField on deleted row = %v, want ErrNotFound", err)
	}
}
