package world

import (
	"testing"

	"factordb/internal/relstore"
)

func setup(t *testing.T) (*ChangeLog, relstore.RowID) {
	t.Helper()
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	id, err := tok.Insert(relstore.Tuple{relstore.Int(1), relstore.String("IBM"), relstore.String("O")})
	if err != nil {
		t.Fatal(err)
	}
	return NewChangeLog(db), id
}

func TestSetFieldRecordsDelta(t *testing.T) {
	log, id := setup(t)
	ref := FieldRef{Rel: "TOKEN", Row: id, Col: 2}
	if err := log.SetField(ref, relstore.String("B-ORG")); err != nil {
		t.Fatal(err)
	}
	if !log.Pending() {
		t.Fatal("expected pending changes")
	}
	deleted, added := log.DeltaTables("TOKEN")
	if len(deleted) != 1 || len(added) != 1 {
		t.Fatalf("delta tables: %d deleted, %d added", len(deleted), len(added))
	}
	if deleted[0][2].AsString() != "O" || added[0][2].AsString() != "B-ORG" {
		t.Errorf("delta contents wrong: -%v +%v", deleted[0], added[0])
	}
	// The store reflects the new world.
	v, err := log.GetField(ref)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "B-ORG" {
		t.Errorf("field = %q", v.AsString())
	}
}

func TestNoOpWriteProducesNoDelta(t *testing.T) {
	log, id := setup(t)
	ref := FieldRef{Rel: "TOKEN", Row: id, Col: 2}
	if err := log.SetField(ref, relstore.String("O")); err != nil {
		t.Fatal(err)
	}
	if log.Pending() {
		t.Error("no-op write produced a delta")
	}
	if log.Updates() != 0 {
		t.Errorf("Updates = %d", log.Updates())
	}
}

func TestFlipAndFlipBackCancels(t *testing.T) {
	log, id := setup(t)
	ref := FieldRef{Rel: "TOKEN", Row: id, Col: 2}
	log.SetField(ref, relstore.String("B-ORG"))
	log.SetField(ref, relstore.String("O"))
	if log.Pending() {
		t.Error("round-trip flip should cancel to an empty net delta")
	}
	if log.Updates() != 2 {
		t.Errorf("Updates = %d, want 2", log.Updates())
	}
}

func TestDrainResets(t *testing.T) {
	log, id := setup(t)
	ref := FieldRef{Rel: "TOKEN", Row: id, Col: 2}
	log.SetField(ref, relstore.String("B-ORG"))
	d := log.Drain()
	if d.Empty() {
		t.Error("drained delta should contain the change")
	}
	if log.Pending() {
		t.Error("log must be empty after Drain")
	}
	del, add := log.DeltaTables("TOKEN")
	if del != nil || add != nil {
		t.Error("DeltaTables after drain should be empty")
	}
}

func TestErrors(t *testing.T) {
	log, id := setup(t)
	if err := log.SetField(FieldRef{Rel: "NOPE", Row: id, Col: 2}, relstore.String("x")); err == nil {
		t.Error("unknown relation: want error")
	}
	if err := log.SetField(FieldRef{Rel: "TOKEN", Row: 999, Col: 2}, relstore.String("x")); err == nil {
		t.Error("unknown row: want error")
	}
	if err := log.SetField(FieldRef{Rel: "TOKEN", Row: id, Col: 99}, relstore.String("x")); err == nil {
		t.Error("bad column: want error")
	}
	if err := log.SetField(FieldRef{Rel: "TOKEN", Row: id, Col: 2}, relstore.Int(1)); err == nil {
		t.Error("type violation: want error")
	}
	if log.Pending() {
		t.Error("failed writes must not record deltas")
	}
	if _, err := log.GetField(FieldRef{Rel: "NOPE", Row: id, Col: 0}); err == nil {
		t.Error("GetField unknown relation: want error")
	}
	if _, err := log.GetField(FieldRef{Rel: "TOKEN", Row: 999, Col: 0}); err == nil {
		t.Error("GetField unknown row: want error")
	}
	if _, err := log.GetField(FieldRef{Rel: "TOKEN", Row: id, Col: 99}); err == nil {
		t.Error("GetField bad column: want error")
	}
}
