package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// SortKey is one ORDER BY key of an OrderLimit node.
type SortKey struct {
	Col  ColRef
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Col.String() + " DESC"
	}
	return k.Col.String() + " ASC"
}

// OrderLimit is the per-world top-k operator: within every sampled world
// it orders the child's rows by the sort keys and keeps the first Limit
// rows (multiplicities count toward the limit, matching SQL's LIMIT over
// a bag). Under sampling this yields MystiQ-style ranked-query semantics:
// a tuple's marginal becomes the probability that it ranks in the top k
// of a possible world. Ties on the sort keys break by the tuple's
// injective key encoding, so evaluation is deterministic.
type OrderLimit struct {
	Child Plan
	Keys  []SortKey
	Limit int64 // must be positive
}

// NewOrderLimit builds a per-world top-k node.
func NewOrderLimit(child Plan, keys []SortKey, limit int64) *OrderLimit {
	return &OrderLimit{Child: child, Keys: keys, Limit: limit}
}

func (*OrderLimit) plan() {}

func (o *OrderLimit) String() string {
	s := "OrderLimit["
	for i, k := range o.Keys {
		if i > 0 {
			s += ", "
		}
		s += k.String()
	}
	return s + fmt.Sprintf("; %d](%s)", o.Limit, o.Child)
}

// ResultOrder is one result-level sort key over the final probabilistic
// answer: either the marginal-probability pseudo-column P or an output
// column of the plan, identified by position.
type ResultOrder struct {
	ByProb bool // sort by the estimated marginal (the P pseudo-column)
	Index  int  // output column index when ByProb is false
	Desc   bool
}

// ResultSpec describes how the final probabilistic answer — tuples
// annotated with their estimated marginals — must be ordered and
// truncated before being returned to the client. It is produced by the
// SQL planner for clauses that cannot be lowered into the per-world plan
// (ORDER BY P references the cross-world estimate, which no single world
// can compute) and consumed by every result-assembly path: the facade's
// local modes and the serving engine's merge-at-read step.
//
// The zero spec means the default presentation: descending marginal
// with deterministic tie-breaks, no truncation. SQL LIMIT counts are
// always positive, so Limit <= 0 is the no-truncation state.
type ResultSpec struct {
	Order []ResultOrder
	Limit int64 // <= 0 when the query has no result-level LIMIT
}

// IsDefault reports whether the spec requests no reordering or truncation.
func (s ResultSpec) IsDefault() bool { return len(s.Order) == 0 && s.Limit <= 0 }

// TopKByProb reports whether the spec ranks by descending marginal with a
// positive limit — the shape that allows a serving engine to stop
// refining tuples that can no longer enter the top k.
func (s ResultSpec) TopKByProb() bool {
	return s.Limit > 0 && len(s.Order) > 0 && s.Order[0].ByProb && s.Order[0].Desc
}

// CompareTuples compares a and b on the indexed fields with per-key
// direction flags, returning -1, 0, or +1. Callers supply equal-length
// idx and desc slices (a bound OrderLimit's SortIdx/SortDesc).
func CompareTuples(a, b relstore.Tuple, idx []int, desc []bool) int {
	for i, j := range idx {
		av, bv := a[j], b[j]
		switch {
		case av.Less(bv):
			if desc[i] {
				return 1
			}
			return -1
		case bv.Less(av):
			if desc[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func bindOrderLimit(db *relstore.DB, n *OrderLimit) (*Bound, error) {
	child, err := Bind(db, n.Child)
	if err != nil {
		return nil, err
	}
	if n.Limit <= 0 {
		return nil, fmt.Errorf("ra: OrderLimit with non-positive limit %d", n.Limit)
	}
	if len(n.Keys) == 0 {
		return nil, fmt.Errorf("ra: OrderLimit with no sort keys")
	}
	b := &Bound{Kind: KOrderLimit, Schema: child.Schema, Source: n, Children: []*Bound{child}, Limit: n.Limit}
	for _, k := range n.Keys {
		j, err := child.Schema.Resolve(k.Col)
		if err != nil {
			return nil, fmt.Errorf("ra: ORDER BY %s: %w", k.Col, err)
		}
		b.SortIdx = append(b.SortIdx, j)
		b.SortDesc = append(b.SortDesc, k.Desc)
	}
	return b, nil
}
