package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"factordb/internal/relstore"
)

// Property-based tests of the signed-bag algebra, the foundation of the
// incremental view maintenance engine.

type bagOp struct {
	Val int8
	N   int8
}

func applyOps(ops []bagOp) *Bag {
	sch := &RowSchema{Cols: []OutCol{{Ref: C("", "x"), Type: relstore.TInt}}}
	b := NewBag(sch)
	for _, op := range ops {
		b.Add(relstore.Tuple{relstore.Int(int64(op.Val))}, int64(op.N))
	}
	return b
}

func TestBagAddCommutesQuick(t *testing.T) {
	f := func(ops []bagOp, seed int64) bool {
		a := applyOps(ops)
		shuffled := append([]bagOp{}, ops...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return a.Equal(applyOps(shuffled))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagInverseQuick(t *testing.T) {
	// b + (−1)·b is always empty.
	f := func(ops []bagOp) bool {
		b := applyOps(ops)
		out := NewBag(b.Schema)
		out.AddBag(b, 1)
		out.AddBag(b, -1)
		return out.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagSizeIsSumOfCountsQuick(t *testing.T) {
	f := func(ops []bagOp) bool {
		var want int64
		for _, op := range ops {
			want += int64(op.N)
		}
		return applyOps(ops).Size() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagSplitBatchesEquivalentQuick(t *testing.T) {
	// Merging a sequence of deltas in one batch or in two batches at any
	// cut point gives the same bag — the property that lets the change
	// log drain at arbitrary sample boundaries.
	f := func(ops []bagOp, cutRaw uint8) bool {
		whole := applyOps(ops)
		if len(ops) == 0 {
			return whole.Len() == 0
		}
		cut := int(cutRaw) % (len(ops) + 1)
		first := applyOps(ops[:cut])
		second := applyOps(ops[cut:])
		merged := NewBag(whole.Schema)
		merged.AddBag(first, 1)
		merged.AddBag(second, 1)
		return merged.Equal(whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
