package ra

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"factordb/internal/relstore"
)

// ---- materialized reference evaluator ----
//
// matEval is the pre-streaming evaluator, kept verbatim as the oracle the
// streaming executor is checked against: every operator materializes its
// full input bags before producing output. It is deliberately naive — its
// only job is to define the semantics.

func matEval(b *Bound) (*Bag, error) {
	switch b.Kind {
	case KScan:
		out := NewBag(b.Schema)
		b.Rel.Scan(func(_ relstore.RowID, t relstore.Tuple) bool {
			out.Add(t, 1)
			return true
		})
		if b.Pred != nil { // fused scan filter (pushed trees only)
			f := NewBag(b.Schema)
			out.Each(func(k string, r *BagRow) bool {
				if b.Pred.Eval(r.Tuple).AsBool() {
					f.AddKeyed(k, r.Tuple, r.N)
				}
				return true
			})
			return f, nil
		}
		return out, nil
	case KSelect:
		child, err := matEval(b.Children[0])
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		child.Each(func(k string, r *BagRow) bool {
			if b.Pred.Eval(r.Tuple).AsBool() {
				out.AddKeyed(k, r.Tuple, r.N)
			}
			return true
		})
		return out, nil
	case KProject:
		child, err := matEval(b.Children[0])
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		child.Each(func(_ string, r *BagRow) bool {
			out.Add(ProjectTuple(r.Tuple, b.ProjIdx), r.N)
			return true
		})
		return out, nil
	case KJoin:
		return matJoin(b)
	case KGroupAgg:
		return matGroupAgg(b)
	case KUnion:
		l, r, err := matEval2(b)
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		out.AddBag(l, 1)
		out.AddBag(r, 1)
		return out, nil
	case KDiff:
		l, r, err := matEval2(b)
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		l.Each(func(k string, row *BagRow) bool {
			if n := row.N - r.Count(k); n > 0 {
				out.AddKeyed(k, row.Tuple, n)
			}
			return true
		})
		return out, nil
	case KDistinct:
		child, err := matEval(b.Children[0])
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		child.Each(func(k string, r *BagRow) bool {
			if r.N > 0 {
				out.AddKeyed(k, r.Tuple, 1)
			}
			return true
		})
		return out, nil
	case KOrderLimit:
		return matOrderLimit(b)
	}
	return nil, fmt.Errorf("matEval: unknown bound kind %d", b.Kind)
}

func matEval2(b *Bound) (*Bag, *Bag, error) {
	l, err := matEval(b.Children[0])
	if err != nil {
		return nil, nil, err
	}
	r, err := matEval(b.Children[1])
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func matJoin(b *Bound) (*Bag, error) {
	left, right, err := matEval2(b)
	if err != nil {
		return nil, err
	}
	out := NewBag(b.Schema)
	emit := func(l, r *BagRow) {
		row := ConcatTuples(l.Tuple, r.Tuple)
		if b.Filter != nil && !b.Filter.Eval(row).AsBool() {
			return
		}
		out.Add(row, l.N*r.N)
	}
	table := make(map[string][]*BagRow)
	right.Each(func(_ string, r *BagRow) bool {
		k := KeyOf(r.Tuple, b.RightKey)
		table[k] = append(table[k], r)
		return true
	})
	left.Each(func(_ string, l *BagRow) bool {
		k := KeyOf(l.Tuple, b.LeftKey)
		for _, r := range table[k] {
			emit(l, r)
		}
		return true
	})
	return out, nil
}

func matGroupAgg(b *Bound) (*Bag, error) {
	child, err := matEval(b.Children[0])
	if err != nil {
		return nil, err
	}
	type group struct {
		key    relstore.Tuple
		accums []aggAccum
	}
	groups := make(map[string]*group)
	child.Each(func(_ string, r *BagRow) bool {
		gk := KeyOf(r.Tuple, b.GroupIdx)
		g, ok := groups[gk]
		if !ok {
			g = &group{key: ProjectTuple(r.Tuple, b.GroupIdx), accums: make([]aggAccum, len(b.Aggs))}
			groups[gk] = g
		}
		for i := range b.Aggs {
			accumulate(&g.accums[i], &b.Aggs[i], r.Tuple, r.N)
		}
		return true
	})
	if len(b.GroupIdx) == 0 && len(groups) == 0 && countsOnly(b.Aggs) {
		groups[""] = &group{key: relstore.Tuple{}, accums: make([]aggAccum, len(b.Aggs))}
	}
	out := NewBag(b.Schema)
	for _, g := range groups {
		row := make(relstore.Tuple, 0, len(g.key)+len(b.Aggs))
		row = append(row, g.key...)
		ok := true
		for i := range b.Aggs {
			v, valid := finishAgg(&g.accums[i], &b.Aggs[i])
			if !valid {
				ok = false
				break
			}
			row = append(row, v)
		}
		if ok {
			out.Add(row, 1)
		}
	}
	return out, nil
}

func matOrderLimit(b *Bound) (*Bag, error) {
	child, err := matEval(b.Children[0])
	if err != nil {
		return nil, err
	}
	type keyed struct {
		key string
		row *BagRow
	}
	rows := make([]keyed, 0, child.Len())
	child.Each(func(k string, r *BagRow) bool {
		rows = append(rows, keyed{key: k, row: r})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if c := CompareTuples(rows[i].row.Tuple, rows[j].row.Tuple, b.SortIdx, b.SortDesc); c != 0 {
			return c < 0
		}
		return rows[i].key < rows[j].key
	})
	out := NewBag(b.Schema)
	remaining := b.Limit
	for _, kr := range rows {
		if remaining <= 0 {
			break
		}
		n := kr.row.N
		if n > remaining {
			n = remaining
		}
		out.AddKeyed(kr.key, kr.row.Tuple, n)
		remaining -= n
	}
	return out, nil
}

// ---- randomized operator sweep ----

// sweepWorld populates R(A,B,C), S(A,D) and the always-empty E(A,D) with
// tiny value domains, so projections collapse many rows into duplicate-
// heavy bags and joins fan out. rows==0 produces an all-empty world.
func sweepWorld(rng *rand.Rand, rows int) *relstore.DB {
	db := relstore.NewDB()
	r := db.MustCreate(relstore.MustSchema("R",
		relstore.Column{Name: "A", Type: relstore.TInt},
		relstore.Column{Name: "B", Type: relstore.TString},
		relstore.Column{Name: "C", Type: relstore.TFloat},
	))
	s := db.MustCreate(relstore.MustSchema("S",
		relstore.Column{Name: "A", Type: relstore.TInt},
		relstore.Column{Name: "D", Type: relstore.TString},
	))
	db.MustCreate(relstore.MustSchema("E",
		relstore.Column{Name: "A", Type: relstore.TInt},
		relstore.Column{Name: "D", Type: relstore.TString},
	))
	strs := []string{"x", "y", "z"}
	for i := 0; i < rows; i++ {
		r.Insert(relstore.Tuple{
			relstore.Int(rng.Int63n(4)),
			relstore.String(strs[rng.Intn(len(strs))]),
			relstore.Float(float64(rng.Int63n(3))),
		})
	}
	for i := 0; i < rows/2; i++ {
		s.Insert(relstore.Tuple{
			relstore.Int(rng.Int63n(4)),
			relstore.String(strs[rng.Intn(len(strs))]),
		})
	}
	return db
}

// sweepPlans covers every operator and the pushdown interactions between
// them: selections over scans, projections, joins (pushable and residual
// conjuncts), aggregation/union/diff/order-limit barriers, and empty
// inputs.
func sweepPlans() map[string]Plan {
	rA, rB, rC := C("R", "A"), C("R", "B"), C("R", "C")
	sA, sD := C("S", "A"), C("S", "D")
	scanR, scanS, scanE := NewScan("R", ""), NewScan("S", ""), NewScan("E", "")
	join := func(l, r Plan, filter Expr) Plan {
		return NewJoin(l, r, []EquiCond{{Left: rA, Right: sA}}, filter)
	}
	aLt2 := Cmp(OpLt, Col(rA), Const(relstore.Int(2)))
	bIsX := Eq(Col(rB), Const(relstore.String("x")))
	dIsY := Eq(Col(sD), Const(relstore.String("y")))
	cGt0 := Cmp(OpGt, Col(rC), Const(relstore.Float(0)))
	return map[string]Plan{
		"scan":            scanR,
		"select-conjunct": NewSelect(scanR, And(aLt2, bIsX)),
		"select-or":       NewSelect(scanR, Or(aLt2, bIsX)),
		"select-false":    NewSelect(scanR, Eq(Col(rB), Const(relstore.String("missing")))),
		"project-dups":    NewProject(scanR, rB),
		"select-over-project": NewSelect(
			NewProject(scanR, rA, rB), aLt2),
		"join":          join(scanR, scanS, nil),
		"join-filter":   join(scanR, scanS, And(cGt0, dIsY)),
		"join-residual": join(scanR, scanS, Or(bIsX, dIsY)), // not single-side pushable
		"select-over-join": NewSelect(
			join(scanR, scanS, nil), And(aLt2, dIsY, cGt0)),
		"cross": NewCross(NewProject(scanR, rB), scanS),
		"join-empty": NewJoin(scanR, scanE,
			[]EquiCond{{Left: rA, Right: C("E", "A")}}, nil),
		"group-agg": NewGroupAgg(scanR, []ColRef{rB},
			Agg{Fn: FnCount, As: "N"},
			Agg{Fn: FnSum, Arg: rC, As: "SC"},
			Agg{Fn: FnMin, Arg: rA, As: "MA"},
			Agg{Fn: FnMax, Arg: rC, As: "XC"},
			Agg{Fn: FnAvg, Arg: rC, As: "AC"},
			Agg{Fn: FnCountIf, Pred: aLt2, As: "CI"},
		),
		"global-count-empty-input": NewGroupAgg(
			NewSelect(scanR, Eq(Col(rB), Const(relstore.String("missing")))),
			nil, Agg{Fn: FnCount, As: "N"}),
		"global-min-empty-input": NewGroupAgg(
			NewSelect(scanR, Eq(Col(rB), Const(relstore.String("missing")))),
			nil, Agg{Fn: FnMin, Arg: rA, As: "MA"}),
		"select-over-groupagg": NewSelect(
			NewGroupAgg(scanR, []ColRef{rB}, Agg{Fn: FnCount, As: "N"}),
			Cmp(OpGt, Col(C("", "N")), Const(relstore.Int(1)))),
		"union":       NewUnion(NewProject(scanR, rA, rB), scanS),
		"union-empty": NewUnion(scanS, scanE),
		"select-over-union": NewSelect(
			NewUnion(scanS, scanE), Cmp(OpGe, Col(sA), Const(relstore.Int(1)))),
		"diff":          NewDiff(NewProject(scanR, rA, rB), scanS),
		"diff-empty-r":  NewDiff(scanS, scanE),
		"diff-empty-l":  NewDiff(scanE, scanS),
		"distinct":      NewDistinct(NewProject(scanR, rB)),
		"distinct-join": NewDistinct(NewProject(join(scanR, scanS, nil), rB, sD)),
		"order-limit": NewOrderLimit(scanR,
			[]SortKey{{Col: rC, Desc: true}, {Col: rA}}, 3),
		"order-limit-dups": NewOrderLimit(NewProject(scanR, rB),
			[]SortKey{{Col: rB}}, 4),
		"order-limit-all": NewOrderLimit(scanS, []SortKey{{Col: sD, Desc: true}}, 1000),
		"select-over-order-limit": NewSelect(
			NewOrderLimit(scanR, []SortKey{{Col: rA}}, 5), bIsX),
		"nested-join-select": join(
			NewSelect(scanR, cGt0), NewSelect(scanS, dIsY), nil),
	}
}

// TestStreamingMatchesMaterialized sweeps every operator combination over
// randomized duplicate-heavy small worlds (plus an all-empty world) and
// checks the streaming executor against the materialized reference,
// before and after pushdown, twice per compiled pipeline (iterators must
// be re-runnable).
func TestStreamingMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for world := 0; world < 12; world++ {
		rows := 24
		if world == 0 {
			rows = 0 // every relation empty
		}
		db := sweepWorld(rng, rows)
		for name, p := range sweepPlans() {
			bound, err := Bind(db, p)
			if err != nil {
				t.Fatalf("world %d %s: bind: %v", world, name, err)
			}
			fpBefore := bound.Fingerprint()
			want, err := matEval(bound)
			if err != nil {
				t.Fatalf("world %d %s: matEval: %v", world, name, err)
			}
			got, err := Eval(bound)
			if err != nil {
				t.Fatalf("world %d %s: Eval: %v", world, name, err)
			}
			if !got.Equal(want) {
				t.Errorf("world %d %s: streaming result differs from materialized\n got: %v\nwant: %v",
					world, name, dumpBag(got), dumpBag(want))
			}
			// The compiled pipeline must be re-runnable with identical output.
			it, owned, err := Stream(bound)
			if err != nil {
				t.Fatalf("world %d %s: Stream: %v", world, name, err)
			}
			for run := 0; run < 2; run++ {
				again := NewBag(bound.Schema)
				it(func(tp relstore.Tuple, n int64) bool {
					if owned {
						again.Add(tp, n)
					} else {
						again.Add(tp.Clone(), n)
					}
					return true
				})
				if !again.Equal(want) {
					t.Errorf("world %d %s: stream re-run %d differs", world, name, run)
				}
			}
			// Pushdown must never mutate the tree it was given.
			if fpAfter := bound.Fingerprint(); fpAfter != fpBefore {
				t.Errorf("world %d %s: pushdown mutated the bound tree (%s -> %s)",
					world, name, fpBefore, fpAfter)
			}
		}
	}
}

func dumpBag(b *Bag) string {
	s := ""
	for _, r := range b.Rows() {
		s += fmt.Sprintf("%s x%d; ", r.Tuple, r.N)
	}
	return s
}

// TestStreamingEarlyStop checks that a consumer breaking out of the
// stream stops the pipeline without error and leaves the iterator
// reusable.
func TestStreamingEarlyStop(t *testing.T) {
	db := sweepWorld(rand.New(rand.NewSource(3)), 24)
	bound, err := Bind(db, NewUnion(NewScan("S", ""), NewScan("S", "s2")))
	if err != nil {
		t.Fatal(err)
	}
	it, _, err := Stream(bound)
	if err != nil {
		t.Fatal(err)
	}
	var first int
	it(func(relstore.Tuple, int64) bool {
		first++
		return first < 3
	})
	if first != 3 {
		t.Fatalf("early stop saw %d yields, want 3", first)
	}
	var total int64
	it(func(_ relstore.Tuple, n int64) bool {
		total += n
		return true
	})
	if want := int64(2 * 12); total != want {
		t.Fatalf("re-run after early stop yielded %d rows, want %d", total, want)
	}
}

// TestPushdownShape pins the structural effect of the rewrite: selects
// dissolve into scans, join filters split sideways, and barriers keep
// residual selects above them.
func TestPushdownShape(t *testing.T) {
	db := sweepWorld(rand.New(rand.NewSource(1)), 8)
	rA, rB, sD := C("R", "A"), C("R", "B"), C("S", "D")

	// Select over scan fuses into the scan.
	b1, err := Bind(db, NewSelect(NewScan("R", ""), Eq(Col(rB), Const(relstore.String("x")))))
	if err != nil {
		t.Fatal(err)
	}
	p1 := Pushdown(b1)
	if p1.Kind != KScan || p1.Pred == nil {
		t.Errorf("select-over-scan: want fused KScan with Pred, got kind %d (pred set: %v)", p1.Kind, p1.Pred != nil)
	}
	if b1.Kind != KSelect || b1.Children[0].Pred != nil {
		t.Errorf("select-over-scan: original tree was mutated")
	}

	// Single-side conjuncts of a select above a join sink into the scans;
	// genuinely two-sided residue stays as the join filter.
	join := NewJoin(NewScan("R", ""), NewScan("S", ""),
		[]EquiCond{{Left: rA, Right: C("S", "A")}}, nil)
	two := Or(Eq(Col(rB), Const(relstore.String("x"))), Eq(Col(sD), Const(relstore.String("y"))))
	b2, err := Bind(db, NewSelect(join, And(
		Cmp(OpLt, Col(rA), Const(relstore.Int(2))),
		Eq(Col(sD), Const(relstore.String("y"))),
		two,
	)))
	if err != nil {
		t.Fatal(err)
	}
	p2 := Pushdown(b2)
	if p2.Kind != KJoin {
		t.Fatalf("select-over-join: want root KJoin after pushdown, got kind %d", p2.Kind)
	}
	if p2.Children[0].Kind != KScan || p2.Children[0].Pred == nil {
		t.Errorf("left conjunct did not fuse into the left scan")
	}
	if p2.Children[1].Kind != KScan || p2.Children[1].Pred == nil {
		t.Errorf("right conjunct did not fuse into the right scan")
	}
	if p2.Filter == nil {
		t.Errorf("two-sided conjunct should remain as the join residual filter")
	}

	// Aggregation is a barrier: the select stays above it.
	b3, err := Bind(db, NewSelect(
		NewGroupAgg(NewScan("R", ""), []ColRef{rB}, Agg{Fn: FnCount, As: "N"}),
		Cmp(OpGt, Col(C("", "N")), Const(relstore.Int(0)))))
	if err != nil {
		t.Fatal(err)
	}
	if p3 := Pushdown(b3); p3.Kind != KSelect || p3.Children[0].Kind != KGroupAgg {
		t.Errorf("select over group-agg should stay above the barrier")
	}
}
