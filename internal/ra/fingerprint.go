package ra

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"factordb/internal/relstore"
)

// Fingerprint returns a stable structural content hash of the bound
// subtree rooted at b. Every node of a bound tree exposes its own
// fingerprint, so consumers (the ivm operator graph, the serving
// engine's per-chain view registries) can detect shared prefixes at any
// depth, not just whole-plan equality.
//
// The hash covers exactly what determines the subtree's output tuples:
// node kinds, table names, resolved column positions, bound predicate
// structure with literal values, aggregate functions and argument
// positions, and sort/limit parameters. It deliberately excludes
// presentation-only state — scan aliases, output column names, aggregate
// AS names — so plans differing only in naming share physical views.
//
// Stability contract: the "bfp1:" prefix versions the encoding. Within
// one version, the fingerprint of a given plan structure never changes
// across releases; any incompatible change to the encoding bumps the
// prefix, so persisted fingerprints can never silently collide across
// versions. Fingerprints are memoized per node; Bound trees must not be
// structurally mutated after the first Fingerprint call.
func (b *Bound) Fingerprint() string {
	if b.fp == "" {
		h := sha256.New()
		b.writeFP(h)
		b.fp = "bfp1:" + hex.EncodeToString(h.Sum(nil)[:16])
	}
	return b.fp
}

// writeFP streams the node's canonical encoding: a kind tag, the local
// payload, then the children's (memoized) fingerprints. Each component
// is delimited so the encoding is injective over bound-tree structure.
func (b *Bound) writeFP(w io.Writer) {
	fmt.Fprintf(w, "n%d(", b.Kind)
	switch b.Kind {
	case KScan:
		io.WriteString(w, b.Table)
	case KSelect:
		writeBExprFP(w, b.Pred)
	case KProject:
		fmt.Fprintf(w, "%v", b.ProjIdx)
	case KJoin:
		fmt.Fprintf(w, "%v|%v|", b.LeftKey, b.RightKey)
		if b.Filter != nil {
			writeBExprFP(w, b.Filter)
		}
	case KGroupAgg:
		fmt.Fprintf(w, "%v|", b.GroupIdx)
		for _, a := range b.Aggs {
			fmt.Fprintf(w, "a%d,%d,%d(", a.Fn, a.ArgIdx, a.Out)
			if a.Pred != nil {
				writeBExprFP(w, a.Pred)
			}
			io.WriteString(w, ")")
		}
	case KOrderLimit:
		fmt.Fprintf(w, "%v|%v|%d", b.SortIdx, b.SortDesc, b.Limit)
	}
	io.WriteString(w, ")")
	for _, c := range b.Children {
		io.WriteString(w, c.Fingerprint())
	}
}

// appendValueFP encodes a literal with the frozen bfp1 value layout: the
// exact bytes relstore.Value.Key produced when the fingerprint format was
// introduced (kind tag; 8-byte big-endian two's complement for ints and
// booleans; strconv 'b'-format plus NUL for floats; decimal length, ':',
// raw bytes for strings). The runtime key encoding is free to evolve for
// speed — this copy is pinned, because changing it would silently re-key
// every persisted "bfp1:" fingerprint (see the stability contract on
// Fingerprint and the golden file in internal/sqlparse/testdata).
func appendValueFP(dst []byte, v relstore.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case relstore.TInt, relstore.TBool:
		var i int64
		if v.Kind() == relstore.TInt {
			i = v.AsInt()
		} else if v.AsBool() {
			i = 1
		}
		u := uint64(i)
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(u>>uint(s)))
		}
	case relstore.TFloat:
		dst = strconv.AppendFloat(dst, v.AsFloat(), 'b', -1, 64)
		dst = append(dst, 0)
	case relstore.TString:
		s := v.AsString()
		dst = strconv.AppendInt(dst, int64(len(s)), 10)
		dst = append(dst, ':')
		dst = append(dst, s...)
	}
	return dst
}

// writeBExprFP encodes a bound expression injectively: column positions,
// literal values via their injective key encoding, and operator structure.
func writeBExprFP(w io.Writer, e BExpr) {
	switch x := e.(type) {
	case boundCol:
		fmt.Fprintf(w, "c%d", x.idx)
	case boundConst:
		io.WriteString(w, "k")
		w.Write(appendValueFP(nil, x.v))
	case boundCmp:
		fmt.Fprintf(w, "(%d ", x.op)
		writeBExprFP(w, x.l)
		io.WriteString(w, " ")
		writeBExprFP(w, x.r)
		io.WriteString(w, ")")
	case boundAnd:
		io.WriteString(w, "&(")
		for _, t := range x.terms {
			writeBExprFP(w, t)
			io.WriteString(w, " ")
		}
		io.WriteString(w, ")")
	case boundOr:
		io.WriteString(w, "|(")
		for _, t := range x.terms {
			writeBExprFP(w, t)
			io.WriteString(w, " ")
		}
		io.WriteString(w, ")")
	case boundNot:
		io.WriteString(w, "!(")
		writeBExprFP(w, x.inner)
		io.WriteString(w, ")")
	default:
		// Every BExpr implementation lives in this package and must add a
		// case above: a reflected fallback could embed pointer addresses
		// and silently break fingerprint equality (no sharing, no cache
		// hits) instead of failing loudly here.
		panic(fmt.Sprintf("ra: BExpr %T has no fingerprint encoding", e))
	}
}
