package ra

import (
	"fmt"
	"strings"
	"time"

	"factordb/internal/relstore"
)

// This file is the EXPLAIN ANALYZE substrate: AnalyzeStream compiles the
// same pushed-down pipeline Stream does, but threads a wrapping compiler
// through compileNode so every parent/child edge carries a row/time
// recorder. The plain Stream path never sees any of this — the recorder
// only exists on pipelines compiled here, so the uninstrumented hot path
// keeps its allocation profile untouched.

// OpStats are the observed per-operator counters of one instrumented
// pipeline, accumulated across every run of the iterator.
type OpStats struct {
	// Name is the operator header, e.g. "Join[t.TOK_ID=m.TOK_ID]".
	Name string `json:"name"`
	// Residue describes pushdown residue fused into this node: a scan
	// filter pushed into the storage layer or a join's non-equi filter.
	Residue string `json:"residue,omitempty"`
	// Depth is the node's depth in the pushed-down plan tree (root = 0),
	// Parent its parent's index in pre-order (-1 for the root).
	Depth  int `json:"depth"`
	Parent int `json:"parent"`
	// EstRows is the optimizer's pre-execution cardinality estimate for
	// one run; Rows is the observed output multiplicity summed over runs.
	EstRows int64 `json:"est_rows"`
	Rows    int64 `json:"rows"`
	// Yields counts yield calls (row batches of one); a tuple whose
	// multiplicity arrives split across calls counts once per call.
	Yields int64 `json:"yields"`
	// SelfNS approximates wall time attributable to this operator: time
	// between instrumentation stamps is charged to the node that was
	// producing when the stamp fired.
	SelfNS int64 `json:"self_ns"`
}

// StreamStats is the analyze recorder for one compiled pipeline. Nodes
// are in pre-order over the pushed-down tree (the tree the pipeline
// actually executes, not the tree handed to AnalyzeStream). It is not
// safe for concurrent runs of the iterator; analyze pipelines are run
// from a single goroutine.
type StreamStats struct {
	Nodes []OpStats `json:"nodes"`
	// Runs counts iterator invocations; in sampling evaluators one run
	// corresponds to one world sample.
	Runs int64 `json:"runs"`
	// WallNS is total wall time spent inside the pipeline across runs.
	WallNS int64 `json:"wall_ns"`

	last time.Time // shared edge-stamping clock, valid during a run
}

// AnalyzeStream compiles b the way Stream does — same Pushdown, same
// operator constructors, same ownership rules — but with per-operator
// instrumentation interposed at every edge. The returned stats object
// accumulates over however many times the iterator is invoked.
func AnalyzeStream(b *Bound) (Iterator, bool, *StreamStats, error) {
	pushed := Pushdown(b)
	st := &StreamStats{}
	index := make(map[*Bound]int)
	var walk func(n *Bound, depth, parent int)
	walk = func(n *Bound, depth, parent int) {
		index[n] = len(st.Nodes)
		st.Nodes = append(st.Nodes, OpStats{
			Name:    boundName(n),
			Residue: boundResidue(n),
			Depth:   depth,
			Parent:  parent,
			EstRows: int64(estimateRows(n)),
		})
		self := index[n]
		for _, c := range n.Children {
			walk(c, depth+1, self)
		}
	}
	walk(pushed, 0, -1)

	var compile streamCompiler
	compile = func(n *Bound) (Iterator, bool, error) {
		idx := index[n]
		parent := st.Nodes[idx].Parent
		inner, owned, err := compileNode(n, compile)
		if err != nil {
			return nil, false, err
		}
		wrapped := func(yield func(relstore.Tuple, int64) bool) {
			inner(func(t relstore.Tuple, n int64) bool {
				// Time since the last stamp was spent producing this row.
				now := time.Now()
				nd := &st.Nodes[idx]
				nd.SelfNS += now.Sub(st.last).Nanoseconds()
				nd.Rows += n
				nd.Yields++
				st.last = now
				ok := yield(t, n)
				// Time inside the consumer is charged to the parent (the
				// operator that consumed the row); for the root it stays
				// with the caller and is folded into the root at run end.
				now = time.Now()
				if parent >= 0 {
					st.Nodes[parent].SelfNS += now.Sub(st.last).Nanoseconds()
				}
				st.last = now
				return ok
			})
		}
		return wrapped, owned, nil
	}
	it, owned, err := compile(pushed)
	if err != nil {
		return nil, false, nil, err
	}
	run := func(yield func(relstore.Tuple, int64) bool) {
		start := time.Now()
		st.last = start
		it(yield)
		end := time.Now()
		// Trailing time — sink consumption of the final row plus operator
		// teardown (top-k flush, empty-tail scans) — lands on the root.
		st.Nodes[0].SelfNS += end.Sub(st.last).Nanoseconds()
		st.Runs++
		st.WallNS += end.Sub(start).Nanoseconds()
	}
	return run, owned, st, nil
}

// Merge folds another recorder for the same plan shape into st — the
// served engine aggregates per-chain analyze runs this way. Shapes must
// match (same SQL bound on every chain guarantees it); mismatched merges
// return an error rather than corrupting counters.
func (st *StreamStats) Merge(other *StreamStats) error {
	if len(st.Nodes) != len(other.Nodes) {
		return fmt.Errorf("ra: merge of mismatched analyze stats (%d vs %d nodes)", len(st.Nodes), len(other.Nodes))
	}
	for i := range st.Nodes {
		if st.Nodes[i].Name != other.Nodes[i].Name {
			return fmt.Errorf("ra: merge of mismatched analyze stats (node %d: %q vs %q)",
				i, st.Nodes[i].Name, other.Nodes[i].Name)
		}
		st.Nodes[i].Rows += other.Nodes[i].Rows
		st.Nodes[i].Yields += other.Nodes[i].Yields
		st.Nodes[i].SelfNS += other.Nodes[i].SelfNS
	}
	st.Runs += other.Runs
	st.WallNS += other.WallNS
	return nil
}

// Render pretty-prints the annotated plan: the pushed-down operator tree
// with actual vs estimated rows, per-operator self time, and each
// operator's share of total pipeline time, followed by a totals line.
// Estimates are per run, so actuals are normalized by run count for the
// comparison.
func (st *StreamStats) Render() []string {
	total := st.WallNS
	if total <= 0 {
		total = 1
	}
	runs := st.Runs
	if runs <= 0 {
		runs = 1
	}
	lines := make([]string, 0, len(st.Nodes)+1)
	for i := range st.Nodes {
		nd := &st.Nodes[i]
		var sb strings.Builder
		sb.WriteString(strings.Repeat("  ", nd.Depth))
		sb.WriteString(nd.Name)
		fmt.Fprintf(&sb, "  (actual rows=%d est rows=%d", nd.Rows/runs, nd.EstRows)
		fmt.Fprintf(&sb, " time=%s %.1f%%", time.Duration(nd.SelfNS).Round(time.Microsecond),
			100*float64(nd.SelfNS)/float64(total))
		sb.WriteString(")")
		if nd.Residue != "" {
			sb.WriteString("  [pushdown: " + nd.Residue + "]")
		}
		lines = append(lines, sb.String())
	}
	lines = append(lines, fmt.Sprintf("analyze: runs=%d total=%s",
		st.Runs, time.Duration(st.WallNS).Round(time.Microsecond)))
	return lines
}

// boundName renders a bound node's operator header, mirroring Render's
// plan headers but over the post-pushdown tree EXPLAIN ANALYZE executes.
func boundName(b *Bound) string {
	switch b.Kind {
	case KScan:
		if b.Alias != "" && b.Alias != b.Table {
			return fmt.Sprintf("Scan[%s %s]", b.Table, b.Alias)
		}
		return fmt.Sprintf("Scan[%s]", b.Table)
	case KSelect:
		return "Select"
	case KProject:
		cols := make([]string, len(b.Schema.Cols))
		for i, c := range b.Schema.Cols {
			cols[i] = c.Ref.String()
		}
		return fmt.Sprintf("Project[%s]", strings.Join(cols, ", "))
	case KJoin:
		keys := make([]string, len(b.LeftKey))
		ls, rs := b.Children[0].Schema, b.Children[1].Schema
		for i := range b.LeftKey {
			keys[i] = ls.Cols[b.LeftKey[i]].Ref.String() + "=" + rs.Cols[b.RightKey[i]].Ref.String()
		}
		return fmt.Sprintf("Join[%s]", strings.Join(keys, ", "))
	case KGroupAgg:
		group := make([]string, len(b.GroupIdx))
		cs := b.Children[0].Schema
		for i, j := range b.GroupIdx {
			group[i] = cs.Cols[j].Ref.String()
		}
		aggs := make([]string, len(b.Aggs))
		for i, a := range b.Aggs {
			aggs[i] = fmt.Sprintf("%s AS %s", a.Fn, a.As)
		}
		return fmt.Sprintf("GroupAgg[%s; %s]", strings.Join(group, ", "), strings.Join(aggs, ", "))
	case KUnion:
		return "Union"
	case KDiff:
		return "Diff"
	case KDistinct:
		return "Distinct"
	case KOrderLimit:
		return fmt.Sprintf("OrderLimit[limit %d]", b.Limit)
	}
	return fmt.Sprintf("Bound[%d]", b.Kind)
}

// boundResidue reports predicate residue that pushdown fused into the
// node — the part of the plan EXPLAIN's logical tree can't show. Bound
// expressions don't carry their source spelling, so the annotation names
// the fusion rather than the predicate text.
func boundResidue(b *Bound) string {
	switch b.Kind {
	case KScan:
		if b.Pred != nil {
			return "filter fused into scan"
		}
	case KJoin:
		if b.Filter != nil {
			return "non-equi filter on join"
		}
	}
	return ""
}
