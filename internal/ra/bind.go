package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// BoundKind discriminates node types of a bound plan.
type BoundKind uint8

// Bound node kinds.
const (
	KScan BoundKind = iota
	KSelect
	KProject
	KJoin
	KGroupAgg
	KUnion
	KDiff
	KDistinct
	KOrderLimit
)

// BoundAgg is an aggregate with its argument resolved to a column index.
type BoundAgg struct {
	Fn     AggFn
	ArgIdx int   // -1 for COUNT / COUNT_IF
	Pred   BExpr // COUNT_IF only
	Out    relstore.Type
	As     string
}

// Bound is a plan node bound against a catalog: column references are
// resolved to row positions, expressions are type-checked, and every node
// carries its output RowSchema. The tree is consumed both by Eval in this
// package and by the delta operators in package ivm.
type Bound struct {
	Kind     BoundKind
	Schema   *RowSchema
	Children []*Bound
	Source   Plan

	// KScan
	Table string
	Alias string
	Rel   *relstore.Relation

	// KSelect
	Pred BExpr

	// KProject
	ProjIdx []int

	// KJoin
	LeftKey, RightKey []int
	Filter            BExpr // may be nil

	// KGroupAgg
	GroupIdx []int
	Aggs     []BoundAgg

	// KOrderLimit
	SortIdx  []int
	SortDesc []bool
	Limit    int64

	// fp memoizes Fingerprint; see fingerprint.go.
	fp string
}

// Bind resolves a logical plan against the database catalog.
func Bind(db *relstore.DB, p Plan) (*Bound, error) {
	switch n := p.(type) {
	case *Scan:
		return bindScan(db, n)
	case *Select:
		return bindSelect(db, n)
	case *Project:
		return bindProject(db, n)
	case *Join:
		return bindJoin(db, n)
	case *GroupAgg:
		return bindGroupAgg(db, n)
	case *Union:
		return bindUnion(db, n)
	case *Diff:
		return bindDiff(db, n)
	case *Distinct:
		return bindDistinct(db, n)
	case *OrderLimit:
		return bindOrderLimit(db, n)
	case nil:
		return nil, fmt.Errorf("ra: bind of nil plan")
	}
	return nil, fmt.Errorf("ra: unknown plan node %T", p)
}

func bindScan(db *relstore.DB, n *Scan) (*Bound, error) {
	rel, err := db.Relation(n.Table)
	if err != nil {
		return nil, err
	}
	rs := rel.Schema()
	sch := &RowSchema{Cols: make([]OutCol, rs.Arity())}
	for i, c := range rs.Cols {
		sch.Cols[i] = OutCol{Ref: ColRef{Rel: n.Alias, Col: c.Name}, Type: c.Type}
	}
	return &Bound{Kind: KScan, Schema: sch, Source: n, Table: n.Table, Alias: n.Alias, Rel: rel}, nil
}

func bindSelect(db *relstore.DB, n *Select) (*Bound, error) {
	child, err := Bind(db, n.Child)
	if err != nil {
		return nil, err
	}
	pred, err := BindPredicate(child.Schema, n.Pred)
	if err != nil {
		return nil, err
	}
	return &Bound{Kind: KSelect, Schema: child.Schema, Source: n, Children: []*Bound{child}, Pred: pred}, nil
}

func bindProject(db *relstore.DB, n *Project) (*Bound, error) {
	child, err := Bind(db, n.Child)
	if err != nil {
		return nil, err
	}
	if len(n.Cols) == 0 {
		return nil, fmt.Errorf("ra: projection with no columns")
	}
	idx := make([]int, len(n.Cols))
	sch := &RowSchema{Cols: make([]OutCol, len(n.Cols))}
	for i, ref := range n.Cols {
		j, err := child.Schema.Resolve(ref)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		sch.Cols[i] = child.Schema.Cols[j]
	}
	return &Bound{Kind: KProject, Schema: sch, Source: n, Children: []*Bound{child}, ProjIdx: idx}, nil
}

func bindJoin(db *relstore.DB, n *Join) (*Bound, error) {
	left, err := Bind(db, n.Left)
	if err != nil {
		return nil, err
	}
	right, err := Bind(db, n.Right)
	if err != nil {
		return nil, err
	}
	// Reject duplicate (alias, column) pairs across the two sides: they
	// would make downstream references ambiguous in surprising ways.
	seen := make(map[ColRef]struct{}, left.Schema.Arity())
	for _, c := range left.Schema.Cols {
		seen[c.Ref] = struct{}{}
	}
	for _, c := range right.Schema.Cols {
		if _, dup := seen[c.Ref]; dup {
			return nil, fmt.Errorf("ra: join sides share column %s; use distinct aliases", c.Ref)
		}
	}
	sch := &RowSchema{Cols: append(append([]OutCol{}, left.Schema.Cols...), right.Schema.Cols...)}
	b := &Bound{Kind: KJoin, Schema: sch, Source: n, Children: []*Bound{left, right}}
	for _, cond := range n.On {
		li, err := left.Schema.Resolve(cond.Left)
		if err != nil {
			return nil, fmt.Errorf("ra: join condition %s=%s: %w", cond.Left, cond.Right, err)
		}
		ri, err := right.Schema.Resolve(cond.Right)
		if err != nil {
			return nil, fmt.Errorf("ra: join condition %s=%s: %w", cond.Left, cond.Right, err)
		}
		if !comparable2(left.Schema.Cols[li].Type, right.Schema.Cols[ri].Type) {
			return nil, fmt.Errorf("ra: join condition %s=%s compares %v with %v",
				cond.Left, cond.Right, left.Schema.Cols[li].Type, right.Schema.Cols[ri].Type)
		}
		b.LeftKey = append(b.LeftKey, li)
		b.RightKey = append(b.RightKey, ri)
	}
	if n.Filter != nil {
		f, err := BindPredicate(sch, n.Filter)
		if err != nil {
			return nil, err
		}
		b.Filter = f
	}
	return b, nil
}

func bindGroupAgg(db *relstore.DB, n *GroupAgg) (*Bound, error) {
	child, err := Bind(db, n.Child)
	if err != nil {
		return nil, err
	}
	if len(n.Aggs) == 0 {
		return nil, fmt.Errorf("ra: group-aggregate with no aggregates")
	}
	b := &Bound{Kind: KGroupAgg, Source: n, Children: []*Bound{child}}
	sch := &RowSchema{}
	names := make(map[string]struct{})
	for _, g := range n.GroupBy {
		j, err := child.Schema.Resolve(g)
		if err != nil {
			return nil, err
		}
		b.GroupIdx = append(b.GroupIdx, j)
		sch.Cols = append(sch.Cols, child.Schema.Cols[j])
		names[child.Schema.Cols[j].Ref.Col] = struct{}{}
	}
	for _, a := range n.Aggs {
		if a.As == "" {
			return nil, fmt.Errorf("ra: aggregate %s missing output name", a.Fn)
		}
		if _, dup := names[a.As]; dup {
			return nil, fmt.Errorf("ra: duplicate output column %q in group-aggregate", a.As)
		}
		names[a.As] = struct{}{}
		ba := BoundAgg{Fn: a.Fn, ArgIdx: -1, As: a.As}
		switch a.Fn {
		case FnCount:
			ba.Out = relstore.TInt
		case FnCountIf:
			if a.Pred == nil {
				return nil, fmt.Errorf("ra: COUNT_IF %q missing predicate", a.As)
			}
			p, err := BindPredicate(child.Schema, a.Pred)
			if err != nil {
				return nil, err
			}
			ba.Pred = p
			ba.Out = relstore.TInt
		case FnSum, FnAvg, FnMin, FnMax:
			j, err := child.Schema.Resolve(a.Arg)
			if err != nil {
				return nil, err
			}
			ba.ArgIdx = j
			argT := child.Schema.Cols[j].Type
			switch a.Fn {
			case FnSum:
				if argT != relstore.TInt && argT != relstore.TFloat {
					return nil, fmt.Errorf("ra: SUM over non-numeric column %s", a.Arg)
				}
				ba.Out = argT
			case FnAvg:
				if argT != relstore.TInt && argT != relstore.TFloat {
					return nil, fmt.Errorf("ra: AVG over non-numeric column %s", a.Arg)
				}
				ba.Out = relstore.TFloat
			case FnMin, FnMax:
				if argT == relstore.TBool {
					return nil, fmt.Errorf("ra: %s over boolean column %s", a.Fn, a.Arg)
				}
				ba.Out = argT
			}
		default:
			return nil, fmt.Errorf("ra: unknown aggregate function %d", a.Fn)
		}
		sch.Cols = append(sch.Cols, OutCol{Ref: ColRef{Col: a.As}, Type: ba.Out})
		b.Aggs = append(b.Aggs, ba)
	}
	b.Schema = sch
	return b, nil
}
