package ra

import (
	"sort"

	"factordb/internal/relstore"
)

// BagRow is one distinct tuple of a bag together with its multiplicity.
// In a materialized result the count is positive; in a delta (package ivm)
// counts are signed.
type BagRow struct {
	Tuple relstore.Tuple
	N     int64
}

// Bag is a multiset of tuples keyed by their injective encoding. The zero
// count is never stored: adding a row whose count reaches zero removes it.
type Bag struct {
	Schema *RowSchema
	rows   map[string]*BagRow
}

// NewBag returns an empty bag with the given row schema.
func NewBag(schema *RowSchema) *Bag {
	return &Bag{Schema: schema, rows: make(map[string]*BagRow)}
}

// Add merges n copies of t into the bag (n may be negative for deltas).
// The tuple is not copied; callers must not mutate it afterwards.
func (b *Bag) Add(t relstore.Tuple, n int64) {
	if n == 0 {
		return
	}
	k := t.Key()
	b.addKeyed(k, t, n)
}

// AddKeyed is Add for callers that have already computed the tuple key.
func (b *Bag) AddKeyed(key string, t relstore.Tuple, n int64) {
	if n == 0 {
		return
	}
	b.addKeyed(key, t, n)
}

// AddKeyedBytes merges n copies of t under a key held in a reusable byte
// buffer. The key bytes are only converted to a string when the row is
// first inserted, so merging into an existing row is allocation-free —
// this is the streaming executor's materialization primitive. When clone
// is set the tuple is copied on first insert, for producers that reuse
// their output buffer (unowned streams).
func (b *Bag) AddKeyedBytes(key []byte, t relstore.Tuple, n int64, clone bool) {
	if n == 0 {
		return
	}
	if r, ok := b.rows[string(key)]; ok {
		r.N += n
		if r.N == 0 {
			delete(b.rows, string(key))
		}
		return
	}
	if clone {
		t = t.Clone()
	}
	b.rows[string(key)] = &BagRow{Tuple: t, N: n}
}

// CountBytes is Count for a key held in a byte buffer, without converting
// it to a string.
func (b *Bag) CountBytes(key []byte) int64 {
	if r, ok := b.rows[string(key)]; ok {
		return r.N
	}
	return 0
}

func (b *Bag) addKeyed(k string, t relstore.Tuple, n int64) {
	if r, ok := b.rows[k]; ok {
		r.N += n
		if r.N == 0 {
			delete(b.rows, k)
		}
		return
	}
	b.rows[k] = &BagRow{Tuple: t, N: n}
}

// AddBag merges all rows of o (with their counts scaled by sign) into b.
func (b *Bag) AddBag(o *Bag, sign int64) {
	for k, r := range o.rows {
		b.addKeyed(k, r.Tuple, sign*r.N)
	}
}

// Count returns the multiplicity of the tuple with the given key.
func (b *Bag) Count(key string) int64 {
	if r, ok := b.rows[key]; ok {
		return r.N
	}
	return 0
}

// Len returns the number of distinct tuples.
func (b *Bag) Len() int { return len(b.rows) }

// Size returns the total multiplicity (sum of positive and negative counts).
func (b *Bag) Size() int64 {
	var n int64
	for _, r := range b.rows {
		n += r.N
	}
	return n
}

// Each calls fn for every distinct tuple with its key and count, in
// unspecified order, until fn returns false.
func (b *Bag) Each(fn func(key string, row *BagRow) bool) {
	for k, r := range b.rows {
		if !fn(k, r) {
			return
		}
	}
}

// Rows returns the distinct rows sorted by tuple key, for deterministic
// output and comparisons in tests.
func (b *Bag) Rows() []*BagRow {
	keys := make([]string, 0, len(b.rows))
	for k := range b.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*BagRow, len(keys))
	for i, k := range keys {
		out[i] = b.rows[k]
	}
	return out
}

// Clone returns an independent copy (tuples shared, counts copied).
func (b *Bag) Clone() *Bag {
	c := NewBag(b.Schema)
	for k, r := range b.rows {
		c.rows[k] = &BagRow{Tuple: r.Tuple, N: r.N}
	}
	return c
}

// Equal reports whether two bags contain the same tuples with identical
// counts.
func (b *Bag) Equal(o *Bag) bool {
	if len(b.rows) != len(o.rows) {
		return false
	}
	for k, r := range b.rows {
		or, ok := o.rows[k]
		if !ok || or.N != r.N {
			return false
		}
	}
	return true
}
