package ra

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"factordb/internal/relstore"
)

// benchWorld builds TOKEN (rows tuples) and DOC (rows/10 tuples) sized so
// the join fans out and the aggregation sees real group counts.
func benchWorld(rows int) *relstore.DB {
	rng := rand.New(rand.NewSource(42))
	db := relstore.NewDB()
	docs := rows / 10
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	doc := db.MustCreate(relstore.MustSchema("DOC",
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "YEAR", Type: relstore.TInt},
	))
	labels := []string{"PER", "ORG", "LOC", "O"}
	words := make([]string, 64)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	for i := 0; i < rows; i++ {
		tok.Insert(relstore.Tuple{
			relstore.Int(int64(i)),
			relstore.Int(rng.Int63n(int64(docs))),
			relstore.String(words[rng.Intn(len(words))]),
			relstore.String(labels[rng.Intn(len(labels))]),
		})
	}
	for i := 0; i < docs; i++ {
		doc.Insert(relstore.Tuple{
			relstore.Int(int64(i)),
			relstore.Int(1990 + rng.Int63n(30)),
		})
	}
	return db
}

// benchPlan: a selective filter over a join, aggregated — the shape whose
// intermediates the streaming executor never materializes.
func benchPlan() Plan {
	tLabel, tDoc := C("TOKEN", "LABEL"), C("TOKEN", "DOC_ID")
	dDoc, dYear := C("DOC", "DOC_ID"), C("DOC", "YEAR")
	j := NewJoin(NewScan("TOKEN", ""), NewScan("DOC", ""),
		[]EquiCond{{Left: tDoc, Right: dDoc}}, nil)
	sel := NewSelect(j, And(
		Cmp(OpGe, Col(dYear), Const(relstore.Int(2000))),
		Cmp(OpNe, Col(tLabel), Const(relstore.String("O"))),
	))
	return NewGroupAgg(sel, []ColRef{tLabel},
		Agg{Fn: FnCount, As: "N"},
		Agg{Fn: FnMin, Arg: dYear, As: "Y0"},
	)
}

// BenchmarkEvalStreaming compares the streaming executor against the
// materialized reference on the same bound plan. The "streaming" B/op
// figure is pinned by testdata/alloc_budget.txt (see TestAllocBudget).
func BenchmarkEvalStreaming(b *testing.B) {
	db := benchWorld(20000)
	bound, err := Bind(db, benchPlan())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := matEval(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// allocBudget reads the pinned B/op ceiling from testdata.
func allocBudget(t *testing.T) int64 {
	data, err := os.ReadFile("testdata/alloc_budget.txt")
	if err != nil {
		t.Fatalf("reading alloc budget: %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("parsing alloc budget %q: %v", line, err)
		}
		return n
	}
	t.Fatal("alloc budget file has no value")
	return 0
}

// TestAllocBudget is the allocation-regression gate: the streaming
// evaluator's bytes-per-query on the benchmark workload must stay within
// the pinned budget. If an optimization legitimately lowers the floor,
// re-pin testdata/alloc_budget.txt; if this fails after a change, the
// streaming path regressed into materializing.
func TestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget gate skipped in -short mode")
	}
	budget := allocBudget(t)
	db := benchWorld(20000)
	bound, err := Bind(db, benchPlan())
	if err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Eval(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
	if got := res.AllocedBytesPerOp(); got > budget {
		t.Errorf("streaming eval allocates %d B/op, budget is %d B/op (testdata/alloc_budget.txt)", got, budget)
	}
}
