package ra

import (
	"strings"
	"testing"

	"factordb/internal/relstore"
)

// canonDB builds the catalog used by the bound-fingerprint tests.
func canonDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	tok.Insert(relstore.Tuple{relstore.Int(1), relstore.Int(1), relstore.String("a"), relstore.String("B-PER")})
	return db
}

func boundFP(t *testing.T, db *relstore.DB, p Plan) string {
	t.Helper()
	b, err := Bind(db, Canonicalize(p))
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	return b.Fingerprint()
}

func TestCanonicalizePredicateOrder(t *testing.T) {
	mk := func(terms ...Expr) Plan {
		return NewProject(
			NewSelect(NewScan("TOKEN", "T"), And(terms...)),
			C("T", "STRING"))
	}
	a := Cmp(OpEq, Col(C("T", "LABEL")), Const(relstore.String("B-PER")))
	b := Cmp(OpGt, Col(C("T", "TOK_ID")), Const(relstore.Int(3)))
	p1, p2 := mk(a, b), mk(b, a)
	if PlanFingerprint(p1) != PlanFingerprint(p2) {
		t.Errorf("conjunct order changed the fingerprint:\n%s\n%s",
			Canonicalize(p1), Canonicalize(p2))
	}
	db := canonDB(t)
	if boundFP(t, db, p1) != boundFP(t, db, p2) {
		t.Error("conjunct order changed the bound fingerprint")
	}
	// Nested AND flattens into the same canonical conjunction.
	p3 := mk(And(b, a))
	if PlanFingerprint(p1) != PlanFingerprint(p3) {
		t.Error("nested AND (redundant grouping) changed the fingerprint")
	}
	// Duplicate conjuncts are idempotent.
	p4 := mk(a, b, a)
	if PlanFingerprint(p1) != PlanFingerprint(p4) {
		t.Error("duplicate conjunct changed the fingerprint")
	}
}

func TestCanonicalizeAliasRenaming(t *testing.T) {
	mk := func(a1, a2 string) Plan {
		return NewProject(
			NewJoin(
				NewSelect(NewScan("TOKEN", a1), Eq(Col(C(a1, "LABEL")), Const(relstore.String("B-ORG")))),
				NewScan("TOKEN", a2),
				[]EquiCond{{Left: C(a1, "DOC_ID"), Right: C(a2, "DOC_ID")}},
				nil),
			C(a2, "STRING"))
	}
	p1, p2 := mk("T1", "T2"), mk("LEFT_SIDE", "RIGHT_SIDE")
	if PlanFingerprint(p1) != PlanFingerprint(p2) {
		t.Errorf("alias renaming changed the fingerprint:\n%s\n%s",
			Canonicalize(p1), Canonicalize(p2))
	}
	db := canonDB(t)
	if boundFP(t, db, p1) != boundFP(t, db, p2) {
		t.Error("alias renaming changed the bound fingerprint")
	}
	// Swapping which table plays which role is NOT a rename: distinct.
	p3 := mk("T2", "T1")
	if got := PlanFingerprint(p3); got != PlanFingerprint(p1) {
		// Same structure, different spelling of corresponding aliases —
		// positional renaming must still unify it.
		t.Errorf("positionally-corresponding aliases did not unify: %s", got)
	}
}

func TestCanonicalizeComparisonOrientation(t *testing.T) {
	lit := Const(relstore.String("B-PER"))
	col := Col(C("T", "LABEL"))
	mk := func(pred Expr) Plan {
		return NewProject(NewSelect(NewScan("TOKEN", "T"), pred), C("T", "STRING"))
	}
	if PlanFingerprint(mk(Cmp(OpEq, col, lit))) != PlanFingerprint(mk(Cmp(OpEq, lit, col))) {
		t.Error("LABEL='x' and 'x'=LABEL fingerprint differently")
	}
	n := Const(relstore.Int(3))
	id := Col(C("T", "TOK_ID"))
	if PlanFingerprint(mk(Cmp(OpGt, id, n))) != PlanFingerprint(mk(Cmp(OpLt, n, id))) {
		t.Error("TOK_ID>3 and 3<TOK_ID fingerprint differently")
	}
	// Orientation must not conflate genuinely different comparisons.
	if PlanFingerprint(mk(Cmp(OpGt, id, n))) == PlanFingerprint(mk(Cmp(OpLt, id, n))) {
		t.Error("TOK_ID>3 and TOK_ID<3 fingerprint identically")
	}
}

func TestCanonicalizeConstantFolding(t *testing.T) {
	pred := Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))
	base := NewSelect(NewScan("TOKEN", "T"), pred)
	// WHERE p AND 1=1 canonicalizes to WHERE p.
	folded := NewSelect(NewScan("TOKEN", "T"),
		And(pred, Eq(Const(relstore.Int(1)), Const(relstore.Int(1)))))
	if PlanFingerprint(base) != PlanFingerprint(folded) {
		t.Errorf("tautology was not folded away: %s", Canonicalize(folded))
	}
	// A Select whose whole predicate folds to TRUE drops the node.
	dropped := NewSelect(NewScan("TOKEN", "T"), Eq(Const(relstore.Int(1)), Const(relstore.Int(1))))
	if c := Canonicalize(dropped); strings.Contains(c.String(), "Select") {
		t.Errorf("TRUE-predicate Select survived canonicalization: %s", c)
	}
	// NOT folding and double negation.
	if PlanFingerprint(NewSelect(NewScan("TOKEN", "T"), Not(Not(pred)))) !=
		PlanFingerprint(base) {
		t.Error("double negation changed the fingerprint")
	}
	// A contradictory conjunct folds to constant FALSE but must keep the
	// Select (an always-empty selection is not the unfiltered scan).
	contra := NewSelect(NewScan("TOKEN", "T"),
		And(pred, Eq(Const(relstore.Int(1)), Const(relstore.Int(2)))))
	if PlanFingerprint(contra) == PlanFingerprint(NewScan("TOKEN", "T")) {
		t.Error("FALSE selection collapsed into its child")
	}
}

func TestCanonicalizeIsIdempotentAndPreservesSemantics(t *testing.T) {
	db := canonDB(t)
	p := NewProject(
		NewSelect(NewScan("TOKEN", "T"), And(
			Cmp(OpGe, Col(C("T", "TOK_ID")), Const(relstore.Int(1))),
			Eq(Const(relstore.String("B-PER")), Col(C("T", "LABEL"))),
		)),
		C("T", "STRING"))
	c1 := Canonicalize(p)
	c2 := Canonicalize(c1)
	if c1.String() != c2.String() {
		t.Errorf("not idempotent:\n%s\n%s", c1, c2)
	}
	for _, plan := range []Plan{p, c1} {
		b, err := Bind(db, plan)
		if err != nil {
			t.Fatalf("Bind(%s): %v", plan, err)
		}
		bag, err := Eval(b)
		if err != nil {
			t.Fatalf("Eval(%s): %v", plan, err)
		}
		if bag.Size() != 1 {
			t.Errorf("plan %s answered %d rows, want 1", plan, bag.Size())
		}
	}
}

func TestFingerprintDistinguishesDifferentPlans(t *testing.T) {
	db := canonDB(t)
	sel := func(label string) Plan {
		return NewProject(
			NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String(label)))),
			C("T", "STRING"))
	}
	if PlanFingerprint(sel("B-PER")) == PlanFingerprint(sel("B-ORG")) {
		t.Error("different literals fingerprint identically")
	}
	if boundFP(t, db, sel("B-PER")) == boundFP(t, db, sel("B-ORG")) {
		t.Error("different literals share a bound fingerprint")
	}
	proj := func(col string) Plan {
		return NewProject(NewScan("TOKEN", "T"), C("T", col))
	}
	if boundFP(t, db, proj("STRING")) == boundFP(t, db, proj("LABEL")) {
		t.Error("different projections share a bound fingerprint")
	}
	// Every subtree exposes its own fingerprint, and a parent's differs
	// from its child's.
	b, err := Bind(db, Canonicalize(sel("B-PER")))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var walk func(*Bound)
	walk = func(n *Bound) {
		fp := n.Fingerprint()
		if !strings.HasPrefix(fp, "bfp1:") {
			t.Errorf("fingerprint %q missing version prefix", fp)
		}
		if seen[fp] {
			t.Errorf("distinct subtrees share fingerprint %s", fp)
		}
		seen[fp] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(b)
	if len(seen) != 3 { // project / select / scan
		t.Errorf("walked %d distinct subtree fingerprints, want 3", len(seen))
	}
}

// TestCanonicalizePreservesBindErrors pins two validation properties of
// the single-alias qualifier-drop rule: a qualifier that never named the
// alias must keep failing at bind (canonicalization must not launder
// stale qualifiers into valid ones), and the reserved canonical scan
// name must be unreachable from SQL-folded identifiers.
func TestCanonicalizePreservesBindErrors(t *testing.T) {
	db := canonDB(t)
	// SELECT TOKEN.STRING FROM TOKEN T — qualifier names the table, not
	// the alias: invalid before canonicalization, must stay invalid.
	stale := NewProject(
		NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))),
		C("TOKEN", "STRING"))
	if _, err := Bind(db, stale); err == nil {
		t.Fatal("pre-canonical stale qualifier bound — fixture is wrong")
	}
	if _, err := Bind(db, Canonicalize(stale)); err == nil {
		t.Error("canonicalization laundered a stale qualifier into a valid reference")
	}
}

// TestFingerprintNestedComparisonInjective pins rendering injectivity:
// a boolean comparison nested as an operand must not collide with its
// re-associated sibling (both would read "a = b = c" without parens).
func TestFingerprintNestedComparisonInjective(t *testing.T) {
	a := Col(C("T", "LABEL"))
	b := Col(C("T", "STRING"))
	c := Const(relstore.Bool(true))
	left := NewSelect(NewScan("TOKEN", "T"), Cmp(OpEq, Cmp(OpEq, a, b), c))
	right := NewSelect(NewScan("TOKEN", "T"), Cmp(OpEq, a, Cmp(OpEq, b, c)))
	if PlanFingerprint(left) == PlanFingerprint(right) {
		t.Errorf("re-associated nested comparisons share a fingerprint:\n%s\n%s",
			Canonicalize(left), Canonicalize(right))
	}
}

// TestBoundFingerprintUnifiesQualification pins the property the logical
// fingerprint cannot give: a qualified and an unqualified spelling of the
// same reference resolve to the same column position, so they share a
// bound fingerprint.
func TestBoundFingerprintUnifiesQualification(t *testing.T) {
	db := canonDB(t)
	qual := NewProject(
		NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))),
		C("T", "STRING"))
	unqual := NewProject(
		NewSelect(NewScan("TOKEN", ""), Eq(Col(C("", "LABEL")), Const(relstore.String("B-PER")))),
		C("", "STRING"))
	if boundFP(t, db, qual) != boundFP(t, db, unqual) {
		t.Error("qualified and unqualified spellings of the same plan differ at the bound level")
	}
}
