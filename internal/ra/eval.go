package ra

import (
	"factordb/internal/relstore"
)

// Eval fully evaluates a bound plan against the current database contents,
// returning a materialized bag. This is the "run the whole query on the
// sampled world" path of the paper's basic evaluator (Algorithm 3).
//
// Evaluation is a thin shell over the streaming executor: the plan is
// compiled with Stream (predicates pushed into scans, operators fused
// into one lazy pipeline) and only the final result is materialized.
// Callers that consume rows one at a time — the sampling loop feeding an
// estimator — should use Stream directly and skip this materialization.
func Eval(b *Bound) (*Bag, error) {
	it, owned, err := Stream(b)
	if err != nil {
		return nil, err
	}
	out := NewBag(b.Schema)
	var kbuf []byte
	it(func(t relstore.Tuple, n int64) bool {
		kbuf = t.AppendKey(kbuf[:0])
		out.AddKeyedBytes(kbuf, t, n, !owned)
		return true
	})
	return out, nil
}

// ProjectTuple extracts the indexed fields of t as a fresh tuple.
func ProjectTuple(t relstore.Tuple, idx []int) relstore.Tuple {
	out := make(relstore.Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// ConcatTuples concatenates l and r into a fresh tuple.
func ConcatTuples(l, r relstore.Tuple) relstore.Tuple {
	out := make(relstore.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// aggAccum accumulates one aggregate over a group during evaluation.
type aggAccum struct {
	n     int64   // COUNT / COUNT_IF
	sumI  int64   // SUM over ints
	sumF  float64 // SUM over floats / AVG numerator
	cnt   int64   // AVG denominator / MIN-MAX presence
	first bool
	best  relstore.Value // MIN / MAX
}

func accumulate(acc *aggAccum, a *BoundAgg, t relstore.Tuple, n int64) {
	switch a.Fn {
	case FnCount:
		acc.n += n
	case FnCountIf:
		if a.Pred.Eval(t).AsBool() {
			acc.n += n
		}
	case FnSum:
		v := t[a.ArgIdx]
		if a.Out == relstore.TInt {
			acc.sumI += n * v.AsInt()
		} else {
			acc.sumF += float64(n) * v.AsFloat()
		}
	case FnAvg:
		acc.sumF += float64(n) * t[a.ArgIdx].AsFloat()
		acc.cnt += n
	case FnMin, FnMax:
		v := t[a.ArgIdx]
		acc.cnt += n
		if !acc.first {
			acc.first = true
			acc.best = v
			return
		}
		if a.Fn == FnMin && v.Less(acc.best) {
			acc.best = v
		}
		if a.Fn == FnMax && acc.best.Less(v) {
			acc.best = v
		}
	}
}

func finishAgg(acc *aggAccum, a *BoundAgg) (relstore.Value, bool) {
	switch a.Fn {
	case FnCount, FnCountIf:
		return relstore.Int(acc.n), true
	case FnSum:
		if a.Out == relstore.TInt {
			return relstore.Int(acc.sumI), true
		}
		return relstore.Float(acc.sumF), true
	case FnAvg:
		if acc.cnt == 0 {
			return relstore.Value{}, false
		}
		return relstore.Float(acc.sumF / float64(acc.cnt)), true
	case FnMin, FnMax:
		if !acc.first {
			return relstore.Value{}, false
		}
		return acc.best, true
	}
	return relstore.Value{}, false
}
