package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// Eval fully evaluates a bound plan against the current database contents,
// returning a materialized bag. This is the "run the whole query on the
// sampled world" path of the paper's basic evaluator (Algorithm 3).
func Eval(b *Bound) (*Bag, error) {
	switch b.Kind {
	case KScan:
		return evalScan(b), nil
	case KSelect:
		child, err := Eval(b.Children[0])
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		child.Each(func(k string, r *BagRow) bool {
			if b.Pred.Eval(r.Tuple).AsBool() {
				out.AddKeyed(k, r.Tuple, r.N)
			}
			return true
		})
		return out, nil
	case KProject:
		child, err := Eval(b.Children[0])
		if err != nil {
			return nil, err
		}
		out := NewBag(b.Schema)
		child.Each(func(_ string, r *BagRow) bool {
			out.Add(ProjectTuple(r.Tuple, b.ProjIdx), r.N)
			return true
		})
		return out, nil
	case KJoin:
		return evalJoin(b)
	case KGroupAgg:
		return evalGroupAgg(b)
	case KUnion:
		return evalUnion(b)
	case KDiff:
		return evalDiff(b)
	case KDistinct:
		return evalDistinct(b)
	case KOrderLimit:
		return evalOrderLimit(b)
	}
	return nil, fmt.Errorf("ra: eval of unknown bound kind %d", b.Kind)
}

func evalScan(b *Bound) *Bag {
	out := NewBag(b.Schema)
	b.Rel.Scan(func(_ relstore.RowID, t relstore.Tuple) bool {
		out.Add(t, 1)
		return true
	})
	return out
}

// ProjectTuple extracts the indexed fields of t as a fresh tuple.
func ProjectTuple(t relstore.Tuple, idx []int) relstore.Tuple {
	out := make(relstore.Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// KeyOf computes the injective key of the indexed fields of t, used for
// hash-join buckets and group identification.
func KeyOf(t relstore.Tuple, idx []int) string {
	var b []byte
	for _, j := range idx {
		b = append(b, t[j].Key()...)
	}
	return string(b)
}

// ConcatTuples concatenates l and r into a fresh tuple.
func ConcatTuples(l, r relstore.Tuple) relstore.Tuple {
	out := make(relstore.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func evalJoin(b *Bound) (*Bag, error) {
	left, err := Eval(b.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := Eval(b.Children[1])
	if err != nil {
		return nil, err
	}
	out := NewBag(b.Schema)
	emit := func(l, r *BagRow) {
		row := ConcatTuples(l.Tuple, r.Tuple)
		if b.Filter != nil && !b.Filter.Eval(row).AsBool() {
			return
		}
		out.Add(row, l.N*r.N)
	}
	if len(b.LeftKey) == 0 {
		// Cartesian product.
		left.Each(func(_ string, l *BagRow) bool {
			right.Each(func(_ string, r *BagRow) bool {
				emit(l, r)
				return true
			})
			return true
		})
		return out, nil
	}
	// Hash the right side on its key columns, probe with the left.
	table := make(map[string][]*BagRow)
	right.Each(func(_ string, r *BagRow) bool {
		k := KeyOf(r.Tuple, b.RightKey)
		table[k] = append(table[k], r)
		return true
	})
	left.Each(func(_ string, l *BagRow) bool {
		k := KeyOf(l.Tuple, b.LeftKey)
		for _, r := range table[k] {
			emit(l, r)
		}
		return true
	})
	return out, nil
}

// aggAccum accumulates one aggregate over a group during full evaluation.
type aggAccum struct {
	n     int64   // COUNT / COUNT_IF
	sumI  int64   // SUM over ints
	sumF  float64 // SUM over floats / AVG numerator
	cnt   int64   // AVG denominator / MIN-MAX presence
	first bool
	best  relstore.Value // MIN / MAX
}

func evalGroupAgg(b *Bound) (*Bag, error) {
	child, err := Eval(b.Children[0])
	if err != nil {
		return nil, err
	}
	type group struct {
		key    relstore.Tuple
		accums []aggAccum
	}
	groups := make(map[string]*group)
	child.Each(func(_ string, r *BagRow) bool {
		gk := KeyOf(r.Tuple, b.GroupIdx)
		g, ok := groups[gk]
		if !ok {
			g = &group{key: ProjectTuple(r.Tuple, b.GroupIdx), accums: make([]aggAccum, len(b.Aggs))}
			groups[gk] = g
		}
		for i := range b.Aggs {
			accumulate(&g.accums[i], &b.Aggs[i], r.Tuple, r.N)
		}
		return true
	})
	// SQL semantics: an ungrouped aggregate always yields one row, with
	// counting aggregates reading 0 over empty input. Rows with MIN/MAX/
	// AVG are undefined over empty input and are suppressed (no NULLs in
	// this engine); counts-only global rows are emitted.
	if len(b.GroupIdx) == 0 && len(groups) == 0 {
		countsOnly := true
		for _, a := range b.Aggs {
			if a.Fn != FnCount && a.Fn != FnCountIf && a.Fn != FnSum {
				countsOnly = false
				break
			}
		}
		if countsOnly {
			groups[""] = &group{key: relstore.Tuple{}, accums: make([]aggAccum, len(b.Aggs))}
		}
	}
	out := NewBag(b.Schema)
	for _, g := range groups {
		row := make(relstore.Tuple, 0, len(g.key)+len(b.Aggs))
		row = append(row, g.key...)
		ok := true
		for i := range b.Aggs {
			v, valid := finishAgg(&g.accums[i], &b.Aggs[i])
			if !valid {
				ok = false
				break
			}
			row = append(row, v)
		}
		if ok {
			out.Add(row, 1)
		}
	}
	return out, nil
}

func accumulate(acc *aggAccum, a *BoundAgg, t relstore.Tuple, n int64) {
	switch a.Fn {
	case FnCount:
		acc.n += n
	case FnCountIf:
		if a.Pred.Eval(t).AsBool() {
			acc.n += n
		}
	case FnSum:
		v := t[a.ArgIdx]
		if a.Out == relstore.TInt {
			acc.sumI += n * v.AsInt()
		} else {
			acc.sumF += float64(n) * v.AsFloat()
		}
	case FnAvg:
		acc.sumF += float64(n) * t[a.ArgIdx].AsFloat()
		acc.cnt += n
	case FnMin, FnMax:
		v := t[a.ArgIdx]
		acc.cnt += n
		if !acc.first {
			acc.first = true
			acc.best = v
			return
		}
		if a.Fn == FnMin && v.Less(acc.best) {
			acc.best = v
		}
		if a.Fn == FnMax && acc.best.Less(v) {
			acc.best = v
		}
	}
}

func finishAgg(acc *aggAccum, a *BoundAgg) (relstore.Value, bool) {
	switch a.Fn {
	case FnCount, FnCountIf:
		return relstore.Int(acc.n), true
	case FnSum:
		if a.Out == relstore.TInt {
			return relstore.Int(acc.sumI), true
		}
		return relstore.Float(acc.sumF), true
	case FnAvg:
		if acc.cnt == 0 {
			return relstore.Value{}, false
		}
		return relstore.Float(acc.sumF / float64(acc.cnt)), true
	case FnMin, FnMax:
		if !acc.first {
			return relstore.Value{}, false
		}
		return acc.best, true
	}
	return relstore.Value{}, false
}
