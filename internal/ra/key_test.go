package ra

import (
	"testing"

	"factordb/internal/relstore"
)

// TestKeyOfInjective pins the fix for the old ambiguous key encoding,
// which concatenated value renderings with separators that string values
// could forge. Every pair below collided (or could collide) under a
// naive separator/length-digit scheme; the length-prefixed encoding must
// keep them distinct.
func TestKeyOfInjective(t *testing.T) {
	s := func(vs ...string) relstore.Tuple {
		tp := make(relstore.Tuple, len(vs))
		for i, v := range vs {
			tp[i] = relstore.String(v)
		}
		return tp
	}
	pairs := [][2]relstore.Tuple{
		// Boundary shifting between adjacent strings.
		{s("ab", "c"), s("a", "bc")},
		{s("", "abc"), s("abc", "")},
		// Strings forging a separator-based layout.
		{s("a|b"), s("a", "b")},
		{s("a\x00b"), s("a", "b")},
		// Strings forging a decimal-length-prefix layout ("1:a2:bc" etc.).
		{s("1:a"), s("a")},
		{s("2:ab"), s("ab")},
		{s("12", ":x"), s("1", "2:x")},
		// Kind confusion: a string spelling an integer vs the integer, and
		// a string carrying an int key's raw bytes.
		{s("7"), {relstore.Int(7)}},
		{s("\x00\x00\x00\x00\x00\x00\x00\x07"), {relstore.Int(7)}},
		// Int vs float vs bool of equal numeric value.
		{{relstore.Int(1)}, {relstore.Float(1)}},
		{{relstore.Int(1)}, {relstore.Bool(true)}},
		{{relstore.Int(0)}, {relstore.Bool(false)}},
	}
	for _, p := range pairs {
		a, b := p[0].Key(), p[1].Key()
		if a == b {
			t.Errorf("tuples %v and %v share key %q", p[0], p[1], a)
		}
	}

	// The indexed form must agree with the whole-tuple form.
	tp := s("ab", "c", "a|b")
	if got, want := KeyOf(tp, []int{0, 1, 2}), tp.Key(); got != want {
		t.Errorf("KeyOf over all columns = %q, want Tuple.Key %q", got, want)
	}
	if KeyOf(tp, []int{0, 1}) == KeyOf(s("a", "bc"), []int{0, 1}) {
		t.Errorf("projected keys collide across shifted boundaries")
	}

	// AppendKeyOf must be equivalent to KeyOf and honor its dst prefix.
	dst := AppendKeyOf([]byte("prefix"), tp, []int{2, 0})
	if string(dst) != "prefix"+KeyOf(tp, []int{2, 0}) {
		t.Errorf("AppendKeyOf does not extend its destination buffer in place")
	}
}

// TestKeyOrderIrrelevantButPositionNot: same multiset of values at
// different positions must key differently.
func TestKeyOfPositionSensitive(t *testing.T) {
	a := relstore.Tuple{relstore.String("x"), relstore.Int(1)}
	b := relstore.Tuple{relstore.Int(1), relstore.String("x")}
	if a.Key() == b.Key() {
		t.Errorf("tuples with swapped columns share a key")
	}
}
