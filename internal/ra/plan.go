package ra

import "fmt"

// Plan is a logical relational-algebra plan node.
type Plan interface {
	String() string
	plan()
}

// Scan reads all rows of a stored relation under an alias.
type Scan struct {
	Table string
	Alias string // defaults to Table when empty
}

// NewScan builds a table scan. If alias is empty the table name is used.
func NewScan(table, alias string) *Scan {
	if alias == "" {
		alias = table
	}
	return &Scan{Table: table, Alias: alias}
}

func (*Scan) plan() {}

func (s *Scan) String() string {
	if s.Alias != s.Table {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table)
}

// Select filters rows by a boolean predicate.
type Select struct {
	Child Plan
	Pred  Expr
}

// NewSelect builds a selection.
func NewSelect(child Plan, pred Expr) *Select { return &Select{Child: child, Pred: pred} }

func (*Select) plan() {}

func (s *Select) String() string { return fmt.Sprintf("Select[%s](%s)", s.Pred, s.Child) }

// Project keeps only the listed columns (bag projection: multiplicities of
// collapsed rows add up, as required by the paper's multiset semantics for
// query answers under projection).
type Project struct {
	Child Plan
	Cols  []ColRef
}

// NewProject builds a projection.
func NewProject(child Plan, cols ...ColRef) *Project { return &Project{Child: child, Cols: cols} }

func (*Project) plan() {}

func (p *Project) String() string {
	s := "Project["
	for i, c := range p.Cols {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	return s + fmt.Sprintf("](%s)", p.Child)
}

// EquiCond is one equality condition of a join: left column = right column.
type EquiCond struct {
	Left  ColRef
	Right ColRef
}

// Join is a hash equi-join with an optional residual filter evaluated over
// the concatenated row. With no conditions and no filter it degenerates to
// a Cartesian product.
type Join struct {
	Left, Right Plan
	On          []EquiCond
	Filter      Expr // may be nil
}

// NewJoin builds an equi-join.
func NewJoin(left, right Plan, on []EquiCond, filter Expr) *Join {
	return &Join{Left: left, Right: right, On: on, Filter: filter}
}

// NewCross builds a Cartesian product.
func NewCross(left, right Plan) *Join { return &Join{Left: left, Right: right} }

func (*Join) plan() {}

func (j *Join) String() string {
	s := "Join["
	for i, c := range j.On {
		if i > 0 {
			s += ", "
		}
		s += c.Left.String() + "=" + c.Right.String()
	}
	s += "]"
	if j.Filter != nil {
		s += fmt.Sprintf("{%s}", j.Filter)
	}
	return fmt.Sprintf("%s(%s, %s)", s, j.Left, j.Right)
}

// AggFn enumerates aggregate functions.
type AggFn uint8

// Aggregate functions. FnCountIf counts rows satisfying Agg.Pred, which is
// how the planner lowers the paper's correlated COUNT(*) subqueries
// (Query 3) into a single incrementally maintainable group-aggregate.
const (
	FnCount AggFn = iota
	FnCountIf
	FnSum
	FnAvg
	FnMin
	FnMax
)

func (f AggFn) String() string {
	switch f {
	case FnCount:
		return "COUNT"
	case FnCountIf:
		return "COUNT_IF"
	case FnSum:
		return "SUM"
	case FnAvg:
		return "AVG"
	case FnMin:
		return "MIN"
	case FnMax:
		return "MAX"
	}
	return "?"
}

// Agg is one aggregate output of a GroupAgg.
type Agg struct {
	Fn   AggFn
	Arg  ColRef // ignored for FnCount / FnCountIf
	Pred Expr   // FnCountIf only
	As   string // output column name
}

// GroupAgg groups rows by the GroupBy columns and computes aggregates.
// With an empty GroupBy the plan always emits exactly one global row, even
// over empty input (COUNT(*) = 0), matching SQL semantics.
type GroupAgg struct {
	Child   Plan
	GroupBy []ColRef
	Aggs    []Agg
}

// NewGroupAgg builds a grouped aggregation.
func NewGroupAgg(child Plan, groupBy []ColRef, aggs ...Agg) *GroupAgg {
	return &GroupAgg{Child: child, GroupBy: groupBy, Aggs: aggs}
}

func (*GroupAgg) plan() {}

func (g *GroupAgg) String() string {
	s := "GroupAgg["
	for i, c := range g.GroupBy {
		if i > 0 {
			s += ", "
		}
		s += c.String()
	}
	s += ";"
	for i, a := range g.Aggs {
		if i > 0 {
			s += ", "
		}
		if a.Fn == FnCountIf {
			s += fmt.Sprintf(" %s(%s) AS %s", a.Fn, a.Pred, a.As)
		} else {
			s += fmt.Sprintf(" %s(%s) AS %s", a.Fn, a.Arg, a.As)
		}
	}
	return s + fmt.Sprintf("](%s)", g.Child)
}
