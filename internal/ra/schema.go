// Package ra implements logical relational-algebra plans with bag
// (multiset) semantics over the relstore engine: scans, selections,
// projections, equi-joins with residual filters, and grouped aggregation
// (COUNT(*), conditional COUNT, SUM, AVG, MIN, MAX).
//
// Plans are first bound against a database catalog (resolving column
// references and checking types) and the resulting Bound tree is shared by
// two consumers: the full evaluator in this package (used by the naive
// query evaluator, Algorithm 3 of the paper) and the incremental
// view-maintenance engine in package ivm (Algorithm 1).
package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// ColRef names a column, optionally qualified by a relation alias.
// An empty Rel matches any alias provided the column name is unambiguous.
type ColRef struct {
	Rel string
	Col string
}

// C is shorthand for constructing a qualified column reference.
func C(rel, col string) ColRef { return ColRef{Rel: rel, Col: col} }

// String renders the reference as it would appear in SQL.
func (c ColRef) String() string {
	if c.Rel == "" {
		return c.Col
	}
	return c.Rel + "." + c.Col
}

// OutCol is one column of a plan's output row.
type OutCol struct {
	Ref  ColRef
	Type relstore.Type
}

// RowSchema describes the output row of a bound plan node.
type RowSchema struct {
	Cols []OutCol
}

// Arity returns the number of output columns.
func (s *RowSchema) Arity() int { return len(s.Cols) }

// Resolve returns the position of ref in the schema. Unqualified
// references must match exactly one column.
func (s *RowSchema) Resolve(ref ColRef) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if c.Ref.Col != ref.Col {
			continue
		}
		if ref.Rel != "" && c.Ref.Rel != ref.Rel {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("ra: ambiguous column reference %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("ra: unknown column %s", ref)
	}
	return found, nil
}

// ColNames returns the rendered names of all output columns, for display.
func (s *RowSchema) ColNames() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Ref.String()
	}
	return out
}
