package ra

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"factordb/internal/relstore"
)

// Canonicalize rewrites a logical plan into the canonical form shared by
// every plan-consuming layer: the SQL planner emits canonical plans, the
// serving engine keys its result cache on their fingerprints, and the
// per-chain view registries share materialized views between queries whose
// canonical plans coincide. The pass is purely structural — it never
// consults a catalog — and preserves semantics exactly:
//
//   - table aliases are renamed to position-derived names (_c0, _c1, …)
//     in pre-order, so alias spelling cannot distinguish two plans;
//   - AND/OR conjunctions are flattened, deduplicated, and sorted by
//     their canonical rendering, so predicate order cannot either;
//   - comparisons are oriented (constants move to the right-hand side,
//     mirroring the operator) and symmetric operators (=, !=) order
//     their operands canonically;
//   - constant subexpressions fold (5 < 7 becomes TRUE), TRUE selection
//     predicates drop the Select node, and TRUE join filters drop to nil;
//   - join equi-condition lists are sorted.
//
// Output column names, aggregate output names, and the relative order of
// projection/group/aggregate/sort columns are untouched: they define the
// result schema. Canonicalize is idempotent.
func Canonicalize(p Plan) Plan {
	ren := canonAliasMap(p)
	return canonNode(p, ren)
}

// PlanFingerprint returns a stable content hash of the plan's canonical
// form, usable as a cache key before the plan is bound to a catalog. Two
// plans differing only in alias spelling, predicate order, redundant
// parenthesization, or foldable constants fingerprint identically. The
// "qfp1:" prefix versions the encoding: it only changes when the
// canonical form itself changes incompatibly.
//
// The logical fingerprint is coarser than (*Bound).Fingerprint, which
// resolves columns to positions and therefore also unifies qualified and
// unqualified spellings of the same reference.
func PlanFingerprint(p Plan) string {
	return CanonicalFingerprint(Canonicalize(p))
}

// CanonicalFingerprint hashes a plan that is already in canonical form —
// the sqlparse planner's output — without re-running Canonicalize; hot
// paths that compile per request (the serving engine's cache probe) use
// it to avoid canonicalizing twice. Passing a non-canonical plan yields
// a valid but needlessly distinct key (equal queries may miss shared
// entries); when in doubt use PlanFingerprint.
func CanonicalFingerprint(canonical Plan) string {
	sum := sha256.Sum256([]byte("raplan1\x00" + canonical.String()))
	return "qfp1:" + hex.EncodeToString(sum[:16])
}

// canonAliasMap assigns each distinct scan alias a position-derived name
// in pre-order, left to right — the traversal is structural, so any two
// plans of the same shape rename corresponding aliases identically.
//
// A plan with a single alias gets the stronger rule: a qualifier naming
// that alias is provably redundant (it can only mean that one scan, and
// aggregate outputs are unqualified by construction), so the canonical
// form drops it — the map sends the alias to "", and the scan itself
// takes a reserved name (see canonNode). SELECT T.X FROM R T and
// SELECT X FROM R then share one canonical plan, while a qualifier that
// never named the alias is left intact and still fails at bind. The
// empty alias is never mapped: an unqualified reference in a multi-scan
// plan means "resolve by name", and pinning it to one scan would change
// which column it names.
func canonAliasMap(p Plan) map[string]string {
	ren := make(map[string]string)
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *Scan:
			if _, ok := ren[n.Alias]; n.Alias != "" && !ok {
				ren[n.Alias] = fmt.Sprintf("_c%d", len(ren))
			}
		case *Select:
			walk(n.Child)
		case *Project:
			walk(n.Child)
		case *Join:
			walk(n.Left)
			walk(n.Right)
		case *GroupAgg:
			walk(n.Child)
		case *Union:
			walk(n.Left)
			walk(n.Right)
		case *Diff:
			walk(n.Left)
			walk(n.Right)
		case *Distinct:
			walk(n.Child)
		case *OrderLimit:
			walk(n.Child)
		}
	}
	walk(p)
	if len(ren) == 1 {
		for alias := range ren {
			ren[alias] = ""
		}
	}
	return ren
}

func renRef(ref ColRef, ren map[string]string) ColRef {
	if to, ok := ren[ref.Rel]; ok {
		ref.Rel = to
	}
	return ref
}

func canonNode(p Plan, ren map[string]string) Plan {
	switch n := p.(type) {
	case *Scan:
		alias, renamed := ren[n.Alias]
		switch {
		case !renamed:
			alias = n.Alias // hand-built alias-less scan: keep as-is
		case alias == "":
			// Single-alias plan: references were unqualified, so the scan
			// takes a reserved name no SQL qualifier can spell (unquoted
			// identifiers fold to upper case) — a stale qualifier that
			// never matched the alias keeps failing to bind.
			alias = "_c0"
		}
		return &Scan{Table: n.Table, Alias: alias}
	case *Select:
		child := canonNode(n.Child, ren)
		pred := canonExpr(n.Pred, ren)
		if isConstBool(pred, true) {
			return child
		}
		return &Select{Child: child, Pred: pred}
	case *Project:
		cols := make([]ColRef, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = renRef(c, ren)
		}
		return &Project{Child: canonNode(n.Child, ren), Cols: cols}
	case *Join:
		j := &Join{Left: canonNode(n.Left, ren), Right: canonNode(n.Right, ren)}
		if len(n.On) > 0 {
			j.On = make([]EquiCond, len(n.On))
			for i, c := range n.On {
				j.On[i] = EquiCond{Left: renRef(c.Left, ren), Right: renRef(c.Right, ren)}
			}
			sort.Slice(j.On, func(a, b int) bool {
				if j.On[a].Left != j.On[b].Left {
					return j.On[a].Left.String() < j.On[b].Left.String()
				}
				return j.On[a].Right.String() < j.On[b].Right.String()
			})
		}
		if n.Filter != nil {
			if f := canonExpr(n.Filter, ren); !isConstBool(f, true) {
				j.Filter = f
			}
		}
		return j
	case *GroupAgg:
		g := &GroupAgg{Child: canonNode(n.Child, ren)}
		for _, c := range n.GroupBy {
			g.GroupBy = append(g.GroupBy, renRef(c, ren))
		}
		for _, a := range n.Aggs {
			ca := Agg{Fn: a.Fn, Arg: renRef(a.Arg, ren), As: a.As}
			if a.Pred != nil {
				ca.Pred = canonExpr(a.Pred, ren)
			}
			g.Aggs = append(g.Aggs, ca)
		}
		return g
	case *Union:
		return &Union{Left: canonNode(n.Left, ren), Right: canonNode(n.Right, ren)}
	case *Diff:
		return &Diff{Left: canonNode(n.Left, ren), Right: canonNode(n.Right, ren)}
	case *Distinct:
		return &Distinct{Child: canonNode(n.Child, ren)}
	case *OrderLimit:
		keys := make([]SortKey, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = SortKey{Col: renRef(k.Col, ren), Desc: k.Desc}
		}
		return &OrderLimit{Child: canonNode(n.Child, ren), Keys: keys, Limit: n.Limit}
	}
	return p
}

// isConstBool reports whether e is a boolean literal equal to want.
func isConstBool(e Expr, want bool) bool {
	c, ok := e.(constExpr)
	return ok && c.v.Kind() == relstore.TBool && c.v.AsBool() == want
}

// mirror returns the comparison that swaps the operand sides of op.
func mirror(op CmpOp) CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // = and != are symmetric
}

// canonExpr canonicalizes a scalar expression under the alias renaming:
// flatten, fold, orient, sort, deduplicate. Unknown Expr implementations
// pass through untouched (they canonicalize to themselves).
func canonExpr(e Expr, ren map[string]string) Expr {
	switch x := e.(type) {
	case colExpr:
		return colExpr{renRef(x.ref, ren)}
	case constExpr:
		return x
	case cmpExpr:
		return canonCmp(x, ren)
	case andExpr:
		terms, isFalse := canonBoolTerms(x.terms, ren, true)
		switch {
		case isFalse:
			return constExpr{relstore.Bool(false)}
		case len(terms) == 0:
			return constExpr{relstore.Bool(true)}
		case len(terms) == 1:
			return terms[0]
		}
		return andExpr{terms}
	case orExpr:
		terms, isTrue := canonBoolTerms(x.terms, ren, false)
		switch {
		case isTrue:
			return constExpr{relstore.Bool(true)}
		case len(terms) == 0:
			return constExpr{relstore.Bool(false)}
		case len(terms) == 1:
			return terms[0]
		}
		return orExpr{terms}
	case notExpr:
		inner := canonExpr(x.inner, ren)
		if c, ok := inner.(constExpr); ok && c.v.Kind() == relstore.TBool {
			return constExpr{relstore.Bool(!c.v.AsBool())}
		}
		if nn, ok := inner.(notExpr); ok {
			return nn.inner
		}
		return notExpr{inner}
	}
	return e
}

func canonCmp(x cmpExpr, ren map[string]string) Expr {
	op := x.op
	l := canonExpr(x.l, ren)
	r := canonExpr(x.r, ren)
	lc, lConst := l.(constExpr)
	rc, rConst := r.(constExpr)
	switch {
	case lConst && rConst:
		// Fold only comparisons binding would accept; the rest keep their
		// shape so the type error still surfaces at bind time.
		if comparable2(lc.v.Kind(), rc.v.Kind()) &&
			!(lc.v.Kind() == relstore.TBool && op != OpEq && op != OpNe) {
			return constExpr{relstore.Bool(evalCmp(op, lc.v, rc.v))}
		}
	case lConst:
		// Orient the literal to the right: 5 < X becomes X > 5.
		op, l, r = mirror(op), r, l
	case !rConst && (op == OpEq || op == OpNe):
		// Symmetric operators over two non-literal operands order them
		// canonically (a literal operand is already pinned to the right).
		if r.String() < l.String() {
			l, r = r, l
		}
	}
	return cmpExpr{op, l, r}
}

func evalCmp(op CmpOp, lv, rv relstore.Value) bool {
	switch op {
	case OpEq:
		return lv.Equal(rv)
	case OpNe:
		return !lv.Equal(rv)
	case OpLt:
		return lv.Less(rv)
	case OpLe:
		return !rv.Less(lv)
	case OpGt:
		return rv.Less(lv)
	case OpGe:
		return !lv.Less(rv)
	}
	return false
}

// canonBoolTerms canonicalizes and flattens the terms of a conjunction
// (and=true) or disjunction (and=false), drops the connective's identity
// literal, deduplicates, and sorts. It reports whether the connective's
// absorbing literal appeared, collapsing the whole expression.
func canonBoolTerms(terms []Expr, ren map[string]string, and bool) (out []Expr, absorbed bool) {
	var flat func(ts []Expr) bool
	flat = func(ts []Expr) bool {
		for _, t := range ts {
			c := canonExpr(t, ren)
			if and {
				if inner, ok := c.(andExpr); ok {
					if flat(inner.terms) {
						return true
					}
					continue
				}
			} else {
				if inner, ok := c.(orExpr); ok {
					if flat(inner.terms) {
						return true
					}
					continue
				}
			}
			if isConstBool(c, and) {
				continue // identity: TRUE in AND, FALSE in OR
			}
			if isConstBool(c, !and) {
				return true // absorbing: FALSE in AND, TRUE in OR
			}
			out = append(out, c)
		}
		return false
	}
	if flat(terms) {
		return nil, true
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	dedup := out[:0]
	for i, t := range out {
		if i > 0 && t.String() == out[i-1].String() {
			continue
		}
		dedup = append(dedup, t)
	}
	return dedup, false
}
