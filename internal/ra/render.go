package ra

import (
	"fmt"
	"strings"
)

// Render pretty-prints a plan as an indented tree, one node per line,
// children indented two spaces below their parent. It reuses each node's
// single-line String() header but expands the operator tree vertically,
// which is what EXPLAIN shows. Unknown node kinds fall back to their
// full single-line String().
func Render(p Plan) []string {
	var lines []string
	renderInto(p, 0, &lines)
	return lines
}

func renderInto(p Plan, depth int, lines *[]string) {
	ind := strings.Repeat("  ", depth)
	emit := func(format string, args ...any) {
		*lines = append(*lines, ind+fmt.Sprintf(format, args...))
	}
	switch n := p.(type) {
	case *Scan:
		emit("%s", n.String())
	case *Select:
		emit("Select[%s]", n.Pred)
		renderInto(n.Child, depth+1, lines)
	case *Project:
		cols := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = c.String()
		}
		emit("Project[%s]", strings.Join(cols, ", "))
		renderInto(n.Child, depth+1, lines)
	case *Join:
		on := make([]string, len(n.On))
		for i, c := range n.On {
			on[i] = c.Left.String() + "=" + c.Right.String()
		}
		h := fmt.Sprintf("Join[%s]", strings.Join(on, ", "))
		if n.Filter != nil {
			h += fmt.Sprintf("{%s}", n.Filter)
		}
		emit("%s", h)
		renderInto(n.Left, depth+1, lines)
		renderInto(n.Right, depth+1, lines)
	case *GroupAgg:
		group := make([]string, len(n.GroupBy))
		for i, c := range n.GroupBy {
			group[i] = c.String()
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			if a.Fn == FnCountIf {
				aggs[i] = fmt.Sprintf("%s(%s) AS %s", a.Fn, a.Pred, a.As)
			} else {
				aggs[i] = fmt.Sprintf("%s(%s) AS %s", a.Fn, a.Arg, a.As)
			}
		}
		emit("GroupAgg[%s; %s]", strings.Join(group, ", "), strings.Join(aggs, ", "))
		renderInto(n.Child, depth+1, lines)
	case *Distinct:
		emit("Distinct")
		renderInto(n.Child, depth+1, lines)
	case *OrderLimit:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.String()
		}
		emit("OrderLimit[%s; limit %d]", strings.Join(keys, ", "), n.Limit)
		renderInto(n.Child, depth+1, lines)
	case *Union:
		emit("Union")
		renderInto(n.Left, depth+1, lines)
		renderInto(n.Right, depth+1, lines)
	case *Diff:
		emit("Diff")
		renderInto(n.Left, depth+1, lines)
		renderInto(n.Right, depth+1, lines)
	default:
		emit("%s", p)
	}
}
