package ra

import "factordb/internal/relstore"

// AppendKeyOf appends the injective key encoding of the indexed fields of
// t to dst and returns the extended slice. Each field contributes its
// self-delimiting relstore encoding, so distinct field sequences can
// never collide (a plain concatenation of raw payloads could: ["ab","c"]
// versus ["a","bc"]). Hot paths — hash-join probes, group identification,
// delta folding — reuse dst as a scratch buffer, making key construction
// allocation-free.
func AppendKeyOf(dst []byte, t relstore.Tuple, idx []int) []byte {
	for _, j := range idx {
		dst = t[j].AppendKey(dst)
	}
	return dst
}

// KeyOf computes the injective key of the indexed fields of t as a
// string, for callers that store the key rather than probing with it.
func KeyOf(t relstore.Tuple, idx []int) string {
	return string(AppendKeyOf(nil, t, idx))
}
