package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// Union is bag union (UNION ALL): multiplicities add. Column names come
// from the left input; arities and types must match positionally.
type Union struct {
	Left, Right Plan
}

// NewUnion builds a bag union.
func NewUnion(left, right Plan) *Union { return &Union{Left: left, Right: right} }

func (*Union) plan() {}

func (u *Union) String() string { return fmt.Sprintf("Union(%s, %s)", u.Left, u.Right) }

// Diff is bag difference with monus semantics (EXCEPT ALL): the output
// multiplicity is max(0, left − right).
type Diff struct {
	Left, Right Plan
}

// NewDiff builds a bag difference.
func NewDiff(left, right Plan) *Diff { return &Diff{Left: left, Right: right} }

func (*Diff) plan() {}

func (d *Diff) String() string { return fmt.Sprintf("Diff(%s, %s)", d.Left, d.Right) }

// Distinct collapses multiplicities to one (SELECT DISTINCT).
type Distinct struct {
	Child Plan
}

// NewDistinct builds a duplicate-eliminating node.
func NewDistinct(child Plan) *Distinct { return &Distinct{Child: child} }

func (*Distinct) plan() {}

func (d *Distinct) String() string { return fmt.Sprintf("Distinct(%s)", d.Child) }

// bindSetOperands binds both sides of a union/difference and checks that
// the schemas are positionally compatible.
func bindSetOperands(db *relstore.DB, left, right Plan, what string) (*Bound, *Bound, error) {
	bl, err := Bind(db, left)
	if err != nil {
		return nil, nil, err
	}
	br, err := Bind(db, right)
	if err != nil {
		return nil, nil, err
	}
	if bl.Schema.Arity() != br.Schema.Arity() {
		return nil, nil, fmt.Errorf("ra: %s operands have arities %d and %d",
			what, bl.Schema.Arity(), br.Schema.Arity())
	}
	for i := range bl.Schema.Cols {
		lt, rt := bl.Schema.Cols[i].Type, br.Schema.Cols[i].Type
		if lt != rt {
			return nil, nil, fmt.Errorf("ra: %s column %d has types %v and %v", what, i, lt, rt)
		}
	}
	return bl, br, nil
}

func bindUnion(db *relstore.DB, n *Union) (*Bound, error) {
	bl, br, err := bindSetOperands(db, n.Left, n.Right, "UNION")
	if err != nil {
		return nil, err
	}
	return &Bound{Kind: KUnion, Schema: bl.Schema, Source: n, Children: []*Bound{bl, br}}, nil
}

func bindDiff(db *relstore.DB, n *Diff) (*Bound, error) {
	bl, br, err := bindSetOperands(db, n.Left, n.Right, "EXCEPT")
	if err != nil {
		return nil, err
	}
	return &Bound{Kind: KDiff, Schema: bl.Schema, Source: n, Children: []*Bound{bl, br}}, nil
}

func bindDistinct(db *relstore.DB, n *Distinct) (*Bound, error) {
	child, err := Bind(db, n.Child)
	if err != nil {
		return nil, err
	}
	return &Bound{Kind: KDistinct, Schema: child.Schema, Source: n, Children: []*Bound{child}}, nil
}
