package ra

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"factordb/internal/relstore"
)

// expectedAnalyzeRows computes, in the same pre-order AnalyzeStream
// indexes its nodes, the per-operator output multiplicity the streaming
// executor must report: matEval of each pushed-down subtree, except that
// subtrees the executor provably never runs (the probe side of a join
// whose build input is empty) report zero — exactly the "never executed"
// convention of EXPLAIN ANALYZE.
func expectedAnalyzeRows(t *testing.T, b *Bound, live bool, out *[]int64) {
	t.Helper()
	var total int64
	if live {
		bag, err := matEval(b)
		if err != nil {
			t.Fatalf("matEval: %v", err)
		}
		total = bag.Size()
	}
	*out = append(*out, total)
	switch b.Kind {
	case KJoin:
		rightBag, err := matEval(b.Children[1])
		if err != nil {
			t.Fatalf("matEval: %v", err)
		}
		// The probe side only runs when the build table is non-empty.
		expectedAnalyzeRows(t, b.Children[0], live && rightBag.Size() > 0, out)
		expectedAnalyzeRows(t, b.Children[1], live, out)
	default:
		for _, c := range b.Children {
			expectedAnalyzeRows(t, c, live, out)
		}
	}
}

// TestAnalyzeRowsMatchOracle sweeps the full operator-combination plan
// set over randomized worlds and asserts that every operator's actual
// row count reported by AnalyzeStream equals the materialized reference
// evaluation of that operator's pushed-down subtree.
func TestAnalyzeRowsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for world := 0; world < 6; world++ {
		rows := 24
		if world == 0 {
			rows = 0
		}
		db := sweepWorld(rng, rows)
		names := make([]string, 0)
		plans := sweepPlans()
		for name := range plans {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bound, err := Bind(db, plans[name])
			if err != nil {
				t.Fatalf("world %d %s: bind: %v", world, name, err)
			}
			it, owned, st, err := AnalyzeStream(bound)
			if err != nil {
				t.Fatalf("world %d %s: AnalyzeStream: %v", world, name, err)
			}
			got := NewBag(bound.Schema)
			it(func(tp relstore.Tuple, n int64) bool {
				if owned {
					got.Add(tp, n)
				} else {
					got.Add(tp.Clone(), n)
				}
				return true
			})
			// The instrumented pipeline must produce exactly the plain
			// pipeline's (= the oracle's) result.
			want, err := matEval(Pushdown(bound))
			if err != nil {
				t.Fatalf("world %d %s: matEval: %v", world, name, err)
			}
			if !got.Equal(want) {
				t.Errorf("world %d %s: analyze pipeline result differs\n got: %v\nwant: %v",
					world, name, dumpBag(got), dumpBag(want))
			}
			var expect []int64
			expectedAnalyzeRows(t, Pushdown(bound), true, &expect)
			if len(expect) != len(st.Nodes) {
				t.Fatalf("world %d %s: %d instrumented nodes, oracle walked %d",
					world, name, len(st.Nodes), len(expect))
			}
			for i, nd := range st.Nodes {
				if nd.Rows != expect[i] {
					t.Errorf("world %d %s: node %d (%s): actual rows %d, oracle %d",
						world, name, i, nd.Name, nd.Rows, expect[i])
				}
			}
			if st.Runs != 1 {
				t.Errorf("world %d %s: runs = %d, want 1", world, name, st.Runs)
			}
			// A second run accumulates: every count doubles.
			it(func(tp relstore.Tuple, n int64) bool { return true })
			if st.Runs != 2 {
				t.Errorf("world %d %s: runs after re-run = %d, want 2", world, name, st.Runs)
			}
			for i, nd := range st.Nodes {
				if nd.Rows != 2*expect[i] {
					t.Errorf("world %d %s: node %d rows after re-run = %d, want %d",
						world, name, i, nd.Rows, 2*expect[i])
				}
			}
		}
	}
}

// TestAnalyzeRenderAndMerge pins the render shape (tree lines with
// actual/estimated rows and a totals line) and cross-chain merging.
func TestAnalyzeRenderAndMerge(t *testing.T) {
	db := sweepWorld(rand.New(rand.NewSource(5)), 24)
	plan := sweepPlans()["select-over-join"]
	bound, err := Bind(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *StreamStats {
		it, _, st, err := AnalyzeStream(bound)
		if err != nil {
			t.Fatal(err)
		}
		it(func(relstore.Tuple, int64) bool { return true })
		return st
	}
	a, b := run(), run()
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.Runs != 2 {
		t.Fatalf("merged runs = %d, want 2", a.Runs)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Rows != 2*b.Nodes[i].Rows {
			t.Errorf("node %d merged rows = %d, want %d", i, a.Nodes[i].Rows, 2*b.Nodes[i].Rows)
		}
	}
	lines := a.Render()
	if len(lines) != len(a.Nodes)+1 {
		t.Fatalf("render produced %d lines, want %d", len(lines), len(a.Nodes)+1)
	}
	for i, nd := range a.Nodes {
		if !strings.Contains(lines[i], "actual rows=") || !strings.Contains(lines[i], "est rows=") {
			t.Errorf("line %d missing row annotation: %q", i, lines[i])
		}
		if !strings.HasPrefix(lines[i], strings.Repeat("  ", nd.Depth)+nd.Name) {
			t.Errorf("line %d not indented as depth-%d %s: %q", i, nd.Depth, nd.Name, lines[i])
		}
	}
	if !strings.HasPrefix(lines[len(lines)-1], "analyze: runs=2") {
		t.Errorf("totals line = %q", lines[len(lines)-1])
	}
	// The pushed scan filter must be called out as pushdown residue.
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "pushdown: filter fused into scan") {
		t.Errorf("render lacks pushdown residue annotation:\n%s", joined)
	}
	// Merging mismatched shapes must fail, not corrupt.
	other, err := Bind(db, sweepPlans()["scan"])
	if err != nil {
		t.Fatal(err)
	}
	_, _, st2, err := AnalyzeStream(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(st2); err == nil {
		t.Error("merge of mismatched plan shapes succeeded")
	}
}
