package ra

import "fmt"

// Pushdown rewrites a bound tree for streaming execution by moving
// selection predicates as close to the data as possible: conjuncts of
// Select predicates (and of join residual filters) sink below joins onto
// the side whose columns they reference, and predicates reaching a scan
// fuse into the scan itself (executed via relstore.ScanWhere, so rejected
// tuples never leave the storage layer).
//
// The transform is streaming-only and behavior-preserving: the input tree
// is never mutated (rewritten paths are cloned, untouched subtrees are
// shared), so the same Bound tree can still feed the ivm compiler and the
// fingerprint registry, which depend on the original shape. Conjuncts are
// re-bound against the schema of their new position; any conjunct that
// cannot be re-bound stays as a Select at its original position, so the
// transform can relocate predicates but never drop one.
func Pushdown(b *Bound) *Bound {
	return pushPreds(b, nil)
}

// pushPreds rewrites b with the given unbound conjuncts applied on top of
// it, sinking them as deep as legality allows. The returned tree is
// semantically Select[And(preds)](b).
func pushPreds(b *Bound, preds []Expr) *Bound {
	switch b.Kind {
	case KSelect:
		src, ok := b.Source.(*Select)
		if !ok {
			// A select whose unbound source is unavailable cannot have its
			// predicate re-bound elsewhere; keep it in place as a barrier.
			nb := cloneNode(b)
			nb.Children = []*Bound{pushPreds(b.Children[0], nil)}
			return wrapSelect(nb, preds)
		}
		// Dissolve the select: its conjuncts join the in-flight set and
		// continue sinking through the child.
		return pushPreds(b.Children[0], append(splitConjuncts(src.Pred), preds...))

	case KScan:
		if len(preds) == 0 {
			return b
		}
		pred, err := BindPredicate(b.Schema, And(preds...))
		if err != nil {
			return wrapSelect(b, preds)
		}
		nb := cloneNode(b)
		nb.Pred = pred
		return nb

	case KProject:
		// A conjunct sinks below the projection iff its columns survive in
		// the child schema (re-bind decides).
		var down, up []Expr
		for _, e := range preds {
			if bindable(b.Children[0].Schema, e) {
				down = append(down, e)
			} else {
				up = append(up, e)
			}
		}
		nb := cloneNode(b)
		nb.Children = []*Bound{pushPreds(b.Children[0], down)}
		return wrapSelect(nb, up)

	case KJoin:
		all := preds
		replacedFilter := false
		if src, ok := b.Source.(*Join); ok && src.Filter != nil {
			// The residual filter's conjuncts are candidates too: a filter
			// touching only one side is really a selection in disguise.
			all = append(splitConjuncts(src.Filter), preds...)
			replacedFilter = true
		}
		var lp, rp, residual []Expr
		for _, e := range all {
			switch {
			case bindable(b.Children[0].Schema, e):
				lp = append(lp, e)
			case bindable(b.Children[1].Schema, e):
				rp = append(rp, e)
			default:
				residual = append(residual, e)
			}
		}
		nb := cloneNode(b)
		nb.Children = []*Bound{pushPreds(b.Children[0], lp), pushPreds(b.Children[1], rp)}
		if replacedFilter {
			nb.Filter = nil
		}
		if len(residual) > 0 {
			f, err := BindPredicate(b.Schema, And(residual...))
			if err != nil {
				return wrapSelect(nb, residual)
			}
			if nb.Filter != nil {
				f = boundAnd{terms: []BExpr{nb.Filter, f}}
			}
			nb.Filter = f
		}
		return nb

	case KDistinct:
		// Selection commutes with duplicate elimination.
		nb := cloneNode(b)
		nb.Children = []*Bound{pushPreds(b.Children[0], preds)}
		return nb
	}

	// Pushdown barriers — aggregation changes the row shape, set operations
	// have positionally (not nominally) matched sides, and order-limit's
	// output depends on rows a filter would remove. Predicates stop here;
	// the subtrees below still get their own rewrite.
	nb := b
	if len(b.Children) > 0 {
		nb = cloneNode(b)
		nb.Children = make([]*Bound, len(b.Children))
		for i, c := range b.Children {
			nb.Children[i] = pushPreds(c, nil)
		}
	}
	return wrapSelect(nb, preds)
}

// splitConjuncts flattens an unbound predicate into its top-level AND
// conjuncts, recursing through nested conjunctions.
func splitConjuncts(e Expr) []Expr {
	if a, ok := e.(andExpr); ok {
		var out []Expr
		for _, t := range a.terms {
			out = append(out, splitConjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

// bindable reports whether e can be bound as a predicate against sch.
func bindable(sch *RowSchema, e Expr) bool {
	_, err := BindPredicate(sch, e)
	return err == nil
}

// wrapSelect places the remaining conjuncts as a synthesized selection
// above b. Every conjunct reaching here previously bound at a node with
// this same output schema, so re-binding cannot fail; if it ever does,
// the transform has violated its own invariant and silently dropping the
// predicate would corrupt results — fail loudly instead.
func wrapSelect(b *Bound, preds []Expr) *Bound {
	if len(preds) == 0 {
		return b
	}
	pred, err := BindPredicate(b.Schema, And(preds...))
	if err != nil {
		panic(fmt.Sprintf("ra: pushdown cannot re-bind predicate at its origin schema: %v", err))
	}
	return &Bound{Kind: KSelect, Schema: b.Schema, Children: []*Bound{b}, Pred: pred}
}

// cloneNode shallow-copies a bound node so the rewrite never mutates the
// caller's tree. The fingerprint memo is dropped: a rewritten node no
// longer hashes like its original, and pushed trees are never
// fingerprinted anyway.
func cloneNode(b *Bound) *Bound {
	nb := *b
	nb.fp = ""
	return &nb
}
