package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// Iterator streams the rows of a bag-valued (sub)query as (tuple,
// multiplicity) pairs — the lazy alternative to materializing a *Bag at
// every operator. Invoking the iterator runs the pipeline once against
// the current base relations; an Iterator compiled by Stream may be
// invoked any number of times (each invocation allocates its own
// transient state), which is how the naive evaluator re-runs one compiled
// pipeline per MCMC sample.
//
// Contract:
//
//   - yield is called once per output row occurrence; the same logical
//     tuple may arrive split across several calls (e.g. duplicate rows
//     surviving a filter), and consumers that need net multiplicities
//     must fold. Multiplicities on the evaluation path are positive.
//   - A yielded tuple is only valid until yield returns unless the
//     pipeline was compiled with owned=true: operators that build rows
//     (projections, join concatenation) reuse one scratch buffer across
//     calls. Consumers that retain tuples past the call must Clone them
//     when owned is false.
//   - yield returning false stops the pipeline; the iterator returns
//     promptly and may be invoked again later (Close-once per run is
//     implicit — there is no separate Close).
type Iterator func(yield func(t relstore.Tuple, n int64) bool)

// Stream compiles a bound plan into a single-pass streaming pipeline:
// predicates are pushed below joins and fused into relation scans (see
// Pushdown), joins build one pre-sized hash table on the right input and
// probe with the left, and per-tuple key and row construction goes
// through reused scratch buffers. The returned owned flag reports whether
// yielded tuples are stable beyond the yield call (see Iterator).
//
// All errors are compile-time (unknown node kinds); running the iterator
// cannot fail. The input tree is not mutated.
func Stream(b *Bound) (it Iterator, owned bool, err error) {
	return compileStream(Pushdown(b))
}

// streamCompiler compiles one bound subtree into an iterator. The plain
// pipeline uses compileStream itself; AnalyzeStream supplies a wrapping
// compiler that interposes per-operator instrumentation at every
// parent/child edge. The indirection is compile-time only — it never
// appears on the per-row path — so the uninstrumented pipeline is
// unchanged.
type streamCompiler func(*Bound) (Iterator, bool, error)

func compileStream(b *Bound) (Iterator, bool, error) {
	return compileNode(b, compileStream)
}

// compileNode builds one operator, compiling its children through the
// supplied compiler.
func compileNode(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	switch b.Kind {
	case KScan:
		return streamScan(b), true, nil
	case KSelect:
		return streamSelect(b, compile)
	case KProject:
		return streamProject(b, compile)
	case KJoin:
		return streamJoin(b, compile)
	case KGroupAgg:
		return streamGroupAgg(b, compile)
	case KUnion:
		return streamUnion(b, compile)
	case KDiff:
		return streamDiff(b, compile)
	case KDistinct:
		return streamDistinct(b, compile)
	case KOrderLimit:
		return streamOrderLimit(b, compile)
	}
	return nil, false, fmt.Errorf("ra: stream of unknown bound kind %d", b.Kind)
}

// streamScan yields the relation's rows, applying a fused scan filter (a
// selection pushed all the way into the storage layer) when present.
// Relation rows are stable — updates replace tuples, never mutate them —
// so scans are owned.
func streamScan(b *Bound) Iterator {
	rel, pred := b.Rel, b.Pred
	if pred == nil {
		return func(yield func(relstore.Tuple, int64) bool) {
			rel.Scan(func(_ relstore.RowID, t relstore.Tuple) bool {
				return yield(t, 1)
			})
		}
	}
	return func(yield func(relstore.Tuple, int64) bool) {
		rel.ScanWhere(
			func(t relstore.Tuple) bool { return pred.Eval(t).AsBool() },
			func(_ relstore.RowID, t relstore.Tuple) bool { return yield(t, 1) },
		)
	}
}

// streamSelect filters the child stream in place: rejected tuples are
// dropped without surfacing, accepted ones pass through untouched.
func streamSelect(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	child, owned, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	pred := b.Pred
	it := func(yield func(relstore.Tuple, int64) bool) {
		child(func(t relstore.Tuple, n int64) bool {
			if !pred.Eval(t).AsBool() {
				return true
			}
			return yield(t, n)
		})
	}
	return it, owned, nil
}

// streamProject rewrites each row into one reused scratch buffer, so a
// projection allocates a single tuple per pipeline run instead of one per
// input row. Its output is therefore never owned.
func streamProject(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	child, _, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	idx := b.ProjIdx
	it := func(yield func(relstore.Tuple, int64) bool) {
		buf := make(relstore.Tuple, len(idx))
		child(func(t relstore.Tuple, n int64) bool {
			for i, j := range idx {
				buf[i] = t[j]
			}
			return yield(buf, n)
		})
	}
	return it, false, nil
}

// streamJoin is a build-then-probe hash join: the right input is hashed
// once into a table pre-sized from the child's cardinality estimate, then
// the left input streams through, concatenating matches into one reused
// scratch row. With no key columns both sides share the single empty-key
// bucket, which degenerates to the Cartesian product.
func streamJoin(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	left, _, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	right, rightOwned, err := compile(b.Children[1])
	if err != nil {
		return nil, false, err
	}
	lk, rk, filter := b.LeftKey, b.RightKey, b.Filter
	buildSize := estimateRows(b.Children[1])
	arity := b.Schema.Arity()
	it := func(yield func(relstore.Tuple, int64) bool) {
		table := make(map[string][]BagRow, buildSize)
		var kbuf []byte
		right(func(t relstore.Tuple, n int64) bool {
			kbuf = AppendKeyOf(kbuf[:0], t, rk)
			if !rightOwned {
				t = t.Clone()
			}
			table[string(kbuf)] = append(table[string(kbuf)], BagRow{Tuple: t, N: n})
			return true
		})
		if len(table) == 0 {
			return
		}
		scratch := make(relstore.Tuple, 0, arity)
		left(func(l relstore.Tuple, ln int64) bool {
			kbuf = AppendKeyOf(kbuf[:0], l, lk)
			for _, r := range table[string(kbuf)] {
				scratch = append(append(scratch[:0], l...), r.Tuple...)
				if filter != nil && !filter.Eval(scratch).AsBool() {
					continue
				}
				if !yield(scratch, ln*r.N) {
					return false
				}
			}
			return true
		})
	}
	return it, false, nil
}

// streamGroupAgg is a pipeline breaker: it folds the child stream into
// per-group accumulator state (no input materialization) and then emits
// one freshly built row per group, reusing the full evaluator's
// accumulate/finishAgg semantics including the SQL global-group rule.
func streamGroupAgg(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	child, _, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	groupIdx, aggs := b.GroupIdx, b.Aggs
	it := func(yield func(relstore.Tuple, int64) bool) {
		type group struct {
			key    relstore.Tuple
			accums []aggAccum
		}
		groups := make(map[string]*group)
		var kbuf []byte
		child(func(t relstore.Tuple, n int64) bool {
			kbuf = AppendKeyOf(kbuf[:0], t, groupIdx)
			g, ok := groups[string(kbuf)]
			if !ok {
				key := make(relstore.Tuple, len(groupIdx))
				for i, j := range groupIdx {
					key[i] = t[j]
				}
				g = &group{key: key, accums: make([]aggAccum, len(aggs))}
				groups[string(kbuf)] = g
			}
			for i := range aggs {
				accumulate(&g.accums[i], &aggs[i], t, n)
			}
			return true
		})
		// SQL semantics: an ungrouped aggregate always yields one row, with
		// counting aggregates reading 0 over empty input. Rows with
		// MIN/MAX/AVG are undefined over empty input and are suppressed (no
		// NULLs in this engine); counts-only global rows are emitted.
		if len(groupIdx) == 0 && len(groups) == 0 && countsOnly(aggs) {
			groups[""] = &group{key: relstore.Tuple{}, accums: make([]aggAccum, len(aggs))}
		}
		for _, g := range groups {
			row := make(relstore.Tuple, 0, len(g.key)+len(aggs))
			row = append(row, g.key...)
			ok := true
			for i := range aggs {
				v, valid := finishAgg(&g.accums[i], &aggs[i])
				if !valid {
					ok = false
					break
				}
				row = append(row, v)
			}
			if ok && !yield(row, 1) {
				return
			}
		}
	}
	return it, true, nil
}

func countsOnly(aggs []BoundAgg) bool {
	for _, a := range aggs {
		if a.Fn != FnCount && a.Fn != FnCountIf && a.Fn != FnSum {
			return false
		}
	}
	return true
}

// streamUnion concatenates the two input streams (bag union: counts add
// at the consumer).
func streamUnion(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	left, lo, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	right, ro, err := compile(b.Children[1])
	if err != nil {
		return nil, false, err
	}
	it := func(yield func(relstore.Tuple, int64) bool) {
		stopped := false
		left(func(t relstore.Tuple, n int64) bool {
			if !yield(t, n) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		right(yield)
	}
	return it, lo && ro, nil
}

// streamDiff materializes only the right side's multiplicity counts, then
// streams the left side through them: each left occurrence first pays
// down the remaining right count for its key and yields whatever
// survives. Summed per key this is exactly monus, max(0, left − right),
// even when a key's left occurrences arrive split across yields.
func streamDiff(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	left, lo, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	right, _, err := compile(b.Children[1])
	if err != nil {
		return nil, false, err
	}
	rightSize := estimateRows(b.Children[1])
	it := func(yield func(relstore.Tuple, int64) bool) {
		rem := make(map[string]*int64, rightSize)
		var kbuf []byte
		right(func(t relstore.Tuple, n int64) bool {
			kbuf = t.AppendKey(kbuf[:0])
			if p := rem[string(kbuf)]; p != nil {
				*p += n
			} else {
				c := n
				rem[string(kbuf)] = &c
			}
			return true
		})
		left(func(t relstore.Tuple, n int64) bool {
			if len(rem) > 0 {
				kbuf = t.AppendKey(kbuf[:0])
				if p := rem[string(kbuf)]; p != nil && *p > 0 {
					use := *p
					if use > n {
						use = n
					}
					*p -= use
					n -= use
				}
			}
			if n == 0 {
				return true
			}
			return yield(t, n)
		})
	}
	return it, lo, nil
}

// streamDistinct yields each distinct tuple once with count 1, on first
// sight. Evaluation-path multiplicities are all positive, so first sight
// decides membership.
func streamDistinct(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	child, owned, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	size := estimateRows(b.Children[0])
	it := func(yield func(relstore.Tuple, int64) bool) {
		seen := make(map[string]struct{}, size)
		var kbuf []byte
		child(func(t relstore.Tuple, n int64) bool {
			if n <= 0 {
				return true
			}
			kbuf = t.AppendKey(kbuf[:0])
			if _, dup := seen[string(kbuf)]; dup {
				return true
			}
			seen[string(kbuf)] = struct{}{}
			return yield(t, 1)
		})
	}
	return it, owned, nil
}

// olEntry is one distinct row held by the streaming top-k buffer.
type olEntry struct {
	key   string
	tuple relstore.Tuple
	n     int64
}

// streamOrderLimit is a pipeline breaker with O(limit) memory: it keeps a
// sorted buffer of candidate rows and evicts from the tail whenever the
// multiplicity accumulated before the last entry already covers the
// limit — counts only grow during a run, so an evicted row can never
// re-enter the output. Ties on the sort keys break by the injective
// tuple key, matching the ivm top-k operator exactly.
func streamOrderLimit(b *Bound, compile streamCompiler) (Iterator, bool, error) {
	child, owned, err := compile(b.Children[0])
	if err != nil {
		return nil, false, err
	}
	sortIdx, sortDesc, limit := b.SortIdx, b.SortDesc, b.Limit
	it := func(yield func(relstore.Tuple, int64) bool) {
		var entries []olEntry
		var total int64
		var kbuf []byte
		child(func(t relstore.Tuple, n int64) bool {
			kbuf = t.AppendKey(kbuf[:0])
			// Position of the incoming row in the strict total order.
			lo, hi := 0, len(entries)
			for lo < hi {
				mid := (lo + hi) / 2
				e := &entries[mid]
				c := CompareTuples(e.tuple, t, sortIdx, sortDesc)
				if c == 0 {
					c = compareStringBytes(e.key, kbuf)
				}
				if c < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(entries) && entries[lo].key == string(kbuf) {
				entries[lo].n += n
				total += n
			} else {
				if owned {
					entries = append(entries, olEntry{})
					copy(entries[lo+1:], entries[lo:])
					entries[lo] = olEntry{key: string(kbuf), tuple: t, n: n}
				} else {
					entries = append(entries, olEntry{})
					copy(entries[lo+1:], entries[lo:])
					entries[lo] = olEntry{key: string(kbuf), tuple: t.Clone(), n: n}
				}
				total += n
			}
			// Evict rows that can no longer reach the output.
			for len(entries) > 1 && total-entries[len(entries)-1].n >= limit {
				total -= entries[len(entries)-1].n
				entries = entries[:len(entries)-1]
			}
			return true
		})
		remaining := limit
		for i := range entries {
			if remaining <= 0 {
				return
			}
			n := entries[i].n
			if n > remaining {
				n = remaining
			}
			if !yield(entries[i].tuple, n) {
				return
			}
			remaining -= n
		}
	}
	return it, true, nil
}

// compareStringBytes compares a string with a byte slice without
// converting either, for allocation-free tie-breaks.
func compareStringBytes(s string, b []byte) int {
	n := len(s)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if s[i] != b[i] {
			if s[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(b):
		return -1
	case len(s) > len(b):
		return 1
	}
	return 0
}

// estimateRows guesses a node's output cardinality for pre-sizing hash
// tables, without evaluating anything. It only needs to be in the right
// ballpark: scans are exact, and everything else degrades toward its
// children's sizes.
func estimateRows(b *Bound) int {
	const defaultSize = 64
	switch b.Kind {
	case KScan:
		return b.Rel.Len()
	case KSelect, KProject, KDistinct:
		return estimateRows(b.Children[0])
	case KOrderLimit:
		return int(b.Limit)
	case KUnion:
		return estimateRows(b.Children[0]) + estimateRows(b.Children[1])
	case KDiff:
		return estimateRows(b.Children[0])
	case KJoin:
		l, r := estimateRows(b.Children[0]), estimateRows(b.Children[1])
		if l > r {
			return l
		}
		return r
	case KGroupAgg:
		n := estimateRows(b.Children[0])
		if n > 1024 {
			return 1024
		}
		return n
	}
	return defaultSize
}
