package ra

import (
	"strings"
	"testing"

	"factordb/internal/relstore"
)

func perPlan(alias string) Plan {
	return NewProject(
		NewSelect(NewScan("TOKEN", alias),
			Eq(Col(C(alias, "LABEL")), Const(relstore.String("B-PER")))),
		C(alias, "STRING"),
	)
}

func orgPlan(alias string) Plan {
	return NewProject(
		NewSelect(NewScan("TOKEN", alias),
			Eq(Col(C(alias, "LABEL")), Const(relstore.String("B-ORG")))),
		C(alias, "STRING"),
	)
}

func TestUnionCountsAdd(t *testing.T) {
	db := testDB(t)
	bag := mustEval(t, db, NewUnion(perPlan("A"), orgPlan("B")))
	// 3 B-PER + 2 B-ORG strings by multiplicity.
	if bag.Size() != 5 {
		t.Fatalf("union size = %d, want 5", bag.Size())
	}
	// Self-union doubles counts.
	dbl := mustEval(t, db, NewUnion(perPlan("A"), perPlan("B")))
	smith := relstore.Tuple{relstore.String("Smith")}.Key()
	if dbl.Count(smith) != 4 { // Smith ×2 per side
		t.Errorf("self-union count(Smith) = %d, want 4", dbl.Count(smith))
	}
}

func TestDiffIsMonus(t *testing.T) {
	db := testDB(t)
	// Strings that are B-PER somewhere minus strings that are B-ORG
	// somewhere; counts floor at zero rather than going negative.
	bag := mustEval(t, db, NewDiff(perPlan("A"), orgPlan("B")))
	if bag.Size() != 3 { // no overlap in testDB
		t.Fatalf("diff size = %d, want 3", bag.Size())
	}
	// Self-difference is empty.
	empty := mustEval(t, db, NewDiff(perPlan("A"), perPlan("B")))
	if empty.Len() != 0 {
		t.Errorf("self-diff has %d rows", empty.Len())
	}
	// Monus floors: 2×Smith minus 4×Smith yields nothing, not −2.
	dbl := NewUnion(perPlan("C"), perPlan("D"))
	floor := mustEval(t, db, NewDiff(perPlan("A"), dbl))
	smith := relstore.Tuple{relstore.String("Smith")}.Key()
	if floor.Count(smith) != 0 {
		t.Errorf("monus count(Smith) = %d, want 0", floor.Count(smith))
	}
}

func TestDistinctCollapses(t *testing.T) {
	db := testDB(t)
	bag := mustEval(t, db, NewDistinct(perPlan("A")))
	if bag.Size() != 2 || bag.Len() != 2 {
		t.Fatalf("distinct size/len = %d/%d, want 2/2", bag.Size(), bag.Len())
	}
	smith := relstore.Tuple{relstore.String("Smith")}.Key()
	if bag.Count(smith) != 1 {
		t.Errorf("distinct count(Smith) = %d, want 1", bag.Count(smith))
	}
}

func TestSetOpBindErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		name string
		p    Plan
		frag string
	}{
		{"union arity", NewUnion(perPlan("A"), NewScan("TOKEN", "B")), "arities"},
		{"union types", NewUnion(
			NewProject(NewScan("TOKEN", "A"), C("A", "TOK_ID")),
			NewProject(NewScan("TOKEN", "B"), C("B", "STRING"))), "types"},
		{"diff arity", NewDiff(perPlan("A"), NewScan("TOKEN", "B")), "arities"},
	}
	for _, c := range cases {
		if _, err := Bind(db, c.p); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.frag)
		}
	}
}
