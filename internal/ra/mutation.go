package ra

import (
	"fmt"
	"strings"

	"factordb/internal/relstore"
)

// Mutation is the typed IR of one DML statement (INSERT, UPDATE or
// DELETE), the write-path counterpart of Plan. The SQL front end lowers
// statements to this form; the world layer resolves a Mutation against a
// concrete possible world into row-level ops that replay identically on
// every chain's clone (see world.ResolveMutation).
//
// Mutations target the evidence columns of the single possible world: the
// paper's update model is "mutate the world, keep sampling", so a write
// never recomputes lineage — it feeds the same Δ⁻/Δ⁺ delta tables the
// sampler feeds, and the marginals re-equilibrate.
type Mutation interface {
	// Table names the mutated relation.
	Table() string
	String() string
	mutation() // sealed
}

// SetClause is one assignment of an UPDATE's SET list. Values are
// literals: the dialect has no expressions on the write path.
type SetClause struct {
	Col string
	Val relstore.Value
}

// Insert appends tuples to a relation. When Columns is empty the rows are
// in schema order; otherwise Columns must name every column of the schema
// (the store has no column defaults) and rows are reordered at resolve
// time.
type Insert struct {
	TableName string
	Columns   []string
	Rows      [][]relstore.Value
}

// Update rewrites the SET columns of every row satisfying Where. A nil
// Where matches all rows. Column references in Where are qualified by
// Alias (or unqualified).
type Update struct {
	TableName string
	Alias     string
	Set       []SetClause
	Where     Expr
}

// Delete removes every row satisfying Where; nil matches all rows.
type Delete struct {
	TableName string
	Alias     string
	Where     Expr
}

func (m *Insert) Table() string { return m.TableName }
func (m *Update) Table() string { return m.TableName }
func (m *Delete) Table() string { return m.TableName }

func (*Insert) mutation() {}
func (*Update) mutation() {}
func (*Delete) mutation() {}

func (m *Insert) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s", m.TableName)
	if len(m.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(m.Columns, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	for i, row := range m.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(Const(v).String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

func (m *Update) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "UPDATE %s", m.TableName)
	if m.Alias != "" && m.Alias != m.TableName {
		sb.WriteString(" " + m.Alias)
	}
	sb.WriteString(" SET ")
	for i, s := range m.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s = %s", s.Col, Const(s.Val))
	}
	if m.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", m.Where)
	}
	return sb.String()
}

func (m *Delete) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DELETE FROM %s", m.TableName)
	if m.Alias != "" && m.Alias != m.TableName {
		sb.WriteString(" " + m.Alias)
	}
	if m.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", m.Where)
	}
	return sb.String()
}
