package ra

import (
	"strings"
	"testing"

	"factordb/internal/relstore"
)

// testDB builds a small TOKEN relation mirroring the paper's schema plus a
// DOC relation for join coverage.
func testDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	rows := []struct {
		id, doc int64
		s, l    string
	}{
		{1, 1, "Clinton", "B-PER"},
		{2, 1, "visited", "O"},
		{3, 1, "IBM", "B-ORG"},
		{4, 1, "Boston", "B-ORG"},
		{5, 2, "Boston", "B-LOC"},
		{6, 2, "Smith", "B-PER"},
		{7, 2, "Smith", "B-PER"},
		{8, 2, "Corp", "I-ORG"},
	}
	for _, r := range rows {
		if _, err := tok.Insert(relstore.Tuple{
			relstore.Int(r.id), relstore.Int(r.doc), relstore.String(r.s), relstore.String(r.l),
		}); err != nil {
			t.Fatal(err)
		}
	}
	doc := db.MustCreate(relstore.MustSchema("DOC",
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "YEAR", Type: relstore.TInt},
	))
	doc.Insert(relstore.Tuple{relstore.Int(1), relstore.Int(2004)})
	doc.Insert(relstore.Tuple{relstore.Int(2), relstore.Int(2005)})
	return db
}

func mustEval(t *testing.T, db *relstore.DB, p Plan) *Bag {
	t.Helper()
	b, err := Bind(db, p)
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	bag, err := Eval(b)
	if err != nil {
		t.Fatalf("Eval(%s): %v", p, err)
	}
	return bag
}

func TestScanBagCounts(t *testing.T) {
	db := testDB(t)
	bag := mustEval(t, db, NewScan("TOKEN", "T"))
	if bag.Size() != 8 {
		t.Errorf("scan size = %d, want 8", bag.Size())
	}
	// Rows 6 and 7 are identical tuples except TOK_ID, so all 8 are
	// distinct at the tuple level.
	if bag.Len() != 8 {
		t.Errorf("scan distinct = %d, want 8", bag.Len())
	}
}

func TestSelectProject(t *testing.T) {
	db := testDB(t)
	// Paper Query 1: SELECT STRING FROM TOKEN WHERE LABEL='B-PER'.
	p := NewProject(
		NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))),
		C("T", "STRING"),
	)
	bag := mustEval(t, db, p)
	if bag.Len() != 2 { // Clinton, Smith
		t.Fatalf("distinct strings = %d, want 2", bag.Len())
	}
	if bag.Size() != 3 { // Smith appears twice: multiset projection
		t.Fatalf("total multiplicity = %d, want 3", bag.Size())
	}
	smithKey := relstore.Tuple{relstore.String("Smith")}.Key()
	if got := bag.Count(smithKey); got != 2 {
		t.Errorf("count(Smith) = %d, want 2", got)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		op   CmpOp
		want int64 // multiplicity of TOKEN rows with TOK_ID op 4
	}{
		{OpEq, 1}, {OpNe, 7}, {OpLt, 3}, {OpLe, 4}, {OpGt, 4}, {OpGe, 5},
	}
	for _, c := range cases {
		p := NewSelect(NewScan("TOKEN", "T"), Cmp(c.op, Col(C("T", "TOK_ID")), Const(relstore.Int(4))))
		bag := mustEval(t, db, p)
		if bag.Size() != c.want {
			t.Errorf("op %v: size = %d, want %d", c.op, bag.Size(), c.want)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	db := testDB(t)
	per := Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))
	doc2 := Eq(Col(C("T", "DOC_ID")), Const(relstore.Int(2)))
	if got := mustEval(t, db, NewSelect(NewScan("TOKEN", "T"), And(per, doc2))).Size(); got != 2 {
		t.Errorf("AND size = %d, want 2", got)
	}
	if got := mustEval(t, db, NewSelect(NewScan("TOKEN", "T"), Or(per, doc2))).Size(); got != 5 {
		t.Errorf("OR size = %d, want 5", got)
	}
	if got := mustEval(t, db, NewSelect(NewScan("TOKEN", "T"), Not(per))).Size(); got != 5 {
		t.Errorf("NOT size = %d, want 5", got)
	}
}

func TestJoinOnKey(t *testing.T) {
	db := testDB(t)
	p := NewJoin(
		NewScan("TOKEN", "T"), NewScan("DOC", "D"),
		[]EquiCond{{Left: C("T", "DOC_ID"), Right: C("D", "DOC_ID")}},
		nil,
	)
	bag := mustEval(t, db, p)
	if bag.Size() != 8 {
		t.Fatalf("join size = %d, want 8", bag.Size())
	}
	if got := bag.Schema.Arity(); got != 6 {
		t.Fatalf("join arity = %d, want 6", got)
	}
}

func TestSelfJoinQuery4Shape(t *testing.T) {
	db := testDB(t)
	// Paper Query 4: persons co-occurring with Boston/B-ORG in a document.
	boston := NewSelect(NewScan("TOKEN", "T1"), And(
		Eq(Col(C("T1", "STRING")), Const(relstore.String("Boston"))),
		Eq(Col(C("T1", "LABEL")), Const(relstore.String("B-ORG"))),
	))
	persons := NewSelect(NewScan("TOKEN", "T2"), Eq(Col(C("T2", "LABEL")), Const(relstore.String("B-PER"))))
	p := NewProject(
		NewJoin(boston, persons, []EquiCond{{Left: C("T1", "DOC_ID"), Right: C("T2", "DOC_ID")}}, nil),
		C("T2", "STRING"),
	)
	bag := mustEval(t, db, p)
	// Boston/B-ORG is only in doc 1; doc 1's person is Clinton.
	if bag.Len() != 1 {
		t.Fatalf("distinct = %d, want 1", bag.Len())
	}
	if got := bag.Count(relstore.Tuple{relstore.String("Clinton")}.Key()); got != 1 {
		t.Errorf("count(Clinton) = %d, want 1", got)
	}
}

func TestCrossProduct(t *testing.T) {
	db := testDB(t)
	bag := mustEval(t, db, NewCross(NewScan("DOC", "A"), NewScan("DOC", "B")))
	if bag.Size() != 4 {
		t.Errorf("cross size = %d, want 4", bag.Size())
	}
}

func TestJoinResidualFilter(t *testing.T) {
	db := testDB(t)
	p := NewJoin(
		NewScan("TOKEN", "T"), NewScan("DOC", "D"),
		[]EquiCond{{Left: C("T", "DOC_ID"), Right: C("D", "DOC_ID")}},
		Eq(Col(C("D", "YEAR")), Const(relstore.Int(2004))),
	)
	bag := mustEval(t, db, p)
	if bag.Size() != 4 {
		t.Errorf("filtered join size = %d, want 4 (doc 1 tokens)", bag.Size())
	}
}

func TestGlobalCount(t *testing.T) {
	db := testDB(t)
	// Paper Query 2: SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'.
	p := NewGroupAgg(
		NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER")))),
		nil,
		Agg{Fn: FnCount, As: "CNT"},
	)
	bag := mustEval(t, db, p)
	rows := bag.Rows()
	if len(rows) != 1 || rows[0].Tuple[0].AsInt() != 3 {
		t.Fatalf("COUNT rows = %v", rows)
	}
}

func TestGlobalCountEmptyInputEmitsZero(t *testing.T) {
	db := testDB(t)
	p := NewGroupAgg(
		NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.String("NOPE")))),
		nil,
		Agg{Fn: FnCount, As: "CNT"},
	)
	rows := mustEval(t, db, p).Rows()
	if len(rows) != 1 || rows[0].Tuple[0].AsInt() != 0 {
		t.Fatalf("COUNT over empty input = %v, want single zero row", rows)
	}
}

func TestGroupedAggregates(t *testing.T) {
	db := testDB(t)
	p := NewGroupAgg(
		NewScan("TOKEN", "T"),
		[]ColRef{C("T", "DOC_ID")},
		Agg{Fn: FnCount, As: "N"},
		Agg{Fn: FnCountIf, Pred: Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER"))), As: "PERS"},
		Agg{Fn: FnMin, Arg: C("T", "TOK_ID"), As: "FIRST"},
		Agg{Fn: FnMax, Arg: C("T", "TOK_ID"), As: "LAST"},
		Agg{Fn: FnSum, Arg: C("T", "TOK_ID"), As: "SUMID"},
		Agg{Fn: FnAvg, Arg: C("T", "TOK_ID"), As: "AVGID"},
	)
	bag := mustEval(t, db, p)
	if bag.Len() != 2 {
		t.Fatalf("groups = %d, want 2", bag.Len())
	}
	byDoc := map[int64]relstore.Tuple{}
	bag.Each(func(_ string, r *BagRow) bool {
		byDoc[r.Tuple[0].AsInt()] = r.Tuple
		return true
	})
	d1 := byDoc[1]
	if d1[1].AsInt() != 4 || d1[2].AsInt() != 1 || d1[3].AsInt() != 1 || d1[4].AsInt() != 4 || d1[5].AsInt() != 10 {
		t.Errorf("doc1 aggregates = %v", d1)
	}
	if got := d1[6].AsFloat(); got != 2.5 {
		t.Errorf("doc1 AVG = %v, want 2.5", got)
	}
	d2 := byDoc[2]
	if d2[1].AsInt() != 4 || d2[2].AsInt() != 2 {
		t.Errorf("doc2 aggregates = %v", d2)
	}
}

func TestQuery3Lowering(t *testing.T) {
	db := testDB(t)
	// Per-doc equality of B-PER and B-ORG counts via COUNT_IF: this is the
	// planner's lowering of the paper's correlated-subquery Query 3.
	counts := NewGroupAgg(
		NewScan("TOKEN", "T"),
		[]ColRef{C("T", "DOC_ID")},
		Agg{Fn: FnCountIf, Pred: Eq(Col(C("T", "LABEL")), Const(relstore.String("B-PER"))), As: "NPER"},
		Agg{Fn: FnCountIf, Pred: Eq(Col(C("T", "LABEL")), Const(relstore.String("B-ORG"))), As: "NORG"},
	)
	p := NewProject(
		NewSelect(counts, Eq(Col(C("", "NPER")), Col(C("", "NORG")))),
		C("T", "DOC_ID"),
	)
	bag := mustEval(t, db, p)
	// doc1: 1 PER vs 2 ORG (no); doc2: 2 PER vs 0 ORG (no).
	if bag.Len() != 0 {
		t.Fatalf("docs with equal counts = %d, want 0", bag.Len())
	}
	// Flip row 4 (Boston/B-ORG in doc1) to O: doc1 becomes 1 vs 1.
	tok, _ := db.Relation("TOKEN")
	var target relstore.RowID = -1
	tok.Scan(func(id relstore.RowID, tu relstore.Tuple) bool {
		if tu[0].AsInt() == 4 {
			target = id
			return false
		}
		return true
	})
	if _, err := tok.UpdateCol(target, 3, relstore.String("O")); err != nil {
		t.Fatal(err)
	}
	bag = mustEval(t, db, p)
	if bag.Len() != 1 {
		t.Fatalf("after flip, docs with equal counts = %d, want 1", bag.Len())
	}
}

func TestBindErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		name string
		p    Plan
		frag string
	}{
		{"unknown table", NewScan("NOPE", ""), "unknown relation"},
		{"unknown column", NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "NOPE")), Const(relstore.Int(1)))), "unknown column"},
		{"type mismatch", NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("T", "LABEL")), Const(relstore.Int(1)))), "cannot compare"},
		{"empty projection", NewProject(NewScan("TOKEN", "T")), "no columns"},
		{"dup alias join", NewJoin(NewScan("TOKEN", "T"), NewScan("TOKEN", "T"), nil, nil), "distinct aliases"},
		{"sum non-numeric", NewGroupAgg(NewScan("TOKEN", "T"), nil, Agg{Fn: FnSum, Arg: C("T", "LABEL"), As: "S"}), "non-numeric"},
		{"agg missing name", NewGroupAgg(NewScan("TOKEN", "T"), nil, Agg{Fn: FnCount}), "missing output name"},
		{"countif missing pred", NewGroupAgg(NewScan("TOKEN", "T"), nil, Agg{Fn: FnCountIf, As: "X"}), "missing predicate"},
		{"no aggs", NewGroupAgg(NewScan("TOKEN", "T"), nil), "no aggregates"},
		{"ambiguous unqualified", NewSelect(
			NewJoin(NewScan("TOKEN", "T"), NewScan("DOC", "D"),
				[]EquiCond{{Left: C("T", "DOC_ID"), Right: C("D", "DOC_ID")}}, nil),
			Eq(Col(C("", "DOC_ID")), Const(relstore.Int(1)))), "ambiguous"},
	}
	for _, c := range cases {
		_, err := Bind(db, c.p)
		if err == nil {
			t.Errorf("%s: Bind succeeded, want error containing %q", c.name, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	db := testDB(t)
	// STRING is unique in TOKEN, so unqualified use is fine.
	p := NewSelect(NewScan("TOKEN", "T"), Eq(Col(C("", "STRING")), Const(relstore.String("Boston"))))
	if got := mustEval(t, db, p).Size(); got != 2 {
		t.Errorf("unqualified select size = %d, want 2", got)
	}
}

func TestBagAlgebra(t *testing.T) {
	sch := &RowSchema{Cols: []OutCol{{Ref: C("", "x"), Type: relstore.TInt}}}
	b := NewBag(sch)
	one := relstore.Tuple{relstore.Int(1)}
	b.Add(one, 2)
	b.Add(one, -2)
	if b.Len() != 0 {
		t.Error("zero-count row must be removed")
	}
	b.Add(one, 3)
	c := b.Clone()
	c.Add(one, 1)
	if b.Count(one.Key()) != 3 || c.Count(one.Key()) != 4 {
		t.Error("clone must be independent")
	}
	d := NewBag(sch)
	d.AddBag(c, -1)
	d.AddBag(c, 1)
	if d.Len() != 0 {
		t.Error("bag minus itself must be empty")
	}
	if !b.Equal(b.Clone()) {
		t.Error("bag must equal its clone")
	}
	if b.Equal(c) {
		t.Error("bags with different counts must differ")
	}
}
