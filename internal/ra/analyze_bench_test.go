package ra

import (
	"testing"

	"factordb/internal/relstore"
)

// drainStream compiles-and-runs one pipeline, folding rows into a count
// so the consumer cost is identical across the compared variants.
func drainIter(it Iterator) int64 {
	var total int64
	it(func(_ relstore.Tuple, n int64) bool {
		total += n
		return true
	})
	return total
}

// BenchmarkAnalyzeOverhead puts a number on the EXPLAIN ANALYZE
// instrumentation: "disabled" is the production path (Stream — no
// recorder exists anywhere in the compiled closures), "enabled" is the
// fully instrumented pipeline. The disabled figure is what the ≤2% gate
// in TestAnalyzeDisabledOverhead holds against the raw executor.
func BenchmarkAnalyzeOverhead(b *testing.B) {
	db := benchWorld(20000)
	bound, err := Bind(db, benchPlan())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		it, _, err := Stream(bound)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			drainIter(it)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		it, _, _, err := AnalyzeStream(bound)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			drainIter(it)
		}
	})
}

// TestAnalyzeDisabledOverhead is the CI gate behind the instrumentation
// design: Stream's compiled pipeline must not pay for EXPLAIN ANALYZE
// when it isn't running. The baseline compiles the pushed tree through
// compileStream directly (the pre-analyze executor); the subject is the
// public Stream entry point. If someone later threads a nil-checked
// recorder through the per-row path, the ratio moves and this fails.
// Medians over repeated measurements keep shared-runner noise below the
// 2% threshold; the workload is the BenchmarkEvalStreaming one.
func TestAnalyzeDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("analyze overhead gate skipped in -short mode")
	}
	db := benchWorld(20000)
	bound, err := Bind(db, benchPlan())
	if err != nil {
		t.Fatal(err)
	}
	pushed := Pushdown(bound)
	base, _, err := compileStream(pushed)
	if err != nil {
		t.Fatal(err)
	}
	subject, _, err := Stream(bound)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(it Iterator) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drainIter(it)
			}
		})
		return res.NsPerOp()
	}
	const rounds = 7
	baseNS := make([]int64, 0, rounds)
	subjNS := make([]int64, 0, rounds)
	for i := 0; i < rounds; i++ {
		// Interleave so drift hits both variants equally.
		baseNS = append(baseNS, measure(base))
		subjNS = append(subjNS, measure(subject))
	}
	med := func(xs []int64) int64 {
		s := append([]int64(nil), xs...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	b0, s0 := med(baseNS), med(subjNS)
	overhead := float64(s0-b0) / float64(b0) * 100
	t.Logf("raw pipeline %d ns/op, Stream (analyze disabled) %d ns/op, overhead %.2f%%", b0, s0, overhead)
	if overhead > 2.0 {
		t.Errorf("disabled instrumentation costs %.2f%% on the streaming bench, budget is 2%%", overhead)
	}
}
