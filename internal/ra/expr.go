package ra

import (
	"fmt"

	"factordb/internal/relstore"
)

// Expr is an unbound scalar expression appearing in predicates.
type Expr interface {
	// bind resolves column references against sch and type-checks,
	// returning an executable expression and its result type.
	bind(sch *RowSchema) (BExpr, relstore.Type, error)
	String() string
}

// BExpr is a bound (index-resolved, type-checked) expression that can be
// evaluated against an output row without allocation or error.
type BExpr interface {
	Eval(row relstore.Tuple) relstore.Value
}

// ---- Column and constant operands ----

type colExpr struct{ ref ColRef }

// Col references a column by (alias, name).
func Col(ref ColRef) Expr { return colExpr{ref} }

func (e colExpr) String() string { return e.ref.String() }

func (e colExpr) bind(sch *RowSchema) (BExpr, relstore.Type, error) {
	i, err := sch.Resolve(e.ref)
	if err != nil {
		return nil, 0, err
	}
	return boundCol{i}, sch.Cols[i].Type, nil
}

type boundCol struct{ idx int }

func (b boundCol) Eval(row relstore.Tuple) relstore.Value { return row[b.idx] }

type constExpr struct{ v relstore.Value }

// Const embeds a literal value in an expression.
func Const(v relstore.Value) Expr { return constExpr{v} }

func (e constExpr) String() string {
	if e.v.Kind() == relstore.TString {
		return fmt.Sprintf("%q", e.v.AsString())
	}
	return e.v.String()
}

func (e constExpr) bind(*RowSchema) (BExpr, relstore.Type, error) {
	return boundConst{e.v}, e.v.Kind(), nil
}

type boundConst struct{ v relstore.Value }

func (b boundConst) Eval(relstore.Tuple) relstore.Value { return b.v }

// ---- Comparisons ----

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

type cmpExpr struct {
	op   CmpOp
	l, r Expr
}

// Cmp builds a comparison predicate l op r.
func Cmp(op CmpOp, l, r Expr) Expr { return cmpExpr{op, l, r} }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return cmpExpr{OpEq, l, r} }

// String parenthesizes the comparison so renderings are injective over
// expression structure: a = (b = c) and (a = b) = c must not both read
// "a = b = c" — the canonical-plan fingerprint hashes this rendering.
func (e cmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, e.op, e.r)
}

func comparable2(a, b relstore.Type) bool {
	num := func(t relstore.Type) bool { return t == relstore.TInt || t == relstore.TFloat }
	if num(a) && num(b) {
		return true
	}
	return a == b
}

func (e cmpExpr) bind(sch *RowSchema) (BExpr, relstore.Type, error) {
	bl, tl, err := e.l.bind(sch)
	if err != nil {
		return nil, 0, err
	}
	br, tr, err := e.r.bind(sch)
	if err != nil {
		return nil, 0, err
	}
	if !comparable2(tl, tr) {
		return nil, 0, fmt.Errorf("ra: cannot compare %v with %v in %s", tl, tr, e)
	}
	if (e.op != OpEq && e.op != OpNe) && tl == relstore.TBool {
		return nil, 0, fmt.Errorf("ra: ordered comparison of booleans in %s", e)
	}
	return boundCmp{e.op, bl, br}, relstore.TBool, nil
}

type boundCmp struct {
	op   CmpOp
	l, r BExpr
}

func (b boundCmp) Eval(row relstore.Tuple) relstore.Value {
	lv, rv := b.l.Eval(row), b.r.Eval(row)
	var res bool
	switch b.op {
	case OpEq:
		res = lv.Equal(rv)
	case OpNe:
		res = !lv.Equal(rv)
	case OpLt:
		res = lv.Less(rv)
	case OpLe:
		res = !rv.Less(lv)
	case OpGt:
		res = rv.Less(lv)
	case OpGe:
		res = !lv.Less(rv)
	}
	return relstore.Bool(res)
}

// ---- Boolean connectives ----

type andExpr struct{ terms []Expr }

// And conjoins predicates; And() with no terms is TRUE.
func And(terms ...Expr) Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	return andExpr{terms}
}

func (e andExpr) String() string {
	s := ""
	for i, t := range e.terms {
		if i > 0 {
			s += " AND "
		}
		s += t.String()
	}
	if s == "" {
		return "TRUE"
	}
	return "(" + s + ")"
}

func (e andExpr) bind(sch *RowSchema) (BExpr, relstore.Type, error) {
	bs, err := bindBoolTerms(sch, e.terms, e)
	if err != nil {
		return nil, 0, err
	}
	return boundAnd{bs}, relstore.TBool, nil
}

type boundAnd struct{ terms []BExpr }

func (b boundAnd) Eval(row relstore.Tuple) relstore.Value {
	for _, t := range b.terms {
		if !t.Eval(row).AsBool() {
			return relstore.Bool(false)
		}
	}
	return relstore.Bool(true)
}

type orExpr struct{ terms []Expr }

// Or disjoins predicates; Or() with no terms is FALSE.
func Or(terms ...Expr) Expr {
	if len(terms) == 1 {
		return terms[0]
	}
	return orExpr{terms}
}

func (e orExpr) String() string {
	s := ""
	for i, t := range e.terms {
		if i > 0 {
			s += " OR "
		}
		s += t.String()
	}
	if s == "" {
		return "FALSE"
	}
	return "(" + s + ")"
}

func (e orExpr) bind(sch *RowSchema) (BExpr, relstore.Type, error) {
	bs, err := bindBoolTerms(sch, e.terms, e)
	if err != nil {
		return nil, 0, err
	}
	return boundOr{bs}, relstore.TBool, nil
}

type boundOr struct{ terms []BExpr }

func (b boundOr) Eval(row relstore.Tuple) relstore.Value {
	for _, t := range b.terms {
		if t.Eval(row).AsBool() {
			return relstore.Bool(true)
		}
	}
	return relstore.Bool(false)
}

type notExpr struct{ inner Expr }

// Not negates a predicate.
func Not(inner Expr) Expr { return notExpr{inner} }

func (e notExpr) String() string { return "NOT " + e.inner.String() }

func (e notExpr) bind(sch *RowSchema) (BExpr, relstore.Type, error) {
	b, t, err := e.inner.bind(sch)
	if err != nil {
		return nil, 0, err
	}
	if t != relstore.TBool {
		return nil, 0, fmt.Errorf("ra: NOT applied to non-boolean %s", e.inner)
	}
	return boundNot{b}, relstore.TBool, nil
}

type boundNot struct{ inner BExpr }

func (b boundNot) Eval(row relstore.Tuple) relstore.Value {
	return relstore.Bool(!b.inner.Eval(row).AsBool())
}

func bindBoolTerms(sch *RowSchema, terms []Expr, parent Expr) ([]BExpr, error) {
	bs := make([]BExpr, len(terms))
	for i, t := range terms {
		b, ty, err := t.bind(sch)
		if err != nil {
			return nil, err
		}
		if ty != relstore.TBool {
			return nil, fmt.Errorf("ra: non-boolean term %s in %s", t, parent)
		}
		bs[i] = b
	}
	return bs, nil
}

// BindPredicate binds an expression against a schema and requires a boolean
// result. Exposed for components (such as ivm) that evaluate residual
// predicates themselves.
func BindPredicate(sch *RowSchema, e Expr) (BExpr, error) {
	b, t, err := e.bind(sch)
	if err != nil {
		return nil, err
	}
	if t != relstore.TBool {
		return nil, fmt.Errorf("ra: predicate %s is %v, want BOOL", e, t)
	}
	return b, nil
}
