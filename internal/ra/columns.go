package ra

// OutputColumns returns the output column names of a logical plan without
// binding it against a catalog. It resolves every root the sqlparse
// planner can produce (Project, possibly wrapped in Distinct, and the
// set operators); for roots whose schema depends on the catalog — a bare
// Scan — it returns nil and the caller must Bind to learn the names.
func OutputColumns(p Plan) []string {
	switch n := p.(type) {
	case *Distinct:
		return OutputColumns(n.Child)
	case *OrderLimit:
		return OutputColumns(n.Child)
	case *Select:
		return OutputColumns(n.Child)
	case *Project:
		out := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			out[i] = c.Col
		}
		return out
	case *GroupAgg:
		out := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			out = append(out, g.Col)
		}
		for _, a := range n.Aggs {
			out = append(out, a.As)
		}
		return out
	case *Union:
		return OutputColumns(n.Left)
	case *Diff:
		return OutputColumns(n.Left)
	}
	return nil
}
