package metrics

import (
	"math"
	"testing"
	"time"
)

func TestSquaredError(t *testing.T) {
	truth := map[string]float64{"a": 1.0, "b": 0.5}
	est := map[string]float64{"a": 0.8, "c": 0.1}
	// (0.8-1)² + (0-0.5)² + 0.1²
	want := 0.04 + 0.25 + 0.01
	if got := SquaredError(est, truth); math.Abs(got-want) > 1e-12 {
		t.Errorf("SquaredError = %v, want %v", got, want)
	}
	if got := SquaredError(truth, truth); got != 0 {
		t.Errorf("self error = %v", got)
	}
	if got := SquaredError(nil, truth); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("empty-estimate error = %v, want 1.25", got)
	}
}

func TestTraceTimeToHalve(t *testing.T) {
	tr := &Trace{}
	tr.Add(Point{Elapsed: 0, Loss: 10})
	tr.Add(Point{Elapsed: time.Second, Loss: 7})
	tr.Add(Point{Elapsed: 2 * time.Second, Loss: 5})
	tr.Add(Point{Elapsed: 3 * time.Second, Loss: 2})
	d, ok := tr.TimeToHalve()
	if !ok || d != 2*time.Second {
		t.Errorf("TimeToHalve = %v, %v", d, ok)
	}
	if tr.Initial() != 10 || tr.Final() != 2 {
		t.Errorf("Initial/Final = %v/%v", tr.Initial(), tr.Final())
	}
}

func TestTraceNeverHalves(t *testing.T) {
	tr := &Trace{}
	tr.Add(Point{Loss: 10})
	tr.Add(Point{Elapsed: time.Second, Loss: 9})
	if _, ok := tr.TimeToHalve(); ok {
		t.Error("trace should not have halved")
	}
	empty := &Trace{}
	if _, ok := empty.TimeToHalve(); ok {
		t.Error("empty trace should not halve")
	}
	if empty.Initial() != 0 || empty.Final() != 0 {
		t.Error("empty trace Initial/Final should be 0")
	}
}

func TestNormalized(t *testing.T) {
	tr := &Trace{}
	tr.Add(Point{Loss: 4})
	tr.Add(Point{Loss: 2})
	n := tr.Normalized()
	if n.Points[0].Loss != 1 || n.Points[1].Loss != 0.5 {
		t.Errorf("Normalized = %v", n.Points)
	}
	// Original untouched.
	if tr.Points[0].Loss != 4 {
		t.Error("Normalized mutated the original")
	}
	zero := &Trace{}
	zero.Add(Point{Loss: 0})
	if zero.Normalized().Points[0].Loss != 0 {
		t.Error("all-zero trace should normalize to zeros")
	}
}

func TestAUC(t *testing.T) {
	tr := &Trace{}
	tr.Add(Point{Elapsed: 0, Loss: 1})
	tr.Add(Point{Elapsed: 2 * time.Second, Loss: 0})
	if got := tr.AUC(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AUC = %v, want 1", got)
	}
	single := &Trace{}
	single.Add(Point{Loss: 5})
	if single.AUC() != 0 {
		t.Error("single-point AUC should be 0")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := map[string]float64{"x": 0.5, "y": 0.2}
	b := map[string]float64{"x": 0.1, "z": 0.05}
	if got := MaxAbsDiff(a, b); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want 0.4", got)
	}
	if got := MaxAbsDiff(a, a); got != 0 {
		t.Errorf("self diff = %v", got)
	}
}
