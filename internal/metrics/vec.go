package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file adds labeled metric vectors to the registry: families of
// counters/gauges distinguished by label values (per-chain, per-view),
// rendered as name{label="value",...} series under one HELP/TYPE header.
// Children are resolved once (With) and then updated lock-free, so the
// chain hot loop pays one atomic per update exactly like plain metrics.

// labelString renders a label set in Prometheus series syntax; values are
// escaped per the text exposition format.
func labelString(names, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// vec is the shared child table of labeled metric families.
type vec[T any] struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]T // label string -> child
	mk         func() T
}

func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelString(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = v.mk()
		v.children[key] = c
	}
	return c
}

// sortedKeys snapshots the child table for deterministic rendering.
func (v *vec[T]) sorted() ([]string, map[string]T) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	snap := make(map[string]T, len(v.children))
	for k, c := range v.children {
		keys = append(keys, k)
		snap[k] = c
	}
	sort.Strings(keys)
	return keys, snap
}

// CounterVec is a family of monotone counters keyed by label values.
type CounterVec struct {
	v *vec[*Counter]
}

// With returns (creating on first use) the child counter for the label
// values, in the order the vector's label names were declared.
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(values) }

func (c *CounterVec) write(w io.Writer) {
	writeHeader(w, c.v.name, c.v.help, "counter")
	keys, snap := c.v.sorted()
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %d\n", c.v.name, k, snap[k].Value())
	}
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	c := &CounterVec{v: &vec[*Counter]{
		name: name, help: help, labels: labels,
		children: make(map[string]*Counter),
		mk:       func() *Counter { return &Counter{name: name} },
	}}
	r.register(name, c)
	return c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	v *vec[*Gauge]
}

// With returns (creating on first use) the child gauge for the label
// values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(values) }

func (g *GaugeVec) write(w io.Writer) {
	writeHeader(w, g.v.name, g.v.help, "gauge")
	keys, snap := g.v.sorted()
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %v\n", g.v.name, k, snap[k].Value())
	}
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	g := &GaugeVec{v: &vec[*Gauge]{
		name: name, help: help, labels: labels,
		children: make(map[string]*Gauge),
		mk:       func() *Gauge { return &Gauge{name: name} },
	}}
	r.register(name, g)
	return g
}

// HistogramVec is a family of histograms keyed by label values — e.g.
// write latency by outcome. Children share one bucket layout; each child
// renders its _bucket series with the family labels plus le.
type HistogramVec struct {
	v *vec[*Histogram]
}

// With returns (creating on first use) the child histogram for the label
// values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.v.with(values) }

func (h *HistogramVec) write(w io.Writer) {
	writeHeader(w, h.v.name, h.v.help, "histogram")
	keys, snap := h.v.sorted()
	for _, k := range keys {
		child := snap[k]
		bounds, cum := child.BucketCounts()
		for i, b := range bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.v.name, spliceLabel(k, "le", formatBound(b)), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.v.name, spliceLabel(k, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %v\n", h.v.name, k, child.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", h.v.name, k, cum[len(cum)-1])
	}
}

// spliceLabel appends one more label pair into an already rendered label
// set (the histogram's le bucket bound).
func spliceLabel(rendered, name, value string) string {
	inner := strings.TrimSuffix(rendered, "}")
	if inner == "{" {
		return fmt.Sprintf("{%s=%q}", name, value)
	}
	return fmt.Sprintf("%s,%s=%q}", inner, name, value)
}

// NewHistogramVec registers a labeled histogram family with the given
// bucket upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &HistogramVec{v: &vec[*Histogram]{
		name: name, help: help, labels: labels,
		children: make(map[string]*Histogram),
		mk:       func() *Histogram { return newHistogram(name, help, buckets) },
	}}
	r.register(name, h)
	return h
}

// LabeledValue is one series of a MultiGaugeFunc scrape: label values in
// declaration order plus the value.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// MultiGaugeFunc is a labeled gauge family whose series set and values
// are computed at scrape time — the fit for quantities derived from
// dynamic state, like per-view convergence diagnostics where views come
// and go with the queries subscribing to them.
type MultiGaugeFunc struct {
	name, help string
	labels     []string
	fn         func() []LabeledValue
}

func (m *MultiGaugeFunc) write(w io.Writer) {
	writeHeader(w, m.name, m.help, "gauge")
	vals := m.fn()
	lines := make([]string, 0, len(vals))
	for _, lv := range vals {
		if len(lv.Labels) != len(m.labels) {
			panic(fmt.Sprintf("metrics: %s scrape returned %d label values, want %d",
				m.name, len(lv.Labels), len(m.labels)))
		}
		lines = append(lines, fmt.Sprintf("%s%s %v", m.name, labelString(m.labels, lv.Labels), lv.Value))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintf(w, "%s\n", l)
	}
}

// NewMultiGaugeFunc registers a scrape-time labeled gauge family.
func (r *Registry) NewMultiGaugeFunc(name, help string, labels []string, fn func() []LabeledValue) *MultiGaugeFunc {
	m := &MultiGaugeFunc{name: name, help: help, labels: labels, fn: fn}
	r.register(name, m)
	return m
}
