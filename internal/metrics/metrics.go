// Package metrics implements the evaluation measures of Section 5.2:
// element-wise squared-error loss between estimated and ground-truth
// query marginals, normalized loss traces over time, and the
// time-to-half-loss summary used for the scalability plot (Figure 4a).
package metrics

import (
	"math"
	"time"
)

// SquaredError returns Σ_t (est[t] − truth[t])² over the union of keys of
// the two marginal maps (absent keys read as probability 0).
func SquaredError(est, truth map[string]float64) float64 {
	var loss float64
	for k, p := range truth {
		d := est[k] - p
		loss += d * d
	}
	for k, p := range est {
		if _, ok := truth[k]; !ok {
			loss += p * p
		}
	}
	return loss
}

// Point is one observation of a loss trace.
type Point struct {
	Elapsed time.Duration // wall time since the trace began
	Steps   int64         // MCMC steps consumed
	Samples int64         // query samples collected
	Loss    float64
}

// Trace is a loss-over-time series for one evaluator run.
type Trace struct {
	Points []Point
}

// Add appends an observation.
func (tr *Trace) Add(p Point) { tr.Points = append(tr.Points, p) }

// Initial returns the first recorded loss (0 if empty).
func (tr *Trace) Initial() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[0].Loss
}

// Final returns the last recorded loss (0 if empty).
func (tr *Trace) Final() float64 {
	if len(tr.Points) == 0 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].Loss
}

// TimeToHalve returns the elapsed time of the first point whose loss is at
// most half the initial loss, mirroring the paper's "time taken to half
// the squared error from the initial single-sample approximation". The
// boolean is false when the trace never halves.
func (tr *Trace) TimeToHalve() (time.Duration, bool) {
	if len(tr.Points) == 0 {
		return 0, false
	}
	target := tr.Points[0].Loss / 2
	for _, p := range tr.Points {
		if p.Loss <= target {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// Normalized returns a copy of the trace with losses scaled so the maximum
// point is 1 (the paper's normalized squared loss, which lets multiple
// queries share one plot). A trace with all-zero loss is returned as-is.
func (tr *Trace) Normalized() *Trace {
	max := 0.0
	for _, p := range tr.Points {
		if p.Loss > max {
			max = p.Loss
		}
	}
	out := &Trace{Points: make([]Point, len(tr.Points))}
	copy(out.Points, tr.Points)
	if max == 0 {
		return out
	}
	for i := range out.Points {
		out.Points[i].Loss /= max
	}
	return out
}

// AUC returns the area under the loss-time curve (trapezoidal), a scalar
// summary used by the ablation benchmarks: lower is better.
func (tr *Trace) AUC() float64 {
	var area float64
	for i := 1; i < len(tr.Points); i++ {
		a, b := tr.Points[i-1], tr.Points[i]
		dt := b.Elapsed.Seconds() - a.Elapsed.Seconds()
		area += dt * (a.Loss + b.Loss) / 2
	}
	return area
}

// AUCSteps returns the area under the loss curve over MCMC walk-steps
// (trapezoidal) instead of wall time. Unlike AUC it is fully determined
// by the seeded chain — no scheduler or machine-load noise — which makes
// it the right summary for regression tests comparing two configurations.
func (tr *Trace) AUCSteps() float64 {
	var area float64
	for i := 1; i < len(tr.Points); i++ {
		a, b := tr.Points[i-1], tr.Points[i]
		ds := float64(b.Steps - a.Steps)
		area += ds * (a.Loss + b.Loss) / 2
	}
	return area
}

// MaxAbsDiff returns the largest absolute difference between two marginal
// maps over the union of their keys.
func MaxAbsDiff(a, b map[string]float64) float64 {
	worst := 0.0
	for k, v := range a {
		if d := math.Abs(v - b[k]); d > worst {
			worst = d
		}
	}
	for k, v := range b {
		if _, ok := a[k]; !ok && math.Abs(v) > worst {
			worst = math.Abs(v)
		}
	}
	return worst
}
