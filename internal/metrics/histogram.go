package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into cumulative buckets, rendered in the
// Prometheus text exposition as <name>_bucket{le="..."} series plus
// <name>_sum and <name>_count. Unlike the Summary it supports quantile
// estimation at scrape (or report) time, which is what lets latency
// trajectories be compared across runs — a mean hides the tail that
// admission control and write burn-in actually move.
//
// Observe is lock-free (one atomic add per observation plus a CAS loop
// for the sum), so it is safe on the query hot path.
type Histogram struct {
	name, help string
	bounds     []float64      // sorted upper bounds, excluding +Inf
	counts     []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
	maxBits    atomic.Uint64 // float64 bits of the largest observation
}

// DefBuckets are the default latency buckets in seconds, matching the
// Prometheus client defaults so dashboards carry over.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count bucket bounds starting at start and
// multiplying by factor. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q has duplicate bucket bound %v", name, bounds[i]))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary-search the first bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the owning bucket, the same estimate PromQL's histogram_quantile
// computes. Observations beyond the last finite bound are attributed to
// the recorded maximum, so an all-overflow histogram still reports
// something honest. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.Max() // +Inf bucket: best point estimate we have
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			v := lo + (hi-lo)*frac
			if max := h.Max(); max > 0 && v > max {
				v = max
			}
			return v
		}
		cum += c
	}
	return h.Max()
}

// BucketCounts returns (bounds, cumulative counts) snapshots, the
// trailing count being the +Inf bucket (== Count up to racing updates).
func (h *Histogram) BucketCounts() ([]float64, []int64) {
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	return append([]float64(nil), h.bounds...), cum
}

func (h *Histogram) write(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	bounds, cum := h.BucketCounts()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum %v\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum[len(cum)-1])
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest representation that round-trips.
func formatBound(b float64) string {
	return fmt.Sprintf("%v", b)
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(name, help, buckets)
	r.register(name, h)
	return h
}
