package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSummary(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("steps_total", "walk steps")
	g := r.NewGauge("acceptance_rate", "fraction accepted")
	s := r.NewSummary("query_seconds", "query latency")
	r.NewGaugeFunc("chains", "pool size", func() float64 { return 4 })

	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	s.Observe(0.5)
	s.Observe(1.5)
	if s.Count() != 2 || s.Mean() != 1.0 {
		t.Fatalf("summary count=%d mean=%v", s.Count(), s.Mean())
	}

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE steps_total counter", "steps_total 10",
		"# TYPE acceptance_rate gauge", "acceptance_rate 0.25",
		"# TYPE query_seconds summary", "query_seconds_count 2",
		"query_seconds_sum 2", "query_seconds_max 1.5",
		"# TYPE chains gauge", "chains 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: sorted by name.
	if strings.Index(out, "acceptance_rate") > strings.Index(out, "steps_total") {
		t.Error("metrics not sorted by name")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.NewCounter("x", "")
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestAUCSteps(t *testing.T) {
	tr := &Trace{}
	tr.Add(Point{Steps: 0, Loss: 1.0})
	tr.Add(Point{Steps: 100, Loss: 0.5})
	tr.Add(Point{Steps: 200, Loss: 0.5})
	want := 100*0.75 + 100*0.5
	if got := tr.AUCSteps(); got != want {
		t.Fatalf("AUCSteps = %v, want %v", got, want)
	}
	if (&Trace{}).AUCSteps() != 0 {
		t.Error("empty trace AUCSteps should be 0")
	}
}
