package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file provides the operational counters behind the factordbd
// /metrics endpoint: lock-free counters and gauges updated from the
// sampling hot loop, pull-style gauges computed at scrape time, and a
// latency summary. Rendering follows the Prometheus text exposition
// format so standard scrapers work unmodified.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// Gauge is an instantaneous float value, safe for concurrent Set/Value.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %v\n", g.name, g.Value())
}

// GaugeFunc is a gauge whose value is computed at scrape time, for
// quantities derived from other state (rates, pool sizes).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *GaugeFunc) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %v\n", g.name, g.fn())
}

// Summary tracks the count, sum and max of observations (per-query
// latency). Rendered as a Prometheus summary (<name>_count, <name>_sum)
// plus a companion <name>_max gauge.
type Summary struct {
	name, help string

	mu    sync.Mutex
	count int64
	sum   float64
	max   float64
}

// Observe records one observation.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of observations.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Mean returns the mean observation (0 when empty).
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

func (s *Summary) write(w io.Writer) {
	s.mu.Lock()
	count, sum, max := s.count, s.sum, s.max
	s.mu.Unlock()
	writeHeader(w, s.name, s.help, "summary")
	fmt.Fprintf(w, "%s_count %d\n", s.name, count)
	fmt.Fprintf(w, "%s_sum %v\n", s.name, sum)
	writeHeader(w, s.name+"_max", s.help+" (maximum)", "gauge")
	fmt.Fprintf(w, "%s_max %v\n", s.name, max)
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

type renderable interface {
	write(w io.Writer)
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Registration is expected at startup; rendering may happen
// concurrently with metric updates.
type Registry struct {
	mu    sync.Mutex
	byNam map[string]renderable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNam: make(map[string]renderable)}
}

func (r *Registry) register(name string, m renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byNam[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.byNam[name] = m
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// NewGaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

// NewSummary registers and returns a summary.
func (r *Registry) NewSummary(name, help string) *Summary {
	s := &Summary{name: name, help: help}
	r.register(name, s)
	return s
}

// WriteText renders every registered metric, sorted by name for
// deterministic output.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.byNam))
	for n := range r.byNam {
		names = append(names, n)
	}
	items := make([]renderable, len(names))
	sort.Strings(names)
	for i, n := range names {
		items[i] = r.byNam[n]
	}
	r.mu.Unlock()
	for _, m := range items {
		m.write(w)
	}
}
