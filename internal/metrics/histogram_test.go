package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 0.2, 0.5, 1})

	// 100 observations uniform on (0, 1]: quantiles should interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-50.5) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Max() != 1 {
		t.Fatalf("max = %v", h.Max())
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.5, 0.06},
		{0.95, 0.95, 0.06},
		{0.10, 0.10, 0.06},
		{1.0, 1.0, 1e-9},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}

	// Overflow observations land in +Inf and the quantile falls back to
	// the recorded max rather than inventing a bound.
	h.Observe(30)
	if got := h.Quantile(0.999); got != 30 {
		t.Errorf("overflow quantile = %v, want 30", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "query latency", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(10)

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP q_seconds query latency",
		"# TYPE q_seconds histogram",
		`q_seconds_bucket{le="0.5"} 1`,
		`q_seconds_bucket{le="2"} 2`,
		`q_seconds_bucket{le="+Inf"} 3`,
		"q_seconds_sum 11.1",
		"q_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone, ending at _count.
	_, cum := h.BucketCounts()
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", cum[len(cum)-1], h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("x", "", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g%4) + 0.5)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	_, cum := h.BucketCounts()
	if cum[len(cum)-1] != 8000 {
		t.Fatalf("+Inf cumulative = %d", cum[len(cum)-1])
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCounterVecAndGaugeVec(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("chain_steps_total", "per-chain steps", "chain")
	gv := r.NewGaugeVec("chain_gen", "per-chain write generation", "chain")

	c0 := cv.With("0")
	c0.Add(5)
	cv.With("1").Inc()
	if cv.With("0") != c0 {
		t.Fatal("With should return the same child for the same labels")
	}
	gv.With("0").Set(2)

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE chain_steps_total counter",
		`chain_steps_total{chain="0"} 5`,
		`chain_steps_total{chain="1"} 1`,
		`chain_gen{chain="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header per family, not per child.
	if n := strings.Count(out, "# TYPE chain_steps_total counter"); n != 1 {
		t.Errorf("family header rendered %d times", n)
	}
}

// TestHistogramVec pins the labeled-histogram exposition: one HELP/TYPE
// header for the family, each child rendering its cumulative _bucket
// series with the le label spliced after the family labels, and _sum and
// _count per child.
func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("exec_seconds", "write latency by outcome", []float64{0.1, 1}, "outcome")
	ok := hv.With("ok")
	ok.Observe(0.05)
	ok.Observe(0.5)
	ok.Observe(5)
	hv.With("error").Observe(0.05)
	if hv.With("ok") != ok {
		t.Fatal("With should return the same child for the same labels")
	}

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE exec_seconds histogram",
		`exec_seconds_bucket{outcome="ok",le="0.1"} 1`,
		`exec_seconds_bucket{outcome="ok",le="1"} 2`,
		`exec_seconds_bucket{outcome="ok",le="+Inf"} 3`,
		`exec_seconds_count{outcome="ok"} 3`,
		`exec_seconds_sum{outcome="ok"} 5.55`,
		`exec_seconds_bucket{outcome="error",le="+Inf"} 1`,
		`exec_seconds_count{outcome="error"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE exec_seconds histogram"); n != 1 {
		t.Errorf("family header rendered %d times", n)
	}
}

func TestSpliceLabel(t *testing.T) {
	if got := spliceLabel(`{outcome="ok"}`, "le", "0.1"); got != `{outcome="ok",le="0.1"}` {
		t.Fatalf("spliceLabel = %s", got)
	}
	if got := spliceLabel("{}", "le", "+Inf"); got != `{le="+Inf"}` {
		t.Fatalf("spliceLabel on empty set = %s", got)
	}
}

func TestMultiGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.NewMultiGaugeFunc("view_rhat", "split-Rhat per view", []string{"view"}, func() []LabeledValue {
		return []LabeledValue{
			{Labels: []string{"bfp1:b"}, Value: 1.1},
			{Labels: []string{"bfp1:a"}, Value: 1.0},
		}
	})
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	ia := strings.Index(out, `view_rhat{view="bfp1:a"} 1`)
	ib := strings.Index(out, `view_rhat{view="bfp1:b"} 1.1`)
	if ia < 0 || ib < 0 {
		t.Fatalf("missing series:\n%s", out)
	}
	if ia > ib {
		t.Error("series not sorted by label value")
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := labelString([]string{"l"}, []string{`a"b\c` + "\n"}); got != `{l="a\"b\\c\n"}` {
		t.Fatalf("labelString = %s", got)
	}
}

func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("x_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity should panic")
		}
	}()
	cv.With("only-one")
}

// TestRegistryDuplicateNamesPanicWithName pins that a duplicate
// registration of ANY metric kind panics and names the offender — a
// silently shadowed metric would report another subsystem's numbers.
func TestRegistryDuplicateNamesPanicWithName(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("dup_metric", "", nil)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("duplicate registration should panic")
		}
		if !strings.Contains(strconv.Quote(toString(rec)), "dup_metric") {
			t.Fatalf("panic %v does not name the duplicate metric", rec)
		}
	}()
	r.NewCounterVec("dup_metric", "", "l")
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}
