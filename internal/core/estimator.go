// Package core is the probabilistic database engine: it ties the
// relational store (one possible world), an external factor-graph model
// expressed through an MCMC proposer, and relational query plans into the
// paper's query-evaluation problem — returning every tuple in a query
// answer together with its marginal probability Pr[t ∈ Q(W)]
// (Equations 4–5).
//
// Two evaluators are provided. The naive evaluator (Algorithm 3) re-runs
// the full query over the world after every k MCMC steps. The
// materialized evaluator (Algorithm 1) runs the full query once, then
// maintains the answer incrementally from the Δ⁻/Δ⁺ tuple deltas produced
// by the sampler — the paper's central efficiency result.
package core

import (
	"math"
	"sort"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// TupleProb is one query-answer tuple with its estimated probability of
// membership in the answer set.
type TupleProb struct {
	Tuple relstore.Tuple
	P     float64
}

// tupleStat is the accumulated evidence for one distinct answer tuple: how
// many samples contained it, and the index of the last sample that counted
// it (the dedup stamp that lets a streamed answer mention the same tuple
// several times without inflating its count).
type tupleStat struct {
	tuple relstore.Tuple
	c     int64
	seen  int64
}

// Estimator accumulates tuple presence counts across sampled worlds,
// implementing the finite-sample estimate of Equation 5: a tuple's
// marginal is the fraction of samples whose (multiset) answer contained
// it with positive count.
type Estimator struct {
	stats map[string]*tupleStat
	z     int64
	kbuf  []byte
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{stats: make(map[string]*tupleStat)}
}

// AddSample counts every tuple present (count > 0) in the sampled answer
// and returns the answer's cardinality (its number of present distinct
// tuples), saving callers that track answer sizes a second pass. The
// paper's multiset bookkeeping — "the condition is changed to
// count(mi) > 0" — is exactly the positive-count test here.
func (e *Estimator) AddSample(answer *ra.Bag) int64 {
	e.z++
	var card int64
	answer.Each(func(k string, r *ra.BagRow) bool {
		if r.N > 0 {
			st, ok := e.stats[k]
			if !ok {
				st = &tupleStat{tuple: r.Tuple}
				e.stats[k] = st
			}
			st.seen = e.z
			st.c++
			card++
		}
		return true
	})
	return card
}

// AddSampleStream counts one sampled answer directly from a streaming
// iterator (package ra), with no materialized bag in between: the naive
// evaluator's per-sample path. A tuple emitted split across several yields
// is counted once, via the per-sample seen stamp. When the stream is
// unowned (tuples reused as scratch), the tuple is cloned the first time
// it enters the estimator. Returns the answer's cardinality.
func (e *Estimator) AddSampleStream(it ra.Iterator, owned bool) int64 {
	e.z++
	var card int64
	it(func(t relstore.Tuple, n int64) bool {
		if n <= 0 {
			return true
		}
		e.kbuf = t.AppendKey(e.kbuf[:0])
		st, ok := e.stats[string(e.kbuf)]
		if !ok {
			if !owned {
				t = t.Clone()
			}
			st = &tupleStat{tuple: t}
			e.stats[string(e.kbuf)] = st
		}
		if st.seen != e.z {
			st.seen = e.z
			st.c++
			card++
		}
		return true
	})
	return card
}

// Samples returns the number of samples accumulated (the normalizer z).
func (e *Estimator) Samples() int64 { return e.z }

// Marginals returns the estimated probability for every tuple ever seen,
// keyed by tuple key.
func (e *Estimator) Marginals() map[string]float64 {
	out := make(map[string]float64, len(e.stats))
	if e.z == 0 {
		return out
	}
	for k, st := range e.stats {
		out[k] = float64(st.c) / float64(e.z)
	}
	return out
}

// Results returns the answer tuples with probabilities, sorted by
// descending probability then tuple key for determinism.
func (e *Estimator) Results() []TupleProb {
	type kv struct {
		k  string
		st *tupleStat
	}
	items := make([]kv, 0, len(e.stats))
	for k, st := range e.stats {
		items = append(items, kv{k, st})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].st.c != items[j].st.c {
			return items[i].st.c > items[j].st.c
		}
		return items[i].k < items[j].k
	})
	out := make([]TupleProb, len(items))
	for i, it := range items {
		p := 0.0
		if e.z > 0 {
			p = float64(it.st.c) / float64(e.z)
		}
		out[i] = TupleProb{Tuple: it.st.tuple, P: p}
	}
	return out
}

// Merge adds the counts of another estimator (used to average parallel
// chains, Section 5.4). Both estimators must target the same query.
// Merging never resets dedup stamps: the normalizer only grows, so the
// next sample index exceeds every stale stamp.
func (e *Estimator) Merge(o *Estimator) {
	e.z += o.z
	for k, ost := range o.stats {
		if st, ok := e.stats[k]; ok {
			st.c += ost.c
		} else {
			e.stats[k] = &tupleStat{tuple: ost.tuple, c: ost.c}
		}
	}
}

// Clone returns an independent copy of the estimator. Tuples are shared
// (they are never mutated); counts are copied. Serving chains publish
// clones as epoch snapshots so readers merge consistent states while the
// walk keeps accumulating.
func (e *Estimator) Clone() *Estimator {
	c := NewEstimator()
	c.Merge(e)
	return c
}

// TupleCI is one answer tuple with its marginal estimate and a confidence
// interval for the true marginal.
type TupleCI struct {
	Tuple relstore.Tuple
	P     float64
	Lo    float64
	Hi    float64
}

// ResultsCI returns the answer tuples with Wilson score intervals at the
// given normal quantile z (1.96 for 95% confidence). The Wilson interval
// stays inside [0,1] and remains informative for marginals near 0 or 1 at
// the small sample counts typical of a bounded-latency query, where the
// Wald interval collapses to a point. Note the interval treats samples as
// independent; consecutive MCMC samples are positively correlated, so at
// small thinning intervals coverage is optimistic — parallel chains
// (whose samples are independent across chains) tighten this.
func (e *Estimator) ResultsCI(z float64) []TupleCI {
	res := e.Results()
	out := make([]TupleCI, len(res))
	n := float64(e.z)
	for i, tp := range res {
		lo, hi := tp.P, tp.P
		if n > 0 && z > 0 {
			z2 := z * z
			denom := 1 + z2/n
			center := (tp.P + z2/(2*n)) / denom
			half := z / denom * math.Sqrt(tp.P*(1-tp.P)/n+z2/(4*n*n))
			lo, hi = center-half, center+half
			if lo < 0 {
				lo = 0
			}
			if hi > 1 {
				hi = 1
			}
			// Guard against rounding at the extremes: the interval always
			// contains the point estimate (analytically true for Wilson).
			if lo > tp.P {
				lo = tp.P
			}
			if hi < tp.P {
				hi = tp.P
			}
		}
		out[i] = TupleCI{Tuple: tp.Tuple, P: tp.P, Lo: lo, Hi: hi}
	}
	return out
}
