package core

import (
	"fmt"
	"sync"
)

// ChainFactory builds an independent evaluator for chain i. Each chain
// must own a private copy of the world (the paper produces "identical
// copies of the probabilistic database", Section 5.4) and use a distinct
// random seed.
type ChainFactory func(chain int) (*Evaluator, error)

// RunParallel runs n independent MCMC chains for the given number of
// samples each and returns the merged estimator. Samples drawn across
// chains are far more independent than consecutive samples within one
// chain, which is why the paper observes super-linear error reduction
// (Figure 5).
func RunParallel(n, samplesPerChain int, factory ChainFactory) (*Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: need at least one chain, got %d", n)
	}
	evs := make([]*Evaluator, n)
	for i := range evs {
		ev, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("core: building chain %d: %w", i, err)
		}
		evs[i] = ev
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, ev := range evs {
		wg.Add(1)
		go func(i int, ev *Evaluator) {
			defer wg.Done()
			errs[i] = ev.Run(samplesPerChain, nil)
		}(i, ev)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: chain %d: %w", i, err)
		}
	}
	merged := NewEstimator()
	for _, ev := range evs {
		merged.Merge(ev.Estimator())
	}
	return merged, nil
}
