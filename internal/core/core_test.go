package core

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/factor"
	"factordb/internal/ie"
	"factordb/internal/mcmc"
	"factordb/internal/metrics"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// ---- tiny explicit-graph world for exactness tests ----

// tinyWorld is a 4-token world whose label variables live in an explicit
// factor graph, so exact query marginals are computable by enumeration.
type tinyWorld struct {
	g    *factor.Graph
	vars []*factor.Var
	log  *world.ChangeLog
	rows []relstore.RowID
}

var tinyStrings = []string{"IBM", "IBM", "Smith", "said"}

func newTinyWorld(seed int64) *tinyWorld {
	rng := rand.New(rand.NewSource(seed))
	dom := factor.NewDomain("label", "O", "B-PER")
	g := factor.NewGraph()
	tw := &tinyWorld{g: g}
	for range tinyStrings {
		v := g.AddVar("y", dom)
		tw.vars = append(tw.vars, v)
		w := rng.NormFloat64()
		g.MustAddFactor("bias", func(vals []int) float64 {
			if vals[0] == 1 {
				return w
			}
			return 0
		}, v)
	}
	// A pairwise factor to create correlation (like a skip edge between
	// the two IBM tokens).
	w := 0.9
	g.MustAddFactor("skip", func(vals []int) float64 {
		if vals[0] == vals[1] {
			return w
		}
		return -w
	}, tw.vars[0], tw.vars[1])

	db := relstore.NewDB()
	rel := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	for i, s := range tinyStrings {
		id, err := rel.Insert(relstore.Tuple{relstore.Int(int64(i)), relstore.String(s), relstore.String("O")})
		if err != nil {
			panic(err)
		}
		tw.rows = append(tw.rows, id)
	}
	tw.log = world.NewChangeLog(db)
	return tw
}

// Propose implements mcmc.Proposer with database write-through.
func (tw *tinyWorld) Propose(rng *rand.Rand) mcmc.Proposal {
	i := rng.Intn(len(tw.vars))
	v := tw.vars[i]
	newVal := rng.Intn(v.Dom.Size())
	return mcmc.Proposal{
		LogScoreDelta: tw.g.ScoreDelta(v, newVal),
		Accept: func() {
			v.Val = newVal
			ref := world.FieldRef{Rel: "TOKEN", Row: tw.rows[i], Col: 2}
			if err := tw.log.SetField(ref, relstore.String(v.Dom.Values[newVal])); err != nil {
				panic(err)
			}
		},
	}
}

func perQuery() ra.Plan {
	return ra.NewProject(
		ra.NewSelect(ra.NewScan("TOKEN", "T"),
			ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER")))),
		ra.C("T", "STRING"),
	)
}

// exactTupleMarginals computes Pr[t ∈ Q(W)] by enumeration for the
// tiny world's Query 1.
func exactTupleMarginals(tw *tinyWorld) map[string]float64 {
	out := make(map[string]float64)
	distinct := map[string][]int{}
	for i, s := range tinyStrings {
		distinct[s] = append(distinct[s], i)
	}
	for s, positions := range distinct {
		key := relstore.Tuple{relstore.String(s)}.Key()
		p, err := tw.g.ExactProb(func(assign []int) bool {
			for _, i := range positions {
				if assign[i] == 1 {
					return true
				}
			}
			return false
		})
		if err != nil {
			panic(err)
		}
		if p > 0 {
			out[key] = p
		}
	}
	return out
}

// TestEvaluatorMatchesExactMarginals is the end-to-end correctness test:
// both evaluators' estimates of Pr[t ∈ Q(W)] must converge to the
// enumerated truth.
func TestEvaluatorMatchesExactMarginals(t *testing.T) {
	for _, mode := range []Mode{Naive, Materialized} {
		tw := newTinyWorld(5)
		ev, err := NewEvaluator(mode, tw.log, tw, perQuery(), 3, 99)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Run(60000, nil); err != nil {
			t.Fatal(err)
		}
		exact := exactTupleMarginals(tw)
		if got := metrics.MaxAbsDiff(ev.Marginals(), exact); got > 0.02 {
			t.Errorf("%v: max |est-exact| = %.4f, want <= 0.02", mode, got)
		}
	}
}

// TestNaiveAndMaterializedAgreeExactly runs both evaluators with the same
// seed over identical worlds: they see the same sample stream and must
// produce bit-identical marginal estimates (the two algorithms differ
// only in how the answer is computed, not in what it is).
func TestNaiveAndMaterializedAgreeExactly(t *testing.T) {
	run := func(mode Mode) map[string]float64 {
		tw := newTinyWorld(7)
		ev, err := NewEvaluator(mode, tw.log, tw, perQuery(), 5, 123)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Run(2000, nil); err != nil {
			t.Fatal(err)
		}
		return ev.Marginals()
	}
	naive, mat := run(Naive), run(Materialized)
	if len(naive) != len(mat) {
		t.Fatalf("different answer sets: %d vs %d", len(naive), len(mat))
	}
	for k, p := range naive {
		if mat[k] != p {
			t.Fatalf("marginal mismatch for %q: naive %v, materialized %v", k, p, mat[k])
		}
	}
}

// TestNERIntegration runs the full pipeline on a small synthetic corpus:
// generate, load, train, evaluate Query 1 with both evaluators.
func TestNERIntegration(t *testing.T) {
	corpus, err := ie.Generate(ie.DefaultGenConfig(2000, 21))
	if err != nil {
		t.Fatal(err)
	}
	vocab := ie.BuildVocab(corpus)
	model := ie.NewModel(vocab, true)

	build := func(seed int64, mode Mode) (*Evaluator, *ie.Tagger) {
		db := relstore.NewDB()
		rows, err := ie.LoadCorpus(db, corpus, ie.LO)
		if err != nil {
			t.Fatal(err)
		}
		log := world.NewChangeLog(db)
		tg := ie.NewTagger(model, corpus, ie.LO)
		if err := tg.BindDB(log, rows); err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(mode, log, tg, perNERQuery(), 200, seed)
		if err != nil {
			t.Fatal(err)
		}
		return ev, tg
	}

	// Train on an unbound tagger (memory only), sharing the model.
	trainTg := ie.NewTagger(model, corpus, ie.LO)
	trainTg.Train(30000, 1.0, 3)

	evN, _ := build(55, Naive)
	evM, _ := build(55, Materialized)
	if err := evN.Run(150, nil); err != nil {
		t.Fatal(err)
	}
	if err := evM.Run(150, nil); err != nil {
		t.Fatal(err)
	}
	if evN.Estimator().Samples() != 150 || evM.Estimator().Samples() != 150 {
		t.Fatal("sample counts wrong")
	}
	n, m := evN.Marginals(), evM.Marginals()
	if len(n) == 0 {
		t.Fatal("empty answer: trained model predicts no persons at all")
	}
	if got := metrics.MaxAbsDiff(n, m); got != 0 {
		t.Errorf("same-seed evaluators disagree by %v", got)
	}
}

func perNERQuery() ra.Plan {
	return ra.NewProject(
		ra.NewSelect(ra.NewScan(ie.TokenRelation, "T"),
			ra.Eq(ra.Col(ra.C("T", "LABEL")), ra.Const(relstore.String("B-PER")))),
		ra.C("T", "STRING"),
	)
}

func TestRunTracedLossDecreases(t *testing.T) {
	tw := newTinyWorld(9)
	truth := exactTupleMarginals(tw)
	ev, err := NewEvaluator(Materialized, tw.log, tw, perQuery(), 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ev.RunTraced(20000, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 20000 {
		t.Fatalf("trace has %d points", len(tr.Points))
	}
	if tr.Final() >= tr.Initial() {
		t.Errorf("loss did not decrease: initial %v, final %v", tr.Initial(), tr.Final())
	}
	if tr.Final() > 0.01 {
		t.Errorf("final loss = %v, want near 0", tr.Final())
	}
}

func TestEstimator(t *testing.T) {
	sch := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("", "s"), Type: relstore.TString}}}
	mk := func(vals ...string) *ra.Bag {
		b := ra.NewBag(sch)
		for _, v := range vals {
			b.Add(relstore.Tuple{relstore.String(v)}, 1)
		}
		return b
	}
	e := NewEstimator()
	e.AddSample(mk("a", "b"))
	e.AddSample(mk("a"))
	if e.Samples() != 2 {
		t.Fatalf("Samples = %d", e.Samples())
	}
	m := e.Marginals()
	aKey := relstore.Tuple{relstore.String("a")}.Key()
	bKey := relstore.Tuple{relstore.String("b")}.Key()
	if m[aKey] != 1.0 || m[bKey] != 0.5 {
		t.Errorf("marginals = %v", m)
	}
	res := e.Results()
	if len(res) != 2 || res[0].P != 1.0 || res[0].Tuple[0].AsString() != "a" {
		t.Errorf("Results = %v", res)
	}
	// Merge doubles counts.
	o := NewEstimator()
	o.AddSample(mk("b"))
	e.Merge(o)
	if got := e.Marginals()[bKey]; math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("merged marginal = %v", got)
	}
}

func TestEstimatorCloneIsIndependent(t *testing.T) {
	sch := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("", "s"), Type: relstore.TString}}}
	mk := func(vals ...string) *ra.Bag {
		b := ra.NewBag(sch)
		for _, v := range vals {
			b.Add(relstore.Tuple{relstore.String(v)}, 1)
		}
		return b
	}
	e := NewEstimator()
	e.AddSample(mk("a", "b"))
	c := e.Clone()
	e.AddSample(mk("a"))
	if c.Samples() != 1 || e.Samples() != 2 {
		t.Fatalf("clone shares state: %d vs %d samples", c.Samples(), e.Samples())
	}
	aKey := relstore.Tuple{relstore.String("a")}.Key()
	if c.Marginals()[aKey] != 1.0 || e.Marginals()[aKey] != 1.0 {
		t.Errorf("marginals: clone %v orig %v", c.Marginals(), e.Marginals())
	}
	bKey := relstore.Tuple{relstore.String("b")}.Key()
	if c.Marginals()[bKey] != 1.0 || e.Marginals()[bKey] != 0.5 {
		t.Errorf("clone marginal drifted: %v vs %v", c.Marginals()[bKey], e.Marginals()[bKey])
	}
}

func TestResultsCI(t *testing.T) {
	sch := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("", "s"), Type: relstore.TString}}}
	e := NewEstimator()
	for i := 0; i < 100; i++ {
		b := ra.NewBag(sch)
		b.Add(relstore.Tuple{relstore.String("always")}, 1)
		if i < 50 {
			b.Add(relstore.Tuple{relstore.String("half")}, 1)
		}
		e.AddSample(b)
	}
	for _, ci := range e.ResultsCI(1.96) {
		if ci.Lo < 0 || ci.Hi > 1 || ci.Lo > ci.Hi {
			t.Errorf("malformed interval: %+v", ci)
		}
		if ci.P < ci.Lo || ci.P > ci.Hi {
			t.Errorf("interval excludes the point estimate: %+v", ci)
		}
		if ci.Lo == ci.Hi {
			t.Errorf("degenerate interval at n=100: %+v", ci)
		}
	}
	res := e.ResultsCI(1.96)
	if len(res) != 2 || res[0].Tuple[0].AsString() != "always" {
		t.Fatalf("ResultsCI order: %+v", res)
	}
	// p=1 at n=100: Wilson keeps the upper bound at 1 and pulls the lower
	// bound strictly below it.
	if res[0].Hi != 1 || res[0].Lo >= 1 || res[0].Lo < 0.9 {
		t.Errorf("p=1 interval: %+v", res[0])
	}
	// The half tuple's interval must straddle 0.5 roughly symmetrically.
	if res[1].Lo >= 0.5 || res[1].Hi <= 0.5 {
		t.Errorf("p=0.5 interval: %+v", res[1])
	}
	// z=0 degenerates to the point estimate.
	for _, ci := range e.ResultsCI(0) {
		if ci.Lo != ci.P || ci.Hi != ci.P {
			t.Errorf("z=0 interval should be the point estimate: %+v", ci)
		}
	}
}

func TestEstimatorIgnoresNonPositiveCounts(t *testing.T) {
	sch := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("", "s"), Type: relstore.TString}}}
	b := ra.NewBag(sch)
	b.Add(relstore.Tuple{relstore.String("ghost")}, -1)
	e := NewEstimator()
	e.AddSample(b)
	if len(e.Marginals()) != 0 {
		t.Error("negative-count tuple must not be counted as present")
	}
}

func TestEmptyEstimator(t *testing.T) {
	e := NewEstimator()
	if len(e.Marginals()) != 0 || len(e.Results()) != 0 || e.Samples() != 0 {
		t.Error("empty estimator should report nothing")
	}
}

func TestNewEvaluatorErrors(t *testing.T) {
	tw := newTinyWorld(1)
	if _, err := NewEvaluator(Naive, tw.log, tw, perQuery(), 0, 1); err == nil {
		t.Error("k=0: want error")
	}
	bad := ra.NewScan("MISSING", "")
	if _, err := NewEvaluator(Naive, tw.log, tw, bad, 10, 1); err == nil {
		t.Error("bad plan: want error")
	}
}

func TestRunParallelReducesError(t *testing.T) {
	truth := exactTupleMarginals(newTinyWorld(13))
	loss := func(chains int) float64 {
		est, err := RunParallel(chains, 400, func(c int) (*Evaluator, error) {
			tw := newTinyWorld(13) // identical initial worlds
			return NewEvaluator(Materialized, tw.log, tw, perQuery(), 3, int64(1000+c*7919))
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.SquaredError(est.Marginals(), truth)
	}
	l1, l8 := loss(1), loss(8)
	if l8 >= l1 {
		t.Errorf("8 chains did not reduce error: 1-chain %v, 8-chain %v", l1, l8)
	}
}

func TestRunParallelErrors(t *testing.T) {
	if _, err := RunParallel(0, 1, nil); err == nil {
		t.Error("0 chains: want error")
	}
	_, err := RunParallel(1, 1, func(int) (*Evaluator, error) {
		return nil, errBoom
	})
	if err == nil {
		t.Error("factory error must propagate")
	}
}

var errBoom = errBoomType{}

type errBoomType struct{}

func (errBoomType) Error() string { return "boom" }

func TestGroundTruthAndAnswer(t *testing.T) {
	tw := newTinyWorld(3)
	// Deterministic single-world answer: initially nothing is B-PER.
	bag, err := Answer(tw.log.DB(), perQuery())
	if err != nil {
		t.Fatal(err)
	}
	if bag.Len() != 0 {
		t.Errorf("initial answer has %d tuples, want 0", bag.Len())
	}
	truth, err := GroundTruth(tw.log, tw, perQuery(), 5000, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactTupleMarginals(tw)
	if got := metrics.MaxAbsDiff(truth, exact); got > 0.05 {
		t.Errorf("ground-truth estimate off by %v", got)
	}
}
