package core

import (
	"math"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

func fillEstimator(t *testing.T) *Estimator {
	t.Helper()
	sch := &ra.RowSchema{Cols: []ra.OutCol{{Ref: ra.C("", "s"), Type: relstore.TString}}}
	mk := func(vals ...string) *ra.Bag {
		b := ra.NewBag(sch)
		for _, v := range vals {
			b.Add(relstore.Tuple{relstore.String(v)}, 1)
		}
		return b
	}
	e := NewEstimator()
	e.AddSample(mk("a", "b", "c"))
	e.AddSample(mk("a", "b"))
	e.AddSample(mk("a"))
	e.AddSample(mk("a"))
	return e
}

func TestTopK(t *testing.T) {
	e := fillEstimator(t)
	top := e.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d", len(top))
	}
	if top[0].Tuple[0].AsString() != "a" || top[0].P != 1 {
		t.Errorf("top tuple = %v p=%v", top[0].Tuple, top[0].P)
	}
	if top[1].Tuple[0].AsString() != "b" || top[1].P != 0.5 {
		t.Errorf("second tuple = %v p=%v", top[1].Tuple, top[1].P)
	}
	// p=1 has zero standard error; p=0.5 has sqrt(.25/4)=0.25.
	if top[0].StdErr != 0 {
		t.Errorf("stderr(p=1) = %v", top[0].StdErr)
	}
	if math.Abs(top[1].StdErr-0.25) > 1e-12 {
		t.Errorf("stderr(p=0.5) = %v, want 0.25", top[1].StdErr)
	}
	// k <= 0 returns everything.
	if got := len(e.TopK(0)); got != 3 {
		t.Errorf("TopK(0) = %d rows, want 3", got)
	}
	if got := len(e.TopK(100)); got != 3 {
		t.Errorf("TopK(100) = %d rows, want 3", got)
	}
}

func TestAbove(t *testing.T) {
	e := fillEstimator(t)
	hi := e.Above(0.5)
	if len(hi) != 2 {
		t.Fatalf("Above(0.5) = %d rows, want 2", len(hi))
	}
	all := e.Above(0)
	if len(all) != 3 {
		t.Fatalf("Above(0) = %d rows, want 3", len(all))
	}
	none := e.Above(1.01)
	if len(none) != 0 {
		t.Fatalf("Above(1.01) = %d rows, want 0", len(none))
	}
}

func TestTopKEmpty(t *testing.T) {
	e := NewEstimator()
	if len(e.TopK(5)) != 0 || len(e.Above(0)) != 0 {
		t.Error("empty estimator should return nothing")
	}
}
