package core

import (
	"fmt"
	"time"

	"factordb/internal/ivm"
	"factordb/internal/mcmc"
	"factordb/internal/metrics"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// Mode selects the query-evaluation strategy.
type Mode uint8

// Evaluation modes: Naive re-executes the query per sample (Algorithm 3);
// Materialized maintains the answer from deltas (Algorithm 1).
const (
	Naive Mode = iota
	Materialized
)

func (m Mode) String() string {
	if m == Materialized {
		return "materialized"
	}
	return "naive"
}

// Evaluator estimates the marginal probabilities of a query's answer
// tuples by MCMC sampling over possible worlds.
type Evaluator struct {
	mode    Mode
	log     *world.ChangeLog
	sampler *mcmc.Sampler
	bound   *ra.Bound
	view    *ivm.View // Materialized only
	est     *Estimator

	// Naive only: the streaming pipeline compiled once at construction and
	// re-run over the current world for every sample, feeding the estimator
	// without materializing an answer bag.
	stream      ra.Iterator
	streamOwned bool

	// StepsPerSample is k of Algorithms 1 and 3: the thinning interval in
	// MH walk-steps between consecutive query samples.
	StepsPerSample int
}

// NewEvaluator builds an evaluator over the world held in log's database.
// The proposer embodies the factor-graph model and proposal distribution;
// plan is the query. For Materialized mode the view is initialized with
// one full evaluation, and any changes already pending in the log are
// folded in first so the view starts consistent.
func NewEvaluator(mode Mode, log *world.ChangeLog, proposer mcmc.Proposer, plan ra.Plan, stepsPerSample int, seed int64) (*Evaluator, error) {
	if stepsPerSample <= 0 {
		return nil, fmt.Errorf("core: stepsPerSample must be positive, got %d", stepsPerSample)
	}
	bound, err := ra.Bind(log.DB(), plan)
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{
		mode:           mode,
		log:            log,
		sampler:        mcmc.NewSampler(proposer, seed),
		bound:          bound,
		est:            NewEstimator(),
		StepsPerSample: stepsPerSample,
	}
	if mode == Materialized {
		log.Drain() // view initialization sees the current world directly
		view, err := ivm.NewView(bound)
		if err != nil {
			return nil, err
		}
		ev.view = view
	} else {
		it, owned, err := ra.Stream(bound)
		if err != nil {
			return nil, err
		}
		ev.stream, ev.streamOwned = it, owned
	}
	return ev, nil
}

// Mode returns the evaluation strategy.
func (ev *Evaluator) Mode() Mode { return ev.mode }

// Sampler exposes the underlying MH sampler for statistics.
func (ev *Evaluator) Sampler() *mcmc.Sampler { return ev.sampler }

// Estimator exposes the accumulated marginal counts.
func (ev *Evaluator) Estimator() *Estimator { return ev.est }

// Burn advances the world by n MH walk-steps without collecting a
// sample, discarding the initial transient of the chain. For the
// materialized evaluator the accumulated deltas are still folded into the
// view so it stays consistent with the world.
func (ev *Evaluator) Burn(n int) {
	ev.sampler.Run(n)
	d := ev.log.Drain()
	if ev.mode == Materialized {
		ev.view.Apply(d)
	}
}

// CollectSample advances the world by k MH walk-steps, evaluates the
// query on the resulting world (fully or incrementally according to the
// mode), and folds the answer into the marginal estimate.
func (ev *Evaluator) CollectSample() error {
	ev.sampler.Run(ev.StepsPerSample)
	if ev.mode == Materialized {
		// Algorithm 1 line 5: apply Q'(w,Δ⁻) and Q'(w,Δ⁺) to the
		// materialized answer; the auxiliary delta tables are then
		// cleared for the next batch.
		ev.view.Apply(ev.log.Drain())
		ev.est.AddSample(ev.view.Result())
		return nil
	}
	// Algorithm 3 line 5: run the full query over the world, streaming
	// answer tuples straight into the estimator. The delta log is
	// discarded — the naive evaluator does not use it.
	ev.log.Drain()
	ev.est.AddSampleStream(ev.stream, ev.streamOwned)
	return nil
}

// Run collects n samples. If onSample is non-nil it is invoked after each
// sample with the 1-based sample index.
func (ev *Evaluator) Run(n int, onSample func(i int)) error {
	for i := 1; i <= n; i++ {
		if err := ev.CollectSample(); err != nil {
			return err
		}
		if onSample != nil {
			onSample(i)
		}
	}
	return nil
}

// RunTraced collects n samples while recording a squared-error loss trace
// against the ground-truth marginals after every sample.
func (ev *Evaluator) RunTraced(n int, truth map[string]float64) (*metrics.Trace, error) {
	tr := &metrics.Trace{}
	start := time.Now()
	err := ev.Run(n, func(int) {
		tr.Add(metrics.Point{
			Elapsed: time.Since(start),
			Steps:   ev.sampler.Steps(),
			Samples: ev.est.Samples(),
			Loss:    metrics.SquaredError(ev.est.Marginals(), truth),
		})
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// Results returns the current probabilistic query answer.
func (ev *Evaluator) Results() []TupleProb { return ev.est.Results() }

// Marginals returns the current marginal estimates keyed by tuple key.
func (ev *Evaluator) Marginals() map[string]float64 { return ev.est.Marginals() }

// GroundTruth estimates reference marginals the way the paper does
// (Section 5.2): a long MCMC run over the same world, collecting a sample
// every thin steps. It uses the provided evaluator configuration but its
// own estimator, leaving ev untouched. The world is left wherever the
// walk ends; callers typically reset it afterwards.
func GroundTruth(log *world.ChangeLog, proposer mcmc.Proposer, plan ra.Plan, samples, thin int, seed int64) (map[string]float64, error) {
	ev, err := NewEvaluator(Materialized, log, proposer, plan, thin, seed)
	if err != nil {
		return nil, err
	}
	if err := ev.Run(samples, nil); err != nil {
		return nil, err
	}
	return ev.Marginals(), nil
}

// Answer runs the deterministic query over the current single world,
// bypassing sampling: the "initial single-sample deterministic
// approximation" the paper measures loss against.
func Answer(db *relstore.DB, plan ra.Plan) (*ra.Bag, error) {
	bound, err := ra.Bind(db, plan)
	if err != nil {
		return nil, err
	}
	return ra.Eval(bound)
}
