package core

import "math"

// Top-k and uncertainty reporting over the sampled marginals. MystiQ-style
// top-k ranking (Ré, Dalvi, Suciu — cited as related work in Section 2)
// falls out of the sampling representation for free: rank tuples by
// estimated marginal and report Monte Carlo standard errors.

// TupleStat extends TupleProb with the Monte Carlo standard error of the
// estimate.
type TupleStat struct {
	TupleProb
	// StdErr is sqrt(p(1-p)/z), the binomial standard error under an
	// independent-sample assumption. Consecutive MCMC samples are
	// positively correlated, so this is a lower bound on the true
	// uncertainty; thinning (larger k) tightens it.
	StdErr float64
}

// TopK returns the k highest-probability answer tuples with standard
// errors. k <= 0 returns everything.
func (e *Estimator) TopK(k int) []TupleStat {
	res := e.Results()
	if k > 0 && k < len(res) {
		res = res[:k]
	}
	out := make([]TupleStat, len(res))
	for i, tp := range res {
		out[i] = TupleStat{TupleProb: tp, StdErr: e.stderr(tp.P)}
	}
	return out
}

func (e *Estimator) stderr(p float64) float64 {
	if e.z == 0 {
		return 0
	}
	return math.Sqrt(p * (1 - p) / float64(e.z))
}

// Above returns all tuples whose estimated marginal is at least tau, the
// threshold-query form of probabilistic answers.
func (e *Estimator) Above(tau float64) []TupleStat {
	var out []TupleStat
	for _, ts := range e.TopK(0) {
		if ts.P >= tau {
			out = append(out, ts)
		}
	}
	return out
}
