package core

import (
	"sort"

	"factordb/internal/ra"
)

// SortTupleCIs orders the final probabilistic answer according to the
// query's result spec and truncates it to the spec's limit, in place.
// With no explicit order keys the input order (descending marginal with
// deterministic tie-breaks, as produced by Estimator.Results) is kept;
// ties under the explicit keys also fall back to that order, so ranked
// answers are deterministic for a given estimate.
func SortTupleCIs(cis []TupleCI, spec ra.ResultSpec) []TupleCI {
	if len(spec.Order) > 0 {
		sort.SliceStable(cis, func(i, j int) bool {
			return rankLess(&cis[i], &cis[j], spec.Order)
		})
	}
	if spec.Limit > 0 && int64(len(cis)) > spec.Limit {
		cis = cis[:spec.Limit]
	}
	return cis
}

func rankLess(a, b *TupleCI, keys []ra.ResultOrder) bool {
	for _, k := range keys {
		if k.ByProb {
			switch {
			case a.P < b.P:
				return !k.Desc
			case b.P < a.P:
				return k.Desc
			}
			continue
		}
		av, bv := a.Tuple[k.Index], b.Tuple[k.Index]
		switch {
		case av.Less(bv):
			return !k.Desc
		case bv.Less(av):
			return k.Desc
		}
	}
	return false // stable sort keeps the default order on full ties
}
