// Package exp is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 5) on the synthetic NER workload:
// Figure 4(a) scalability, Figure 4(b) loss-over-time, Figure 5
// parallelization, Figure 6 aggregate queries, and the appendix's
// Figure 7 histogram and Figure 8 Query-4 marginals. The same harness
// backs cmd/experiments and the repository-level benchmarks.
package exp

import (
	"fmt"
	"time"

	"factordb/internal/core"
	"factordb/internal/ie"
	"factordb/internal/mcmc"
	"factordb/internal/metrics"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/sqlparse"
	"factordb/internal/world"
)

// The paper's evaluation queries, in the SQL dialect of sqlparse.
const (
	Query1 = `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`
	Query2 = `SELECT COUNT(*) AS PERSONS FROM TOKEN WHERE LABEL='B-PER'`
	Query3 = `SELECT T.DOC_ID FROM TOKEN T WHERE
 (SELECT COUNT(*) FROM TOKEN T1 WHERE T1.LABEL='B-PER' AND T.DOC_ID=T1.DOC_ID)
 =(SELECT COUNT(*) FROM TOKEN T1 WHERE T1.LABEL='B-ORG' AND T.DOC_ID=T1.DOC_ID)`
	Query4 = `SELECT T2.STRING FROM TOKEN T1, TOKEN T2
 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG'
 AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'`

	// Query4Ranked is Query 4 as a first-class ranked query: the ten
	// highest-marginal answers, ordered and truncated by the engine via
	// the P pseudo-column (MystiQ-style top-k, Section 2's related work).
	Query4Ranked = Query4 + `
 ORDER BY P DESC LIMIT 10`
)

// NERSystem is a trained skip-chain NER probabilistic database: the
// shared model plus a pristine initial world (every LABEL = O) that can
// be cloned into independent chains.
type NERSystem struct {
	Corpus *ie.Corpus
	Vocab  *ie.Vocab
	Model  *ie.Model

	protoDB *relstore.DB
	rows    [][]relstore.RowID
}

// Config parameterizes system construction.
type Config struct {
	NumTokens    int
	Seed         int64
	TrainSteps   int  // SampleRank steps (0 = default heuristic)
	UseSkip      bool // skip-chain versus plain linear chain
	TokensPerDoc int  // 0 = generator default

	// Temperature divides the trained weights (0 means the default).
	// SampleRank's perceptron updates grow weights without bound, which
	// makes the distribution near-deterministic: chains mix slowly and
	// tuple marginals collapse to 0/1. Sampling at a temperature above 1
	// restores the soft, genuinely probabilistic answers shown in the
	// paper's Figures 7 and 8 and keeps the walk mixing.
	Temperature float64
}

// DefaultTemperature is applied when Config.Temperature is zero.
const DefaultTemperature = 3.0

// BuildNER generates a corpus, trains the model with SampleRank on an
// in-memory tagger (Section 5.2), and loads the corpus into a prototype
// database world.
func BuildNER(cfg Config) (*NERSystem, error) {
	if cfg.TrainSteps == 0 {
		cfg.TrainSteps = 20 * cfg.NumTokens
		if cfg.TrainSteps > 2_000_000 {
			cfg.TrainSteps = 2_000_000
		}
	}
	gen := ie.DefaultGenConfig(cfg.NumTokens, cfg.Seed)
	if cfg.TokensPerDoc > 0 {
		gen.TokensPerDoc = cfg.TokensPerDoc
	}
	corpus, err := ie.Generate(gen)
	if err != nil {
		return nil, err
	}
	vocab := ie.BuildVocab(corpus)
	model := ie.NewModel(vocab, cfg.UseSkip)
	trainer := ie.NewTagger(model, corpus, ie.LO)
	trainer.Train(cfg.TrainSteps, 1.0, cfg.Seed+1)
	temp := cfg.Temperature
	if temp == 0 {
		temp = DefaultTemperature
	}
	for k, v := range model.W.W {
		model.W.W[k] = v / temp
	}

	db := relstore.NewDB()
	rows, err := ie.LoadCorpus(db, corpus, ie.LO)
	if err != nil {
		return nil, err
	}
	return &NERSystem{Corpus: corpus, Vocab: vocab, Model: model, protoDB: db, rows: rows}, nil
}

// Chain is one independent evaluator over a private copy of the world.
type Chain struct {
	Evaluator *core.Evaluator
	Tagger    *ie.Tagger
	Log       *world.ChangeLog

	// Spec is the compiled query's result-level ranking (ORDER BY /
	// LIMIT / the P pseudo-column). Evaluator.Results is the raw
	// estimate; RankedResultsCI applies the spec.
	Spec ra.ResultSpec
}

// RankedResultsCI returns the chain's current answer with Wilson
// intervals at normal quantile z, ordered and truncated per the
// query's ORDER BY / LIMIT clauses (a no-op for unranked queries).
func (c *Chain) RankedResultsCI(z float64) []core.TupleCI {
	return core.SortTupleCIs(c.Evaluator.Estimator().ResultsCI(z), c.Spec)
}

// NewChain clones the prototype world and builds an evaluator over it.
// The paper's batching parameters (five active documents, re-drawn every
// 2000 proposals) are applied when the corpus is large enough.
func (s *NERSystem) NewChain(mode core.Mode, sql string, stepsPerSample int, seed int64) (*Chain, error) {
	plan, spec, err := sqlparse.Compile(sql)
	if err != nil {
		return nil, err
	}
	log, tg, err := s.newChainWorld()
	if err != nil {
		return nil, err
	}
	ev, err := core.NewEvaluator(mode, log, tg, plan, stepsPerSample, seed)
	if err != nil {
		return nil, err
	}
	return &Chain{Evaluator: ev, Tagger: tg, Log: log, Spec: spec}, nil
}

// newChainWorld clones the prototype world and binds a fresh tagger to
// it, applying the paper's batching parameters (five active documents,
// re-drawn every 2000 proposals) when the corpus is large enough.
func (s *NERSystem) newChainWorld() (*world.ChangeLog, *ie.Tagger, error) {
	db := s.protoDB.Clone()
	log := world.NewChangeLog(db)
	tg := ie.NewTagger(s.Model, s.Corpus, ie.LO)
	if len(s.Corpus.Docs) > 5 {
		tg.ActiveDocs = 5
		tg.StepsPerBatch = 2000
	}
	if err := tg.BindDB(log, s.rows); err != nil {
		return nil, nil, err
	}
	return log, tg, nil
}

// NewChainWorld clones the prototype world and returns it with a bound
// proposer, for callers that drive the Metropolis-Hastings walk themselves
// rather than through a core.Evaluator. The serve engine uses this to
// stock its chain pool (it satisfies serve.Source); the chain index is
// unused here because every clone starts from the same pristine world.
func (s *NERSystem) NewChainWorld(_ int) (*world.ChangeLog, mcmc.Proposer, error) {
	log, tg, err := s.newChainWorld()
	if err != nil {
		return nil, nil, err
	}
	return log, tg, nil
}

// NewChainTagger is NewChainWorld with the proposer returned as the
// concrete *ie.Tagger, for callers that need tagger-level controls —
// notably TargetDocs, the query-targeted proposal restriction the public
// facade exposes as an option.
func (s *NERSystem) NewChainTagger(_ int) (*world.ChangeLog, *ie.Tagger, error) {
	return s.newChainWorld()
}

// Exec applies one DML mutation to the prototype world, so every chain
// world cloned afterwards carries it. This is the local-mode write path:
// the serving engine never calls it (served writes fan out to the live
// chain clones instead). The caller serializes Exec against NewChainWorld.
//
// Deleted TOKEN rows simply stop mirroring the tagger's in-memory
// variables; inserted rows carry their LABEL as fixed evidence (no
// in-memory variable samples them).
func (s *NERSystem) Exec(mut ra.Mutation) (int64, error) {
	ops, err := s.ResolveExec(mut)
	if err != nil {
		return 0, err
	}
	return s.ApplyExecOps(ops)
}

// ResolveExec resolves a DML mutation against the prototype world into
// concrete row-level ops without applying them — the durable write path
// logs the resolved batch between resolution and application.
func (s *NERSystem) ResolveExec(mut ra.Mutation) ([]world.Op, error) {
	return world.ResolveMutation(s.protoDB, mut)
}

// ApplyExecOps applies a previously resolved op batch to the prototype
// world. The change log is throwaway: the prototype world has no views
// to maintain, and chains clone the store, not the delta.
func (s *NERSystem) ApplyExecOps(ops []world.Op) (int64, error) {
	return world.NewChangeLog(s.protoDB).ApplyOps(ops)
}

// WorldDB exposes the prototype world — the evidence a durable store
// snapshots. Callers must not mutate it; use Exec.
func (s *NERSystem) WorldDB() *relstore.DB { return s.protoDB }

// RestoreWorld replaces the prototype world with a recovered copy.
// Row identities line up because system construction is deterministic
// in its config (same corpus, same load order, same RowIDs), so the
// tagger bindings built from s.rows remain valid — exactly the property
// local-mode writes already rely on when cloning a mutated prototype.
func (s *NERSystem) RestoreWorld(db *relstore.DB) {
	s.protoDB = db
}

// GroundTruth estimates reference marginals with a long materialized run
// on a private chain (the paper's methodology, Section 5.2).
func (s *NERSystem) GroundTruth(sql string, samples, thin int, seed int64) (map[string]float64, error) {
	ch, err := s.NewChain(core.Materialized, sql, thin, seed)
	if err != nil {
		return nil, err
	}
	if err := ch.Evaluator.Run(samples, nil); err != nil {
		return nil, err
	}
	return ch.Evaluator.Marginals(), nil
}

// ---- Figure 4(a): scalability ----

// Fig4aRow is one point of the scalability plot: time for each evaluator
// to halve the squared error on Query 1 at a given database size.
type Fig4aRow struct {
	Tuples        int
	NaiveTime     time.Duration
	NaiveHalved   bool
	MaterTime     time.Duration
	MaterHalved   bool
	NaivePerSamp  time.Duration // mean wall time per query sample
	MaterPerSamp  time.Duration
	SamplesToHalf int64 // samples the materialized run needed
}

// Fig4aParams tunes the experiment.
type Fig4aParams struct {
	Sizes        []int
	Seed         int64
	Thin         int // MH steps between samples (paper: 10000)
	MaxSamples   int // per evaluator run
	TruthSamples int
	TruthThin    int
}

// DefaultFig4aParams returns laptop-scale defaults; cmd/experiments can
// raise them toward the paper's 10M-tuple sweep.
func DefaultFig4aParams() Fig4aParams {
	return Fig4aParams{
		Sizes:        []int{10_000, 30_000, 100_000, 300_000},
		Seed:         1,
		Thin:         2000,
		MaxSamples:   400,
		TruthSamples: 600,
		TruthThin:    2000,
	}
}

// Fig4a runs the scalability sweep.
func Fig4a(p Fig4aParams) ([]Fig4aRow, error) {
	var out []Fig4aRow
	for _, n := range p.Sizes {
		sys, err := BuildNER(Config{NumTokens: n, Seed: p.Seed, UseSkip: true})
		if err != nil {
			return nil, err
		}
		truth, err := sys.GroundTruth(Query1, p.TruthSamples, p.TruthThin, p.Seed+100)
		if err != nil {
			return nil, err
		}
		row := Fig4aRow{Tuples: n}
		for _, mode := range []core.Mode{core.Naive, core.Materialized} {
			ch, err := sys.NewChain(mode, Query1, p.Thin, p.Seed+200)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			tr, err := ch.Evaluator.RunTraced(p.MaxSamples, truth)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			half, ok := tr.TimeToHalve()
			per := elapsed / time.Duration(p.MaxSamples)
			if mode == core.Naive {
				row.NaiveTime, row.NaiveHalved, row.NaivePerSamp = half, ok, per
			} else {
				row.MaterTime, row.MaterHalved, row.MaterPerSamp = half, ok, per
				for i, pt := range tr.Points {
					if pt.Loss <= tr.Initial()/2 {
						row.SamplesToHalf = int64(i + 1)
						break
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// ---- Figure 4(b): loss versus time ----

// Fig4b returns normalized loss traces for both evaluators on Query 1
// over a database of n tuples.
func Fig4b(n, samples, thin int, seed int64) (naive, mater *metrics.Trace, err error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, nil, err
	}
	truth, err := sys.GroundTruth(Query1, 600, thin, seed+100)
	if err != nil {
		return nil, nil, err
	}
	run := func(mode core.Mode) (*metrics.Trace, error) {
		ch, err := sys.NewChain(mode, Query1, thin, seed+200)
		if err != nil {
			return nil, err
		}
		return ch.Evaluator.RunTraced(samples, truth)
	}
	if naive, err = run(core.Naive); err != nil {
		return nil, nil, err
	}
	if mater, err = run(core.Materialized); err != nil {
		return nil, nil, err
	}
	return naive, mater, nil
}

// ---- Figure 5: parallelization ----

// Fig5Row is one point of the parallelization plot.
type Fig5Row struct {
	Chains   int
	SqErr    float64
	IdealErr float64 // single-chain error divided by the chain count
}

// Fig5 follows the paper's Section 5.4 methodology: identical copies of
// the initial world, ground truth obtained by averaging eight parallel
// chains for many samples each, then 1..maxChains evaluators run for
// samplesPerChain samples (100 in the paper) and the merged estimate is
// scored. Because the proposal batches over a few documents at a time,
// a single short chain only ever explores a fraction of the documents;
// additional chains multiply both coverage and sample independence,
// which is what produces the paper's near-linear (sometimes super-
// linear) error reduction.
func Fig5(n, maxChains, samplesPerChain, thin int, seed int64) ([]Fig5Row, error) {
	// Many small documents (as in the NYT corpus, 1788 articles) so each
	// active-set batch touches a meaningful fraction of the data, and a
	// burn-in past the all-O transient so per-chain error is dominated by
	// sampling variance — the component that independent chains remove.
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true, TokensPerDoc: 60})
	if err != nil {
		return nil, err
	}
	burn := 20 * n
	truthEst, err := core.RunParallel(8, 1200, func(c int) (*core.Evaluator, error) {
		ch, err := sys.NewChain(core.Materialized, Query1, thin, seed+100+int64(c)*104729)
		if err != nil {
			return nil, err
		}
		ch.Evaluator.Burn(burn)
		return ch.Evaluator, nil
	})
	if err != nil {
		return nil, err
	}
	truth := truthEst.Marginals()

	var out []Fig5Row
	var base float64
	for chains := 1; chains <= maxChains; chains++ {
		est, err := core.RunParallel(chains, samplesPerChain, func(c int) (*core.Evaluator, error) {
			ch, err := sys.NewChain(core.Materialized, Query1, thin, seed+300+int64(chains*31+c)*7919)
			if err != nil {
				return nil, err
			}
			ch.Evaluator.Burn(burn)
			return ch.Evaluator, nil
		})
		if err != nil {
			return nil, err
		}
		loss := metrics.SquaredError(est.Marginals(), truth)
		if chains == 1 {
			base = loss
		}
		out = append(out, Fig5Row{Chains: chains, SqErr: loss, IdealErr: base / float64(chains)})
	}
	return out, nil
}

// ---- Figure 6: aggregate queries ----

// Fig6 returns loss traces for the two aggregate queries (Query 2 and
// Query 3) over a database of n tuples, both evaluated with the
// materialized evaluator.
func Fig6(n, samples, thin int, seed int64) (q2, q3 *metrics.Trace, err error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, nil, err
	}
	run := func(sql string) (*metrics.Trace, error) {
		truth, err := sys.GroundTruth(sql, 600, thin, seed+100)
		if err != nil {
			return nil, err
		}
		ch, err := sys.NewChain(core.Materialized, sql, thin, seed+200)
		if err != nil {
			return nil, err
		}
		return ch.Evaluator.RunTraced(samples, truth)
	}
	if q2, err = run(Query2); err != nil {
		return nil, nil, err
	}
	if q3, err = run(Query3); err != nil {
		return nil, nil, err
	}
	return q2, q3, nil
}

// ---- Figure 7: Query 2 answer histogram ----

// HistRow is one bar of the aggregate answer distribution.
type HistRow struct {
	Count int64
	P     float64
}

// Fig7 samples Query 2 and returns the distribution over person-mention
// counts (the appendix's peaked, approximately normal histogram).
func Fig7(n, samples, thin int, seed int64) ([]HistRow, error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, err
	}
	ch, err := sys.NewChain(core.Materialized, Query2, thin, seed+200)
	if err != nil {
		return nil, err
	}
	// Discard the all-O transient so the histogram reflects the
	// stationary answer distribution, as in the paper's appendix figure.
	ch.Evaluator.Burn(20 * n)
	if err := ch.Evaluator.Run(samples, nil); err != nil {
		return nil, err
	}
	var out []HistRow
	for _, tp := range ch.Evaluator.Results() {
		out = append(out, HistRow{Count: tp.Tuple[0].AsInt(), P: tp.P})
	}
	// Sort ascending by count value for a readable histogram.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Count < out[j-1].Count; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// ---- Figure 8: Query 4 tuple probabilities ----

// Fig8 samples Query 4 and returns the per-person marginals.
func Fig8(n, samples, thin int, seed int64) ([]core.TupleProb, error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, err
	}
	ch, err := sys.NewChain(core.Materialized, Query4, thin, seed+200)
	if err != nil {
		return nil, err
	}
	ch.Evaluator.Burn(20 * n)
	if err := ch.Evaluator.Run(samples, nil); err != nil {
		return nil, err
	}
	return ch.Evaluator.Results(), nil
}

// ---- Ablation: thinning interval k ----

// AblationKRow reports the effect of the thinning interval on the
// loss/time trade-off (the "choosing k is an open and interesting
// domain-specific problem" discussion of Section 4.1).
type AblationKRow struct {
	K     int
	AUC   float64
	Final float64
}

// AblationK sweeps the steps-per-sample parameter at fixed total step
// budget.
func AblationK(n int, ks []int, totalSteps int, seed int64) ([]AblationKRow, error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, err
	}
	truth, err := sys.GroundTruth(Query1, 600, 2000, seed+100)
	if err != nil {
		return nil, err
	}
	var out []AblationKRow
	for _, k := range ks {
		ch, err := sys.NewChain(core.Materialized, Query1, k, seed+200)
		if err != nil {
			return nil, err
		}
		tr, err := ch.Evaluator.RunTraced(totalSteps/k, truth)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationKRow{K: k, AUC: tr.AUC(), Final: tr.Final()})
	}
	return out, nil
}

// ---- Ablation: query-targeted proposal distribution ----

// TargetedRow compares convergence of the default proposer with one
// restricted to the documents Query 4 can read from (those containing a
// "Boston" token) — the query-specific jump functions the paper proposes
// as future work (Sections 4.1 and 6).
type TargetedRow struct {
	Targeted   bool
	TargetDocs int
	TotalDocs  int
	AUC        float64 // area under loss-vs-wall-time (timing dependent)
	StepAUC    float64 // area under loss-vs-walk-steps (deterministic)
	Final      float64
}

// AblationTargeted runs Query 4 with and without document targeting at a
// fixed sample budget.
func AblationTargeted(n, samples, thin int, seed int64) ([]TargetedRow, error) {
	sys, err := BuildNER(Config{NumTokens: n, Seed: seed, UseSkip: true})
	if err != nil {
		return nil, err
	}
	target := ie.DocsContaining(sys.Corpus, "Boston")
	if len(target) == 0 {
		return nil, fmt.Errorf("exp: corpus has no Boston documents at this seed")
	}
	// Ground truth from a long targeted run (targeting is exact for
	// Query 4: documents are independent components and the answer only
	// reads Boston documents).
	truthChain, err := sys.NewChain(core.Materialized, Query4, thin, seed+100)
	if err != nil {
		return nil, err
	}
	if err := truthChain.Tagger.TargetDocs(target); err != nil {
		return nil, err
	}
	if err := truthChain.Evaluator.Run(3000, nil); err != nil {
		return nil, err
	}
	truth := truthChain.Evaluator.Marginals()

	var out []TargetedRow
	for _, targeted := range []bool{false, true} {
		ch, err := sys.NewChain(core.Materialized, Query4, thin, seed+200)
		if err != nil {
			return nil, err
		}
		if targeted {
			if err := ch.Tagger.TargetDocs(target); err != nil {
				return nil, err
			}
		}
		tr, err := ch.Evaluator.RunTraced(samples, truth)
		if err != nil {
			return nil, err
		}
		out = append(out, TargetedRow{
			Targeted:   targeted,
			TargetDocs: len(target),
			TotalDocs:  len(sys.Corpus.Docs),
			AUC:        tr.AUC(),
			StepAUC:    tr.AUCSteps(),
			Final:      tr.Final(),
		})
	}
	return out, nil
}

// FormatDuration renders durations compactly for report tables.
func FormatDuration(d time.Duration, known bool) string {
	if !known {
		return "n/a"
	}
	return d.Round(time.Millisecond).String()
}

// Describe returns a one-line summary of a system.
func (s *NERSystem) Describe() string {
	return fmt.Sprintf("NER system: %d tokens, %d docs, %d vocab, skip=%v",
		s.Corpus.NumTokens, len(s.Corpus.Docs), s.Vocab.Size(), s.Model.UseSkip)
}
