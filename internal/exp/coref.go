package exp

import (
	"fmt"

	"factordb/internal/coref"
	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// PairQuery is the entity-resolution analogue of the paper's evaluation
// queries: for every pair of mentions, the probability that they refer to
// the same entity — the self-join on the hidden CLUSTER field of
// Figure 1's bottom row.
const PairQuery = `SELECT M1.MENTION_ID, M2.MENTION_ID FROM MENTION M1, MENTION M2
 WHERE M1.CLUSTER = M2.CLUSTER AND M1.MENTION_ID < M2.MENTION_ID`

// CorefConfig parameterizes the entity-resolution workload.
type CorefConfig struct {
	NumEntities       int
	MentionsPerEntity int
	Seed              int64
}

// CorefSystem is the entity-resolution probabilistic database: a fixed
// set of generated mentions plus the pairwise-cohesion model, from which
// independent chain worlds (MENTION relations with singleton clusterings)
// are stocked on demand. It satisfies the same chain-world contract as
// NERSystem, so the serving engine and the public facade treat the two
// workloads identically.
type CorefSystem struct {
	Mentions []coref.Mention
	Model    coref.PairScorer
	cfg      CorefConfig
}

// BuildCoref generates the mention set once; worlds are materialized per
// chain because the clustering state is mutable.
func BuildCoref(cfg CorefConfig) (*CorefSystem, error) {
	if cfg.NumEntities <= 0 {
		cfg.NumEntities = 6
	}
	if cfg.MentionsPerEntity <= 0 {
		cfg.MentionsPerEntity = 4
	}
	mentions, err := coref.Generate(coref.GenConfig{
		NumEntities:       cfg.NumEntities,
		MentionsPerEntity: cfg.MentionsPerEntity,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &CorefSystem{Mentions: mentions, Model: coref.DefaultModel(), cfg: cfg}, nil
}

// NewChainWorld materializes a fresh MENTION relation with singleton
// clusters and binds a move proposer to it. Every world is fully
// independent: proposer state, clustering and store share nothing.
func (s *CorefSystem) NewChainWorld(_ int) (*world.ChangeLog, mcmc.Proposer, error) {
	db := relstore.NewDB()
	rows, err := coref.LoadMentions(db, s.Mentions)
	if err != nil {
		return nil, nil, err
	}
	state := coref.NewSingletonState(s.Mentions)
	proposer := coref.NewMoveProposer(state, s.Model)
	log := world.NewChangeLog(db)
	if err := proposer.BindDB(log, rows); err != nil {
		return nil, nil, err
	}
	return log, proposer, nil
}

// Describe returns a one-line summary of the workload.
func (s *CorefSystem) Describe() string {
	return fmt.Sprintf("coref system: %d mentions of %d entities",
		len(s.Mentions), s.cfg.NumEntities)
}
