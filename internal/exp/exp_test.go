package exp

import (
	"testing"

	"factordb/internal/core"
)

// Small-scale smoke tests: the figures are regenerated at full scale by
// cmd/experiments; here we verify the harness wiring end to end.

func TestBuildAndChains(t *testing.T) {
	sys, err := BuildNER(Config{NumTokens: 3000, Seed: 5, UseSkip: true, TrainSteps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Describe() == "" {
		t.Error("Describe empty")
	}
	// Two chains over clones must not interfere.
	a, err := sys.NewChain(core.Materialized, Query1, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.NewChain(core.Naive, Query1, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Evaluator.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Evaluator.Run(20, nil); err != nil {
		t.Fatal(err)
	}
	// Same seed, same proposer layout → identical estimates.
	am, bm := a.Evaluator.Marginals(), b.Evaluator.Marginals()
	if len(am) == 0 {
		t.Fatal("no B-PER marginals; trained model seems degenerate")
	}
	if len(am) != len(bm) {
		t.Fatalf("marginal sets differ: %d vs %d", len(am), len(bm))
	}
	for k, v := range am {
		if bm[k] != v {
			t.Fatalf("chains with same seed disagree on %q: %v vs %v", k, v, bm[k])
		}
	}
}

func TestFig4aSmoke(t *testing.T) {
	rows, err := Fig4a(Fig4aParams{
		Sizes: []int{2000}, Seed: 3, Thin: 300, MaxSamples: 120,
		TruthSamples: 200, TruthThin: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuples != 2000 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].NaivePerSamp <= 0 || rows[0].MaterPerSamp <= 0 {
		t.Error("per-sample times missing")
	}
}

func TestFig4bSmoke(t *testing.T) {
	naive, mater, err := Fig4b(2000, 80, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Points) != 80 || len(mater.Points) != 80 {
		t.Fatalf("trace lengths %d/%d", len(naive.Points), len(mater.Points))
	}
}

func TestFig5Smoke(t *testing.T) {
	rows, err := Fig5(2000, 3, 60, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Chains != 1 || rows[2].Chains != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[2].SqErr >= rows[0].SqErr {
		t.Errorf("3 chains should beat 1: %v vs %v", rows[2].SqErr, rows[0].SqErr)
	}
}

func TestFig6Smoke(t *testing.T) {
	q2, q3, err := Fig6(2000, 60, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Final() > q2.Initial() {
		t.Errorf("Query 2 loss grew: %v -> %v", q2.Initial(), q2.Final())
	}
	if len(q3.Points) != 60 {
		t.Errorf("Query 3 trace has %d points", len(q3.Points))
	}
}

func TestFig7Smoke(t *testing.T) {
	rows, err := Fig7(2000, 100, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty histogram")
	}
	var mass float64
	prev := int64(-1)
	for _, r := range rows {
		mass += r.P
		if r.Count < prev {
			t.Error("histogram not sorted by count")
		}
		prev = r.Count
	}
	// Every sample lands on exactly one count, so probabilities sum to 1.
	if mass < 0.999 || mass > 1.001 {
		t.Errorf("histogram mass = %v", mass)
	}
}

func TestFig8Smoke(t *testing.T) {
	// Needs Boston labeled B-ORG co-occurring with persons; at small
	// scales the answer may be sparse but the machinery must run.
	rows, err := Fig8(4000, 80, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rows {
		if tp.P < 0 || tp.P > 1 {
			t.Errorf("probability out of range: %v", tp.P)
		}
	}
}

func TestAblationTargetedSmoke(t *testing.T) {
	rows, err := AblationTargeted(6000, 60, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Targeted || !rows[1].Targeted {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[1].TargetDocs <= 0 || rows[1].TargetDocs > rows[1].TotalDocs {
		t.Errorf("target docs %d of %d", rows[1].TargetDocs, rows[1].TotalDocs)
	}
	// Targeting a selective query should not converge much slower. Compare
	// the step-based AUC — wall-time AUC is scheduler noise — and allow a
	// wide margin: at this corpus size per-seed MCMC variance swamps the
	// targeting effect (seeds differ on which proposer wins), so this is a
	// deterministic sanity bound, not a performance assertion.
	if rows[1].StepAUC > rows[0].StepAUC*2 {
		t.Errorf("targeted step-AUC %.3f much worse than uniform %.3f", rows[1].StepAUC, rows[0].StepAUC)
	}
}

func TestAblationKSmoke(t *testing.T) {
	rows, err := AblationK(2000, []int{100, 400}, 20000, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].K != 100 {
		t.Fatalf("rows = %+v", rows)
	}
}
