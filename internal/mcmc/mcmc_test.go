package mcmc

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/factor"
)

// loopyGraph builds a small non-tree graph (a cycle plus chords), the kind
// of structure where belief propagation fails but MCMC still applies.
func loopyGraph(n int, seed int64) *factor.Graph {
	rng := rand.New(rand.NewSource(seed))
	dom := factor.NewDomain("bit", "0", "1")
	g := factor.NewGraph()
	vars := make([]*factor.Var, n)
	for i := range vars {
		vars[i] = g.AddVar("y", dom)
		w := 0.8 * rng.NormFloat64()
		g.MustAddFactor("bias", func(vals []int) float64 {
			if vals[0] == 1 {
				return w
			}
			return 0
		}, vars[i])
	}
	pair := func(a, b int) {
		w := 0.6 * rng.NormFloat64()
		g.MustAddFactor("pair", func(vals []int) float64 {
			if vals[0] == vals[1] {
				return w
			}
			return -w
		}, vars[a], vars[b])
	}
	for i := 0; i < n; i++ {
		pair(i, (i+1)%n) // cycle
	}
	pair(0, n/2) // chord: breaks tree structure like the skip edges
	return g
}

func maxMarginalError(got, want [][]float64) float64 {
	worst := 0.0
	for i := range want {
		for j := range want[i] {
			if d := math.Abs(got[i][j] - want[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestMHConvergesToExactMarginals is the core correctness test: the
// empirical distribution of the MH walk must converge to the exact
// marginals obtained by enumeration.
func TestMHConvergesToExactMarginals(t *testing.T) {
	g := loopyGraph(6, 11)
	exact, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(&GraphProposer{G: g}, 17)
	counter := NewMarginalCounter(g)
	// Burn-in, then sample with thinning.
	s.Run(2000)
	for i := 0; i < 60000; i++ {
		s.Run(5)
		counter.Observe()
	}
	if got := maxMarginalError(counter.Marginals(), exact); got > 0.02 {
		t.Errorf("max marginal error = %.4f, want <= 0.02", got)
	}
}

func TestMHRespectsHardConstraints(t *testing.T) {
	// Two variables with a -Inf factor on disagreement: the walk must
	// never record a disagreeing state after leaving one.
	dom := factor.NewDomain("bit", "0", "1")
	g := factor.NewGraph()
	a := g.AddVar("a", dom)
	b := g.AddVar("b", dom)
	g.MustAddFactor("eq", func(vals []int) float64 {
		if vals[0] == vals[1] {
			return 0
		}
		return math.Inf(-1)
	}, a, b)
	s := NewSampler(&GraphProposer{G: g}, 5)
	// Start in an agreeing state.
	a.Val, b.Val = 0, 0
	for i := 0; i < 5000; i++ {
		s.Step()
		if a.Val != b.Val {
			t.Fatal("MH accepted a constraint-violating world")
		}
	}
}

func TestSamplerStats(t *testing.T) {
	g := loopyGraph(4, 3)
	s := NewSampler(&GraphProposer{G: g}, 7)
	if s.AcceptanceRate() != 0 {
		t.Error("acceptance rate before any steps should be 0")
	}
	s.Run(1000)
	if s.Steps() != 1000 {
		t.Errorf("Steps = %d", s.Steps())
	}
	if s.Accepted() == 0 || s.Accepted() > 1000 {
		t.Errorf("Accepted = %d out of 1000", s.Accepted())
	}
	rate := s.AcceptanceRate()
	if rate <= 0 || rate > 1 {
		t.Errorf("AcceptanceRate = %v", rate)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		g := loopyGraph(5, 21)
		s := NewSampler(&GraphProposer{G: g}, 99)
		s.Run(3000)
		return g.Assignment()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different walks")
		}
	}
}

// asymmetricProposer always proposes value 1 for a fixed variable with an
// intentionally biased q; the LogQRatio correction must remove the bias.
type biasedProposer struct {
	g *factor.Graph
	v *factor.Var
}

func (p *biasedProposer) Propose(rng *rand.Rand) Proposal {
	// Propose 1 with prob 0.9, 0 with prob 0.1.
	var newVal int
	if rng.Float64() < 0.9 {
		newVal = 1
	}
	qForward := 0.1
	if newVal == 1 {
		qForward = 0.9
	}
	qBackward := 0.1
	if p.v.Val == 1 {
		qBackward = 0.9
	}
	v := p.v
	return Proposal{
		LogScoreDelta: p.g.ScoreDelta(v, newVal),
		LogQRatio:     math.Log(qBackward) - math.Log(qForward),
		Accept:        func() { v.Val = newVal },
	}
}

func TestLogQRatioCorrection(t *testing.T) {
	// A single unbiased binary variable sampled with a biased proposer:
	// the stationary distribution must still be uniform thanks to the
	// Hastings correction.
	dom := factor.NewDomain("bit", "0", "1")
	g := factor.NewGraph()
	v := g.AddVar("v", dom)
	g.MustAddFactor("flat", func([]int) float64 { return 0 }, v)
	s := NewSampler(&biasedProposer{g: g, v: v}, 31)
	counter := NewMarginalCounter(g)
	s.Run(500)
	for i := 0; i < 200000; i++ {
		s.Step()
		counter.Observe()
	}
	m := counter.Marginals()
	if math.Abs(m[0][1]-0.5) > 0.01 {
		t.Errorf("P(1) = %.4f, want 0.5 (Hastings correction failed)", m[0][1])
	}
}

func TestNilAcceptIsSafe(t *testing.T) {
	p := proposerFunc(func(*rand.Rand) Proposal {
		return Proposal{LogScoreDelta: 1} // always accepted, no Accept fn
	})
	s := NewSampler(p, 1)
	s.Run(10)
	if s.Accepted() != 10 {
		t.Errorf("Accepted = %d, want 10", s.Accepted())
	}
}

type proposerFunc func(*rand.Rand) Proposal

func (f proposerFunc) Propose(rng *rand.Rand) Proposal { return f(rng) }
