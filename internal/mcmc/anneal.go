package mcmc

import "math/rand"

// Annealer wraps a Proposer so the walk targets π(w)^β with an inverse
// temperature β that rises geometrically over time: at β = 1 this is
// ordinary posterior sampling, and as β grows the chain concentrates on
// modes, yielding approximate MAP states (maximum a-posteriori possible
// worlds). The proposal-bias correction is left unscaled, as in standard
// simulated annealing on a Metropolis-Hastings kernel.
type Annealer struct {
	Inner Proposer
	// Beta is the current inverse temperature; starts at Beta0.
	Beta float64
	// Growth multiplies Beta after every proposal (e.g. 1.0001).
	Growth float64
	// BetaMax caps the schedule.
	BetaMax float64
}

// NewAnnealer builds a geometric annealing schedule over p.
func NewAnnealer(p Proposer, beta0, growth, betaMax float64) *Annealer {
	if beta0 <= 0 {
		beta0 = 1
	}
	if growth < 1 {
		growth = 1
	}
	if betaMax < beta0 {
		betaMax = beta0
	}
	return &Annealer{Inner: p, Beta: beta0, Growth: growth, BetaMax: betaMax}
}

// Propose implements Proposer.
func (a *Annealer) Propose(rng *rand.Rand) Proposal {
	p := a.Inner.Propose(rng)
	p.LogScoreDelta *= a.Beta
	if a.Beta < a.BetaMax {
		a.Beta *= a.Growth
		if a.Beta > a.BetaMax {
			a.Beta = a.BetaMax
		}
	}
	return p
}
