package mcmc

import (
	"math/rand"

	"factordb/internal/factor"
)

// GraphProposer is the canonical single-variable random-walk proposal over
// an explicit factor graph: pick a hidden variable uniformly at random,
// then pick a new value for it uniformly from its domain. This mirrors the
// paper's NER proposal distribution (Section 5.1) and is symmetric, so the
// proposal ratio q(w|w')/q(w'|w) is 1.
type GraphProposer struct {
	G *factor.Graph
}

// Propose implements Proposer.
func (p *GraphProposer) Propose(rng *rand.Rand) Proposal {
	v := p.G.Vars[rng.Intn(len(p.G.Vars))]
	newVal := rng.Intn(v.Dom.Size())
	return Proposal{
		LogScoreDelta: p.G.ScoreDelta(v, newVal),
		Accept:        func() { v.Val = newVal },
	}
}

// MarginalCounter accumulates empirical marginals over an explicit graph,
// used in tests to compare the sampler against exact enumeration.
type MarginalCounter struct {
	g      *factor.Graph
	counts [][]float64
	n      float64
}

// NewMarginalCounter prepares counters for all variables of g.
func NewMarginalCounter(g *factor.Graph) *MarginalCounter {
	c := &MarginalCounter{g: g, counts: make([][]float64, len(g.Vars))}
	for i, v := range g.Vars {
		c.counts[i] = make([]float64, v.Dom.Size())
	}
	return c
}

// Observe records the graph's current assignment as one sample.
func (c *MarginalCounter) Observe() {
	for i, v := range c.g.Vars {
		c.counts[i][v.Val]++
	}
	c.n++
}

// Marginals returns the empirical marginal distributions.
func (c *MarginalCounter) Marginals() [][]float64 {
	out := make([][]float64, len(c.counts))
	for i, row := range c.counts {
		out[i] = make([]float64, len(row))
		for j, x := range row {
			if c.n > 0 {
				out[i][j] = x / c.n
			}
		}
	}
	return out
}
