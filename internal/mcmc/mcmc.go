// Package mcmc implements the Metropolis-Hastings random walk over
// possible worlds (Section 3.4 and Algorithm 2 of the paper). The sampler
// is agnostic to what a "world" is: proposers compute the log model-score
// delta of a hypothesized modification (touching only the factors whose
// arguments change) and commit it on acceptance. The normalization
// constant Z cancels in the acceptance ratio, which is what makes
// sampling tractable for models where computing Z is #P-hard.
package mcmc

import (
	"fmt"
	"math"
	"math/rand"
)

// Proposal is a hypothesized modification to the current world.
type Proposal struct {
	// LogScoreDelta is log π(w') − log π(w), computed from the factors
	// adjacent to the changed variables only.
	LogScoreDelta float64
	// LogQRatio is log q(w|w') − log q(w'|w), the proposal-bias
	// correction. Zero for symmetric proposal distributions.
	LogQRatio float64
	// Accept commits the modification to the world. It is invoked at most
	// once, and only when the proposal is accepted.
	Accept func()
}

// Proposer draws proposals from the proposal distribution q(·|w)
// conditioned on the current world. Implementations must be
// constraint-preserving: they only propose worlds with π(w') > 0
// (Section 3.4's split-merge discussion).
type Proposer interface {
	Propose(rng *rand.Rand) Proposal
}

// Sampler runs the Metropolis-Hastings walk.
type Sampler struct {
	proposer Proposer
	rng      *rand.Rand

	steps    int64
	accepted int64
}

// NewSampler creates a sampler with a deterministic seed.
func NewSampler(p Proposer, seed int64) *Sampler {
	return &Sampler{proposer: p, rng: rand.New(rand.NewSource(seed))}
}

// RNG exposes the sampler's random source so that callers composing extra
// randomness (for example proposal batching) stay reproducible.
func (s *Sampler) RNG() *rand.Rand { return s.rng }

// Step performs one MH step and reports whether the proposal was accepted.
func (s *Sampler) Step() bool {
	p := s.proposer.Propose(s.rng)
	s.steps++
	// α = min(1, π(w')q(w|w') / π(w)q(w'|w)); computed in log space.
	logAlpha := p.LogScoreDelta + p.LogQRatio
	if logAlpha >= 0 || s.rng.Float64() < math.Exp(logAlpha) {
		if p.Accept != nil {
			p.Accept()
		}
		s.accepted++
		return true
	}
	return false
}

// Run performs n MH steps (Algorithm 2's random walk).
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Steps returns the number of proposals considered.
func (s *Sampler) Steps() int64 { return s.steps }

// Accepted returns the number of accepted proposals.
func (s *Sampler) Accepted() int64 { return s.accepted }

// AcceptanceRate returns the fraction of proposals accepted so far.
func (s *Sampler) AcceptanceRate() float64 {
	if s.steps == 0 {
		return 0
	}
	return float64(s.accepted) / float64(s.steps)
}

// String summarizes the sampler state.
func (s *Sampler) String() string {
	return fmt.Sprintf("mcmc.Sampler{steps: %d, accepted: %d (%.1f%%)}",
		s.steps, s.accepted, 100*s.AcceptanceRate())
}
