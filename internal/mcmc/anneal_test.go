package mcmc

import (
	"math"
	"testing"

	"factordb/internal/factor"
)

// exhaustiveMAP finds the best assignment of a small graph by brute force.
func exhaustiveMAP(g *factor.Graph) (best []int, bestScore float64) {
	saved := g.Assignment()
	defer g.SetAssignment(saved)
	bestScore = math.Inf(-1)
	assign := make([]int, len(g.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(g.Vars) {
			g.SetAssignment(assign)
			if s := g.LogScore(); s > bestScore {
				bestScore = s
				best = append([]int{}, assign...)
			}
			return
		}
		for v := 0; v < g.Vars[i].Dom.Size(); v++ {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestScore
}

func TestAnnealingFindsMAP(t *testing.T) {
	g := loopyGraph(8, 41)
	_, want := exhaustiveMAP(g)
	ann := NewAnnealer(&GraphProposer{G: g}, 0.2, 1.0002, 60)
	s := NewSampler(ann, 17)
	// Standard simulated-annealing practice: keep the best state seen.
	got := math.Inf(-1)
	for i := 0; i < 80000; i++ {
		s.Step()
		if sc := g.LogScore(); sc > got {
			got = sc
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("annealed best score = %v, exhaustive MAP = %v", got, want)
	}
	if ann.Beta != 60 {
		t.Errorf("schedule should have capped at BetaMax, got %v", ann.Beta)
	}
}

func TestAnnealerDefaults(t *testing.T) {
	a := NewAnnealer(nil, 0, 0.5, -1)
	if a.Beta != 1 || a.Growth != 1 || a.BetaMax != 1 {
		t.Errorf("defaults = %v/%v/%v", a.Beta, a.Growth, a.BetaMax)
	}
}

func TestAnnealerAtBetaOneIsPlainMH(t *testing.T) {
	// With growth 1 and beta 1 the annealer must not change marginals.
	g := loopyGraph(5, 43)
	exact, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	ann := NewAnnealer(&GraphProposer{G: g}, 1, 1, 1)
	s := NewSampler(ann, 29)
	counter := NewMarginalCounter(g)
	s.Run(2000)
	for i := 0; i < 60000; i++ {
		s.Run(5)
		counter.Observe()
	}
	if got := maxMarginalError(counter.Marginals(), exact); got > 0.02 {
		t.Errorf("beta=1 annealer diverges from exact marginals by %.4f", got)
	}
}
