// Package learn implements SampleRank (Wick et al., 2009), the training
// method the paper uses to estimate factor-graph parameters "in a matter
// of minutes" (Section 5.2). SampleRank performs perceptron-style updates
// on pairs of consecutive MCMC states whenever the model's ranking of the
// pair disagrees with a ground-truth objective, learning weights as a
// byproduct of the same Metropolis-Hastings walk used for inference.
package learn

import (
	"math"
	"math/rand"
)

// FeatureVector is a sparse map from feature keys to values. Feature keys
// are opaque 64-bit identifiers chosen by the model (package ie packs
// template and argument indexes into them).
type FeatureVector map[uint64]float64

// Add accumulates v onto feature k.
func (f FeatureVector) Add(k uint64, v float64) {
	if nv := f[k] + v; nv == 0 {
		delete(f, k)
	} else {
		f[k] = nv
	}
}

// AddAll accumulates scale×o into f.
func (f FeatureVector) AddAll(o FeatureVector, scale float64) {
	for k, v := range o {
		f.Add(k, scale*v)
	}
}

// Weights is a sparse parameter vector θ.
type Weights struct {
	W map[uint64]float64
}

// NewWeights returns an all-zero weight vector.
func NewWeights() *Weights { return &Weights{W: make(map[uint64]float64)} }

// Get returns θ_k (zero when unset).
func (w *Weights) Get(k uint64) float64 { return w.W[k] }

// Set assigns θ_k.
func (w *Weights) Set(k uint64, v float64) { w.W[k] = v }

// Dot returns θ·f.
func (w *Weights) Dot(f FeatureVector) float64 {
	var s float64
	for k, v := range f {
		s += v * w.W[k]
	}
	return s
}

// Update performs θ += scale×f.
func (w *Weights) Update(f FeatureVector, scale float64) {
	for k, v := range f {
		w.W[k] += scale * v
	}
}

// Clone returns an independent copy of the weights.
func (w *Weights) Clone() *Weights {
	c := NewWeights()
	for k, v := range w.W {
		c.W[k] = v
	}
	return c
}

// Proposal is one hypothesized world modification exposed for training:
// beyond the MCMC quantities it carries the sparse feature delta
// φ(w')−φ(w) and the change in the ground-truth objective (for NER,
// per-token accuracy against gold labels).
type Proposal struct {
	FeatureDelta   FeatureVector
	ObjectiveDelta float64
	Accept         func()
}

// Proposer draws training proposals.
type Proposer interface {
	ProposeRank(rng *rand.Rand) Proposal
}

// WalkStrategy selects how the training walk moves between states.
type WalkStrategy uint8

// Walk strategies. WalkByModel follows the usual MH acceptance under the
// evolving model; WalkByObjective greedily follows the ground-truth
// objective (faster convergence, used for the short training runs of the
// paper).
const (
	WalkByModel WalkStrategy = iota
	WalkByObjective
)

// SampleRank trains weights along an MCMC walk.
type SampleRank struct {
	Weights *Weights
	Rate    float64
	Walk    WalkStrategy

	proposer Proposer
	rng      *rand.Rand
	steps    int
	updates  int
}

// NewSampleRank builds a trainer with learning rate rate.
func NewSampleRank(w *Weights, p Proposer, rate float64, seed int64) *SampleRank {
	return &SampleRank{Weights: w, Rate: rate, proposer: p, rng: rand.New(rand.NewSource(seed))}
}

// Step considers one proposal: if the model ranks the pair of worlds
// differently from the objective, the weights receive a perceptron update
// toward the objectively better world. Returns whether an update occurred.
func (sr *SampleRank) Step() bool {
	p := sr.proposer.ProposeRank(sr.rng)
	sr.steps++
	m := sr.Weights.Dot(p.FeatureDelta) // model preference for w'
	o := p.ObjectiveDelta
	updated := false
	switch {
	case o > 0 && m <= 0:
		sr.Weights.Update(p.FeatureDelta, sr.Rate)
		updated = true
	case o < 0 && m >= 0:
		sr.Weights.Update(p.FeatureDelta, -sr.Rate)
		updated = true
	}
	if updated {
		sr.updates++
	}

	accept := false
	switch sr.Walk {
	case WalkByObjective:
		accept = o > 0 || (o == 0 && sr.rng.Float64() < 0.5)
	default:
		accept = m >= 0 || sr.rng.Float64() < math.Exp(m)
	}
	if accept && p.Accept != nil {
		p.Accept()
	}
	return updated
}

// Train runs n steps.
func (sr *SampleRank) Train(n int) {
	for i := 0; i < n; i++ {
		sr.Step()
	}
}

// Steps returns the number of proposals consumed.
func (sr *SampleRank) Steps() int { return sr.steps }

// Updates returns the number of weight updates performed.
func (sr *SampleRank) Updates() int { return sr.updates }
