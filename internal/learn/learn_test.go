package learn

import (
	"math/rand"
	"testing"
)

func TestFeatureVector(t *testing.T) {
	f := FeatureVector{}
	f.Add(1, 2)
	f.Add(1, 3)
	if f[1] != 5 {
		t.Errorf("f[1] = %v", f[1])
	}
	f.Add(1, -5)
	if _, ok := f[1]; ok {
		t.Error("zeroed feature should be removed")
	}
	g := FeatureVector{2: 1, 3: -1}
	f.AddAll(g, 2)
	if f[2] != 2 || f[3] != -2 {
		t.Errorf("AddAll result = %v", f)
	}
}

func TestWeightsDotUpdate(t *testing.T) {
	w := NewWeights()
	w.Set(1, 2)
	w.Set(2, -1)
	f := FeatureVector{1: 3, 2: 1, 99: 10}
	if got := w.Dot(f); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	w.Update(f, 0.5)
	if w.Get(1) != 3.5 || w.Get(99) != 5 {
		t.Errorf("Update result: w1=%v w99=%v", w.Get(1), w.Get(99))
	}
	c := w.Clone()
	c.Set(1, 0)
	if w.Get(1) != 3.5 {
		t.Error("Clone must be independent")
	}
}

// toyInstance is a two-token sequence-labeling problem: token 0 should be
// labeled 0 and token 1 should be labeled 1. Features are (token, label)
// indicators packed into uint64 keys.
type toyInstance struct {
	labels [2]int
	gold   [2]int
}

func key(tok, lbl int) uint64 { return uint64(tok)<<8 | uint64(lbl) }

func (ti *toyInstance) accuracy() float64 {
	n := 0.0
	for i := range ti.labels {
		if ti.labels[i] == ti.gold[i] {
			n++
		}
	}
	return n
}

func (ti *toyInstance) ProposeRank(rng *rand.Rand) Proposal {
	tok := rng.Intn(2)
	newLbl := rng.Intn(2)
	old := ti.labels[tok]
	fd := FeatureVector{}
	fd.Add(key(tok, newLbl), 1)
	fd.Add(key(tok, old), -1)
	objBefore := ti.accuracy()
	ti.labels[tok] = newLbl
	objAfter := ti.accuracy()
	ti.labels[tok] = old
	return Proposal{
		FeatureDelta:   fd,
		ObjectiveDelta: objAfter - objBefore,
		Accept:         func() { ti.labels[tok] = newLbl },
	}
}

func TestSampleRankLearnsToy(t *testing.T) {
	ti := &toyInstance{gold: [2]int{0, 1}}
	w := NewWeights()
	sr := NewSampleRank(w, ti, 1.0, 42)
	sr.Train(500)
	// The learned weights must prefer the gold label for each token.
	if w.Get(key(0, 0)) <= w.Get(key(0, 1)) {
		t.Errorf("token 0: w(gold)=%v w(other)=%v", w.Get(key(0, 0)), w.Get(key(0, 1)))
	}
	if w.Get(key(1, 1)) <= w.Get(key(1, 0)) {
		t.Errorf("token 1: w(gold)=%v w(other)=%v", w.Get(key(1, 1)), w.Get(key(1, 0)))
	}
	if sr.Updates() == 0 || sr.Steps() != 500 {
		t.Errorf("Updates=%d Steps=%d", sr.Updates(), sr.Steps())
	}
}

func TestSampleRankObjectiveWalk(t *testing.T) {
	ti := &toyInstance{gold: [2]int{0, 1}, labels: [2]int{1, 0}}
	w := NewWeights()
	sr := NewSampleRank(w, ti, 1.0, 7)
	sr.Walk = WalkByObjective
	sr.Train(300)
	// With a greedy objective walk the state itself must reach gold.
	if ti.labels != ti.gold {
		t.Errorf("labels = %v, want %v", ti.labels, ti.gold)
	}
}

func TestSampleRankNoUpdateWhenModelAgrees(t *testing.T) {
	// Pre-set perfect weights: model already ranks correctly, so no
	// updates should occur on decisive proposals.
	ti := &toyInstance{gold: [2]int{0, 1}}
	w := NewWeights()
	w.Set(key(0, 0), 10)
	w.Set(key(1, 1), 10)
	w.Set(key(0, 1), -10)
	w.Set(key(1, 0), -10)
	sr := NewSampleRank(w, ti, 1.0, 9)
	sr.Train(300)
	if sr.Updates() != 0 {
		t.Errorf("Updates = %d with perfect weights, want 0", sr.Updates())
	}
}
