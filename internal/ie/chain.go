package ie

import (
	"fmt"
	"math"
)

// Exact inference for the *linear-chain* special case (UseSkip == false).
// The paper's point is that skip edges make exact inference intractable;
// for the plain chain, dynamic programming is exact and serves both as a
// correctness oracle for the MCMC sampler and as the classical baseline
// (Lafferty et al.'s linear-chain CRF) that skip chains outperform.

// nodeScore sums the factors private to position i under label l:
// emission, capitalization and bias (everything in localScore except the
// transitions and skip edges).
func (m *Model) nodeScore(ld *LabeledDoc, i int, l Label) float64 {
	return m.W.Get(EmissionKey(ld.strIDs[i], l)) +
		m.W.Get(CapsKey(ld.caps[i], l)) +
		m.W.Get(BiasKey(l))
}

// ChainMarginals computes the exact per-token label marginals of the
// linear-chain model by forward-backward. It refuses to run on a
// skip-chain model, where the result would be wrong.
func (m *Model) ChainMarginals(ld *LabeledDoc) ([][NumLabels]float64, error) {
	if m.UseSkip {
		return nil, fmt.Errorf("ie: ChainMarginals requires a linear-chain model (UseSkip=false)")
	}
	n := len(ld.Labels)
	if n == 0 {
		return nil, nil
	}
	alpha := make([][NumLabels]float64, n)
	beta := make([][NumLabels]float64, n)

	for l := Label(0); l < NumLabels; l++ {
		alpha[0][l] = m.nodeScore(ld, 0, l)
		beta[n-1][l] = 0
	}
	var terms [NumLabels]float64
	for i := 1; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			for p := Label(0); p < NumLabels; p++ {
				terms[p] = alpha[i-1][p] + m.W.Get(TransKey(p, l))
			}
			alpha[i][l] = m.nodeScore(ld, i, l) + logSumExp(terms[:])
		}
	}
	for i := n - 2; i >= 0; i-- {
		for l := Label(0); l < NumLabels; l++ {
			for nx := Label(0); nx < NumLabels; nx++ {
				terms[nx] = m.W.Get(TransKey(l, nx)) + m.nodeScore(ld, i+1, nx) + beta[i+1][nx]
			}
			beta[i][l] = logSumExp(terms[:])
		}
	}
	out := make([][NumLabels]float64, n)
	for i := 0; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			terms[l] = alpha[i][l] + beta[i][l]
		}
		logZ := logSumExp(terms[:])
		for l := Label(0); l < NumLabels; l++ {
			out[i][l] = math.Exp(terms[l] - logZ)
		}
	}
	return out, nil
}

// ChainLogZ returns the exact log partition function of the linear-chain
// model for one document.
func (m *Model) ChainLogZ(ld *LabeledDoc) (float64, error) {
	if m.UseSkip {
		return 0, fmt.Errorf("ie: ChainLogZ requires a linear-chain model (UseSkip=false)")
	}
	n := len(ld.Labels)
	if n == 0 {
		return 0, nil
	}
	var prev, cur [NumLabels]float64
	for l := Label(0); l < NumLabels; l++ {
		prev[l] = m.nodeScore(ld, 0, l)
	}
	var terms [NumLabels]float64
	for i := 1; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			for p := Label(0); p < NumLabels; p++ {
				terms[p] = prev[p] + m.W.Get(TransKey(p, l))
			}
			cur[l] = m.nodeScore(ld, i, l) + logSumExp(terms[:])
		}
		prev = cur
	}
	return logSumExp(prev[:]), nil
}

// ViterbiDecode returns the exact MAP label sequence of the linear-chain
// model for one document, with its unnormalized log score.
func (m *Model) ViterbiDecode(ld *LabeledDoc) ([]Label, float64, error) {
	if m.UseSkip {
		return nil, 0, fmt.Errorf("ie: ViterbiDecode requires a linear-chain model (UseSkip=false)")
	}
	n := len(ld.Labels)
	if n == 0 {
		return nil, 0, nil
	}
	delta := make([][NumLabels]float64, n)
	back := make([][NumLabels]Label, n)
	for l := Label(0); l < NumLabels; l++ {
		delta[0][l] = m.nodeScore(ld, 0, l)
	}
	for i := 1; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			best := math.Inf(-1)
			var argBest Label
			for p := Label(0); p < NumLabels; p++ {
				s := delta[i-1][p] + m.W.Get(TransKey(p, l))
				if s > best {
					best, argBest = s, p
				}
			}
			delta[i][l] = best + m.nodeScore(ld, i, l)
			back[i][l] = argBest
		}
	}
	bestFinal := math.Inf(-1)
	var lab Label
	for l := Label(0); l < NumLabels; l++ {
		if delta[n-1][l] > bestFinal {
			bestFinal, lab = delta[n-1][l], l
		}
	}
	seq := make([]Label, n)
	seq[n-1] = lab
	for i := n - 1; i > 0; i-- {
		lab = back[i][lab]
		seq[i-1] = lab
	}
	return seq, bestFinal, nil
}

// logSumExp returns log Σ exp(x) stably.
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
