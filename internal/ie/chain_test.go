package ie

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/factor"
	"factordb/internal/mcmc"
)

// tinyChainSetup builds a short doc and a linear-chain model with random
// weights on every feature that can fire.
func tinyChainSetup(t *testing.T, words []string, seed int64) (*Model, *LabeledDoc) {
	t.Helper()
	doc := &Doc{ID: 0}
	for _, w := range words {
		doc.Tokens = append(doc.Tokens, Token{Str: w})
	}
	v := NewVocab()
	m := NewModel(v, false)
	ld := NewLabeledDoc(doc, v, LO)
	rng := rand.New(rand.NewSource(seed))
	for i := range words {
		for l := Label(0); l < NumLabels; l++ {
			m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
		}
	}
	for a := Label(0); a < NumLabels; a++ {
		m.W.Set(BiasKey(a), 0.3*rng.NormFloat64())
		m.W.Set(CapsKey(true, a), 0.3*rng.NormFloat64())
		m.W.Set(CapsKey(false, a), 0.3*rng.NormFloat64())
		for b := Label(0); b < NumLabels; b++ {
			m.W.Set(TransKey(a, b), 0.5*rng.NormFloat64())
		}
	}
	return m, ld
}

// graphFor mirrors the chain model as an explicit factor graph so the
// enumeration oracle applies.
func graphFor(m *Model, ld *LabeledDoc) *factor.Graph {
	g := factor.NewGraph()
	dom := factor.NewDomain("label", LabelNames[:]...)
	vars := make([]*factor.Var, len(ld.Labels))
	for i := range vars {
		i := i
		vars[i] = g.AddVar("y", dom)
		g.MustAddFactor("node", func(vals []int) float64 {
			return m.nodeScore(ld, i, Label(vals[0]))
		}, vars[i])
	}
	for i := 1; i < len(vars); i++ {
		g.MustAddFactor("trans", func(vals []int) float64 {
			return m.W.Get(TransKey(Label(vals[0]), Label(vals[1])))
		}, vars[i-1], vars[i])
	}
	return g
}

func TestChainMarginalsMatchEnumeration(t *testing.T) {
	// 9^4 = 6561 states: enumerable.
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton", "won"}, 3)
	got, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := graphFor(m, ld).ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for l := 0; l < NumLabels; l++ {
			if math.Abs(got[i][l]-exact[i][l]) > 1e-9 {
				t.Fatalf("pos %d label %d: forward-backward %v, enumeration %v", i, l, got[i][l], exact[i][l])
			}
		}
	}
}

func TestChainMarginalsSumToOne(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"a", "b", "c", "d", "e", "f"}, 7)
	got, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	for i, dist := range got {
		var s float64
		for _, p := range dist {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("pos %d marginals sum to %v", i, s)
		}
	}
}

func TestViterbiIsArgmax(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton"}, 11)
	seq, score, err := m.ViterbiDecode(ld)
	if err != nil {
		t.Fatal(err)
	}
	// The Viterbi score must equal DocScore at the decoded labels.
	saved := append([]Label{}, ld.Labels...)
	copy(ld.Labels, seq)
	if got := m.DocScore(ld); math.Abs(got-score) > 1e-9 {
		t.Fatalf("Viterbi score %v, DocScore at decode %v", score, got)
	}
	copy(ld.Labels, saved)
	// Exhaustive check: no assignment scores higher (9^3 = 729 states).
	var rec func(i int, assign []Label)
	best := math.Inf(-1)
	rec = func(i int, assign []Label) {
		if i == len(assign) {
			copy(ld.Labels, assign)
			if s := m.DocScore(ld); s > best {
				best = s
			}
			return
		}
		for l := Label(0); l < NumLabels; l++ {
			assign[i] = l
			rec(i+1, assign)
		}
	}
	rec(0, make([]Label, len(ld.Labels)))
	copy(ld.Labels, saved)
	if math.Abs(best-score) > 1e-9 {
		t.Fatalf("Viterbi %v but exhaustive max %v", score, best)
	}
}

func TestChainLogZMatchesEnumeration(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"x", "y", "z"}, 13)
	logZ, err := m.ChainLogZ(ld)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate.
	var rec func(i int, assign []Label)
	sum := math.Inf(-1)
	saved := append([]Label{}, ld.Labels...)
	rec = func(i int, assign []Label) {
		if i == len(assign) {
			copy(ld.Labels, assign)
			s := m.DocScore(ld)
			if math.IsInf(sum, -1) {
				sum = s
			} else {
				hi, lo := sum, s
				if lo > hi {
					hi, lo = lo, hi
				}
				sum = hi + math.Log1p(math.Exp(lo-hi))
			}
			return
		}
		for l := Label(0); l < NumLabels; l++ {
			assign[i] = l
			rec(i+1, assign)
		}
	}
	rec(0, make([]Label, len(ld.Labels)))
	copy(ld.Labels, saved)
	if math.Abs(logZ-sum) > 1e-9 {
		t.Fatalf("ChainLogZ %v, enumerated %v", logZ, sum)
	}
}

// TestMCMCMatchesForwardBackward is the scale bridge: the sampler's
// empirical token marginals on a linear-chain document must converge to
// the forward-backward exact values.
func TestMCMCMatchesForwardBackward(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton", "won", "games"}, 17)
	exact, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	corpus := &Corpus{Docs: []Doc{*ld.Doc}, NumTokens: len(ld.Labels)}
	tg := NewTagger(m, corpus, LO)
	s := mcmc.NewSampler(tg, 23)
	counts := make([][NumLabels]float64, len(ld.Labels))
	s.Run(3000) // burn-in
	samples := 150000
	for i := 0; i < samples; i++ {
		s.Run(4)
		for pos, l := range tg.Docs[0].Labels {
			counts[pos][l]++
		}
	}
	worst := 0.0
	for pos := range counts {
		for l := 0; l < NumLabels; l++ {
			d := math.Abs(counts[pos][l]/float64(samples) - exact[pos][l])
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Errorf("max |MCMC - forward-backward| = %.4f, want <= 0.02", worst)
	}
}

func TestChainRejectsSkipModels(t *testing.T) {
	v := NewVocab()
	m := NewModel(v, true)
	ld := NewLabeledDoc(&Doc{Tokens: []Token{{Str: "x"}}}, v, LO)
	if _, err := m.ChainMarginals(ld); err == nil {
		t.Error("ChainMarginals must reject skip models")
	}
	if _, _, err := m.ViterbiDecode(ld); err == nil {
		t.Error("ViterbiDecode must reject skip models")
	}
	if _, err := m.ChainLogZ(ld); err == nil {
		t.Error("ChainLogZ must reject skip models")
	}
}

func TestChainEmptyDoc(t *testing.T) {
	v := NewVocab()
	m := NewModel(v, false)
	ld := NewLabeledDoc(&Doc{}, v, LO)
	if got, err := m.ChainMarginals(ld); err != nil || got != nil {
		t.Errorf("empty doc marginals = %v, %v", got, err)
	}
	if seq, score, err := m.ViterbiDecode(ld); err != nil || seq != nil || score != 0 {
		t.Errorf("empty doc viterbi = %v, %v, %v", seq, score, err)
	}
	if z, err := m.ChainLogZ(ld); err != nil || z != 0 {
		t.Errorf("empty doc logZ = %v, %v", z, err)
	}
}
