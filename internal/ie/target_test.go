package ie

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/mcmc"
)

func TestDocsContaining(t *testing.T) {
	c := &Corpus{Docs: []Doc{
		{ID: 0, Tokens: []Token{{Str: "Boston"}, {Str: "won"}}},
		{ID: 1, Tokens: []Token{{Str: "IBM"}}},
		{ID: 2, Tokens: []Token{{Str: "in"}, {Str: "Boston"}, {Str: "Boston"}}},
	}}
	got := DocsContaining(c, "Boston")
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("DocsContaining = %v", got)
	}
	if DocsContaining(c, "nope") != nil {
		t.Error("missing string should return nil")
	}
}

func TestTargetDocsValidation(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(500, 3))
	tg := NewTagger(NewModel(BuildVocab(c), false), c, LO)
	if err := tg.TargetDocs(nil); err == nil {
		t.Error("empty target: want error")
	}
	if err := tg.TargetDocs([]int{-1}); err == nil {
		t.Error("negative doc: want error")
	}
	if err := tg.TargetDocs([]int{0, 0}); err == nil {
		t.Error("duplicate doc: want error")
	}
	if err := tg.TargetDocs([]int{0}); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
	if !tg.Targeted() {
		t.Error("Targeted() should report true")
	}
}

// TestTargetedProposalsOnlyTouchTargets: labels outside the target set
// must stay frozen.
func TestTargetedProposalsOnlyTouchTargets(t *testing.T) {
	c, _ := Generate(GenConfig{NumTokens: 2000, TokensPerDoc: 100, EntityRate: 0.2, RepeatRate: 0.4, Seed: 5})
	if len(c.Docs) < 4 {
		t.Skip("need several docs")
	}
	v := BuildVocab(c)
	m := NewModel(v, true)
	rng := rand.New(rand.NewSource(7))
	for k := range map[uint64]float64(nil) {
		_ = k
	}
	// Random emission weights so flips happen.
	tg := NewTagger(m, c, LO)
	for _, ld := range tg.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
			}
		}
	}
	target := []int{1, 3}
	if err := tg.TargetDocs(target); err != nil {
		t.Fatal(err)
	}
	s := mcmc.NewSampler(tg, 11)
	s.Run(5000)
	inTarget := map[int]bool{1: true, 3: true}
	for d, ld := range tg.Docs {
		changed := false
		for _, l := range ld.Labels {
			if l != LO {
				changed = true
			}
		}
		if changed && !inTarget[d] {
			t.Fatalf("doc %d outside target changed", d)
		}
	}
	// Targeted docs must actually move.
	moved := false
	for _, d := range target {
		for _, l := range tg.Docs[d].Labels {
			if l != LO {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("no movement inside target docs")
	}
}

// TestTargetedMarginalsMatchFull: because documents are independent graph
// components, targeted sampling must estimate the same marginals for
// events confined to the targeted documents.
func TestTargetedMarginalsMatchFull(t *testing.T) {
	c, _ := Generate(GenConfig{NumTokens: 200, TokensPerDoc: 50, EntityRate: 0.2, RepeatRate: 0.4, Seed: 9})
	v := BuildVocab(c)
	m := NewModel(v, true)
	rng := rand.New(rand.NewSource(13))
	base := NewTagger(m, c, LO)
	nDocs := len(base.Docs)
	for _, ld := range base.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), 0.5*rng.NormFloat64())
			}
		}
	}
	targetDoc := 0
	// Event: first token of doc 0 is labeled B-PER. The untargeted walk
	// spends only 1/nDocs of its proposals on doc 0, so it gets
	// proportionally more steps for a fair comparison.
	estimate := func(targeted bool, seed int64) float64 {
		tg := NewTagger(m, c, LO)
		mult := nDocs
		if targeted {
			if err := tg.TargetDocs([]int{targetDoc}); err != nil {
				t.Fatal(err)
			}
			mult = 1
		}
		s := mcmc.NewSampler(tg, seed)
		s.Run(2000 * mult)
		hits, n := 0, 80000
		for i := 0; i < n; i++ {
			s.Run(3 * mult)
			if tg.Docs[targetDoc].Labels[0] == LBPer {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	full := estimate(false, 21)
	targeted := estimate(true, 22)
	if math.Abs(full-targeted) > 0.03 {
		t.Errorf("targeted %v vs full %v marginal for doc-0 event", targeted, full)
	}
}
