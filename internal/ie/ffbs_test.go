package ie

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/relstore"
	"factordb/internal/world"
)

// TestFFBSMatchesForwardBackward: empirical marginals of exact iid
// samples must match the forward-backward marginals.
func TestFFBSMatchesForwardBackward(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton", "won"}, 31)
	exact, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([][NumLabels]float64, len(ld.Labels))
	samples := 120000
	for s := 0; s < samples; s++ {
		if err := m.SampleChain(ld, rng); err != nil {
			t.Fatal(err)
		}
		for i, l := range ld.Labels {
			counts[i][l]++
		}
	}
	worst := 0.0
	for i := range counts {
		for l := 0; l < NumLabels; l++ {
			if d := math.Abs(counts[i][l]/float64(samples) - exact[i][l]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.01 {
		t.Errorf("max |FFBS - forward-backward| = %.4f, want <= 0.01", worst)
	}
}

func TestFFBSRejectsSkipModel(t *testing.T) {
	v := NewVocab()
	m := NewModel(v, true)
	ld := NewLabeledDoc(&Doc{Tokens: []Token{{Str: "x"}}}, v, LO)
	if err := m.SampleChain(ld, rand.New(rand.NewSource(1))); err == nil {
		t.Error("SampleChain must reject skip models")
	}
}

func TestSampleCorpusWritesThrough(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(400, 41))
	v := BuildVocab(c)
	m := NewModel(v, false)
	rng := rand.New(rand.NewSource(3))
	// Random weights so samples are non-trivial.
	tg0 := NewTagger(m, c, LO)
	for _, ld := range tg0.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
			}
		}
	}
	db := relstore.NewDB()
	rows, err := LoadCorpus(db, c, LO)
	if err != nil {
		t.Fatal(err)
	}
	log := world.NewChangeLog(db)
	tg := NewTagger(m, c, LO)
	if err := tg.BindDB(log, rows); err != nil {
		t.Fatal(err)
	}
	if err := tg.SampleCorpus(rng); err != nil {
		t.Fatal(err)
	}
	// Store must mirror memory after full-world regeneration.
	rel, _ := db.Relation(TokenRelation)
	for d, ld := range tg.Docs {
		for i, l := range ld.Labels {
			tu, _ := rel.Get(rows[d][i])
			if tu[LabelCol].AsString() != l.String() {
				t.Fatalf("doc %d tok %d: store %q, memory %q", d, i, tu[LabelCol].AsString(), l)
			}
		}
	}
	if !log.Pending() {
		t.Error("full regeneration should produce deltas")
	}
}

// TestGibbsMatchesExact: the Gibbs kernel must converge to the same
// marginals as exact inference on a linear chain.
func TestGibbsMatchesExact(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton"}, 43)
	exact, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	corpus := &Corpus{Docs: []Doc{*ld.Doc}, NumTokens: len(ld.Labels)}
	tg := NewTagger(m, corpus, LO)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		tg.GibbsStep(rng)
	}
	counts := make([][NumLabels]float64, len(ld.Labels))
	samples := 120000
	for s := 0; s < samples; s++ {
		for j := 0; j < 3; j++ {
			tg.GibbsStep(rng)
		}
		for i, l := range tg.Docs[0].Labels {
			counts[i][l]++
		}
	}
	worst := 0.0
	for i := range counts {
		for l := 0; l < NumLabels; l++ {
			if d := math.Abs(counts[i][l]/float64(samples) - exact[i][l]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Errorf("max |Gibbs - exact| = %.4f, want <= 0.02", worst)
	}
}

// TestGibbsWorksOnSkipChain: Gibbs needs only local factors, so it must
// run (and respect write-through) on the skip-chain model too.
func TestGibbsWorksOnSkipChain(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(300, 47))
	v := BuildVocab(c)
	m := NewModel(v, true)
	rng := rand.New(rand.NewSource(13))
	tg := NewTagger(m, c, LO)
	for _, ld := range tg.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
			}
		}
	}
	moved := false
	for i := 0; i < 3000; i++ {
		tg.GibbsStep(rng)
	}
	for _, ld := range tg.Docs {
		for _, l := range ld.Labels {
			if l != LO {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("Gibbs never moved any label")
	}
}
