package ie

import "fmt"

// Span-level NER evaluation: the standard CoNLL metric. A predicted
// entity span (contiguous B-T, I-T, ... sequence) counts as correct only
// when both its boundaries and its type match a gold span exactly.

// Span is one entity mention: token positions [Start, End) of type Type.
type Span struct {
	Start, End int
	Type       uint8
}

// Spans extracts entity spans from a BIO label sequence. Malformed
// sequences (I-T without a matching opener) are interpreted leniently, as
// is conventional: the stray I-T opens a new span.
func Spans(labels []Label) []Span {
	var out []Span
	var cur *Span
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for i, l := range labels {
		switch {
		case l == LO:
			flush()
		case l.IsBegin():
			flush()
			cur = &Span{Start: i, End: i + 1, Type: l.EntityType()}
		case l.IsInside():
			if cur != nil && cur.Type == l.EntityType() {
				cur.End = i + 1
			} else {
				flush()
				cur = &Span{Start: i, End: i + 1, Type: l.EntityType()}
			}
		}
	}
	flush()
	return out
}

// F1Report holds span-level precision/recall/F1, optionally per type.
type F1Report struct {
	Precision, Recall, F1 float64
	Predicted, Gold, Hits int
}

// String renders the report.
func (r F1Report) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (pred %d, gold %d, hits %d)",
		r.Precision, r.Recall, r.F1, r.Predicted, r.Gold, r.Hits)
}

// SpanF1 scores the tagger's current hypothesis against gold labels at
// span level across all documents.
func (t *Tagger) SpanF1() F1Report {
	var rep F1Report
	for _, ld := range t.Docs {
		gold := make([]Label, len(ld.Labels))
		for i := range gold {
			gold[i] = ld.Doc.Tokens[i].Gold
		}
		gs := Spans(gold)
		ps := Spans(ld.Labels)
		rep.Gold += len(gs)
		rep.Predicted += len(ps)
		gset := make(map[Span]bool, len(gs))
		for _, s := range gs {
			gset[s] = true
		}
		for _, s := range ps {
			if gset[s] {
				rep.Hits++
			}
		}
	}
	if rep.Predicted > 0 {
		rep.Precision = float64(rep.Hits) / float64(rep.Predicted)
	}
	if rep.Gold > 0 {
		rep.Recall = float64(rep.Hits) / float64(rep.Gold)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.F1 = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	return rep
}
