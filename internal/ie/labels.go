// Package ie implements the information-extraction substrate of the
// paper's evaluation (Section 5): named entity recognition with a
// skip-chain conditional random field over BIO-encoded CoNLL labels, a
// synthetic news-like corpus generator standing in for the 2004 New York
// Times data, and the Metropolis-Hastings proposal distribution used for
// query evaluation.
package ie

// Label indexes the nine BIO-encoded CoNLL labels of the paper
// (Section 5.1): O plus B-/I- variants of PER, ORG, LOC and MISC.
type Label uint8

// The label inventory, in the fixed order used throughout the package.
const (
	LO Label = iota
	LBPer
	LIPer
	LBOrg
	LIOrg
	LBLoc
	LILoc
	LBMisc
	LIMisc
	NumLabels = 9
)

// LabelNames lists the surface forms, indexed by Label.
var LabelNames = [NumLabels]string{
	"O", "B-PER", "I-PER", "B-ORG", "I-ORG", "B-LOC", "I-LOC", "B-MISC", "I-MISC",
}

// String returns the surface form of the label.
func (l Label) String() string {
	if int(l) < len(LabelNames) {
		return LabelNames[l]
	}
	return "?"
}

// ParseLabel maps a surface form back to its Label.
func ParseLabel(s string) (Label, bool) {
	for i, n := range LabelNames {
		if n == s {
			return Label(i), true
		}
	}
	return 0, false
}

// IsBegin reports whether the label opens a mention (B-*).
func (l Label) IsBegin() bool { return l == LBPer || l == LBOrg || l == LBLoc || l == LBMisc }

// IsInside reports whether the label continues a mention (I-*).
func (l Label) IsInside() bool { return l == LIPer || l == LIOrg || l == LILoc || l == LIMisc }

// EntityType returns the entity type shared by B-T and I-T (0 for O).
func (l Label) EntityType() uint8 {
	if l == LO {
		return 0
	}
	return uint8((l-1)/2 + 1)
}

// ValidAfter reports whether label l may follow prev under BIO semantics
// (Appendix 9.3): I-T requires the preceding label to be B-T or I-T.
func (l Label) ValidAfter(prev Label) bool {
	if !l.IsInside() {
		return true
	}
	return prev.EntityType() == l.EntityType() && prev != LO
}
