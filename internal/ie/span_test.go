package ie

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// TestSpanScoreDeltaMatchesDocScore checks the block-move delta against a
// full-document rescore on the skip-chain model.
func TestSpanScoreDeltaMatchesDocScore(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(600, 51))
	v := BuildVocab(c)
	m := NewModel(v, true)
	tg := NewTagger(m, c, LO)
	rng := rand.New(rand.NewSource(7))
	ld := tg.Docs[0]
	for i := range ld.Labels {
		for l := Label(0); l < NumLabels; l++ {
			m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
		}
	}
	for a := Label(0); a < NumLabels; a++ {
		m.W.Set(BiasKey(a), rng.NormFloat64())
		for b := Label(0); b < NumLabels; b++ {
			m.W.Set(TransKey(a, b), rng.NormFloat64())
		}
	}
	m.W.Set(SkipKey(true), 0.8)
	m.W.Set(SkipKey(false), -0.6)

	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(maxSpanLen)
		i := rng.Intn(len(ld.Labels) - n)
		newLabels := make([]Label, n)
		for j := range newLabels {
			newLabels[j] = Label(rng.Intn(NumLabels))
		}
		before := m.DocScore(ld)
		delta := m.SpanScoreDelta(ld, i, newLabels)
		saved := append([]Label{}, ld.Labels[i:i+n]...)
		copy(ld.Labels[i:], newLabels)
		after := m.DocScore(ld)
		if math.Abs(delta-(after-before)) > 1e-9 {
			t.Fatalf("trial %d (i=%d n=%d): delta=%v rescore=%v", trial, i, n, delta, after-before)
		}
		// Sometimes keep the flip to vary the state.
		if trial%2 == 0 {
			copy(ld.Labels[i:], saved)
		}
	}
}

// TestSpanProposerMatchesExactMarginals: validity of the block kernel on
// a linear chain against forward-backward.
func TestSpanProposerMatchesExactMarginals(t *testing.T) {
	m, ld := tinyChainSetup(t, []string{"IBM", "said", "Clinton", "won"}, 61)
	exact, err := m.ChainMarginals(ld)
	if err != nil {
		t.Fatal(err)
	}
	corpus := &Corpus{Docs: []Doc{*ld.Doc}, NumTokens: len(ld.Labels)}
	tg := NewTagger(m, corpus, LO)
	s := mcmc.NewSampler(NewMixedProposer(tg, 0.5), 13)
	s.Run(3000)
	counts := make([][NumLabels]float64, len(ld.Labels))
	samples := 200000
	for k := 0; k < samples; k++ {
		s.Run(4)
		for i, l := range tg.Docs[0].Labels {
			counts[i][l]++
		}
	}
	worst := 0.0
	for i := range counts {
		for l := 0; l < NumLabels; l++ {
			if d := math.Abs(counts[i][l]/float64(samples) - exact[i][l]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Errorf("max |block-MCMC - exact| = %.4f, want <= 0.02", worst)
	}
}

// TestSpanProposerWriteThrough: an accepted block move must land all its
// tuple changes in the store (a multi-tuple Δ per step).
func TestSpanProposerWriteThrough(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(500, 67))
	v := BuildVocab(c)
	m := NewModel(v, true)
	rng := rand.New(rand.NewSource(3))
	tg := NewTagger(m, c, LO)
	for _, ld := range tg.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
			}
		}
	}
	db, rows, log := loadBound(t, c)
	if err := tg.BindDB(log, rows); err != nil {
		t.Fatal(err)
	}
	s := mcmc.NewSampler(NewMixedProposer(tg, 1.0), 5)
	s.Run(2000)
	rel, _ := db.Relation(TokenRelation)
	for d, ld := range tg.Docs {
		for i, l := range ld.Labels {
			tu, _ := rel.Get(rows[d][i])
			if tu[LabelCol].AsString() != l.String() {
				t.Fatalf("doc %d tok %d: store %q, memory %q", d, i, tu[LabelCol].AsString(), l)
			}
		}
	}
}

// loadBound is a small helper shared by write-through tests.
func loadBound(t *testing.T, c *Corpus) (db *relstore.DB, rows [][]relstore.RowID, log *world.ChangeLog) {
	t.Helper()
	db = relstore.NewDB()
	var err error
	rows, err = LoadCorpus(db, c, LO)
	if err != nil {
		t.Fatal(err)
	}
	return db, rows, world.NewChangeLog(db)
}
