package ie

import (
	"math"
	"math/rand"
	"testing"

	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

func TestLabelInventory(t *testing.T) {
	if NumLabels != 9 {
		t.Fatalf("NumLabels = %d", NumLabels)
	}
	for i := 0; i < NumLabels; i++ {
		l := Label(i)
		got, ok := ParseLabel(l.String())
		if !ok || got != l {
			t.Errorf("round trip failed for %v", l)
		}
	}
	if _, ok := ParseLabel("NOPE"); ok {
		t.Error("ParseLabel accepted garbage")
	}
}

func TestBIOValidity(t *testing.T) {
	cases := []struct {
		prev, next Label
		ok         bool
	}{
		{LO, LO, true},
		{LO, LBPer, true},
		{LBPer, LIPer, true},
		{LIPer, LIPer, true},
		{LO, LIPer, false},    // I- cannot open after O
		{LBOrg, LIPer, false}, // I-PER cannot follow B-ORG
		{LBPer, LBOrg, true},
		{LILoc, LILoc, true},
		{LBMisc, LIMisc, true},
	}
	for _, c := range cases {
		if got := c.next.ValidAfter(c.prev); got != c.ok {
			t.Errorf("ValidAfter(%v after %v) = %v, want %v", c.next, c.prev, got, c.ok)
		}
	}
}

func TestEntityTypePairsBAndI(t *testing.T) {
	pairs := [][2]Label{{LBPer, LIPer}, {LBOrg, LIOrg}, {LBLoc, LILoc}, {LBMisc, LIMisc}}
	for _, p := range pairs {
		if p[0].EntityType() != p[1].EntityType() {
			t.Errorf("%v and %v should share entity type", p[0], p[1])
		}
		if !p[0].IsBegin() || !p[1].IsInside() {
			t.Errorf("B/I classification wrong for %v/%v", p[0], p[1])
		}
	}
	if LO.EntityType() != 0 || LO.IsBegin() || LO.IsInside() {
		t.Error("O misclassified")
	}
}

func TestGenerateCorpus(t *testing.T) {
	c, err := Generate(DefaultGenConfig(5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTokens < 5000 {
		t.Fatalf("NumTokens = %d, want >= 5000", c.NumTokens)
	}
	// Gold labels must be BIO-valid sequences.
	entities, skipStrings := 0, 0
	for _, d := range c.Docs {
		prev := LO
		seen := map[string]int{}
		for _, tok := range d.Tokens {
			if !tok.Gold.ValidAfter(prev) {
				t.Fatalf("doc %d: invalid gold sequence %v after %v", d.ID, tok.Gold, prev)
			}
			if tok.Gold.IsBegin() {
				entities++
			}
			if IsCapitalized(tok.Str) {
				seen[tok.Str]++
			}
			prev = tok.Gold
		}
		for _, n := range seen {
			if n > 1 {
				skipStrings++
			}
		}
	}
	if entities == 0 {
		t.Error("corpus has no entities")
	}
	if skipStrings == 0 {
		t.Error("corpus has no repeated capitalized strings (no skip edges)")
	}
	// Mostly O, as in real NER data.
	o := 0
	for _, d := range c.Docs {
		for _, tok := range d.Tokens {
			if tok.Gold == LO {
				o++
			}
		}
	}
	if frac := float64(o) / float64(c.NumTokens); frac < 0.5 {
		t.Errorf("O fraction = %.2f, want majority O", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultGenConfig(2000, 7))
	b, _ := Generate(DefaultGenConfig(2000, 7))
	if len(a.Docs) != len(b.Docs) || a.NumTokens != b.NumTokens {
		t.Fatal("same seed produced different corpora")
	}
	for i := range a.Docs {
		for j := range a.Docs[i].Tokens {
			if a.Docs[i].Tokens[j] != b.Docs[i].Tokens[j] {
				t.Fatal("same seed produced different tokens")
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(GenConfig{NumTokens: 0}); err == nil {
		t.Error("zero tokens: want error")
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	a := v.Intern("IBM")
	if v.Intern("IBM") != a {
		t.Error("re-intern changed id")
	}
	if v.ID("IBM") != a || v.ID("nope") != -1 {
		t.Error("ID lookup broken")
	}
	if v.Str(a) != "IBM" {
		t.Error("Str lookup broken")
	}
	if v.Size() != 1 {
		t.Errorf("Size = %d", v.Size())
	}
}

func TestSkipPartners(t *testing.T) {
	doc := &Doc{ID: 0, Tokens: []Token{
		{Str: "IBM"}, {Str: "said"}, {Str: "IBM"}, {Str: "the"}, {Str: "IBM"}, {Str: "the"},
	}}
	v := NewVocab()
	ld := NewLabeledDoc(doc, v, LO)
	// Three IBMs: each has 2 partners. Lowercase "the" gets none.
	for _, i := range []int{0, 2, 4} {
		if ld.SkipDegree(i) != 2 {
			t.Errorf("IBM at %d has %d partners, want 2", i, ld.SkipDegree(i))
		}
	}
	for _, i := range []int{1, 3, 5} {
		if ld.SkipDegree(i) != 0 {
			t.Errorf("token %d has %d partners, want 0", i, ld.SkipDegree(i))
		}
	}
}

// TestScoreDeltaMatchesDocScore verifies the factor-cancellation identity
// on the skip-chain model: local deltas must equal full-document rescores.
func TestScoreDeltaMatchesDocScore(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(600, 3))
	v := BuildVocab(c)
	m := NewModel(v, true)
	// Random weights make the check meaningful.
	rng := rand.New(rand.NewSource(4))
	tg := NewTagger(m, c, LO)
	for _, ld := range tg.Docs {
		for i := range ld.Labels {
			for l := Label(0); l < NumLabels; l++ {
				m.W.Set(EmissionKey(ld.strIDs[i], l), rng.NormFloat64())
			}
		}
	}
	for a := Label(0); a < NumLabels; a++ {
		m.W.Set(BiasKey(a), rng.NormFloat64())
		m.W.Set(CapsKey(true, a), rng.NormFloat64())
		m.W.Set(CapsKey(false, a), rng.NormFloat64())
		for b := Label(0); b < NumLabels; b++ {
			m.W.Set(TransKey(a, b), rng.NormFloat64())
		}
	}
	m.W.Set(SkipKey(true), 1.3)
	m.W.Set(SkipKey(false), -0.7)

	ld := tg.Docs[0]
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(ld.Labels))
		newL := Label(rng.Intn(NumLabels))
		before := m.DocScore(ld)
		delta := m.ScoreDelta(ld, i, newL)
		old := ld.Labels[i]
		ld.Labels[i] = newL
		after := m.DocScore(ld)
		ld.Labels[i] = old
		if math.Abs(delta-(after-before)) > 1e-9 {
			t.Fatalf("trial %d pos %d %v->%v: delta=%v rescore=%v", trial, i, old, newL, delta, after-before)
		}
		// Apply some flips to vary the state.
		if trial%3 == 0 {
			ld.Labels[i] = newL
		}
	}
}

func TestFeatureDeltaConsistentWithScoreDelta(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(400, 5))
	v := BuildVocab(c)
	m := NewModel(v, true)
	rng := rand.New(rand.NewSource(6))
	tg := NewTagger(m, c, LO)
	ld := tg.Docs[0]
	// Seed random weights on the features that will fire.
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(ld.Labels))
		newL := Label(rng.Intn(NumLabels))
		fd := m.FeatureDelta(ld, i, newL)
		if got, want := m.W.Dot(fd), m.ScoreDelta(ld, i, newL); math.Abs(got-want) > 1e-9 {
			t.Fatalf("W·Δφ = %v, ScoreDelta = %v", got, want)
		}
		for k := range fd {
			m.W.Set(k, rng.NormFloat64())
		}
		if got, want := m.W.Dot(fd), m.ScoreDelta(ld, i, newL); math.Abs(got-want) > 1e-9 {
			t.Fatalf("after reweighting: W·Δφ = %v, ScoreDelta = %v", got, want)
		}
		ld.Labels[i] = newL
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(3000, 11))
	v := BuildVocab(c)
	m := NewModel(v, true)
	tg := NewTagger(m, c, LO)
	base := tg.Accuracy() // all-O baseline
	tg.Train(60000, 1.0, 13)
	got := tg.Accuracy()
	if got <= base+0.05 {
		t.Errorf("accuracy after training = %.3f, baseline %.3f", got, base)
	}
	// The learned emission weight for an unambiguous filler must prefer O.
	theID := v.ID("the")
	if theID >= 0 && m.W.Get(EmissionKey(theID, LO)) <= m.W.Get(EmissionKey(theID, LBPer)) {
		t.Error("training did not learn that 'the' is O")
	}
}

func TestLoadCorpusAndWriteThrough(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(500, 17))
	v := BuildVocab(c)
	m := NewModel(v, true)
	db := relstore.NewDB()
	rows, err := LoadCorpus(db, c, LO)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation(TokenRelation)
	if rel.Len() != c.NumTokens {
		t.Fatalf("TOKEN has %d rows, want %d", rel.Len(), c.NumTokens)
	}
	log := world.NewChangeLog(db)
	tg := NewTagger(m, c, LO)
	if err := tg.BindDB(log, rows); err != nil {
		t.Fatal(err)
	}
	// Run a few MH steps with random weights; accepted flips must appear
	// in the store.
	s := mcmc.NewSampler(tg, 23)
	s.Run(500)
	flips := 0
	rel.Scan(func(_ relstore.RowID, tu relstore.Tuple) bool {
		if tu[LabelCol].AsString() != "O" {
			flips++
		}
		return true
	})
	mem := 0
	for _, ld := range tg.Docs {
		for _, l := range ld.Labels {
			if l != LO {
				mem++
			}
		}
	}
	if flips != mem {
		t.Errorf("store shows %d non-O labels, memory has %d", flips, mem)
	}
	if !log.Pending() && mem > 0 {
		t.Error("change log should have pending deltas")
	}
}

func TestBindDBValidation(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(300, 19))
	v := BuildVocab(c)
	tg := NewTagger(NewModel(v, false), c, LO)
	db := relstore.NewDB()
	log := world.NewChangeLog(db)
	if err := tg.BindDB(log, nil); err == nil {
		t.Error("nil rows: want error")
	}
	bad := make([][]relstore.RowID, len(tg.Docs))
	if err := tg.BindDB(log, bad); err == nil {
		t.Error("short row lists: want error")
	}
}

func TestConstrainedProposerKeepsBIOValid(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(800, 29))
	v := BuildVocab(c)
	m := NewModel(v, true)
	tg := NewTagger(m, c, LO)
	tg.ConstrainBIO = true
	s := mcmc.NewSampler(tg, 31)
	s.Run(5000)
	for d, ld := range tg.Docs {
		prev := LO
		for i, l := range ld.Labels {
			if i == 0 && l.IsInside() {
				t.Fatalf("doc %d starts with %v", d, l)
			}
			if i > 0 && !l.ValidAfter(prev) {
				t.Fatalf("doc %d: %v after %v at %d", d, l, prev, i)
			}
			prev = l
		}
	}
}

func TestActiveDocBatching(t *testing.T) {
	c, _ := Generate(GenConfig{NumTokens: 2000, TokensPerDoc: 100, EntityRate: 0.2, RepeatRate: 0.4, Seed: 37})
	if len(c.Docs) < 6 {
		t.Skip("need several docs")
	}
	v := BuildVocab(c)
	tg := NewTagger(NewModel(v, true), c, LO)
	tg.ActiveDocs = 2
	tg.StepsPerBatch = 50
	s := mcmc.NewSampler(tg, 41)
	s.Run(2000)
	if s.Accepted() == 0 {
		t.Error("batched proposer never accepted")
	}
}

func TestSetAll(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(300, 43))
	v := BuildVocab(c)
	tg := NewTagger(NewModel(v, false), c, LO)
	tg.Docs[0].Labels[0] = LBPer
	tg.SetAll(LO)
	for _, ld := range tg.Docs {
		for _, l := range ld.Labels {
			if l != LO {
				t.Fatal("SetAll left a non-O label")
			}
		}
	}
}

func TestFactorsTouchedCounts(t *testing.T) {
	doc := &Doc{ID: 0, Tokens: []Token{{Str: "IBM"}, {Str: "x"}, {Str: "IBM"}}}
	v := NewVocab()
	m := NewModel(v, true)
	ld := NewLabeledDoc(doc, v, LO)
	// Position 0: emission+caps+bias (3) + right trans (1) + 1 skip = 5 → ×2.
	if got := m.FactorsTouched(ld, 0); got != 10 {
		t.Errorf("FactorsTouched(0) = %d, want 10", got)
	}
	// Middle: 3 + 2 trans + 0 skip = 5 → ×2.
	if got := m.FactorsTouched(ld, 1); got != 10 {
		t.Errorf("FactorsTouched(1) = %d, want 10", got)
	}
	m2 := NewModel(v, false)
	if got := m2.FactorsTouched(ld, 0); got != 8 {
		t.Errorf("no-skip FactorsTouched(0) = %d, want 8", got)
	}
}
