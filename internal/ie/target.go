package ie

import "fmt"

// Query-targeted proposal distributions: the paper's Section 4.1 and its
// conclusion suggest injecting query-specific knowledge into q so the
// sampler only explores the part of the database a query depends on
// ("a query might target an isolated subset of the database, then the
// proposal distribution only has to sample this subset"). Documents are
// independent components of the unrolled factor graph (transitions and
// skip edges never cross documents), so restricting proposals to the
// documents a query can read from leaves the query's answer marginals
// unchanged while concentrating every MH step on relevant variables.

// DocsContaining returns the indexes of documents containing the exact
// token string s. For a selective query such as Query 4 (which requires a
// "Boston" token in the document), these are the only documents whose
// labels can affect the answer.
func DocsContaining(c *Corpus, s string) []int {
	var out []int
	for d := range c.Docs {
		for _, tok := range c.Docs[d].Tokens {
			if tok.Str == s {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// TargetDocs restricts the tagger's proposal distribution to the given
// document indexes, overriding the uniform active-set batching. It is the
// caller's responsibility that the query's answer depends only on hidden
// variables inside the targeted documents; labels elsewhere are frozen at
// their current values (their marginals are NOT sampled).
func (t *Tagger) TargetDocs(docs []int) error {
	if len(docs) == 0 {
		return fmt.Errorf("ie: TargetDocs requires at least one document")
	}
	seen := make(map[int]bool, len(docs))
	for _, d := range docs {
		if d < 0 || d >= len(t.Docs) {
			return fmt.Errorf("ie: TargetDocs: document %d out of range [0,%d)", d, len(t.Docs))
		}
		if seen[d] {
			return fmt.Errorf("ie: TargetDocs: duplicate document %d", d)
		}
		seen[d] = true
	}
	t.ActiveDocs = 0
	t.StepsPerBatch = 0
	t.active = append([]int{}, docs...)
	return nil
}

// Targeted reports whether the tagger is running a targeted proposal.
func (t *Tagger) Targeted() bool {
	return t.StepsPerBatch == 0 && t.active != nil
}
