package ie

import (
	"testing"
)

func TestSpansExtraction(t *testing.T) {
	// he(B-PER) saw(O) Hillary(B-PER) Clinton(I-PER) speaks(O) — the
	// appendix's example: two mentions.
	labels := []Label{LBPer, LO, LBPer, LIPer, LO}
	spans := Spans(labels)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2", spans)
	}
	if spans[0] != (Span{0, 1, LBPer.EntityType()}) {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1] != (Span{2, 4, LBPer.EntityType()}) {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

func TestSpansAdjacentMentions(t *testing.T) {
	// B-PER B-PER = two adjacent single-token mentions.
	spans := Spans([]Label{LBPer, LBPer})
	if len(spans) != 2 {
		t.Fatalf("adjacent B-B spans = %v", spans)
	}
	// B-PER I-ORG: type switch without B opens a new span (lenient).
	spans = Spans([]Label{LBPer, LIOrg})
	if len(spans) != 2 || spans[1].Type != LBOrg.EntityType() {
		t.Fatalf("type-switch spans = %v", spans)
	}
	// Stray I-PER at the start opens a span.
	spans = Spans([]Label{LIPer, LIPer, LO})
	if len(spans) != 1 || spans[0] != (Span{0, 2, LBPer.EntityType()}) {
		t.Fatalf("stray-I spans = %v", spans)
	}
	// Trailing mention is flushed.
	spans = Spans([]Label{LO, LBLoc, LILoc})
	if len(spans) != 1 || spans[0].End != 3 {
		t.Fatalf("trailing spans = %v", spans)
	}
	if Spans(nil) != nil {
		t.Error("empty labels should yield no spans")
	}
}

func TestSpanF1PerfectAndEmpty(t *testing.T) {
	c, _ := Generate(DefaultGenConfig(500, 3))
	tg := NewTagger(NewModel(BuildVocab(c), false), c, LO)
	// All-O: no predicted spans, recall 0, F1 0.
	rep := tg.SpanF1()
	if rep.Predicted != 0 || rep.Recall != 0 || rep.F1 != 0 {
		t.Errorf("all-O report = %v", rep)
	}
	if rep.Gold == 0 {
		t.Fatal("corpus has no gold spans")
	}
	// Copy gold into the hypothesis: perfect score.
	for _, ld := range tg.Docs {
		for i := range ld.Labels {
			ld.Labels[i] = ld.Doc.Tokens[i].Gold
		}
	}
	rep = tg.SpanF1()
	if rep.F1 != 1 || rep.Precision != 1 || rep.Recall != 1 {
		t.Errorf("gold-copy report = %v", rep)
	}
	if rep.String() == "" {
		t.Error("String empty")
	}
}

func TestSpanF1PartialCredit(t *testing.T) {
	doc := Doc{ID: 0, Tokens: []Token{
		{Str: "Hillary", Gold: LBPer}, {Str: "Clinton", Gold: LIPer},
		{Str: "visited", Gold: LO}, {Str: "IBM", Gold: LBOrg},
	}}
	c := &Corpus{Docs: []Doc{doc}, NumTokens: 4}
	tg := NewTagger(NewModel(BuildVocab(c), false), c, LO)
	// Predict the ORG but truncate the PER span: 1 hit of 2 gold, 2 predicted.
	tg.Docs[0].Labels = []Label{LBPer, LO, LO, LBOrg}
	rep := tg.SpanF1()
	if rep.Hits != 1 || rep.Predicted != 2 || rep.Gold != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Precision != 0.5 || rep.Recall != 0.5 || rep.F1 != 0.5 {
		t.Errorf("P/R/F1 = %v/%v/%v", rep.Precision, rep.Recall, rep.F1)
	}
}
