package ie

import (
	"fmt"
	"math"
	"math/rand"
)

// Forward-filtering backward-sampling (FFBS): draws an exact independent
// sample from the linear-chain posterior P(y | x). This is the
// "generative Monte Carlo" regime of MCDB that the paper contrasts with
// MCMC (Section 2): every sample regenerates an entire world from
// scratch, at per-document cost O(n·L²), instead of hypothesizing a
// local modification at O(1). The benchmark suite uses it as the honest
// iid baseline for the linear-chain model (no such sampler exists for
// the skip chain — computing its normalizer is #P-hard, which is exactly
// the paper's point).

// SampleChain draws one exact sample from the linear-chain posterior for
// the document, writing it into ld.Labels.
func (m *Model) SampleChain(ld *LabeledDoc, rng *rand.Rand) error {
	if m.UseSkip {
		return fmt.Errorf("ie: SampleChain requires a linear-chain model (UseSkip=false)")
	}
	n := len(ld.Labels)
	if n == 0 {
		return nil
	}
	// Forward pass (same recursion as ChainMarginals).
	alpha := make([][NumLabels]float64, n)
	for l := Label(0); l < NumLabels; l++ {
		alpha[0][l] = m.nodeScore(ld, 0, l)
	}
	var terms [NumLabels]float64
	for i := 1; i < n; i++ {
		for l := Label(0); l < NumLabels; l++ {
			for p := Label(0); p < NumLabels; p++ {
				terms[p] = alpha[i-1][p] + m.W.Get(TransKey(p, l))
			}
			alpha[i][l] = m.nodeScore(ld, i, l) + logSumExp(terms[:])
		}
	}
	// Backward sampling: y_n ~ α_n, then y_i ~ α_i(y) · ψ(y, y_{i+1}).
	ld.Labels[n-1] = sampleLog(rng, alpha[n-1][:])
	for i := n - 2; i >= 0; i-- {
		next := ld.Labels[i+1]
		for l := Label(0); l < NumLabels; l++ {
			terms[l] = alpha[i][l] + m.W.Get(TransKey(l, next))
		}
		ld.Labels[i] = sampleLog(rng, terms[:])
	}
	return nil
}

// SampleCorpus regenerates every document of the tagger's corpus from the
// exact chain posterior: one full iid possible world.
func (t *Tagger) SampleCorpus(rng *rand.Rand) error {
	for d, ld := range t.Docs {
		saved := append([]Label{}, ld.Labels...)
		if err := t.Model.SampleChain(ld, rng); err != nil {
			return err
		}
		// Propagate to the database (and delta log) where bound.
		if t.log != nil {
			fresh := append([]Label{}, ld.Labels...)
			copy(ld.Labels, saved)
			for i, l := range fresh {
				if ld.Labels[i] != l {
					t.apply(d, i, l)
				}
			}
		}
	}
	return nil
}

// sampleLog draws an index from unnormalized log weights.
func sampleLog(rng *rand.Rand, logw []float64) Label {
	max := math.Inf(-1)
	for _, w := range logw {
		if w > max {
			max = w
		}
	}
	var total float64
	var probs [NumLabels]float64
	for i, w := range logw {
		probs[i] = math.Exp(w - max)
		total += probs[i]
	}
	u := rng.Float64() * total
	for i, p := range probs {
		u -= p
		if u < 0 {
			return Label(i)
		}
	}
	return Label(len(logw) - 1)
}

// GibbsStep resamples one uniformly chosen label variable from its exact
// local conditional distribution (a Gibbs kernel: the acceptance
// probability is identically one). Unlike FFBS this works for the skip
// chain too, because the local conditional only needs the factors
// touching the variable. Returns the document and position touched.
func (t *Tagger) GibbsStep(rng *rand.Rand) (doc, pos int) {
	d, i := t.pick(rng)
	ld := t.Docs[d]
	var logw [NumLabels]float64
	old := ld.Labels[i]
	for l := Label(0); l < NumLabels; l++ {
		logw[l] = t.Model.localScore(ld, i, l)
	}
	newLabel := sampleLog(rng, logw[:])
	if newLabel != old {
		t.apply(d, i, newLabel)
	}
	return d, i
}
