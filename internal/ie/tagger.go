package ie

import (
	"errors"
	"fmt"
	"math/rand"

	"factordb/internal/learn"
	"factordb/internal/mcmc"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// TokenRelation is the name of the token relation, with the paper's
// schema: TOKEN(TOK_ID, DOC_ID, STRING, LABEL, TRUTH) where TOK_ID is the
// primary key, LABEL is the hidden field initialized to "O", and TRUTH
// holds the (here: generator) gold label used for training.
const TokenRelation = "TOKEN"

// TokenSchema returns the TOKEN relation schema.
func TokenSchema() *relstore.Schema {
	return relstore.MustSchema(TokenRelation,
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
		relstore.Column{Name: "TRUTH", Type: relstore.TString},
	)
}

// LabelCol is the column index of the hidden LABEL attribute.
const LabelCol = 3

// LoadCorpus materializes the corpus into a fresh TOKEN relation in db,
// with LABEL initialized to init. It returns, per document, the RowIDs of
// its tokens in order.
func LoadCorpus(db *relstore.DB, c *Corpus, init Label) ([][]relstore.RowID, error) {
	rel, err := db.Create(TokenSchema())
	if err != nil {
		return nil, err
	}
	rows := make([][]relstore.RowID, len(c.Docs))
	tokID := int64(0)
	for d := range c.Docs {
		doc := &c.Docs[d]
		rows[d] = make([]relstore.RowID, len(doc.Tokens))
		for i, t := range doc.Tokens {
			id, err := rel.Insert(relstore.Tuple{
				relstore.Int(tokID),
				relstore.Int(int64(doc.ID)),
				relstore.String(t.Str),
				relstore.String(init.String()),
				relstore.String(t.Gold.String()),
			})
			if err != nil {
				return nil, fmt.Errorf("ie: loading corpus: %w", err)
			}
			rows[d][i] = id
			tokID++
		}
	}
	return rows, nil
}

// Tagger holds the in-memory inference state for a corpus and implements
// both the MCMC proposal distribution of Section 5.1 and the SampleRank
// training interface. When bound to a change log, accepted proposals are
// written through to the TOKEN relation, feeding the Δ⁻/Δ⁺ tables.
type Tagger struct {
	Model *Model
	Docs  []*LabeledDoc

	// ConstrainBIO restricts proposals to labels that keep the BIO
	// encoding locally valid (the "more intelligent jump function"
	// suggested in Appendix 9.3). The constrained candidate set depends
	// only on unchanged neighbors, so proposals remain symmetric.
	ConstrainBIO bool

	// ActiveDocs and StepsPerBatch reproduce the paper's batching: up to
	// ActiveDocs documents' variables form the working set L, re-drawn
	// every StepsPerBatch proposals. Zero values mean "all documents /
	// never refresh".
	ActiveDocs    int
	StepsPerBatch int

	log  *world.ChangeLog
	rows [][]relstore.RowID

	active       []int
	sinceRefresh int
}

// NewTagger builds inference state for every document of the corpus.
func NewTagger(m *Model, c *Corpus, init Label) *Tagger {
	t := &Tagger{Model: m}
	for d := range c.Docs {
		t.Docs = append(t.Docs, NewLabeledDoc(&c.Docs[d], m.Vocab, init))
	}
	return t
}

// BindDB connects the tagger to a database change log so accepted label
// flips propagate to the TOKEN relation. rows must come from LoadCorpus
// on the same corpus.
func (t *Tagger) BindDB(log *world.ChangeLog, rows [][]relstore.RowID) error {
	if len(rows) != len(t.Docs) {
		return fmt.Errorf("ie: row map covers %d docs, tagger has %d", len(rows), len(t.Docs))
	}
	for d, ld := range t.Docs {
		if len(rows[d]) != len(ld.Labels) {
			return fmt.Errorf("ie: doc %d row map has %d tokens, want %d", d, len(rows[d]), len(ld.Labels))
		}
	}
	t.log = log
	t.rows = rows
	return nil
}

// refreshActive re-draws the working set of documents (Section 5.1: "up
// to five documents worth of variables ... selected uniformly at random").
func (t *Tagger) refreshActive(rng *rand.Rand) {
	if t.ActiveDocs <= 0 || t.ActiveDocs >= len(t.Docs) {
		t.active = nil // nil means "all docs"
		return
	}
	t.active = t.active[:0]
	for len(t.active) < t.ActiveDocs {
		t.active = append(t.active, rng.Intn(len(t.Docs)))
	}
}

// pick selects a (document, position) uniformly from the working set.
func (t *Tagger) pick(rng *rand.Rand) (int, int) {
	if t.StepsPerBatch > 0 {
		if t.sinceRefresh%t.StepsPerBatch == 0 {
			t.refreshActive(rng)
		}
		t.sinceRefresh++
	}
	var d int
	if t.active != nil {
		d = t.active[rng.Intn(len(t.active))]
	} else {
		d = rng.Intn(len(t.Docs))
	}
	ld := t.Docs[d]
	return d, rng.Intn(len(ld.Labels))
}

// candidate draws a proposed new label for position i of doc d.
func (t *Tagger) candidate(rng *rand.Rand, ld *LabeledDoc, i int) Label {
	if !t.ConstrainBIO {
		return Label(rng.Intn(NumLabels))
	}
	// Valid relabelings keep this position consistent with its left
	// neighbor and the right neighbor consistent with this position.
	var valid [NumLabels]Label
	n := 0
	for l := Label(0); l < NumLabels; l++ {
		if i > 0 && !l.ValidAfter(ld.Labels[i-1]) {
			continue
		}
		if i == 0 && l.IsInside() {
			continue
		}
		if i+1 < len(ld.Labels) && !ld.Labels[i+1].ValidAfter(l) {
			continue
		}
		valid[n] = l
		n++
	}
	if n == 0 {
		return ld.Labels[i]
	}
	return valid[rng.Intn(n)]
}

// apply commits a label flip to memory and, when bound, to the database.
func (t *Tagger) apply(d, i int, newLabel Label) {
	t.Docs[d].Labels[i] = newLabel
	if t.log != nil {
		ref := world.FieldRef{Rel: TokenRelation, Row: t.rows[d][i], Col: LabelCol}
		if err := t.log.SetField(ref, relstore.String(newLabel.String())); err != nil {
			// A row deleted by DML (the write path mutates evidence while
			// chains keep walking) simply stops mirroring: the in-memory
			// variable keeps being sampled, the store no longer holds the
			// tuple. Anything else is a program bug — the row map is
			// validated at BindDB time and labels come from the fixed
			// inventory.
			if errors.Is(err, relstore.ErrNotFound) {
				return
			}
			panic(fmt.Sprintf("ie: write-through failed: %v", err))
		}
	}
}

// Propose implements mcmc.Proposer: the proposal distribution of
// Section 5.1 (uniform variable, uniform label, symmetric).
func (t *Tagger) Propose(rng *rand.Rand) mcmc.Proposal {
	d, i := t.pick(rng)
	ld := t.Docs[d]
	newLabel := t.candidate(rng, ld, i)
	return mcmc.Proposal{
		LogScoreDelta: t.Model.ScoreDelta(ld, i, newLabel),
		Accept:        func() { t.apply(d, i, newLabel) },
	}
}

// ProposeRank implements learn.Proposer for SampleRank training. The
// objective is per-token accuracy against the gold labels.
func (t *Tagger) ProposeRank(rng *rand.Rand) learn.Proposal {
	d, i := t.pick(rng)
	ld := t.Docs[d]
	newLabel := t.candidate(rng, ld, i)
	obj := 0.0
	gold := ld.Doc.Tokens[i].Gold
	old := ld.Labels[i]
	if newLabel != old {
		if newLabel == gold {
			obj = 1
		} else if old == gold {
			obj = -1
		}
	}
	return learn.Proposal{
		FeatureDelta:   t.Model.FeatureDelta(ld, i, newLabel),
		ObjectiveDelta: obj,
		Accept:         func() { t.apply(d, i, newLabel) },
	}
}

// Accuracy returns the fraction of tokens whose current label matches
// gold.
func (t *Tagger) Accuracy() float64 {
	var ok, n float64
	for _, ld := range t.Docs {
		for i, l := range ld.Labels {
			if l == ld.Doc.Tokens[i].Gold {
				ok++
			}
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return ok / n
}

// SetAll sets every label (memory and database) to l; used to reset the
// world between experiments.
func (t *Tagger) SetAll(l Label) {
	for d, ld := range t.Docs {
		for i := range ld.Labels {
			if ld.Labels[i] != l {
				t.apply(d, i, l)
			}
		}
	}
}

// Train runs SampleRank over the corpus, returning the trainer for
// inspection. The paper trains with one million steps "in a matter of
// minutes"; tests use far fewer.
func (t *Tagger) Train(steps int, rate float64, seed int64) *learn.SampleRank {
	sr := learn.NewSampleRank(t.Model.W, t, rate, seed)
	sr.Walk = learn.WalkByObjective
	sr.Train(steps)
	return sr
}
