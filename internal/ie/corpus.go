package ie

import (
	"fmt"
	"math/rand"
)

// Token is one word of a document together with its gold label.
type Token struct {
	Str  string
	Gold Label
}

// Doc is a tokenized document.
type Doc struct {
	ID     int
	Tokens []Token
}

// Corpus is a collection of documents.
type Corpus struct {
	Docs      []Doc
	NumTokens int
}

// Lexicons used by the synthetic generator. Several strings are
// deliberately ambiguous across entity types ("Boston" is a location and
// an organization prefix, "Jordan" a person and a location), recreating
// the ambiguity that motivates the paper's Query 4.
var (
	firstNames = []string{
		"Hillary", "Bill", "Manny", "Theo", "Pedro", "David", "Maria",
		"John", "Laura", "Kevin", "Eli", "Jason", "Sarah", "Peter",
	}
	lastNames = []string{
		"Clinton", "Smith", "Ramirez", "Epstein", "Martinez", "Ortiz",
		"Johnson", "Beltran", "Jordan", "Chen", "Garcia", "Miller",
	}
	orgRoots = []string{
		"IBM", "Google", "Lockheed", "Raytheon", "Fidelity", "Verizon",
		"Boston", "Akamai", "Gillette", "Staples", "Biogen",
	}
	orgSuffixes = []string{"Corp", "Inc", "Partners", "Labs"}
	locations   = []string{
		"Boston", "Amherst", "Cambridge", "Springfield", "Worcester",
		"Jordan", "York", "Quincy", "Lowell",
	}
	miscNames = []string{
		"Olympics", "Grammys", "Superbowl", "Internet", "Frisbee",
	}
	fillers = []string{
		"the", "a", "said", "that", "spokesman", "for", "yesterday",
		"announced", "in", "of", "and", "reported", "has", "visited",
		"with", "during", "after", "meeting", "officials", "on", "plan",
		"new", "market", "shares", "game", "season", "city", "won",
	}
)

// GenConfig parameterizes the synthetic corpus generator.
type GenConfig struct {
	// NumTokens is the approximate total token count to generate.
	NumTokens int
	// TokensPerDoc is the approximate document length (the paper's NYT
	// sample averages ~5600 tokens per article across 1788 articles; the
	// default here is smaller to keep many documents at small scales).
	TokensPerDoc int
	// EntityRate is the probability that the next emission is an entity
	// mention rather than a filler token.
	EntityRate float64
	// RepeatRate is the probability that an entity mention repeats one of
	// the document's focus entities instead of drawing a fresh one. High
	// repeat rates create many identical strings per document, which is
	// what the skip-chain factors exploit.
	RepeatRate float64
	// LexiconSize expands each name lexicon to roughly this many distinct
	// strings by synthesizing names, so that — as in the paper's NYT
	// corpus — most entity strings are rare. Zero scales with NumTokens.
	LexiconSize int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultGenConfig returns the configuration used by the experiments.
func DefaultGenConfig(numTokens int, seed int64) GenConfig {
	return GenConfig{
		NumTokens:    numTokens,
		TokensPerDoc: 250,
		EntityRate:   0.18,
		RepeatRate:   0.45,
		Seed:         seed,
	}
}

type mention struct {
	strs   []string
	labels []Label
}

// lexicons holds the (possibly expanded) name inventories used during
// generation.
type lexicons struct {
	firsts, lasts, orgs, locs []string
}

var nameSyllables = []string{
	"ka", "ber", "lin", "mo", "ta", "rez", "sha", "vin", "dor", "mel",
	"qui", "nor", "bas", "tel", "gra", "zan", "pol", "fer", "wick", "ham",
}

// synthNames deterministically synthesizes n capitalized names.
func synthNames(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		k := 2 + rng.Intn(2)
		name := ""
		for i := 0; i < k; i++ {
			name += nameSyllables[rng.Intn(len(nameSyllables))]
		}
		name = string(name[0]-'a'+'A') + name[1:]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func buildLexicons(rng *rand.Rand, cfg GenConfig) lexicons {
	size := cfg.LexiconSize
	if size == 0 {
		// Roughly one distinct name per 60 tokens, as in news text where
		// most names occur in only a few articles.
		size = cfg.NumTokens / 60
		if size < 30 {
			size = 30
		}
		if size > 20000 {
			size = 20000
		}
	}
	lx := lexicons{
		firsts: append([]string{}, firstNames...),
		lasts:  append([]string{}, lastNames...),
		orgs:   append([]string{}, orgRoots...),
		locs:   append([]string{}, locations...),
	}
	grow := func(base []string, n int) []string {
		if n > len(base) {
			return append(base, synthNames(rng, n-len(base))...)
		}
		return base
	}
	lx.firsts = grow(lx.firsts, size/2)
	lx.lasts = grow(lx.lasts, size)
	lx.orgs = grow(lx.orgs, size/2)
	lx.locs = grow(lx.locs, size/4)
	return lx
}

// Generate produces a synthetic labeled corpus. The process per document:
// draw a small set of focus entities; emit filler tokens and mentions,
// where a mention is either a focus entity (repeated string → skip edges)
// or a fresh draw from the lexicons. Multi-token mentions exercise the
// BIO scheme.
func Generate(cfg GenConfig) (*Corpus, error) {
	if cfg.NumTokens <= 0 {
		return nil, fmt.Errorf("ie: NumTokens must be positive, got %d", cfg.NumTokens)
	}
	if cfg.TokensPerDoc <= 0 {
		cfg.TokensPerDoc = 250
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lx := buildLexicons(rng, cfg)
	c := &Corpus{}
	for c.NumTokens < cfg.NumTokens {
		doc := genDoc(rng, len(c.Docs), cfg, lx)
		c.NumTokens += len(doc.Tokens)
		c.Docs = append(c.Docs, doc)
	}
	return c, nil
}

func genDoc(rng *rand.Rand, id int, cfg GenConfig, lx lexicons) Doc {
	target := cfg.TokensPerDoc/2 + rng.Intn(cfg.TokensPerDoc)
	// Focus entities of this document, re-mentioned repeatedly.
	nFocus := 2 + rng.Intn(4)
	focus := make([]mention, nFocus)
	for i := range focus {
		focus[i] = freshMention(rng, lx)
	}
	doc := Doc{ID: id}
	for len(doc.Tokens) < target {
		if rng.Float64() < cfg.EntityRate {
			var m mention
			if rng.Float64() < cfg.RepeatRate {
				m = focus[rng.Intn(nFocus)]
			} else {
				m = freshMention(rng, lx)
			}
			for i := range m.strs {
				doc.Tokens = append(doc.Tokens, Token{Str: m.strs[i], Gold: m.labels[i]})
			}
		} else {
			doc.Tokens = append(doc.Tokens, Token{Str: fillers[rng.Intn(len(fillers))], Gold: LO})
		}
	}
	return doc
}

func freshMention(rng *rand.Rand, lx lexicons) mention {
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // person: First [Last]
		m := mention{strs: []string{lx.firsts[rng.Intn(len(lx.firsts))]}, labels: []Label{LBPer}}
		if rng.Float64() < 0.6 {
			m.strs = append(m.strs, lx.lasts[rng.Intn(len(lx.lasts))])
			m.labels = append(m.labels, LIPer)
		}
		return m
	case 4, 5, 6: // organization: Root [Suffix]
		m := mention{strs: []string{lx.orgs[rng.Intn(len(lx.orgs))]}, labels: []Label{LBOrg}}
		if rng.Float64() < 0.5 {
			m.strs = append(m.strs, orgSuffixes[rng.Intn(len(orgSuffixes))])
			m.labels = append(m.labels, LIOrg)
		}
		return m
	case 7, 8: // location, occasionally "New X"
		if rng.Float64() < 0.2 {
			return mention{strs: []string{"New", "York"}, labels: []Label{LBLoc, LILoc}}
		}
		return mention{strs: []string{lx.locs[rng.Intn(len(lx.locs))]}, labels: []Label{LBLoc}}
	default: // miscellaneous
		return mention{strs: []string{miscNames[rng.Intn(len(miscNames))]}, labels: []Label{LBMisc}}
	}
}

// Vocab interns token strings to dense integer ids for fast feature keys.
type Vocab struct {
	ids  map[string]int
	strs []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{ids: make(map[string]int)} }

// BuildVocab interns every distinct string of the corpus.
func BuildVocab(c *Corpus) *Vocab {
	v := NewVocab()
	for _, d := range c.Docs {
		for _, t := range d.Tokens {
			v.Intern(t.Str)
		}
	}
	return v
}

// Intern returns the id of s, assigning the next free id on first sight.
func (v *Vocab) Intern(s string) int {
	if id, ok := v.ids[s]; ok {
		return id
	}
	id := len(v.strs)
	v.ids[s] = id
	v.strs = append(v.strs, s)
	return id
}

// ID returns the id of s, or -1 when unknown.
func (v *Vocab) ID(s string) int {
	if id, ok := v.ids[s]; ok {
		return id
	}
	return -1
}

// Str returns the string with the given id.
func (v *Vocab) Str(id int) string { return v.strs[id] }

// Size returns the number of interned strings.
func (v *Vocab) Size() int { return len(v.strs) }
