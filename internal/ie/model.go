package ie

import (
	"unicode"

	"factordb/internal/learn"
)

// Feature-template identifiers packed into the high byte of feature keys.
const (
	tplEmission uint64 = 1 // (string id, label)
	tplTrans    uint64 = 2 // (label, label)
	tplBias     uint64 = 3 // (label)
	tplSkip     uint64 = 4 // (same/different label)
	tplCaps     uint64 = 5 // (capitalized?, label)
)

// EmissionKey packs the emission feature for (string id, label).
func EmissionKey(strID int, l Label) uint64 {
	return tplEmission<<56 | uint64(strID)<<8 | uint64(l)
}

// TransKey packs the first-order transition feature for (prev, next).
func TransKey(prev, next Label) uint64 {
	return tplTrans<<56 | uint64(prev)<<8 | uint64(next)
}

// BiasKey packs the per-label bias feature.
func BiasKey(l Label) uint64 { return tplBias<<56 | uint64(l) }

// SkipKey packs the skip-edge feature: same=true when the two endpoint
// labels agree.
func SkipKey(same bool) uint64 {
	if same {
		return tplSkip<<56 | 1
	}
	return tplSkip << 56
}

// CapsKey packs the capitalization feature for (capitalized, label).
func CapsKey(caps bool, l Label) uint64 {
	k := tplCaps<<56 | uint64(l)
	if caps {
		k |= 1 << 16
	}
	return k
}

// Model is the skip-chain conditional random field of Section 5.1: a
// linear-chain CRF (emission, capitalization, transition and bias factor
// templates) plus skip factors connecting identically spelled capitalized
// tokens within a document. The skip edges make the unrolled graph loopy,
// so exact inference is intractable — which is exactly the regime the
// paper's MCMC evaluator targets.
type Model struct {
	W       *learn.Weights
	Vocab   *Vocab
	UseSkip bool
}

// NewModel builds an untrained model over the vocabulary.
func NewModel(v *Vocab, useSkip bool) *Model {
	return &Model{W: learn.NewWeights(), Vocab: v, UseSkip: useSkip}
}

// IsCapitalized reports whether the token string starts with an uppercase
// letter; only capitalized tokens participate in skip edges (following
// Sutton & McCallum's skip-chain formulation).
func IsCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// LabeledDoc is a document with a current label hypothesis: the in-memory
// working copy of the hidden variables that the paper keeps in main memory
// while the DBMS holds the tuples (Section 5).
type LabeledDoc struct {
	Doc    *Doc
	Labels []Label
	strIDs []int
	caps   []bool
	// skip[i] lists the positions sharing token i's (capitalized) string.
	skip [][]int32
}

// NewLabeledDoc prepares inference state for doc with all labels
// initialized to init (the paper initializes LABEL to "O").
func NewLabeledDoc(doc *Doc, v *Vocab, init Label) *LabeledDoc {
	n := len(doc.Tokens)
	ld := &LabeledDoc{
		Doc:    doc,
		Labels: make([]Label, n),
		strIDs: make([]int, n),
		caps:   make([]bool, n),
		skip:   make([][]int32, n),
	}
	byStr := make(map[int][]int32)
	for i, t := range doc.Tokens {
		ld.Labels[i] = init
		ld.strIDs[i] = v.Intern(t.Str)
		ld.caps[i] = IsCapitalized(t.Str)
		if ld.caps[i] {
			byStr[ld.strIDs[i]] = append(byStr[ld.strIDs[i]], int32(i))
		}
	}
	for _, positions := range byStr {
		if len(positions) < 2 {
			continue
		}
		for _, p := range positions {
			for _, q := range positions {
				if p != q {
					ld.skip[p] = append(ld.skip[p], q)
				}
			}
		}
	}
	return ld
}

// SkipDegree returns the number of skip partners of position i.
func (ld *LabeledDoc) SkipDegree(i int) int { return len(ld.skip[i]) }

// localFeatures accumulates sign×φ for every factor touching position i
// under label l into fv. It covers emission, capitalization, bias, the two
// incident transitions and all incident skip edges — the only factors
// whose value changes when position i changes (Appendix 9.2).
func (m *Model) localFeatures(fv learn.FeatureVector, ld *LabeledDoc, i int, l Label, sign float64) {
	fv.Add(EmissionKey(ld.strIDs[i], l), sign)
	fv.Add(CapsKey(ld.caps[i], l), sign)
	fv.Add(BiasKey(l), sign)
	if i > 0 {
		fv.Add(TransKey(ld.Labels[i-1], l), sign)
	}
	if i+1 < len(ld.Labels) {
		fv.Add(TransKey(l, ld.Labels[i+1]), sign)
	}
	if m.UseSkip {
		for _, q := range ld.skip[i] {
			fv.Add(SkipKey(ld.Labels[q] == l), sign)
		}
	}
}

// localScore sums θ·φ over the factors touching position i under label l.
func (m *Model) localScore(ld *LabeledDoc, i int, l Label) float64 {
	w := m.W
	s := w.Get(EmissionKey(ld.strIDs[i], l)) +
		w.Get(CapsKey(ld.caps[i], l)) +
		w.Get(BiasKey(l))
	if i > 0 {
		s += w.Get(TransKey(ld.Labels[i-1], l))
	}
	if i+1 < len(ld.Labels) {
		s += w.Get(TransKey(l, ld.Labels[i+1]))
	}
	if m.UseSkip {
		for _, q := range ld.skip[i] {
			s += w.Get(SkipKey(ld.Labels[q] == l))
		}
	}
	return s
}

// ScoreDelta returns log π(w') − log π(w) for relabeling position i of ld
// to newLabel. Only the factors adjacent to the changed variable are
// computed; everything else cancels in the MH ratio. The cost is constant
// in the database size (plus the skip degree of the token).
func (m *Model) ScoreDelta(ld *LabeledDoc, i int, newLabel Label) float64 {
	old := ld.Labels[i]
	if newLabel == old {
		return 0
	}
	return m.localScore(ld, i, newLabel) - m.localScore(ld, i, old)
}

// FeatureDelta returns φ(w') − φ(w) for the same relabeling, used by
// SampleRank training.
func (m *Model) FeatureDelta(ld *LabeledDoc, i int, newLabel Label) learn.FeatureVector {
	fv := make(learn.FeatureVector)
	old := ld.Labels[i]
	if newLabel == old {
		return fv
	}
	m.localFeatures(fv, ld, i, old, -1)
	m.localFeatures(fv, ld, i, newLabel, +1)
	return fv
}

// DocScore computes the full unnormalized log score of a document under
// the current hypothesis. Used only by tests and diagnostics; inference
// never needs it.
func (m *Model) DocScore(ld *LabeledDoc) float64 {
	w := m.W
	var s float64
	for i, l := range ld.Labels {
		s += w.Get(EmissionKey(ld.strIDs[i], l)) +
			w.Get(CapsKey(ld.caps[i], l)) +
			w.Get(BiasKey(l))
		if i > 0 {
			s += w.Get(TransKey(ld.Labels[i-1], l))
		}
	}
	if m.UseSkip {
		// Each unordered skip pair counts once.
		for i := range ld.Labels {
			for _, q := range ld.skip[i] {
				if int32(i) < q {
					s += w.Get(SkipKey(ld.Labels[q] == ld.Labels[i]))
				}
			}
		}
	}
	return s
}

// FactorsTouched returns how many factor evaluations one ScoreDelta at
// position i costs (for the ablation benchmarks of DESIGN.md).
func (m *Model) FactorsTouched(ld *LabeledDoc, i int) int {
	n := 3 // emission + caps + bias
	if i > 0 {
		n++
	}
	if i+1 < len(ld.Labels) {
		n++
	}
	if m.UseSkip {
		n += len(ld.skip[i])
	}
	return 2 * n // evaluated under both the old and the new label
}
