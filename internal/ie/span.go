package ie

import (
	"math/rand"

	"factordb/internal/mcmc"
)

// Block proposals: instead of flipping one label, hypothesize a joint
// relabeling of a short token span — either clearing it to O or writing a
// well-formed mention (B-T I-T ... I-T). A single accepted proposal then
// changes several tuples at once, producing the multi-tuple Δ⁻/Δ⁺ sets of
// Figure 2 in one step and crossing energy barriers (half-relabelled
// mentions) that single-site walks climb slowly.

// maxSpanLen bounds the proposed mention length.
const maxSpanLen = 3

// regionScore sums every factor whose value can change when positions
// [i, i+n) of the document are relabelled: their node factors, the
// transitions overlapping the span, and each incident skip edge exactly
// once.
func (m *Model) regionScore(ld *LabeledDoc, i, n int) float64 {
	w := m.W
	var s float64
	end := i + n
	for j := i; j < end; j++ {
		l := ld.Labels[j]
		s += w.Get(EmissionKey(ld.strIDs[j], l)) +
			w.Get(CapsKey(ld.caps[j], l)) +
			w.Get(BiasKey(l))
	}
	if i > 0 {
		s += w.Get(TransKey(ld.Labels[i-1], ld.Labels[i]))
	}
	for j := i + 1; j < end; j++ {
		s += w.Get(TransKey(ld.Labels[j-1], ld.Labels[j]))
	}
	if end < len(ld.Labels) {
		s += w.Get(TransKey(ld.Labels[end-1], ld.Labels[end]))
	}
	if m.UseSkip {
		for j := i; j < end; j++ {
			for _, q := range ld.skip[j] {
				// Count inside-span pairs once (smaller index wins);
				// pairs with one endpoint outside always belong to j.
				if int(q) >= i && int(q) < end && int(q) < j {
					continue
				}
				s += w.Get(SkipKey(ld.Labels[q] == ld.Labels[j]))
			}
		}
	}
	return s
}

// SpanScoreDelta returns log π(w') − log π(w) for jointly relabelling
// positions [i, i+len(newLabels)) to newLabels.
func (m *Model) SpanScoreDelta(ld *LabeledDoc, i int, newLabels []Label) float64 {
	n := len(newLabels)
	before := m.regionScore(ld, i, n)
	saved := make([]Label, n)
	copy(saved, ld.Labels[i:i+n])
	copy(ld.Labels[i:], newLabels)
	after := m.regionScore(ld, i, n)
	copy(ld.Labels[i:], saved)
	return after - before
}

// SpanProposer wraps a Tagger with block proposals. The kernel only
// moves between worlds whose span content is one of the five candidate
// patterns (all-O or a type-T mention): if the current content is not a
// pattern, the step is a no-op. Within that subspace the candidate set
// depends only on the span's position and length, so the kernel is
// symmetric and reversible; mixing it with the single-site kernel (which
// reaches every world) keeps the chain ergodic.
type SpanProposer struct {
	Tagger *Tagger
}

// spanPattern writes candidate pattern c (0 = all-O, 1..4 = mention of
// type c) for a span of length n into dst.
func spanPattern(c, n int, dst []Label) {
	if c == 0 {
		for j := 0; j < n; j++ {
			dst[j] = LO
		}
		return
	}
	begin := Label(1 + 2*(c-1)) // B-PER, B-ORG, B-LOC, B-MISC
	dst[0] = begin
	for j := 1; j < n; j++ {
		dst[j] = begin + 1 // matching I-T
	}
}

// isSpanPattern reports whether labels matches one of the candidate
// patterns.
func isSpanPattern(labels []Label) bool {
	var buf [maxSpanLen]Label
	for c := 0; c < 5; c++ {
		spanPattern(c, len(labels), buf[:])
		match := true
		for j, l := range labels {
			if buf[j] != l {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Propose implements mcmc.Proposer.
func (sp *SpanProposer) Propose(rng *rand.Rand) mcmc.Proposal {
	t := sp.Tagger
	d, i := t.pick(rng)
	ld := t.Docs[d]
	n := 1 + rng.Intn(maxSpanLen)
	if i+n > len(ld.Labels) {
		n = len(ld.Labels) - i
	}
	// Reversibility guard: the reverse move must be proposable, i.e. the
	// current span content must itself be a candidate pattern.
	if !isSpanPattern(ld.Labels[i : i+n]) {
		return mcmc.Proposal{}
	}
	var newLabels [maxSpanLen]Label
	spanPattern(rng.Intn(5), n, newLabels[:])
	delta := m0(t).SpanScoreDelta(ld, i, newLabels[:n])
	return mcmc.Proposal{
		LogScoreDelta: delta,
		Accept: func() {
			for j := 0; j < n; j++ {
				if ld.Labels[i+j] != newLabels[j] {
					t.apply(d, i+j, newLabels[j])
				}
			}
		},
	}
}

func m0(t *Tagger) *Model { return t.Model }

// MixedProposer interleaves single-site and block proposals, choosing a
// block move with probability BlockProb. Mixtures of symmetric kernels
// remain symmetric.
type MixedProposer struct {
	Tagger    *Tagger
	BlockProb float64

	span SpanProposer
}

// NewMixedProposer builds the mixture kernel.
func NewMixedProposer(t *Tagger, blockProb float64) *MixedProposer {
	return &MixedProposer{Tagger: t, BlockProb: blockProb, span: SpanProposer{Tagger: t}}
}

// Propose implements mcmc.Proposer.
func (mp *MixedProposer) Propose(rng *rand.Rand) mcmc.Proposal {
	if rng.Float64() < mp.BlockProb {
		return mp.span.Propose(rng)
	}
	return mp.Tagger.Propose(rng)
}
