package factor

import (
	"math"
	"testing"

	"factordb/internal/relstore"
)

// miniTokenRel builds a 4-token TOKEN relation for unrolling.
func miniTokenRel(t *testing.T) *relstore.Relation {
	t.Helper()
	rel := relstore.NewRelation(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	for i, s := range []string{"IBM", "said", "IBM", "won"} {
		if _, err := rel.Insert(relstore.Tuple{
			relstore.Int(int64(i)), relstore.String(s), relstore.String("O"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// nerTemplates builds emission, transition and skip templates mirroring
// Figure 3's model at fixed weights.
func nerTemplates() (emit *UnaryTemplate, trans, skip *PairTemplate) {
	emit = &UnaryTemplate{
		Name: "emission",
		Score: func(t relstore.Tuple, val int) float64 {
			if t[1].AsString() == "IBM" && val == 1 {
				return 2.0
			}
			return 0
		},
	}
	trans = &PairTemplate{
		Name: "transition",
		Match: func(rows []RowBinding, a, b int) bool {
			return b == a+1 // consecutive tokens
		},
		Score: func(_, _ relstore.Tuple, va, vb int) float64 {
			if va == vb {
				return 0.5
			}
			return -0.5
		},
	}
	skip = &PairTemplate{
		Name: "skip",
		Match: func(rows []RowBinding, a, b int) bool {
			return b > a+1 && rows[a].Tuple[1].Equal(rows[b].Tuple[1])
		},
		Score: func(_, _ relstore.Tuple, va, vb int) float64 {
			if va == vb {
				return 1.0
			}
			return -1.0
		},
	}
	return emit, trans, skip
}

func TestUnrollStructure(t *testing.T) {
	rel := miniTokenRel(t)
	dom := NewDomain("label", "O", "B-ORG")
	emit, trans, skip := nerTemplates()
	ug, err := Unroll(rel, 2, dom, emit, trans, skip)
	if err != nil {
		t.Fatal(err)
	}
	// 4 vars; 4 emissions + 3 transitions + 1 skip (IBM at 0 and 2).
	if got := len(ug.Graph.Vars); got != 4 {
		t.Fatalf("vars = %d", got)
	}
	if got := len(ug.Graph.Factors); got != 8 {
		t.Fatalf("factors = %d, want 8", got)
	}
	// Every variable initialized from the LABEL field ("O" = index 0).
	for _, v := range ug.Graph.Vars {
		if v.Val != 0 {
			t.Errorf("variable %s initialized to %d", v.Name, v.Val)
		}
	}
	// Token 0 (IBM) touches: its emission, one transition, one skip.
	v0 := ug.VarOf[0]
	if got := len(ug.Graph.Neighbors(v0)); got != 3 {
		t.Errorf("var 0 neighbors = %d, want 3", got)
	}
}

func TestUnrolledScoreMatchesManual(t *testing.T) {
	rel := miniTokenRel(t)
	dom := NewDomain("label", "O", "B-ORG")
	emit, trans, skip := nerTemplates()
	ug, err := Unroll(rel, 2, dom, emit, trans, skip)
	if err != nil {
		t.Fatal(err)
	}
	// Assign: IBM→B-ORG, said→O, IBM→B-ORG, won→O.
	if err := ug.Graph.SetAssignment([]int{1, 0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	// Manual: emissions 2+0+2+0; transitions -0.5,-0.5,-0.5; skip +1.
	want := 4.0 - 1.5 + 1.0
	if got := ug.Graph.LogScore(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogScore = %v, want %v", got, want)
	}
	// Exact marginals run on the unrolled graph (the testing-oracle use).
	marg, err := ug.Graph.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	// The two IBM tokens are coupled by the skip factor and share an
	// emission preference, so both should favor B-ORG equally strongly.
	if math.Abs(marg[0][1]-marg[2][1]) > 1e-9 {
		t.Errorf("coupled IBM marginals differ: %v vs %v", marg[0][1], marg[2][1])
	}
	if marg[0][1] < 0.7 {
		t.Errorf("IBM B-ORG marginal = %v, want strong", marg[0][1])
	}
}

func TestUnrollErrors(t *testing.T) {
	rel := miniTokenRel(t)
	dom := NewDomain("label", "O", "B-ORG")
	if _, err := Unroll(rel, 99, dom); err == nil {
		t.Error("bad column: want error")
	}
	if _, err := Unroll(rel, 2, dom); err != nil {
		t.Errorf("no templates should be fine: %v", err)
	}
}
