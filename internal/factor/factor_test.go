package factor

import (
	"math"
	"math/rand"
	"testing"
)

// chainGraph builds a small chain MRF with random log-linear potentials.
func chainGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	dom := NewDomain("bit", "0", "1")
	g := NewGraph()
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = g.AddVar("y", dom)
		w := rng.NormFloat64()
		g.MustAddFactor("bias", func(vals []int) float64 {
			if vals[0] == 1 {
				return w
			}
			return 0
		}, vars[i])
	}
	for i := 1; i < n; i++ {
		w := rng.NormFloat64()
		g.MustAddFactor("trans", func(vals []int) float64 {
			if vals[0] == vals[1] {
				return w
			}
			return -w
		}, vars[i-1], vars[i])
	}
	return g
}

func TestDomain(t *testing.T) {
	d := NewDomain("labels", "O", "B-PER", "I-PER")
	if d.Size() != 3 {
		t.Errorf("Size = %d", d.Size())
	}
	if d.Index("B-PER") != 1 || d.Index("NOPE") != -1 {
		t.Error("Index lookup broken")
	}
}

func TestLogScoreIsSumOfFactors(t *testing.T) {
	g := chainGraph(4, 1)
	var manual float64
	for _, f := range g.Factors {
		vals := make([]int, len(f.Vars))
		for i, v := range f.Vars {
			vals[i] = v.Val
		}
		manual += f.Score(vals)
	}
	if got := g.LogScore(); math.Abs(got-manual) > 1e-12 {
		t.Errorf("LogScore = %v, want %v", got, manual)
	}
}

// TestScoreDeltaMatchesFullRescore verifies the factor-cancellation
// identity of Appendix 9.2: the local delta equals a full-graph rescore.
func TestScoreDeltaMatchesFullRescore(t *testing.T) {
	g := chainGraph(6, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		v := g.Vars[rng.Intn(len(g.Vars))]
		newVal := rng.Intn(v.Dom.Size())
		before := g.LogScore()
		delta := g.ScoreDelta(v, newVal)
		old := v.Val
		v.Val = newVal
		after := g.LogScore()
		v.Val = old
		if math.Abs(delta-(after-before)) > 1e-9 {
			t.Fatalf("trial %d: ScoreDelta = %v, full rescore = %v", trial, delta, after-before)
		}
	}
}

func TestScoreDeltaNoChangeIsZero(t *testing.T) {
	g := chainGraph(3, 4)
	if d := g.ScoreDelta(g.Vars[0], g.Vars[0].Val); d != 0 {
		t.Errorf("self-assignment delta = %v, want 0", d)
	}
}

func TestScoreDeltaDoesNotMutate(t *testing.T) {
	g := chainGraph(3, 5)
	before := g.Assignment()
	g.ScoreDelta(g.Vars[1], 1-g.Vars[1].Val)
	after := g.Assignment()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("ScoreDelta mutated the assignment")
		}
	}
}

func TestExactMarginalsUniform(t *testing.T) {
	// A graph whose only factor is constant: marginals must be uniform.
	dom := NewDomain("d", "a", "b", "c")
	g := NewGraph()
	v := g.AddVar("v", dom)
	g.MustAddFactor("const", func([]int) float64 { return 1.5 }, v)
	m, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m[0] {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("marginal = %v, want uniform", m[0])
		}
	}
}

func TestExactMarginalsSingleVarBias(t *testing.T) {
	// One binary var with bias w on value 1: P(1) = e^w / (1 + e^w).
	dom := NewDomain("bit", "0", "1")
	g := NewGraph()
	v := g.AddVar("v", dom)
	w := 0.7
	g.MustAddFactor("bias", func(vals []int) float64 {
		if vals[0] == 1 {
			return w
		}
		return 0
	}, v)
	m, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(w) / (1 + math.Exp(w))
	if math.Abs(m[0][1]-want) > 1e-12 {
		t.Errorf("P(1) = %v, want %v", m[0][1], want)
	}
}

func TestExactMarginalsSumToOne(t *testing.T) {
	g := chainGraph(5, 6)
	m, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	for i, dist := range m {
		var s float64
		for _, p := range dist {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("var %d marginals sum to %v", i, s)
		}
	}
}

func TestExactProb(t *testing.T) {
	g := chainGraph(4, 7)
	m, err := g.ExactMarginals()
	if err != nil {
		t.Fatal(err)
	}
	// The event "var 2 equals 1" must agree with its marginal.
	p, err := g.ExactProb(func(a []int) bool { return a[2] == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-m[2][1]) > 1e-12 {
		t.Errorf("ExactProb = %v, marginal = %v", p, m[2][1])
	}
	// Impossible event.
	p, _ = g.ExactProb(func([]int) bool { return false })
	if p != 0 {
		t.Errorf("impossible event prob = %v", p)
	}
	// Certain event.
	p, _ = g.ExactProb(func([]int) bool { return true })
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("certain event prob = %v", p)
	}
}

func TestDeterministicConstraintFactor(t *testing.T) {
	// Section 3.2: deterministic factors zero out impossible worlds. In
	// log space a violated constraint scores -Inf.
	dom := NewDomain("bit", "0", "1")
	g := NewGraph()
	a := g.AddVar("a", dom)
	b := g.AddVar("b", dom)
	g.MustAddFactor("eq", func(vals []int) float64 {
		if vals[0] == vals[1] {
			return 0
		}
		return math.Inf(-1)
	}, a, b)
	p, err := g.ExactProb(func(as []int) bool { return as[0] != as[1] })
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("constraint-violating worlds have prob %v, want 0", p)
	}
}

func TestEnumerationLimit(t *testing.T) {
	dom := NewDomain("big", make([]string, 1<<12)...)
	g := NewGraph()
	a := g.AddVar("a", dom)
	b := g.AddVar("b", dom)
	g.MustAddFactor("f", func([]int) float64 { return 0 }, a, b)
	if _, err := g.ExactMarginals(); err == nil {
		t.Error("oversized enumeration should error")
	}
}

func TestAddFactorValidation(t *testing.T) {
	g := NewGraph()
	dom := NewDomain("bit", "0", "1")
	v := g.AddVar("v", dom)
	if _, err := g.AddFactor("empty", func([]int) float64 { return 0 }); err == nil {
		t.Error("factor with no variables: want error")
	}
	other := NewGraph().AddVar("w", dom)
	if _, err := g.AddFactor("foreign", func([]int) float64 { return 0 }, other); err == nil {
		t.Error("factor over foreign variable: want error")
	}
	if _, err := g.AddFactor("ok", func([]int) float64 { return 0 }, v); err != nil {
		t.Errorf("valid factor rejected: %v", err)
	}
}

func TestSetAssignmentValidation(t *testing.T) {
	g := chainGraph(3, 8)
	if err := g.SetAssignment([]int{0}); err == nil {
		t.Error("short assignment: want error")
	}
	if err := g.SetAssignment([]int{0, 5, 0}); err == nil {
		t.Error("out-of-domain assignment: want error")
	}
	if err := g.SetAssignment([]int{1, 0, 1}); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

func TestLogLinear(t *testing.T) {
	phi := func(vals []int) []float64 { return []float64{float64(vals[0]), 1} }
	theta := []float64{2, -1}
	score := LogLinear(phi, theta)
	if got := score([]int{3}); got != 5 {
		t.Errorf("LogLinear = %v, want 5", got)
	}
}

func TestNeighbors(t *testing.T) {
	g := chainGraph(3, 9)
	// Middle variable touches: its bias + two transitions.
	if got := len(g.Neighbors(g.Vars[1])); got != 3 {
		t.Errorf("middle var neighbors = %d, want 3", got)
	}
	if got := len(g.Neighbors(g.Vars[0])); got != 2 {
		t.Errorf("end var neighbors = %d, want 2", got)
	}
}
