package factor

import (
	"fmt"

	"factordb/internal/relstore"
)

// Factor templates (Section 3.3, Figure 1): a template expresses a
// relationship pattern between classes of random variables; unrolling
// instantiates one concrete factor for every match of the pattern against
// a database relation. The MCMC evaluator never needs the fully unrolled
// graph — package ie scores templates lazily — but explicit unrolling is
// exactly what Figure 1's Panes C and E depict, and it lets small worlds
// be checked against the enumeration oracle.

// FieldVar binds a hidden database field (a row's column) to a graph
// variable.
type FieldVar struct {
	Row relstore.RowID
	Var *Var
}

// UnrolledGraph is a factor graph whose variables correspond to uncertain
// fields of one relation.
type UnrolledGraph struct {
	Graph *Graph
	// VarOf maps a row id to the hidden variable of its uncertain field.
	VarOf map[relstore.RowID]*Var
}

// Template instantiates factors over the hidden variables of rows.
type Template interface {
	// UnrollRow adds the factors anchored at the given row. rows lists
	// all rows of the relation in primary scan order; idx is the
	// position of the anchor row. Implementations must add each factor
	// exactly once (for pairwise templates, only when the anchor is the
	// lexicographically first endpoint).
	UnrollRow(g *UnrolledGraph, rows []RowBinding, idx int) error
}

// RowBinding pairs a row with its tuple for template matching.
type RowBinding struct {
	Row   relstore.RowID
	Tuple relstore.Tuple
	Var   *Var
}

// Unroll instantiates the templates over every row of the relation,
// creating one hidden variable per row (for the uncertain column) with
// the given domain. Rows are processed in ascending RowID order so
// templates can rely on sequence adjacency (e.g. linear-chain
// transitions within a document).
func Unroll(rel *relstore.Relation, uncertainCol int, dom *Domain, templates ...Template) (*UnrolledGraph, error) {
	if uncertainCol < 0 || uncertainCol >= rel.Schema().Arity() {
		return nil, fmt.Errorf("factor: uncertain column %d out of range for %q", uncertainCol, rel.Schema().Name)
	}
	ug := &UnrolledGraph{Graph: NewGraph(), VarOf: make(map[relstore.RowID]*Var, rel.Len())}
	var rows []RowBinding
	rel.ScanSorted(func(id relstore.RowID, t relstore.Tuple) bool {
		v := ug.Graph.AddVar(fmt.Sprintf("%s[%d].%s", rel.Schema().Name, id, rel.Schema().Cols[uncertainCol].Name), dom)
		// Initialize the variable from the field's current value when it
		// is in the domain.
		if i := dom.Index(t[uncertainCol].String()); i >= 0 {
			v.Val = i
		}
		ug.VarOf[id] = v
		rows = append(rows, RowBinding{Row: id, Tuple: t, Var: v})
		return true
	})
	for _, tpl := range templates {
		for i := range rows {
			if err := tpl.UnrollRow(ug, rows, i); err != nil {
				return nil, err
			}
		}
	}
	return ug, nil
}

// UnaryTemplate instantiates one factor per row whose score depends on
// the row's observed tuple and its hidden value (emission/bias factors).
type UnaryTemplate struct {
	Name string
	// Score maps (observed tuple, hidden value index) to a log score.
	Score func(t relstore.Tuple, val int) float64
}

// UnrollRow implements Template.
func (u *UnaryTemplate) UnrollRow(g *UnrolledGraph, rows []RowBinding, idx int) error {
	rb := rows[idx]
	_, err := g.Graph.AddFactor(u.Name, func(vals []int) float64 {
		return u.Score(rb.Tuple, vals[0])
	}, rb.Var)
	return err
}

// PairTemplate instantiates one factor per matching ordered pair of rows
// (anchor first). Match decides whether two rows are related —
// adjacency for transition factors, identical strings for skip factors,
// and so on.
type PairTemplate struct {
	Name string
	// Match reports whether rows a (anchor) and b participate, scanning
	// b over positions after the anchor only, so each pair unrolls once.
	Match func(rows []RowBinding, a, b int) bool
	// Score maps the two tuples and hidden values to a log score.
	Score func(ta, tb relstore.Tuple, va, vb int) float64
}

// UnrollRow implements Template.
func (p *PairTemplate) UnrollRow(g *UnrolledGraph, rows []RowBinding, idx int) error {
	a := rows[idx]
	for j := idx + 1; j < len(rows); j++ {
		if !p.Match(rows, idx, j) {
			continue
		}
		b := rows[j]
		if _, err := g.Graph.AddFactor(p.Name, func(vals []int) float64 {
			return p.Score(a.Tuple, b.Tuple, vals[0], vals[1])
		}, a.Var, b.Var); err != nil {
			return err
		}
	}
	return nil
}
