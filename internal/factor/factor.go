// Package factor implements discrete factor graphs: bipartite graphs of
// random variables and log-space factors expressing an unnormalized
// probability distribution over assignments (Section 3.1 of the paper).
//
// Two usage styles are supported. Explicit graphs (Graph) materialize all
// variables and factors and provide brute-force exact marginals, serving
// as the correctness oracle for the MCMC sampler. Template-based models
// (package ie, package coref) never instantiate the full graph; they score
// only the factors touching a proposed change, which is what makes MCMC
// over large databases tractable (Appendix 9.2).
package factor

import (
	"fmt"
	"math"
)

// Domain is the finite value set of a discrete random variable.
type Domain struct {
	Name   string
	Values []string
}

// NewDomain builds a domain from its value names.
func NewDomain(name string, values ...string) *Domain {
	return &Domain{Name: name, Values: values}
}

// Size returns the number of values.
func (d *Domain) Size() int { return len(d.Values) }

// Index returns the position of the named value, or -1.
func (d *Domain) Index(value string) int {
	for i, v := range d.Values {
		if v == value {
			return i
		}
	}
	return -1
}

// Var is a hidden discrete random variable with a current value, indexed
// into its domain. Observed quantities are not modelled as Vars; they are
// baked into factor closures as constants.
type Var struct {
	ID   int
	Name string
	Dom  *Domain
	Val  int
}

// Value returns the name of the variable's current value.
func (v *Var) Value() string { return v.Dom.Values[v.Val] }

// Factor scores the joint setting of its argument variables in log space.
// Score must be a pure function of the argument values.
type Factor struct {
	Name  string
	Vars  []*Var
	Score func(vals []int) float64
}

// Graph is an explicitly materialized factor graph.
type Graph struct {
	Vars    []*Var
	Factors []*Factor
	adj     [][]int // var ID -> indexes into Factors
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddVar creates a hidden variable with an initial value of 0.
func (g *Graph) AddVar(name string, dom *Domain) *Var {
	v := &Var{ID: len(g.Vars), Name: name, Dom: dom}
	g.Vars = append(g.Vars, v)
	g.adj = append(g.adj, nil)
	return v
}

// AddFactor attaches a factor over the given variables.
func (g *Graph) AddFactor(name string, score func(vals []int) float64, vars ...*Var) (*Factor, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("factor: factor %q has no variables", name)
	}
	for _, v := range vars {
		if v.ID >= len(g.Vars) || g.Vars[v.ID] != v {
			return nil, fmt.Errorf("factor: factor %q references a variable not in this graph", name)
		}
	}
	f := &Factor{Name: name, Vars: vars, Score: score}
	idx := len(g.Factors)
	g.Factors = append(g.Factors, f)
	for _, v := range vars {
		g.adj[v.ID] = append(g.adj[v.ID], idx)
	}
	return f, nil
}

// MustAddFactor is AddFactor that panics on error.
func (g *Graph) MustAddFactor(name string, score func(vals []int) float64, vars ...*Var) *Factor {
	f, err := g.AddFactor(name, score, vars...)
	if err != nil {
		panic(err)
	}
	return f
}

// Neighbors returns the factors touching v.
func (g *Graph) Neighbors(v *Var) []*Factor {
	out := make([]*Factor, len(g.adj[v.ID]))
	for i, fi := range g.adj[v.ID] {
		out[i] = g.Factors[fi]
	}
	return out
}

func (g *Graph) scoreFactor(f *Factor) float64 {
	vals := make([]int, len(f.Vars))
	for i, v := range f.Vars {
		vals[i] = v.Val
	}
	return f.Score(vals)
}

// LogScore returns the unnormalized log probability of the current
// assignment: the sum of all factor scores.
func (g *Graph) LogScore() float64 {
	var s float64
	for _, f := range g.Factors {
		s += g.scoreFactor(f)
	}
	return s
}

// ScoreDelta returns log π(w') − log π(w) for the single-variable change
// v := newVal, computing only the factors adjacent to v. This is the
// factor-cancellation identity of Appendix 9.2: all other factors cancel
// in the Metropolis-Hastings ratio.
func (g *Graph) ScoreDelta(v *Var, newVal int) float64 {
	if newVal == v.Val {
		return 0
	}
	old := v.Val
	var before, after float64
	for _, fi := range g.adj[v.ID] {
		before += g.scoreFactor(g.Factors[fi])
	}
	v.Val = newVal
	for _, fi := range g.adj[v.ID] {
		after += g.scoreFactor(g.Factors[fi])
	}
	v.Val = old
	return after - before
}

// Assignment snapshots the current values of all variables.
func (g *Graph) Assignment() []int {
	out := make([]int, len(g.Vars))
	for i, v := range g.Vars {
		out[i] = v.Val
	}
	return out
}

// SetAssignment restores a snapshot taken with Assignment.
func (g *Graph) SetAssignment(a []int) error {
	if len(a) != len(g.Vars) {
		return fmt.Errorf("factor: assignment length %d, want %d", len(a), len(g.Vars))
	}
	for i, v := range g.Vars {
		if a[i] < 0 || a[i] >= v.Dom.Size() {
			return fmt.Errorf("factor: value %d out of domain for variable %q", a[i], v.Name)
		}
		v.Val = a[i]
	}
	return nil
}

// stateSpaceLimit bounds brute-force enumeration.
const stateSpaceLimit = 1 << 22

// enumerate calls fn with every joint assignment and its unnormalized log
// score, restoring the original assignment afterwards.
func (g *Graph) enumerate(fn func(assign []int, logScore float64)) error {
	space := 1
	for _, v := range g.Vars {
		if v.Dom.Size() == 0 {
			return fmt.Errorf("factor: variable %q has empty domain", v.Name)
		}
		space *= v.Dom.Size()
		if space > stateSpaceLimit {
			return fmt.Errorf("factor: state space exceeds enumeration limit %d", stateSpaceLimit)
		}
	}
	saved := g.Assignment()
	defer g.SetAssignment(saved)

	assign := make([]int, len(g.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(g.Vars) {
			for j, v := range g.Vars {
				v.Val = assign[j]
			}
			fn(assign, g.LogScore())
			return
		}
		for val := 0; val < g.Vars[i].Dom.Size(); val++ {
			assign[i] = val
			rec(i + 1)
		}
	}
	rec(0)
	return nil
}

// ExactMarginals computes P(V_i = v) for every variable and value by
// brute-force enumeration. Only feasible for small graphs; used as the
// testing oracle for the MCMC sampler.
func (g *Graph) ExactMarginals() ([][]float64, error) {
	out := make([][]float64, len(g.Vars))
	for i, v := range g.Vars {
		out[i] = make([]float64, v.Dom.Size())
	}
	logZ := math.Inf(-1)
	err := g.enumerate(func(_ []int, ls float64) {
		logZ = logAdd(logZ, ls)
	})
	if err != nil {
		return nil, err
	}
	err = g.enumerate(func(assign []int, ls float64) {
		p := math.Exp(ls - logZ)
		for i, val := range assign {
			out[i][val] += p
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExactProb computes the probability of an arbitrary event over joint
// assignments by enumeration: the exact analogue of a query marginal
// Pr[t ∈ Q(W)] from Equation 4 of the paper.
func (g *Graph) ExactProb(event func(assign []int) bool) (float64, error) {
	logZ := math.Inf(-1)
	logE := math.Inf(-1)
	err := g.enumerate(func(assign []int, ls float64) {
		logZ = logAdd(logZ, ls)
		if event(assign) {
			logE = logAdd(logE, ls)
		}
	})
	if err != nil {
		return 0, err
	}
	if math.IsInf(logE, -1) {
		return 0, nil
	}
	return math.Exp(logE - logZ), nil
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogLinear builds a log-linear factor score exp(φ·θ) in log space: the
// returned function computes the dot product of the feature vector
// produced by phi with the weights theta (Section 3.1's parametrization).
func LogLinear(phi func(vals []int) []float64, theta []float64) func(vals []int) float64 {
	return func(vals []int) float64 {
		var s float64
		for i, f := range phi(vals) {
			s += f * theta[i]
		}
		return s
	}
}
