package sqlparse

import (
	"strings"
	"testing"
)

// fuzzSeeds is the shared seed corpus for both fuzz targets: every
// statement the benchmark corpus exercises, the dialect's corner
// spellings, and inputs that must fail with positioned errors rather
// than panics.
func fuzzSeeds() []string {
	seeds := append([]string{}, benchCorpus...)
	seeds = append(seeds,
		`SELECT STRING, COUNT(*) FROM TOKEN GROUP BY STRING HAVING COUNT(*) > 1`,
		`SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2 ON T1.DOC_ID = T2.DOC_ID WHERE T1.LABEL = 'B-PER'`,
		`SELECT STRING FROM TOKEN WHERE DOC_ID IN (SELECT DOC_ID FROM TOKEN WHERE LABEL = 'B-ORG')`,
		`SELECT STRING FROM TOKEN T1 WHERE EXISTS (SELECT * FROM TOKEN T2 WHERE T2.DOC_ID = T1.DOC_ID AND T2.LABEL = 'B-LOC')`,
		`SELECT STRING FROM TOKEN WHERE LABEL NOT IN ('O', 'B-MISC')`,
		`EXPLAIN SELECT COUNT(*) FROM TOKEN WHERE LABEL = 'B-PER'`,
		`SELECT STRING FROM TOKEN WHERE DOC_ID = ? AND LABEL = ?`,
		`INSERT INTO TOKEN (TOK_ID, DOC_ID, STRING, LABEL) VALUES (?, ?, ?, ?)`,
		`DELETE FROM TOKEN WHERE TOK_ID = 42`,
		`select string from token where label = 'B-PER' order by p desc limit 3`,
		`SELECT 'O''Brien' FROM TOKEN`,
		"SELECT\n\tSTRING\nFROM\n\tTOKEN\nWHERE\n\tDOC_ID = 1.5",
		// must fail, never panic:
		`SELECT`, `'unterminated`, `SELECT * FROM`, `1.2.3`, `!`, `SELECT ~ FROM T`,
		``, ` `, `)`, `?`, `EXPLAIN`, `EXPLAIN EXPLAIN SELECT * FROM T`,
		`SELECT * FROM TOKEN WHERE`, `INSERT INTO`, `UPDATE TOKEN SET`,
		"SELECT \xff FROM T", "SELECT '\xc3\xa9' FROM T",
	)
	return seeds
}

// FuzzLex asserts the lexer's structural invariants on arbitrary
// bytes: it never panics, always terminates the stream with an EOF
// sentinel positioned at the end of the input, yields tokens in
// non-decreasing source order with in-range offsets, and is
// deterministic (same input, same stream) even through buffer reuse.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := tokenize(src, nil)
		if len(toks) == 0 {
			t.Fatalf("tokenize(%q) returned an empty stream", src)
		}
		last := toks[len(toks)-1]
		if last.kind != tkEOF || int(last.pos) != len(src) {
			t.Fatalf("tokenize(%q): stream ends with %+v, want EOF at %d", src, last, len(src))
		}
		prev := int32(0)
		for _, tok := range toks[:len(toks)-1] {
			if tok.kind == tkEOF {
				t.Fatalf("tokenize(%q): interior EOF token", src)
			}
			if tok.pos < prev || int(tok.pos) >= len(src) {
				t.Fatalf("tokenize(%q): token %+v out of order or out of range", src, tok)
			}
			prev = tok.pos
		}
		if err != nil && !strings.HasPrefix(err.Error(), "sqlparse: line ") {
			t.Fatalf("tokenize(%q): error %q is not positioned", src, err)
		}
		// Determinism through arena reuse: lexing again into the same
		// buffer must reproduce the stream exactly.
		again, err2 := tokenize(src, toks[:0])
		if (err == nil) != (err2 == nil) || len(again) != len(toks) {
			t.Fatalf("tokenize(%q) is not deterministic: %d/%v vs %d/%v", src, len(toks), err, len(again), err2)
		}
	})
}

// FuzzParseStatement asserts the parser (and the full compile path
// behind it) never panics and keeps its contracts on arbitrary input:
// errors are positioned, successful parses survive placeholder
// binding, and SELECTs plan without fault.
func FuzzParseStatement(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseStatement(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "sqlparse: ") {
				t.Fatalf("ParseStatement(%q): error %q lacks the sqlparse prefix", src, err)
			}
			return
		}
		if n := NumParams(stmt); n > 0 {
			args := make([]any, n)
			for i := range args {
				args[i] = int64(i)
			}
			if _, err := BindArgs(stmt, args); err != nil {
				t.Fatalf("ParseStatement(%q) ok but BindArgs failed: %v", src, err)
			}
		}
		// A statement that parses must either plan or fail cleanly
		// through the public entry points; both paths are exercised so
		// the planner sees fuzzed ASTs too.
		if stmt.Select != nil || stmt.Explain != nil {
			_, _, _ = Compile(src)
		} else {
			_, _ = CompileExec(src)
		}
	})
}
