package sqlparse

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// benchCorpus is the front-end benchmark workload: the paper's four
// evaluation queries, the ranked variant, a DML update, a label-set IN
// query, and a batch evidence INSERT — the statement mix the serving,
// load-generation and WAL-replay paths see.
var benchCorpus = []string{
	query1,
	query2,
	query3,
	query4,
	query4 + ` ORDER BY P DESC LIMIT 10`,
	`UPDATE TOKEN SET STRING = 'load-1' WHERE TOK_ID = 1`,
	`SELECT STRING FROM TOKEN WHERE LABEL IN ('B-PER', 'I-PER', 'B-ORG', 'I-ORG', 'B-LOC', 'I-LOC', 'B-MISC', 'I-MISC') AND DOC_ID = 12345`,
	`INSERT INTO TOKEN (TOK_ID, DOC_ID, STRING, LABEL) VALUES
 (10001, 401, 'Massachusetts', 'B-LOC'), (10002, 401, 'General', 'B-ORG'),
 (10003, 401, 'Hospital', 'I-ORG'), (10004, 401, 'discharged', 'O'),
 (10005, 401, 'Kennedy', 'B-PER'), (10006, 402, 'Springfield', 'B-LOC'),
 (10007, 402, 'Republican', 'B-MISC'), (10008, 402, 'delegation', 'O')`,
}

func corpusBytes() int64 {
	var n int64
	for _, sql := range benchCorpus {
		n += int64(len(sql))
	}
	return n
}

// BenchmarkTokenize is the byte-scan lexer's throughput figure: the
// benchmark corpus end to end into a warm arena buffer, sub-slice
// tokens only — exactly how the parser consumes it. The alloc and
// throughput floors are pinned by testdata/alloc_budget.txt (see
// TestFrontEndBudget).
func BenchmarkTokenize(b *testing.B) {
	var buf []token
	b.ReportAllocs()
	b.SetBytes(corpusBytes())
	for i := 0; i < b.N; i++ {
		for _, sql := range benchCorpus {
			toks, err := tokenize(sql, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			if len(toks) < 2 {
				b.Fatal("no tokens")
			}
			buf = toks // reuse the arena buffer, as the parser does
		}
	}
}

// BenchmarkCompile compares a cold compile (lex + parse + plan +
// canonicalize, every iteration) against a plan-cache hit on the same
// statement — the figure the raw-SQL cache exists for.
func BenchmarkCompile(b *testing.B) {
	const sql = `SELECT T2.STRING FROM TOKEN T1, TOKEN T2
 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG'
 AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'
 ORDER BY P DESC LIMIT 10`
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Compile(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		pc := NewPlanCache(DefaultPlanCacheSize)
		if _, _, err := pc.CompileQuery(sql); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, hit, err := pc.CompileQuery(sql); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// frontEndBudget reads the pinned budgets from testdata: one
// "key value" pair per line, # comments.
func frontEndBudget(t *testing.T) map[string]int64 {
	f, err := os.Open("testdata/alloc_budget.txt")
	if err != nil {
		t.Fatalf("reading front-end budget: %v", err)
	}
	defer f.Close()
	budgets := make(map[string]int64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("budget line %q: want \"key value\"", line)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("budget line %q: %v", line, err)
		}
		budgets[fields[0]] = n
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return budgets
}

// TestFrontEndBudget is the front-end regression gate, the sqlparse
// sibling of internal/ra's TestAllocBudget:
//
//   - tokenize_allocs: the lexer must stay allocation-free on the
//     benchmark corpus (any regression here multiplies across every
//     statement the server ever sees);
//   - tokenize_min_mb_per_s: the byte-scan throughput floor;
//   - hit_speedup_min: a plan-cache hit must beat a cold compile by at
//     least this factor, or the cache has stopped earning its keep.
//
// If an optimization legitimately moves a floor, re-pin
// testdata/alloc_budget.txt.
func TestFrontEndBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("front-end budget gate skipped in -short mode")
	}
	budgets := frontEndBudget(t)

	// Allocations are deterministic, but throughput on a shared CI
	// vCPU is not: take the best of three runs, the one least
	// disturbed by neighbours, before judging the floor.
	var allocs, bestNs int64
	for run := 0; run < 3; run++ {
		tok := testing.Benchmark(func(b *testing.B) {
			var buf []token
			b.ReportAllocs()
			b.SetBytes(corpusBytes())
			for i := 0; i < b.N; i++ {
				for _, sql := range benchCorpus {
					toks, err := tokenize(sql, buf[:0])
					if err != nil {
						b.Fatal(err)
					}
					buf = toks // reuse the arena buffer, as the parser does
				}
			}
		})
		if a := tok.AllocsPerOp(); a > allocs {
			allocs = a
		}
		if ns := tok.NsPerOp(); bestNs == 0 || ns < bestNs {
			bestNs = ns
		}
	}
	if budget := budgets["tokenize_allocs"]; allocs > budget {
		t.Errorf("tokenizing the corpus allocates %d objects/op, budget is %d", allocs, budget)
	}
	mbps := float64(corpusBytes()) / float64(bestNs) * 1e9 / 1e6
	if min := float64(budgets["tokenize_min_mb_per_s"]); mbps < min {
		t.Errorf("tokenizer throughput %.0f MB/s is below the %d MB/s floor", mbps, budgets["tokenize_min_mb_per_s"])
	}

	const sql = query4 + ` ORDER BY P DESC LIMIT 10`
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Compile(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	pc := NewPlanCache(DefaultPlanCacheSize)
	if _, _, err := pc.CompileQuery(sql); err != nil {
		t.Fatal(err)
	}
	hit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, err := pc.CompileQuery(sql); err != nil || !ok {
				b.Fatalf("hit=%v err=%v", ok, err)
			}
		}
	})
	speedup := float64(cold.NsPerOp()) / float64(hit.NsPerOp())
	if min := float64(budgets["hit_speedup_min"]); speedup < min {
		t.Errorf("plan-cache hit is only %.1fx faster than a cold compile (%.0fns vs %.0fns), floor is %.0fx",
			speedup, float64(hit.NsPerOp()), float64(cold.NsPerOp()), min)
	}
	t.Logf("tokenize: %d MB/s, %d allocs/op; compile: cold %dns, hit %dns (%.0fx)",
		int(mbps), allocs, cold.NsPerOp(), hit.NsPerOp(), speedup)
}
