package sqlparse

import (
	"fmt"
	"strings"
	"testing"
)

func TestPlanCacheHitMiss(t *testing.T) {
	pc := NewPlanCache(4)
	c1, hit, err := pc.CompileQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first compile reported a hit")
	}
	if c1.Plan == nil || c1.Fingerprint == "" || len(c1.Cols) != 1 || c1.Cols[0] != "STRING" {
		t.Fatalf("Compiled = %+v, want plan, fingerprint and [STRING] columns", c1)
	}
	c2, hit, err := pc.CompileQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second compile of identical bytes missed")
	}
	if c2 != c1 {
		t.Error("hit returned a different Compiled pointer")
	}
	// The cache keys on exact bytes, before canonicalization: any textual
	// difference is a miss even when the plan is identical.
	if _, hit, _ := pc.CompileQuery(query1 + " "); hit {
		t.Error("trailing-space variant hit the cache")
	}
}

func TestPlanCacheMutationEntries(t *testing.T) {
	pc := NewPlanCache(4)
	const dml = `UPDATE TOKEN SET STRING='x' WHERE TOK_ID=1`
	if _, hit, err := pc.CompileMutation(dml); err != nil || hit {
		t.Fatalf("first CompileMutation: hit=%v err=%v", hit, err)
	}
	if _, hit, err := pc.CompileMutation(dml); err != nil || !hit {
		t.Fatalf("second CompileMutation: hit=%v err=%v", hit, err)
	}
	// A SELECT asked for as a mutation must fail, not poison the cache.
	if _, _, err := pc.CompileMutation(query1); err == nil {
		t.Fatal("CompileMutation accepted a SELECT")
	}
	if _, hit, err := pc.CompileQuery(query1); err != nil || hit {
		t.Fatalf("query compile after failed mutation compile: hit=%v err=%v", hit, err)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	pc := NewPlanCache(2)
	sqls := []string{
		`SELECT STRING FROM TOKEN WHERE TOK_ID=1`,
		`SELECT STRING FROM TOKEN WHERE TOK_ID=2`,
		`SELECT STRING FROM TOKEN WHERE TOK_ID=3`,
	}
	for _, s := range sqls {
		if _, _, err := pc.CompileQuery(s); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", pc.Len())
	}
	// FIFO: the first entry was evicted, the last two are resident.
	if _, hit, _ := pc.CompileQuery(sqls[0]); hit {
		t.Error("oldest entry survived past capacity")
	}
	if _, hit, _ := pc.CompileQuery(sqls[2]); !hit {
		t.Error("newest entry was evicted")
	}
}

func TestPlanCacheErrorsNotCached(t *testing.T) {
	pc := NewPlanCache(4)
	const bad = `SELECT FROM`
	if _, _, err := pc.CompileQuery(bad); err == nil {
		t.Fatal("bad SQL compiled")
	}
	if pc.Len() != 0 {
		t.Fatalf("failed compile left %d cache entries", pc.Len())
	}
}

func TestPlanCacheNilReceiver(t *testing.T) {
	var pc *PlanCache
	c, hit, err := pc.CompileQuery(query1)
	if err != nil || hit || c == nil || c.Plan == nil {
		t.Fatalf("nil cache CompileQuery = (%v, %v, %v), want uncached success", c, hit, err)
	}
	if _, hit, err := pc.CompileMutation(`DELETE FROM TOKEN WHERE TOK_ID=1`); err != nil || hit {
		t.Fatalf("nil cache CompileMutation: hit=%v err=%v", hit, err)
	}
	if pc.Len() != 0 {
		t.Error("nil cache has a length")
	}
}

func TestPlanCacheUnboundPlaceholderError(t *testing.T) {
	pc := NewPlanCache(4)
	_, _, err := pc.CompileQuery(`SELECT STRING FROM TOKEN WHERE LABEL=?`)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound placeholder through the cache = %v", err)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	pc := NewPlanCache(8)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 200 && err == nil; i++ {
				sql := fmt.Sprintf("SELECT STRING FROM TOKEN WHERE TOK_ID=%d", i%12)
				_, _, err = pc.CompileQuery(sql)
			}
			done <- err
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() > 8 {
		t.Fatalf("cache grew past capacity: %d", pc.Len())
	}
}
