package sqlparse

import (
	"sync"

	"factordb/internal/ra"
)

// Compiled is a cached front-end result for one exact SQL byte string:
// either a query plan (Plan != nil) or a mutation (Mutation != nil).
// Entries are immutable once published and are shared freely across
// goroutines — plans are read-only after canonicalization.
type Compiled struct {
	Plan        ra.Plan
	Spec        ra.ResultSpec
	Cols        []string
	Fingerprint string // canonical plan fingerprint (qfp1:...)
	Mutation    ra.Mutation
}

// PlanCache memoizes Compile / CompileExec keyed on the raw SQL string,
// so a repeated spelling skips lexing, parsing and canonicalization
// entirely. Keys are exact byte strings: "SELECT  *" and "select *" are
// distinct entries even though they canonicalize to the same plan.
//
// Entries are plan-only — they hold no data, no bound statistics and no
// results — so they never need invalidating when the database mutates.
// Data-epoch invalidation of *result* caches is a separate, unchanged
// mechanism downstream.
//
// Eviction is FIFO with a fixed capacity. A nil *PlanCache is valid and
// simply compiles every call (no caching).
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*Compiled
	order   []string // insertion order, for FIFO eviction
	cap     int
}

// DefaultPlanCacheSize is the entry capacity used when a PlanCache is
// constructed with a non-positive size.
const DefaultPlanCacheSize = 256

// NewPlanCache returns a cache holding up to capacity compiled
// statements (DefaultPlanCacheSize if capacity <= 0).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{entries: make(map[string]*Compiled, capacity), cap: capacity}
}

// Len reports the number of cached statements.
func (pc *PlanCache) Len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

func (pc *PlanCache) get(sql string) *Compiled {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.entries[sql]
}

func (pc *PlanCache) put(sql string, c *Compiled) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.entries[sql]; ok {
		pc.entries[sql] = c // refresh in place; keep original queue slot
		return
	}
	for len(pc.entries) >= pc.cap && len(pc.order) > 0 {
		victim := pc.order[0]
		pc.order = pc.order[1:]
		delete(pc.entries, victim)
	}
	pc.entries[sql] = c
	pc.order = append(pc.order, sql)
}

// CompileQuery returns the compiled form of a SELECT, consulting the
// cache first. The second result reports whether the call was a cache
// hit. Only successful compiles are cached; error results are
// recomputed each time (they are not the hot path).
func (pc *PlanCache) CompileQuery(sql string) (*Compiled, bool, error) {
	if pc != nil {
		if c := pc.get(sql); c != nil && c.Plan != nil {
			return c, true, nil
		}
	}
	plan, spec, err := Compile(sql)
	if err != nil {
		return nil, false, err
	}
	c := &Compiled{
		Plan:        plan,
		Spec:        spec,
		Cols:        ra.OutputColumns(plan),
		Fingerprint: ra.CanonicalFingerprint(plan),
	}
	if pc != nil {
		pc.put(sql, c)
	}
	return c, false, nil
}

// CompileMutation returns the compiled form of a DML statement,
// consulting the cache first; the second result reports a hit.
func (pc *PlanCache) CompileMutation(sql string) (ra.Mutation, bool, error) {
	if pc != nil {
		if c := pc.get(sql); c != nil && c.Mutation != nil {
			return c.Mutation, true, nil
		}
	}
	mut, err := CompileExec(sql)
	if err != nil {
		return nil, false, err
	}
	if pc != nil {
		pc.put(sql, &Compiled{Mutation: mut})
	}
	return mut, false, nil
}
