package sqlparse

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factordb/internal/ra"
)

// fingerprintCases are the paper's evaluation queries; the golden file
// pins both fingerprint levels for each:
//
//   - the logical fingerprint of the compiled (canonical) plan, which
//     keys the serving engine's result cache, and
//   - the structural fingerprint of the plan bound against the TOKEN
//     catalog, which keys the per-chain shared-view registries.
//
// These values are a compatibility contract: they must not drift across
// releases within one encoding version ("qfp1:"/"bfp1:"), because cached
// results and shared views are keyed by them. An intentional encoding
// change must bump the version prefixes and regenerate the golden file
// (rerun this test with UPDATE_FINGERPRINTS=1).
//
// query4 and query4ranked deliberately share both fingerprints: ORDER BY
// P DESC LIMIT 10 is result-level presentation (the ra.ResultSpec), not
// plan structure, so the ranked query shares the unranked query's
// physical views — only the result cache distinguishes them, by keying
// on (fingerprint, spec, options).
var fingerprintCases = []struct {
	name string
	sql  string
}{
	{"query1", query1},
	{"query2", query2},
	{"query3", query3},
	{"query4", query4},
	{"query4ranked", query4 + ` ORDER BY P DESC LIMIT 10`},
}

var updateFingerprints = os.Getenv("UPDATE_FINGERPRINTS") != ""

func TestFingerprintGolden(t *testing.T) {
	db := testDB(t)
	var lines []string
	got := make(map[string][2]string, len(fingerprintCases))
	for _, tc := range fingerprintCases {
		plan, _, err := Compile(tc.sql)
		if err != nil {
			t.Fatalf("Compile(%s): %v", tc.name, err)
		}
		logical := ra.PlanFingerprint(plan)
		bound, err := ra.Bind(db, plan)
		if err != nil {
			t.Fatalf("Bind(%s): %v", tc.name, err)
		}
		got[tc.name] = [2]string{logical, bound.Fingerprint()}
		lines = append(lines, fmt.Sprintf("%s %s %s", tc.name, logical, bound.Fingerprint()))
	}

	golden := filepath.Join("testdata", "fingerprints.golden")
	if updateFingerprints {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (set UPDATE_FINGERPRINTS=1 to generate): %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		f := strings.Fields(line)
		if len(f) != 3 {
			t.Fatalf("malformed golden line %q", line)
		}
		want, ok := got[f[0]]
		if !ok {
			t.Errorf("golden query %q no longer tested", f[0])
			continue
		}
		if want[0] != f[1] {
			t.Errorf("%s: logical fingerprint drifted\n got %s\nwant %s\n"+
				"(cached results key on this; an intentional canonical-form change must bump the qfp version)",
				f[0], want[0], f[1])
		}
		if want[1] != f[2] {
			t.Errorf("%s: bound fingerprint drifted\n got %s\nwant %s\n"+
				"(shared views key on this; an intentional encoding change must bump the bfp version)",
				f[0], want[1], f[2])
		}
		delete(got, f[0])
	}
	for name := range got {
		t.Errorf("query %q missing from golden file (set UPDATE_FINGERPRINTS=1 to regenerate)", name)
	}
}

// TestFingerprintSQLEquivalence drives the canonicalization through the
// SQL front end: spelling variants of the paper queries compile to equal
// fingerprints, and genuinely different queries never collide.
func TestFingerprintSQLEquivalence(t *testing.T) {
	db := testDB(t)
	fps := func(sql string) [2]string {
		t.Helper()
		plan, _, err := Compile(sql)
		if err != nil {
			t.Fatalf("Compile(%q): %v", sql, err)
		}
		bound, err := ra.Bind(db, plan)
		if err != nil {
			t.Fatalf("Bind(%q): %v", sql, err)
		}
		return [2]string{ra.PlanFingerprint(plan), bound.Fingerprint()}
	}

	equiv := []struct {
		name string
		a, b string
	}{
		{"whitespace and keyword case",
			query1,
			"select string \n\t from TOKEN  where LABEL = 'B-PER'"},
		{"redundant single-table qualification",
			query1,
			`SELECT T.STRING FROM TOKEN T WHERE T.LABEL='B-PER'`},
		{"conjunct order",
			`SELECT T2.STRING FROM TOKEN T1, TOKEN T2
			 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'`,
			`SELECT T2.STRING FROM TOKEN T1, TOKEN T2
			 WHERE T2.LABEL='B-PER' AND T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T1.STRING='Boston'`},
		{"alias renaming",
			`SELECT T2.STRING FROM TOKEN T1, TOKEN T2
			 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'`,
			`SELECT B.STRING FROM TOKEN A, TOKEN B
			 WHERE A.STRING='Boston' AND A.LABEL='B-ORG' AND A.DOC_ID=B.DOC_ID AND B.LABEL='B-PER'`},
		{"subquery alias renaming",
			query3,
			strings.NewReplacer("T1", "ZZ", "T.", "OUTER_T.", " T ", " OUTER_T ").Replace(query3)},
	}
	for _, tc := range equiv {
		if a, b := fps(tc.a), fps(tc.b); a != b {
			t.Errorf("%s: fingerprints differ\n a=%v\n b=%v", tc.name, a, b)
		}
	}

	distinct := []string{query1, query2, query3, query4,
		`SELECT STRING FROM TOKEN WHERE LABEL='B-ORG'`, // different literal than query1
		`SELECT LABEL FROM TOKEN WHERE LABEL='B-PER'`,  // different projection than query1
		query4 + ` ORDER BY STRING LIMIT 3`,            // extra plan-level operator
	}
	seen := make(map[[2]string]string)
	for _, sql := range distinct {
		fp := fps(sql)
		if prev, dup := seen[fp]; dup {
			t.Errorf("distinct queries share a fingerprint:\n%s\n%s", prev, sql)
		}
		seen[fp] = sql
	}
}
