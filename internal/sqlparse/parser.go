package sqlparse

import (
	"strconv"
	"strings"
)

// ColName is a possibly qualified column reference in the source text.
type ColName struct {
	Qual string
	Name string
}

func (c ColName) String() string {
	if c.Qual == "" {
		return c.Name
	}
	return c.Qual + "." + c.Name
}

// SelectItem is one output of the select list: a plain column or an
// aggregate call.
type SelectItem struct {
	Col  ColName // plain column when Agg == ""
	Agg  string  // "", "COUNT", "SUM", "AVG", "MIN", "MAX"
	Arg  ColName // aggregate argument (ignored for COUNT(*))
	Star bool    // COUNT(*)
	As   string  // optional output name
}

// TableRef is one FROM entry.
type TableRef struct {
	Name  string
	Alias string
}

// Operand is the right-hand side of a comparison: a column, a literal,
// or a ? placeholder awaiting a prepared-statement argument.
type Operand struct {
	IsCol bool
	Col   ColName
	IsStr bool
	Str   string
	IsInt bool
	Int   int64
	Float float64

	IsParam bool
	Param   int // 0-based placeholder position within the statement
}

// Cond is one conjunct of the WHERE clause: a simple comparison, an
// equality between two scalar COUNT(*) subqueries (Query 3's pattern),
// an IN predicate, or an EXISTS predicate.
type Cond struct {
	Left  ColName
	Op    string
	Right Operand

	SubEq  *SubEq
	In     *InPred   // Left IN (...) — Op and Right unused
	Exists *SubQuery // EXISTS (SELECT * FROM t WHERE ...) — Left, Op, Right unused
}

// InPred is the tail of an IN predicate: either a literal list or an
// uncorrelated-column subquery (exactly one of Values/Sub is set).
type InPred struct {
	Not    bool // NOT IN — literal lists only
	Values []Operand
	Sub    *InSub
}

// InSub is col IN (SELECT c FROM t [alias] [WHERE local-predicates]).
type InSub struct {
	Col   ColName // the inner select's column, optionally alias-qualified
	Table TableRef
	Conds []Cond
}

// SubQuery is a correlated subquery body: SELECT COUNT(*) FROM t a
// WHERE ... in subquery-equality position, SELECT * FROM t a WHERE ...
// under EXISTS.
type SubQuery struct {
	Table TableRef
	Conds []Cond
}

// SubEq is an equality between two subqueries.
type SubEq struct {
	A, B SubQuery
}

// HavingCond is one conjunct of the HAVING clause: a comparison whose
// left side is a group column or an aggregate call over the grouped
// input (Left.Agg != "" for aggregate calls).
type HavingCond struct {
	Left  SelectItem
	Op    string
	Right Operand
}

// OrderItem is one ORDER BY key. The unqualified column P names the
// estimated marginal probability of the answer tuple (a pseudo-column
// computed across sampled worlds) unless the query's select list outputs
// a real column of that name.
type OrderItem struct {
	Col  ColName
	Desc bool
}

// Query is the parsed statement.
type Query struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []Cond
	GroupBy  []ColName
	Having   []HavingCond
	OrderBy  []OrderItem
	Limit    int64 // -1 when the query has no LIMIT clause
}

// Assign is one SET assignment of an UPDATE statement. Values are
// literals or placeholders: the dialect has no expressions on the write
// path.
type Assign struct {
	Col string
	Val Operand
}

// InsertStmt is a parsed INSERT. An empty Columns list means "values in
// schema order"; otherwise the list must cover the whole schema (the
// store has no column defaults), checked when the statement is resolved
// against a catalog.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Operand
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table TableRef
	Set   []Assign
	Where []Cond
}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table TableRef
	Where []Cond
}

// Statement is one parsed SQL statement: exactly one field is non-nil.
// Params counts the ? placeholders in the statement; a statement with
// Params > 0 cannot be planned until BindArgs substitutes arguments.
type Statement struct {
	Select  *Query
	Insert  *InsertStmt
	Update  *UpdateStmt
	Delete  *DeleteStmt
	Explain *Statement // EXPLAIN <stmt>: the wrapped statement

	// Analyze marks EXPLAIN ANALYZE: the wrapped statement is executed
	// with per-operator instrumentation rather than merely planned. Only
	// meaningful when Explain is non-nil.
	Analyze bool

	Params int
}

// Kind returns the statement's leading keyword, for diagnostics.
func (s *Statement) Kind() string {
	switch {
	case s.Select != nil:
		return "SELECT"
	case s.Insert != nil:
		return "INSERT"
	case s.Update != nil:
		return "UPDATE"
	case s.Delete != nil:
		return "DELETE"
	case s.Explain != nil:
		return "EXPLAIN"
	}
	return "empty"
}

// arena holds the backing arrays for every AST slice a parse produces.
// Lists are carved out of these arrays as value sub-slices (capped, so
// later growth cannot clobber them); a pooled parser resets the lengths
// to zero and reuses the same arrays on its next parse. Lists that can
// be under construction at the same time use distinct arrays: outer
// WHERE/ON conjuncts accumulate in conds while any subquery's conjuncts
// — which always complete before the outer list resumes — carve from
// subConds.
type arena struct {
	toks     []token // batch-tokenized statement, EOF-terminated
	conds    []Cond
	subConds []Cond
	items    []SelectItem
	from     []TableRef
	group    []ColName
	having   []HavingCond
	order    []OrderItem
	assigns  []Assign
	operands []Operand
	rows     [][]Operand
	strs     []string
}

func (a *arena) reset() {
	a.conds = a.conds[:0]
	a.subConds = a.subConds[:0]
	a.items = a.items[:0]
	a.from = a.from[:0]
	a.group = a.group[:0]
	a.having = a.having[:0]
	a.order = a.order[:0]
	a.assigns = a.assigns[:0]
	a.operands = a.operands[:0]
	a.rows = a.rows[:0]
	a.strs = a.strs[:0]
}

// parser walks the batch-tokenized statement by index, with arbitrary
// lookahead over the arena-backed token slice (the grammar needs two
// tokens: cur plus peek). The stream always ends in an EOF sentinel; on
// a lex error the stream is truncated at the offending byte and the
// error parks in lexErr, which takes precedence over any parse error at
// the statement boundary — the statement is fully lexed before parsing
// begins, so lexer errors surface first.
type parser struct {
	src    string // original query text, for line/column error positions
	lexErr error
	toks   []token // EOF-terminated, owned by the arena
	ti     int
	params int
	a      arena
}

func (p *parser) reset(input string) {
	p.src = input
	p.a.reset()
	p.toks, p.lexErr = tokenize(input, p.a.toks[:0])
	p.a.toks = p.toks
	p.ti = 0
	p.params = 0
}

func (p *parser) cur() token {
	return p.toks[p.ti]
}

func (p *parser) peek() token {
	if p.ti+1 < len(p.toks) {
		return p.toks[p.ti+1]
	}
	return p.toks[len(p.toks)-1] // the EOF sentinel
}

func (p *parser) next() token {
	t := p.toks[p.ti]
	if t.kind != tkEOF {
		p.ti++
	}
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) peekAt(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := `"` + text + `"`
	if text == "" {
		// Expectations on a bare kind (identifiers, in this dialect) have
		// no literal spelling to quote.
		want = "identifier"
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return posErrf(p.src, int(p.cur().pos), format, args...)
}

// Parse parses one SELECT statement of the supported dialect. DML
// statements are parsed by ParseStatement; passing one here reports the
// read/write API split rather than a token-level error.
func Parse(input string) (*Query, error) {
	stmt, err := ParseStatement(input)
	if err != nil {
		return nil, err
	}
	return selectOf(input, stmt)
}

func selectOf(input string, stmt *Statement) (*Query, error) {
	if stmt.Explain != nil {
		return nil, posErrf(input, 0, "EXPLAIN is a diagnostic statement (issue it through the factordb query API)")
	}
	if stmt.Select == nil {
		return nil, posErrf(input, 0, "%s is a DML statement, not a query (use Exec)", stmt.Kind())
	}
	return stmt.Select, nil
}

// ParseStatement parses one statement of the supported dialect: a SELECT
// query, an INSERT/UPDATE/DELETE mutation, or EXPLAIN wrapping either.
// The returned AST is freshly allocated and safe to retain (prepared
// statements do); the pooled-arena fast path is reserved for the
// Compile/CompileExec entry points, whose ASTs never escape.
func ParseStatement(input string) (*Statement, error) {
	p := &parser{}
	p.reset(input)
	return p.parseInput()
}

func (p *parser) parseInput() (*Statement, error) {
	stmt, err := p.parseTop()
	if err == nil && !p.at(tkEOF, "") {
		err = p.errf("trailing input starting at %q", p.cur().text)
	}
	// A lexer error always outranks a parse error: the old lexer ran to
	// completion before parsing began, so its errors surfaced first.
	if p.lexErr != nil {
		return nil, p.lexErr
	}
	if err != nil {
		return nil, err
	}
	stmt.Params = p.params
	return stmt, nil
}

func (p *parser) parseTop() (*Statement, error) {
	if p.accept(tkKeyword, "EXPLAIN") {
		analyze := p.accept(tkKeyword, "ANALYZE")
		inner, err := p.parseOne()
		if err != nil {
			return nil, err
		}
		return &Statement{Explain: inner, Analyze: analyze}, nil
	}
	return p.parseOne()
}

func (p *parser) parseOne() (*Statement, error) {
	stmt := &Statement{}
	var err error
	switch {
	case p.at(tkKeyword, "SELECT"):
		stmt.Select, err = p.parseQuery(false)
	case p.at(tkKeyword, "INSERT"):
		stmt.Insert, err = p.parseInsert()
	case p.at(tkKeyword, "UPDATE"):
		stmt.Update, err = p.parseUpdate()
	case p.at(tkKeyword, "DELETE"):
		stmt.Delete, err = p.parseDelete()
	default:
		return nil, p.errf("expected SELECT, INSERT, UPDATE or DELETE, found %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseQuery parses SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
// [HAVING ...] [ORDER BY ...] [LIMIT n]. In subquery position (sub=true)
// the trailing clauses are rejected and the select list must be exactly
// COUNT(*).
func (p *parser) parseQuery(sub bool) (*Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.accept(tkKeyword, "DISTINCT") {
		q.Distinct = true
	}
	itemStart := len(p.a.items)
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		p.a.items = append(p.a.items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	q.Items = p.a.items[itemStart:len(p.a.items):len(p.a.items)]
	if sub {
		if len(q.Items) != 1 || q.Items[0].Agg != "COUNT" || !q.Items[0].Star {
			return nil, p.errf("subqueries must be SELECT COUNT(*)")
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	// Outer WHERE conjuncts and JOIN ... ON conjuncts share one carve
	// region: ON conjuncts are sugar for WHERE conjuncts (the planner's
	// classifier routes both to join keys or pushed filters), so they
	// accumulate first and the WHERE clause extends the same list.
	// Subquery conjunct lists carve from their own array (subConds), so
	// a subquery parsed mid-clause never splits this region.
	condBuf := &p.a.conds
	if sub {
		condBuf = &p.a.subConds
	}
	condStart := len(*condBuf)
	fromStart := len(p.a.from)
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	p.a.from = append(p.a.from, tr)
	for {
		if p.accept(tkSymbol, ",") {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			p.a.from = append(p.a.from, tr)
			continue
		}
		if p.at(tkKeyword, "JOIN") || p.at(tkKeyword, "INNER") {
			if sub {
				return nil, p.errf("JOIN is not supported in subqueries")
			}
			if p.accept(tkKeyword, "INNER") {
				if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
					return nil, err
				}
			} else {
				p.next()
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			p.a.from = append(p.a.from, tr)
			if _, err := p.expect(tkKeyword, "ON"); err != nil {
				return nil, err
			}
			for {
				c, err := p.parseCond(sub)
				if err != nil {
					return nil, err
				}
				*condBuf = append(*condBuf, c)
				if !p.accept(tkKeyword, "AND") {
					break
				}
			}
			continue
		}
		break
	}
	q.From = p.a.from[fromStart:len(p.a.from):len(p.a.from)]
	if sub && len(q.From) != 1 {
		return nil, p.errf("subqueries must reference exactly one table")
	}
	if p.accept(tkKeyword, "WHERE") {
		for {
			c, err := p.parseCond(sub)
			if err != nil {
				return nil, err
			}
			*condBuf = append(*condBuf, c)
			if !p.accept(tkKeyword, "AND") {
				break
			}
		}
	}
	if len(*condBuf) > condStart {
		q.Where = (*condBuf)[condStart:len(*condBuf):len(*condBuf)]
	}
	if !sub && p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		start := len(p.a.group)
		for {
			col, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			p.a.group = append(p.a.group, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		q.GroupBy = p.a.group[start:len(p.a.group):len(p.a.group)]
	}
	if !sub && p.accept(tkKeyword, "HAVING") {
		start := len(p.a.having)
		for {
			hc, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			p.a.having = append(p.a.having, hc)
			if !p.accept(tkKeyword, "AND") {
				break
			}
		}
		q.Having = p.a.having[start:len(p.a.having):len(p.a.having)]
	}
	if !sub && p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		start := len(p.a.order)
		for {
			col, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			p.a.order = append(p.a.order, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		q.OrderBy = p.a.order[start:len(p.a.order):len(p.a.order)]
	}
	if !sub && p.accept(tkKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tkNumber {
			return nil, p.errf("expected LIMIT count, found %q", t.text)
		}
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("LIMIT count %q is not an integer", t.text)
		}
		if n < 1 {
			return nil, p.errf("LIMIT count must be at least 1, got %d", n)
		}
		q.Limit = n
	}
	return q, nil
}

// parseHavingCond parses one HAVING conjunct. The left side may be an
// aggregate call (COUNT(*), SUM(col), ...) or a plain column of the
// grouped output.
func (p *parser) parseHavingCond() (HavingCond, error) {
	var left SelectItem
	t := p.cur()
	if t.kind == tkKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return HavingCond{}, err
			}
			left = SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.accept(tkSymbol, "*") {
				left.Star = true
			} else {
				col, err := p.parseColName()
				if err != nil {
					return HavingCond{}, err
				}
				left.Arg = col
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return HavingCond{}, err
			}
		}
	}
	if left.Agg == "" {
		col, err := p.parseColName()
		if err != nil {
			return HavingCond{}, err
		}
		left = SelectItem{Col: col}
	}
	op := p.cur()
	if op.kind != tkSymbol || !cmpOps[op.text] {
		return HavingCond{}, p.errf("expected comparison operator, found %q", op.text)
	}
	p.next()
	opText := op.text
	if opText == "<>" {
		opText = "!="
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return HavingCond{}, err
	}
	return HavingCond{Left: left, Op: opText, Right: rhs}, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tkKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.accept(tkSymbol, "*") {
				item.Star = true
			} else {
				col, err := p.parseColName()
				if err != nil {
					return SelectItem{}, err
				}
				item.Arg = col
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.accept(tkKeyword, "AS") {
				name, err := p.expect(tkIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				item.As = name.text
			}
			return item, nil
		}
	}
	col, err := p.parseColName()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col}
	if p.accept(tkKeyword, "AS") {
		name, err := p.expect(tkIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = name.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name.text, Alias: name.text}
	if p.at(tkIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) parseColName() (ColName, error) {
	first, err := p.expect(tkIdent, "")
	if err != nil {
		return ColName{}, err
	}
	if p.accept(tkSymbol, ".") {
		second, err := p.expect(tkIdent, "")
		if err != nil {
			return ColName{}, err
		}
		return ColName{Qual: first.text, Name: second.text}, nil
	}
	return ColName{Name: first.text}, nil
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCond(sub bool) (Cond, error) {
	// Subquery equality: ( SELECT ... ) = ( SELECT ... ).
	if !sub && p.at(tkSymbol, "(") {
		p.next()
		a, err := p.parseSubQuery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return Cond{}, err
		}
		b, err := p.parseSubQuery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return Cond{SubEq: &SubEq{A: a, B: b}}, nil
	}
	if !sub && p.at(tkKeyword, "EXISTS") {
		return p.parseExists()
	}
	if p.at(tkKeyword, "NOT") && p.peekAt(tkKeyword, "EXISTS") {
		return Cond{}, p.errf("NOT EXISTS is not supported (rewrite it as a positive EXISTS on the complementary predicate)")
	}

	left, err := p.parseColName()
	if err != nil {
		return Cond{}, err
	}
	if p.at(tkKeyword, "IN") || (p.at(tkKeyword, "NOT") && p.peekAt(tkKeyword, "IN")) {
		not := p.accept(tkKeyword, "NOT")
		p.next() // IN
		return p.parseInTail(left, not, sub)
	}
	op := p.cur()
	if op.kind != tkSymbol || !cmpOps[op.text] {
		return Cond{}, p.errf("expected comparison operator, found %q", op.text)
	}
	p.next()
	if op.text == "<>" {
		op.text = "!="
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Left: left, Op: op.text, Right: rhs}, nil
}

// parseInTail parses what follows "col IN" / "col NOT IN": a
// parenthesized literal list, or (in outer WHERE position only) a
// single-column subquery.
func (p *parser) parseInTail(left ColName, not, sub bool) (Cond, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return Cond{}, err
	}
	if p.at(tkKeyword, "SELECT") {
		if sub {
			return Cond{}, p.errf("IN subqueries are not supported in this context")
		}
		if not {
			return Cond{}, p.errf("NOT IN with a subquery is not supported (only literal lists can be negated)")
		}
		isub, err := p.parseInSubquery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return Cond{Left: left, In: &InPred{Sub: isub}}, nil
	}
	start := len(p.a.operands)
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return Cond{}, err
		}
		p.a.operands = append(p.a.operands, v)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return Cond{}, err
	}
	vals := p.a.operands[start:len(p.a.operands):len(p.a.operands)]
	return Cond{Left: left, In: &InPred{Not: not, Values: vals}}, nil
}

// parseInSubquery parses the body of col IN (SELECT c FROM t [alias]
// [WHERE ...]); the opening parenthesis and SELECT keyword are still
// pending on entry (SELECT detected by lookahead).
func (p *parser) parseInSubquery() (*InSub, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	col, err := p.parseColName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	conds, err := p.parseSubWhere()
	if err != nil {
		return nil, err
	}
	return &InSub{Col: col, Table: tr, Conds: conds}, nil
}

// parseExists parses EXISTS ( SELECT * FROM t [alias] [WHERE ...] ).
// Exactly one WHERE conjunct must correlate with the outer query — the
// planner checks that when it lowers the predicate to a group-aggregate
// semi-join.
func (p *parser) parseExists() (Cond, error) {
	p.next() // EXISTS
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return Cond{}, err
	}
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return Cond{}, err
	}
	if _, err := p.expect(tkSymbol, "*"); err != nil {
		return Cond{}, err
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return Cond{}, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return Cond{}, err
	}
	conds, err := p.parseSubWhere()
	if err != nil {
		return Cond{}, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return Cond{}, err
	}
	return Cond{Exists: &SubQuery{Table: tr, Conds: conds}}, nil
}

// parseSubWhere parses the optional WHERE conjunction of a subquery
// body into the subquery cond arena.
func (p *parser) parseSubWhere() ([]Cond, error) {
	if !p.accept(tkKeyword, "WHERE") {
		return nil, nil
	}
	start := len(p.a.subConds)
	for {
		c, err := p.parseCond(true)
		if err != nil {
			return nil, err
		}
		p.a.subConds = append(p.a.subConds, c)
		if !p.accept(tkKeyword, "AND") {
			break
		}
	}
	return p.a.subConds[start:len(p.a.subConds):len(p.a.subConds)], nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tkString:
		p.next()
		return Operand{IsStr: true, Str: t.text}, nil
	case tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, p.errf("bad number %q", t.text)
			}
			return Operand{Float: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, p.errf("bad integer %q", t.text)
		}
		return Operand{IsInt: true, Int: n}, nil
	case tkIdent:
		col, err := p.parseColName()
		if err != nil {
			return Operand{}, err
		}
		return Operand{IsCol: true, Col: col}, nil
	case tkSymbol:
		if t.text == "?" {
			p.next()
			idx := p.params
			p.params++
			return Operand{IsParam: true, Param: idx}, nil
		}
	}
	return Operand{}, p.errf("expected value or column, found %q", t.text)
}

// parseInsert parses INSERT INTO t [(col, ...)] VALUES (lit, ...) [, ...].
func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tkKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.text}
	if p.accept(tkSymbol, "(") {
		start := len(p.a.strs)
		for {
			col, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			p.a.strs = append(p.a.strs, col.text)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		st.Columns = p.a.strs[start:len(p.a.strs):len(p.a.strs)]
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	rowStart := len(p.a.rows)
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		start := len(p.a.operands)
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			p.a.operands = append(p.a.operands, v)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		row := p.a.operands[start:len(p.a.operands):len(p.a.operands)]
		if len(st.Columns) > 0 && len(row) != len(st.Columns) {
			return nil, p.errf("VALUES row has %d values, column list has %d", len(row), len(st.Columns))
		}
		p.a.rows = append(p.a.rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	st.Rows = p.a.rows[rowStart:len(p.a.rows):len(p.a.rows)]
	return st, nil
}

// parseUpdate parses UPDATE t [alias] SET col = lit [, ...] [WHERE ...].
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if _, err := p.expect(tkKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tr}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	start := len(p.a.assigns)
	for {
		col, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		p.a.assigns = append(p.a.assigns, Assign{Col: col.text, Val: val})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	st.Set = p.a.assigns[start:len(p.a.assigns):len(p.a.assigns)]
	st.Where, err = p.parseOptWhere()
	return st, err
}

// parseDelete parses DELETE FROM t [alias] [WHERE ...].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if _, err := p.expect(tkKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tr}
	st.Where, err = p.parseOptWhere()
	return st, err
}

// parseOptWhere parses the optional WHERE clause of a DML statement: a
// conjunction of simple comparisons and IN lists (no subqueries on the
// write path).
func (p *parser) parseOptWhere() ([]Cond, error) {
	if !p.accept(tkKeyword, "WHERE") {
		return nil, nil
	}
	start := len(p.a.conds)
	for {
		c, err := p.parseCond(true)
		if err != nil {
			return nil, err
		}
		p.a.conds = append(p.a.conds, c)
		if !p.accept(tkKeyword, "AND") {
			break
		}
	}
	return p.a.conds[start:len(p.a.conds):len(p.a.conds)], nil
}

// parseLiteral parses a string or number literal, or a ? placeholder
// (the only values the write path and IN lists accept — no expressions,
// no column references).
func (p *parser) parseLiteral() (Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tkString || t.kind == tkNumber:
		return p.parseOperand()
	case t.kind == tkSymbol && t.text == "?":
		return p.parseOperand()
	}
	return Operand{}, p.errf("expected literal value, found %q", t.text)
}

func (p *parser) parseSubQuery() (SubQuery, error) {
	q, err := p.parseQuery(true)
	if err != nil {
		return SubQuery{}, err
	}
	for _, c := range q.Where {
		if c.SubEq != nil {
			return SubQuery{}, p.errf("nested subqueries are not supported")
		}
	}
	return SubQuery{Table: q.From[0], Conds: q.Where}, nil
}
