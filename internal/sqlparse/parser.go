package sqlparse

import (
	"strconv"
	"strings"
)

// ColName is a possibly qualified column reference in the source text.
type ColName struct {
	Qual string
	Name string
}

func (c ColName) String() string {
	if c.Qual == "" {
		return c.Name
	}
	return c.Qual + "." + c.Name
}

// SelectItem is one output of the select list: a plain column or an
// aggregate call.
type SelectItem struct {
	Col  ColName // plain column when Agg == ""
	Agg  string  // "", "COUNT", "SUM", "AVG", "MIN", "MAX"
	Arg  ColName // aggregate argument (ignored for COUNT(*))
	Star bool    // COUNT(*)
	As   string  // optional output name
}

// TableRef is one FROM entry.
type TableRef struct {
	Name  string
	Alias string
}

// Operand is the right-hand side of a comparison.
type Operand struct {
	IsCol bool
	Col   ColName
	IsStr bool
	Str   string
	IsInt bool
	Int   int64
	Float float64
}

// Cond is one conjunct of the WHERE clause: either a simple comparison or
// an equality between two scalar COUNT(*) subqueries (Query 3's pattern).
type Cond struct {
	Left  ColName
	Op    string
	Right Operand

	SubEq *SubEq
}

// SubQuery is a correlated scalar subquery SELECT COUNT(*) FROM t a WHERE ...
type SubQuery struct {
	Table TableRef
	Conds []Cond
}

// SubEq is an equality between two subqueries.
type SubEq struct {
	A, B SubQuery
}

// HavingCond is one conjunct of the HAVING clause: a comparison whose
// left side is a group column or an aggregate call over the grouped
// input (Left.Agg != "" for aggregate calls).
type HavingCond struct {
	Left  SelectItem
	Op    string
	Right Operand
}

// OrderItem is one ORDER BY key. The unqualified column P names the
// estimated marginal probability of the answer tuple (a pseudo-column
// computed across sampled worlds) unless the query's select list outputs
// a real column of that name.
type OrderItem struct {
	Col  ColName
	Desc bool
}

// Query is the parsed statement.
type Query struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []Cond
	GroupBy  []ColName
	Having   []HavingCond
	OrderBy  []OrderItem
	Limit    int64 // -1 when the query has no LIMIT clause
}

// Assign is one SET assignment of an UPDATE statement. Values are
// literals: the dialect has no expressions on the write path.
type Assign struct {
	Col string
	Val Operand
}

// InsertStmt is a parsed INSERT. An empty Columns list means "values in
// schema order"; otherwise the list must cover the whole schema (the
// store has no column defaults), checked when the statement is resolved
// against a catalog.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Operand
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table TableRef
	Set   []Assign
	Where []Cond
}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table TableRef
	Where []Cond
}

// Statement is one parsed SQL statement: exactly one field is non-nil.
type Statement struct {
	Select *Query
	Insert *InsertStmt
	Update *UpdateStmt
	Delete *DeleteStmt
}

// Kind returns the statement's leading keyword, for diagnostics.
func (s *Statement) Kind() string {
	switch {
	case s.Select != nil:
		return "SELECT"
	case s.Insert != nil:
		return "INSERT"
	case s.Update != nil:
		return "UPDATE"
	case s.Delete != nil:
		return "DELETE"
	}
	return "empty"
}

type parser struct {
	src  string // original query text, for line/column error positions
	toks []token
	i    int
}

// Parse parses one SELECT statement of the supported dialect. DML
// statements are parsed by ParseStatement; passing one here reports the
// read/write API split rather than a token-level error.
func Parse(input string) (*Query, error) {
	stmt, err := ParseStatement(input)
	if err != nil {
		return nil, err
	}
	if stmt.Select == nil {
		return nil, posErrf(input, 0, "%s is a DML statement, not a query (use Exec)", stmt.Kind())
	}
	return stmt.Select, nil
}

// ParseStatement parses one statement of the supported dialect: a SELECT
// query or an INSERT/UPDATE/DELETE mutation.
func ParseStatement(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{src: input, toks: toks}
	stmt := &Statement{}
	switch {
	case p.at(tkKeyword, "SELECT"):
		stmt.Select, err = p.parseQuery(false)
	case p.at(tkKeyword, "INSERT"):
		stmt.Insert, err = p.parseInsert()
	case p.at(tkKeyword, "UPDATE"):
		stmt.Update, err = p.parseUpdate()
	case p.at(tkKeyword, "DELETE"):
		stmt.Delete, err = p.parseDelete()
	default:
		return nil, p.errf("expected SELECT, INSERT, UPDATE or DELETE, found %q", p.cur().text)
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := `"` + text + `"`
	if text == "" {
		// Expectations on a bare kind (identifiers, in this dialect) have
		// no literal spelling to quote.
		want = "identifier"
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return posErrf(p.src, p.cur().pos, format, args...)
}

// parseQuery parses SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
// [HAVING ...] [ORDER BY ...] [LIMIT n]. In subquery position (sub=true)
// the trailing clauses are rejected and the select list must be exactly
// COUNT(*).
func (p *parser) parseQuery(sub bool) (*Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.accept(tkKeyword, "DISTINCT") {
		q.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if sub {
		if len(q.Items) != 1 || q.Items[0].Agg != "COUNT" || !q.Items[0].Star {
			return nil, p.errf("subqueries must be SELECT COUNT(*)")
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, tr)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if sub && len(q.From) != 1 {
		return nil, p.errf("subqueries must reference exactly one table")
	}
	if p.accept(tkKeyword, "WHERE") {
		for {
			c, err := p.parseCond(sub)
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.accept(tkKeyword, "AND") {
				break
			}
		}
	}
	if !sub && p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if !sub && p.accept(tkKeyword, "HAVING") {
		for {
			hc, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, hc)
			if !p.accept(tkKeyword, "AND") {
				break
			}
		}
	}
	if !sub && p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if !sub && p.accept(tkKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tkNumber {
			return nil, p.errf("expected LIMIT count, found %q", t.text)
		}
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("LIMIT count %q is not an integer", t.text)
		}
		if n < 1 {
			return nil, p.errf("LIMIT count must be at least 1, got %d", n)
		}
		q.Limit = n
	}
	return q, nil
}

// parseHavingCond parses one HAVING conjunct. The left side may be an
// aggregate call (COUNT(*), SUM(col), ...) or a plain column of the
// grouped output.
func (p *parser) parseHavingCond() (HavingCond, error) {
	var left SelectItem
	t := p.cur()
	if t.kind == tkKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return HavingCond{}, err
			}
			left = SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.accept(tkSymbol, "*") {
				left.Star = true
			} else {
				col, err := p.parseColName()
				if err != nil {
					return HavingCond{}, err
				}
				left.Arg = col
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return HavingCond{}, err
			}
		}
	}
	if left.Agg == "" {
		col, err := p.parseColName()
		if err != nil {
			return HavingCond{}, err
		}
		left = SelectItem{Col: col}
	}
	op := p.cur()
	if op.kind != tkSymbol || !cmpOps[op.text] {
		return HavingCond{}, p.errf("expected comparison operator, found %q", op.text)
	}
	p.next()
	opText := op.text
	if opText == "<>" {
		opText = "!="
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return HavingCond{}, err
	}
	return HavingCond{Left: left, Op: opText, Right: rhs}, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tkKeyword {
		switch t.text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text}
			if t.text == "COUNT" && p.accept(tkSymbol, "*") {
				item.Star = true
			} else {
				col, err := p.parseColName()
				if err != nil {
					return SelectItem{}, err
				}
				item.Arg = col
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.accept(tkKeyword, "AS") {
				name, err := p.expect(tkIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				item.As = name.text
			}
			return item, nil
		}
	}
	col, err := p.parseColName()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col}
	if p.accept(tkKeyword, "AS") {
		name, err := p.expect(tkIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = name.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name.text, Alias: name.text}
	if p.at(tkIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) parseColName() (ColName, error) {
	first, err := p.expect(tkIdent, "")
	if err != nil {
		return ColName{}, err
	}
	if p.accept(tkSymbol, ".") {
		second, err := p.expect(tkIdent, "")
		if err != nil {
			return ColName{}, err
		}
		return ColName{Qual: first.text, Name: second.text}, nil
	}
	return ColName{Name: first.text}, nil
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCond(sub bool) (Cond, error) {
	// Subquery equality: ( SELECT ... ) = ( SELECT ... ).
	if !sub && p.at(tkSymbol, "(") {
		p.next()
		a, err := p.parseSubQuery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return Cond{}, err
		}
		b, err := p.parseSubQuery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return Cond{SubEq: &SubEq{A: a, B: b}}, nil
	}

	left, err := p.parseColName()
	if err != nil {
		return Cond{}, err
	}
	op := p.cur()
	if op.kind != tkSymbol || !cmpOps[op.text] {
		return Cond{}, p.errf("expected comparison operator, found %q", op.text)
	}
	p.next()
	if op.text == "<>" {
		op.text = "!="
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Left: left, Op: op.text, Right: rhs}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tkString:
		p.next()
		return Operand{IsStr: true, Str: t.text}, nil
	case tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, p.errf("bad number %q", t.text)
			}
			return Operand{Float: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, p.errf("bad integer %q", t.text)
		}
		return Operand{IsInt: true, Int: n}, nil
	case tkIdent:
		col, err := p.parseColName()
		if err != nil {
			return Operand{}, err
		}
		return Operand{IsCol: true, Col: col}, nil
	}
	return Operand{}, p.errf("expected value or column, found %q", t.text)
}

// parseInsert parses INSERT INTO t [(col, ...)] VALUES (lit, ...) [, ...].
func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tkKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name.text}
	if p.accept(tkSymbol, "(") {
		for {
			col, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col.text)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Operand
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		if len(st.Columns) > 0 && len(row) != len(st.Columns) {
			return nil, p.errf("VALUES row has %d values, column list has %d", len(row), len(st.Columns))
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return st, nil
}

// parseUpdate parses UPDATE t [alias] SET col = lit [, ...] [WHERE ...].
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if _, err := p.expect(tkKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tr}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assign{Col: col.text, Val: val})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	st.Where, err = p.parseOptWhere()
	return st, err
}

// parseDelete parses DELETE FROM t [alias] [WHERE ...].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if _, err := p.expect(tkKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tr}
	st.Where, err = p.parseOptWhere()
	return st, err
}

// parseOptWhere parses the optional WHERE clause of a DML statement: a
// conjunction of simple comparisons (no subquery equalities on the write
// path).
func (p *parser) parseOptWhere() ([]Cond, error) {
	if !p.accept(tkKeyword, "WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		c, err := p.parseCond(true)
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if !p.accept(tkKeyword, "AND") {
			break
		}
	}
	return conds, nil
}

// parseLiteral parses a string or number literal (the only values the
// write path accepts — no expressions, no column references).
func (p *parser) parseLiteral() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tkString, tkNumber:
		return p.parseOperand()
	}
	return Operand{}, p.errf("expected literal value, found %q", t.text)
}

func (p *parser) parseSubQuery() (SubQuery, error) {
	q, err := p.parseQuery(true)
	if err != nil {
		return SubQuery{}, err
	}
	for _, c := range q.Where {
		if c.SubEq != nil {
			return SubQuery{}, p.errf("nested subqueries are not supported")
		}
	}
	return SubQuery{Table: q.From[0], Conds: q.Where}, nil
}
