package sqlparse

import (
	"fmt"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// CompileExec parses one DML statement (INSERT, UPDATE or DELETE) and
// lowers it to the typed mutation IR. A SELECT is rejected with a pointer
// at the read API, mirroring Compile's rejection of DML.
func CompileExec(sql string) (ra.Mutation, error) {
	p := parserPool.Get().(*parser)
	p.reset(sql)
	stmt, err := p.parseInput()
	if err != nil {
		parserPool.Put(p)
		return nil, err
	}
	mut, err := lowerStatement(sql, stmt)
	parserPool.Put(p)
	return mut, err
}

// LowerMutation lowers an already parsed DML statement (the prepared-
// statement path, where the AST outlives the parse).
func LowerMutation(sql string, stmt *Statement) (ra.Mutation, error) {
	return lowerStatement(sql, stmt)
}

func lowerStatement(sql string, stmt *Statement) (ra.Mutation, error) {
	switch {
	case stmt.Insert != nil:
		return lowerInsert(stmt.Insert)
	case stmt.Update != nil:
		return lowerUpdate(stmt.Update)
	case stmt.Delete != nil:
		return lowerDelete(stmt.Delete)
	case stmt.Explain != nil:
		return nil, posErrf(sql, 0, "EXPLAIN is a diagnostic statement (issue it through the factordb query API)")
	}
	return nil, posErrf(sql, 0, "SELECT is a query, not a DML statement (use Query)")
}

func lowerInsert(st *InsertStmt) (ra.Mutation, error) {
	m := &ra.Insert{TableName: st.Table, Columns: st.Columns}
	for _, row := range st.Rows {
		vals := make([]relstore.Value, len(row))
		for i, op := range row {
			v, err := operandConst(op)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		m.Rows = append(m.Rows, vals)
	}
	return m, nil
}

func lowerUpdate(st *UpdateStmt) (ra.Mutation, error) {
	m := &ra.Update{TableName: st.Table.Name, Alias: st.Table.Alias}
	for _, a := range st.Set {
		v, err := operandConst(a.Val)
		if err != nil {
			return nil, err
		}
		m.Set = append(m.Set, ra.SetClause{Col: a.Col, Val: v})
	}
	where, err := lowerDMLWhere(st.Where, st.Table.Alias)
	if err != nil {
		return nil, err
	}
	m.Where = where
	return m, nil
}

func lowerDelete(st *DeleteStmt) (ra.Mutation, error) {
	where, err := lowerDMLWhere(st.Where, st.Table.Alias)
	if err != nil {
		return nil, err
	}
	return &ra.Delete{TableName: st.Table.Name, Alias: st.Table.Alias, Where: where}, nil
}

// lowerDMLWhere conjoins the WHERE conjuncts of a single-table mutation.
// Column references must be unqualified or qualified by the statement's
// own table alias.
func lowerDMLWhere(conds []Cond, alias string) (ra.Expr, error) {
	if len(conds) == 0 {
		return nil, nil
	}
	ref := func(col ColName) (ra.ColRef, error) {
		if col.Qual != "" && col.Qual != alias {
			return ra.ColRef{}, fmt.Errorf("sqlparse: unknown table alias %q in %s", col.Qual, col)
		}
		return ra.C(col.Qual, col.Name), nil
	}
	exprs := make([]ra.Expr, len(conds))
	for i, c := range conds {
		l, err := ref(c.Left)
		if err != nil {
			return nil, err
		}
		if c.In != nil {
			expr, err := inListExpr(l, c.In)
			if err != nil {
				return nil, err
			}
			exprs[i] = expr
			continue
		}
		op, err := cmpOpOf(c.Op)
		if err != nil {
			return nil, err
		}
		var rhs ra.Expr
		if c.Right.IsCol {
			r, err := ref(c.Right.Col)
			if err != nil {
				return nil, err
			}
			rhs = ra.Col(r)
		} else {
			v, err := operandConst(c.Right)
			if err != nil {
				return nil, err
			}
			rhs = ra.Const(v)
		}
		exprs[i] = ra.Cmp(op, ra.Col(l), rhs)
	}
	return ra.And(exprs...), nil
}
