// Package sqlparse implements a hand-rolled SQL front-end for the query
// dialect used in the paper's evaluation (Queries 1-4): single- and
// multi-table SELECT with conjunctive WHERE clauses, COUNT(*) aggregates,
// GROUP BY with HAVING, ORDER BY / LIMIT (including the marginal
// pseudo-column P for ranked answers), and the correlated
// COUNT(*)-subquery equality pattern of Query 3, which the planner
// lowers to a single incrementally maintainable group-aggregate join.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkString
	tkNumber
	tkSymbol
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, symbols canonical
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"COUNT": true, "AS": true, "GROUP": true, "BY": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"ASC": true, "DESC": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
}

// lineCol converts a byte offset into 1-based line and column numbers,
// the coordinates quoted in every lexer and parser error. Errors surface
// verbatim to database/sql users, so they must locate the fault in the
// query text the user actually wrote, newlines included.
func lineCol(input string, off int) (line, col int) {
	if off > len(input) {
		off = len(input)
	}
	line, col = 1, 1
	for _, c := range input[:off] {
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// posErrf formats an error prefixed with the line/column of offset off.
func posErrf(input string, off int, format string, args ...any) error {
	line, col := lineCol(input, off)
	return fmt.Errorf("sqlparse: line %d column %d: %s", line, col, fmt.Sprintf(format, args...))
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			// Standard SQL string literal: '' inside the quotes is an
			// escaped single quote ('O''Brien' is the value O'Brien).
			var sb strings.Builder
			j := i + 1
			closed := false
			for j < len(input) {
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, posErrf(input, i, "unterminated string literal")
			}
			toks = append(toks, token{tkString, sb.String(), i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			dots := 0
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				if input[j] == '.' {
					dots++
				}
				j++
			}
			if dots > 1 {
				return nil, posErrf(input, i, "malformed number %q", input[i:j])
			}
			toks = append(toks, token{tkNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			// Unquoted identifiers fold to upper case, as in standard SQL;
			// schema names in the engine are canonically upper-cased.
			up := strings.ToUpper(input[i:j])
			if keywords[up] {
				toks = append(toks, token{tkKeyword, up, i})
			} else {
				toks = append(toks, token{tkIdent, up, i})
			}
			i = j
		default:
			switch c {
			case ',', '.', '(', ')', '=', '*':
				toks = append(toks, token{tkSymbol, string(c), i})
				i++
			case '<':
				if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, token{tkSymbol, input[i : i+2], i})
					i += 2
				} else {
					toks = append(toks, token{tkSymbol, "<", i})
					i++
				}
			case '>':
				if i+1 < len(input) && input[i+1] == '=' {
					toks = append(toks, token{tkSymbol, ">=", i})
					i += 2
				} else {
					toks = append(toks, token{tkSymbol, ">", i})
					i++
				}
			case '!':
				if i+1 < len(input) && input[i+1] == '=' {
					toks = append(toks, token{tkSymbol, "!=", i})
					i += 2
				} else {
					return nil, posErrf(input, i, "unexpected '!'")
				}
			default:
				return nil, posErrf(input, i, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{tkEOF, "", len(input)})
	return toks, nil
}
