// Package sqlparse implements a hand-rolled SQL front-end for the query
// dialect used in the paper's evaluation (Queries 1-4): single- and
// multi-table SELECT with conjunctive WHERE clauses (comma joins and
// JOIN ... ON), COUNT(*) aggregates, GROUP BY with HAVING, ORDER BY /
// LIMIT (including the marginal pseudo-column P for ranked answers),
// IN lists, IN/EXISTS subquery predicates, the correlated
// COUNT(*)-subquery equality pattern of Query 3 (which the planner
// lowers to a single incrementally maintainable group-aggregate join),
// INSERT/UPDATE/DELETE mutations, ? placeholders, and EXPLAIN.
//
// The front end is built for the serving hot path: the lexer is a
// byte-scan state machine over [256]bool character-class tables that
// batch-tokenizes a statement into a reusable arena-backed slice of
// source sub-slices (tokenizing allocates nothing on a warm arena), the
// parser builds its AST out of a pooled per-parse arena, and
// Compile/CompileExec sit behind PlanCache so a repeated SQL spelling
// skips the front end entirely.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkString
	tkNumber
	tkSymbol
)

type token struct {
	text string // keywords upper-cased, symbols canonical
	pos  int32  // byte offset in the source (int32 keeps the struct at 24 bytes)
	kind tokKind
}

// Character-class tables, indexed by raw byte. They are filled from the
// unicode predicates the previous rune-based lexer applied to each byte
// (note: byte, not decoded rune — bytes ≥ 0x80 classify as their
// Latin-1 code points, exactly as before), so classification is a table
// load instead of a function call but admits the identical language.
var (
	isSpaceB  [256]bool
	isDigitB  [256]bool
	isLetterB [256]bool
	classB    [256]uint8  // bit flags below; the only table the hot loop touches
	symText   [256]string // canonical constant spelling of single-byte symbols
)

// classB bit flags. Folding every class into one 256-byte table keeps
// the whole classifier in four cache lines and lets one load serve both
// the whitespace skip and the token dispatch.
const (
	cIdent   uint8 = 1 << iota // letter, digit, or '_': identifier continuation
	cFold                      // strings.ToUpper might rewrite this byte
	cStart                     // letter or '_': identifier start
	cSpace                     // whitespace
	cDigit                     // decimal digit: number start
	cNumCont                   // digit or '.': number continuation
	cSym                       // single-byte symbol with a canonical spelling in symText
)

func init() {
	for b := 0; b < 256; b++ {
		r := rune(b)
		isSpaceB[b] = unicode.IsSpace(r)
		isDigitB[b] = unicode.IsDigit(r)
		isLetterB[b] = unicode.IsLetter(r)
		if isLetterB[b] || isDigitB[b] || b == '_' {
			classB[b] |= cIdent
		}
		if isLetterB[b] || b == '_' {
			classB[b] |= cStart
		}
		// ASCII lowercase folds; bytes >= 0x80 may be part of a multi-byte
		// rune whose upper case differs, so they conservatively fold too.
		if ('a' <= b && b <= 'z') || b >= 0x80 {
			classB[b] |= cFold
		}
		if isSpaceB[b] {
			classB[b] |= cSpace
		}
		if isDigitB[b] {
			classB[b] |= cDigit
		}
		if isDigitB[b] || b == '.' {
			classB[b] |= cNumCont
		}
	}
	for _, c := range []byte{',', '.', '(', ')', '=', '*', '?', '<', '>'} {
		symText[c] = string([]byte{c})
	}
	// '<' and '>' are excluded from cSym: they need a lookahead for the
	// two-byte <=, <>, >= spellings.
	for _, c := range []byte{',', '.', '(', ')', '=', '*', '?'} {
		classB[c] |= cSym
	}
}

// keywordsByLen buckets the reserved words by length so a candidate
// identifier that needs case folding is compared against at most a
// handful of same-length strings without upper-casing it first. A hit
// returns the canonical (constant) spelling, so keyword tokens never
// allocate regardless of the input's case.
var keywordsByLen = [9][]string{
	2: {"AS", "BY", "IN", "ON"},
	3: {"AND", "SUM", "AVG", "MIN", "MAX", "SET", "ASC", "NOT"},
	4: {"FROM", "DESC", "INTO", "JOIN"},
	5: {"WHERE", "COUNT", "GROUP", "ORDER", "LIMIT", "INNER"},
	6: {"SELECT", "HAVING", "INSERT", "VALUES", "UPDATE", "DELETE", "EXISTS"},
	7: {"EXPLAIN", "ANALYZE"},
	8: {"DISTINCT"},
}

// isKeywordUpper reports whether the already-uppercase word s is a
// reserved word. Length then first-byte dispatch rejects almost every
// identifier without a single string comparison, and a real keyword
// pays at most two short memequals — on the hot path (canonical SQL is
// upper-cased) this is the only keyword check that runs.
func isKeywordUpper(s string) bool {
	switch len(s) {
	case 2:
		switch s[0] {
		case 'A':
			return s == "AS"
		case 'B':
			return s == "BY"
		case 'I':
			return s == "IN"
		case 'O':
			return s == "ON"
		}
	case 3:
		switch s[0] {
		case 'A':
			return s == "AND" || s == "AVG" || s == "ASC"
		case 'S':
			return s == "SUM" || s == "SET"
		case 'M':
			return s == "MIN" || s == "MAX"
		case 'N':
			return s == "NOT"
		}
	case 4:
		switch s[0] {
		case 'F':
			return s == "FROM"
		case 'D':
			return s == "DESC"
		case 'I':
			return s == "INTO"
		case 'J':
			return s == "JOIN"
		}
	case 5:
		switch s[0] {
		case 'W':
			return s == "WHERE"
		case 'C':
			return s == "COUNT"
		case 'G':
			return s == "GROUP"
		case 'O':
			return s == "ORDER"
		case 'L':
			return s == "LIMIT"
		case 'I':
			return s == "INNER"
		}
	case 6:
		switch s[0] {
		case 'S':
			return s == "SELECT"
		case 'H':
			return s == "HAVING"
		case 'I':
			return s == "INSERT"
		case 'V':
			return s == "VALUES"
		case 'U':
			return s == "UPDATE"
		case 'D':
			return s == "DELETE"
		case 'E':
			return s == "EXISTS"
		}
	case 7:
		switch s[0] {
		case 'E':
			return s == "EXPLAIN"
		case 'A':
			return s == "ANALYZE"
		}
	case 8:
		return s == "DISTINCT"
	}
	return false
}

// keywordOf returns the canonical spelling of s if it is a reserved
// word (matched ASCII-case-insensitively), or "". Only words that
// contain foldable bytes come here; all-uppercase words take the
// isKeywordUpper fast path instead.
func keywordOf(s string) string {
	if len(s) >= len(keywordsByLen) {
		return ""
	}
	for _, kw := range keywordsByLen[len(s)] {
		if foldEqUpper(s, kw) {
			return kw
		}
	}
	return ""
}

// foldEqUpper reports whether s equals the all-uppercase ASCII string
// upper under ASCII case folding. len(s) == len(upper) is the caller's
// invariant (same length bucket).
func foldEqUpper(s, upper string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// lineCol converts a byte offset into 1-based line and column numbers,
// the coordinates quoted in every lexer and parser error. Errors surface
// verbatim to database/sql users, so they must locate the fault in the
// query text the user actually wrote, newlines included.
func lineCol(input string, off int) (line, col int) {
	if off > len(input) {
		off = len(input)
	}
	line, col = 1, 1
	for _, c := range input[:off] {
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// posErrf formats an error prefixed with the line/column of offset off.
func posErrf(input string, off int, format string, args ...any) error {
	line, col := lineCol(input, off)
	return fmt.Errorf("sqlparse: line %d column %d: %s", line, col, fmt.Sprintf(format, args...))
}

// tokenize batch-scans src into dst (reusing its capacity) and returns
// the token stream terminated by an EOF sentinel. Token text is a
// sub-slice of src (or a canonical constant), so scanning a statement
// allocates nothing beyond dst's growth; the two exceptions are string
// literals containing the ” escape and identifiers containing
// lowercase letters. On a lex error the tokens scanned so far are
// returned (still EOF-terminated) together with the error positioned at
// the offending byte; the parser then treats the stream as truncated
// and reports the lex error first, exactly as if the whole statement
// had been lexed before parsing began.
func tokenize(src string, dst []token) ([]token, error) {
	// Worst case is one token per source byte plus the EOF sentinel, so
	// after this single capacity check every emit below is an indexed
	// store with no per-token append bookkeeping. The arena (and the
	// benchmarks) hand the returned slice back in, so the buffer is
	// paid for once per connection, not per statement.
	if cap(dst) < len(src)+1 {
		dst = make([]token, 0, len(src)+1)
	}
	buf := dst[:cap(dst)]
	n := 0
	i := 0
	var flags uint8
	// The scan is a small goto machine so that a class byte is loaded
	// exactly once per source byte: the ident and number loops hand the
	// class of their terminating byte straight to the next dispatch
	// (goto classified) instead of letting the top of the loop reload it.
scan:
	if i >= len(src) {
		buf[n] = token{"", int32(len(src)), tkEOF}
		return buf[:n+1], nil
	}
	flags = classB[src[i]]
classified:
	if flags&cSpace != 0 {
		i++
		goto scan
	}
	// Identifier/keyword start is the most common class in SQL text,
	// so it is tested first.
	if flags&cStart != 0 {
		wf := flags
		j := i + 1
		var cl uint8
		for j < len(src) {
			cl = classB[src[j]]
			if cl&cIdent == 0 {
				break
			}
			wf |= cl
			j++
		}
		word := src[i:j]
		switch {
		case wf&cFold == 0:
			// Already canonically upper-cased: keywords and
			// identifiers alike are returned as sub-slices.
			if isKeywordUpper(word) {
				buf[n] = token{word, int32(i), tkKeyword}
			} else {
				buf[n] = token{word, int32(i), tkIdent}
			}
		default:
			if kw := keywordOf(word); kw != "" {
				buf[n] = token{kw, int32(i), tkKeyword}
			} else {
				// Unquoted identifiers fold to upper case, as in
				// standard SQL; schema names in the engine are
				// canonically upper-cased.
				buf[n] = token{strings.ToUpper(word), int32(i), tkIdent}
			}
		}
		n++
		i = j
		if j < len(src) {
			flags = cl
			goto classified
		}
		buf[n] = token{"", int32(len(src)), tkEOF}
		return buf[:n+1], nil
	}
	c := src[i]
	switch {
	case flags&cSym != 0:
		buf[n] = token{symText[c], int32(i), tkSymbol}
		n++
		i++
		goto scan
	case c == '\'':
		// Inline scan to the closing quote; literals with the ''
		// escape (or no terminator) drop to the cold helper.
		j := i + 1
		for j < len(src) && src[j] != '\'' {
			j++
		}
		if j >= len(src) || (j+1 < len(src) && src[j+1] == '\'') {
			tok, k, err := lexString(src, i)
			if err != nil {
				buf[n] = token{"", int32(len(src)), tkEOF}
				return buf[:n+1], err
			}
			buf[n] = tok
			n++
			i = k
			goto scan
		}
		buf[n] = token{src[i+1 : j], int32(i), tkString}
		n++
		i = j + 1
		goto scan
	case flags&cDigit != 0:
		j := i + 1
		dots := 0
		var cl uint8
		for j < len(src) {
			cl = classB[src[j]]
			if cl&cNumCont == 0 {
				break
			}
			if src[j] == '.' {
				dots++
			}
			j++
		}
		if dots > 1 {
			buf[n] = token{"", int32(len(src)), tkEOF}
			return buf[:n+1], posErrf(src, i, "malformed number %q", src[i:j])
		}
		buf[n] = token{src[i:j], int32(i), tkNumber}
		n++
		i = j
		if j < len(src) {
			flags = cl
			goto classified
		}
		buf[n] = token{"", int32(len(src)), tkEOF}
		return buf[:n+1], nil
	}
	switch c {
	case '<':
		if i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
			buf[n] = token{src[i : i+2], int32(i), tkSymbol}
			n++
			i += 2
		} else {
			buf[n] = token{"<", int32(i), tkSymbol}
			n++
			i++
		}
	case '>':
		if i+1 < len(src) && src[i+1] == '=' {
			buf[n] = token{">=", int32(i), tkSymbol}
			n++
			i += 2
		} else {
			buf[n] = token{">", int32(i), tkSymbol}
			n++
			i++
		}
	case '!':
		if i+1 < len(src) && src[i+1] == '=' {
			buf[n] = token{"!=", int32(i), tkSymbol}
			n++
			i += 2
		} else {
			buf[n] = token{"", int32(len(src)), tkEOF}
			return buf[:n+1], posErrf(src, i, "unexpected '!'")
		}
	default:
		buf[n] = token{"", int32(len(src)), tkEOF}
		return buf[:n+1], posErrf(src, i, "unexpected character %q", rune(c))
	}
	goto scan
}

// lexString scans a standard SQL string literal starting at the opening
// quote: ” inside the quotes is an escaped single quote ('O”Brien' is
// the value O'Brien). Literals without the escape — the overwhelmingly
// common case — are returned as sub-slices of the source. The second
// return value is the offset just past the closing quote.
func lexString(src string, i int) (token, int, error) {
	j := i + 1
	for j < len(src) {
		if src[j] == '\'' {
			if j+1 < len(src) && src[j+1] == '\'' {
				return lexEscapedString(src, i, j)
			}
			return token{src[i+1 : j], int32(i), tkString}, j + 1, nil
		}
		j++
	}
	return token{}, 0, posErrf(src, i, "unterminated string literal")
}

// lexEscapedString resumes a string literal scan at its first ” escape
// (offset j names the escape's first quote) and unescapes into a fresh
// buffer — the cold path.
func lexEscapedString(src string, i, j int) (token, int, error) {
	var sb strings.Builder
	sb.WriteString(src[i+1 : j])
	for j < len(src) {
		if src[j] == '\'' {
			if j+1 < len(src) && src[j+1] == '\'' {
				sb.WriteByte('\'')
				j += 2
				continue
			}
			return token{sb.String(), int32(i), tkString}, j + 1, nil
		}
		sb.WriteByte(src[j])
		j++
	}
	return token{}, 0, posErrf(src, i, "unterminated string literal")
}

// leadingKeyword returns the canonical keyword spelling of src's first
// word ("" if it is not a reserved word or src does not start with one)
// and the offset just past it.
func leadingKeyword(src string) (kw string, end int) {
	i := 0
	for i < len(src) && isSpaceB[src[i]] {
		i++
	}
	j := i
	for j < len(src) && classB[src[j]]&cIdent != 0 {
		j++
	}
	word := src[i:j]
	if word == "" {
		return "", j
	}
	if isKeywordUpper(word) {
		return word, j
	}
	return keywordOf(word), j
}
