package sqlparse

import (
	"strings"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

func TestCompileExecInsert(t *testing.T) {
	mut, err := CompileExec(
		`INSERT INTO CITY (NAME, POP) VALUES ('Boston', 7), ('Worcester', 2)`)
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := mut.(*ra.Insert)
	if !ok {
		t.Fatalf("lowered to %T, want *ra.Insert", mut)
	}
	if ins.TableName != "CITY" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[0][0].AsString() != "Boston" || ins.Rows[1][1].AsInt() != 2 {
		t.Errorf("values = %v", ins.Rows)
	}

	// Without a column list: values in schema order, floats allowed.
	mut, err = CompileExec(`INSERT INTO CITY VALUES (1, 'x', 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	ins = mut.(*ra.Insert)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 || ins.Rows[0][2].Kind() != relstore.TFloat {
		t.Errorf("insert = %+v", ins)
	}
}

func TestCompileExecUpdateDelete(t *testing.T) {
	mut, err := CompileExec(
		`UPDATE TOKEN T SET STRING = 'Boston', LABEL = 'O' WHERE T.DOC_ID = 3 AND STRING != 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	up, ok := mut.(*ra.Update)
	if !ok {
		t.Fatalf("lowered to %T, want *ra.Update", mut)
	}
	if up.TableName != "TOKEN" || up.Alias != "T" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	if up.Set[0].Col != "STRING" || up.Set[0].Val.AsString() != "Boston" {
		t.Errorf("set = %+v", up.Set)
	}

	mut, err = CompileExec(`DELETE FROM TOKEN WHERE DOC_ID = 9`)
	if err != nil {
		t.Fatal(err)
	}
	del := mut.(*ra.Delete)
	if del.TableName != "TOKEN" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}

	// WHERE is optional: a bare DELETE matches every row.
	mut, err = CompileExec(`delete from token`)
	if err != nil {
		t.Fatal(err)
	}
	if del := mut.(*ra.Delete); del.Where != nil {
		t.Errorf("bare delete carries a predicate: %v", del.Where)
	}
}

func TestCompileExecErrorsArePositioned(t *testing.T) {
	cases := []struct {
		sql     string
		wantPos string
		wantMsg string
	}{
		{"INSERT TOKEN VALUES (1)", "line 1 column 8", `expected "INTO"`},
		{"INSERT INTO T (A, B) VALUES (1)", "line 1 column 32", "VALUES row has 1 values"},
		{"INSERT INTO T VALUES (A)", "line 1 column 23", "expected literal value"},
		{"UPDATE T SET A = B", "line 1 column 18", "expected literal value"},
		{"UPDATE T WHERE A = 1", "line 1 column 10", `expected "SET"`},
		// Subquery equalities are query-only; in DML the opening paren is
		// rejected where a column reference is expected.
		{"DELETE FROM T WHERE (SELECT COUNT(*) FROM T) = 1", "line 1 column 21", "expected identifier"},
		{"DELETE T", "line 1 column 8", `expected "FROM"`},
		{"UPDATE T SET A = 1 GARBAGE", "line 1 column 20", "trailing input"},
	}
	for _, c := range cases {
		_, err := CompileExec(c.sql)
		if err == nil {
			t.Errorf("%q compiled", c.sql)
			continue
		}
		for _, want := range []string{c.wantPos, c.wantMsg} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%q: error %q lacks %q", c.sql, err, want)
			}
		}
	}
}

func TestReadWriteAPISplit(t *testing.T) {
	// A query handed to the write path points at the read API...
	_, err := CompileExec(`SELECT STRING FROM TOKEN`)
	if err == nil || !strings.Contains(err.Error(), "use Query") {
		t.Errorf("CompileExec(SELECT) = %v", err)
	}
	// ...and vice versa.
	for _, sql := range []string{
		`INSERT INTO T VALUES (1)`,
		`UPDATE T SET A = 1`,
		`DELETE FROM T`,
	} {
		_, _, err := Compile(sql)
		if err == nil || !strings.Contains(err.Error(), "use Exec") {
			t.Errorf("Compile(%q) = %v", sql, err)
		}
	}
}

func TestLowerDMLWhereAliasCheck(t *testing.T) {
	_, err := CompileExec(`UPDATE TOKEN T SET STRING = 'x' WHERE U.DOC_ID = 1`)
	if err == nil || !strings.Contains(err.Error(), `unknown table alias "U"`) {
		t.Errorf("foreign alias = %v", err)
	}
}
