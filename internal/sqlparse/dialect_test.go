package sqlparse

import (
	"strings"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// The widened dialect (JOIN ... ON, IN, EXISTS, EXPLAIN, ? placeholders)
// lowers onto the same relational algebra the original comma-join
// dialect produced, so every new spelling is pinned two ways: by plan
// fingerprint against its classic equivalent where one exists, and by
// evaluation on the fixture world where the construct is net-new.

func fingerprintOf(t *testing.T, sql string) string {
	t.Helper()
	plan, _, err := Compile(sql)
	if err != nil {
		t.Fatalf("Compile(%q): %v", sql, err)
	}
	return ra.PlanFingerprint(plan)
}

func TestJoinOnEquivalentToCommaJoin(t *testing.T) {
	comma := query4
	for _, joined := range []string{
		`SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2 ON T1.DOC_ID=T2.DOC_ID
		 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T2.LABEL='B-PER'`,
		`SELECT T2.STRING FROM TOKEN T1 INNER JOIN TOKEN T2 ON T1.DOC_ID=T2.DOC_ID
		 WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T2.LABEL='B-PER'`,
		// ON may carry the filter conjuncts too: ON is sugar for WHERE.
		`SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2
		 ON T1.DOC_ID=T2.DOC_ID AND T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T2.LABEL='B-PER'`,
	} {
		if got, want := fingerprintOf(t, joined), fingerprintOf(t, comma); got != want {
			t.Errorf("JOIN ... ON spelling fingerprints differently:\n  %q\n  got  %s\n  want %s", joined, got, want)
		}
	}
	// And it evaluates: doc 1 holds Boston/B-ORG plus two B-PER tokens.
	bag := run(t, testDB(t), `SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2 ON T1.DOC_ID=T2.DOC_ID
		WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T2.LABEL='B-PER'`)
	if bag.Size() != 2 {
		t.Fatalf("JOIN query size = %d, want 2", bag.Size())
	}
}

func TestInLiteralList(t *testing.T) {
	db := testDB(t)
	if got := run(t, db, `SELECT STRING FROM TOKEN WHERE LABEL IN ('B-PER', 'B-ORG')`).Size(); got != 5 {
		t.Errorf("IN ('B-PER','B-ORG') size = %d, want 5", got)
	}
	if got := run(t, db, `SELECT STRING FROM TOKEN WHERE LABEL NOT IN ('B-PER', 'B-ORG')`).Size(); got != 3 {
		t.Errorf("NOT IN ('B-PER','B-ORG') size = %d, want 3", got)
	}
	if got := run(t, db, `SELECT STRING FROM TOKEN WHERE TOK_ID IN (1, 4, 6)`).Size(); got != 3 {
		t.Errorf("TOK_ID IN (1,4,6) size = %d, want 3", got)
	}
	// A one-element IN is exactly an equality predicate.
	one := fingerprintOf(t, `SELECT STRING FROM TOKEN WHERE LABEL IN ('B-PER')`)
	eq := fingerprintOf(t, `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`)
	if one != eq {
		t.Errorf("IN ('B-PER') fingerprint %s != LABEL='B-PER' fingerprint %s", one, eq)
	}
}

func TestInSubquery(t *testing.T) {
	// Docs 1 and 2 contain a B-ORG token; doc 3 does not. Selecting every
	// token whose document has one yields 7 of the 8 fixture rows.
	bag := run(t, testDB(t),
		`SELECT T.STRING FROM TOKEN T WHERE T.DOC_ID IN (SELECT T1.DOC_ID FROM TOKEN T1 WHERE T1.LABEL='B-ORG')`)
	if bag.Size() != 7 {
		t.Fatalf("IN-subquery size = %d, want 7", bag.Size())
	}
	if got := bag.Count(relstore.Tuple{relstore.String("the")}.Key()); got != 0 {
		t.Errorf("doc 3 token leaked through the IN-subquery (count=%d)", got)
	}
}

func TestExists(t *testing.T) {
	// EXISTS with the same correlation is the same semi-join as the
	// IN-subquery spelling, and the two lower to the same plan.
	exists := `SELECT T.STRING FROM TOKEN T WHERE EXISTS (SELECT * FROM TOKEN T1 WHERE T1.LABEL='B-ORG' AND T1.DOC_ID=T.DOC_ID)`
	in := `SELECT T.STRING FROM TOKEN T WHERE T.DOC_ID IN (SELECT T1.DOC_ID FROM TOKEN T1 WHERE T1.LABEL='B-ORG')`
	if got := run(t, testDB(t), exists).Size(); got != 7 {
		t.Fatalf("EXISTS size = %d, want 7", got)
	}
	if fe, fi := fingerprintOf(t, exists), fingerprintOf(t, in); fe != fi {
		t.Errorf("EXISTS fingerprint %s != equivalent IN-subquery fingerprint %s", fe, fi)
	}
}

func TestDialectRejections(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT STRING FROM TOKEN T WHERE NOT EXISTS (SELECT * FROM TOKEN T1 WHERE T1.DOC_ID=T.DOC_ID)`,
			"NOT EXISTS is not supported"},
		{`SELECT STRING FROM TOKEN T WHERE T.DOC_ID NOT IN (SELECT T1.DOC_ID FROM TOKEN T1)`,
			"NOT IN with a subquery is not supported"},
		{`SELECT T.STRING FROM TOKEN T WHERE EXISTS (SELECT * FROM TOKEN T1 WHERE T1.LABEL='B-ORG')`,
			"no correlation predicate"},
	}
	for _, tc := range cases {
		_, _, err := Compile(tc.sql)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", tc.sql, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) error = %q, want substring %q", tc.sql, err, tc.want)
		}
	}
}

func TestExplainParses(t *testing.T) {
	stmt, err := ParseStatement(`EXPLAIN SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`)
	if err != nil {
		t.Fatalf("ParseStatement(EXPLAIN ...): %v", err)
	}
	if stmt.Explain == nil || stmt.Explain.Select == nil {
		t.Fatalf("EXPLAIN statement = %+v, want Explain wrapping a SELECT", stmt)
	}
	if got := stmt.Kind(); got != "EXPLAIN" {
		t.Errorf("Kind() = %q, want EXPLAIN", got)
	}
	if !IsExplain("  explain select 1") {
		t.Error("IsExplain is not case/space insensitive")
	}
	if IsExplain("SELECT STRING FROM TOKEN") {
		t.Error("IsExplain claims a plain SELECT")
	}
	if got := ExplainTarget("EXPLAIN SELECT STRING FROM TOKEN"); got != "SELECT STRING FROM TOKEN" {
		t.Errorf("ExplainTarget = %q", got)
	}
}

func TestPlaceholderCountingAndUnbound(t *testing.T) {
	stmt, err := ParseStatement(`SELECT STRING FROM TOKEN WHERE LABEL=? AND DOC_ID=?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Params != 2 {
		t.Fatalf("Params = %d, want 2", stmt.Params)
	}
	// Compiling a parameterized statement without binding must fail with
	// the prepare hint, not silently treat ? as a value.
	_, _, err = Compile(`SELECT STRING FROM TOKEN WHERE LABEL=?`)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("Compile with unbound ? = %v, want unbound-placeholder error", err)
	}
	_, err = CompileExec(`UPDATE TOKEN SET STRING=? WHERE TOK_ID=3`)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("CompileExec with unbound ? = %v, want unbound-placeholder error", err)
	}
}

// TestBoundFingerprintMatchesInlined is the prepared-statement identity
// contract: binding arguments and re-planning must land on the exact
// fingerprint of the same query with the literals inlined, so result
// caches and shared views are oblivious to which path compiled the SQL.
func TestBoundFingerprintMatchesInlined(t *testing.T) {
	cases := []struct {
		param   string
		args    []any
		inlined string
	}{
		{`SELECT STRING FROM TOKEN WHERE LABEL=? AND DOC_ID=?`, []any{"B-PER", int64(1)},
			`SELECT STRING FROM TOKEN WHERE LABEL='B-PER' AND DOC_ID=1`},
		{`SELECT STRING FROM TOKEN WHERE LABEL IN (?, ?)`, []any{"B-PER", "B-ORG"},
			`SELECT STRING FROM TOKEN WHERE LABEL IN ('B-PER', 'B-ORG')`},
		{`SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2 ON T1.DOC_ID=T2.DOC_ID
		  WHERE T1.STRING=? AND T1.LABEL='B-ORG' AND T2.LABEL=?`, []any{"Boston", "B-PER"},
			query4},
	}
	for _, tc := range cases {
		stmt, err := ParseStatement(tc.param)
		if err != nil {
			t.Fatalf("ParseStatement(%q): %v", tc.param, err)
		}
		bound, err := BindArgs(stmt, tc.args)
		if err != nil {
			t.Fatalf("BindArgs(%q): %v", tc.param, err)
		}
		plan, _, err := PlanQuery(bound.Select)
		if err != nil {
			t.Fatalf("PlanQuery(%q): %v", tc.param, err)
		}
		if got, want := ra.PlanFingerprint(plan), fingerprintOf(t, tc.inlined); got != want {
			t.Errorf("bound fingerprint of %q = %s, want inlined %s", tc.param, got, want)
		}
	}
}

func TestBindArgsValidation(t *testing.T) {
	stmt, err := ParseStatement(`SELECT STRING FROM TOKEN WHERE LABEL=?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BindArgs(stmt, nil); err == nil || !strings.Contains(err.Error(), "1 placeholders, got 0") {
		t.Errorf("BindArgs with too few args = %v", err)
	}
	if _, err := BindArgs(stmt, []any{"a", "b"}); err == nil || !strings.Contains(err.Error(), "1 placeholders, got 2") {
		t.Errorf("BindArgs with too many args = %v", err)
	}
	if _, err := BindArgs(stmt, []any{struct{}{}}); err == nil || !strings.Contains(err.Error(), "unsupported argument type") {
		t.Errorf("BindArgs with a struct arg = %v", err)
	}
	// Binding must not mutate the retained tree: bind twice with
	// different values and check both plans differ from each other but
	// the statement still reports its placeholder.
	b1, err := BindArgs(stmt, []any{"B-PER"})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BindArgs(stmt, []any{"B-ORG"})
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := PlanQuery(b1.Select)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := PlanQuery(b2.Select)
	if err != nil {
		t.Fatal(err)
	}
	if ra.PlanFingerprint(p1) == ra.PlanFingerprint(p2) {
		t.Error("binding different values produced identical plans (retained tree mutated?)")
	}
	if stmt.Params != 1 || stmt.Select.Where[0].Right.IsParam != true {
		t.Error("BindArgs mutated the retained statement")
	}
}
