package sqlparse

import (
	"fmt"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// Compile parses the SQL text and lowers it to a relational-algebra plan.
func Compile(sql string) (ra.Plan, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return PlanQuery(q)
}

// PlanQuery lowers a parsed query to a relational-algebra plan:
// single-alias predicates are pushed below joins, cross-alias equalities
// become hash-join conditions, and correlated COUNT(*)-subquery
// equalities are rewritten into one shared group-aggregate join (making
// Query 3 incrementally maintainable).
func PlanQuery(q *Query) (ra.Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqlparse: query has no FROM clause")
	}
	aliases := make(map[string]bool)
	for _, tr := range q.From {
		if aliases[tr.Alias] {
			return nil, fmt.Errorf("sqlparse: duplicate table alias %q", tr.Alias)
		}
		aliases[tr.Alias] = true
	}

	singleTable := ""
	if len(q.From) == 1 {
		singleTable = q.From[0].Alias
	}

	// Partition WHERE conjuncts.
	perAlias := make(map[string][]ra.Expr)
	var joinConds []ra.EquiCond
	var topFilters []ra.Expr
	subEqIndex := 0
	type groupPlan struct {
		plan     ra.Plan
		alias    string
		joinCond ra.EquiCond
		filter   ra.Expr
	}
	var groupPlans []groupPlan

	for _, c := range q.Where {
		if c.SubEq != nil {
			gp, err := lowerSubEq(c.SubEq, aliases, subEqIndex)
			if err != nil {
				return nil, err
			}
			subEqIndex++
			groupPlans = append(groupPlans, groupPlan(*gp))
			continue
		}
		owner, expr, isJoin, jc, err := classifyCond(c, aliases, singleTable)
		if err != nil {
			return nil, err
		}
		switch {
		case isJoin:
			joinConds = append(joinConds, jc)
		case owner != "":
			perAlias[owner] = append(perAlias[owner], expr)
		default:
			topFilters = append(topFilters, expr)
		}
	}

	// Base plans: scan each table, pushing its private predicates.
	type tagged struct {
		plan    ra.Plan
		aliases map[string]bool
	}
	var pending []tagged
	for _, tr := range q.From {
		var p ra.Plan = ra.NewScan(tr.Name, tr.Alias)
		if preds := perAlias[tr.Alias]; len(preds) > 0 {
			p = ra.NewSelect(p, ra.And(preds...))
		}
		pending = append(pending, tagged{plan: p, aliases: map[string]bool{tr.Alias: true}})
	}
	for _, gp := range groupPlans {
		pending = append(pending, tagged{plan: gp.plan, aliases: map[string]bool{gp.alias: true}})
		joinConds = append(joinConds, gp.joinCond)
		topFilters = append(topFilters, gp.filter)
	}

	// Left-deep join in FROM order, picking up applicable equi-conditions.
	cur := pending[0]
	for _, nxt := range pending[1:] {
		var on []ra.EquiCond
		var rest []ra.EquiCond
		for _, jc := range joinConds {
			l, r := jc.Left.Rel, jc.Right.Rel
			switch {
			case cur.aliases[l] && nxt.aliases[r]:
				on = append(on, jc)
			case cur.aliases[r] && nxt.aliases[l]:
				on = append(on, ra.EquiCond{Left: jc.Right, Right: jc.Left})
			default:
				rest = append(rest, jc)
			}
		}
		joinConds = rest
		cur.plan = ra.NewJoin(cur.plan, nxt.plan, on, nil)
		for a := range nxt.aliases {
			cur.aliases[a] = true
		}
	}
	// Any join condition not consumed (e.g. three-way cycles) becomes a
	// residual filter.
	for _, jc := range joinConds {
		topFilters = append(topFilters, ra.Eq(ra.Col(jc.Left), ra.Col(jc.Right)))
	}
	plan := cur.plan
	if len(topFilters) > 0 {
		plan = ra.NewSelect(plan, ra.And(topFilters...))
	}
	lowered, err := lowerSelectList(q, plan)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		lowered = ra.NewDistinct(lowered)
	}
	return lowered, nil
}

// classifyCond decides whether a simple conjunct is a pushable
// single-alias predicate, a join condition, or a top-level filter.
func classifyCond(c Cond, aliases map[string]bool, singleTable string) (owner string, expr ra.Expr, isJoin bool, jc ra.EquiCond, err error) {
	qualOf := func(col ColName) (string, error) {
		if col.Qual == "" {
			return singleTable, nil // "" means unknown when multiple tables
		}
		if !aliases[col.Qual] {
			return "", fmt.Errorf("sqlparse: unknown table alias %q in %s", col.Qual, col)
		}
		return col.Qual, nil
	}
	lq, err := qualOf(c.Left)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	op, err := cmpOpOf(c.Op)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	lref := ra.C(c.Left.Qual, c.Left.Name)
	if !c.Right.IsCol {
		return lq, ra.Cmp(op, ra.Col(lref), ra.Const(operandValue(c.Right))), false, ra.EquiCond{}, nil
	}
	rq, err := qualOf(c.Right.Col)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	rref := ra.C(c.Right.Col.Qual, c.Right.Col.Name)
	if lq != "" && lq == rq {
		return lq, ra.Cmp(op, ra.Col(lref), ra.Col(rref)), false, ra.EquiCond{}, nil
	}
	if c.Op == "=" && lq != "" && rq != "" && lq != rq {
		return "", nil, true, ra.EquiCond{Left: lref, Right: rref}, nil
	}
	return "", ra.Cmp(op, ra.Col(lref), ra.Col(rref)), false, ra.EquiCond{}, nil
}

func cmpOpOf(op string) (ra.CmpOp, error) {
	switch op {
	case "=":
		return ra.OpEq, nil
	case "!=":
		return ra.OpNe, nil
	case "<":
		return ra.OpLt, nil
	case "<=":
		return ra.OpLe, nil
	case ">":
		return ra.OpGt, nil
	case ">=":
		return ra.OpGe, nil
	}
	return 0, fmt.Errorf("sqlparse: unsupported operator %q", op)
}

func operandValue(o Operand) relstore.Value {
	switch {
	case o.IsStr:
		return relstore.String(o.Str)
	case o.IsInt:
		return relstore.Int(o.Int)
	default:
		return relstore.Float(o.Float)
	}
}

// lowerSubEq rewrites (SELECT COUNT(*) FROM t a WHERE φA AND corr) =
// (SELECT COUNT(*) FROM t b WHERE φB AND corr) into a single group-
// aggregate over t grouped by the correlation column with two COUNT_IF
// aggregates, to be joined with the outer query on the correlation pair.
func lowerSubEq(se *SubEq, outer map[string]bool, idx int) (*struct {
	plan     ra.Plan
	alias    string
	joinCond ra.EquiCond
	filter   ra.Expr
}, error) {
	if se.A.Table.Name != se.B.Table.Name {
		return nil, fmt.Errorf("sqlparse: subquery equality over different tables %q and %q is not supported",
			se.A.Table.Name, se.B.Table.Name)
	}
	galias := fmt.Sprintf("_g%d", idx)

	extract := func(sq SubQuery) (outerCol ColName, innerCol string, preds []ra.Expr, err error) {
		corrSeen := false
		for _, c := range sq.Conds {
			// A correlation conjunct links the subquery alias with an
			// outer alias via equality.
			if c.Right.IsCol && c.Op == "=" {
				lIn := c.Left.Qual == sq.Table.Alias
				rIn := c.Right.Col.Qual == sq.Table.Alias
				lOut := outer[c.Left.Qual]
				rOut := outer[c.Right.Col.Qual]
				if (lIn && rOut) || (rIn && lOut) {
					if corrSeen {
						err = fmt.Errorf("sqlparse: subquery has multiple correlation predicates")
						return
					}
					corrSeen = true
					if lIn {
						innerCol, outerCol = c.Left.Name, c.Right.Col
					} else {
						innerCol, outerCol = c.Right.Col.Name, c.Left
					}
					continue
				}
			}
			// Anything else must be local to the subquery; requalify it
			// onto the shared group scan alias.
			expr, lerr := localSubCond(c, sq.Table.Alias, galias)
			if lerr != nil {
				err = lerr
				return
			}
			preds = append(preds, expr)
		}
		if !corrSeen {
			err = fmt.Errorf("sqlparse: subquery on %q has no correlation predicate", sq.Table.Name)
		}
		return
	}

	outA, inA, predsA, err := extract(se.A)
	if err != nil {
		return nil, err
	}
	outB, inB, predsB, err := extract(se.B)
	if err != nil {
		return nil, err
	}
	if inA != inB || outA != outB {
		return nil, fmt.Errorf("sqlparse: subqueries must correlate on the same column pair (got %s~%s and %s~%s)",
			outA, inA, outB, inB)
	}

	cntA := fmt.Sprintf("_sqa%d", idx)
	cntB := fmt.Sprintf("_sqb%d", idx)
	agg := ra.NewGroupAgg(
		ra.NewScan(se.A.Table.Name, galias),
		[]ra.ColRef{ra.C(galias, inA)},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(predsA...), As: cntA},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(predsB...), As: cntB},
	)
	return &struct {
		plan     ra.Plan
		alias    string
		joinCond ra.EquiCond
		filter   ra.Expr
	}{
		plan:     agg,
		alias:    galias,
		joinCond: ra.EquiCond{Left: ra.C(outA.Qual, outA.Name), Right: ra.C(galias, inA)},
		filter:   ra.Eq(ra.Col(ra.C("", cntA)), ra.Col(ra.C("", cntB))),
	}, nil
}

// localSubCond requalifies a subquery-local conjunct onto the group alias.
func localSubCond(c Cond, subAlias, galias string) (ra.Expr, error) {
	op, err := cmpOpOf(c.Op)
	if err != nil {
		return nil, err
	}
	requal := func(col ColName) (ra.ColRef, error) {
		switch col.Qual {
		case "", subAlias:
			return ra.C(galias, col.Name), nil
		default:
			return ra.ColRef{}, fmt.Errorf("sqlparse: subquery predicate references foreign alias %q", col.Qual)
		}
	}
	l, err := requal(c.Left)
	if err != nil {
		return nil, err
	}
	if !c.Right.IsCol {
		return ra.Cmp(op, ra.Col(l), ra.Const(operandValue(c.Right))), nil
	}
	r, err := requal(c.Right.Col)
	if err != nil {
		return nil, err
	}
	return ra.Cmp(op, ra.Col(l), ra.Col(r)), nil
}

// lowerSelectList applies the final aggregation/projection.
func lowerSelectList(q *Query, child ra.Plan) (ra.Plan, error) {
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("sqlparse: GROUP BY without aggregates is not supported")
		}
		cols := make([]ra.ColRef, len(q.Items))
		for i, it := range q.Items {
			cols[i] = ra.C(it.Col.Qual, it.Col.Name)
		}
		return ra.NewProject(child, cols...), nil
	}

	groupSet := make(map[ColName]bool, len(q.GroupBy))
	groupRefs := make([]ra.ColRef, len(q.GroupBy))
	for i, g := range q.GroupBy {
		groupSet[g] = true
		groupRefs[i] = ra.C(g.Qual, g.Name)
	}
	var aggs []ra.Agg
	outCols := make([]ra.ColRef, 0, len(q.Items))
	for i, it := range q.Items {
		if it.Agg == "" {
			if !groupSet[it.Col] {
				return nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY", it.Col)
			}
			outCols = append(outCols, ra.C(it.Col.Qual, it.Col.Name))
			continue
		}
		name := it.As
		if name == "" {
			name = fmt.Sprintf("%s_%d", it.Agg, i)
		}
		a := ra.Agg{As: name}
		switch it.Agg {
		case "COUNT":
			a.Fn = ra.FnCount
		case "SUM":
			a.Fn = ra.FnSum
			a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
		case "AVG":
			a.Fn = ra.FnAvg
			a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
		case "MIN":
			a.Fn = ra.FnMin
			a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
		case "MAX":
			a.Fn = ra.FnMax
			a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
		default:
			return nil, fmt.Errorf("sqlparse: unsupported aggregate %q", it.Agg)
		}
		aggs = append(aggs, a)
		outCols = append(outCols, ra.C("", name))
	}
	return ra.NewProject(ra.NewGroupAgg(child, groupRefs, aggs...), outCols...), nil
}
