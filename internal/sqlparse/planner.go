package sqlparse

import (
	"fmt"
	"sync"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// parserPool recycles parsers — and with them the arena arrays backing
// every AST slice — across Compile/CompileExec calls. Only those entry
// points may use it: they lower the AST to an independent plan before
// releasing the parser, whereas Parse/ParseStatement hand the AST to the
// caller (prepared statements retain it), so they allocate fresh.
var parserPool = sync.Pool{New: func() any { return new(parser) }}

// Compile parses the SQL text and lowers it to a relational-algebra plan
// plus the result-level ordering spec (ORDER BY / LIMIT clauses that act
// on the final probabilistic answer rather than inside each world).
func Compile(sql string) (ra.Plan, ra.ResultSpec, error) {
	p := parserPool.Get().(*parser)
	p.reset(sql)
	stmt, err := p.parseInput()
	var q *Query
	if err == nil {
		q, err = selectOf(sql, stmt)
	}
	if err != nil {
		parserPool.Put(p)
		return nil, ra.ResultSpec{}, err
	}
	plan, spec, err := PlanQuery(q)
	parserPool.Put(p)
	return plan, spec, err
}

// PlanQuery lowers a parsed query to a relational-algebra plan:
// single-alias predicates are pushed below joins, cross-alias equalities
// become hash-join conditions, correlated COUNT(*)-subquery equalities
// are rewritten into one shared group-aggregate join (making Query 3
// incrementally maintainable), and HAVING becomes a selection over the
// group-aggregate output (with hidden aggregates for conditions not in
// the select list).
//
// ORDER BY / LIMIT split between the plan and the returned ResultSpec:
// an ORDER BY over real output columns with a LIMIT lowers to a
// per-world top-k operator (a tuple's marginal becomes its probability
// of ranking in the top k of a sampled world), while any ordering that
// references the marginal pseudo-column P — which only exists across
// worlds — is returned in the ResultSpec for the result-assembly layer
// to apply after estimation. The spec always carries the presentation
// order and final truncation, so every consumer returns rows the same
// way.
func PlanQuery(q *Query) (ra.Plan, ra.ResultSpec, error) {
	var spec ra.ResultSpec
	if len(q.From) == 0 {
		return nil, spec, fmt.Errorf("sqlparse: query has no FROM clause")
	}
	aliases := make(map[string]bool)
	for _, tr := range q.From {
		if aliases[tr.Alias] {
			return nil, spec, fmt.Errorf("sqlparse: duplicate table alias %q", tr.Alias)
		}
		aliases[tr.Alias] = true
	}

	singleTable := ""
	if len(q.From) == 1 {
		singleTable = q.From[0].Alias
	}

	// Partition WHERE conjuncts. Subquery-shaped predicates (COUNT(*)
	// equalities, EXISTS, IN-subqueries) lower to auxiliary group-
	// aggregate plans joined in on their correlation column; everything
	// else classifies as a pushed filter, a join key, or a top filter.
	perAlias := make(map[string][]ra.Expr)
	var joinConds []ra.EquiCond
	var topFilters []ra.Expr
	subEqIndex := 0
	var groupPlans []groupPlan

	for _, c := range q.Where {
		switch {
		case c.SubEq != nil:
			gp, err := lowerSubEq(c.SubEq, aliases, subEqIndex)
			if err != nil {
				return nil, spec, err
			}
			subEqIndex++
			groupPlans = append(groupPlans, *gp)
			continue
		case c.Exists != nil:
			gp, err := lowerExists(c.Exists, aliases, subEqIndex)
			if err != nil {
				return nil, spec, err
			}
			subEqIndex++
			groupPlans = append(groupPlans, *gp)
			continue
		case c.In != nil && c.In.Sub != nil:
			gp, err := lowerInSub(c.Left, c.In.Sub, aliases, subEqIndex)
			if err != nil {
				return nil, spec, err
			}
			subEqIndex++
			groupPlans = append(groupPlans, *gp)
			continue
		}
		owner, expr, isJoin, jc, err := classifyCond(c, aliases, singleTable)
		if err != nil {
			return nil, spec, err
		}
		switch {
		case isJoin:
			joinConds = append(joinConds, jc)
		case owner != "":
			perAlias[owner] = append(perAlias[owner], expr)
		default:
			topFilters = append(topFilters, expr)
		}
	}

	// Base plans: scan each table, pushing its private predicates.
	type tagged struct {
		plan    ra.Plan
		aliases map[string]bool
	}
	var pending []tagged
	for _, tr := range q.From {
		var p ra.Plan = ra.NewScan(tr.Name, tr.Alias)
		if preds := perAlias[tr.Alias]; len(preds) > 0 {
			p = ra.NewSelect(p, ra.And(preds...))
		}
		pending = append(pending, tagged{plan: p, aliases: map[string]bool{tr.Alias: true}})
	}
	for _, gp := range groupPlans {
		pending = append(pending, tagged{plan: gp.plan, aliases: map[string]bool{gp.alias: true}})
		joinConds = append(joinConds, gp.joinCond)
		topFilters = append(topFilters, gp.filter)
	}

	// Left-deep join in FROM order, picking up applicable equi-conditions.
	cur := pending[0]
	for _, nxt := range pending[1:] {
		var on []ra.EquiCond
		var rest []ra.EquiCond
		for _, jc := range joinConds {
			l, r := jc.Left.Rel, jc.Right.Rel
			switch {
			case cur.aliases[l] && nxt.aliases[r]:
				on = append(on, jc)
			case cur.aliases[r] && nxt.aliases[l]:
				on = append(on, ra.EquiCond{Left: jc.Right, Right: jc.Left})
			default:
				rest = append(rest, jc)
			}
		}
		joinConds = rest
		cur.plan = ra.NewJoin(cur.plan, nxt.plan, on, nil)
		for a := range nxt.aliases {
			cur.aliases[a] = true
		}
	}
	// Any join condition not consumed (e.g. three-way cycles) becomes a
	// residual filter.
	for _, jc := range joinConds {
		topFilters = append(topFilters, ra.Eq(ra.Col(jc.Left), ra.Col(jc.Right)))
	}
	plan := cur.plan
	if len(topFilters) > 0 {
		plan = ra.NewSelect(plan, ra.And(topFilters...))
	}
	lowered, err := lowerSelectList(q, plan)
	if err != nil {
		return nil, spec, err
	}
	if q.Distinct {
		lowered = ra.NewDistinct(lowered)
	}
	final, spec, err := lowerOrderLimit(q, lowered, spec)
	if err != nil {
		return nil, spec, err
	}
	// Emit the canonical form: textual variants of one query (whitespace,
	// keyword case, alias spelling, predicate order, flipped comparisons)
	// lower to identical plans, so every fingerprint-keyed layer above —
	// the serving engine's result cache and the per-chain shared-view
	// registries — treats them as one query.
	return ra.Canonicalize(final), spec, nil
}

// lowerOrderLimit splits ORDER BY / LIMIT between a per-world top-k plan
// node and the result-level spec, as documented on PlanQuery.
func lowerOrderLimit(q *Query, plan ra.Plan, spec ra.ResultSpec) (ra.Plan, ra.ResultSpec, error) {
	if q.Limit > 0 {
		spec.Limit = q.Limit
	}
	if len(q.OrderBy) == 0 {
		// A bare LIMIT truncates the default presentation order
		// (descending marginal) at the result level.
		return plan, spec, nil
	}

	aliases := make(map[string]bool, len(q.From))
	for _, tr := range q.From {
		aliases[tr.Alias] = true
	}
	outNames := ra.OutputColumns(plan)
	outIndex := func(col ColName) (int, error) {
		if col.Qual != "" && !aliases[col.Qual] {
			return 0, fmt.Errorf("sqlparse: unknown table alias %q in ORDER BY %s", col.Qual, col)
		}
		found := -1
		for i, name := range outNames {
			if name != col.Name {
				continue
			}
			// A qualified key must not match a select item written with a
			// different qualifier.
			if col.Qual != "" && i < len(q.Items) {
				if iq := q.Items[i].Col.Qual; iq != "" && iq != col.Qual {
					continue
				}
			}
			if found >= 0 {
				return 0, fmt.Errorf("sqlparse: ORDER BY column %s is ambiguous in the select list", col)
			}
			found = i
		}
		if found < 0 {
			return 0, fmt.Errorf("sqlparse: ORDER BY column %s is not in the select list", col)
		}
		return found, nil
	}

	// The unqualified column P names the estimated marginal unless the
	// select list outputs a real column called P.
	isProb := func(col ColName) bool {
		if col.Qual != "" || col.Name != "P" {
			return false
		}
		for _, name := range outNames {
			if name == "P" {
				return false
			}
		}
		return true
	}

	hasProb := false
	for _, item := range q.OrderBy {
		if isProb(item.Col) {
			hasProb = true
		}
	}

	for _, item := range q.OrderBy {
		if isProb(item.Col) {
			spec.Order = append(spec.Order, ra.ResultOrder{ByProb: true, Desc: item.Desc})
			continue
		}
		idx, err := outIndex(item.Col)
		if err != nil {
			return nil, spec, err
		}
		spec.Order = append(spec.Order, ra.ResultOrder{Index: idx, Desc: item.Desc})
	}

	// A pure column ordering with a LIMIT bounds the answer inside every
	// sampled world: lower it to the incrementally maintainable top-k
	// operator. Ordering by P cannot be evaluated within one world, and
	// ordering without a LIMIT does not change bag membership, so both
	// stay result-level only.
	if !hasProb && q.Limit > 0 {
		keys := make([]ra.SortKey, len(q.OrderBy))
		for i, item := range q.OrderBy {
			keys[i] = ra.SortKey{Col: ra.C(item.Col.Qual, item.Col.Name), Desc: item.Desc}
		}
		plan = ra.NewOrderLimit(plan, keys, q.Limit)
	}
	return plan, spec, nil
}

// classifyCond decides whether a simple conjunct is a pushable
// single-alias predicate, a join condition, or a top-level filter.
func classifyCond(c Cond, aliases map[string]bool, singleTable string) (owner string, expr ra.Expr, isJoin bool, jc ra.EquiCond, err error) {
	qualOf := func(col ColName) (string, error) {
		if col.Qual == "" {
			return singleTable, nil // "" means unknown when multiple tables
		}
		if !aliases[col.Qual] {
			return "", fmt.Errorf("sqlparse: unknown table alias %q in %s", col.Qual, col)
		}
		return col.Qual, nil
	}
	lq, err := qualOf(c.Left)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	lref := ra.C(c.Left.Qual, c.Left.Name)
	if c.In != nil {
		expr, err := inListExpr(lref, c.In)
		if err != nil {
			return "", nil, false, ra.EquiCond{}, err
		}
		return lq, expr, false, ra.EquiCond{}, nil
	}
	op, err := cmpOpOf(c.Op)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	if !c.Right.IsCol {
		v, err := operandConst(c.Right)
		if err != nil {
			return "", nil, false, ra.EquiCond{}, err
		}
		return lq, ra.Cmp(op, ra.Col(lref), ra.Const(v)), false, ra.EquiCond{}, nil
	}
	rq, err := qualOf(c.Right.Col)
	if err != nil {
		return "", nil, false, ra.EquiCond{}, err
	}
	rref := ra.C(c.Right.Col.Qual, c.Right.Col.Name)
	if lq != "" && lq == rq {
		return lq, ra.Cmp(op, ra.Col(lref), ra.Col(rref)), false, ra.EquiCond{}, nil
	}
	if c.Op == "=" && lq != "" && rq != "" && lq != rq {
		return "", nil, true, ra.EquiCond{Left: lref, Right: rref}, nil
	}
	return "", ra.Cmp(op, ra.Col(lref), ra.Col(rref)), false, ra.EquiCond{}, nil
}

func cmpOpOf(op string) (ra.CmpOp, error) {
	switch op {
	case "=":
		return ra.OpEq, nil
	case "!=":
		return ra.OpNe, nil
	case "<":
		return ra.OpLt, nil
	case "<=":
		return ra.OpLe, nil
	case ">":
		return ra.OpGt, nil
	case ">=":
		return ra.OpGe, nil
	}
	return 0, fmt.Errorf("sqlparse: unsupported operator %q", op)
}

func operandValue(o Operand) relstore.Value {
	switch {
	case o.IsStr:
		return relstore.String(o.Str)
	case o.IsInt:
		return relstore.Int(o.Int)
	default:
		return relstore.Float(o.Float)
	}
}

// operandConst is operandValue for planner positions that require a
// bound constant: an unbound ? placeholder is a planning error (prepared
// statements substitute arguments via BindArgs before planning).
func operandConst(o Operand) (relstore.Value, error) {
	if o.IsParam {
		return relstore.Value{}, fmt.Errorf("sqlparse: placeholder ?%d is unbound (prepare the statement and pass arguments)", o.Param+1)
	}
	return operandValue(o), nil
}

// inListExpr lowers col IN (v1, ..., vn) to an OR of equalities — which
// canonicalization sorts and dedups, so spelling order doesn't split
// fingerprints — and col NOT IN (...) to an AND of inequalities.
func inListExpr(ref ra.ColRef, in *InPred) (ra.Expr, error) {
	terms := make([]ra.Expr, len(in.Values))
	for i, v := range in.Values {
		val, err := operandConst(v)
		if err != nil {
			return nil, err
		}
		op := ra.OpEq
		if in.Not {
			op = ra.OpNe
		}
		terms[i] = ra.Cmp(op, ra.Col(ref), ra.Const(val))
	}
	if in.Not {
		return ra.And(terms...), nil
	}
	return ra.Or(terms...), nil
}

// groupPlan is one auxiliary group-aggregate produced by a subquery-
// shaped predicate, joined into the outer query on its correlation
// column and gated by a filter over its aggregate output.
type groupPlan struct {
	plan     ra.Plan
	alias    string
	joinCond ra.EquiCond
	filter   ra.Expr
}

// extractCorr splits a subquery's conjuncts into the single correlation
// equality (linking the subquery alias to an outer alias) and the local
// predicates, requalified onto the shared group-scan alias.
func extractCorr(sq SubQuery, outer map[string]bool, galias string) (outerCol ColName, innerCol string, preds []ra.Expr, err error) {
	corrSeen := false
	for _, c := range sq.Conds {
		// A correlation conjunct links the subquery alias with an
		// outer alias via equality.
		if c.Right.IsCol && c.Op == "=" {
			lIn := c.Left.Qual == sq.Table.Alias
			rIn := c.Right.Col.Qual == sq.Table.Alias
			lOut := outer[c.Left.Qual]
			rOut := outer[c.Right.Col.Qual]
			if (lIn && rOut) || (rIn && lOut) {
				if corrSeen {
					err = fmt.Errorf("sqlparse: subquery has multiple correlation predicates")
					return
				}
				corrSeen = true
				if lIn {
					innerCol, outerCol = c.Left.Name, c.Right.Col
				} else {
					innerCol, outerCol = c.Right.Col.Name, c.Left
				}
				continue
			}
		}
		// Anything else must be local to the subquery; requalify it
		// onto the shared group scan alias.
		expr, lerr := localSubCond(c, sq.Table.Alias, galias)
		if lerr != nil {
			err = lerr
			return
		}
		preds = append(preds, expr)
	}
	if !corrSeen {
		err = fmt.Errorf("sqlparse: subquery on %q has no correlation predicate", sq.Table.Name)
	}
	return
}

// lowerSubEq rewrites (SELECT COUNT(*) FROM t a WHERE φA AND corr) =
// (SELECT COUNT(*) FROM t b WHERE φB AND corr) into a single group-
// aggregate over t grouped by the correlation column with two COUNT_IF
// aggregates, to be joined with the outer query on the correlation pair.
func lowerSubEq(se *SubEq, outer map[string]bool, idx int) (*groupPlan, error) {
	if se.A.Table.Name != se.B.Table.Name {
		return nil, fmt.Errorf("sqlparse: subquery equality over different tables %q and %q is not supported",
			se.A.Table.Name, se.B.Table.Name)
	}
	galias := fmt.Sprintf("_g%d", idx)

	outA, inA, predsA, err := extractCorr(se.A, outer, galias)
	if err != nil {
		return nil, err
	}
	outB, inB, predsB, err := extractCorr(se.B, outer, galias)
	if err != nil {
		return nil, err
	}
	if inA != inB || outA != outB {
		return nil, fmt.Errorf("sqlparse: subqueries must correlate on the same column pair (got %s~%s and %s~%s)",
			outA, inA, outB, inB)
	}

	cntA := fmt.Sprintf("_sqa%d", idx)
	cntB := fmt.Sprintf("_sqb%d", idx)
	agg := ra.NewGroupAgg(
		ra.NewScan(se.A.Table.Name, galias),
		[]ra.ColRef{ra.C(galias, inA)},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(predsA...), As: cntA},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(predsB...), As: cntB},
	)
	return &groupPlan{
		plan:     agg,
		alias:    galias,
		joinCond: ra.EquiCond{Left: ra.C(outA.Qual, outA.Name), Right: ra.C(galias, inA)},
		filter:   ra.Eq(ra.Col(ra.C("", cntA)), ra.Col(ra.C("", cntB))),
	}, nil
}

// lowerExists rewrites EXISTS (SELECT * FROM t a WHERE φ AND corr) into
// a group-aggregate over t grouped by the correlation column with one
// COUNT_IF(φ) aggregate; the outer query joins on the correlation pair
// and keeps rows whose count is at least one. The inner join already
// drops outer rows with no partner group, which is exactly EXISTS
// semantics (and why NOT EXISTS cannot be expressed this way — the
// parser rejects it).
func lowerExists(sq *SubQuery, outer map[string]bool, idx int) (*groupPlan, error) {
	galias := fmt.Sprintf("_g%d", idx)
	outerCol, innerCol, preds, err := extractCorr(*sq, outer, galias)
	if err != nil {
		return nil, err
	}
	cnt := fmt.Sprintf("_sqe%d", idx)
	agg := ra.NewGroupAgg(
		ra.NewScan(sq.Table.Name, galias),
		[]ra.ColRef{ra.C(galias, innerCol)},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(preds...), As: cnt},
	)
	return &groupPlan{
		plan:     agg,
		alias:    galias,
		joinCond: ra.EquiCond{Left: ra.C(outerCol.Qual, outerCol.Name), Right: ra.C(galias, innerCol)},
		filter:   ra.Cmp(ra.OpGe, ra.Col(ra.C("", cnt)), ra.Const(relstore.Int(1))),
	}, nil
}

// lowerInSub rewrites col IN (SELECT c FROM t a WHERE φ) through the
// same machinery as EXISTS: the correlation is the implicit equality
// col = c, and φ must be local to the subquery.
func lowerInSub(left ColName, isub *InSub, outer map[string]bool, idx int) (*groupPlan, error) {
	if left.Qual != "" && !outer[left.Qual] {
		return nil, fmt.Errorf("sqlparse: unknown table alias %q in %s", left.Qual, left)
	}
	if isub.Col.Qual != "" && isub.Col.Qual != isub.Table.Alias {
		return nil, fmt.Errorf("sqlparse: IN subquery selects foreign alias %q", isub.Col.Qual)
	}
	galias := fmt.Sprintf("_g%d", idx)
	var preds []ra.Expr
	for _, c := range isub.Conds {
		expr, err := localSubCond(c, isub.Table.Alias, galias)
		if err != nil {
			return nil, err
		}
		preds = append(preds, expr)
	}
	cnt := fmt.Sprintf("_sqe%d", idx)
	agg := ra.NewGroupAgg(
		ra.NewScan(isub.Table.Name, galias),
		[]ra.ColRef{ra.C(galias, isub.Col.Name)},
		ra.Agg{Fn: ra.FnCountIf, Pred: ra.And(preds...), As: cnt},
	)
	return &groupPlan{
		plan:     agg,
		alias:    galias,
		joinCond: ra.EquiCond{Left: ra.C(left.Qual, left.Name), Right: ra.C(galias, isub.Col.Name)},
		filter:   ra.Cmp(ra.OpGe, ra.Col(ra.C("", cnt)), ra.Const(relstore.Int(1))),
	}, nil
}

// localSubCond requalifies a subquery-local conjunct onto the group alias.
func localSubCond(c Cond, subAlias, galias string) (ra.Expr, error) {
	requal := func(col ColName) (ra.ColRef, error) {
		switch col.Qual {
		case "", subAlias:
			return ra.C(galias, col.Name), nil
		default:
			return ra.ColRef{}, fmt.Errorf("sqlparse: subquery predicate references foreign alias %q", col.Qual)
		}
	}
	if c.In != nil {
		l, err := requal(c.Left)
		if err != nil {
			return nil, err
		}
		return inListExpr(l, c.In)
	}
	op, err := cmpOpOf(c.Op)
	if err != nil {
		return nil, err
	}
	l, err := requal(c.Left)
	if err != nil {
		return nil, err
	}
	if !c.Right.IsCol {
		v, err := operandConst(c.Right)
		if err != nil {
			return nil, err
		}
		return ra.Cmp(op, ra.Col(l), ra.Const(v)), nil
	}
	r, err := requal(c.Right.Col)
	if err != nil {
		return nil, err
	}
	return ra.Cmp(op, ra.Col(l), ra.Col(r)), nil
}

// lowerSelectList applies the final aggregation/projection. HAVING
// lowers to a selection between the group-aggregate and the projection,
// so it can reference group columns and aggregate outputs — including
// aggregates absent from the select list, which become hidden aggregate
// columns projected away afterwards.
func lowerSelectList(q *Query, child ra.Plan) (ra.Plan, error) {
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	for _, hc := range q.Having {
		if hc.Left.Agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("sqlparse: GROUP BY without aggregates is not supported")
		}
		if len(q.Having) > 0 {
			return nil, fmt.Errorf("sqlparse: HAVING requires aggregation (use WHERE for row filters)")
		}
		cols := make([]ra.ColRef, len(q.Items))
		for i, it := range q.Items {
			cols[i] = ra.C(it.Col.Qual, it.Col.Name)
		}
		return ra.NewProject(child, cols...), nil
	}

	groupSet := make(map[ColName]bool, len(q.GroupBy))
	groupRefs := make([]ra.ColRef, len(q.GroupBy))
	for i, g := range q.GroupBy {
		groupSet[g] = true
		groupRefs[i] = ra.C(g.Qual, g.Name)
	}
	var aggs []ra.Agg
	outCols := make([]ra.ColRef, 0, len(q.Items))
	for i, it := range q.Items {
		if it.Agg == "" {
			if !groupSet[it.Col] {
				return nil, fmt.Errorf("sqlparse: column %s must appear in GROUP BY", it.Col)
			}
			outCols = append(outCols, ra.C(it.Col.Qual, it.Col.Name))
			continue
		}
		name := it.As
		if name == "" {
			name = fmt.Sprintf("%s_%d", it.Agg, i)
		}
		a, err := aggFor(it, name)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, a)
		outCols = append(outCols, ra.C("", name))
	}

	// Lower HAVING conjuncts against the group-aggregate output. An
	// aggregate call reuses the matching select-list aggregate when one
	// exists; otherwise a hidden aggregate is added and projected away.
	var havingExprs []ra.Expr
	for i, hc := range q.Having {
		op, err := cmpOpOf(hc.Op)
		if err != nil {
			return nil, err
		}
		var left ra.ColRef
		if hc.Left.Agg != "" {
			name := findAgg(aggs, hc.Left)
			if name == "" {
				name = fmt.Sprintf("_hv%d", i)
				a, err := aggFor(hc.Left, name)
				if err != nil {
					return nil, err
				}
				aggs = append(aggs, a)
			}
			left = ra.C("", name)
		} else {
			left = ra.C(hc.Left.Col.Qual, hc.Left.Col.Name)
		}
		var rhs ra.Expr
		if hc.Right.IsCol {
			rhs = ra.Col(ra.C(hc.Right.Col.Qual, hc.Right.Col.Name))
		} else {
			v, err := operandConst(hc.Right)
			if err != nil {
				return nil, err
			}
			rhs = ra.Const(v)
		}
		havingExprs = append(havingExprs, ra.Cmp(op, ra.Col(left), rhs))
	}

	var plan ra.Plan = ra.NewGroupAgg(child, groupRefs, aggs...)
	if len(havingExprs) > 0 {
		plan = ra.NewSelect(plan, ra.And(havingExprs...))
	}
	return ra.NewProject(plan, outCols...), nil
}

// aggFor builds the ra aggregate for one aggregate call.
func aggFor(it SelectItem, name string) (ra.Agg, error) {
	a := ra.Agg{As: name}
	switch it.Agg {
	case "COUNT":
		a.Fn = ra.FnCount
	case "SUM":
		a.Fn = ra.FnSum
		a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
	case "AVG":
		a.Fn = ra.FnAvg
		a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
	case "MIN":
		a.Fn = ra.FnMin
		a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
	case "MAX":
		a.Fn = ra.FnMax
		a.Arg = ra.C(it.Arg.Qual, it.Arg.Name)
	default:
		return ra.Agg{}, fmt.Errorf("sqlparse: unsupported aggregate %q", it.Agg)
	}
	return a, nil
}

// findAgg returns the output name of an existing aggregate semantically
// equal to the call (COUNT ignores its argument: with no NULLs in the
// engine, COUNT(col) and COUNT(*) count the same rows).
func findAgg(aggs []ra.Agg, it SelectItem) string {
	want, err := aggFor(it, "_probe")
	if err != nil {
		return ""
	}
	for _, a := range aggs {
		if a.Fn != want.Fn {
			continue
		}
		if a.Fn == ra.FnCount || a.Arg == want.Arg {
			return a.As
		}
	}
	return ""
}
