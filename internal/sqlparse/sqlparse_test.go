package sqlparse

import (
	"strings"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// paper queries, verbatim modulo identifier spelling.
const (
	query1 = `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`
	query2 = `SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'`
	query3 = `SELECT T.DOC_ID FROM TOKEN T WHERE
		(SELECT COUNT(*) FROM TOKEN T1 WHERE T1.LABEL='B-PER' AND T.DOC_ID=T1.DOC_ID)
		=(SELECT COUNT(*) FROM TOKEN T1 WHERE T1.LABEL='B-ORG' AND T.DOC_ID=T1.DOC_ID)`
	query4 = `SELECT T2.STRING FROM TOKEN T1, TOKEN T2
		WHERE T1.STRING='Boston' AND T1.LABEL='B-ORG'
		AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'`
)

func testDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	tok := db.MustCreate(relstore.MustSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "DOC_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "LABEL", Type: relstore.TString},
	))
	rows := []struct {
		id, doc int64
		s, l    string
	}{
		{1, 1, "Clinton", "B-PER"},
		{2, 1, "visited", "O"},
		{3, 1, "Boston", "B-ORG"},
		{4, 1, "Ortiz", "B-PER"},
		{5, 2, "Boston", "B-LOC"},
		{6, 2, "Smith", "B-PER"},
		{7, 2, "IBM", "B-ORG"},
		{8, 3, "the", "O"},
	}
	for _, r := range rows {
		tok.Insert(relstore.Tuple{relstore.Int(r.id), relstore.Int(r.doc), relstore.String(r.s), relstore.String(r.l)})
	}
	return db
}

func run(t *testing.T, db *relstore.DB, sql string) *ra.Bag {
	t.Helper()
	plan, _, err := Compile(sql)
	if err != nil {
		t.Fatalf("Compile(%q): %v", sql, err)
	}
	bound, err := ra.Bind(db, plan)
	if err != nil {
		t.Fatalf("Bind(%q): %v", sql, err)
	}
	bag, err := ra.Eval(bound)
	if err != nil {
		t.Fatalf("Eval(%q): %v", sql, err)
	}
	return bag
}

func TestQuery1(t *testing.T) {
	bag := run(t, testDB(t), query1)
	if bag.Size() != 3 {
		t.Fatalf("Query 1 size = %d, want 3", bag.Size())
	}
	if got := bag.Count(relstore.Tuple{relstore.String("Clinton")}.Key()); got != 1 {
		t.Errorf("count(Clinton) = %d", got)
	}
}

func TestQuery2(t *testing.T) {
	rows := run(t, testDB(t), query2).Rows()
	if len(rows) != 1 || rows[0].Tuple[0].AsInt() != 3 {
		t.Fatalf("Query 2 = %v, want single row 3", rows)
	}
}

func TestQuery3(t *testing.T) {
	bag := run(t, testDB(t), query3)
	// doc1: 2 PER vs 1 ORG (no). doc2: 1 vs 1 (yes). doc3: 0 vs 0 (yes).
	want := map[int64]bool{2: true, 3: true}
	got := map[int64]bool{}
	bag.Each(func(_ string, r *ra.BagRow) bool {
		got[r.Tuple[0].AsInt()] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Query 3 docs = %v, want %v", got, want)
	}
	for d := range want {
		if !got[d] {
			t.Errorf("doc %d missing from Query 3 answer", d)
		}
	}
}

func TestQuery4(t *testing.T) {
	bag := run(t, testDB(t), query4)
	// Boston/B-ORG only in doc 1; persons there: Clinton, Ortiz.
	if bag.Len() != 2 {
		t.Fatalf("Query 4 distinct = %d, want 2", bag.Len())
	}
	for _, name := range []string{"Clinton", "Ortiz"} {
		if bag.Count(relstore.Tuple{relstore.String(name)}.Key()) != 1 {
			t.Errorf("%s missing from Query 4 answer", name)
		}
	}
}

func TestGroupBy(t *testing.T) {
	bag := run(t, testDB(t), `SELECT DOC_ID, COUNT(*) AS N FROM TOKEN GROUP BY DOC_ID`)
	if bag.Len() != 3 {
		t.Fatalf("groups = %d, want 3", bag.Len())
	}
	counts := map[int64]int64{}
	bag.Each(func(_ string, r *ra.BagRow) bool {
		counts[r.Tuple[0].AsInt()] = r.Tuple[1].AsInt()
		return true
	})
	if counts[1] != 4 || counts[2] != 3 || counts[3] != 1 {
		t.Errorf("per-doc counts = %v", counts)
	}
}

func TestAggFunctions(t *testing.T) {
	bag := run(t, testDB(t),
		`SELECT MIN(TOK_ID) AS LO, MAX(TOK_ID) AS HI, SUM(TOK_ID) AS S, AVG(TOK_ID) AS A FROM TOKEN`)
	rows := bag.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0].Tuple
	if r[0].AsInt() != 1 || r[1].AsInt() != 8 || r[2].AsInt() != 36 || r[3].AsFloat() != 4.5 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestComparisonOperatorsSQL(t *testing.T) {
	cases := []struct {
		sql  string
		want int64
	}{
		{`SELECT STRING FROM TOKEN WHERE TOK_ID < 3`, 2},
		{`SELECT STRING FROM TOKEN WHERE TOK_ID <= 3`, 3},
		{`SELECT STRING FROM TOKEN WHERE TOK_ID > 6`, 2},
		{`SELECT STRING FROM TOKEN WHERE TOK_ID >= 6`, 3},
		{`SELECT STRING FROM TOKEN WHERE TOK_ID != 1`, 7},
		{`SELECT STRING FROM TOKEN WHERE TOK_ID <> 1`, 7},
	}
	for _, c := range cases {
		if got := run(t, testDB(t), c.sql).Size(); got != c.want {
			t.Errorf("%s: size = %d, want %d", c.sql, got, c.want)
		}
	}
}

func TestColEqualsColSameTable(t *testing.T) {
	if got := run(t, testDB(t), `SELECT STRING FROM TOKEN WHERE TOK_ID = DOC_ID`).Size(); got != 1 {
		t.Errorf("size = %d, want 1 (row 1)", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql  string
		frag string
	}{
		{``, "expected"},
		{`SELECT`, "expected"},
		{`SELECT X`, "expected \"FROM\""},
		{`SELECT X FROM`, "expected"},
		{`SELECT X FROM T WHERE`, "expected"},
		{`SELECT X FROM T WHERE A ==`, "expected"},
		{`SELECT X FROM T extra junk`, "trailing input"},
		{`SELECT X FROM T WHERE A = 'unterminated`, "unterminated"},
		{`SELECT X FROM T WHERE A ! B`, "unexpected '!'"},
		{`SELECT X FROM T WHERE A = 12.5.5`, "malformed number"},
		{`SELECT X FROM T, T`, "duplicate table alias"},
		{`SELECT X FROM T GROUP BY X`, "GROUP BY without aggregates"},
		{`SELECT X, COUNT(*) FROM T`, "must appear in GROUP BY"},
		{`SELECT X FROM T WHERE (SELECT STRING FROM U WHERE A=B)=(SELECT COUNT(*) FROM U WHERE A=B)`, "COUNT(*)"},
		{`SELECT X FROM T WHERE (SELECT COUNT(*) FROM U U1 WHERE U1.A=1)=(SELECT COUNT(*) FROM U U1 WHERE T.B=U1.B)`, "no correlation"},
	}
	for _, c := range cases {
		_, _, err := Compile(c.sql)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.sql, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) error %q does not contain %q", c.sql, err, c.frag)
		}
	}
}

// TestPlannerErrorPaths exercises PlanQuery's own validation, including
// branches the parser cannot reach through Compile (it rejects an empty
// FROM clause syntactically before planning).
func TestPlannerErrorPaths(t *testing.T) {
	// Empty FROM: only reachable by planning a hand-built AST.
	q := &Query{Items: []SelectItem{{Col: ColName{Name: "X"}}}}
	if _, _, err := PlanQuery(q); err == nil || !strings.Contains(err.Error(), "no FROM clause") {
		t.Errorf("empty FROM: %v", err)
	}

	// Duplicate alias, through the planner directly and through Compile.
	q = &Query{
		Items: []SelectItem{{Col: ColName{Qual: "T", Name: "X"}}},
		From:  []TableRef{{Name: "TOKEN", Alias: "T"}, {Name: "TOKEN", Alias: "T"}},
	}
	if _, _, err := PlanQuery(q); err == nil || !strings.Contains(err.Error(), "duplicate table alias") {
		t.Errorf("duplicate alias: %v", err)
	}
	if _, _, err := Compile(`SELECT A.X FROM TOKEN A, OTHER A`); err == nil ||
		!strings.Contains(err.Error(), "duplicate table alias") {
		t.Error("Compile should reject duplicate aliases across different tables")
	}

	// Unknown alias referenced in WHERE.
	for _, sql := range []string{
		`SELECT T.X FROM TOKEN T WHERE U.Y = 1`,
		`SELECT T.X FROM TOKEN T WHERE T.X = U.Y`,
	} {
		if _, _, err := Compile(sql); err == nil || !strings.Contains(err.Error(), "unknown table alias") {
			t.Errorf("Compile(%q): %v", sql, err)
		}
	}

	// A subquery predicate may only reference the subquery's own alias.
	sql := `SELECT T.A FROM T, S WHERE
		(SELECT COUNT(*) FROM U U1 WHERE T.A=U1.A AND S.B=1)
		=(SELECT COUNT(*) FROM U U2 WHERE T.A=U2.A)`
	if _, _, err := Compile(sql); err == nil || !strings.Contains(err.Error(), "foreign alias") {
		t.Errorf("foreign alias in subquery: %v", err)
	}

	// Multiple correlation predicates in one subquery.
	sql = `SELECT T.A FROM T WHERE
		(SELECT COUNT(*) FROM U U1 WHERE T.A=U1.A AND T.B=U1.B)
		=(SELECT COUNT(*) FROM U U2 WHERE T.A=U2.A)`
	if _, _, err := Compile(sql); err == nil || !strings.Contains(err.Error(), "multiple correlation") {
		t.Errorf("multiple correlation predicates: %v", err)
	}
}

// TestUnknownTableFailsAtBind confirms where the unknown-table error
// lives: the planner is catalog-free, so a missing relation surfaces when
// the plan is bound against a database.
func TestUnknownTableFailsAtBind(t *testing.T) {
	plan, _, err := Compile(`SELECT X FROM NO_SUCH_TABLE`)
	if err != nil {
		t.Fatalf("Compile should not consult the catalog: %v", err)
	}
	_, err = ra.Bind(testDB(t), plan)
	if err == nil || !strings.Contains(err.Error(), "NO_SUCH_TABLE") {
		t.Errorf("Bind against missing table: %v", err)
	}
}

func TestSubEqValidation(t *testing.T) {
	// Different tables in the two subqueries.
	sql := `SELECT T.A FROM T WHERE
		(SELECT COUNT(*) FROM U U1 WHERE T.A=U1.A)
		=(SELECT COUNT(*) FROM V V1 WHERE T.A=V1.A)`
	if _, _, err := Compile(sql); err == nil || !strings.Contains(err.Error(), "different tables") {
		t.Errorf("want different-tables error, got %v", err)
	}
	// Different correlation columns.
	sql = `SELECT T.A FROM T WHERE
		(SELECT COUNT(*) FROM U U1 WHERE T.A=U1.A)
		=(SELECT COUNT(*) FROM U U2 WHERE T.B=U2.A)`
	if _, _, err := Compile(sql); err == nil || !strings.Contains(err.Error(), "same column pair") {
		t.Errorf("want same-column-pair error, got %v", err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if got := run(t, testDB(t), `select string from TOKEN where label='B-PER'`).Size(); got != 3 {
		t.Errorf("lowercase keywords: size = %d, want 3", got)
	}
}

func TestCrossJoinNoCondition(t *testing.T) {
	bag := run(t, testDB(t), `SELECT A.STRING, B.STRING FROM TOKEN A, TOKEN B WHERE A.LABEL='B-ORG' AND B.LABEL='B-LOC'`)
	// 2 B-ORG × 1 B-LOC.
	if bag.Size() != 2 {
		t.Errorf("cross size = %d, want 2", bag.Size())
	}
}

func TestBindFailsOnUnknownColumnAtBindTime(t *testing.T) {
	plan, _, err := Compile(`SELECT NOPE FROM TOKEN`)
	if err != nil {
		t.Fatalf("Compile should defer column resolution: %v", err)
	}
	if _, err := ra.Bind(testDB(t), plan); err == nil {
		t.Error("Bind should reject unknown column")
	}
}

func TestErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want string // the "line L column C" fragment the error must carry
	}{
		// Parser error on line 1: "FROM" missing after the select list.
		{"missing from", `SELECT STRING, FROM TOKEN`, "line 1 column 16"},
		// Parser error on a later line: bad operand after '=' — the
		// keyword WHERE cannot start an operand. Offsets are bytes into
		// the full text; the position must restart per line.
		{"bad operand line 2", "SELECT STRING FROM TOKEN\nWHERE LABEL = WHERE", "line 2 column 15"},
		// Lexer error: unterminated string literal.
		{"unterminated string", "SELECT STRING FROM TOKEN WHERE LABEL='B-PER", "line 1 column 38"},
		// Lexer error: stray character on line 3.
		{"bad char line 3", "SELECT STRING\nFROM TOKEN\nWHERE LABEL ; 'B-PER'", "line 3 column 13"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.sql)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.sql)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse(%q) error = %q, want it to contain %q", tc.sql, err, tc.want)
			}
		})
	}
}

func TestLineCol(t *testing.T) {
	input := "ab\ncde\nf"
	for _, tc := range []struct{ off, line, col int }{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // the newline itself is on line 1
		{3, 2, 1}, {6, 2, 4}, {7, 3, 1}, {8, 3, 2}, {99, 3, 2},
	} {
		if l, c := lineCol(input, tc.off); l != tc.line || c != tc.col {
			t.Errorf("lineCol(%d) = %d:%d, want %d:%d", tc.off, l, c, tc.line, tc.col)
		}
	}
}
