package sqlparse

import (
	"strings"
	"testing"

	"factordb/internal/ra"
	"factordb/internal/relstore"
)

// ---- lexer regressions ----

func TestStringEscaping(t *testing.T) {
	q, err := Parse(`SELECT STRING FROM TOKEN WHERE STRING='O''Brien'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Where[0].Right.Str; got != "O'Brien" {
		t.Errorf("escaped literal = %q, want %q", got, "O'Brien")
	}

	// Doubled quotes at the very start, middle, and end of the literal.
	q, err = Parse(`SELECT STRING FROM TOKEN WHERE STRING='''a''''b'''`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Where[0].Right.Str; got != `'a''b'` {
		t.Errorf("escaped literal = %q, want %q", got, `'a''b'`)
	}

	// A trailing escaped quote must not be mistaken for the terminator.
	if _, err := Parse(`SELECT STRING FROM TOKEN WHERE STRING='oops''`); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Errorf("trailing escaped quote: %v, want unterminated-literal error", err)
	}
}

func TestMalformedNumber(t *testing.T) {
	_, err := Parse(`SELECT X FROM T WHERE A=1.2.3`)
	if err == nil {
		t.Fatal("Parse accepted 1.2.3")
	}
	if !strings.Contains(err.Error(), "malformed number") {
		t.Errorf("error = %v, want malformed number", err)
	}
	if !strings.Contains(err.Error(), "line 1 column 25") {
		t.Errorf("error = %v, want position line 1 column 25", err)
	}
}

// ---- ORDER BY / LIMIT / HAVING parsing ----

func TestParseOrderByLimit(t *testing.T) {
	q, err := Parse(`SELECT STRING FROM TOKEN ORDER BY P DESC, STRING ASC LIMIT 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("order keys = %d, want 2", len(q.OrderBy))
	}
	if q.OrderBy[0].Col.Name != "P" || !q.OrderBy[0].Desc {
		t.Errorf("first key = %+v, want P DESC", q.OrderBy[0])
	}
	if q.OrderBy[1].Col.Name != "STRING" || q.OrderBy[1].Desc {
		t.Errorf("second key = %+v, want STRING ASC", q.OrderBy[1])
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d, want 10", q.Limit)
	}

	// LIMIT without ORDER BY, and the absent-limit default.
	q, err = Parse(`SELECT STRING FROM TOKEN LIMIT 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Limit != 3 || len(q.OrderBy) != 0 {
		t.Errorf("bare LIMIT: limit=%d order=%v", q.Limit, q.OrderBy)
	}
	q, err = Parse(`SELECT STRING FROM TOKEN`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Limit != -1 {
		t.Errorf("absent LIMIT = %d, want -1", q.Limit)
	}
}

func TestParseHaving(t *testing.T) {
	q, err := Parse(`SELECT DOC_ID FROM TOKEN GROUP BY DOC_ID HAVING COUNT(*) > 2 AND DOC_ID < 9`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Having) != 2 {
		t.Fatalf("having conds = %d, want 2", len(q.Having))
	}
	if q.Having[0].Left.Agg != "COUNT" || !q.Having[0].Left.Star || q.Having[0].Op != ">" {
		t.Errorf("first cond = %+v", q.Having[0])
	}
	if q.Having[1].Left.Col.Name != "DOC_ID" || q.Having[1].Op != "<" {
		t.Errorf("second cond = %+v", q.Having[1])
	}
}

func TestOrderLimitErrors(t *testing.T) {
	cases := []struct {
		sql  string
		frag string
	}{
		{`SELECT STRING FROM TOKEN LIMIT 0`, "at least 1"},
		{`SELECT STRING FROM TOKEN LIMIT 2.5`, "not an integer"},
		{`SELECT STRING FROM TOKEN LIMIT X`, "expected LIMIT count"},
		{`SELECT STRING FROM TOKEN ORDER STRING`, `expected "BY"`},
		{`SELECT STRING FROM TOKEN ORDER BY NOPE LIMIT 2`, "not in the select list"},
		{`SELECT STRING FROM TOKEN T ORDER BY U.STRING`, "unknown table alias"},
		{`SELECT X FROM T HAVING X > 1`, "HAVING requires aggregation"},
		{`SELECT X FROM T GROUP BY X HAVING COUNT(*) ==`, "expected"},
	}
	for _, c := range cases {
		_, _, err := Compile(c.sql)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.sql, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Compile(%q) = %v, want %q", c.sql, err, c.frag)
		}
	}
}

// ---- planner lowering ----

// TestRankedSpecLowering pins the plan/spec split: ordering by the P
// pseudo-column stays result-level (no plan node can compute a
// cross-world marginal), while a pure column ordering with a LIMIT
// lowers to the per-world top-k operator.
func TestRankedSpecLowering(t *testing.T) {
	plan, spec, err := Compile(`SELECT STRING FROM TOKEN WHERE LABEL='B-PER' ORDER BY P DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.(*ra.OrderLimit); ok {
		t.Error("ORDER BY P must not lower to a plan-level OrderLimit")
	}
	if !spec.TopKByProb() {
		t.Errorf("spec = %+v, want top-k-by-probability", spec)
	}
	if spec.Limit != 10 || len(spec.Order) != 1 || !spec.Order[0].ByProb || !spec.Order[0].Desc {
		t.Errorf("spec = %+v", spec)
	}

	plan, spec, err = Compile(`SELECT STRING FROM TOKEN ORDER BY STRING LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	ol, ok := plan.(*ra.OrderLimit)
	if !ok {
		t.Fatalf("plan root = %T, want *ra.OrderLimit", plan)
	}
	if ol.Limit != 2 || len(ol.Keys) != 1 || ol.Keys[0].Desc {
		t.Errorf("order-limit node = %+v", ol)
	}
	// The presentation spec mirrors the same keys and truncation.
	if len(spec.Order) != 1 || spec.Order[0].ByProb || spec.Order[0].Index != 0 || spec.Limit != 2 {
		t.Errorf("spec = %+v", spec)
	}

	// ORDER BY a column without LIMIT does not change per-world bag
	// membership: presentation-only.
	plan, spec, err = Compile(`SELECT STRING FROM TOKEN ORDER BY STRING DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.(*ra.OrderLimit); ok {
		t.Error("ORDER BY without LIMIT must stay result-level")
	}
	if len(spec.Order) != 1 || !spec.Order[0].Desc || spec.Limit > 0 {
		t.Errorf("spec = %+v", spec)
	}

	// A bare LIMIT truncates the default marginal ranking.
	_, spec, err = Compile(`SELECT STRING FROM TOKEN LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Order) != 0 || spec.Limit != 5 {
		t.Errorf("spec = %+v", spec)
	}
}

// ---- end-to-end evaluation over the shared fixture ----

func TestHavingEval(t *testing.T) {
	// Docs have 4, 3 and 1 tokens; HAVING an aggregate present in the
	// select list.
	bag := run(t, testDB(t), `SELECT DOC_ID, COUNT(*) AS N FROM TOKEN GROUP BY DOC_ID HAVING COUNT(*) > 2`)
	if bag.Len() != 2 {
		t.Fatalf("groups = %d, want 2", bag.Len())
	}
	counts := map[int64]int64{}
	bag.Each(func(_ string, r *ra.BagRow) bool {
		counts[r.Tuple[0].AsInt()] = r.Tuple[1].AsInt()
		return true
	})
	if counts[1] != 4 || counts[2] != 3 {
		t.Errorf("per-doc counts = %v", counts)
	}
}

func TestHavingHiddenAggregate(t *testing.T) {
	// The HAVING aggregate is absent from the select list: lowered as a
	// hidden aggregate and projected away, so the output stays arity 1.
	bag := run(t, testDB(t), `SELECT DOC_ID FROM TOKEN GROUP BY DOC_ID HAVING COUNT(*) > 2 AND MAX(TOK_ID) < 5`)
	rows := bag.Rows()
	if len(rows) != 1 || len(rows[0].Tuple) != 1 || rows[0].Tuple[0].AsInt() != 1 {
		t.Fatalf("rows = %v, want just doc 1 with arity 1", dumpRanked(bag))
	}
}

func TestOrderLimitEval(t *testing.T) {
	// Per-world top-2 by string: persons are Clinton, Ortiz, Smith.
	bag := run(t, testDB(t), `SELECT STRING FROM TOKEN WHERE LABEL='B-PER' ORDER BY STRING ASC LIMIT 2`)
	if bag.Size() != 2 {
		t.Fatalf("size = %d, want 2", bag.Size())
	}
	for _, name := range []string{"Clinton", "Ortiz"} {
		if bag.Count(relstore.Tuple{relstore.String(name)}.Key()) != 1 {
			t.Errorf("%s missing from top-2; got %v", name, dumpRanked(bag))
		}
	}

	// Descending order keeps the lexicographically largest instead.
	bag = run(t, testDB(t), `SELECT STRING FROM TOKEN WHERE LABEL='B-PER' ORDER BY STRING DESC LIMIT 1`)
	if bag.Size() != 1 || bag.Count(relstore.Tuple{relstore.String("Smith")}.Key()) != 1 {
		t.Errorf("top-1 desc = %v, want Smith", dumpRanked(bag))
	}

	// The limit counts multiplicities: doc 1 holds two persons, so the
	// per-doc limit clips inside a group of duplicates.
	bag = run(t, testDB(t), `SELECT DOC_ID FROM TOKEN WHERE LABEL='B-PER' ORDER BY DOC_ID ASC LIMIT 3`)
	if bag.Count(relstore.Tuple{relstore.Int(1)}.Key()) != 2 ||
		bag.Count(relstore.Tuple{relstore.Int(2)}.Key()) != 1 {
		t.Errorf("multiset limit = %v, want doc1 x2, doc2 x1", dumpRanked(bag))
	}
}

func dumpRanked(b *ra.Bag) []string {
	var out []string
	for _, r := range b.Rows() {
		out = append(out, r.Tuple.String())
	}
	return out
}
