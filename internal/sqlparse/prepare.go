package sqlparse

import (
	"fmt"
	"strings"
)

// IsExplain reports whether sql's first token is the EXPLAIN keyword.
// It never errors: malformed input simply isn't an EXPLAIN, and the
// real parse will produce the positioned error.
func IsExplain(sql string) bool {
	kw, _ := leadingKeyword(sql)
	return kw == "EXPLAIN"
}

// ExplainTarget strips the leading EXPLAIN keyword — and, for EXPLAIN
// ANALYZE, the ANALYZE modifier — and returns the inner statement text,
// so the caller can compile (and cache) the target exactly as if it had
// been issued directly. The caller must have checked IsExplain first.
func ExplainTarget(sql string) string {
	_, end := leadingKeyword(sql)
	rest := strings.TrimSpace(sql[end:])
	if kw, aend := leadingKeyword(rest); kw == "ANALYZE" {
		return strings.TrimSpace(rest[aend:])
	}
	return rest
}

// NumParams reports how many ? placeholders the statement contains.
func NumParams(stmt *Statement) int { return stmt.Params }

// BindArgs returns a copy of a prepared statement's AST with every ?
// placeholder replaced by the corresponding argument as a literal. The
// input statement is never mutated — operand-bearing slices are deep
// copied — so one prepared AST can be bound concurrently. The bound
// copy must then be re-planned (Compile's lowering + canonicalization
// folds and reorders literals), which is still far cheaper than
// re-lexing and re-parsing the SQL text.
func BindArgs(stmt *Statement, args []any) (*Statement, error) {
	if len(args) != stmt.Params {
		return nil, fmt.Errorf("sqlparse: statement has %d placeholders, got %d arguments", stmt.Params, len(args))
	}
	if stmt.Params == 0 {
		return stmt, nil
	}
	out := *stmt
	out.Params = 0
	var err error
	switch {
	case stmt.Select != nil:
		q := *stmt.Select
		if q.Where, err = bindConds(q.Where, args); err != nil {
			return nil, err
		}
		if q.Having, err = bindHaving(q.Having, args); err != nil {
			return nil, err
		}
		out.Select = &q
	case stmt.Insert != nil:
		ins := *stmt.Insert
		rows := make([][]Operand, len(ins.Rows))
		for i, row := range ins.Rows {
			nr := make([]Operand, len(row))
			for j, op := range row {
				if nr[j], err = bindOperand(op, args); err != nil {
					return nil, err
				}
			}
			rows[i] = nr
		}
		ins.Rows = rows
		out.Insert = &ins
	case stmt.Update != nil:
		up := *stmt.Update
		set := make([]Assign, len(up.Set))
		for i, a := range up.Set {
			if a.Val, err = bindOperand(a.Val, args); err != nil {
				return nil, err
			}
			set[i] = a
		}
		up.Set = set
		if up.Where, err = bindConds(up.Where, args); err != nil {
			return nil, err
		}
		out.Update = &up
	case stmt.Delete != nil:
		del := *stmt.Delete
		if del.Where, err = bindConds(del.Where, args); err != nil {
			return nil, err
		}
		out.Delete = &del
	case stmt.Explain != nil:
		inner, err := BindArgs(stmt.Explain, args)
		if err != nil {
			return nil, err
		}
		out.Explain = inner
	}
	return &out, nil
}

func bindConds(conds []Cond, args []any) ([]Cond, error) {
	if conds == nil {
		return nil, nil
	}
	out := make([]Cond, len(conds))
	var err error
	for i, c := range conds {
		if c.Right, err = bindOperand(c.Right, args); err != nil {
			return nil, err
		}
		if c.SubEq != nil {
			se := *c.SubEq
			if se.A.Conds, err = bindConds(se.A.Conds, args); err != nil {
				return nil, err
			}
			if se.B.Conds, err = bindConds(se.B.Conds, args); err != nil {
				return nil, err
			}
			c.SubEq = &se
		}
		if c.Exists != nil {
			sq := *c.Exists
			if sq.Conds, err = bindConds(sq.Conds, args); err != nil {
				return nil, err
			}
			c.Exists = &sq
		}
		if c.In != nil {
			in := *c.In
			if in.Values != nil {
				vals := make([]Operand, len(in.Values))
				for j, v := range in.Values {
					if vals[j], err = bindOperand(v, args); err != nil {
						return nil, err
					}
				}
				in.Values = vals
			}
			if in.Sub != nil {
				sub := *in.Sub
				if sub.Conds, err = bindConds(sub.Conds, args); err != nil {
					return nil, err
				}
				in.Sub = &sub
			}
			c.In = &in
		}
		out[i] = c
	}
	return out, nil
}

func bindHaving(conds []HavingCond, args []any) ([]HavingCond, error) {
	if conds == nil {
		return nil, nil
	}
	out := make([]HavingCond, len(conds))
	var err error
	for i, c := range conds {
		if c.Right, err = bindOperand(c.Right, args); err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func bindOperand(op Operand, args []any) (Operand, error) {
	if !op.IsParam {
		return op, nil
	}
	return literalOperand(args[op.Param], op.Param)
}

// literalOperand converts one driver-level argument into a literal
// Operand. The supported types mirror what the SQL dialect can spell
// as a literal: strings, integers and floats.
func literalOperand(arg any, idx int) (Operand, error) {
	switch v := arg.(type) {
	case string:
		return Operand{IsStr: true, Str: v}, nil
	case []byte:
		return Operand{IsStr: true, Str: string(v)}, nil
	case int:
		return Operand{IsInt: true, Int: int64(v), Float: float64(v)}, nil
	case int32:
		return Operand{IsInt: true, Int: int64(v), Float: float64(v)}, nil
	case int64:
		return Operand{IsInt: true, Int: v, Float: float64(v)}, nil
	case float32:
		return Operand{Float: float64(v)}, nil
	case float64:
		return Operand{Float: v}, nil
	}
	return Operand{}, fmt.Errorf("sqlparse: unsupported argument type %T for placeholder ?%d", arg, idx+1)
}
