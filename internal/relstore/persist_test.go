package relstore

import (
	"bytes"
	"path/filepath"
	"testing"
)

func snapshotDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	tok := db.MustCreate(tokenSchema(t))
	tok.CreateIndex("LABEL")
	for i := 0; i < 25; i++ {
		lbl := "O"
		if i%5 == 0 {
			lbl = "B-PER"
		}
		tok.Insert(Tuple{Int(int64(i)), Int(int64(i / 10)), String("w"), String(lbl)})
	}
	// A second relation with floats and bools.
	misc := db.MustCreate(MustSchema("MISC",
		Column{"X", TFloat}, Column{"OK", TBool}))
	misc.Insert(Tuple{Float(2.5), Bool(true)})
	misc.Insert(Tuple{Float(-1), Bool(false)})
	// A deleted row leaves a RowID gap that must survive round-trips.
	id, _ := tok.Insert(Tuple{Int(99), Int(9), String("gone"), String("O")})
	tok.Delete(id)
	return db
}

func assertDBEqual(t *testing.T, a, b *DB) {
	t.Helper()
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("relation counts differ: %v vs %v", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("relation names differ: %v vs %v", an, bn)
		}
		ra, _ := a.Relation(an[i])
		rb, _ := b.Relation(an[i])
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: row counts differ: %d vs %d", an[i], ra.Len(), rb.Len())
		}
		ra.Scan(func(id RowID, tu Tuple) bool {
			other, ok := rb.Get(id)
			if !ok || !tu.Equal(other) {
				t.Fatalf("%s row %d: %v vs %v (ok=%v)", an[i], id, tu, other, ok)
			}
			return true
		})
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotDB(t)
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDBEqual(t, db, back)

	// Indexes restored: lookup works and stays maintained.
	tok, _ := back.Relation("TOKEN")
	if !tok.HasIndex("LABEL") {
		t.Fatal("index not restored")
	}
	ids, _ := tok.Lookup("LABEL", String("B-PER"))
	if len(ids) != 5 {
		t.Fatalf("restored index lookup = %d rows, want 5", len(ids))
	}
	// RowID sequence continues past the snapshot (no collisions).
	before := tok.Len()
	if _, err := tok.Insert(Tuple{Int(1000), Int(0), String("new"), String("O")}); err != nil {
		t.Fatal(err)
	}
	if tok.Len() != before+1 {
		t.Fatal("insert after restore failed")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	db := snapshotDB(t)
	path := filepath.Join(t.TempDir(), "world.gob")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDBEqual(t, db, back)
}

func TestSnapshotEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDB().Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Names()) != 0 {
		t.Errorf("restored empty DB has relations: %v", back.Names())
	}
}

func TestReadDBGarbage(t *testing.T) {
	if _, err := ReadDB(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input: want error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file: want error")
	}
}
