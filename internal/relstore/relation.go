package relstore

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotFound marks operations addressing a RowID that is not (or no
// longer) present in the relation. Callers that hold long-lived row
// references across DML — the MCMC write-through path — match it with
// errors.Is to distinguish "row was deleted underneath me" from a
// programming error.
var ErrNotFound = errors.New("row not found")

// RowID identifies a row within a relation. IDs are stable for the life of
// the row and are never reused, so external components (such as the MCMC
// world bridge) can hold long-lived references to uncertain fields.
type RowID int64

// Relation is a bag of tuples conforming to a schema. Rows are addressed by
// stable RowIDs; secondary hash indexes may be declared on any column.
type Relation struct {
	schema  *Schema
	rows    map[RowID]Tuple
	nextID  RowID
	indexes map[int]*hashIndex // column position -> index
}

type hashIndex struct {
	col  int
	byID map[string]map[RowID]struct{}
}

func newHashIndex(col int) *hashIndex {
	return &hashIndex{col: col, byID: make(map[string]map[RowID]struct{})}
}

func (ix *hashIndex) add(id RowID, t Tuple) {
	k := t[ix.col].Key()
	set := ix.byID[k]
	if set == nil {
		set = make(map[RowID]struct{})
		ix.byID[k] = set
	}
	set[id] = struct{}{}
}

func (ix *hashIndex) remove(id RowID, t Tuple) {
	k := t[ix.col].Key()
	if set := ix.byID[k]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(ix.byID, k)
		}
	}
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{
		schema:  schema,
		rows:    make(map[RowID]Tuple),
		indexes: make(map[int]*hashIndex),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Insert validates and stores a copy of t, returning its new RowID.
func (r *Relation) Insert(t Tuple) (RowID, error) {
	if err := r.schema.Validate(t); err != nil {
		return 0, err
	}
	id := r.nextID
	r.nextID++
	row := t.Clone()
	r.rows[id] = row
	for _, ix := range r.indexes {
		ix.add(id, row)
	}
	return id, nil
}

// Get returns the tuple stored under id. The returned tuple must not be
// mutated by the caller.
func (r *Relation) Get(id RowID) (Tuple, bool) {
	t, ok := r.rows[id]
	return t, ok
}

// Update replaces the tuple stored under id, returning the previous value.
func (r *Relation) Update(id RowID, t Tuple) (Tuple, error) {
	old, ok := r.rows[id]
	if !ok {
		return nil, fmt.Errorf("relstore: relation %q: update of row %d: %w", r.schema.Name, id, ErrNotFound)
	}
	if err := r.schema.Validate(t); err != nil {
		return nil, err
	}
	row := t.Clone()
	for _, ix := range r.indexes {
		ix.remove(id, old)
		ix.add(id, row)
	}
	r.rows[id] = row
	return old, nil
}

// UpdateCol replaces a single field of the row, returning the previous
// whole-row value. This is the hot path for MCMC label flips.
func (r *Relation) UpdateCol(id RowID, col int, v Value) (Tuple, error) {
	old, ok := r.rows[id]
	if !ok {
		return nil, fmt.Errorf("relstore: relation %q: update of row %d: %w", r.schema.Name, id, ErrNotFound)
	}
	if col < 0 || col >= len(old) {
		return nil, fmt.Errorf("relstore: relation %q: column %d out of range", r.schema.Name, col)
	}
	row := old.Clone()
	row[col] = v
	if err := r.schema.Validate(row); err != nil {
		return nil, err
	}
	for _, ix := range r.indexes {
		ix.remove(id, old)
		ix.add(id, row)
	}
	r.rows[id] = row
	return old, nil
}

// Delete removes the row, returning its last value.
func (r *Relation) Delete(id RowID) (Tuple, error) {
	old, ok := r.rows[id]
	if !ok {
		return nil, fmt.Errorf("relstore: relation %q: delete of row %d: %w", r.schema.Name, id, ErrNotFound)
	}
	for _, ix := range r.indexes {
		ix.remove(id, old)
	}
	delete(r.rows, id)
	return old, nil
}

// Scan calls fn for every row until fn returns false. Iteration order is
// unspecified. The tuple passed to fn must not be mutated.
func (r *Relation) Scan(fn func(id RowID, t Tuple) bool) {
	for id, t := range r.rows {
		if !fn(id, t) {
			return
		}
	}
}

// ScanWhere is Scan with the predicate applied inside the storage layer:
// fn is called only for rows satisfying keep, so rejected tuples never
// surface to the caller. This is the sink for the streaming executor's
// pushed-down scan filters. Iteration order is unspecified; fn returning
// false stops the scan.
func (r *Relation) ScanWhere(keep func(t Tuple) bool, fn func(id RowID, t Tuple) bool) {
	for id, t := range r.rows {
		if keep(t) && !fn(id, t) {
			return
		}
	}
}

// ScanSorted is Scan in ascending RowID order, for deterministic output.
func (r *Relation) ScanSorted(fn func(id RowID, t Tuple) bool) {
	ids := make([]RowID, 0, len(r.rows))
	for id := range r.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !fn(id, r.rows[id]) {
			return
		}
	}
}

// CreateIndex declares a hash index on the named column. Creating an index
// that already exists is a no-op.
func (r *Relation) CreateIndex(col string) error {
	ci := r.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: relation %q: no column %q", r.schema.Name, col)
	}
	if _, ok := r.indexes[ci]; ok {
		return nil
	}
	ix := newHashIndex(ci)
	for id, t := range r.rows {
		ix.add(id, t)
	}
	r.indexes[ci] = ix
	return nil
}

// HasIndex reports whether the named column is indexed.
func (r *Relation) HasIndex(col string) bool {
	ci := r.schema.ColIndex(col)
	if ci < 0 {
		return false
	}
	_, ok := r.indexes[ci]
	return ok
}

// Lookup returns the RowIDs whose named column equals v, using the hash
// index when present and falling back to a full scan otherwise.
func (r *Relation) Lookup(col string, v Value) ([]RowID, error) {
	ci := r.schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("relstore: relation %q: no column %q", r.schema.Name, col)
	}
	if ix, ok := r.indexes[ci]; ok {
		set := ix.byID[v.Key()]
		out := make([]RowID, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		return out, nil
	}
	var out []RowID
	for id, t := range r.rows {
		if t[ci].Equal(v) {
			out = append(out, id)
		}
	}
	return out, nil
}

// Clone returns a deep copy of the relation, including indexes. Used to
// produce identical initial worlds for parallel MCMC chains.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	c.nextID = r.nextID
	for id, t := range r.rows {
		c.rows[id] = t.Clone()
	}
	for ci := range r.indexes {
		ix := newHashIndex(ci)
		for id, t := range c.rows {
			ix.add(id, t)
		}
		c.indexes[ci] = ix
	}
	return c
}
