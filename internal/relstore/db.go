package relstore

import (
	"fmt"
	"sort"
)

// DB is a catalog of named relations representing one deterministic
// possible world.
type DB struct {
	rels map[string]*Relation
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{rels: make(map[string]*Relation)}
}

// Create adds an empty relation with the given schema and returns it.
func (db *DB) Create(schema *Schema) (*Relation, error) {
	if schema == nil || schema.Name == "" {
		return nil, fmt.Errorf("relstore: create: schema must be named")
	}
	if _, dup := db.rels[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: create: relation %q already exists", schema.Name)
	}
	r := NewRelation(schema)
	db.rels[schema.Name] = r
	return r, nil
}

// MustCreate is Create that panics on error.
func (db *DB) MustCreate(schema *Schema) *Relation {
	r, err := db.Create(schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or an error if it does not exist.
func (db *DB) Relation(name string) (*Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown relation %q", name)
	}
	return r, nil
}

// Drop removes the named relation.
func (db *DB) Drop(name string) error {
	if _, ok := db.rels[name]; !ok {
		return fmt.Errorf("relstore: unknown relation %q", name)
	}
	delete(db.rels, name)
	return nil
}

// Names returns the catalog's relation names in sorted order.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the whole database: an identical possible world.
func (db *DB) Clone() *DB {
	c := NewDB()
	for n, r := range db.rels {
		c.rels[n] = r.Clone()
	}
	return c
}
