package relstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tokenSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("TOKEN",
		Column{"TOK_ID", TInt},
		Column{"DOC_ID", TInt},
		Column{"STRING", TString},
		Column{"LABEL", TString},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Type
		str  string
	}{
		{Int(42), TInt, "42"},
		{Float(2.5), TFloat, "2.5"},
		{String("abc"), TString, "abc"},
		{Bool(true), TBool, "true"},
		{Bool(false), TBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueEqualNumericCrossType(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("Int(1) should not equal Bool(true)")
	}
	if String("1").Equal(Int(1)) {
		t.Error("String should not equal Int")
	}
}

func TestValueLess(t *testing.T) {
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("int order broken")
	}
	if !Int(1).Less(Float(1.5)) {
		t.Error("cross numeric order broken")
	}
	if !String("a").Less(String("b")) {
		t.Error("string order broken")
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(256),
		Float(0), Float(1), Float(0.5),
		String(""), String("a"), String("ab"), String("a:b"),
		Bool(true), Bool(false),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestTupleKeyInjectiveQuick(t *testing.T) {
	// Two random string pairs collide in concatenation iff the pairs are
	// equal; the length-prefixed encoding must keep them distinct.
	f := func(a1, a2, b1, b2 string) bool {
		ta := Tuple{String(a1), String(a2)}
		tb := Tuple{String(b1), String(b2)}
		if a1 == b1 && a2 == b2 {
			return ta.Key() == tb.Key()
		}
		return ta.Key() != tb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := tokenSchema(t)
	good := Tuple{Int(1), Int(1), String("IBM"), String("B-ORG")}
	if err := s.Validate(good); err != nil {
		t.Errorf("Validate(good): %v", err)
	}
	bad := Tuple{Int(1), Int(1), String("IBM")}
	if err := s.Validate(bad); err == nil {
		t.Error("Validate(short tuple): want error")
	}
	wrongType := Tuple{Int(1), String("x"), String("IBM"), String("B-ORG")}
	if err := s.Validate(wrongType); err == nil {
		t.Error("Validate(wrong type): want error")
	}
}

func TestSchemaIntWhereFloatExpected(t *testing.T) {
	s := MustSchema("R", Column{"x", TFloat})
	if err := s.Validate(Tuple{Int(3)}); err != nil {
		t.Errorf("int should satisfy float column: %v", err)
	}
}

func TestSchemaDuplicateColumn(t *testing.T) {
	if _, err := NewSchema("R", Column{"a", TInt}, Column{"a", TInt}); err == nil {
		t.Error("duplicate column: want error")
	}
	if _, err := NewSchema("R", Column{"", TInt}); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestRelationCRUD(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	id, err := r.Insert(Tuple{Int(1), Int(1), String("IBM"), String("O")})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	got, ok := r.Get(id)
	if !ok || got[2].AsString() != "IBM" {
		t.Fatalf("Get = %v, %v", got, ok)
	}

	old, err := r.UpdateCol(id, 3, String("B-ORG"))
	if err != nil {
		t.Fatalf("UpdateCol: %v", err)
	}
	if old[3].AsString() != "O" {
		t.Errorf("old label = %q, want O", old[3].AsString())
	}
	got, _ = r.Get(id)
	if got[3].AsString() != "B-ORG" {
		t.Errorf("new label = %q, want B-ORG", got[3].AsString())
	}

	if _, err := r.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("Len after delete = %d", r.Len())
	}
	if _, err := r.Delete(id); err == nil {
		t.Error("double delete: want error")
	}
	if _, err := r.Update(id, got); err == nil {
		t.Error("update of deleted row: want error")
	}
	if _, err := r.UpdateCol(id, 3, String("O")); err == nil {
		t.Error("UpdateCol of deleted row: want error")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	tup := Tuple{Int(1), Int(1), String("IBM"), String("O")}
	id, _ := r.Insert(tup)
	tup[3] = String("MUTATED")
	got, _ := r.Get(id)
	if got[3].AsString() != "O" {
		t.Error("Insert must store a copy, not alias caller's tuple")
	}
}

func TestIndexMaintenance(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	if err := r.CreateIndex("LABEL"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	var ids []RowID
	for i := 0; i < 10; i++ {
		lbl := "O"
		if i%3 == 0 {
			lbl = "B-PER"
		}
		id, _ := r.Insert(Tuple{Int(int64(i)), Int(1), String("w"), String(lbl)})
		ids = append(ids, id)
	}
	got, err := r.Lookup("LABEL", String("B-PER"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("Lookup B-PER = %d rows, want 4", len(got))
	}
	// Flip one away and one toward B-PER; index must track.
	if _, err := r.UpdateCol(ids[0], 3, String("O")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.UpdateCol(ids[1], 3, String("B-PER")); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Lookup("LABEL", String("B-PER"))
	if len(got) != 4 {
		t.Fatalf("after updates Lookup B-PER = %d rows, want 4", len(got))
	}
	if _, err := r.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Lookup("LABEL", String("B-PER"))
	if len(got) != 3 {
		t.Fatalf("after delete Lookup B-PER = %d rows, want 3", len(got))
	}
}

func TestIndexCreatedAfterInsertsMatchesScan(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	rng := rand.New(rand.NewSource(7))
	labels := []string{"O", "B-PER", "I-PER", "B-ORG"}
	for i := 0; i < 200; i++ {
		r.Insert(Tuple{Int(int64(i)), Int(int64(i / 10)), String("w"), String(labels[rng.Intn(len(labels))])})
	}
	if err := r.CreateIndex("LABEL"); err != nil {
		t.Fatal(err)
	}
	for _, lbl := range labels {
		viaIndex, _ := r.Lookup("LABEL", String(lbl))
		want := 0
		r.Scan(func(_ RowID, t Tuple) bool {
			if t[3].AsString() == lbl {
				want++
			}
			return true
		})
		if len(viaIndex) != want {
			t.Errorf("label %s: index %d rows, scan %d", lbl, len(viaIndex), want)
		}
	}
}

func TestLookupWithoutIndex(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	r.Insert(Tuple{Int(1), Int(1), String("IBM"), String("B-ORG")})
	r.Insert(Tuple{Int(2), Int(1), String("saw"), String("O")})
	got, err := r.Lookup("STRING", String("IBM"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("unindexed Lookup = %d rows, want 1", len(got))
	}
	if _, err := r.Lookup("NOPE", Int(1)); err == nil {
		t.Error("Lookup on missing column: want error")
	}
}

func TestScanSortedDeterministic(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	for i := 0; i < 50; i++ {
		r.Insert(Tuple{Int(int64(i)), Int(0), String("w"), String("O")})
	}
	var prev RowID = -1
	r.ScanSorted(func(id RowID, _ Tuple) bool {
		if id <= prev {
			t.Fatalf("ScanSorted out of order: %d after %d", id, prev)
		}
		prev = id
		return true
	})
}

func TestScanEarlyStop(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{Int(int64(i)), Int(0), String("w"), String("O")})
	}
	n := 0
	r.Scan(func(RowID, Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Scan visited %d rows after early stop, want 3", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := NewDB()
	r := db.MustCreate(tokenSchema(t))
	r.CreateIndex("LABEL")
	id, _ := r.Insert(Tuple{Int(1), Int(1), String("IBM"), String("O")})

	c := db.Clone()
	cr, err := c.Relation("TOKEN")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.UpdateCol(id, 3, String("B-ORG")); err != nil {
		t.Fatal(err)
	}
	orig, _ := r.Get(id)
	if orig[3].AsString() != "O" {
		t.Error("mutating clone changed original")
	}
	// Clone preserved indexes.
	ids, _ := cr.Lookup("LABEL", String("B-ORG"))
	if len(ids) != 1 {
		t.Errorf("clone index lookup = %d rows, want 1", len(ids))
	}
	// Clone continues RowID sequence without collisions.
	nid, _ := cr.Insert(Tuple{Int(2), Int(1), String("x"), String("O")})
	if nid == id {
		t.Error("clone reused a RowID")
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	db.MustCreate(MustSchema("B", Column{"x", TInt}))
	db.MustCreate(MustSchema("A", Column{"x", TInt}))
	if _, err := db.Create(MustSchema("A", Column{"x", TInt})); err == nil {
		t.Error("duplicate relation: want error")
	}
	if _, err := db.Relation("missing"); err == nil {
		t.Error("missing relation: want error")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
	if err := db.Drop("A"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("A"); err == nil {
		t.Error("double drop: want error")
	}
	if _, err := db.Create(nil); err == nil {
		t.Error("nil schema: want error")
	}
}

func TestUpdateColValidation(t *testing.T) {
	r := NewRelation(tokenSchema(t))
	id, _ := r.Insert(Tuple{Int(1), Int(1), String("IBM"), String("O")})
	if _, err := r.UpdateCol(id, 3, Int(5)); err == nil {
		t.Error("type-violating UpdateCol: want error")
	}
	if _, err := r.UpdateCol(id, 99, String("x")); err == nil {
		t.Error("out-of-range column: want error")
	}
	got, _ := r.Get(id)
	if got[3].AsString() != "O" {
		t.Error("failed update must not mutate row")
	}
}
