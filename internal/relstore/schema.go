package relstore

import "fmt"

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type Type
}

// Schema describes the name and typed attributes of a relation.
type Schema struct {
	Name string
	Cols []Column

	byName map[string]int
}

// NewSchema builds a schema and validates that column names are unique.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	s := &Schema{Name: name, Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: schema %q: column %d has empty name", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relstore: schema %q: duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for
// statically known schemas in tests and examples.
func MustSchema(name string, cols ...Column) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// Validate checks that the tuple conforms to the schema.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.Cols) {
		return fmt.Errorf("relstore: relation %q: tuple arity %d, want %d", s.Name, len(t), len(s.Cols))
	}
	for i, v := range t {
		want := s.Cols[i].Type
		got := v.Kind()
		if got != want {
			// Ints are acceptable where floats are expected.
			if want == TFloat && got == TInt {
				continue
			}
			return fmt.Errorf("relstore: relation %q: column %q has %v, want %v", s.Name, s.Cols[i].Name, got, want)
		}
	}
	return nil
}

// Tuple is a realization of a value for each attribute of some schema.
type Tuple []Value

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// AppendKey appends the tuple's injective key encoding — the
// concatenation of its values' self-delimiting encodings — to dst and
// returns the extended slice. Callers on hot paths reuse dst as a scratch
// buffer so key construction is allocation-free.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.appendKey(dst)
	}
	return dst
}

// Key returns an injective string encoding of the whole tuple, usable as a
// map key for multiset semantics.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// Equal reports element-wise equality with o.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple for display.
func (t Tuple) String() string {
	b := []byte{'('}
	for i, v := range t {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, v.String()...)
	}
	return string(append(b, ')'))
}
