package relstore

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Snapshot persistence: a whole database (one possible world) can be
// written to and restored from a stream. This backs the paper's
// parallelization setup — "eight identical copies of the probabilistic
// database" (Section 5.4) — when chains live in separate processes, and
// lets experiment harnesses reuse expensive initial worlds.

// wireValue is the gob-encodable form of Value.
type wireValue struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// wireRelation is the gob-encodable form of Relation.
type wireRelation struct {
	Name    string
	Cols    []Column
	NextID  RowID
	RowIDs  []RowID
	Rows    [][]wireValue
	Indexes []string // indexed column names
}

type wireDB struct {
	Relations []wireRelation
}

func toWire(v Value) wireValue { return wireValue{Kind: v.kind, I: v.i, F: v.f, S: v.s} }

func fromWire(w wireValue) Value { return Value{kind: w.Kind, i: w.I, f: w.F, s: w.S} }

// Dump serializes the database to w using encoding/gob.
func (db *DB) Dump(w io.Writer) error {
	var wire wireDB
	for _, name := range db.Names() {
		rel := db.rels[name]
		wr := wireRelation{
			Name:   name,
			Cols:   rel.schema.Cols,
			NextID: rel.nextID,
		}
		rel.ScanSorted(func(id RowID, t Tuple) bool {
			wr.RowIDs = append(wr.RowIDs, id)
			row := make([]wireValue, len(t))
			for i, v := range t {
				row[i] = toWire(v)
			}
			wr.Rows = append(wr.Rows, row)
			return true
		})
		for ci := range rel.indexes {
			wr.Indexes = append(wr.Indexes, rel.schema.Cols[ci].Name)
		}
		wire.Relations = append(wire.Relations, wr)
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// ReadDB deserializes a database previously written with Dump.
func ReadDB(r io.Reader) (*DB, error) {
	var wire wireDB
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("relstore: decoding snapshot: %w", err)
	}
	db := NewDB()
	for _, wr := range wire.Relations {
		schema, err := NewSchema(wr.Name, wr.Cols...)
		if err != nil {
			return nil, fmt.Errorf("relstore: decoding snapshot: %w", err)
		}
		rel, err := db.Create(schema)
		if err != nil {
			return nil, err
		}
		if len(wr.RowIDs) != len(wr.Rows) {
			return nil, fmt.Errorf("relstore: snapshot relation %q: %d ids but %d rows", wr.Name, len(wr.RowIDs), len(wr.Rows))
		}
		for i, id := range wr.RowIDs {
			row := make(Tuple, len(wr.Rows[i]))
			for j, wv := range wr.Rows[i] {
				row[j] = fromWire(wv)
			}
			if err := schema.Validate(row); err != nil {
				return nil, fmt.Errorf("relstore: snapshot relation %q row %d: %w", wr.Name, id, err)
			}
			rel.rows[id] = row
		}
		rel.nextID = wr.NextID
		for _, col := range wr.Indexes {
			if err := rel.CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveFile writes the database snapshot to path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.Dump(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores a database snapshot from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDB(f)
}
