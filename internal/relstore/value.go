// Package relstore implements the in-memory relational storage engine that
// holds the single possible world of the probabilistic database. It provides
// typed schemas, bag relations with stable row identifiers, primary keys and
// secondary hash indexes, and whole-database snapshots (used to run parallel
// MCMC chains over identical initial worlds).
//
// The engine plays the role that Apache Derby played in the paper: a plain
// deterministic DBMS that always stores exactly one world, treated as a black
// box by the sampler.
package relstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the column types supported by the engine.
type Type uint8

// Supported column types.
const (
	TInt Type = iota
	TFloat
	TString
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a dynamically typed scalar stored in a tuple field. The zero
// Value is the integer 0.
type Value struct {
	kind Type
	i    int64
	f    float64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: TInt, i: v} }

// Float returns a floating-point Value.
func Float(v float64) Value { return Value{kind: TFloat, f: v} }

// String returns a string Value.
func String(v string) Value { return Value{kind: TString, s: v} }

// Bool returns a boolean Value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: TBool, i: i}
}

// Kind reports the type of the value.
func (v Value) Kind() Type { return v.kind }

// AsInt returns the integer payload. It is valid only for TInt values.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64 for TInt and TFloat.
func (v Value) AsFloat() float64 {
	if v.kind == TInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for TString values.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for TBool values.
func (v Value) AsBool() bool { return v.i != 0 }

// Equal reports whether two values are identical in type and payload,
// except that TInt and TFloat compare numerically.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case TInt, TBool:
			return v.i == o.i
		case TFloat:
			return v.f == o.f
		case TString:
			return v.s == o.s
		}
	}
	if (v.kind == TInt || v.kind == TFloat) && (o.kind == TInt || o.kind == TFloat) {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Less imposes a total order within a type (numeric across TInt/TFloat).
// Values of different non-numeric kinds order by kind.
func (v Value) Less(o Value) bool {
	if (v.kind == TInt || v.kind == TFloat) && (o.kind == TInt || o.kind == TFloat) {
		if v.kind == TInt && o.kind == TInt {
			return v.i < o.i
		}
		return v.AsFloat() < o.AsFloat()
	}
	if v.kind != o.kind {
		return v.kind < o.kind
	}
	switch v.kind {
	case TBool:
		return v.i < o.i
	case TString:
		return v.s < o.s
	}
	return false
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return v.s
	case TBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// appendKey appends a self-delimiting binary encoding of the value to dst.
// The encoding is injective so it can be used as a hash-map key component:
// a kind tag, then a fixed 8-byte big-endian payload for numerics and
// booleans, or a uvarint length prefix followed by the raw bytes for
// strings. Float payloads are the IEEE 754 bits, so -0 and 0 (which
// compare Equal) key differently, exactly as they always have.
//
// This is the runtime encoding only; the bound-plan fingerprint format
// ("bfp1:", package ra) pins its own frozen copy of the original layout,
// so this one is free to evolve for speed.
func (v Value) appendKey(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case TInt, TBool:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case TFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case TString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// AppendKey appends the value's injective key encoding to dst and returns
// the extended slice, for callers that amortize key construction over a
// reused scratch buffer.
func (v Value) AppendKey(dst []byte) []byte { return v.appendKey(dst) }

// Key returns an injective string encoding of the value, suitable for use
// as a map key (for example in hash indexes and multiset counters).
func (v Value) Key() string { return string(v.appendKey(nil)) }
