// Package store is the durable-storage subsystem: it persists the
// probabilistic database's evidence — the prototype possible world plus
// the append-only log of every committed DML mutation — so that a
// restart recovers the exact world a crash interrupted instead of
// rebuilding from the corpus and losing all writes.
//
// The design follows the classical snapshot + write-ahead-log split. A
// snapshot is a whole-world dump (relstore's gob encoding) stamped with
// the data epoch it covers. The WAL appends one record per committed
// write: the resolved row-level op batch of PR 5's mutation IR, which is
// already world-independent (row identities fixed, predicates
// pre-evaluated) and therefore replayable verbatim. Recovery loads the
// newest valid snapshot and replays only the log tail — records whose
// epoch exceeds the snapshot's — tolerating a torn final record, which
// is truncated away so subsequent appends extend a clean log.
//
// Only evidence is persisted. The factor graph, trained weights and the
// sampler's hidden state are deterministic functions of the workload
// config (or re-equilibrated by post-recovery burn-in), so persisting
// them would buy nothing and cost snapshot width.
package store

import (
	"log/slog"
	"time"

	"factordb/internal/relstore"
	"factordb/internal/world"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncInterval (the default) syncs the log on a background ticker:
	// a crash loses at most one interval of committed writes, and the
	// append path never waits on the disk.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: no committed write is ever
	// lost, at the cost of one fsync per Exec.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache: fastest, and
	// still crash-consistent (the CRC framing drops a torn tail), but an
	// OS crash can lose recent writes.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// Options parameterizes Open. Zero values take the documented defaults.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Fsync is the WAL sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval ticker period (default 100ms).
	SyncEvery time.Duration
	// CheckpointOps triggers a background checkpoint once this many ops
	// have been appended since the last one (default 4096; negative
	// disables op-triggered checkpoints).
	CheckpointOps int64
	// CheckpointBytes triggers a background checkpoint once the WAL tail
	// has grown past this many bytes (default 4 MiB; negative disables).
	CheckpointBytes int64
	// Logger, when non-nil, receives structured records for failures the
	// store can only surface asynchronously — background fsync and
	// checkpoint errors that would otherwise live in Stats.LastError only.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CheckpointOps == 0 {
		o.CheckpointOps = 4096
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 4 << 20
	}
	return o
}

// Recovery summarizes what Open found on disk.
type Recovery struct {
	// SnapshotEpoch is the data epoch the loaded snapshot covers (0 if
	// none existed).
	SnapshotEpoch int64
	// Epoch is the recovered data epoch: the last replayed record's
	// epoch, or SnapshotEpoch when the log held nothing newer.
	Epoch int64
	// ReplayedRecords / ReplayedOps count the log tail applied on top of
	// the snapshot.
	ReplayedRecords int64
	ReplayedOps     int64
	// TornTail reports that the log ended in an invalid record —
	// truncated frame, CRC mismatch or trailing garbage — which was
	// discarded and truncated away.
	TornTail bool
	// Fresh reports an empty store: no snapshot and no log records.
	Fresh bool

	// Phase durations of the recovery itself — the material of the
	// startup trace surfaced on /statusz: loading the newest snapshot,
	// replaying the WAL tail past it, and truncating a torn final record.
	SnapshotLoadNS int64
	ReplayNS       int64
	TruncateNS     int64
}

// Stats is the introspection snapshot behind the /statusz and /healthz
// durability blocks.
type Stats struct {
	Dir             string
	Fsync           string
	Epoch           int64
	WALBytes        int64
	WALRecords      int64
	SnapshotEpoch   int64
	Checkpoints     int64
	LastCheckpointS float64 // seconds since the last checkpoint finished (0 if never)
	LastError       string  // last background checkpoint/sync failure, if any
}

// Storage is the pluggable durability contract the engine writes
// through. The default implementation is the on-disk DiskStore; an
// embedded LSM backend (the janus-datalog/Badger idiom) or a remote log
// can slot in behind the same interface.
type Storage interface {
	// Recovery reports what Open found on disk.
	Recovery() Recovery
	// WorldClone returns an independent copy of the recovered durable
	// world, or nil when the store has no world yet (fresh store that
	// was never seeded).
	WorldClone() *relstore.DB
	// Seed installs the initial world at the given epoch and writes the
	// base snapshot. It is an error to seed a store that already holds a
	// world.
	Seed(db *relstore.DB, epoch int64) error
	// Append durably logs one committed op batch stamped with the data
	// epoch it produces. Append must be called in strictly increasing
	// epoch order; an error means nothing was committed and the write
	// must fail.
	Append(epoch int64, ops []world.Op) error
	// Checkpoint forces a snapshot of the current durable world and
	// truncates the replayed log prefix.
	Checkpoint() error
	// Stats returns the current durability counters.
	Stats() Stats
	// Close flushes and releases the store. Further Appends fail.
	Close() error
}
