package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"factordb/internal/relstore"
)

// Snapshot files, version snap1. One file per checkpoint, named
// snap-<epoch %016d>.snap so lexical order is epoch order, laid out as
//
//	"snap1:"  header
//	uint64    data epoch the world includes (little endian)
//	gob       the relstore world dump
//	uint32    CRC-32 (IEEE) of everything above
//
// and written to a temp file, fsynced, then renamed into place — a
// crash mid-checkpoint leaves the previous snapshot untouched. The CRC
// trailer makes a half-written or bit-rotted snapshot detectable, in
// which case recovery falls back to the next older file.

var snapHeader = []byte("snap1:")

const snapSuffix = ".snap"

func snapshotName(epoch int64) string {
	return fmt.Sprintf("snap-%016d%s", epoch, snapSuffix)
}

// snapshotEpoch parses the epoch out of a snapshot file name, reporting
// ok=false for files that are not snapshots.
func snapshotEpoch(name string) (int64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	e, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), snapSuffix), 10, 64)
	if err != nil || e < 0 {
		return 0, false
	}
	return e, true
}

// writeSnapshot atomically persists the world at the given epoch and
// returns the file's basename.
func writeSnapshot(dir string, epoch int64, db *relstore.DB) (string, error) {
	var buf bytes.Buffer
	buf.Write(snapHeader)
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], uint64(epoch))
	buf.Write(eb[:])
	if err := db.Dump(&buf); err != nil {
		return "", fmt.Errorf("store: dumping world: %w", err)
	}
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(cb[:])

	name := snapshotName(epoch)
	tmp, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return "", err
	}
	return name, syncDir(dir)
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) (*relstore.DB, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(snapHeader)+8+4 {
		return nil, 0, fmt.Errorf("store: snapshot %s shorter than its framing", filepath.Base(path))
	}
	if !bytes.Equal(data[:len(snapHeader)], snapHeader) {
		return nil, 0, fmt.Errorf("store: snapshot %s header is not %q", filepath.Base(path), snapHeader)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("store: snapshot %s failed its CRC", filepath.Base(path))
	}
	epoch := int64(binary.LittleEndian.Uint64(body[len(snapHeader):]))
	db, err := relstore.ReadDB(bytes.NewReader(body[len(snapHeader)+8:]))
	if err != nil {
		return nil, 0, fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err)
	}
	return db, epoch, nil
}

// latestSnapshot loads the newest readable snapshot in dir, trying
// older files when the newest fails verification. ok=false means no
// usable snapshot exists (fresh directory, or every candidate corrupt —
// the error reports the newest failure in that case).
func latestSnapshot(dir string) (db *relstore.DB, epoch int64, ok bool, err error) {
	names, err := snapshotNames(dir)
	if err != nil {
		return nil, 0, false, err
	}
	var firstErr error
	for i := len(names) - 1; i >= 0; i-- {
		db, epoch, rerr := readSnapshot(filepath.Join(dir, names[i]))
		if rerr == nil {
			return db, epoch, true, nil
		}
		if firstErr == nil {
			firstErr = rerr
		}
	}
	return nil, 0, false, firstErr
}

// snapshotNames lists snapshot basenames in ascending epoch order.
func snapshotNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := snapshotEpoch(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// removeSnapshotsBefore deletes snapshots older than epoch, keeping the
// newest older one as a fallback against a latest-snapshot corruption.
func removeSnapshotsBefore(dir string, epoch int64) {
	names, err := snapshotNames(dir)
	if err != nil {
		return
	}
	// names is ascending; drop everything below the newest-but-one
	// pre-epoch snapshot.
	older := names[:0]
	for _, n := range names {
		if e, _ := snapshotEpoch(n); e < epoch {
			older = append(older, n)
		}
	}
	for i := 0; i+1 < len(older); i++ {
		os.Remove(filepath.Join(dir, older[i]))
	}
}

// syncDir fsyncs a directory so a rename in it is durable. Best-effort
// on platforms where directories cannot be opened for sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return nil
	}
	return nil
}
